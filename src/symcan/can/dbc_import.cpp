#include "symcan/can/dbc_import.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "symcan/util/csv.hpp"

namespace symcan {

namespace {

constexpr std::uint32_t kExtendedBit = 0x8000'0000u;

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

std::string strip_trailing(std::string s, char c) {
  while (!s.empty() && s.back() == c) s.pop_back();
  return s;
}

/// Parse an integer token, reporting malformed/out-of-range values as a
/// line diagnostic instead of throwing.
std::optional<std::int64_t> parse_int(const std::string& s, std::size_t line_no, const char* what,
                                      Diagnostics& diags) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(s, &pos);
    if (pos != s.size()) {
      diags.error(line_no, std::string("malformed ") + what + " '" + s + "'");
      return std::nullopt;
    }
    return v;
  } catch (const std::invalid_argument&) {
    diags.error(line_no, std::string("malformed ") + what + " '" + s + "'");
  } catch (const std::out_of_range&) {
    diags.error(line_no, std::string("out-of-range ") + what + " '" + s + "'");
  }
  return std::nullopt;
}

struct RawMessage {
  std::string name;
  CanId id = 0;
  FrameFormat format = FrameFormat::kStandard;
  int dlc = 0;
  std::string sender;
  std::set<std::string> receivers;
  std::optional<Duration> cycle_time;
  std::optional<Duration> delay_time;
  std::size_t line_no = 0;
};

/// Decode the raw 32-bit DBC id field: bit 31 flags an extended (29-bit)
/// identifier; the id must fit its format's range and must not be
/// negative. Returns nullopt (with a diagnostic) on violation.
std::optional<std::pair<CanId, FrameFormat>> decode_dbc_id(std::int64_t raw, std::size_t line_no,
                                                           Diagnostics& diags) {
  if (raw < 0) {
    diags.error(line_no, "negative message id " + std::to_string(raw));
    return std::nullopt;
  }
  if (raw > 0xFFFF'FFFFll) {
    diags.error(line_no, "message id " + std::to_string(raw) + " exceeds 32 bits");
    return std::nullopt;
  }
  const auto raw32 = static_cast<std::uint32_t>(raw);
  if (raw32 & kExtendedBit) {
    const std::uint32_t id = raw32 & ~kExtendedBit;
    if (id > max_extended_id) {
      diags.error(line_no, "extended message id exceeds 29 bits: " + std::to_string(id));
      return std::nullopt;
    }
    return std::make_pair(id, FrameFormat::kExtended);
  }
  if (raw32 > max_standard_id) {
    diags.error(line_no, "standard message id " + std::to_string(raw32) +
                             " exceeds 11 bits (extended ids must set bit 31)");
    return std::nullopt;
  }
  return std::make_pair(raw32, FrameFormat::kStandard);
}

/// Positive millisecond attribute (cycle/delay/default cycle). Negative
/// values are always an error; zero is the conventional DBC way of
/// saying "not cyclic", so it maps to "unset" with a lenient warning.
std::optional<Duration> decode_time_ms(std::int64_t ms, std::size_t line_no, const char* what,
                                       Diagnostics& diags) {
  if (ms < 0) {
    diags.error(line_no, std::string("negative ") + what + " " + std::to_string(ms) + " ms");
    return std::nullopt;
  }
  if (ms == 0) {
    diags.warning(line_no, std::string(what) + " of 0 ms treated as unset");
    return std::nullopt;
  }
  return Duration::ms(ms);
}

}  // namespace

std::optional<KMatrix> kmatrix_from_dbc(const std::string& text, const DbcImportOptions& options,
                                        Diagnostics& diags) {
  diags.set_source("DBC");
  std::vector<std::string> node_names;
  std::map<std::uint64_t, RawMessage> messages;  // keyed by arbitration key (format, id)
  RawMessage* current = nullptr;                 // receiver lines attach here
  std::optional<Duration> default_cycle;
  std::int64_t bitrate = options.default_bitrate_bps;

  std::istringstream in{text};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (diags.exhausted()) {
      diags.error(0, "too many problems; giving up");
      break;
    }
    const auto tok = tokenize(line);
    if (tok.empty()) continue;

    if (tok[0] == "BU_:") {
      for (std::size_t i = 1; i < tok.size(); ++i) node_names.push_back(tok[i]);
      continue;
    }
    if (tok[0] == "BO_") {
      // BO_ <id> <Name>: <dlc> <sender>
      current = nullptr;  // a malformed BO_ must not adopt following SG_ lines
      if (tok.size() < 5) {
        diags.error(line_no, "BO_ needs id, name, dlc and sender");
        continue;
      }
      const auto raw_id = parse_int(tok[1], line_no, "message id", diags);
      const auto raw_dlc = parse_int(tok[3], line_no, "dlc", diags);
      if (!raw_id || !raw_dlc) continue;
      const auto decoded = decode_dbc_id(*raw_id, line_no, diags);
      if (!decoded) continue;
      if (*raw_dlc < 0 || *raw_dlc > 8) {
        diags.error(line_no, "dlc " + std::to_string(*raw_dlc) + " outside 0..8");
        continue;
      }
      RawMessage m;
      m.id = decoded->first;
      m.format = decoded->second;
      m.dlc = static_cast<int>(*raw_dlc);
      m.name = strip_trailing(tok[2], ':');
      m.sender = tok[4];
      m.line_no = line_no;
      if (m.name.empty()) {
        diags.error(line_no, "empty message name");
        continue;
      }
      const std::uint64_t key =
          (m.format == FrameFormat::kExtended ? (std::uint64_t{1} << 32) : 0) | m.id;
      const auto [it, inserted] = messages.emplace(key, std::move(m));
      if (!inserted) {
        diags.error(line_no, "duplicate message id " + tok[1]);
        continue;
      }
      current = &it->second;
      continue;
    }
    if (tok[0] == "SG_") {
      // SG_ <name> : <bits...> <unit> <receivers comma-separated>
      if (current == nullptr) {
        diags.warning(line_no, "signal line outside any message definition ignored");
        continue;
      }
      const std::string& rx = tok.back();
      std::string cur;
      for (char c : rx) {
        if (c == ',') {
          if (!cur.empty()) current->receivers.insert(cur);
          cur.clear();
        } else {
          cur.push_back(c);
        }
      }
      if (!cur.empty()) current->receivers.insert(cur);
      continue;
    }
    if (tok[0] == "BA_DEF_DEF_" && tok.size() >= 3 && tok[1] == "\"GenMsgCycleTime\"") {
      const auto ms = parse_int(strip_trailing(tok[2], ';'), line_no, "default cycle time", diags);
      if (ms) default_cycle = decode_time_ms(*ms, line_no, "default cycle time", diags);
      continue;
    }
    if (tok[0] == "BA_" && tok.size() >= 3) {
      if (tok[1] == "\"Baudrate\"") {
        const auto bps = parse_int(strip_trailing(tok[2], ';'), line_no, "baudrate", diags);
        if (!bps) continue;
        if (*bps <= 0 || *bps > 1'000'000'000) {
          diags.error(line_no, "baudrate " + std::to_string(*bps) + " outside (0, 1e9] bit/s");
          continue;
        }
        bitrate = *bps;
        continue;
      }
      if (tok.size() >= 5 && tok[2] == "BO_" &&
          (tok[1] == "\"GenMsgCycleTime\"" || tok[1] == "\"GenMsgDelayTime\"")) {
        const auto raw_id = parse_int(tok[3], line_no, "message id", diags);
        if (!raw_id) continue;
        const auto decoded = decode_dbc_id(*raw_id, line_no, diags);
        if (!decoded) continue;
        const std::uint64_t key =
            (decoded->second == FrameFormat::kExtended ? (std::uint64_t{1} << 32) : 0) |
            decoded->first;
        const auto it = messages.find(key);
        if (it == messages.end()) {
          diags.error(line_no, "attribute for unknown message id " + tok[3]);
          continue;
        }
        const bool is_cycle = tok[1] == "\"GenMsgCycleTime\"";
        const auto ms = parse_int(strip_trailing(tok[4], ';'), line_no, "attribute value", diags);
        if (!ms) continue;
        if (is_cycle) {
          it->second.cycle_time = decode_time_ms(*ms, line_no, "cycle time", diags);
        } else {
          // A delay (minimum distance) of 0 is a valid "no limitation".
          if (*ms < 0) {
            diags.error(line_no, "negative delay time " + std::to_string(*ms) + " ms");
            continue;
          }
          it->second.delay_time = Duration::ms(*ms);
        }
        continue;
      }
    }
    // Everything else: ignored (comments, version, value tables, ...).
  }

  if (!diags.ok()) return std::nullopt;
  if (bitrate == options.default_bitrate_bps &&
      (bitrate <= 0 || bitrate > 1'000'000'000)) {
    diags.error(0, "default bitrate " + std::to_string(bitrate) + " outside (0, 1e9] bit/s");
    return std::nullopt;
  }

  KMatrix km{options.bus_name, BitTiming{bitrate}};
  std::set<std::string> declared(node_names.begin(), node_names.end());
  // Senders/receivers not in BU_ (e.g. the conventional "Vector__XXX"
  // placeholder) become nodes too, so the matrix always validates.
  for (const auto& [key, m] : messages) {
    declared.insert(m.sender);
    for (const auto& r : m.receivers) declared.insert(r);
  }
  for (const auto& n : declared) {
    EcuNode node;
    node.name = n;
    try {
      node.validate();
    } catch (const std::invalid_argument& e) {
      diags.error(0, e.what());
      continue;
    }
    km.add_node(std::move(node));
  }

  for (const auto& [key, m] : messages) {
    CanMessage out;
    out.name = m.name;
    out.format = m.format;
    out.id = m.id;
    out.payload_bytes = m.dlc;
    if (m.cycle_time) {
      out.period = *m.cycle_time;
      out.jitter_known = false;
    } else if (default_cycle) {
      out.period = *default_cycle;
    } else {
      out.period = options.fallback_period;
    }
    if (m.delay_time) out.min_distance = *m.delay_time;
    out.sender = m.sender;
    out.receivers.assign(m.receivers.begin(), m.receivers.end());
    if (out.receivers.empty()) out.receivers.push_back(m.sender);
    try {
      out.validate();
    } catch (const std::invalid_argument& e) {
      diags.error(m.line_no, e.what());
      continue;
    }
    km.add_message(std::move(out));
  }
  if (!diags.ok()) return std::nullopt;
  try {
    km.validate();
  } catch (const std::invalid_argument& e) {
    diags.error(0, e.what());
    return std::nullopt;
  }
  return km;
}

KMatrix kmatrix_from_dbc(const std::string& text, const DbcImportOptions& options) {
  Diagnostics diags{DiagnosticPolicy::kLenient, "DBC"};
  auto km = kmatrix_from_dbc(text, options, diags);
  diags.throw_if_failed();
  if (!km) throw ParseError{diags};  // unreachable unless diags/ok desynchronize
  return std::move(*km);
}

KMatrix load_dbc(const std::string& path, const DbcImportOptions& options) {
  return kmatrix_from_dbc(read_file(path), options);
}

}  // namespace symcan

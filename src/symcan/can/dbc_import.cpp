#include "symcan/can/dbc_import.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "symcan/util/csv.hpp"

namespace symcan {

namespace {

constexpr std::uint32_t kExtendedBit = 0x8000'0000u;

[[noreturn]] void fail(std::size_t line_no, const std::string& msg) {
  std::ostringstream os;
  os << "DBC line " << line_no << ": " << msg;
  throw std::runtime_error(os.str());
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

std::string strip_trailing(std::string s, char c) {
  while (!s.empty() && s.back() == c) s.pop_back();
  return s;
}

std::int64_t parse_int(const std::string& s, std::size_t line_no, const char* what) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(s, &pos);
    if (pos != s.size()) fail(line_no, std::string("malformed ") + what + " '" + s + "'");
    return v;
  } catch (const std::invalid_argument&) {
    fail(line_no, std::string("malformed ") + what + " '" + s + "'");
  } catch (const std::out_of_range&) {
    fail(line_no, std::string("out-of-range ") + what + " '" + s + "'");
  }
}

struct RawMessage {
  std::string name;
  std::uint32_t raw_id = 0;
  int dlc = 0;
  std::string sender;
  std::set<std::string> receivers;
  std::optional<Duration> cycle_time;
  std::optional<Duration> delay_time;
};

}  // namespace

KMatrix kmatrix_from_dbc(const std::string& text, const DbcImportOptions& options) {
  std::vector<std::string> node_names;
  std::map<std::uint32_t, RawMessage> messages;  // keyed by raw id
  RawMessage* current = nullptr;                 // receiver lines attach here
  std::optional<Duration> default_cycle;
  std::int64_t bitrate = options.default_bitrate_bps;

  std::istringstream in{text};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto tok = tokenize(line);
    if (tok.empty()) continue;

    if (tok[0] == "BU_:") {
      for (std::size_t i = 1; i < tok.size(); ++i) node_names.push_back(tok[i]);
      continue;
    }
    if (tok[0] == "BO_") {
      // BO_ <id> <Name>: <dlc> <sender>
      if (tok.size() < 5) fail(line_no, "BO_ needs id, name, dlc and sender");
      RawMessage m;
      m.raw_id = static_cast<std::uint32_t>(parse_int(tok[1], line_no, "message id"));
      m.name = strip_trailing(tok[2], ':');
      m.dlc = static_cast<int>(parse_int(tok[3], line_no, "dlc"));
      m.sender = tok[4];
      const auto [it, inserted] = messages.emplace(m.raw_id, std::move(m));
      if (!inserted) fail(line_no, "duplicate message id " + tok[1]);
      current = &it->second;
      continue;
    }
    if (tok[0] == "SG_") {
      // SG_ <name> : <bits...> <unit> <receivers comma-separated>
      if (current == nullptr) continue;  // stray signal, tolerate
      const std::string& rx = tok.back();
      std::string cur;
      for (char c : rx) {
        if (c == ',') {
          if (!cur.empty()) current->receivers.insert(cur);
          cur.clear();
        } else {
          cur.push_back(c);
        }
      }
      if (!cur.empty()) current->receivers.insert(cur);
      continue;
    }
    if (tok[0] == "BA_DEF_DEF_" && tok.size() >= 3 && tok[1] == "\"GenMsgCycleTime\"") {
      default_cycle =
          Duration::ms(parse_int(strip_trailing(tok[2], ';'), line_no, "default cycle time"));
      continue;
    }
    if (tok[0] == "BA_" && tok.size() >= 3) {
      if (tok[1] == "\"Baudrate\"") {
        bitrate = parse_int(strip_trailing(tok[2], ';'), line_no, "baudrate");
        continue;
      }
      if (tok.size() >= 5 && tok[2] == "BO_" &&
          (tok[1] == "\"GenMsgCycleTime\"" || tok[1] == "\"GenMsgDelayTime\"")) {
        const auto id = static_cast<std::uint32_t>(parse_int(tok[3], line_no, "message id"));
        const auto it = messages.find(id);
        if (it == messages.end()) fail(line_no, "attribute for unknown message id " + tok[3]);
        const Duration value =
            Duration::ms(parse_int(strip_trailing(tok[4], ';'), line_no, "attribute value"));
        if (tok[1] == "\"GenMsgCycleTime\"")
          it->second.cycle_time = value;
        else
          it->second.delay_time = value;
        continue;
      }
    }
    // Everything else: ignored (comments, version, value tables, ...).
  }

  KMatrix km{options.bus_name, BitTiming{bitrate}};
  std::set<std::string> declared(node_names.begin(), node_names.end());
  // Senders/receivers not in BU_ (e.g. the conventional "Vector__XXX"
  // placeholder) become nodes too, so the matrix always validates.
  for (const auto& [id, m] : messages) {
    declared.insert(m.sender);
    for (const auto& r : m.receivers) declared.insert(r);
  }
  for (const auto& n : declared) {
    EcuNode node;
    node.name = n;
    km.add_node(std::move(node));
  }

  for (const auto& [raw_id, m] : messages) {
    CanMessage out;
    out.name = m.name;
    out.format = (raw_id & kExtendedBit) ? FrameFormat::kExtended : FrameFormat::kStandard;
    out.id = raw_id & ~kExtendedBit;
    out.payload_bytes = std::clamp(m.dlc, 0, 8);
    if (m.cycle_time && *m.cycle_time > Duration::zero()) {
      out.period = *m.cycle_time;
      out.jitter_known = false;
    } else if (default_cycle && *default_cycle > Duration::zero()) {
      out.period = *default_cycle;
    } else {
      out.period = options.fallback_period;
    }
    if (m.delay_time) out.min_distance = *m.delay_time;
    out.sender = m.sender;
    out.receivers.assign(m.receivers.begin(), m.receivers.end());
    if (out.receivers.empty()) out.receivers.push_back(m.sender);
    km.add_message(std::move(out));
  }
  km.validate();
  return km;
}

KMatrix load_dbc(const std::string& path, const DbcImportOptions& options) {
  return kmatrix_from_dbc(read_file(path), options);
}

}  // namespace symcan

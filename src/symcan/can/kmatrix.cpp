#include "symcan/can/kmatrix.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace symcan {

void KMatrix::add_node(EcuNode node) {
  node.validate();
  if (find_node(node.name) != nullptr)
    throw std::invalid_argument("KMatrix: duplicate node '" + node.name + "'");
  nodes_.push_back(std::move(node));
}

const EcuNode* KMatrix::find_node(const std::string& name) const {
  for (const auto& n : nodes_)
    if (n.name == name) return &n;
  return nullptr;
}

void KMatrix::add_message(CanMessage m) {
  m.validate();
  messages_.push_back(std::move(m));
}

const CanMessage* KMatrix::find_message(const std::string& name) const {
  for (const auto& m : messages_)
    if (m.name == name) return &m;
  return nullptr;
}

std::vector<std::size_t> KMatrix::priority_order() const {
  std::vector<std::size_t> idx(messages_.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return messages_[a].arbitration_rank() < messages_[b].arbitration_rank();
  });
  return idx;
}

void KMatrix::validate() const {
  // Standard and extended identifiers arbitrate in distinct spaces (the
  // IDE bit participates), so uniqueness is per (format, id).
  std::set<std::uint64_t> ids;
  std::set<std::string> names;
  for (const auto& m : messages_) {
    m.validate();
    const std::uint64_t key =
        (m.format == FrameFormat::kExtended ? (std::uint64_t{1} << 32) : 0) | m.id;
    if (!ids.insert(key).second)
      throw std::invalid_argument("KMatrix: duplicate CAN id for message '" + m.name + "'");
    if (!names.insert(m.name).second)
      throw std::invalid_argument("KMatrix: duplicate message name '" + m.name + "'");
    if (find_node(m.sender) == nullptr)
      throw std::invalid_argument("KMatrix: message '" + m.name + "' sent by unknown node '" +
                                  m.sender + "'");
    for (const auto& r : m.receivers)
      if (find_node(r) == nullptr)
        throw std::invalid_argument("KMatrix: message '" + m.name + "' received by unknown node '" +
                                    r + "'");
  }
}

double KMatrix::utilization(bool worst_case_stuffing) const {
  double u = 0;
  for (const auto& m : messages_) {
    const Duration c = m.wcet(timing_, worst_case_stuffing);
    u += c.as_s() / m.period.as_s();
  }
  return u;
}

double KMatrix::node_traffic_bps(const std::string& node, bool worst_case_stuffing) const {
  double bits_per_s = 0;
  for (const auto& m : messages_) {
    if (m.sender != node) continue;
    const auto bits = worst_case_stuffing ? frame_bits_worst_case(m.format, m.payload_bytes)
                                          : frame_bits_unstuffed(m.format, m.payload_bytes);
    bits_per_s += static_cast<double>(bits) / m.period.as_s();
  }
  return bits_per_s;
}

}  // namespace symcan

#pragma once

// K-Matrix CSV import/export.
//
// The paper's workflow begins with "We automatically imported the length,
// CAN id (priority), and the period of each message from the K-Matrix."
// This module provides a round-trippable textual format so synthetic and
// hand-written matrices are interchangeable.
//
// Format: one record per line; the first field tags the record kind.
//
//   bus,<name>,<bitrate_bps>
//   node,<name>,<fullCAN|basicCAN>,<tx_buffers>,<gateway:0|1>
//   msg,<name>,<id>,<standard|extended>,<bytes>,<period_ns>,<jitter_ns>,
//       <dmin_ns>,<period|min-re-arrival|explicit>,<deadline_ns|->,
//       <sender>,<receivers ';'-separated>,<jitter_known:0|1>,
//       <tt_offset_ns|->                      (14th field optional/legacy)
//
// Lines starting with '#' are comments.

#include <optional>
#include <string>

#include "symcan/can/kmatrix.hpp"
#include "symcan/util/diagnostics.hpp"

namespace symcan {

/// Serialize a K-Matrix to the CSV format above.
std::string kmatrix_to_csv(const KMatrix& km);

/// Parse the CSV format above, reporting every malformed record through
/// `diags` (line-numbered; strict/lenient policy in util/diagnostics.hpp).
/// All numeric fields are range-checked at this trust boundary: ids must
/// fit their frame format, payloads 0..8 bytes, periods positive, empty
/// receiver entries (a stray ';') are diagnosed instead of silently
/// dropped. Does not throw on malformed input; returns nullopt when any
/// error was recorded, and a fully validated matrix otherwise.
std::optional<KMatrix> kmatrix_from_csv(const std::string& text, Diagnostics& diags);

/// Throwing convenience wrapper (lenient policy): throws ParseError — a
/// std::runtime_error whose what() carries the line-numbered diagnostics.
KMatrix kmatrix_from_csv(const std::string& text);

/// File convenience wrappers.
void save_kmatrix(const KMatrix& km, const std::string& path);
KMatrix load_kmatrix(const std::string& path);

}  // namespace symcan

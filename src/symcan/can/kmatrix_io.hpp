#pragma once

// K-Matrix CSV import/export.
//
// The paper's workflow begins with "We automatically imported the length,
// CAN id (priority), and the period of each message from the K-Matrix."
// This module provides a round-trippable textual format so synthetic and
// hand-written matrices are interchangeable.
//
// Format: one record per line; the first field tags the record kind.
//
//   bus,<name>,<bitrate_bps>
//   node,<name>,<fullCAN|basicCAN>,<tx_buffers>,<gateway:0|1>
//   msg,<name>,<id>,<standard|extended>,<bytes>,<period_ns>,<jitter_ns>,
//       <dmin_ns>,<period|min-re-arrival|explicit>,<deadline_ns|->,
//       <sender>,<receivers ';'-separated>,<jitter_known:0|1>,
//       <tt_offset_ns|->                      (14th field optional/legacy)
//
// Lines starting with '#' are comments.

#include <string>

#include "symcan/can/kmatrix.hpp"

namespace symcan {

/// Serialize a K-Matrix to the CSV format above.
std::string kmatrix_to_csv(const KMatrix& km);

/// Parse the CSV format above. Throws std::runtime_error with a
/// line-numbered message on malformed input; runs KMatrix::validate().
KMatrix kmatrix_from_csv(const std::string& text);

/// File convenience wrappers.
void save_kmatrix(const KMatrix& km, const std::string& path);
KMatrix load_kmatrix(const std::string& path);

}  // namespace symcan

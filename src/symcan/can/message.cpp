#include "symcan/can/message.hpp"

#include <stdexcept>

namespace symcan {

const char* to_string(DeadlinePolicy p) {
  switch (p) {
    case DeadlinePolicy::kPeriod:
      return "period";
    case DeadlinePolicy::kMinReArrival:
      return "min-re-arrival";
    case DeadlinePolicy::kExplicit:
      return "explicit";
  }
  return "?";
}

Duration CanMessage::deadline() const {
  switch (deadline_policy) {
    case DeadlinePolicy::kPeriod:
      return period;
    case DeadlinePolicy::kMinReArrival:
      // Minimum re-arrival of the next instance: it may arrive up to J
      // early relative to the current one's nominal release. Never below
      // the minimum distance if one is guaranteed.
      return max(period - jitter, min_distance);
    case DeadlinePolicy::kExplicit:
      return explicit_deadline;
  }
  return Duration::infinite();
}

namespace {

/// The CSV round-trip joins receiver names with ';' and has no escape for
/// line breaks, so those characters in an identifier could not be parsed
/// back. Reject them here so serialization stays invertible.
bool name_roundtrips(const std::string& s) {
  return s.find_first_of(";\n\r") == std::string::npos;
}

}  // namespace

void CanMessage::validate() const {
  if (name.empty()) throw std::invalid_argument("CanMessage: empty name");
  if (!name_roundtrips(name))
    throw std::invalid_argument("CanMessage '" + name + "': name contains ';' or a line break");
  const CanId max_id = format == FrameFormat::kStandard ? max_standard_id : max_extended_id;
  if (id > max_id)
    throw std::invalid_argument("CanMessage '" + name + "': id exceeds format range");
  if (payload_bytes < 0 || payload_bytes > 8)
    throw std::invalid_argument("CanMessage '" + name + "': payload must be 0..8 bytes");
  if (period <= Duration::zero())
    throw std::invalid_argument("CanMessage '" + name + "': period must be > 0");
  if (jitter < Duration::zero())
    throw std::invalid_argument("CanMessage '" + name + "': jitter must be >= 0");
  if (min_distance < Duration::zero())
    throw std::invalid_argument("CanMessage '" + name + "': min_distance must be >= 0");
  if (deadline_policy == DeadlinePolicy::kExplicit && explicit_deadline <= Duration::zero())
    throw std::invalid_argument("CanMessage '" + name + "': explicit deadline must be > 0");
  if (tt_offset && (*tt_offset < Duration::zero() || *tt_offset >= period))
    throw std::invalid_argument("CanMessage '" + name + "': tt_offset must be in [0, period)");
  if (sender.empty())
    throw std::invalid_argument("CanMessage '" + name + "': sender ECU missing");
  if (!name_roundtrips(sender))
    throw std::invalid_argument("CanMessage '" + name + "': sender contains ';' or a line break");
  for (const auto& r : receivers) {
    if (r.empty())
      throw std::invalid_argument("CanMessage '" + name + "': empty receiver name");
    if (!name_roundtrips(r))
      throw std::invalid_argument("CanMessage '" + name +
                                  "': receiver contains ';' or a line break");
  }
}

}  // namespace symcan

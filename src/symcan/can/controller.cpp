#include "symcan/can/controller.hpp"

#include <stdexcept>

namespace symcan {

const char* to_string(ControllerType t) {
  return t == ControllerType::kFullCan ? "fullCAN" : "basicCAN";
}

void EcuNode::validate() const {
  if (name.empty()) throw std::invalid_argument("EcuNode: empty name");
  if (name.find_first_of(";\n\r") != std::string::npos)
    throw std::invalid_argument("EcuNode '" + name + "': name contains ';' or a line break");
  if (tx_buffers < 1)
    throw std::invalid_argument("EcuNode '" + name + "': tx_buffers must be >= 1");
}

}  // namespace symcan

#pragma once

// CAN controller / ECU node model.
//
// The paper (Section 3.2) notes that "the controller type (basicCAN,
// fullCAN, etc.) influences the order in which messages are sent". We
// model the two classic families:
//
//  * fullCAN: one transmit buffer per message object; the controller
//    always arbitrates internally by CAN ID, so the node presents its
//    highest-priority pending frame to the bus. No intra-node priority
//    inversion.
//
//  * basicCAN: a small number of shared transmit buffers filled by
//    software, commonly drained in FIFO order and without transmit abort.
//    A high-priority frame can sit behind lower-priority same-node frames
//    that were queued earlier — an intra-node priority inversion that the
//    analysis must charge as additional blocking.

#include <cstdint>
#include <string>

#include "symcan/util/time.hpp"

namespace symcan {

enum class ControllerType : std::uint8_t {
  kFullCan,   ///< Per-message buffers, internal priority arbitration.
  kBasicCan,  ///< Shared FIFO transmit queue, no abort.
};

const char* to_string(ControllerType t);

/// One node (ECU or gateway) attached to a bus.
struct EcuNode {
  std::string name;
  ControllerType controller = ControllerType::kFullCan;

  /// Number of hardware transmit buffers for basicCAN controllers.
  /// A frame entering the queue can be preceded by up to
  /// (tx_buffers - 1) already-committed lower-priority frames plus the one
  /// currently on the wire.
  int tx_buffers = 1;

  /// True for gateway nodes that forward traffic between buses; the
  /// compositional engine adds store-and-forward latency and jitter for
  /// frames routed through them.
  bool is_gateway = false;

  void validate() const;
};

}  // namespace symcan

#pragma once

// The CAN communication matrix ("K-Matrix"): the central OEM artifact of
// the paper. Holds the bus configuration, the attached nodes, and all
// message rows, and offers the simple whole-bus queries (load, priority
// order) the integration workflow starts from.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "symcan/can/controller.hpp"
#include "symcan/can/frame.hpp"
#include "symcan/can/message.hpp"

namespace symcan {

/// A complete single-bus K-Matrix.
class KMatrix {
 public:
  KMatrix(std::string bus_name, BitTiming timing)
      : bus_name_{std::move(bus_name)}, timing_{timing} {}

  const std::string& bus_name() const { return bus_name_; }
  const BitTiming& timing() const { return timing_; }

  /// Nodes. Adding a message whose sender is unknown is rejected by
  /// validate(), so add nodes first.
  void add_node(EcuNode node);
  const std::vector<EcuNode>& nodes() const { return nodes_; }
  const EcuNode* find_node(const std::string& name) const;

  /// Messages, in insertion order.
  void add_message(CanMessage m);
  const std::vector<CanMessage>& messages() const { return messages_; }
  std::vector<CanMessage>& messages() { return messages_; }
  const CanMessage* find_message(const std::string& name) const;
  std::size_t size() const { return messages_.size(); }

  /// Indices of messages() sorted by ascending CAN ID (descending
  /// priority): the transmission-order view the analyses iterate in.
  std::vector<std::size_t> priority_order() const;

  /// Full-matrix validation: per-row checks, unique names, unique IDs,
  /// known sender nodes. Throws std::invalid_argument.
  void validate() const;

  /// Bus utilization (paper Section 3.1): sum of frame_time/period over
  /// all messages. `worst_case_stuffing` selects the frame-length model.
  double utilization(bool worst_case_stuffing) const;

  /// Raw traffic in bit/s contributed by one node (Figure 1 view).
  double node_traffic_bps(const std::string& node, bool worst_case_stuffing) const;

 private:
  std::string bus_name_;
  BitTiming timing_;
  std::vector<EcuNode> nodes_;
  std::vector<CanMessage> messages_;
};

}  // namespace symcan

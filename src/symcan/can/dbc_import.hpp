#pragma once

// Import of (a practical subset of) the Vector DBC format — the de-facto
// exchange format for CAN communication matrices in the industry the
// paper addresses. Supported constructs:
//
//   BU_: <node> <node> ...                       node list
//   BO_ <id> <name>: <dlc> <sender>              message definition
//   SG_ <sig> : ... <receiver>[,<receiver>...]   receivers (union over signals)
//   BA_ "GenMsgCycleTime" BO_ <id> <ms>;         per-message period
//   BA_ "GenMsgDelayTime" BO_ <id> <ms>;         minimum distance
//   BA_DEF_DEF_ "GenMsgCycleTime" <ms>;          default period
//   BA_ "Baudrate" <bps>;                        network bit rate
//
// Extended (29-bit) identifiers carry bit 31 in the DBC id field.
// Everything else (comments CM_, value tables, signal scaling, ...) is
// tolerated and ignored. Messages without any cycle time (event-driven
// diagnostics etc.) get `options.fallback_period` and are marked
// jitter-unknown.

#include <optional>
#include <string>

#include "symcan/can/kmatrix.hpp"
#include "symcan/util/diagnostics.hpp"

namespace symcan {

struct DbcImportOptions {
  /// Used when the file carries no BA_ "Baudrate" attribute.
  std::int64_t default_bitrate_bps = 500'000;
  /// Period for messages lacking GenMsgCycleTime.
  Duration fallback_period = Duration::ms(100);
  /// Name given to the imported bus.
  std::string bus_name = "dbc";
};

/// Parse DBC text, reporting every malformed construct through `diags`
/// (line-numbered; see util/diagnostics.hpp for the strict/lenient
/// policy). Identifier hygiene is enforced here, at the trust boundary:
/// negative ids/DLCs, DLC > 8, standard ids above 11 bits and extended
/// ids (bit 31 of the raw DBC id) above 29 bits are all rejected, as are
/// negative cycle/delay times and out-of-range bit rates. Does not throw
/// on malformed input; returns nullopt when any error was recorded, and a
/// fully validated matrix otherwise.
std::optional<KMatrix> kmatrix_from_dbc(const std::string& text, const DbcImportOptions& options,
                                        Diagnostics& diags);

/// Throwing convenience wrapper (lenient policy): throws ParseError — a
/// std::runtime_error whose what() carries the line-numbered diagnostics.
KMatrix kmatrix_from_dbc(const std::string& text, const DbcImportOptions& options = {});

/// File convenience wrapper.
KMatrix load_dbc(const std::string& path, const DbcImportOptions& options = {});

}  // namespace symcan

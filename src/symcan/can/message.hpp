#pragma once

// One row of a CAN communication matrix ("K-Matrix"): everything the OEM
// knows statically about a bus message (paper Figure 3, grey area), plus
// the dynamic attributes (jitter, minimum distance) that ECU suppliers
// contribute as their implementations firm up.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "symcan/can/frame.hpp"
#include "symcan/model/event_model.hpp"
#include "symcan/util/time.hpp"

namespace symcan {

/// CAN identifier. Doubles as the arbitration priority: numerically lower
/// IDs win arbitration.
using CanId = std::uint32_t;

constexpr CanId max_standard_id = 0x7FF;
constexpr CanId max_extended_id = 0x1FFF'FFFF;

/// How the deadline of a message is derived (paper Section 3.2 / Figure 5).
enum class DeadlinePolicy : std::uint8_t {
  kPeriod,        ///< D = T: the next instance overwrites the buffer at the
                  ///< nominal period (best-case assumption in Figure 5).
  kMinReArrival,  ///< D = T - J: the successor can arrive early by the full
                  ///< jitter; the paper's worst-case assumption.
  kExplicit,      ///< D given explicitly in the K-Matrix.
};

const char* to_string(DeadlinePolicy p);

/// A periodic/sporadic CAN message.
struct CanMessage {
  std::string name;
  CanId id = 0;              ///< Identifier == arbitration priority (lower wins).
  FrameFormat format = FrameFormat::kStandard;
  int payload_bytes = 8;     ///< DLC, 0..8.

  Duration period = Duration::ms(10);   ///< Nominal period (or min inter-arrival).
  Duration jitter = Duration::zero();   ///< Queueing jitter at the sender.
  Duration min_distance = Duration::zero();  ///< Burst limitation (0 = none).

  /// TimeTable activation (paper Section 5.2): when set, the sender
  /// releases this message at `n*period + *tt_offset (+ jitter)`. Senders
  /// with offset-scheduled messages desynchronize their releases, which
  /// the offset-aware analysis exploits. Must satisfy 0 <= offset < period.
  std::optional<Duration> tt_offset;

  DeadlinePolicy deadline_policy = DeadlinePolicy::kPeriod;
  Duration explicit_deadline = Duration::infinite();  ///< Used with kExplicit.

  std::string sender;                  ///< Sending ECU name.
  std::vector<std::string> receivers;  ///< Receiving ECU names.

  /// True for messages the OEM knows the jitter of (paper Section 4: "We
  /// knew the jitters of only a few messages"); false means the jitter
  /// field is an assumption subject to what-if variation.
  bool jitter_known = false;

  /// Activation model implied by the row.
  EventModel activation() const {
    return EventModel::periodic_burst(period, jitter, min_distance);
  }

  /// Total order matching CAN arbitration across frame formats: the 11
  /// base-ID bits compare first; on a tie a standard frame beats an
  /// extended one (its RTR bit is dominant where the extended frame sends
  /// the recessive SRR); extended frames then compare their remaining 18
  /// ID bits. Lower rank = higher priority.
  std::uint64_t arbitration_rank() const {
    if (format == FrameFormat::kStandard) return std::uint64_t{id} << 19;
    const std::uint64_t base11 = id >> 18;
    const std::uint64_t ext18 = id & 0x3FFFF;
    return (base11 << 19) | (std::uint64_t{1} << 18) | ext18;
  }

  /// Deadline under the given policy (Section 3.2: a message is lost when
  /// its worst-case response time exceeds its minimum re-arrival time).
  Duration deadline() const;

  /// Worst-case / best-case time on the wire at the given bit timing.
  Duration wcet(const BitTiming& t, bool worst_case_stuffing) const {
    return worst_case_stuffing ? frame_time_worst_case(t, format, payload_bytes)
                               : frame_time_unstuffed(t, format, payload_bytes);
  }
  Duration bcet(const BitTiming& t) const {
    return frame_time_unstuffed(t, format, payload_bytes);
  }

  /// Validation; throws std::invalid_argument with a message naming the
  /// offending field.
  void validate() const;
};

}  // namespace symcan

#pragma once

// CAN frame timing model.
//
// Computes best-case (no stuff bits) and worst-case (maximum stuffing)
// frame lengths for standard (11-bit ID) and extended (29-bit ID) data
// frames, following the corrected formulation of Davis, Burns, Bril &
// Lukkien ("Controller Area Network (CAN) schedulability analysis:
// Refuted, revisited and revised", Real-Time Systems 35, 2007), which is
// the modern form of the Tindell & Burns analysis the paper builds on.
//
// Only the first g + 8s - 1 bits of a frame (up to the end of the CRC
// sequence) are subject to bit stuffing, where g = 34 for standard and
// g = 54 for extended format; the CRC delimiter, ACK slot/delimiter, EOF
// and the 3-bit interframe space (13 bits total) are not stuffed.

#include <cstdint>

#include "symcan/util/time.hpp"

namespace symcan {

enum class FrameFormat : std::uint8_t {
  kStandard,  ///< CAN 2.0A, 11-bit identifier
  kExtended,  ///< CAN 2.0B, 29-bit identifier
};

const char* to_string(FrameFormat f);

/// Number of non-data protocol bits exposed to stuffing (g in Davis et al.).
constexpr std::int64_t stuffable_overhead_bits(FrameFormat f) {
  return f == FrameFormat::kStandard ? 34 : 54;
}

/// Protocol bits never subject to stuffing: CRC delimiter (1), ACK slot +
/// delimiter (2), EOF (7), interframe space (3).
constexpr std::int64_t unstuffed_tail_bits = 13;

/// Frame length in bits with zero stuff bits (best case).
/// `payload_bytes` must be in [0, 8] for classic CAN.
constexpr std::int64_t frame_bits_unstuffed(FrameFormat f, int payload_bytes) {
  return stuffable_overhead_bits(f) + 8 * payload_bytes + unstuffed_tail_bits;
}

/// Frame length in bits with worst-case stuffing: one stuff bit per four
/// original bits of the stuffed region after the first.
constexpr std::int64_t frame_bits_worst_case(FrameFormat f, int payload_bytes) {
  const std::int64_t stuffed_region = stuffable_overhead_bits(f) + 8 * payload_bytes;
  return stuffed_region + unstuffed_tail_bits + (stuffed_region - 1) / 4;
}

/// Error-signalling overhead in bits: error flag (6, up to 12 after
/// superposition) + error delimiter (8) + interframe space (3) = up to 31
/// bits (the constant used by Tindell & Burns for the recovery overhead
/// preceding a retransmission).
constexpr std::int64_t error_frame_bits = 31;

/// Bit-level timing of a bus: nominal bit rate and derived bit time.
class BitTiming {
 public:
  /// Bit rate in bit/s, e.g. 500'000 for the paper's power-train bus.
  /// Bit time is rounded to the nearest nanosecond (exact for all standard
  /// CAN rates: 125k/250k/500k/1M).
  explicit BitTiming(std::int64_t bits_per_second);

  std::int64_t bits_per_second() const { return bps_; }
  Duration bit_time() const { return bit_time_; }

  Duration duration_of(std::int64_t bits) const { return bits * bit_time_; }

 private:
  std::int64_t bps_;
  Duration bit_time_;
};

/// Transmission time of one frame (best case / worst-case stuffing).
Duration frame_time_unstuffed(const BitTiming& t, FrameFormat f, int payload_bytes);
Duration frame_time_worst_case(const BitTiming& t, FrameFormat f, int payload_bytes);

}  // namespace symcan

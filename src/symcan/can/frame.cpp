#include "symcan/can/frame.hpp"

#include <stdexcept>

namespace symcan {

const char* to_string(FrameFormat f) {
  return f == FrameFormat::kStandard ? "standard" : "extended";
}

BitTiming::BitTiming(std::int64_t bits_per_second) : bps_{bits_per_second} {
  if (bits_per_second <= 0) throw std::invalid_argument("BitTiming: bit rate must be > 0");
  if (bits_per_second > 1'000'000'000)
    throw std::invalid_argument("BitTiming: bit rate above 1 Gbit/s is not a CAN rate");
  bit_time_ = Duration::ns((1'000'000'000 + bits_per_second / 2) / bits_per_second);
}

namespace {
void check_payload(int payload_bytes) {
  if (payload_bytes < 0 || payload_bytes > 8)
    throw std::invalid_argument("CAN payload must be 0..8 bytes");
}
}  // namespace

Duration frame_time_unstuffed(const BitTiming& t, FrameFormat f, int payload_bytes) {
  check_payload(payload_bytes);
  return t.duration_of(frame_bits_unstuffed(f, payload_bytes));
}

Duration frame_time_worst_case(const BitTiming& t, FrameFormat f, int payload_bytes) {
  check_payload(payload_bytes);
  return t.duration_of(frame_bits_worst_case(f, payload_bytes));
}

}  // namespace symcan

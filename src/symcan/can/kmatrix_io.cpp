#include "symcan/can/kmatrix_io.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

#include "symcan/util/csv.hpp"

namespace symcan {

namespace {

std::string join(const std::vector<std::string>& parts, char sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.push_back(sep);
    out += parts[i];
  }
  return out;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::int64_t to_i64(const std::string& s, const char* what) {
  std::int64_t v = 0;
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto res = std::from_chars(begin, end, v);
  if (res.ec != std::errc{} || res.ptr != end)
    throw std::runtime_error(std::string("K-Matrix CSV: bad integer for ") + what + ": '" + s + "'");
  return v;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& msg) {
  std::ostringstream os;
  os << "K-Matrix CSV line " << line_no << ": " << msg;
  throw std::runtime_error(os.str());
}

}  // namespace

std::string kmatrix_to_csv(const KMatrix& km) {
  std::ostringstream os;
  os << "# symcan K-Matrix\n";
  os << format_csv_row({"bus", km.bus_name(), std::to_string(km.timing().bits_per_second())})
     << '\n';
  for (const auto& n : km.nodes()) {
    os << format_csv_row({"node", n.name, to_string(n.controller), std::to_string(n.tx_buffers),
                          n.is_gateway ? "1" : "0"})
       << '\n';
  }
  for (const auto& m : km.messages()) {
    const bool expl = m.deadline_policy == DeadlinePolicy::kExplicit;
    os << format_csv_row(
              {"msg", m.name, std::to_string(m.id), to_string(m.format),
               std::to_string(m.payload_bytes), std::to_string(m.period.count_ns()),
               std::to_string(m.jitter.count_ns()),
               std::to_string(m.min_distance.count_ns()), to_string(m.deadline_policy),
               expl ? std::to_string(m.explicit_deadline.count_ns()) : "-", m.sender,
               join(m.receivers, ';'), m.jitter_known ? "1" : "0",
               m.tt_offset ? std::to_string(m.tt_offset->count_ns()) : "-"})
       << '\n';
  }
  return os.str();
}

KMatrix kmatrix_from_csv(const std::string& text) {
  std::optional<KMatrix> km;
  const auto rows = parse_csv(text);
  std::size_t line_no = 0;
  for (const auto& row : rows) {
    ++line_no;
    if (row.empty() || row[0].empty()) continue;
    const std::string& kind = row[0];
    if (kind == "bus") {
      if (row.size() != 3) fail(line_no, "bus record needs 3 fields");
      if (km) fail(line_no, "duplicate bus record");
      km.emplace(row[1], BitTiming{to_i64(row[2], "bitrate")});
    } else if (kind == "node") {
      if (!km) fail(line_no, "node record before bus record");
      if (row.size() != 5) fail(line_no, "node record needs 5 fields");
      EcuNode n;
      n.name = row[1];
      if (row[2] == "fullCAN")
        n.controller = ControllerType::kFullCan;
      else if (row[2] == "basicCAN")
        n.controller = ControllerType::kBasicCan;
      else
        fail(line_no, "unknown controller type '" + row[2] + "'");
      n.tx_buffers = static_cast<int>(to_i64(row[3], "tx_buffers"));
      n.is_gateway = row[4] == "1";
      km->add_node(std::move(n));
    } else if (kind == "msg") {
      if (!km) fail(line_no, "msg record before bus record");
      // 13 fields = legacy (no TimeTable offset column), 14 = current.
      if (row.size() != 13 && row.size() != 14) fail(line_no, "msg record needs 13 or 14 fields");
      CanMessage m;
      m.name = row[1];
      m.id = static_cast<CanId>(to_i64(row[2], "id"));
      if (row[3] == "standard")
        m.format = FrameFormat::kStandard;
      else if (row[3] == "extended")
        m.format = FrameFormat::kExtended;
      else
        fail(line_no, "unknown frame format '" + row[3] + "'");
      m.payload_bytes = static_cast<int>(to_i64(row[4], "bytes"));
      m.period = Duration::ns(to_i64(row[5], "period_ns"));
      m.jitter = Duration::ns(to_i64(row[6], "jitter_ns"));
      m.min_distance = Duration::ns(to_i64(row[7], "dmin_ns"));
      if (row[8] == "period")
        m.deadline_policy = DeadlinePolicy::kPeriod;
      else if (row[8] == "min-re-arrival")
        m.deadline_policy = DeadlinePolicy::kMinReArrival;
      else if (row[8] == "explicit")
        m.deadline_policy = DeadlinePolicy::kExplicit;
      else
        fail(line_no, "unknown deadline policy '" + row[8] + "'");
      if (m.deadline_policy == DeadlinePolicy::kExplicit)
        m.explicit_deadline = Duration::ns(to_i64(row[9], "deadline_ns"));
      m.sender = row[10];
      m.receivers = split(row[11], ';');
      m.jitter_known = row[12] == "1";
      if (row.size() == 14 && row[13] != "-")
        m.tt_offset = Duration::ns(to_i64(row[13], "offset_ns"));
      km->add_message(std::move(m));
    } else {
      fail(line_no, "unknown record kind '" + kind + "'");
    }
  }
  if (!km) throw std::runtime_error("K-Matrix CSV: missing bus record");
  km->validate();
  return std::move(*km);
}

void save_kmatrix(const KMatrix& km, const std::string& path) {
  write_file(path, kmatrix_to_csv(km));
}

KMatrix load_kmatrix(const std::string& path) { return kmatrix_from_csv(read_file(path)); }

}  // namespace symcan

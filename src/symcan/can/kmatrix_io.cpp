#include "symcan/can/kmatrix_io.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

#include "symcan/util/csv.hpp"

namespace symcan {

namespace {

std::string join(const std::vector<std::string>& parts, char sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.push_back(sep);
    out += parts[i];
  }
  return out;
}

/// Split preserving empty fields: "a;;b" -> {"a", "", "b"}, so a stray
/// separator is visible to the caller as an empty entry (and can be
/// diagnosed) instead of silently shifting every following value. The
/// empty string yields no fields (the receivers column may be empty).
std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  if (s.empty()) return out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::optional<std::int64_t> to_i64(const std::string& s, std::size_t line_no, const char* what,
                                   Diagnostics& diags) {
  std::int64_t v = 0;
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto res = std::from_chars(begin, end, v);
  if (res.ec != std::errc{} || res.ptr != end) {
    diags.error(line_no, std::string("bad integer for ") + what + ": '" + s + "'");
    return std::nullopt;
  }
  return v;
}

/// Integer field with an inclusive range; out-of-range values are
/// diagnosed at the trust boundary instead of being cast into narrower
/// types downstream.
std::optional<std::int64_t> to_i64_in(const std::string& s, std::size_t line_no, const char* what,
                                      std::int64_t lo, std::int64_t hi, Diagnostics& diags) {
  const auto v = to_i64(s, line_no, what, diags);
  if (!v) return std::nullopt;
  if (*v < lo || *v > hi) {
    diags.error(line_no, std::string(what) + " " + s + " outside [" + std::to_string(lo) + ", " +
                             std::to_string(hi) + "]");
    return std::nullopt;
  }
  return v;
}

/// 0/1 boolean column. Anything else is recoverable (treated as 0) under
/// the lenient policy, an error under strict.
bool to_bool01(const std::string& s, std::size_t line_no, const char* what, Diagnostics& diags) {
  if (s == "1") return true;
  if (s != "0") diags.warning(line_no, std::string(what) + " '" + s + "' is not 0|1; treated as 0");
  return false;
}

}  // namespace

std::string kmatrix_to_csv(const KMatrix& km) {
  std::ostringstream os;
  os << "# symcan K-Matrix\n";
  os << format_csv_row({"bus", km.bus_name(), std::to_string(km.timing().bits_per_second())})
     << '\n';
  for (const auto& n : km.nodes()) {
    os << format_csv_row({"node", n.name, to_string(n.controller), std::to_string(n.tx_buffers),
                          n.is_gateway ? "1" : "0"})
       << '\n';
  }
  for (const auto& m : km.messages()) {
    const bool expl = m.deadline_policy == DeadlinePolicy::kExplicit;
    os << format_csv_row(
              {"msg", m.name, std::to_string(m.id), to_string(m.format),
               std::to_string(m.payload_bytes), std::to_string(m.period.count_ns()),
               std::to_string(m.jitter.count_ns()),
               std::to_string(m.min_distance.count_ns()), to_string(m.deadline_policy),
               expl ? std::to_string(m.explicit_deadline.count_ns()) : "-", m.sender,
               join(m.receivers, ';'), m.jitter_known ? "1" : "0",
               m.tt_offset ? std::to_string(m.tt_offset->count_ns()) : "-"})
       << '\n';
  }
  return os.str();
}

std::optional<KMatrix> kmatrix_from_csv(const std::string& text, Diagnostics& diags) {
  diags.set_source("K-Matrix CSV");
  std::optional<KMatrix> km;
  for (const auto& [line_no, row] : parse_csv_numbered(text)) {
    if (diags.exhausted()) {
      diags.error(0, "too many problems; giving up");
      break;
    }
    if (row.empty() || row[0].empty()) continue;
    const std::string& kind = row[0];
    if (kind == "bus") {
      if (row.size() != 3) {
        diags.error(line_no,
                    "bus record needs 3 fields, got " + std::to_string(row.size()));
        continue;
      }
      if (km) {
        diags.error(line_no, "duplicate bus record");
        continue;
      }
      const auto bps = to_i64_in(row[2], line_no, "bitrate", 1, 1'000'000'000, diags);
      if (!bps) continue;
      km.emplace(row[1], BitTiming{*bps});
    } else if (kind == "node") {
      if (!km) {
        diags.error(line_no, "node record before bus record");
        continue;
      }
      if (row.size() != 5) {
        diags.error(line_no,
                    "node record needs 5 fields, got " + std::to_string(row.size()));
        continue;
      }
      EcuNode n;
      n.name = row[1];
      if (row[2] == "fullCAN") {
        n.controller = ControllerType::kFullCan;
      } else if (row[2] == "basicCAN") {
        n.controller = ControllerType::kBasicCan;
      } else {
        diags.error(line_no, "unknown controller type '" + row[2] + "'");
        continue;
      }
      const auto bufs = to_i64_in(row[3], line_no, "tx_buffers", 1, 1'000'000, diags);
      if (!bufs) continue;
      n.tx_buffers = static_cast<int>(*bufs);
      n.is_gateway = to_bool01(row[4], line_no, "gateway flag", diags);
      try {
        n.validate();
        km->add_node(std::move(n));
      } catch (const std::invalid_argument& e) {
        diags.error(line_no, e.what());
      }
    } else if (kind == "msg") {
      if (!km) {
        diags.error(line_no, "msg record before bus record");
        continue;
      }
      // 13 fields = legacy (no TimeTable offset column), 14 = current.
      if (row.size() != 13 && row.size() != 14) {
        diags.error(line_no,
                    "msg record needs 13 or 14 fields, got " + std::to_string(row.size()));
        continue;
      }
      CanMessage m;
      m.name = row[1];
      if (row[3] == "standard") {
        m.format = FrameFormat::kStandard;
      } else if (row[3] == "extended") {
        m.format = FrameFormat::kExtended;
      } else {
        diags.error(line_no, "unknown frame format '" + row[3] + "'");
        continue;
      }
      const CanId max_id =
          m.format == FrameFormat::kStandard ? max_standard_id : max_extended_id;
      const auto id = to_i64_in(row[2], line_no, "id", 0, max_id, diags);
      const auto bytes = to_i64_in(row[4], line_no, "bytes", 0, 8, diags);
      const auto period_ns = to_i64(row[5], line_no, "period_ns", diags);
      const auto jitter_ns = to_i64(row[6], line_no, "jitter_ns", diags);
      const auto dmin_ns = to_i64(row[7], line_no, "dmin_ns", diags);
      if (!id || !bytes || !period_ns || !jitter_ns || !dmin_ns) continue;
      m.id = static_cast<CanId>(*id);
      m.payload_bytes = static_cast<int>(*bytes);
      if (*period_ns <= 0) {
        diags.error(line_no, "period_ns must be > 0, got " + row[5]);
        continue;
      }
      if (*jitter_ns < 0 || *dmin_ns < 0) {
        diags.error(line_no, "jitter_ns and dmin_ns must be >= 0");
        continue;
      }
      m.period = Duration::ns(*period_ns);
      m.jitter = Duration::ns(*jitter_ns);
      m.min_distance = Duration::ns(*dmin_ns);
      if (row[8] == "period") {
        m.deadline_policy = DeadlinePolicy::kPeriod;
      } else if (row[8] == "min-re-arrival") {
        m.deadline_policy = DeadlinePolicy::kMinReArrival;
      } else if (row[8] == "explicit") {
        m.deadline_policy = DeadlinePolicy::kExplicit;
      } else {
        diags.error(line_no, "unknown deadline policy '" + row[8] + "'");
        continue;
      }
      if (m.deadline_policy == DeadlinePolicy::kExplicit) {
        const auto deadline_ns = to_i64(row[9], line_no, "deadline_ns", diags);
        if (!deadline_ns) continue;
        if (*deadline_ns <= 0) {
          diags.error(line_no, "deadline_ns must be > 0, got " + row[9]);
          continue;
        }
        m.explicit_deadline = Duration::ns(*deadline_ns);
      }
      m.sender = row[10];
      m.receivers = split(row[11], ';');
      bool receivers_ok = true;
      for (const auto& r : m.receivers) {
        if (r.empty()) {
          diags.error(line_no, "empty receiver name in '" + row[11] + "' (stray ';')");
          receivers_ok = false;
          break;
        }
      }
      if (!receivers_ok) continue;
      m.jitter_known = to_bool01(row[12], line_no, "jitter_known flag", diags);
      if (row.size() == 14 && row[13] != "-") {
        const auto offset_ns = to_i64(row[13], line_no, "offset_ns", diags);
        if (!offset_ns) continue;
        if (*offset_ns < 0 || *offset_ns >= *period_ns) {
          diags.error(line_no, "offset_ns must be in [0, period_ns), got " + row[13]);
          continue;
        }
        m.tt_offset = Duration::ns(*offset_ns);
      }
      try {
        m.validate();
        km->add_message(std::move(m));
      } catch (const std::invalid_argument& e) {
        diags.error(line_no, e.what());
      }
    } else {
      diags.error(line_no, "unknown record kind '" + kind + "'");
    }
  }
  if (!km) {
    diags.error(0, "missing bus record");
    return std::nullopt;
  }
  if (!diags.ok()) return std::nullopt;
  try {
    km->validate();
  } catch (const std::invalid_argument& e) {
    diags.error(0, e.what());
    return std::nullopt;
  }
  return km;
}

KMatrix kmatrix_from_csv(const std::string& text) {
  Diagnostics diags{DiagnosticPolicy::kLenient, "K-Matrix CSV"};
  auto km = kmatrix_from_csv(text, diags);
  diags.throw_if_failed();
  if (!km) throw ParseError{diags};  // unreachable unless diags/ok desynchronize
  return std::move(*km);
}

void save_kmatrix(const KMatrix& km, const std::string& path) {
  write_file(path, kmatrix_to_csv(km));
}

KMatrix load_kmatrix(const std::string& path) { return kmatrix_from_csv(read_file(path)); }

}  // namespace symcan

#pragma once

// Multi-supplier risk management (paper Section 6: "The ability to
// perform what-if analysis in rapid cycles even enables a multi-supplier
// risk-management, possibly in combination with a penalty-reward model,
// that allows reacting to bottlenecks earlier than ever" — following
// Kruse, Volling, Thomsen, Ernst & Spengler, AAET 2005 [14]).
//
// Each supplier has committed send jitters for its ECU's messages, but
// may overrun (deliver worse timing) with some probability. Enumerating
// (or sampling) the overrun scenarios and re-running the schedulability
// analysis per scenario yields:
//
//  * the expected contractual penalty (missed messages x penalty rate),
//  * the worst-case scenario and its probability,
//  * per-supplier criticality: how much expected penalty this supplier's
//    overrun adds — the quantity a penalty-reward contract prices.

#include <cstdint>
#include <string>
#include <vector>

#include "symcan/analysis/can_rta.hpp"
#include "symcan/can/kmatrix.hpp"

namespace symcan {

/// One supplier's delivery uncertainty.
struct SupplierRisk {
  std::string ecu;                    ///< The ECU (sender) this supplier delivers.
  double overrun_probability = 0.1;   ///< P(timing worse than committed).
  double overrun_jitter_factor = 2.0; ///< Jitter multiplier when overrunning.
};

struct RiskConfig {
  CanRtaConfig rta;
  /// Contractual penalty per message that can be lost, per scenario.
  double penalty_per_miss = 1.0;
  /// Exhaustive enumeration up to this many scenarios (2^suppliers);
  /// beyond it, Monte Carlo sampling with `samples` draws.
  std::size_t max_enumeration = 4096;
  std::size_t samples = 2000;
  std::uint64_t seed = 99;
};

/// One evaluated overrun scenario.
struct RiskScenario {
  std::vector<bool> overruns;  ///< Per supplier (RiskReport::suppliers order).
  double probability = 0;
  std::size_t misses = 0;
  double penalty = 0;
};

struct RiskReport {
  std::vector<std::string> suppliers;  ///< ECU names, input order.
  double expected_penalty = 0;
  RiskScenario worst;                  ///< Highest-penalty scenario found.
  /// criticality[i] = E[penalty | supplier i overruns] -
  ///                  E[penalty | supplier i on time].
  std::vector<double> criticality;
  std::size_t scenarios_evaluated = 0;
  bool exhaustive = false;
};

/// Assess the risk. The matrix's current jitters are the *committed*
/// values; in an overrun scenario every message of that supplier's ECU
/// gets its jitter multiplied (capped at the period). Deterministic in
/// cfg.seed when sampling.
RiskReport assess_supplier_risk(const KMatrix& km, const std::vector<SupplierRisk>& risks,
                                const RiskConfig& cfg);

}  // namespace symcan

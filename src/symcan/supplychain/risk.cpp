#include "symcan/supplychain/risk.hpp"

#include <cmath>
#include <stdexcept>

#include "symcan/util/rng.hpp"

namespace symcan {

namespace {

void check_inputs(const KMatrix& km, const std::vector<SupplierRisk>& risks) {
  km.validate();
  if (risks.empty()) throw std::invalid_argument("assess_supplier_risk: no suppliers");
  for (const auto& r : risks) {
    if (km.find_node(r.ecu) == nullptr)
      throw std::invalid_argument("assess_supplier_risk: unknown ECU " + r.ecu);
    if (r.overrun_probability < 0 || r.overrun_probability > 1)
      throw std::invalid_argument("assess_supplier_risk: probability out of [0,1] for " + r.ecu);
    if (r.overrun_jitter_factor < 1)
      throw std::invalid_argument("assess_supplier_risk: overrun factor below 1 for " + r.ecu);
  }
}

KMatrix apply_scenario(const KMatrix& km, const std::vector<SupplierRisk>& risks,
                       const std::vector<bool>& overruns) {
  KMatrix out = km;
  for (std::size_t i = 0; i < risks.size(); ++i) {
    if (!overruns[i]) continue;
    for (auto& m : out.messages()) {
      if (m.sender != risks[i].ecu) continue;
      const double scaled =
          risks[i].overrun_jitter_factor * static_cast<double>(m.jitter.count_ns());
      m.jitter = min(Duration::ns(static_cast<std::int64_t>(scaled)), m.period);
    }
  }
  return out;
}

double scenario_probability(const std::vector<SupplierRisk>& risks,
                            const std::vector<bool>& overruns) {
  double p = 1;
  for (std::size_t i = 0; i < risks.size(); ++i)
    p *= overruns[i] ? risks[i].overrun_probability : 1 - risks[i].overrun_probability;
  return p;
}

RiskScenario evaluate(const KMatrix& km, const std::vector<SupplierRisk>& risks,
                      const RiskConfig& cfg, std::vector<bool> overruns) {
  RiskScenario s;
  s.overruns = std::move(overruns);
  s.probability = scenario_probability(risks, s.overruns);
  const BusResult res = CanRta{apply_scenario(km, risks, s.overruns), cfg.rta}.analyze();
  s.misses = res.miss_count();
  s.penalty = cfg.penalty_per_miss * static_cast<double>(s.misses);
  return s;
}

}  // namespace

RiskReport assess_supplier_risk(const KMatrix& km, const std::vector<SupplierRisk>& risks,
                                const RiskConfig& cfg) {
  check_inputs(km, risks);
  RiskReport report;
  for (const auto& r : risks) report.suppliers.push_back(r.ecu);
  const std::size_t n = risks.size();

  // Accumulators for conditional expectations.
  std::vector<double> penalty_given_overrun(n, 0), weight_given_overrun(n, 0);
  std::vector<double> penalty_given_ontime(n, 0), weight_given_ontime(n, 0);

  auto absorb = [&](const RiskScenario& s, double weight) {
    report.expected_penalty += weight * s.penalty;
    for (std::size_t i = 0; i < n; ++i) {
      if (s.overruns[i]) {
        penalty_given_overrun[i] += weight * s.penalty;
        weight_given_overrun[i] += weight;
      } else {
        penalty_given_ontime[i] += weight * s.penalty;
        weight_given_ontime[i] += weight;
      }
    }
    if (s.penalty > report.worst.penalty ||
        (s.penalty == report.worst.penalty && s.probability > report.worst.probability))
      report.worst = s;
  };

  const bool exhaustive = n < 63 && (std::size_t{1} << n) <= cfg.max_enumeration;
  report.exhaustive = exhaustive;
  if (exhaustive) {
    const std::size_t combos = std::size_t{1} << n;
    for (std::size_t mask = 0; mask < combos; ++mask) {
      std::vector<bool> overruns(n);
      for (std::size_t i = 0; i < n; ++i) overruns[i] = (mask >> i) & 1;
      const RiskScenario s = evaluate(km, risks, cfg, std::move(overruns));
      absorb(s, s.probability);
      ++report.scenarios_evaluated;
    }
  } else {
    Rng rng{cfg.seed};
    const double w = 1.0 / static_cast<double>(cfg.samples);
    for (std::size_t k = 0; k < cfg.samples; ++k) {
      std::vector<bool> overruns(n);
      for (std::size_t i = 0; i < n; ++i) overruns[i] = rng.chance(risks[i].overrun_probability);
      const RiskScenario s = evaluate(km, risks, cfg, std::move(overruns));
      absorb(s, w);
      ++report.scenarios_evaluated;
    }
  }

  report.criticality.resize(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const double over =
        weight_given_overrun[i] > 0 ? penalty_given_overrun[i] / weight_given_overrun[i] : 0;
    const double ontime =
        weight_given_ontime[i] > 0 ? penalty_given_ontime[i] / weight_given_ontime[i] : 0;
    report.criticality[i] = over - ontime;
  }
  return report;
}

}  // namespace symcan

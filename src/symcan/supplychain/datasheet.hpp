#pragma once

// Supply-chain interface objects (paper Section 5, Figures 3 and 6).
//
// The paper's key process insight is a *duality*: what one party assumes
// and requires, the other must guarantee, and vice versa —
//
//   OEM  -> supplier: "your ECU's send jitter for message X must stay
//                      below J_req" (derived from bus sensitivity);
//   supplier -> OEM:  "my ECU guarantees send jitter J_guar for X"
//                      (from its internal ECU analysis);
//   supplier -> OEM:  "my control algorithm needs message Y to arrive
//                      with at most latency L and jitter J" (receive
//                      requirement);
//   OEM  -> supplier: "the bus guarantees Y arrives within L', jitter J'"
//                      (from bus analysis).
//
// The interface deliberately exposes only event-model-level data
// (periods, jitters, deadlines, latencies) so "the intellectual property
// of either party [can] be protected, as internal implementation details
// ... need not be disclosed".

#include <optional>
#include <string>
#include <vector>

#include "symcan/analysis/can_rta.hpp"
#include "symcan/can/kmatrix.hpp"
#include "symcan/util/diagnostics.hpp"

namespace symcan {

/// OEM -> supplier: upper bound on the send jitter of a message.
struct SendJitterRequirement {
  std::string message;
  Duration max_jitter = Duration::zero();
};

/// Supplier -> OEM: guaranteed send jitter of a message (from the
/// supplier's own ECU-level analysis; the supplier's IP stays hidden).
struct SendJitterGuarantee {
  std::string message;
  Duration jitter = Duration::zero();
};

/// Supplier -> OEM: receive-side requirement of a consuming ECU.
struct ArrivalRequirement {
  std::string message;
  std::string receiver;  ///< The ECU that needs the data.
  Duration max_latency = Duration::infinite();         ///< Queue-to-delivery bound.
  Duration max_response_jitter = Duration::infinite(); ///< Arrival regularity bound.
};

/// The ECU data sheet a supplier publishes.
struct EcuDatasheet {
  std::string ecu;
  std::vector<SendJitterGuarantee> send_guarantees;
  std::vector<ArrivalRequirement> arrival_requirements;
};

/// Serialize a data sheet to its CSV exchange format:
///
///   ecu,<name>
///   send,<message>,<jitter_ns>
///   need,<message>,<receiver>,<max_latency_ns|inf>,<max_response_jitter_ns|inf>
///
/// Lines starting with '#' are comments. This is the file that actually
/// crosses the OEM/supplier boundary, so the loader below treats it as
/// untrusted input.
std::string datasheet_to_csv(const EcuDatasheet& ds);

/// Parse the CSV exchange format, reporting malformed records through
/// `diags` (line-numbered; policy semantics as in util/diagnostics.hpp).
/// Does not throw on malformed input; returns nullopt when any error was
/// recorded.
std::optional<EcuDatasheet> datasheet_from_csv(const std::string& text, Diagnostics& diags);

/// Throwing convenience wrapper (lenient policy): throws ParseError.
EcuDatasheet datasheet_from_csv(const std::string& text);

/// One mismatch found by the duality check.
struct DualityViolation {
  enum class Kind : std::uint8_t {
    kSendJitterExceeded,   ///< Guarantee above the OEM requirement.
    kMissingGuarantee,     ///< Requirement with no matching guarantee.
    kLatencyNotMet,        ///< Bus analysis misses an arrival requirement.
    kArrivalJitterNotMet,  ///< Arrival jitter above the supplier's need.
  };
  Kind kind;
  std::string message;
  std::string detail;
};

struct DualityReport {
  std::vector<DualityViolation> violations;
  bool ok() const { return violations.empty(); }
};

/// OEM side, step 1: derive send-jitter requirements for suppliers. For
/// each message sent by `ecu` (or all messages if empty), binary-search
/// the largest own-jitter the bus tolerates while *every* message still
/// meets its deadline (others fixed at their matrix values), then apply
/// `safety_margin` (e.g. 0.8 keeps 20 % headroom).
std::vector<SendJitterRequirement> derive_send_jitter_requirements(
    const KMatrix& km, const CanRtaConfig& rta, const std::string& ecu = {},
    double safety_margin = 0.8);

/// OEM side, step 2: what the bus analysis lets the OEM guarantee to the
/// receiving suppliers: per message, worst-case latency and response
/// jitter under `rta`.
std::vector<ArrivalRequirement> derive_arrival_guarantees(const KMatrix& km,
                                                          const CanRtaConfig& rta);

/// The duality check of Figure 6: OEM requirements vs supplier
/// guarantees, and supplier arrival requirements vs bus analysis.
DualityReport check_duality(const KMatrix& km, const CanRtaConfig& rta,
                            const std::vector<SendJitterRequirement>& oem_requirements,
                            const std::vector<EcuDatasheet>& supplier_datasheets);

/// Largest jitter of `message` alone (others unchanged) under which all
/// messages remain schedulable. Returns zero if already unschedulable.
Duration max_own_jitter(const KMatrix& km, const CanRtaConfig& rta, const std::string& message,
                        Duration tolerance = Duration::us(50));

}  // namespace symcan

#pragma once

// Timing-budget allocation and trading (paper Section 5.2: "freezing
// certain design parameters can result in new flexibility for other
// decisions and allows trading the timing reserves and budgets for
// different components against each other. This ensures that, at any
// given point in time during the entire development process, the
// remaining flexibility and optimization potential can be controlled and
// exploited.")
//
// Two budget notions, both derived from the schedulability analysis:
//
//  * the *joint* budget: the largest uniform jitter fraction every
//    message may consume simultaneously with the whole matrix provably
//    schedulable — what the OEM writes into every requirement spec;
//  * the *individual* bonus: how far one message may exceed the joint
//    base while all others stay at theirs — the tradeable reserve. Any
//    single supplier may use its bonus; two suppliers exceeding their
//    base at once need an explicit trade (trade_budget).

#include <string>
#include <vector>

#include "symcan/analysis/can_rta.hpp"
#include "symcan/can/kmatrix.hpp"

namespace symcan {

struct BudgetReport {
  /// Largest jointly-safe uniform jitter fraction (of each period).
  double joint_fraction = 0;
  /// Per message (KMatrix order): the joint budget in absolute time.
  std::vector<Duration> joint_budget;
  /// Per message: the individually-safe budget (>= joint), valid while
  /// every other message stays at its joint budget.
  std::vector<Duration> individual_budget;

  /// Tradeable reserve of one message.
  Duration bonus(std::size_t i) const { return individual_budget[i] - joint_budget[i]; }
};

/// Compute joint and individual jitter budgets. The matrix must be
/// schedulable at zero jitter under `rta` (throws std::invalid_argument
/// otherwise — budgets make no sense for a broken design).
BudgetReport allocate_jitter_budgets(const KMatrix& km, const CanRtaConfig& rta,
                                     double search_tolerance = 0.01);

/// Section 5.2's trade: `from` freezes its jitter at `committed` (a real
/// supplier guarantee below its joint budget); everyone else stays at the
/// joint budget. Returns the new maximum jitter budget of `to` — the
/// flexibility released by the commitment. Throws when the messages are
/// unknown or the commitment exceeds `from`'s joint budget.
Duration trade_budget(const KMatrix& km, const CanRtaConfig& rta, const BudgetReport& budgets,
                      const std::string& from, Duration committed, const std::string& to);

}  // namespace symcan

#include "symcan/supplychain/refinement.hpp"

#include <algorithm>
#include <stdexcept>

namespace symcan {

RefinementSession::RefinementSession(KMatrix baseline, CanRtaConfig rta)
    : km_{std::move(baseline)}, rta_{std::move(rta)} {
  km_.validate();
  record("baseline");
}

void RefinementSession::commit_send_jitter(const std::string& message, Duration jitter) {
  if (jitter < Duration::zero())
    throw std::invalid_argument("commit_send_jitter: negative jitter");
  bool found = false;
  for (auto& m : km_.messages()) {
    if (m.name != message) continue;
    m.jitter = jitter;
    m.jitter_known = true;
    found = true;
  }
  if (!found) throw std::invalid_argument("commit_send_jitter: unknown message " + message);
  record("commit " + message + " J=" + to_string(jitter));
}

void RefinementSession::freeze_priority(const std::string& message) {
  if (km_.find_message(message) == nullptr)
    throw std::invalid_argument("freeze_priority: unknown message " + message);
  if (std::find(frozen_.begin(), frozen_.end(), message) == frozen_.end())
    frozen_.push_back(message);
  record("freeze " + message);
}

BusResult RefinementSession::analyze() const { return CanRta{km_, rta_}.analyze(); }

Duration RefinementSession::slack_budget(const std::string& message) const {
  const BusResult res = analyze();
  for (const auto& m : res.messages)
    if (m.name == message) return m.slack();
  throw std::invalid_argument("slack_budget: unknown message " + message);
}

double RefinementSession::unknown_fraction() const {
  if (km_.size() == 0) return 0;
  std::size_t unknown = 0;
  for (const auto& m : km_.messages())
    if (!m.jitter_known) ++unknown;
  return static_cast<double>(unknown) / static_cast<double>(km_.size());
}

void RefinementSession::record(std::string what) {
  Step s;
  s.what = std::move(what);
  s.miss_count = analyze().miss_count();
  s.unknown_fraction = unknown_fraction();
  history_.push_back(std::move(s));
}

}  // namespace symcan

#pragma once

// Iterative refinement (paper Section 5.2): "the analysis can be repeated
// as new design details become available ... freezing certain design
// parameters can result in new flexibility for other decisions and allows
// trading the timing reserves and budgets for different components
// against each other."
//
// A RefinementSession tracks a K-Matrix from early assumptions to
// committed supplier guarantees, re-running the analysis after every
// commitment and recording how the verdicts and the remaining slack
// budget evolve.

#include <string>
#include <vector>

#include "symcan/analysis/can_rta.hpp"
#include "symcan/can/kmatrix.hpp"

namespace symcan {

class RefinementSession {
 public:
  RefinementSession(KMatrix baseline, CanRtaConfig rta);

  /// Supplier commits a send-jitter guarantee: the assumption becomes a
  /// known value and the analysis is re-run. Records a history step.
  void commit_send_jitter(const std::string& message, Duration jitter);

  /// OEM freezes a message's CAN ID (it may no longer be re-assigned by
  /// optimization runs; informational for tooling built on top).
  void freeze_priority(const std::string& message);
  const std::vector<std::string>& frozen() const { return frozen_; }

  /// Current analysis under the session's configuration.
  BusResult analyze() const;

  /// Remaining slack of one message (deadline - wcrt) — the "timing
  /// budget" that freezing and trading operates on.
  Duration slack_budget(const std::string& message) const;

  /// Share of messages whose jitter is still an assumption.
  double unknown_fraction() const;

  struct Step {
    std::string what;
    std::size_t miss_count = 0;
    double unknown_fraction = 0;
  };
  const std::vector<Step>& history() const { return history_; }

  const KMatrix& matrix() const { return km_; }

 private:
  void record(std::string what);

  KMatrix km_;
  CanRtaConfig rta_;
  std::vector<std::string> frozen_;
  std::vector<Step> history_;
};

}  // namespace symcan

#include "symcan/supplychain/budget.hpp"

#include <stdexcept>

#include "symcan/workload/powertrain.hpp"

namespace symcan {

namespace {

bool schedulable_at_fraction(const KMatrix& km, const CanRtaConfig& rta, double fraction) {
  KMatrix v = km;
  assume_jitter_fraction(v, fraction, true);
  return CanRta{v, rta}.analyze().all_schedulable();
}

/// Apply a per-message jitter vector.
KMatrix with_jitters(const KMatrix& km, const std::vector<Duration>& jitters) {
  KMatrix v = km;
  for (std::size_t i = 0; i < v.size(); ++i) v.messages()[i].jitter = jitters[i];
  return v;
}

/// Largest jitter for message `index` keeping everything schedulable,
/// with all other jitters fixed as given. Binary search on [base, period].
Duration max_individual(const KMatrix& km, const CanRtaConfig& rta,
                        std::vector<Duration> jitters, std::size_t index, Duration base,
                        Duration resolution) {
  const Duration period = km.messages()[index].period;
  auto ok = [&](Duration j) {
    jitters[index] = j;
    return CanRta{with_jitters(km, jitters), rta}.analyze().all_schedulable();
  };
  if (ok(period)) return period;
  Duration lo = base, hi = period;
  while (hi - lo > resolution) {
    const Duration mid = lo + (hi - lo) / 2;
    if (ok(mid))
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

}  // namespace

BudgetReport allocate_jitter_budgets(const KMatrix& km, const CanRtaConfig& rta,
                                     double search_tolerance) {
  km.validate();
  if (!schedulable_at_fraction(km, rta, 0.0))
    throw std::invalid_argument(
        "allocate_jitter_budgets: matrix not schedulable even at zero jitter");

  BudgetReport report;
  // Joint budget: max-min fair uniform fraction.
  double lo = 0.0, hi = 1.0;
  if (schedulable_at_fraction(km, rta, hi)) {
    lo = hi;
  } else {
    while (hi - lo > search_tolerance) {
      const double mid = (lo + hi) / 2;
      if (schedulable_at_fraction(km, rta, mid))
        lo = mid;
      else
        hi = mid;
    }
  }
  report.joint_fraction = lo;

  std::vector<Duration> joint(km.size());
  for (std::size_t i = 0; i < km.size(); ++i)
    joint[i] = Duration::ns(static_cast<std::int64_t>(
        lo * static_cast<double>(km.messages()[i].period.count_ns())));
  report.joint_budget = joint;

  // Individual bonus: one message at a time above the joint base.
  report.individual_budget.resize(km.size());
  for (std::size_t i = 0; i < km.size(); ++i)
    report.individual_budget[i] =
        max_individual(km, rta, joint, i, joint[i], Duration::us(50));
  return report;
}

Duration trade_budget(const KMatrix& km, const CanRtaConfig& rta, const BudgetReport& budgets,
                      const std::string& from, Duration committed, const std::string& to) {
  std::size_t from_i = km.size(), to_i = km.size();
  for (std::size_t i = 0; i < km.size(); ++i) {
    if (km.messages()[i].name == from) from_i = i;
    if (km.messages()[i].name == to) to_i = i;
  }
  if (from_i == km.size()) throw std::invalid_argument("trade_budget: unknown message " + from);
  if (to_i == km.size()) throw std::invalid_argument("trade_budget: unknown message " + to);
  if (from_i == to_i) throw std::invalid_argument("trade_budget: cannot trade with oneself");
  if (committed > budgets.joint_budget[from_i])
    throw std::invalid_argument("trade_budget: commitment exceeds " + from + "'s joint budget");

  std::vector<Duration> jitters = budgets.joint_budget;
  jitters[from_i] = committed;
  return max_individual(km, rta, jitters, to_i, budgets.joint_budget[to_i], Duration::us(50));
}

}  // namespace symcan

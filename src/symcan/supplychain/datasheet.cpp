#include "symcan/supplychain/datasheet.hpp"

#include <algorithm>
#include <charconv>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "symcan/analysis/provenance.hpp"
#include "symcan/util/csv.hpp"

namespace symcan {

namespace {

bool all_schedulable_with_jitter(const KMatrix& km, const CanRtaConfig& rta, std::size_t index,
                                 Duration jitter) {
  KMatrix variant = km;
  variant.messages()[index].jitter = jitter;
  return CanRta{variant, rta}.analyze().all_schedulable();
}

std::size_t index_of(const KMatrix& km, const std::string& message) {
  for (std::size_t i = 0; i < km.size(); ++i)
    if (km.messages()[i].name == message) return i;
  throw std::invalid_argument("unknown message '" + message + "'");
}

/// "inf" or a non-negative nanosecond count; nullopt with a diagnostic
/// otherwise.
std::optional<Duration> parse_duration_ns(const std::string& s, std::size_t line_no,
                                          const char* what, Diagnostics& diags) {
  if (s == "inf") return Duration::infinite();
  std::int64_t v = 0;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), v);
  if (res.ec != std::errc{} || res.ptr != s.data() + s.size()) {
    diags.error(line_no, std::string("bad duration for ") + what + ": '" + s + "'");
    return std::nullopt;
  }
  if (v < 0) {
    diags.error(line_no, std::string(what) + " must be >= 0, got " + s);
    return std::nullopt;
  }
  return Duration::ns(v);
}

std::string duration_field(Duration d) {
  return d.is_infinite() ? "inf" : std::to_string(d.count_ns());
}

}  // namespace

std::string datasheet_to_csv(const EcuDatasheet& ds) {
  std::ostringstream os;
  os << "# symcan ECU datasheet\n";
  os << format_csv_row({"ecu", ds.ecu}) << '\n';
  for (const auto& g : ds.send_guarantees)
    os << format_csv_row({"send", g.message, std::to_string(g.jitter.count_ns())}) << '\n';
  for (const auto& r : ds.arrival_requirements)
    os << format_csv_row({"need", r.message, r.receiver, duration_field(r.max_latency),
                          duration_field(r.max_response_jitter)})
       << '\n';
  return os.str();
}

std::optional<EcuDatasheet> datasheet_from_csv(const std::string& text, Diagnostics& diags) {
  diags.set_source("datasheet CSV");
  std::optional<EcuDatasheet> ds;
  for (const auto& [line_no, row] : parse_csv_numbered(text)) {
    if (diags.exhausted()) {
      diags.error(0, "too many problems; giving up");
      break;
    }
    if (row.empty() || row[0].empty()) continue;
    const std::string& kind = row[0];
    if (kind == "ecu") {
      if (row.size() != 2) {
        diags.error(line_no, "ecu record needs 2 fields, got " + std::to_string(row.size()));
        continue;
      }
      if (ds) {
        diags.error(line_no, "duplicate ecu record");
        continue;
      }
      if (row[1].empty()) {
        diags.error(line_no, "empty ecu name");
        continue;
      }
      ds.emplace();
      ds->ecu = row[1];
    } else if (kind == "send") {
      if (!ds) {
        diags.error(line_no, "send record before ecu record");
        continue;
      }
      if (row.size() != 3) {
        diags.error(line_no, "send record needs 3 fields, got " + std::to_string(row.size()));
        continue;
      }
      if (row[1].empty()) {
        diags.error(line_no, "empty message name");
        continue;
      }
      const auto jitter = parse_duration_ns(row[2], line_no, "jitter_ns", diags);
      if (!jitter) continue;
      if (jitter->is_infinite()) {
        diags.error(line_no, "a send guarantee cannot have infinite jitter");
        continue;
      }
      ds->send_guarantees.push_back({row[1], *jitter});
    } else if (kind == "need") {
      if (!ds) {
        diags.error(line_no, "need record before ecu record");
        continue;
      }
      if (row.size() != 5) {
        diags.error(line_no, "need record needs 5 fields, got " + std::to_string(row.size()));
        continue;
      }
      if (row[1].empty() || row[2].empty()) {
        diags.error(line_no, "empty message or receiver name");
        continue;
      }
      const auto latency = parse_duration_ns(row[3], line_no, "max_latency_ns", diags);
      const auto jitter = parse_duration_ns(row[4], line_no, "max_response_jitter_ns", diags);
      if (!latency || !jitter) continue;
      if (*latency == Duration::zero())
        diags.warning(line_no, "max_latency_ns of 0 is unsatisfiable by any bus");
      ds->arrival_requirements.push_back({row[1], row[2], *latency, *jitter});
    } else {
      diags.error(line_no, "unknown record kind '" + kind + "'");
    }
  }
  if (!ds) {
    diags.error(0, "missing ecu record");
    return std::nullopt;
  }
  if (!diags.ok()) return std::nullopt;
  return ds;
}

EcuDatasheet datasheet_from_csv(const std::string& text) {
  Diagnostics diags{DiagnosticPolicy::kLenient, "datasheet CSV"};
  auto ds = datasheet_from_csv(text, diags);
  diags.throw_if_failed();
  if (!ds) throw ParseError{diags};  // unreachable unless diags/ok desynchronize
  return std::move(*ds);
}

Duration max_own_jitter(const KMatrix& km, const CanRtaConfig& rta, const std::string& message,
                        Duration tolerance) {
  const std::size_t index = index_of(km, message);
  const Duration period = km.messages()[index].period;
  if (!all_schedulable_with_jitter(km, rta, index, Duration::zero())) return Duration::zero();
  if (all_schedulable_with_jitter(km, rta, index, period)) return period;
  Duration lo = Duration::zero(), hi = period;  // feasible at lo, infeasible at hi
  while (hi - lo > tolerance) {
    const Duration mid = lo + (hi - lo) / 2;
    if (all_schedulable_with_jitter(km, rta, index, mid))
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

std::vector<SendJitterRequirement> derive_send_jitter_requirements(const KMatrix& km,
                                                                   const CanRtaConfig& rta,
                                                                   const std::string& ecu,
                                                                   double safety_margin) {
  if (safety_margin <= 0 || safety_margin > 1)
    throw std::invalid_argument("derive_send_jitter_requirements: margin must be in (0,1]");
  std::vector<SendJitterRequirement> out;
  for (const auto& m : km.messages()) {
    if (!ecu.empty() && m.sender != ecu) continue;
    const Duration tolerable = max_own_jitter(km, rta, m.name);
    SendJitterRequirement req;
    req.message = m.name;
    req.max_jitter = Duration::ns(static_cast<std::int64_t>(
        safety_margin * static_cast<double>(tolerable.count_ns())));
    out.push_back(std::move(req));
  }
  return out;
}

std::vector<ArrivalRequirement> derive_arrival_guarantees(const KMatrix& km,
                                                          const CanRtaConfig& rta) {
  const BusResult res = CanRta{km, rta}.analyze();
  std::vector<ArrivalRequirement> out;
  for (std::size_t i = 0; i < km.size(); ++i) {
    const auto& m = km.messages()[i];
    for (const auto& receiver : m.receivers) {
      ArrivalRequirement g;
      g.message = m.name;
      g.receiver = receiver;
      g.max_latency = res.messages[i].wcrt;
      g.max_response_jitter = res.messages[i].wcrt.is_infinite()
                                  ? Duration::infinite()
                                  : res.messages[i].response_jitter();
      out.push_back(std::move(g));
    }
  }
  return out;
}

DualityReport check_duality(const KMatrix& km, const CanRtaConfig& rta,
                            const std::vector<SendJitterRequirement>& oem_requirements,
                            const std::vector<EcuDatasheet>& supplier_datasheets) {
  DualityReport report;

  // Requirement -> guarantee direction.
  for (const auto& req : oem_requirements) {
    const CanMessage* msg = km.find_message(req.message);
    if (msg == nullptr) {
      report.violations.push_back({DualityViolation::Kind::kMissingGuarantee, req.message,
                                   "requirement references unknown message"});
      continue;
    }
    const SendJitterGuarantee* found = nullptr;
    for (const auto& ds : supplier_datasheets) {
      if (ds.ecu != msg->sender) continue;
      for (const auto& g : ds.send_guarantees)
        if (g.message == req.message) found = &g;
    }
    if (found == nullptr) {
      report.violations.push_back({DualityViolation::Kind::kMissingGuarantee, req.message,
                                   "no supplier guarantee for sender " + msg->sender});
    } else if (found->jitter > req.max_jitter) {
      report.violations.push_back(
          {DualityViolation::Kind::kSendJitterExceeded, req.message,
           "guaranteed " + to_string(found->jitter) + " > required " + to_string(req.max_jitter)});
    }
  }

  // Supplier arrival requirements vs what the bus analysis delivers. The
  // analysis is run on the matrix *with guarantees substituted in* — the
  // refinement step of Section 5.2.
  KMatrix refined = km;
  for (const auto& ds : supplier_datasheets) {
    for (const auto& g : ds.send_guarantees) {
      for (auto& m : refined.messages()) {
        if (m.name != g.message) continue;
        m.jitter = g.jitter;
        m.jitter_known = true;
      }
    }
  }
  const std::vector<ArrivalRequirement> delivered = derive_arrival_guarantees(refined, rta);

  // A failed guarantee should name its dominant interferers: the
  // provenance of the refined-matrix bound tells the supplier *which*
  // traffic to renegotiate, without exposing anyone's internals beyond
  // the K-Matrix they already share.
  const auto blame = [&](const std::string& message) -> std::string {
    const std::optional<std::size_t> idx = analysis::find_message(refined, message);
    if (!idx) return "";
    const analysis::Provenance p = analysis::explain_message(refined, rta, *idx);
    std::string out;
    std::size_t named = 0;
    for (const auto& s : p.interference) {
      if (named == 3 || s.contribution <= Duration::zero()) break;
      out += out.empty() ? "; dominant interferers: " : ", ";
      out += s.name + (s.offset_group ? " (offset group, " : " (") +
             to_string(s.contribution) + ")";
      ++named;
    }
    if (!p.blocking_frame.empty() && p.bus_blocking > Duration::zero())
      out += "; blocked by " + p.blocking_frame + " (" + to_string(p.bus_blocking) + ")";
    return out;
  };

  for (const auto& ds : supplier_datasheets) {
    for (const auto& need : ds.arrival_requirements) {
      const ArrivalRequirement* got = nullptr;
      for (const auto& d : delivered)
        if (d.message == need.message && d.receiver == need.receiver) got = &d;
      if (got == nullptr) {
        report.violations.push_back({DualityViolation::Kind::kLatencyNotMet, need.message,
                                     "receiver " + need.receiver + " is not in the K-Matrix"});
        continue;
      }
      if (got->max_latency > need.max_latency) {
        report.violations.push_back(
            {DualityViolation::Kind::kLatencyNotMet, need.message,
             "bus delivers " + to_string(got->max_latency) + " > needed " +
                 to_string(need.max_latency) + blame(need.message)});
      }
      if (got->max_response_jitter > need.max_response_jitter) {
        report.violations.push_back(
            {DualityViolation::Kind::kArrivalJitterNotMet, need.message,
             "bus jitter " + to_string(got->max_response_jitter) + " > needed " +
                 to_string(need.max_response_jitter) + blame(need.message)});
      }
    }
  }
  return report;
}

}  // namespace symcan

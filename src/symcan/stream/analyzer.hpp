#pragma once

// Online per-message timing health over an unbounded sim::TraceEvent
// stream — the monitoring product that fuses the simulator (what the bus
// did), the analysis (what it may do at worst), and the obs subsystem
// (how the monitor itself is doing). ROADMAP item 3.
//
// Contract:
//  * O(1) state per message ID. No trace buffering, no per-instance
//    allocation: each message owns a fixed block of counters, integer
//    EWMA baselines and a small fixed array of in-flight instance slots.
//    Steady-state ingest performs zero heap allocations (enforced by
//    tests/stream/allocation_test.cpp with a counting operator new).
//  * Chunk-invariant: ingesting the same event sequence in chunks of 1,
//    7 or 4096 yields bit-identical HealthEvent sequences — state
//    advances strictly per event, and all baselines are integer-ns EWMAs
//    (value += (sample - value) >> shift), so there is no accumulation
//    order or float rounding to vary.
//  * Offline-equivalent: feeding a completed trace reproduces
//    sim::compute_trace_stats latency min/mean/max and the violation set
//    of sim::compare_bound_vs_observed exactly, in integer nanoseconds
//    (tests/stream/equivalence_test.cpp).
//
// Detectors (per message, self-calibrating — evaluation methodology of
// "Performance comparison of timing-based anomaly detectors for CAN"):
//  * jitter burst: consecutive inter-arrival outliers against the fast
//    EWMA baseline and EWMA absolute deviation;
//  * period drift: the fast baseline running away from a slow reference
//    baseline (a ramp moves them apart; a step re-converges);
//  * stall: a watchdog on the expected next arrival, checked lazily via
//    a min-heap as the stream clock (any ingested event) advances;
//  * arrhythmia: sustained irregularity — the deviation EWMA staying
//    large relative to the period baseline (no single outlier needed).
// Each emits onset/clear HealthEvents with hysteresis, never per-frame
// alarms. An optional analysis::BusResult arms the online soundness
// oracle: any observed response time above its bound raises
// kBoundViolation, mirroring sim::compare_bound_vs_observed verdicts.

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "symcan/analysis/can_rta.hpp"
#include "symcan/obs/metrics.hpp"
#include "symcan/sim/trace.hpp"
#include "symcan/stream/health.hpp"
#include "symcan/util/time.hpp"

namespace symcan::stream {

/// Detector calibration. Every knob is integer (shifts, counts, permille)
/// so tuning can never introduce platform-dependent float behaviour.
struct StreamConfig {
  /// EWMA update is value += (sample - value) >> shift; shift 3 = alpha
  /// 1/8 (fast baseline + deviation), shift 6 = alpha 1/64 (slow drift
  /// reference).
  int fast_shift = 3;
  int slow_shift = 6;

  /// Arrivals of a message before its detectors arm (baseline calibration).
  std::int64_t warmup_arrivals = 8;

  /// Jitter burst: an arrival is an outlier when |delta - baseline| >
  /// multiplier * deviation + baseline / 8 (the proportional floor keeps
  /// a near-zero deviation from flagging 1 ns noise). Onset after
  /// `jitter_onset_count` consecutive outliers, clear after
  /// `jitter_clear_count` consecutive inliers.
  std::int64_t jitter_multiplier = 4;
  int jitter_onset_count = 3;
  int jitter_clear_count = 8;

  /// Drift: |fast - slow| * 1000 > permille * slow, persisting for
  /// `drift_onset_count` arrivals; clears below the (lower) clear
  /// threshold for `drift_clear_count` arrivals.
  std::int64_t drift_onset_permille = 100;
  std::int64_t drift_clear_permille = 50;
  int drift_onset_count = 4;
  int drift_clear_count = 8;

  /// Stall watchdog: expected next arrival is last + multiplier *
  /// max(baseline, floor); expiry (by stream-clock advance) raises onset,
  /// the next arrival of the message clears it.
  std::int64_t stall_multiplier = 4;
  Duration stall_floor = Duration::us(100);

  /// Arrhythmia: deviation * 1000 > permille * baseline sustained for
  /// `arrhythmia_onset_count` arrivals; clears below the clear threshold.
  std::int64_t arrhythmia_onset_permille = 250;
  std::int64_t arrhythmia_clear_permille = 125;
  int arrhythmia_onset_count = 6;
  int arrhythmia_clear_count = 6;

  /// Retained HealthEvent log bound; beyond it events are counted as
  /// dropped, never buffered (a melting bus cannot balloon the monitor).
  std::size_t max_events = 1 << 20;
};

/// Snapshot of one message's online state (StreamAnalyzer::stats()).
struct MessageStreamStats {
  std::string name;
  std::int64_t releases = 0;
  std::int64_t completions = 0;
  std::int64_t errors = 0;
  std::int64_t retransmits = 0;
  std::int64_t losses = 0;

  /// Release-to-completion latency of completed instances whose release
  /// was observed; exact integer ns (min is infinite / max zero when no
  /// sample was seen).
  std::int64_t latency_samples = 0;
  Duration latency_min = Duration::infinite();
  Duration latency_max = Duration::zero();
  Duration latency_total = Duration::zero();
  Duration latency_mean() const {
    return latency_samples > 0 ? latency_total / latency_samples : Duration::zero();
  }

  /// Self-calibrated baselines (zero until two arrivals were seen).
  Duration period_baseline = Duration::zero();   ///< Fast inter-arrival EWMA.
  Duration period_deviation = Duration::zero();  ///< EWMA absolute deviation.
  Duration response_baseline = Duration::zero(); ///< Latency EWMA.

  /// Analysis bound pairing (set_bounds); mirrors BoundObservation.
  bool bound_known = false;
  bool diverged = false;
  Duration bound = Duration::infinite();
  std::int64_t bound_violations = 0;  ///< Completions above the bound.
  bool violation() const { return bound_violations > 0; }

  /// Conditions currently raised.
  bool jitter_active = false;
  bool drift_active = false;
  bool stall_active = false;
  bool arrhythmia_active = false;

  /// In-flight slots dropped because more instances of this message were
  /// concurrently open than the fixed capacity (never for simulator
  /// traces; a hostile recorded trace degrades gracefully instead of
  /// allocating).
  std::int64_t inflight_evictions = 0;
};

struct StreamStats {
  std::vector<MessageStreamStats> messages;  ///< Sorted by message name.
  std::int64_t frames = 0;          ///< Trace events ingested.
  std::int64_t health_events = 0;   ///< Emitted, including dropped ones.
  std::int64_t dropped_events = 0;  ///< Beyond StreamConfig::max_events.
  std::int64_t active_conditions = 0;
  std::int64_t violations = 0;  ///< Messages with at least one bound violation.

  const MessageStreamStats* find(const std::string& name) const;
};

/// Per-message table + condition/violation summary for terminals.
std::string stream_stats_to_text(const StreamStats& stats);

/// Machine-readable form; durations in integer nanoseconds.
std::string stream_stats_to_json(const StreamStats& stats);

class StreamAnalyzer {
 public:
  /// Concurrently open instances tracked per message. The simulator can
  /// hold at most two (one transmitting, one buffered); extra headroom
  /// absorbs recorded traces from other tools before eviction kicks in.
  static constexpr std::size_t kInflightSlots = 4;

  explicit StreamAnalyzer(StreamConfig cfg = {});

  /// Arm the online soundness oracle: any completion of a message named
  /// in `analysis` whose observed response exceeds its (finite) bound
  /// raises kBoundViolation. Diverged bounds cannot be violated, exactly
  /// as in sim::compare_bound_vs_observed.
  void set_bounds(const BusResult& analysis);

  /// Advance the monitor by one event. Events are expected in
  /// chronological order (the simulator guarantees it; the JSONL reader
  /// diagnoses regressions); an out-of-order event is still consumed
  /// without harm, it merely cannot fire watchdogs retroactively.
  void ingest(const TraceEvent& e);

  /// Batch form — identical state evolution for any chunking. Records
  /// obs metrics (frame counter + per-frame cost histogram) per batch,
  /// so the per-event hot path stays untimed.
  void ingest(const TraceEvent* events, std::size_t count);
  void ingest(const Trace& trace) { ingest(trace.events().data(), trace.events().size()); }

  /// Advance the stream clock to `end_time` without consuming an event,
  /// firing any watchdog that expires before it — flags messages that
  /// went silent before the end of a bounded run.
  void advance_to(Duration end_time);

  /// Health events emitted so far, in emission order (bounded by
  /// StreamConfig::max_events).
  const std::vector<HealthEvent>& events() const { return events_; }

  std::int64_t frames_ingested() const { return frames_; }
  std::int64_t events_emitted() const { return emitted_; }

  StreamStats stats() const;

 private:
  struct InflightSlot {
    std::int64_t instance = 0;
    Duration release = Duration::zero();
    Duration first_error = Duration::zero();
    std::int64_t age = 0;  ///< Insertion order, for oldest-first eviction.
    bool used = false;
    bool released = false;
    bool started = false;
    bool errored = false;
  };

  struct MessageState {
    std::string name;
    std::int64_t releases = 0;
    std::int64_t completions = 0;
    std::int64_t errors = 0;
    std::int64_t retransmits = 0;
    std::int64_t losses = 0;

    std::int64_t latency_samples = 0;
    Duration latency_min = Duration::infinite();
    Duration latency_max = Duration::zero();
    Duration latency_total = Duration::zero();

    InflightSlot inflight[kInflightSlots];
    std::int64_t next_age = 0;
    std::int64_t inflight_evictions = 0;

    // Rhythm (driven by completions — what a bus monitor observes).
    bool has_arrival = false;
    bool has_baseline = false;
    Duration last_arrival = Duration::zero();
    std::int64_t arrivals = 0;       ///< Completions seen.
    std::int64_t m_fast_ns = 0;      ///< Fast inter-arrival EWMA.
    std::int64_t m_slow_ns = 0;      ///< Slow drift reference.
    std::int64_t dev_ns = 0;         ///< EWMA absolute deviation.
    std::int64_t resp_ewma_ns = 0;
    bool has_resp = false;

    // Detector hysteresis.
    int jitter_streak = 0;
    int jitter_calm = 0;
    bool jitter_active = false;
    int drift_streak = 0;
    int drift_calm = 0;
    bool drift_active = false;
    int arr_streak = 0;
    int arr_calm = 0;
    bool arr_active = false;
    bool stall_active = false;
    std::uint64_t watchdog_gen = 0;  ///< Invalidates superseded heap entries.

    Duration bound = Duration::infinite();
    bool bound_known = false;
    bool diverged = false;
    std::int64_t bound_violations = 0;
  };

  /// Lazily-armed watchdog: fires when the stream clock passes `deadline`
  /// unless a newer arrival re-armed the message (generation mismatch).
  struct Watchdog {
    Duration deadline = Duration::zero();
    std::uint32_t state = 0;
    std::uint64_t gen = 0;
  };

  /// Total order for the min-heap — ties broken by state index then
  /// generation, so expiry order is deterministic.
  struct WatchdogAfter {
    bool operator()(const Watchdog& a, const Watchdog& b) const {
      if (a.deadline != b.deadline) return b.deadline < a.deadline;
      if (a.state != b.state) return a.state > b.state;
      return a.gen > b.gen;
    }
  };

  void ingest_one(const TraceEvent& e);
  MessageState& state_for(const std::string& name);
  InflightSlot& slot_for(MessageState& ms, std::int64_t instance);
  void on_completion(MessageState& ms, std::uint32_t idx, Duration now, Duration latency,
                     bool have_latency);
  void fire_expired_watchdogs(Duration now);
  void arm_watchdog(MessageState& ms, std::uint32_t idx);
  void emit(Duration time, HealthEventType type, const MessageState& ms, std::int64_t observed_ns,
            std::int64_t baseline_ns);
  void heap_push(Watchdog w);
  Watchdog heap_pop();
  void note_obs_batch(std::size_t count, std::int64_t wall_ns, std::int64_t events_raised);

  StreamConfig cfg_;
  std::unordered_map<std::string, std::uint32_t> index_;
  std::vector<MessageState> states_;
  std::vector<Watchdog> heap_;  ///< Min-heap on (deadline, state, gen).
  std::vector<HealthEvent> events_;
  std::int64_t frames_ = 0;
  std::int64_t cur_frame_ = 0;  ///< Frame index stamped onto emitted events.
  std::int64_t emitted_ = 0;
  std::int64_t dropped_ = 0;

  // Cached obs handles (valid for the registry's lifetime); resolved on
  // the first batch that sees observation enabled, so the disabled path
  // costs one relaxed load per batch.
  obs::Counter* obs_frames_ = nullptr;
  obs::Counter* obs_events_ = nullptr;
  obs::Histogram* obs_cost_ = nullptr;
};

}  // namespace symcan::stream

#include "symcan/stream/health.hpp"

#include <cinttypes>
#include <cstdio>

#include "symcan/obs/export.hpp"

namespace symcan::stream {

const char* to_string(HealthEventType t) {
  switch (t) {
    case HealthEventType::kJitterBurstOnset: return "jitter_burst_onset";
    case HealthEventType::kJitterBurstClear: return "jitter_burst_clear";
    case HealthEventType::kDriftOnset: return "drift_onset";
    case HealthEventType::kDriftClear: return "drift_clear";
    case HealthEventType::kStallOnset: return "stall_onset";
    case HealthEventType::kStallClear: return "stall_clear";
    case HealthEventType::kArrhythmiaOnset: return "arrhythmia_onset";
    case HealthEventType::kArrhythmiaClear: return "arrhythmia_clear";
    case HealthEventType::kBoundViolation: return "bound_violation";
  }
  return "?";
}

bool is_onset(HealthEventType t) {
  switch (t) {
    case HealthEventType::kJitterBurstOnset:
    case HealthEventType::kDriftOnset:
    case HealthEventType::kStallOnset:
    case HealthEventType::kArrhythmiaOnset:
    case HealthEventType::kBoundViolation: return true;
    case HealthEventType::kJitterBurstClear:
    case HealthEventType::kDriftClear:
    case HealthEventType::kStallClear:
    case HealthEventType::kArrhythmiaClear: return false;
  }
  return false;
}

std::string to_string(const HealthEvent& e) {
  char buf[256];
  std::snprintf(buf, sizeof buf, "%-12s %-18s %-20s observed %-12s baseline %-12s @ frame %" PRId64,
                to_string(e.time).c_str(), to_string(e.type), e.message.c_str(),
                to_string(Duration::ns(e.observed_ns)).c_str(),
                to_string(Duration::ns(e.baseline_ns)).c_str(), e.frame_index);
  return buf;
}

std::string health_events_to_jsonl(const std::vector<HealthEvent>& events) {
  std::string out;
  char buf[96];
  for (const HealthEvent& e : events) {
    out += "{\"t_ns\":";
    std::snprintf(buf, sizeof buf, "%" PRId64, e.time.count_ns());
    out += buf;
    out += ",\"event\":\"";
    out += to_string(e.type);
    out += "\",\"message\":\"";
    out += obs::json_escape(e.message);
    out += "\"";
    std::snprintf(buf, sizeof buf, ",\"observed_ns\":%" PRId64 ",\"baseline_ns\":%" PRId64
                                   ",\"frame\":%" PRId64 "}\n",
                  e.observed_ns, e.baseline_ns, e.frame_index);
    out += buf;
  }
  return out;
}

}  // namespace symcan::stream

#include "symcan/stream/trace_reader.hpp"

#include <charconv>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <utility>

namespace symcan::stream {

namespace {

/// Cursor over one line; all helpers leave the cursor after what they
/// consumed and report failures through the line's diagnostics.
struct Cursor {
  const char* p;
  const char* end;

  bool done() const { return p == end; }
  char peek() const { return *p; }
  void skip_ws() {
    while (p != end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
  }
  bool eat(char c) {
    skip_ws();
    if (p == end || *p != c) return false;
    ++p;
    return true;
  }
};

void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    // Lone surrogates are encoded as-is (WTF-8): the exporter passes
    // bytes >= 0x20 through raw, so this keeps parse/serialize an
    // identity even on inputs no sane recorder writes.
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

/// Four hex digits after \u; returns 0x110000 on failure.
std::uint32_t parse_hex4(Cursor& c) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    if (c.done()) return 0x110000;
    const char ch = *c.p++;
    v <<= 4;
    if (ch >= '0' && ch <= '9') v |= static_cast<std::uint32_t>(ch - '0');
    else if (ch >= 'a' && ch <= 'f') v |= static_cast<std::uint32_t>(ch - 'a' + 10);
    else if (ch >= 'A' && ch <= 'F') v |= static_cast<std::uint32_t>(ch - 'A' + 10);
    else return 0x110000;
  }
  return v;
}

bool parse_string(Cursor& c, std::size_t line_no, const char* what, std::string& out,
                  Diagnostics& diags) {
  if (!c.eat('"')) {
    diags.error(line_no, std::string("expected string for ") + what);
    return false;
  }
  out.clear();
  while (true) {
    if (c.done()) {
      diags.error(line_no, std::string("unterminated string for ") + what);
      return false;
    }
    const char ch = *c.p++;
    if (ch == '"') return true;
    if (static_cast<unsigned char>(ch) < 0x20) {
      diags.error(line_no, std::string("raw control character in string for ") + what);
      return false;
    }
    if (ch != '\\') {
      out.push_back(ch);
      continue;
    }
    if (c.done()) {
      diags.error(line_no, std::string("dangling escape in string for ") + what);
      return false;
    }
    const char esc = *c.p++;
    switch (esc) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        std::uint32_t cp = parse_hex4(c);
        if (cp > 0x10FFFF) {
          diags.error(line_no, std::string("bad \\u escape in string for ") + what);
          return false;
        }
        if (cp >= 0xD800 && cp <= 0xDBFF && c.end - c.p >= 6 && c.p[0] == '\\' && c.p[1] == 'u') {
          // High surrogate followed by a \u escape: try to pair them.
          Cursor save = c;
          c.p += 2;
          const std::uint32_t lo = parse_hex4(c);
          if (lo >= 0xDC00 && lo <= 0xDFFF) {
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else {
            c = save;  // Not a low surrogate; emit the lone high one.
          }
        }
        append_utf8(out, cp);
        break;
      }
      default:
        diags.error(line_no, std::string("unknown escape '\\") + esc + "' in string for " + what);
        return false;
    }
  }
}

bool parse_i64(Cursor& c, std::size_t line_no, const char* what, std::int64_t& out,
               Diagnostics& diags) {
  c.skip_ws();
  const char* begin = c.p;
  if (c.p != c.end && *c.p == '-') ++c.p;
  while (c.p != c.end && *c.p >= '0' && *c.p <= '9') ++c.p;
  // JSON permits fractions and exponents; the trace format does not.
  if (c.p != c.end && (*c.p == '.' || *c.p == 'e' || *c.p == 'E')) {
    diags.error(line_no, std::string(what) + " must be an integer");
    return false;
  }
  std::int64_t v = 0;
  const auto res = std::from_chars(begin, c.p, v);
  if (res.ec != std::errc{} || res.ptr != c.p || begin == c.p) {
    diags.error(line_no, std::string("bad integer for ") + what);
    return false;
  }
  out = v;
  return true;
}

/// Skip a scalar value of an unknown key; nested containers are rejected
/// (nothing in the trace grammar nests, and skipping them faithfully
/// would turn this reader into a full JSON parser).
bool skip_scalar(Cursor& c, std::size_t line_no, Diagnostics& diags) {
  c.skip_ws();
  if (c.done()) {
    diags.error(line_no, "missing value");
    return false;
  }
  const char ch = c.peek();
  if (ch == '"') {
    std::string ignored;
    return parse_string(c, line_no, "unknown key", ignored, diags);
  }
  if (ch == '{' || ch == '[') {
    diags.error(line_no, "nested containers are not part of the trace format");
    return false;
  }
  // Number / true / false / null: consume the bare token.
  const char* begin = c.p;
  while (!c.done() && *c.p != ',' && *c.p != '}' && *c.p != ' ' && *c.p != '\t' && *c.p != '\r')
    ++c.p;
  if (begin == c.p) {
    diags.error(line_no, "missing value");
    return false;
  }
  return true;
}

bool slug_to_type(const std::string& slug, TraceEventType& out) {
  if (slug == "release") out = TraceEventType::kRelease;
  else if (slug == "tx_start") out = TraceEventType::kTxStart;
  else if (slug == "tx_end") out = TraceEventType::kTxEnd;
  else if (slug == "error") out = TraceEventType::kError;
  else if (slug == "retransmit") out = TraceEventType::kRetransmit;
  else if (slug == "loss") out = TraceEventType::kLoss;
  else return false;
  return true;
}

/// One trace line -> one event. Returns false when the line is unusable
/// (already diagnosed).
bool parse_line(const char* begin, const char* end, std::size_t line_no, TraceEvent& out,
                Diagnostics& diags) {
  Cursor c{begin, end};
  if (!c.eat('{')) {
    diags.error(line_no, "expected a JSON object");
    return false;
  }
  bool have_t = false, have_type = false, have_message = false, have_instance = false;
  std::string key, slug;
  std::int64_t t_ns = 0;

  c.skip_ws();
  if (!c.eat('}')) {
    while (true) {
      if (!parse_string(c, line_no, "key", key, diags)) return false;
      if (!c.eat(':')) {
        diags.error(line_no, "expected ':' after key \"" + key + "\"");
        return false;
      }
      if (key == "t_ns") {
        if (have_t) {
          diags.error(line_no, "duplicate key \"t_ns\"");
          return false;
        }
        if (!parse_i64(c, line_no, "t_ns", t_ns, diags)) return false;
        have_t = true;
      } else if (key == "type") {
        if (have_type) {
          diags.error(line_no, "duplicate key \"type\"");
          return false;
        }
        if (!parse_string(c, line_no, "type", slug, diags)) return false;
        have_type = true;
      } else if (key == "message") {
        if (have_message) {
          diags.error(line_no, "duplicate key \"message\"");
          return false;
        }
        if (!parse_string(c, line_no, "message", out.message, diags)) return false;
        have_message = true;
      } else if (key == "instance") {
        if (have_instance) {
          diags.error(line_no, "duplicate key \"instance\"");
          return false;
        }
        if (!parse_i64(c, line_no, "instance", out.instance, diags)) return false;
        have_instance = true;
      } else {
        diags.warning(line_no, "unknown key \"" + key + "\" ignored");
        if (!skip_scalar(c, line_no, diags)) return false;
        if (diags.policy() == DiagnosticPolicy::kStrict) return false;
      }
      if (c.eat(',')) continue;
      if (c.eat('}')) break;
      diags.error(line_no, "expected ',' or '}'");
      return false;
    }
  }
  c.skip_ws();
  if (!c.done()) {
    diags.error(line_no, "trailing characters after object");
    return false;
  }
  if (!have_t || !have_type || !have_message || !have_instance) {
    std::string missing;
    const auto need = [&](bool have, const char* name) {
      if (have) return;
      if (!missing.empty()) missing += ", ";
      missing += name;
    };
    need(have_t, "t_ns");
    need(have_type, "type");
    need(have_message, "message");
    need(have_instance, "instance");
    diags.error(line_no, "missing key(s): " + missing);
    return false;
  }
  if (t_ns < 0) {
    diags.error(line_no, "t_ns must be non-negative");
    return false;
  }
  TraceEventType type;
  if (!slug_to_type(slug, type)) {
    diags.error(line_no, "unknown event type '" + slug + "'");
    return false;
  }
  out.time = Duration::ns(t_ns);
  out.type = type;
  return true;
}

}  // namespace

std::optional<Trace> trace_from_jsonl(const std::string& text, Diagnostics& diags) {
  diags.set_source("trace JSONL");
  Trace trace;
  std::size_t line_no = 0;
  Duration prev = Duration::zero();
  bool warned_backwards = false;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  while (p != end) {
    ++line_no;
    const char* nl = p;
    while (nl != end && *nl != '\n') ++nl;
    const char* line_end = nl;
    if (line_end != p && line_end[-1] == '\r') --line_end;
    const bool blank = [&] {
      for (const char* q = p; q != line_end; ++q)
        if (*q != ' ' && *q != '\t') return false;
      return true;
    }();
    if (!blank) {
      if (diags.exhausted()) {
        diags.error(0, "too many problems; giving up");
        return std::nullopt;
      }
      TraceEvent e;
      if (parse_line(p, line_end, line_no, e, diags)) {
        if (e.time < prev && !warned_backwards)  {
          diags.warning(line_no, "timestamps run backwards (first at this line); "
                                 "the stream analyzer tolerates but cannot re-order them");
          warned_backwards = true;
        }
        prev = e.time;
        trace.record(e.time, e.type, std::move(e.message), e.instance);
      }
    }
    p = nl == end ? end : nl + 1;
  }
  if (!diags.ok()) return std::nullopt;
  return trace;
}

Trace trace_from_jsonl(const std::string& text) {
  Diagnostics diags;
  auto trace = trace_from_jsonl(text, diags);
  if (!trace) {
    diags.throw_if_failed();
    return Trace{};  // Unreachable: nullopt implies a recorded error.
  }
  return std::move(*trace);
}

Trace load_trace_jsonl(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    Diagnostics diags(DiagnosticPolicy::kLenient, "trace JSONL");
    diags.error(0, "cannot open '" + path + "'");
    diags.throw_if_failed();
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return trace_from_jsonl(ss.str());
}

}  // namespace symcan::stream

#include "symcan/stream/trace_reader.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <utility>

#include "symcan/util/jsonl.hpp"

namespace symcan::stream {

namespace {

using jsonl::Cursor;

bool slug_to_type(const std::string& slug, TraceEventType& out) {
  if (slug == "release") out = TraceEventType::kRelease;
  else if (slug == "tx_start") out = TraceEventType::kTxStart;
  else if (slug == "tx_end") out = TraceEventType::kTxEnd;
  else if (slug == "error") out = TraceEventType::kError;
  else if (slug == "retransmit") out = TraceEventType::kRetransmit;
  else if (slug == "loss") out = TraceEventType::kLoss;
  else return false;
  return true;
}

/// One trace line -> one event. Returns false when the line is unusable
/// (already diagnosed).
bool parse_line(const char* begin, const char* end, std::size_t line_no, TraceEvent& out,
                Diagnostics& diags) {
  Cursor c{begin, end};
  if (!c.eat('{')) {
    diags.error(line_no, "expected a JSON object");
    return false;
  }
  bool have_t = false, have_type = false, have_message = false, have_instance = false;
  std::string key, slug;
  std::int64_t t_ns = 0;

  c.skip_ws();
  if (!c.eat('}')) {
    while (true) {
      if (!jsonl::parse_string(c, line_no, "key", key, diags)) return false;
      if (!c.eat(':')) {
        diags.error(line_no, "expected ':' after key \"" + key + "\"");
        return false;
      }
      if (key == "t_ns") {
        if (have_t) {
          diags.error(line_no, "duplicate key \"t_ns\"");
          return false;
        }
        if (!jsonl::parse_i64(c, line_no, "t_ns", t_ns, diags)) return false;
        have_t = true;
      } else if (key == "type") {
        if (have_type) {
          diags.error(line_no, "duplicate key \"type\"");
          return false;
        }
        if (!jsonl::parse_string(c, line_no, "type", slug, diags)) return false;
        have_type = true;
      } else if (key == "message") {
        if (have_message) {
          diags.error(line_no, "duplicate key \"message\"");
          return false;
        }
        if (!jsonl::parse_string(c, line_no, "message", out.message, diags)) return false;
        have_message = true;
      } else if (key == "instance") {
        if (have_instance) {
          diags.error(line_no, "duplicate key \"instance\"");
          return false;
        }
        if (!jsonl::parse_i64(c, line_no, "instance", out.instance, diags)) return false;
        have_instance = true;
      } else {
        diags.warning(line_no, "unknown key \"" + key + "\" ignored");
        if (!jsonl::skip_scalar(c, line_no, diags)) return false;
        if (diags.policy() == DiagnosticPolicy::kStrict) return false;
      }
      if (c.eat(',')) continue;
      if (c.eat('}')) break;
      diags.error(line_no, "expected ',' or '}'");
      return false;
    }
  }
  c.skip_ws();
  if (!c.done()) {
    diags.error(line_no, "trailing characters after object");
    return false;
  }
  if (!have_t || !have_type || !have_message || !have_instance) {
    std::string missing;
    const auto need = [&](bool have, const char* name) {
      if (have) return;
      if (!missing.empty()) missing += ", ";
      missing += name;
    };
    need(have_t, "t_ns");
    need(have_type, "type");
    need(have_message, "message");
    need(have_instance, "instance");
    diags.error(line_no, "missing key(s): " + missing);
    return false;
  }
  if (t_ns < 0) {
    diags.error(line_no, "t_ns must be non-negative");
    return false;
  }
  TraceEventType type;
  if (!slug_to_type(slug, type)) {
    diags.error(line_no, "unknown event type '" + slug + "'");
    return false;
  }
  out.time = Duration::ns(t_ns);
  out.type = type;
  return true;
}

}  // namespace

std::optional<Trace> trace_from_jsonl(const std::string& text, Diagnostics& diags) {
  diags.set_source("trace JSONL");
  Trace trace;
  std::size_t line_no = 0;
  Duration prev = Duration::zero();
  bool warned_backwards = false;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  while (p != end) {
    ++line_no;
    const char* nl = p;
    while (nl != end && *nl != '\n') ++nl;
    const char* line_end = nl;
    if (line_end != p && line_end[-1] == '\r') --line_end;
    const bool blank = [&] {
      for (const char* q = p; q != line_end; ++q)
        if (*q != ' ' && *q != '\t') return false;
      return true;
    }();
    if (!blank) {
      if (diags.exhausted()) {
        diags.error(0, "too many problems; giving up");
        return std::nullopt;
      }
      TraceEvent e;
      if (parse_line(p, line_end, line_no, e, diags)) {
        if (e.time < prev && !warned_backwards)  {
          diags.warning(line_no, "timestamps run backwards (first at this line); "
                                 "the stream analyzer tolerates but cannot re-order them");
          warned_backwards = true;
        }
        prev = e.time;
        trace.record(e.time, e.type, std::move(e.message), e.instance);
      }
    }
    p = nl == end ? end : nl + 1;
  }
  if (!diags.ok()) return std::nullopt;
  return trace;
}

Trace trace_from_jsonl(const std::string& text) {
  Diagnostics diags;
  auto trace = trace_from_jsonl(text, diags);
  if (!trace) {
    diags.throw_if_failed();
    return Trace{};  // Unreachable: nullopt implies a recorded error.
  }
  return std::move(*trace);
}

Trace load_trace_jsonl(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    Diagnostics diags(DiagnosticPolicy::kLenient, "trace JSONL");
    diags.error(0, "cannot open '" + path + "'");
    diags.throw_if_failed();
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return trace_from_jsonl(ss.str());
}

}  // namespace symcan::stream

#include "symcan/stream/analyzer.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "symcan/obs/export.hpp"
#include "symcan/obs/obs.hpp"

namespace symcan::stream {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  char buf[256];
  const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (n < 0) {
    va_end(ap2);
    return;
  }
  if (static_cast<std::size_t>(n) < sizeof buf) {
    out.append(buf, static_cast<std::size_t>(n));
  } else {
    std::string big(static_cast<std::size_t>(n) + 1, '\0');
    std::vsnprintf(big.data(), big.size(), fmt, ap2);
    big.resize(static_cast<std::size_t>(n));
    out += big;
  }
  va_end(ap2);
}

/// value += (sample - value) >> shift — the integer EWMA every baseline
/// uses. Arithmetic shift of the signed error rounds toward -inf on both
/// branches identically on every platform we target, so the trajectory is
/// bit-exact regardless of chunking or host.
inline void ewma_update(std::int64_t& value, std::int64_t sample, int shift) {
  value += (sample - value) >> shift;
}

}  // namespace

const MessageStreamStats* StreamStats::find(const std::string& name) const {
  for (const auto& m : messages)
    if (m.name == name) return &m;
  return nullptr;
}

StreamAnalyzer::StreamAnalyzer(StreamConfig cfg) : cfg_(cfg) {}

void StreamAnalyzer::set_bounds(const BusResult& analysis) {
  for (const MessageResult& r : analysis.messages) {
    MessageState& ms = state_for(r.name);
    ms.bound = r.wcrt;
    ms.bound_known = true;
    ms.diverged = r.diverged;
  }
}

StreamAnalyzer::MessageState& StreamAnalyzer::state_for(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return states_[it->second];
  const std::uint32_t idx = static_cast<std::uint32_t>(states_.size());
  index_.emplace(name, idx);
  states_.emplace_back();
  states_[idx].name = name;
  return states_[idx];
}

StreamAnalyzer::InflightSlot& StreamAnalyzer::slot_for(MessageState& ms, std::int64_t instance) {
  InflightSlot* free_slot = nullptr;
  InflightSlot* oldest = &ms.inflight[0];
  for (auto& s : ms.inflight) {
    if (s.used && s.instance == instance) return s;
    if (!s.used && free_slot == nullptr) free_slot = &s;
    if (s.age < oldest->age) oldest = &s;
  }
  InflightSlot* slot = free_slot;
  if (slot == nullptr) {
    // More concurrently open instances than the simulator can produce;
    // recycle the oldest rather than growing (the O(1) guarantee wins
    // over accounting fidelity for hostile recorded traces).
    ++ms.inflight_evictions;
    slot = oldest;
  }
  *slot = InflightSlot{};
  slot->instance = instance;
  slot->age = ms.next_age++;
  slot->used = true;
  return *slot;
}

void StreamAnalyzer::emit(Duration time, HealthEventType type, const MessageState& ms,
                          std::int64_t observed_ns, std::int64_t baseline_ns) {
  ++emitted_;
  if (events_.size() >= cfg_.max_events) {
    ++dropped_;
    return;
  }
  HealthEvent e;
  e.time = time;
  e.type = type;
  e.message = ms.name;
  e.observed_ns = observed_ns;
  e.baseline_ns = baseline_ns;
  e.frame_index = cur_frame_;
  events_.push_back(std::move(e));
}

void StreamAnalyzer::heap_push(Watchdog w) {
  heap_.push_back(w);
  std::push_heap(heap_.begin(), heap_.end(), WatchdogAfter{});
}

StreamAnalyzer::Watchdog StreamAnalyzer::heap_pop() {
  std::pop_heap(heap_.begin(), heap_.end(), WatchdogAfter{});
  Watchdog w = heap_.back();
  heap_.pop_back();
  return w;
}

void StreamAnalyzer::arm_watchdog(MessageState& ms, std::uint32_t idx) {
  // A watchdog needs a calibrated period; during warmup a silent message
  // is indistinguishable from a slow one.
  if (ms.arrivals < cfg_.warmup_arrivals) return;
  Watchdog w;
  w.deadline =
      ms.last_arrival + max(Duration::ns(ms.m_fast_ns), cfg_.stall_floor) * cfg_.stall_multiplier;
  w.state = idx;
  w.gen = ++ms.watchdog_gen;
  heap_push(w);
}

void StreamAnalyzer::fire_expired_watchdogs(Duration now) {
  while (!heap_.empty() && heap_.front().deadline < now) {
    const Watchdog w = heap_pop();
    MessageState& ms = states_[w.state];
    // Lazy deletion: an arrival since arming re-armed with a fresh
    // generation, so this entry is stale.
    if (w.gen != ms.watchdog_gen || ms.stall_active) continue;
    ms.stall_active = true;
    emit(w.deadline, HealthEventType::kStallOnset, ms, (w.deadline - ms.last_arrival).count_ns(),
         ms.m_fast_ns);
  }
}

void StreamAnalyzer::on_completion(MessageState& ms, std::uint32_t idx, Duration now,
                                   Duration latency, bool have_latency) {
  ++ms.completions;

  if (have_latency) {
    ++ms.latency_samples;
    ms.latency_min = min(ms.latency_min, latency);
    ms.latency_max = max(ms.latency_max, latency);
    ms.latency_total += latency;
    if (ms.has_resp) {
      ewma_update(ms.resp_ewma_ns, latency.count_ns(), cfg_.fast_shift);
    } else {
      ms.resp_ewma_ns = latency.count_ns();
      ms.has_resp = true;
    }
    // Online soundness oracle — same predicate as the offline
    // compare_bound_vs_observed violation bit, applied at the first
    // crossing instead of after the run.
    if (ms.bound_known && !ms.diverged && latency > ms.bound) {
      if (ms.bound_violations == 0)
        emit(now, HealthEventType::kBoundViolation, ms, latency.count_ns(), ms.bound.count_ns());
      ++ms.bound_violations;
    }
  }

  ++ms.arrivals;
  const bool armed = ms.arrivals > cfg_.warmup_arrivals;

  if (!ms.has_arrival) {
    ms.has_arrival = true;
    ms.last_arrival = now;
    arm_watchdog(ms, idx);
    return;
  }

  if (ms.stall_active) {
    // The message is back; the gap that just ended was the stall, not a
    // jitter sample — re-anchor without polluting the baselines.
    ms.stall_active = false;
    emit(now, HealthEventType::kStallClear, ms, (now - ms.last_arrival).count_ns(), ms.m_fast_ns);
    ms.last_arrival = now;
    arm_watchdog(ms, idx);
    return;
  }

  const std::int64_t delta = (now - ms.last_arrival).count_ns();

  if (!ms.has_baseline) {
    ms.m_fast_ns = delta;
    ms.m_slow_ns = delta;
    ms.dev_ns = 0;
    ms.has_baseline = true;
  } else {
    // Jitter burst: judged against the baseline *before* this sample
    // updates it — and outliers are *excluded* from the fast baseline and
    // deviation (a robust envelope: a burst cannot widen its own
    // threshold and mask its tail). The slow reference always updates, so
    // a genuine regime change still surfaces, as drift.
    const std::int64_t err = delta - ms.m_fast_ns;
    const std::int64_t abs_err = err < 0 ? -err : err;
    bool outlier = false;
    if (armed) {
      outlier = abs_err > cfg_.jitter_multiplier * ms.dev_ns + ms.m_fast_ns / 8;
      if (outlier) {
        ms.jitter_calm = 0;
        if (++ms.jitter_streak == cfg_.jitter_onset_count && !ms.jitter_active) {
          ms.jitter_active = true;
          emit(now, HealthEventType::kJitterBurstOnset, ms, delta, ms.m_fast_ns);
        }
      } else {
        ms.jitter_streak = 0;
        if (ms.jitter_active && ++ms.jitter_calm == cfg_.jitter_clear_count) {
          ms.jitter_active = false;
          ms.jitter_calm = 0;
          emit(now, HealthEventType::kJitterBurstClear, ms, delta, ms.m_fast_ns);
        }
      }
    }

    ewma_update(ms.m_slow_ns, delta, cfg_.slow_shift);
    if (!outlier) {
      ewma_update(ms.m_fast_ns, delta, cfg_.fast_shift);
      ewma_update(ms.dev_ns, abs_err, cfg_.fast_shift);
    }

    if (armed) {
      // Drift: the fast baseline running away from the slow reference.
      const std::int64_t gap =
          ms.m_fast_ns > ms.m_slow_ns ? ms.m_fast_ns - ms.m_slow_ns : ms.m_slow_ns - ms.m_fast_ns;
      if (gap * 1000 > cfg_.drift_onset_permille * ms.m_slow_ns) {
        ms.drift_calm = 0;
        if (++ms.drift_streak == cfg_.drift_onset_count && !ms.drift_active) {
          ms.drift_active = true;
          emit(now, HealthEventType::kDriftOnset, ms, ms.m_fast_ns, ms.m_slow_ns);
        }
      } else if (gap * 1000 <= cfg_.drift_clear_permille * ms.m_slow_ns) {
        ms.drift_streak = 0;
        if (ms.drift_active && ++ms.drift_calm == cfg_.drift_clear_count) {
          ms.drift_active = false;
          ms.drift_calm = 0;
          emit(now, HealthEventType::kDriftClear, ms, ms.m_fast_ns, ms.m_slow_ns);
        }
      } else {
        // Hysteresis band: neither condition accumulates.
        ms.drift_streak = 0;
        ms.drift_calm = 0;
      }

      // Arrhythmia: sustained irregularity, no single outlier required.
      if (ms.dev_ns * 1000 > cfg_.arrhythmia_onset_permille * ms.m_fast_ns) {
        ms.arr_calm = 0;
        if (++ms.arr_streak == cfg_.arrhythmia_onset_count && !ms.arr_active) {
          ms.arr_active = true;
          emit(now, HealthEventType::kArrhythmiaOnset, ms, ms.dev_ns, ms.m_fast_ns);
        }
      } else if (ms.dev_ns * 1000 <= cfg_.arrhythmia_clear_permille * ms.m_fast_ns) {
        ms.arr_streak = 0;
        if (ms.arr_active && ++ms.arr_calm == cfg_.arrhythmia_clear_count) {
          ms.arr_active = false;
          ms.arr_calm = 0;
          emit(now, HealthEventType::kArrhythmiaClear, ms, ms.dev_ns, ms.m_fast_ns);
        }
      } else {
        ms.arr_streak = 0;
        ms.arr_calm = 0;
      }
    }
  }

  ms.last_arrival = now;
  arm_watchdog(ms, idx);
}

void StreamAnalyzer::ingest_one(const TraceEvent& e) {
  cur_frame_ = frames_++;
  // Any event advances the stream clock; silent messages are judged
  // against the traffic of the others, not against wall time.
  fire_expired_watchdogs(e.time);

  auto it = index_.find(e.message);
  std::uint32_t idx;
  if (it != index_.end()) {
    idx = it->second;
  } else {
    state_for(e.message);
    idx = index_.find(e.message)->second;
  }
  MessageState& ms = states_[idx];

  switch (e.type) {
    case TraceEventType::kRelease: {
      ++ms.releases;
      InflightSlot& s = slot_for(ms, e.instance);
      s.release = e.time;
      s.released = true;
      break;
    }
    case TraceEventType::kTxStart: {
      InflightSlot& s = slot_for(ms, e.instance);
      if (!s.started) s.started = true;
      break;
    }
    case TraceEventType::kTxEnd: {
      InflightSlot& s = slot_for(ms, e.instance);
      const bool have_latency = s.released;
      const Duration latency = have_latency ? e.time - s.release : Duration::zero();
      s.used = false;
      on_completion(ms, idx, e.time, latency, have_latency);
      break;
    }
    case TraceEventType::kError: {
      ++ms.errors;
      InflightSlot& s = slot_for(ms, e.instance);
      if (!s.errored) {
        s.errored = true;
        s.first_error = e.time;
      }
      break;
    }
    case TraceEventType::kRetransmit:
      ++ms.retransmits;
      break;
    case TraceEventType::kLoss: {
      ++ms.losses;
      InflightSlot& s = slot_for(ms, e.instance);
      s.used = false;
      break;
    }
  }
}

void StreamAnalyzer::ingest(const TraceEvent& e) { ingest(&e, 1); }

void StreamAnalyzer::ingest(const TraceEvent* events, std::size_t count) {
  if (!obs::enabled()) {
    for (std::size_t i = 0; i < count; ++i) ingest_one(events[i]);
    return;
  }
  const std::int64_t emitted_before = emitted_;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < count; ++i) ingest_one(events[i]);
  const auto t1 = std::chrono::steady_clock::now();
  note_obs_batch(count, std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count(),
                 emitted_ - emitted_before);
}

void StreamAnalyzer::note_obs_batch(std::size_t count, std::int64_t wall_ns,
                                    std::int64_t events_raised) {
  if (obs_frames_ == nullptr) {
    obs::MetricsRegistry& reg = obs::metrics();
    obs_frames_ = &reg.counter("stream.frames_ingested");
    obs_events_ = &reg.counter("stream.health_events");
    obs_cost_ = &reg.histogram("stream.ingest_cost_us");
  }
  if (count == 0) return;
  obs_frames_->add(static_cast<std::int64_t>(count));
  if (events_raised > 0) obs_events_->add(events_raised);
  // Average per-frame cost of the batch, in the registry's microsecond axis.
  obs_cost_->observe(static_cast<double>(wall_ns) / 1000.0 / static_cast<double>(count));
}

void StreamAnalyzer::advance_to(Duration end_time) {
  cur_frame_ = frames_;
  // Terminal flush is inclusive: a deadline landing exactly on the span
  // boundary has expired by the time the run is over.
  while (!heap_.empty() && heap_.front().deadline <= end_time) {
    const Watchdog w = heap_pop();
    MessageState& ms = states_[w.state];
    if (w.gen != ms.watchdog_gen || ms.stall_active) continue;
    ms.stall_active = true;
    emit(w.deadline, HealthEventType::kStallOnset, ms, (w.deadline - ms.last_arrival).count_ns(),
         ms.m_fast_ns);
  }
}

StreamStats StreamAnalyzer::stats() const {
  StreamStats out;
  out.frames = frames_;
  out.health_events = emitted_;
  out.dropped_events = dropped_;
  out.messages.reserve(states_.size());
  for (const MessageState& ms : states_) {
    MessageStreamStats m;
    m.name = ms.name;
    m.releases = ms.releases;
    m.completions = ms.completions;
    m.errors = ms.errors;
    m.retransmits = ms.retransmits;
    m.losses = ms.losses;
    m.latency_samples = ms.latency_samples;
    m.latency_min = ms.latency_min;
    m.latency_max = ms.latency_max;
    m.latency_total = ms.latency_total;
    m.period_baseline = Duration::ns(ms.m_fast_ns);
    m.period_deviation = Duration::ns(ms.dev_ns);
    m.response_baseline = Duration::ns(ms.resp_ewma_ns);
    m.bound_known = ms.bound_known;
    m.diverged = ms.diverged;
    m.bound = ms.bound;
    m.bound_violations = ms.bound_violations;
    m.jitter_active = ms.jitter_active;
    m.drift_active = ms.drift_active;
    m.stall_active = ms.stall_active;
    m.arrhythmia_active = ms.arr_active;
    m.inflight_evictions = ms.inflight_evictions;
    out.active_conditions +=
        (m.jitter_active ? 1 : 0) + (m.drift_active ? 1 : 0) + (m.stall_active ? 1 : 0) +
        (m.arrhythmia_active ? 1 : 0);
    if (m.violation()) ++out.violations;
    out.messages.push_back(std::move(m));
  }
  std::sort(out.messages.begin(), out.messages.end(),
            [](const MessageStreamStats& a, const MessageStreamStats& b) { return a.name < b.name; });
  return out;
}

std::string stream_stats_to_text(const StreamStats& stats) {
  std::string out;
  appendf(out, "stream: %" PRId64 " frames, %" PRId64 " health events (%" PRId64
               " dropped), %" PRId64 " active conditions, %" PRId64 " messages over bound\n",
          stats.frames, stats.health_events, stats.dropped_events, stats.active_conditions,
          stats.violations);
  appendf(out, "%-20s %8s %6s %6s %6s %12s %12s %12s %12s %10s %s\n", "message", "complete", "err",
          "retx", "lost", "lat min", "lat mean", "lat max", "period", "deviation", "state");
  for (const auto& m : stats.messages) {
    std::string state;
    if (m.jitter_active) state += " jitter";
    if (m.drift_active) state += " drift";
    if (m.stall_active) state += " stall";
    if (m.arrhythmia_active) state += " arrhythmia";
    if (m.violation()) {
      appendf(state, " OVER-BOUND(%" PRId64 ")", m.bound_violations);
    }
    if (state.empty()) state = " ok";
    const Duration lat_min = m.latency_samples > 0 ? m.latency_min : Duration::zero();
    appendf(out, "%-20s %8" PRId64 " %6" PRId64 " %6" PRId64 " %6" PRId64
                 " %12s %12s %12s %12s %10s%s\n",
            m.name.c_str(), m.completions, m.errors, m.retransmits, m.losses,
            to_string(lat_min).c_str(), to_string(m.latency_mean()).c_str(),
            to_string(m.latency_max).c_str(), to_string(m.period_baseline).c_str(),
            to_string(m.period_deviation).c_str(), state.c_str());
  }
  return out;
}

std::string stream_stats_to_json(const StreamStats& stats) {
  std::string out = "{";
  appendf(out, "\"frames\":%" PRId64 ",", stats.frames);
  appendf(out, "\"health_events\":%" PRId64 ",", stats.health_events);
  appendf(out, "\"dropped_events\":%" PRId64 ",", stats.dropped_events);
  appendf(out, "\"active_conditions\":%" PRId64 ",", stats.active_conditions);
  appendf(out, "\"violations\":%" PRId64 ",", stats.violations);
  out += "\"messages\":[";
  for (std::size_t i = 0; i < stats.messages.size(); ++i) {
    const MessageStreamStats& m = stats.messages[i];
    if (i) out += ",";
    out += "{";
    appendf(out, "\"name\":\"%s\",", obs::json_escape(m.name).c_str());
    appendf(out, "\"releases\":%" PRId64 ",", m.releases);
    appendf(out, "\"completions\":%" PRId64 ",", m.completions);
    appendf(out, "\"errors\":%" PRId64 ",", m.errors);
    appendf(out, "\"retransmits\":%" PRId64 ",", m.retransmits);
    appendf(out, "\"losses\":%" PRId64 ",", m.losses);
    appendf(out, "\"latency_samples\":%" PRId64 ",", m.latency_samples);
    appendf(out, "\"latency_min_ns\":%" PRId64 ",",
            m.latency_samples > 0 ? m.latency_min.count_ns() : 0);
    appendf(out, "\"latency_mean_ns\":%" PRId64 ",", m.latency_mean().count_ns());
    appendf(out, "\"latency_max_ns\":%" PRId64 ",", m.latency_max.count_ns());
    appendf(out, "\"period_baseline_ns\":%" PRId64 ",", m.period_baseline.count_ns());
    appendf(out, "\"period_deviation_ns\":%" PRId64 ",", m.period_deviation.count_ns());
    appendf(out, "\"response_baseline_ns\":%" PRId64 ",", m.response_baseline.count_ns());
    out += "\"bound_known\":";
    out += m.bound_known ? "true" : "false";
    out += ",\"diverged\":";
    out += m.diverged ? "true" : "false";
    if (m.bound_known && !m.diverged && m.bound < Duration::infinite())
      appendf(out, ",\"bound_ns\":%" PRId64, m.bound.count_ns());
    appendf(out, ",\"bound_violations\":%" PRId64 ",", m.bound_violations);
    appendf(out, "\"inflight_evictions\":%" PRId64 ",", m.inflight_evictions);
    out += "\"active\":[";
    bool first = true;
    const auto flag = [&](bool on, const char* name) {
      if (!on) return;
      if (!first) out += ",";
      first = false;
      out += "\"";
      out += name;
      out += "\"";
    };
    flag(m.jitter_active, "jitter");
    flag(m.drift_active, "drift");
    flag(m.stall_active, "stall");
    flag(m.arrhythmia_active, "arrhythmia");
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace symcan::stream

#pragma once

// JSONL trace ingest — the inverse of sim::trace_to_jsonl, and the
// second trust boundary of the stream layer: `symcan monitor` accepts
// traces recorded by other tools, so every malformed line must surface
// as a line-numbered diagnostic (util/diagnostics.hpp), never a crash or
// a silently skewed statistic.
//
// Accepted line grammar: one JSON object per line with exactly the keys
// the exporter writes —
//
//   {"t_ns":<int>,"type":"<slug>","message":"<string>","instance":<int>}
//
// in any key order; type slugs are release, tx_start, tx_end, error,
// retransmit, loss. Empty lines are skipped. Unknown keys with scalar
// values are warnings (errors under strict); duplicate or missing keys,
// malformed JSON, non-integer numbers, negative timestamps and unknown
// slugs are errors. Timestamps running backwards get a single warning
// for the whole input (the analyzer tolerates them; a recorder merging
// per-node logs often interleaves imperfectly). String escapes,
// including \uXXXX (with surrogate pairs), decode to UTF-8, so
// parse ∘ serialize ∘ parse is the identity on event lists.

#include <optional>
#include <string>

#include "symcan/sim/trace.hpp"
#include "symcan/util/diagnostics.hpp"

namespace symcan::stream {

/// Parse JSONL trace text, reporting every malformed line through
/// `diags`. Does not throw; returns nullopt when any error was recorded,
/// and the full event list otherwise.
std::optional<Trace> trace_from_jsonl(const std::string& text, Diagnostics& diags);

/// Throwing convenience wrapper (lenient policy): throws ParseError
/// carrying the line-numbered diagnostics.
Trace trace_from_jsonl(const std::string& text);

/// File convenience wrapper around the throwing form.
Trace load_trace_jsonl(const std::string& path);

}  // namespace symcan::stream

#pragma once

// Typed health events emitted by the streaming analyzer (analyzer.hpp).
//
// Every detector reports *conditions*, not samples: an onset event when a
// message's timing leaves its self-calibrated envelope and a clear event
// when it returns — the alarm semantics a bus monitor needs, instead of a
// static threshold that either spams per frame or never fires. Bound
// violations are the exception: each message raises at most one
// kBoundViolation (mirroring the per-message `violation` bit of
// sim::compare_bound_vs_observed), with repeats counted, not re-emitted.

#include <cstdint>
#include <string>
#include <vector>

#include "symcan/util/time.hpp"

namespace symcan::stream {

enum class HealthEventType : std::uint8_t {
  kJitterBurstOnset,  ///< Consecutive inter-arrival outliers vs the EWMA envelope.
  kJitterBurstClear,
  kDriftOnset,  ///< Fast period baseline ran away from the slow reference.
  kDriftClear,
  kStallOnset,  ///< Watchdog on the expected next arrival expired.
  kStallClear,
  kArrhythmiaOnset,  ///< Sustained inter-arrival irregularity (high EWMA deviation).
  kArrhythmiaClear,
  kBoundViolation,  ///< Observed response time crossed the analysis bound.
};

const char* to_string(HealthEventType t);

/// True for the *Onset types and kBoundViolation (conditions being raised).
bool is_onset(HealthEventType t);

struct HealthEvent {
  Duration time = Duration::zero();  ///< Stream time the condition changed.
  HealthEventType type = HealthEventType::kStallOnset;
  std::string message;  ///< Message name the condition applies to.

  /// The offending measurement (inter-arrival, response, or baseline gap)
  /// and the self-calibrated expectation it was judged against, integer ns.
  std::int64_t observed_ns = 0;
  std::int64_t baseline_ns = 0;

  /// 0-based index of the ingested trace event that triggered this —
  /// chunk-invariant, so detector tests can pin exact firing positions.
  std::int64_t frame_index = 0;

  friend bool operator==(const HealthEvent&, const HealthEvent&) = default;
};

/// "1.204 ms  stall_onset  M7  observed 41.0 ms baseline 10.0 ms @ frame 812".
std::string to_string(const HealthEvent& e);

/// One JSON object per line:
/// {"t_ns":...,"event":"stall_onset","message":"...","observed_ns":...,
///  "baseline_ns":...,"frame":N}
/// Message names are JSON-escaped; an empty list yields an empty string.
std::string health_events_to_jsonl(const std::vector<HealthEvent>& events);

}  // namespace symcan::stream

#include "symcan/model/event_model.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace symcan {

EventModel::EventModel(Duration period, Duration jitter, Duration dmin)
    : period_{period}, jitter_{jitter}, dmin_{dmin} {
  if (period <= Duration::zero()) throw std::invalid_argument("EventModel: period must be > 0");
  if (jitter < Duration::zero()) throw std::invalid_argument("EventModel: jitter must be >= 0");
  if (dmin < Duration::zero()) throw std::invalid_argument("EventModel: d_min must be >= 0");
  // d_min > P would contradict the long-term period; clamp to P, which is
  // the strongest statement d_min can make for a periodic source.
  dmin_ = min(dmin_, period_);
}

std::int64_t EventModel::max_burst_size() const {
  if (!is_bursty()) return 1;
  // Events of a burst arrive at d_min spacing. The burst ends once the
  // nominal schedule catches up: b = eta+ of an infinitesimal window,
  // which equals ceil(J/P) + 1 when unconstrained by d_min.
  return ceil_div(jitter_, period_) + 1;
}

std::int64_t EventModel::eta_plus(Duration dt) const {
  if (dt <= Duration::zero()) return 0;
  const std::int64_t periodic_bound = ceil_div(dt + jitter_, period_);
  if (dmin_ <= Duration::zero()) return periodic_bound;
  const std::int64_t burst_bound = ceil_div(dt, dmin_) + 1;
  return std::min(periodic_bound, burst_bound);
}

std::int64_t EventModel::eta_minus(Duration dt) const {
  if (dt <= jitter_) return 0;
  return floor_div(dt - jitter_, period_);
}

Duration EventModel::delta_min(std::int64_t n) const {
  if (n <= 1) return Duration::zero();
  const Duration periodic = (n - 1) * period_ - jitter_;
  const Duration burst = (n - 1) * dmin_;
  return max(max(periodic, burst), Duration::zero());
}

Duration EventModel::delta_max(std::int64_t n) const {
  if (n <= 1) return Duration::zero();
  return (n - 1) * period_ + jitter_;
}

EventModel EventModel::with_added_jitter(Duration extra) const {
  assert(extra >= Duration::zero());
  return EventModel{period_, jitter_ + extra, dmin_};
}

bool EventModel::contains(const EventModel& other) const {
  // *this admits at least as many events in every window, and its minimum
  // guarantees are no stronger. Exact for this model class when checked at
  // the breakpoints of both step functions; we sample the union of
  // breakpoints of eta+ for the first k steps plus a long-horizon check of
  // the rates.
  if (period_ > other.period_) return false;  // lower long-term rate can't contain higher
  const std::int64_t k = std::max<std::int64_t>(other.max_burst_size() + 2, 8);
  for (std::int64_t n = 2; n <= k; ++n) {
    // other can squeeze n events into other.delta_min(n); *this must admit
    // that density: eta+ of this at that window must be >= n.
    const Duration w = other.delta_min(n);
    if (w == Duration::zero()) {
      if (dmin_ > Duration::zero()) return false;
      continue;
    }
    // Events at the two window ends count: n events span delta_min(n), so a
    // half-open window marginally larger holds all n.
    if (eta_plus(w + Duration::ns(1)) < n) return false;
  }
  return true;
}

std::string EventModel::to_string() const {
  std::ostringstream os;
  os << "EventModel(P=" << symcan::to_string(period_) << ", J=" << symcan::to_string(jitter_)
     << ", dmin=" << symcan::to_string(dmin_) << ")";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const EventModel& em) { return os << em.to_string(); }

}  // namespace symcan

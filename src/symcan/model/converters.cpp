#include "symcan/model/converters.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace symcan {

EventModel to_sporadic(const EventModel& em) {
  const Duration d2 = em.delta_min(2);
  if (d2 <= Duration::zero()) {
    // Events may coincide: the sporadic class cannot express that; the
    // closest containing member uses the smallest representable distance.
    return EventModel::sporadic(Duration::ns(1));
  }
  return EventModel::sporadic(d2);
}

EventModel to_periodic_jitter(const EventModel& em) {
  return EventModel::periodic_jitter(em.period(), em.jitter());
}

EventModel abstraction_union(const EventModel& a, const EventModel& b) {
  // Rate: the union must admit the higher rate.
  const Duration period = min(a.period(), b.period());
  // Short-window density: the weaker minimum-distance guarantee.
  const Duration dmin = min(a.min_distance(), b.min_distance());
  // Jitter: smallest J such that ceil((w+J)/P) dominates both eta+
  // functions. Checked on the inputs' breakpoints: for every n, the union
  // must admit n events within the tighter of the two delta_min(n) spans:
  //   (n-1)*period - J <= min(delta_min_a(n), delta_min_b(n))
  // so J >= (n-1)*period - min(...). The required J stabilizes once the
  // periodic terms dominate (period <= both input periods).
  Duration jitter = max(a.jitter(), b.jitter());
  int settled = 0;
  for (std::int64_t n = 2; n < 100'000 && settled < 8; ++n) {
    const Duration span = min(a.delta_min(n), b.delta_min(n));
    const Duration need = (n - 1) * period - span;
    if (need > jitter) {
      jitter = need;
      settled = 0;
    } else {
      ++settled;
    }
  }
  return EventModel::periodic_burst(period, jitter, dmin);
}

double adaptation_error(const EventModel& tight, const EventModel& loose, Duration horizon) {
  if (horizon <= Duration::zero())
    throw std::invalid_argument("adaptation_error: horizon must be > 0");
  // Sample windows just past every step point of both eta+ functions.
  std::vector<Duration> windows;
  for (const EventModel* em : {&tight, &loose}) {
    for (std::int64_t n = 2;; ++n) {
      const Duration step = em->delta_min(n);
      if (step > horizon || n > 100'000) break;
      windows.push_back(step + Duration::ns(1));
    }
  }
  windows.push_back(Duration::ns(1));
  windows.push_back(horizon);

  double worst = 0;
  for (const Duration w : windows) {
    const double t = static_cast<double>(tight.eta_plus(w));
    const double l = static_cast<double>(loose.eta_plus(w));
    worst = std::max(worst, (l - t) / std::max(1.0, t));
  }
  return worst;
}

}  // namespace symcan

#pragma once

// Standard event models in the SymTA/S sense (Richter, "Compositional
// Scheduling Analysis Using Standard Event Models", PhD thesis, TU
// Braunschweig 2005; Richter & Ernst, DATE 2002).
//
// An event model abstracts the activation timing of a task or bus message
// by three parameters:
//
//   P      activation period (minimum inter-arrival for sporadic sources)
//   J      activation jitter: each event may deviate from its nominal
//          periodic release by up to J (release interval of event i is
//          [i*P, i*P + J])
//   d_min  minimum distance between any two consecutive events; relevant
//          when J >= P, where events can "burst" and d_min limits how
//          densely they can pile up
//
// From (P, J, d_min) the model derives the arrival curves eta+/eta- (max/
// min events in any time window) and the distance functions delta_min/
// delta_max (min/max span of n consecutive events). These four functions
// are the *only* interface the resource-local analyses need, which is what
// makes the approach compositional: an ECU's internal scheduling is fully
// summarized by the output event models of the messages it sends.

#include <cstdint>
#include <ostream>
#include <string>

#include "symcan/util/time.hpp"

namespace symcan {

/// Periodic-with-jitter(-and-burst) standard event model.
///
/// Invariants: period > 0; jitter >= 0; 0 <= min_distance <= period.
/// min_distance == 0 means "no extra burst limitation" and is normalized
/// to the most conservative interpretation (events may coincide).
class EventModel {
 public:
  /// Strictly periodic source.
  static EventModel periodic(Duration period) { return EventModel{period, Duration::zero(), period}; }

  /// Periodic source with release jitter.
  static EventModel periodic_jitter(Duration period, Duration jitter) {
    return EventModel{period, jitter, Duration::zero()};
  }

  /// Periodic source with jitter and a guaranteed minimum inter-event
  /// distance (the "periodic with burst" model).
  static EventModel periodic_burst(Duration period, Duration jitter, Duration min_distance) {
    return EventModel{period, jitter, min_distance};
  }

  /// Sporadic source: at most one event per `min_interarrival`.
  static EventModel sporadic(Duration min_interarrival) {
    return EventModel{min_interarrival, Duration::zero(), min_interarrival};
  }

  Duration period() const { return period_; }
  Duration jitter() const { return jitter_; }
  Duration min_distance() const { return dmin_; }

  /// True when jitter >= period, i.e. consecutive events can overtake
  /// their nominal slots and arrive back-to-back (at d_min spacing).
  bool is_bursty() const { return jitter_ >= period_; }

  /// Maximum number of events that can arrive back-to-back at d_min
  /// spacing before the long-term rate 1/P reasserts itself.
  std::int64_t max_burst_size() const;

  /// eta+(dt): maximum number of events in any half-open window of
  /// length dt. eta+(0) == 0; for dt > 0:
  ///   min( ceil((dt + J)/P), ceil(dt/d_min) + 1 )   (second term only
  /// when d_min > 0).
  std::int64_t eta_plus(Duration dt) const;

  /// eta-(dt): guaranteed minimum number of events in any window of
  /// length dt: floor(max(0, dt - J)/P).
  std::int64_t eta_minus(Duration dt) const;

  /// delta_min(n): minimum time span containing n consecutive events
  /// (n >= 2): max((n-1)*d_min, (n-1)*P - J). The pseudo-inverse of
  /// eta+. delta_min(0) = delta_min(1) = 0.
  Duration delta_min(std::int64_t n) const;

  /// delta_max(n): maximum time span of n consecutive events (n >= 2):
  /// (n-1)*P + J. delta_max(0) = delta_max(1) = 0.
  Duration delta_max(std::int64_t n) const;

  /// The model that results from adding response-time jitter `extra` on
  /// the way through a resource: J_out = J + extra (P, d_min unchanged
  /// except d_min can never exceed what the new jitter permits).
  EventModel with_added_jitter(Duration extra) const;

  /// Same source, jitter replaced.
  EventModel with_jitter(Duration jitter) const { return EventModel{period_, jitter, dmin_}; }

  /// Conservative refinement test: *this is a safe abstraction of `other`
  /// if every event trace admitted by `other` is also admitted by *this
  /// (checked via eta+ domination on a test-point set).
  bool contains(const EventModel& other) const;

  friend bool operator==(const EventModel&, const EventModel&) = default;
  friend std::ostream& operator<<(std::ostream& os, const EventModel& em);

  std::string to_string() const;

 private:
  EventModel(Duration period, Duration jitter, Duration dmin);

  Duration period_;
  Duration jitter_;
  Duration dmin_;
};

}  // namespace symcan

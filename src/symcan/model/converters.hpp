#pragma once

// Event model interfaces and adaptation (Richter & Ernst, "Event Model
// Interfaces for Heterogeneous System Analysis", DATE 2002 — the paper's
// reference [11], and chapter 4 of Richter's thesis).
//
// Different analysis domains speak different activation-model dialects
// (strictly periodic, sporadic, periodic-with-jitter/burst). EMIFs convert
// between them *losslessly where possible and conservatively otherwise*:
// the converted model must contain every event trace of the original
// (EventModel::contains), and the adaptation error quantifies how much
// pessimism the conversion added.

#include "symcan/model/event_model.hpp"

namespace symcan {

/// Abstract `em` into the plain sporadic class (minimum inter-arrival
/// only). Lossless for sporadic inputs; for jittery/bursty inputs the
/// result keeps only delta_min(2) — maximally conservative for long
/// windows but exactly preserves the short-window density.
EventModel to_sporadic(const EventModel& em);

/// Abstract `em` into the periodic-with-jitter class (drop the burst
/// limitation). Lossless when d_min carries no information; otherwise the
/// result admits denser bursts than the input.
EventModel to_periodic_jitter(const EventModel& em);

/// The tightest representable model containing every trace of both
/// inputs (the join in the (P, J, d_min) lattice, computed on the eta+
/// breakpoints). Used when two differently-specified streams merge into
/// one queue or when a supplier's data sheet must cover several operating
/// modes.
EventModel abstraction_union(const EventModel& a, const EventModel& b);

/// Adaptation error of abstracting `tight` by `loose`: the largest
/// relative over-count  max over windows w of
/// (eta+_loose(w) - eta+_tight(w)) / max(1, eta+_tight(w)), sampled at
/// the step points of both models over `horizon`. Zero means the
/// abstraction is exact on the sampled range.
double adaptation_error(const EventModel& tight, const EventModel& loose,
                        Duration horizon = Duration::s(1));

}  // namespace symcan

#include "symcan/model/task.hpp"

namespace symcan {

const char* to_string(SchedClass c) {
  switch (c) {
    case SchedClass::kInterrupt:
      return "interrupt";
    case SchedClass::kPreemptiveTask:
      return "preemptive";
    case SchedClass::kCooperativeTask:
      return "cooperative";
  }
  return "?";
}

}  // namespace symcan

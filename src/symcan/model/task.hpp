#pragma once

// Schedulable ECU task model (OSEK-flavoured, see paper Section 5.2:
// "TimeTable activation of messages and tasks, ... operating system (OSEK)
// overhead, complex priority schemes with cooperative and preemptive tasks
// as well as hardware interrupts").

#include <cstdint>
#include <string>

#include "symcan/model/event_model.hpp"
#include "symcan/util/time.hpp"

namespace symcan {

/// How a task competes for its ECU.
enum class SchedClass : std::uint8_t {
  kInterrupt,        ///< Hardware ISR: preempts every task, runs above all priorities.
  kPreemptiveTask,   ///< OSEK preemptive task: fixed-priority, fully preemptive.
  kCooperativeTask,  ///< OSEK cooperative task: preemptible only at segment boundaries.
};

const char* to_string(SchedClass c);

/// A task bound to one ECU. Value type used by the ECU response-time
/// analysis and the compositional engine.
struct Task {
  std::string name;
  SchedClass sched = SchedClass::kPreemptiveTask;

  /// Smaller number = higher priority, matching CAN-ID convention.
  /// Interrupts are ordered among themselves by the same field and beat
  /// every non-interrupt task regardless of its value.
  int priority = 0;

  Duration bcet = Duration::zero();  ///< Best-case execution time.
  Duration wcet = Duration::zero();  ///< Worst-case execution time.

  /// Longest non-preemptible segment. Cooperative tasks are preemptible
  /// only between segments, so this bounds the blocking they inflict on
  /// higher-priority cooperative tasks. For preemptive tasks and ISRs it
  /// is ignored. Zero means "single segment" (the whole WCET).
  Duration max_segment = Duration::zero();

  /// Per-activation OS overhead (OSEK context switch / schedule call),
  /// charged like execution time.
  Duration os_overhead = Duration::zero();

  /// Activation model. Tasks activated by message arrival get this
  /// overwritten by the compositional engine during propagation.
  EventModel activation = EventModel::periodic(Duration::ms(10));

  /// Relative deadline; infinite() = unconstrained.
  Duration deadline = Duration::infinite();

  /// Effective non-preemptible chunk used in blocking computations.
  Duration effective_segment() const {
    return max_segment > Duration::zero() ? min(max_segment, wcet) : wcet;
  }
};

}  // namespace symcan

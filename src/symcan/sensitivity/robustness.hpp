#pragma once

// Robustness classification and tolerable-jitter search (paper Section
// 4.1, following Racu, Jersak & Ernst, "Applying sensitivity analysis in
// real-time distributed systems", RTAS 2005).
//
// "A message whose response time increases fast with increasing jitter is
// considered sensitive, messages with relatively constant response times
// are considered robust against jitters."

#include <string>
#include <vector>

#include "symcan/analysis/can_rta.hpp"
#include "symcan/can/kmatrix.hpp"
#include "symcan/sensitivity/sweep.hpp"

namespace symcan {

/// The four visual classes of Figure 4.
enum class Robustness : std::uint8_t {
  kRobust,         ///< Response essentially flat over the swept jitter range.
  kMedium,         ///< Noticeable but bounded growth.
  kSensitive,      ///< Fast growth; candidate for supplier jitter constraints.
  kVerySensitive,  ///< Steep growth or divergence within the sweep.
};

const char* to_string(Robustness r);

/// Classification thresholds on relative response-time growth
/// (wcrt_at_max / wcrt_at_zero - 1) across the sweep.
struct RobustnessThresholds {
  double robust_below = 0.15;
  double medium_below = 0.75;
  double sensitive_below = 2.50;
};

/// Per-message sensitivity summary.
struct MessageSensitivity {
  std::string name;
  CanId id = 0;
  Duration wcrt_at_zero = Duration::zero();
  Duration wcrt_at_max = Duration::zero();
  double relative_growth = 0;  ///< wcrt_at_max / wcrt_at_zero - 1 (inf on divergence).
  Robustness cls = Robustness::kRobust;
  /// Largest uniform jitter fraction at which this message still meets
  /// its deadline (binary search; > sweep max reported as the cap used).
  double max_tolerable_fraction = 0;
};

struct SensitivityReport {
  std::vector<MessageSensitivity> messages;  ///< KMatrix order.
  std::size_t count(Robustness r) const;
};

/// Classify every message from a jitter sweep and search each message's
/// tolerable-jitter boundary under the same analysis configuration.
SensitivityReport analyze_sensitivity(const KMatrix& km, const JitterSweepConfig& cfg,
                                      RobustnessThresholds th = {});

/// Binary-search the largest uniform jitter fraction (applied to all
/// messages, unknown-jitter only unless override_known) at which
/// `message` still meets its deadline. Searches [0, cap]; returns cap if
/// schedulable everywhere, 0 if unschedulable at zero jitter.
///
/// When `cache` is non-null, single-message probes are memoized through
/// it — the searches for different messages revisit the same jitter
/// fractions, so a shared cache collapses most probes to lookups.
double max_tolerable_jitter_fraction(const KMatrix& km, const CanRtaConfig& rta,
                                     const std::string& message, double cap = 1.0,
                                     double tolerance = 0.005, bool override_known = true,
                                     IncrementalRta* cache = nullptr);

}  // namespace symcan

#include "symcan/sensitivity/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "symcan/analysis/columnar.hpp"
#include "symcan/obs/obs.hpp"
#include "symcan/util/parallel.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {

std::vector<Duration> JitterSweepResult::response_curve(const std::string& message) const {
  std::vector<Duration> curve;
  curve.reserve(results.size());
  for (const auto& r : results) {
    bool found = false;
    for (const auto& m : r.messages) {
      if (m.name == message) {
        curve.push_back(m.wcrt);
        found = true;
        break;
      }
    }
    if (!found) throw std::invalid_argument("response_curve: unknown message " + message);
  }
  return curve;
}

JitterSweepResult sweep_jitter(const KMatrix& km, const JitterSweepConfig& cfg) {
  if (cfg.step <= 0 || cfg.to < cfg.from)
    throw std::invalid_argument("sweep_jitter: bad sweep bounds");
  if (cfg.tile < 0) throw std::invalid_argument("sweep_jitter: tile must be >= 0");
  JitterSweepResult out;
  // Half-step epsilon keeps the endpoint inclusive despite FP accumulation.
  for (double f = cfg.from; f <= cfg.to + cfg.step / 2; f += cfg.step) out.fractions.push_back(f);
  ParallelExecutor exec{cfg.parallelism};
  IncrementalRta rta{cfg.cache};
  {
    SYMCAN_OBS_SPAN("sweep.jitter");
    out.results = exec.parallel_map_tiled(
        out.fractions, static_cast<std::size_t>(cfg.tile), [&](double f) {
          KMatrix variant = km;
          assume_jitter_fraction(variant, f, cfg.override_known);
          return rta.analyze(variant, cfg.rta);
        });
  }
  if (obs::enabled()) {
    obs::count("sweep.jitter.points", static_cast<std::int64_t>(out.fractions.size()));
    auto& series = obs::metrics().series("sweep.jitter");
    for (std::size_t i = 0; i < out.results.size(); ++i)
      series.append({{"fraction", out.fractions[i]},
                     {"miss_fraction", out.results[i].miss_fraction()},
                     {"utilization", out.results[i].utilization}});
  }
  return out;
}

ErrorSweepResult sweep_errors(const KMatrix& km, const ErrorSweepConfig& cfg) {
  if (cfg.points < 2) throw std::invalid_argument("sweep_errors: need >= 2 points");
  if (cfg.from <= cfg.to) throw std::invalid_argument("sweep_errors: from must exceed to");
  if (cfg.tile < 0) throw std::invalid_argument("sweep_errors: tile must be >= 0");
  ErrorSweepResult out;
  const double lo = std::log(static_cast<double>(cfg.to.count_ns()));
  const double hi = std::log(static_cast<double>(cfg.from.count_ns()));
  for (int i = 0; i < cfg.points; ++i) {
    const double t = hi - (hi - lo) * static_cast<double>(i) / (cfg.points - 1);
    out.min_inter_error.push_back(Duration::ns(static_cast<std::int64_t>(std::exp(t))));
  }
  ParallelExecutor exec{cfg.parallelism};
  IncrementalRta rta{cfg.cache};
  {
    SYMCAN_OBS_SPAN("sweep.errors");
    out.results = exec.parallel_map_tiled(
        out.min_inter_error, static_cast<std::size_t>(cfg.tile), [&](Duration gap) {
          CanRtaConfig point = cfg.rta;
          point.errors = std::make_shared<SporadicErrors>(gap);
          return rta.analyze(km, point);
        });
  }
  if (obs::enabled()) {
    obs::count("sweep.errors.points", static_cast<std::int64_t>(out.min_inter_error.size()));
    auto& series = obs::metrics().series("sweep.errors");
    for (std::size_t i = 0; i < out.results.size(); ++i)
      series.append({{"min_inter_error_ms", out.min_inter_error[i].as_ms()},
                     {"miss_fraction", out.results[i].miss_fraction()},
                     {"utilization", out.results[i].utilization}});
  }
  return out;
}

std::int64_t FaultSweepResult::worst_miss_ppm(std::size_t i) const {
  std::int64_t worst = 0;
  for (const auto& m : results.at(i).messages) worst = std::max(worst, m.miss_ppm());
  return worst;
}

FaultSweepResult sweep_fault_probability(const KMatrix& km, const FaultSweepConfig& cfg) {
  if (cfg.points < 2) throw std::invalid_argument("sweep_fault_probability: need >= 2 points");
  if (cfg.from_ppm <= cfg.to_ppm)
    throw std::invalid_argument("sweep_fault_probability: from_ppm must exceed to_ppm");
  if (cfg.to_ppm < 1 || cfg.from_ppm > 1'000'000)
    throw std::invalid_argument("sweep_fault_probability: ppm bounds must lie in [1, 1000000]");
  if (cfg.tile < 0) throw std::invalid_argument("sweep_fault_probability: tile must be >= 0");
  FaultSweepResult out;
  const double lo = std::log(static_cast<double>(cfg.to_ppm));
  const double hi = std::log(static_cast<double>(cfg.from_ppm));
  for (int i = 0; i < cfg.points; ++i) {
    const double t = hi - (hi - lo) * static_cast<double>(i) / (cfg.points - 1);
    out.fault_ppm.push_back(static_cast<std::int64_t>(std::exp(t)));
  }
  ParallelExecutor exec{cfg.parallelism};
  IncrementalRta rta{cfg.cache};
  {
    SYMCAN_OBS_SPAN("sweep.prob");
    out.results = exec.parallel_map_tiled(
        out.fault_ppm, static_cast<std::size_t>(cfg.tile), [&](std::int64_t ppm) {
          analysis::ProbRtaConfig point;
          point.rta = cfg.rta;
          point.fault_ppm = ppm;
          point.stuff_ppm = cfg.stuff_ppm;
          point.jitter_ppm = cfg.jitter_ppm;
          point.max_rungs = cfg.max_rungs;
          // The sweep fans out over points; each point stays serial.
          point.parallelism = 1;
          return rta.analyze_prob(km, point);
        });
  }
  if (obs::enabled()) {
    obs::count("sweep.prob.points", static_cast<std::int64_t>(out.fault_ppm.size()));
    auto& series = obs::metrics().series("sweep.prob");
    for (std::size_t i = 0; i < out.results.size(); ++i)
      series.append({{"fault_ppm", static_cast<double>(out.fault_ppm[i])},
                     {"at_risk_fraction", out.at_risk_fraction(i)},
                     {"worst_miss_ppm", static_cast<double>(out.worst_miss_ppm(i))}});
  }
  return out;
}

GridSweepResult sweep_grid(const KMatrix& km, const GridSweepConfig& cfg) {
  if (cfg.step <= 0 || cfg.to < cfg.from)
    throw std::invalid_argument("sweep_grid: bad jitter bounds");
  if (cfg.error_points < 2) throw std::invalid_argument("sweep_grid: need >= 2 error points");
  if (cfg.error_from <= cfg.error_to)
    throw std::invalid_argument("sweep_grid: error_from must exceed error_to");
  if (cfg.tile < 0) throw std::invalid_argument("sweep_grid: tile must be >= 0");
  if (!cfg.rta.errors) throw std::invalid_argument("sweep_grid: error model must not be null");
  km.validate();

  GridSweepResult out;
  for (double f = cfg.from; f <= cfg.to + cfg.step / 2; f += cfg.step) out.fractions.push_back(f);
  const double lo = std::log(static_cast<double>(cfg.error_to.count_ns()));
  const double hi = std::log(static_cast<double>(cfg.error_from.count_ns()));
  for (int i = 0; i < cfg.error_points; ++i) {
    const double t = hi - (hi - lo) * static_cast<double>(i) / (cfg.error_points - 1);
    out.min_inter_error.push_back(Duration::ns(static_cast<std::int64_t>(std::exp(t))));
  }
  out.messages = km.size();
  const std::size_t cols = out.min_inter_error.size();
  const std::size_t n = km.size();

  struct Cell {
    double miss_fraction;
    Duration worst_wcrt;
  };
  ParallelExecutor exec{cfg.parallelism};
  std::vector<std::vector<Cell>> rows;
  {
    SYMCAN_OBS_SPAN("sweep.grid");
    rows = exec.parallel_map_tiled(
        out.fractions, static_cast<std::size_t>(cfg.tile), [&](double f) {
          // One pack per row: the jitter edit changes the columns, the
          // error model does not (it is per-solve state), so every
          // column of this row solves from the same arena.
          static thread_local analysis::ColumnarBus bus;
          KMatrix variant = km;
          assume_jitter_fraction(variant, f, cfg.override_known);
          analysis::pack_bus(variant, cfg.rta, bus);
          std::vector<Cell> row;
          row.reserve(cols);
          for (const Duration gap : out.min_inter_error) {
            const SporadicErrors errors{gap};
            std::size_t misses = 0;
            Duration worst = Duration::zero();
            for (std::size_t i = 0; i < n; ++i) {
              const MessageResult r = analysis::solve_columnar(bus, i, errors);
              if (!r.schedulable) ++misses;
              worst = max(worst, r.wcrt);
            }
            row.push_back(Cell{
                n > 0 ? static_cast<double>(misses) / static_cast<double>(n) : 0.0, worst});
          }
          return row;
        });
  }
  out.miss_fraction.reserve(out.cells());
  out.worst_wcrt.reserve(out.cells());
  for (const auto& row : rows) {
    for (const Cell& c : row) {
      out.miss_fraction.push_back(c.miss_fraction);
      out.worst_wcrt.push_back(c.worst_wcrt);
    }
  }
  if (obs::enabled()) {
    obs::count("sweep.grid.cells", static_cast<std::int64_t>(out.cells()));
    obs::count("sweep.grid.points", static_cast<std::int64_t>(out.points()));
  }
  return out;
}

}  // namespace symcan

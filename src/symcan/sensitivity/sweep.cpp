#include "symcan/sensitivity/sweep.hpp"

#include <cmath>
#include <stdexcept>

#include "symcan/obs/obs.hpp"
#include "symcan/util/parallel.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {

std::vector<Duration> JitterSweepResult::response_curve(const std::string& message) const {
  std::vector<Duration> curve;
  curve.reserve(results.size());
  for (const auto& r : results) {
    bool found = false;
    for (const auto& m : r.messages) {
      if (m.name == message) {
        curve.push_back(m.wcrt);
        found = true;
        break;
      }
    }
    if (!found) throw std::invalid_argument("response_curve: unknown message " + message);
  }
  return curve;
}

JitterSweepResult sweep_jitter(const KMatrix& km, const JitterSweepConfig& cfg) {
  if (cfg.step <= 0 || cfg.to < cfg.from)
    throw std::invalid_argument("sweep_jitter: bad sweep bounds");
  JitterSweepResult out;
  // Half-step epsilon keeps the endpoint inclusive despite FP accumulation.
  for (double f = cfg.from; f <= cfg.to + cfg.step / 2; f += cfg.step) out.fractions.push_back(f);
  ParallelExecutor exec{cfg.parallelism};
  IncrementalRta rta{cfg.cache};
  {
    SYMCAN_OBS_SPAN("sweep.jitter");
    out.results = exec.parallel_map(out.fractions, [&](double f) {
      KMatrix variant = km;
      assume_jitter_fraction(variant, f, cfg.override_known);
      return rta.analyze(variant, cfg.rta);
    });
  }
  if (obs::enabled()) {
    obs::count("sweep.jitter.points", static_cast<std::int64_t>(out.fractions.size()));
    auto& series = obs::metrics().series("sweep.jitter");
    for (std::size_t i = 0; i < out.results.size(); ++i)
      series.append({{"fraction", out.fractions[i]},
                     {"miss_fraction", out.results[i].miss_fraction()},
                     {"utilization", out.results[i].utilization}});
  }
  return out;
}

ErrorSweepResult sweep_errors(const KMatrix& km, const ErrorSweepConfig& cfg) {
  if (cfg.points < 2) throw std::invalid_argument("sweep_errors: need >= 2 points");
  if (cfg.from <= cfg.to) throw std::invalid_argument("sweep_errors: from must exceed to");
  ErrorSweepResult out;
  const double lo = std::log(static_cast<double>(cfg.to.count_ns()));
  const double hi = std::log(static_cast<double>(cfg.from.count_ns()));
  for (int i = 0; i < cfg.points; ++i) {
    const double t = hi - (hi - lo) * static_cast<double>(i) / (cfg.points - 1);
    out.min_inter_error.push_back(Duration::ns(static_cast<std::int64_t>(std::exp(t))));
  }
  ParallelExecutor exec{cfg.parallelism};
  IncrementalRta rta{cfg.cache};
  {
    SYMCAN_OBS_SPAN("sweep.errors");
    out.results = exec.parallel_map(out.min_inter_error, [&](Duration gap) {
      CanRtaConfig point = cfg.rta;
      point.errors = std::make_shared<SporadicErrors>(gap);
      return rta.analyze(km, point);
    });
  }
  if (obs::enabled()) {
    obs::count("sweep.errors.points", static_cast<std::int64_t>(out.min_inter_error.size()));
    auto& series = obs::metrics().series("sweep.errors");
    for (std::size_t i = 0; i < out.results.size(); ++i)
      series.append({{"min_inter_error_ms", out.min_inter_error[i].as_ms()},
                     {"miss_fraction", out.results[i].miss_fraction()},
                     {"utilization", out.results[i].utilization}});
  }
  return out;
}

}  // namespace symcan

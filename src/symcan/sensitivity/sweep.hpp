#pragma once

// What-if sweeps over modelling assumptions (paper Section 4: "we
// conducted a set of experiments, each based on different assumptions on
// the missing information", and Section 4.1/4.2: response-time and
// message-loss behaviour over jitter and error distributions).

#include <string>
#include <vector>

#include "symcan/analysis/can_rta.hpp"
#include "symcan/analysis/incremental_rta.hpp"
#include "symcan/analysis/prob_rta.hpp"
#include "symcan/can/kmatrix.hpp"

namespace symcan {

/// Sweep of the assumed jitter of unknown-jitter messages, expressed as a
/// fraction of each message's own period (the x-axis of Figures 4 and 5).
struct JitterSweepConfig {
  double from = 0.0;
  double to = 0.60;
  double step = 0.05;
  /// Also override messages whose jitter the OEM knows (Figure 4/5 sweep
  /// the whole matrix uniformly, so default true).
  bool override_known = true;
  CanRtaConfig rta;
  /// Worker threads for evaluating sweep points (0 = hardware
  /// concurrency, 1 = serial). Results are bit-identical either way.
  int parallelism = 1;
  /// Sweep points per work tile handed to a worker (0 = auto-size from
  /// point count and thread count). Affects scheduling only — results
  /// are byte-identical for every tile size (the determinism suite pins
  /// this). Must be >= 0.
  int tile = 0;
  /// RTA memoization across sweep points: messages the swept jitter does
  /// not reach keep their interference context and are served from cache.
  RtaCacheConfig cache;
};

/// Analysis results at each swept point.
struct JitterSweepResult {
  std::vector<double> fractions;
  std::vector<BusResult> results;  ///< One BusResult per fraction.

  /// Fraction of messages missing their deadline at sweep point i
  /// (Figure 5 y-axis).
  double miss_fraction(std::size_t i) const { return results.at(i).miss_fraction(); }

  /// Worst-case response-time curve of one message across the sweep
  /// (Figure 4: one line per message). infinite() where diverged.
  std::vector<Duration> response_curve(const std::string& message) const;
};

JitterSweepResult sweep_jitter(const KMatrix& km, const JitterSweepConfig& cfg);

/// Sweep of the bus fault rate: min inter-error time from `from` down to
/// `to` in `points` logarithmic steps, with sporadic errors ("similar
/// results have been obtained for error-sensitivity").
struct ErrorSweepConfig {
  Duration from = Duration::s(1);
  Duration to = Duration::ms(1);
  int points = 13;
  CanRtaConfig rta;  ///< Its error model is replaced at every point.
  /// Worker threads for evaluating sweep points (0 = hardware
  /// concurrency, 1 = serial). Results are bit-identical either way.
  int parallelism = 1;
  /// Sweep points per work tile (0 = auto; see JitterSweepConfig::tile).
  int tile = 0;
  /// RTA memoization across sweep points (the error model is part of the
  /// cache key, so each point only reuses what it legitimately can).
  RtaCacheConfig cache;
};

struct ErrorSweepResult {
  std::vector<Duration> min_inter_error;
  std::vector<BusResult> results;
};

ErrorSweepResult sweep_errors(const KMatrix& km, const ErrorSweepConfig& cfg);

/// Sweep of the per-busy-period fault probability: miss probability vs
/// error rate. fault_ppm runs from `from_ppm` down to `to_ppm` in
/// `points` logarithmic steps; every point shares the deterministic rung
/// ladders (the per-fault-count conditional bounds), so after the first
/// point only the cheap binomial re-mix runs — the IncrementalRta ladder
/// cache keeps the whole sweep warm.
struct FaultSweepConfig {
  std::int64_t from_ppm = 1'000'000;
  std::int64_t to_ppm = 1;
  int points = 13;
  /// Fixed non-fault knobs shared by every point (see ProbRtaConfig).
  std::int64_t stuff_ppm = 1'000'000;
  std::int64_t jitter_ppm = 1'000'000;
  std::int64_t max_rungs = 96;
  CanRtaConfig rta;
  /// Worker threads for evaluating sweep points (0 = hardware
  /// concurrency, 1 = serial). Results are bit-identical either way.
  int parallelism = 1;
  /// Sweep points per work tile (0 = auto; see JitterSweepConfig::tile).
  int tile = 0;
  /// Ladder memoization across sweep points (the fault probability is
  /// mix-time state, so every point reuses every ladder).
  RtaCacheConfig cache;
};

struct FaultSweepResult {
  std::vector<std::int64_t> fault_ppm;
  std::vector<ProbBusResult> results;  ///< One ProbBusResult per point.

  /// Fraction of messages with nonzero miss probability at point i.
  double at_risk_fraction(std::size_t i) const {
    const ProbBusResult& r = results.at(i);
    return r.messages.empty() ? 0.0
                              : static_cast<double>(r.miss_count()) /
                                    static_cast<double>(r.messages.size());
  }
  /// Largest per-message miss probability (ppm) at point i.
  std::int64_t worst_miss_ppm(std::size_t i) const;
};

FaultSweepResult sweep_fault_probability(const KMatrix& km, const FaultSweepConfig& cfg);

/// Two-dimensional what-if grid: assumed jitter fraction (rows, linear
/// steps as in JitterSweepConfig) x bus fault rate (columns, logarithmic
/// min inter-error times as in ErrorSweepConfig). One cell = one full
/// bus analysis; a modest grid therefore reaches millions of per-message
/// solves, which is where the columnar core earns its keep: each row
/// packs its jitter variant once and re-solves every error column from
/// the same columns, so a cell costs solves only — no context rebuilds.
struct GridSweepConfig {
  double from = 0.0;
  double to = 0.60;
  double step = 0.05;
  bool override_known = true;
  Duration error_from = Duration::s(1);
  Duration error_to = Duration::ms(1);
  int error_points = 13;
  CanRtaConfig rta;  ///< Its error model is replaced at every column.
  /// Worker threads over rows (0 = hardware concurrency, 1 = serial).
  int parallelism = 1;
  /// Rows per work tile (0 = auto; scheduling only, results are
  /// byte-identical for every tile size). Must be >= 0.
  int tile = 0;
};

/// Per-cell aggregates in row-major order (row = jitter fraction index,
/// column = min inter-error index). Full BusResults are deliberately not
/// kept: a million-point grid would hold a million MessageResults.
struct GridSweepResult {
  std::vector<double> fractions;
  std::vector<Duration> min_inter_error;
  std::vector<double> miss_fraction;  ///< rows x cols, row-major.
  std::vector<Duration> worst_wcrt;   ///< rows x cols; infinite if any diverged.
  std::size_t messages = 0;           ///< Messages analyzed per cell.

  std::size_t rows() const { return fractions.size(); }
  std::size_t cols() const { return min_inter_error.size(); }
  std::size_t cells() const { return rows() * cols(); }
  /// Total per-message solves the grid performed.
  std::size_t points() const { return cells() * messages; }
  double miss_at(std::size_t row, std::size_t col) const {
    return miss_fraction.at(row * cols() + col);
  }
  Duration wcrt_at(std::size_t row, std::size_t col) const {
    return worst_wcrt.at(row * cols() + col);
  }
};

GridSweepResult sweep_grid(const KMatrix& km, const GridSweepConfig& cfg);

}  // namespace symcan

#pragma once

// What-if sweeps over modelling assumptions (paper Section 4: "we
// conducted a set of experiments, each based on different assumptions on
// the missing information", and Section 4.1/4.2: response-time and
// message-loss behaviour over jitter and error distributions).

#include <string>
#include <vector>

#include "symcan/analysis/can_rta.hpp"
#include "symcan/analysis/incremental_rta.hpp"
#include "symcan/can/kmatrix.hpp"

namespace symcan {

/// Sweep of the assumed jitter of unknown-jitter messages, expressed as a
/// fraction of each message's own period (the x-axis of Figures 4 and 5).
struct JitterSweepConfig {
  double from = 0.0;
  double to = 0.60;
  double step = 0.05;
  /// Also override messages whose jitter the OEM knows (Figure 4/5 sweep
  /// the whole matrix uniformly, so default true).
  bool override_known = true;
  CanRtaConfig rta;
  /// Worker threads for evaluating sweep points (0 = hardware
  /// concurrency, 1 = serial). Results are bit-identical either way.
  int parallelism = 1;
  /// RTA memoization across sweep points: messages the swept jitter does
  /// not reach keep their interference context and are served from cache.
  RtaCacheConfig cache;
};

/// Analysis results at each swept point.
struct JitterSweepResult {
  std::vector<double> fractions;
  std::vector<BusResult> results;  ///< One BusResult per fraction.

  /// Fraction of messages missing their deadline at sweep point i
  /// (Figure 5 y-axis).
  double miss_fraction(std::size_t i) const { return results.at(i).miss_fraction(); }

  /// Worst-case response-time curve of one message across the sweep
  /// (Figure 4: one line per message). infinite() where diverged.
  std::vector<Duration> response_curve(const std::string& message) const;
};

JitterSweepResult sweep_jitter(const KMatrix& km, const JitterSweepConfig& cfg);

/// Sweep of the bus fault rate: min inter-error time from `from` down to
/// `to` in `points` logarithmic steps, with sporadic errors ("similar
/// results have been obtained for error-sensitivity").
struct ErrorSweepConfig {
  Duration from = Duration::s(1);
  Duration to = Duration::ms(1);
  int points = 13;
  CanRtaConfig rta;  ///< Its error model is replaced at every point.
  /// Worker threads for evaluating sweep points (0 = hardware
  /// concurrency, 1 = serial). Results are bit-identical either way.
  int parallelism = 1;
  /// RTA memoization across sweep points (the error model is part of the
  /// cache key, so each point only reuses what it legitimately can).
  RtaCacheConfig cache;
};

struct ErrorSweepResult {
  std::vector<Duration> min_inter_error;
  std::vector<BusResult> results;
};

ErrorSweepResult sweep_errors(const KMatrix& km, const ErrorSweepConfig& cfg);

}  // namespace symcan

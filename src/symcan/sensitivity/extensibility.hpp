#pragma once

// Extensibility analysis — the integration question the paper opens with
// (Section 2): "Can more ECUs (and how many) be connected without
// overloading the bus?", and closes with (Section 6): OEMs can
// "dimension optimized and robust buses with known extensibility".
//
// Given a profile of what future traffic looks like, the analysis adds
// hypothetical messages one at a time and re-runs the full worst-case
// verdict until either an existing message or an added one would miss
// its deadline. The result is a guaranteed headroom figure — not a load
// percentage, but "this many more messages/ECUs of this shape, proven".

#include <cstddef>
#include <string>
#include <vector>

#include "symcan/analysis/can_rta.hpp"
#include "symcan/analysis/incremental_rta.hpp"
#include "symcan/can/kmatrix.hpp"

namespace symcan {

/// Shape of anticipated future traffic.
struct ExtensionProfile {
  int payload_bytes = 8;
  Duration period = Duration::ms(20);
  /// Jitter assumption for the new messages, as a fraction of period.
  double jitter_fraction = 0.25;
  /// CAN-ID region where new messages are slotted. Real matrices reserve
  /// ID ranges for extensions; appending at the top (low priority) is the
  /// non-disruptive default, inserting low IDs steals priority from the
  /// existing traffic.
  CanId first_id = 0x500;
  CanId id_stride = 1;
  /// Sender node for the hypothetical traffic. Created if absent.
  std::string sender = "EXT";
};

/// One step of the extension search.
struct ExtensionStep {
  std::size_t added = 0;        ///< Messages present after this step.
  double utilization = 0;       ///< Worst-case-stuffing utilization.
  bool schedulable = false;     ///< Whole matrix still schedulable.
  std::string first_miss;       ///< Name of the first missing message, if any.
};

struct ExtensibilityReport {
  /// Largest number of additional messages with everything schedulable.
  std::size_t max_additional_messages = 0;
  /// Utilization at that point.
  double utilization_at_max = 0;
  /// The verdict trace (one entry per attempted count, ending at the
  /// first failure or the cap).
  std::vector<ExtensionStep> steps;
  /// True when the cap was reached without failure (headroom >= cap).
  bool capped = false;
};

/// How many additional `profile` messages fit. Exact under the
/// monotonicity of the analysis (adding a message never helps anyone).
/// With parallelism != 1 the per-count verdicts are evaluated in batches
/// of the worker count; the report is bit-identical to the serial one
/// (steps still stop at the first failure). The search re-analyzes the
/// whole matrix at every count, but existing messages at higher priority
/// than the extension region keep their interference context, so their
/// verdicts come from the shared RTA memo (`cache`).
ExtensibilityReport max_additional_messages(const KMatrix& km, const CanRtaConfig& rta,
                                            const ExtensionProfile& profile,
                                            std::size_t cap = 128, int parallelism = 1,
                                            RtaCacheConfig cache = {});

/// How many additional ECUs fit, each sending `messages_per_ecu` profile
/// messages (ECUs named <sender>0, <sender>1, ...).
ExtensibilityReport max_additional_ecus(const KMatrix& km, const CanRtaConfig& rta,
                                        const ExtensionProfile& profile,
                                        std::size_t messages_per_ecu, std::size_t cap = 32,
                                        int parallelism = 1, RtaCacheConfig cache = {});

}  // namespace symcan

#include "symcan/sensitivity/robustness.hpp"

#include <limits>
#include <stdexcept>

#include "symcan/util/parallel.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {

const char* to_string(Robustness r) {
  switch (r) {
    case Robustness::kRobust:
      return "robust";
    case Robustness::kMedium:
      return "medium";
    case Robustness::kSensitive:
      return "sensitive";
    case Robustness::kVerySensitive:
      return "very-sensitive";
  }
  return "?";
}

std::size_t SensitivityReport::count(Robustness r) const {
  std::size_t n = 0;
  for (const auto& m : messages)
    if (m.cls == r) ++n;
  return n;
}

namespace {

bool message_schedulable_at(const KMatrix& km, const CanRtaConfig& rta, std::size_t index,
                            double fraction, bool override_known, IncrementalRta* cache) {
  KMatrix variant = km;
  assume_jitter_fraction(variant, fraction, override_known);
  if (cache) return cache->analyze_message(variant, rta, index).schedulable;
  return CanRta{variant, rta}.analyze_message(index).schedulable;
}

}  // namespace

SensitivityReport analyze_sensitivity(const KMatrix& km, const JitterSweepConfig& cfg,
                                      RobustnessThresholds th) {
  const JitterSweepResult sweep = sweep_jitter(km, cfg);
  if (sweep.results.empty()) throw std::invalid_argument("analyze_sensitivity: empty sweep");
  const BusResult& first = sweep.results.front();
  const BusResult& last = sweep.results.back();

  SensitivityReport report;
  // Each message's classification and tolerable-jitter search is
  // independent of every other message's, so fan them out. The searches
  // probe overlapping jitter fractions, so they share one RTA memo.
  ParallelExecutor exec{cfg.parallelism};
  IncrementalRta cache{cfg.cache};
  report.messages = exec.parallel_map_indexed(km.size(), [&](std::size_t i) {
    MessageSensitivity s;
    s.name = km.messages()[i].name;
    s.id = km.messages()[i].id;
    s.wcrt_at_zero = first.messages[i].wcrt;
    s.wcrt_at_max = last.messages[i].wcrt;
    if (s.wcrt_at_max.is_infinite() || s.wcrt_at_zero <= Duration::zero()) {
      s.relative_growth = std::numeric_limits<double>::infinity();
      s.cls = Robustness::kVerySensitive;
    } else {
      s.relative_growth = static_cast<double>(s.wcrt_at_max.count_ns()) /
                              static_cast<double>(s.wcrt_at_zero.count_ns()) -
                          1.0;
      if (s.relative_growth < th.robust_below)
        s.cls = Robustness::kRobust;
      else if (s.relative_growth < th.medium_below)
        s.cls = Robustness::kMedium;
      else if (s.relative_growth < th.sensitive_below)
        s.cls = Robustness::kSensitive;
      else
        s.cls = Robustness::kVerySensitive;
    }
    s.max_tolerable_fraction =
        max_tolerable_jitter_fraction(km, cfg.rta, s.name, 1.0, 0.005, cfg.override_known, &cache);
    return s;
  });
  return report;
}

double max_tolerable_jitter_fraction(const KMatrix& km, const CanRtaConfig& rta,
                                     const std::string& message, double cap, double tolerance,
                                     bool override_known, IncrementalRta* cache) {
  std::size_t index = km.size();
  for (std::size_t i = 0; i < km.size(); ++i)
    if (km.messages()[i].name == message) index = i;
  if (index == km.size())
    throw std::invalid_argument("max_tolerable_jitter_fraction: unknown message " + message);

  if (!message_schedulable_at(km, rta, index, 0.0, override_known, cache)) return 0.0;
  if (message_schedulable_at(km, rta, index, cap, override_known, cache)) return cap;

  double lo = 0.0, hi = cap;  // schedulable at lo, not at hi
  while (hi - lo > tolerance) {
    const double mid = (lo + hi) / 2;
    if (message_schedulable_at(km, rta, index, mid, override_known, cache))
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

}  // namespace symcan

#include "symcan/sensitivity/extensibility.hpp"

#include <algorithm>
#include <stdexcept>

#include "symcan/obs/obs.hpp"
#include "symcan/util/parallel.hpp"

namespace symcan {

namespace {

void ensure_node(KMatrix& km, const std::string& name) {
  if (km.find_node(name) != nullptr) return;
  EcuNode n;
  n.name = name;
  km.add_node(std::move(n));
}

CanMessage extension_message(const ExtensionProfile& p, std::size_t index,
                             const std::string& sender, const std::string& receiver) {
  CanMessage m;
  m.name = "ext_" + sender + "_" + std::to_string(index);
  m.id = p.first_id + static_cast<CanId>(index) * p.id_stride;
  m.payload_bytes = p.payload_bytes;
  m.period = p.period;
  m.jitter = Duration::ns(static_cast<std::int64_t>(
      p.jitter_fraction * static_cast<double>(p.period.count_ns())));
  m.sender = sender;
  m.receivers = {receiver};
  return m;
}

ExtensionStep verdict(const KMatrix& km, const CanRtaConfig& rta, IncrementalRta& cache,
                      std::size_t added) {
  ExtensionStep step;
  step.added = added;
  step.utilization = km.utilization(true);
  const BusResult res = cache.analyze(km, rta);
  step.schedulable = res.all_schedulable();
  for (const auto& m : res.messages)
    if (!m.schedulable) {
      step.first_miss = m.name;
      break;
    }
  return step;
}

void check_profile(const ExtensionProfile& p) {
  if (p.period <= Duration::zero())
    throw std::invalid_argument("ExtensionProfile: period must be > 0");
  if (p.jitter_fraction < 0)
    throw std::invalid_argument("ExtensionProfile: negative jitter fraction");
  if (p.payload_bytes < 0 || p.payload_bytes > 8)
    throw std::invalid_argument("ExtensionProfile: payload must be 0..8");
  if (p.sender.empty()) throw std::invalid_argument("ExtensionProfile: empty sender");
  if (p.id_stride == 0) throw std::invalid_argument("ExtensionProfile: zero id stride");
}

/// Shared search driver: `grow` mutates the working matrix for candidate
/// count n (1-based) and the verdicts for a batch of consecutive counts
/// are evaluated in parallel on snapshots. The serial early-exit contract
/// is preserved exactly — steps end at the first failure and verdicts
/// beyond it are discarded — so the report does not depend on the worker
/// count.
template <typename Grow>
ExtensibilityReport extension_search(const KMatrix& km, const CanRtaConfig& rta, std::size_t cap,
                                     int parallelism, RtaCacheConfig cache_cfg, Grow&& grow) {
  SYMCAN_OBS_SPAN("extensibility.search");
  ExtensibilityReport report;
  KMatrix work = km;
  ParallelExecutor exec{parallelism};
  IncrementalRta cache{cache_cfg};
  const std::size_t batch_size = static_cast<std::size_t>(std::max(1, exec.threads()));
  std::size_t n = 0;
  while (n < cap) {
    const std::size_t batch = std::min(batch_size, cap - n);
    std::vector<KMatrix> variants;
    variants.reserve(batch);
    for (std::size_t b = 0; b < batch; ++b) {
      grow(work, n + b + 1);
      variants.push_back(work);
    }
    const std::vector<ExtensionStep> steps = exec.parallel_map_indexed(
        batch, [&](std::size_t b) { return verdict(variants[b], rta, cache, n + b + 1); });
    obs::count("extensibility.verdicts", static_cast<std::int64_t>(steps.size()));
    for (const ExtensionStep& step : steps) {
      report.steps.push_back(step);
      if (!step.schedulable) return report;
      report.max_additional_messages = step.added;
      report.utilization_at_max = step.utilization;
    }
    n += batch;
  }
  report.capped = true;
  return report;
}

}  // namespace

ExtensibilityReport max_additional_messages(const KMatrix& km, const CanRtaConfig& rta,
                                            const ExtensionProfile& profile, std::size_t cap,
                                            int parallelism, RtaCacheConfig cache) {
  check_profile(profile);
  km.validate();
  const std::string receiver = km.nodes().empty() ? profile.sender : km.nodes().front().name;

  KMatrix base = km;
  ensure_node(base, profile.sender);
  return extension_search(base, rta, cap, parallelism, cache, [&](KMatrix& work, std::size_t n) {
    work.add_message(extension_message(profile, n - 1, profile.sender, receiver));
  });
}

ExtensibilityReport max_additional_ecus(const KMatrix& km, const CanRtaConfig& rta,
                                        const ExtensionProfile& profile,
                                        std::size_t messages_per_ecu, std::size_t cap,
                                        int parallelism, RtaCacheConfig cache) {
  check_profile(profile);
  if (messages_per_ecu == 0)
    throw std::invalid_argument("max_additional_ecus: messages_per_ecu must be >= 1");
  km.validate();
  const std::string receiver = km.nodes().empty() ? profile.sender : km.nodes().front().name;

  return extension_search(km, rta, cap, parallelism, cache, [&](KMatrix& work, std::size_t e) {
    const std::string node = profile.sender + std::to_string(e - 1);
    ensure_node(work, node);
    for (std::size_t j = 0; j < messages_per_ecu; ++j)
      work.add_message(extension_message(profile, (e - 1) * messages_per_ecu + j, node, receiver));
  });
}

}  // namespace symcan

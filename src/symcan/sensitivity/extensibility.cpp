#include "symcan/sensitivity/extensibility.hpp"

#include <stdexcept>

namespace symcan {

namespace {

void ensure_node(KMatrix& km, const std::string& name) {
  if (km.find_node(name) != nullptr) return;
  EcuNode n;
  n.name = name;
  km.add_node(std::move(n));
}

CanMessage extension_message(const ExtensionProfile& p, std::size_t index,
                             const std::string& sender, const std::string& receiver) {
  CanMessage m;
  m.name = "ext_" + sender + "_" + std::to_string(index);
  m.id = p.first_id + static_cast<CanId>(index) * p.id_stride;
  m.payload_bytes = p.payload_bytes;
  m.period = p.period;
  m.jitter = Duration::ns(static_cast<std::int64_t>(
      p.jitter_fraction * static_cast<double>(p.period.count_ns())));
  m.sender = sender;
  m.receivers = {receiver};
  return m;
}

ExtensionStep verdict(const KMatrix& km, const CanRtaConfig& rta, std::size_t added) {
  ExtensionStep step;
  step.added = added;
  step.utilization = km.utilization(true);
  const BusResult res = CanRta{km, rta}.analyze();
  step.schedulable = res.all_schedulable();
  for (const auto& m : res.messages)
    if (!m.schedulable) {
      step.first_miss = m.name;
      break;
    }
  return step;
}

void check_profile(const ExtensionProfile& p) {
  if (p.period <= Duration::zero())
    throw std::invalid_argument("ExtensionProfile: period must be > 0");
  if (p.jitter_fraction < 0)
    throw std::invalid_argument("ExtensionProfile: negative jitter fraction");
  if (p.payload_bytes < 0 || p.payload_bytes > 8)
    throw std::invalid_argument("ExtensionProfile: payload must be 0..8");
  if (p.sender.empty()) throw std::invalid_argument("ExtensionProfile: empty sender");
  if (p.id_stride == 0) throw std::invalid_argument("ExtensionProfile: zero id stride");
}

}  // namespace

ExtensibilityReport max_additional_messages(const KMatrix& km, const CanRtaConfig& rta,
                                            const ExtensionProfile& profile, std::size_t cap) {
  check_profile(profile);
  km.validate();
  const std::string receiver = km.nodes().empty() ? profile.sender : km.nodes().front().name;

  ExtensibilityReport report;
  KMatrix work = km;
  ensure_node(work, profile.sender);
  for (std::size_t n = 1; n <= cap; ++n) {
    work.add_message(extension_message(profile, n - 1, profile.sender, receiver));
    const ExtensionStep step = verdict(work, rta, n);
    report.steps.push_back(step);
    if (!step.schedulable) return report;
    report.max_additional_messages = n;
    report.utilization_at_max = step.utilization;
  }
  report.capped = true;
  return report;
}

ExtensibilityReport max_additional_ecus(const KMatrix& km, const CanRtaConfig& rta,
                                        const ExtensionProfile& profile,
                                        std::size_t messages_per_ecu, std::size_t cap) {
  check_profile(profile);
  if (messages_per_ecu == 0)
    throw std::invalid_argument("max_additional_ecus: messages_per_ecu must be >= 1");
  km.validate();
  const std::string receiver = km.nodes().empty() ? profile.sender : km.nodes().front().name;

  ExtensibilityReport report;
  KMatrix work = km;
  std::size_t msg_index = 0;
  for (std::size_t e = 1; e <= cap; ++e) {
    const std::string node = profile.sender + std::to_string(e - 1);
    ensure_node(work, node);
    for (std::size_t j = 0; j < messages_per_ecu; ++j)
      work.add_message(extension_message(profile, msg_index++, node, receiver));
    const ExtensionStep step = verdict(work, rta, e);
    report.steps.push_back(step);
    if (!step.schedulable) return report;
    report.max_additional_messages = e;  // counts ECUs in this variant
    report.utilization_at_max = step.utilization;
  }
  report.capped = true;
  return report;
}

}  // namespace symcan

#include "symcan/analysis/can_rta.hpp"

#include <stdexcept>

#include "symcan/analysis/columnar.hpp"
#include "symcan/analysis/rta_context.hpp"
#include "symcan/obs/obs.hpp"

namespace symcan {

std::size_t BusResult::miss_count() const {
  std::size_t n = 0;
  for (const auto& m : messages)
    if (!m.schedulable) ++n;
  return n;
}

double BusResult::miss_fraction() const {
  if (messages.empty()) return 0;
  return static_cast<double>(miss_count()) / static_cast<double>(messages.size());
}

void flush_rta_observations(const BusResult& out) {
  if (!obs::enabled()) return;
  // Convergence cost was counted locally per message; flush it in one
  // pass so the fixed-point loops themselves stay atomic-free.
  auto& m = obs::metrics();
  std::int64_t total_iters = 0;
  std::int64_t diverged = 0;
  auto& per_message = m.histogram("rta.can.iterations_per_message");
  for (const auto& r : out.messages) {
    total_iters += r.fixedpoint_iterations;
    diverged += r.diverged ? 1 : 0;
    per_message.observe(static_cast<double>(r.fixedpoint_iterations));
  }
  m.counter("rta.can.analyses").add(1);
  m.counter("rta.can.messages").add(static_cast<std::int64_t>(out.messages.size()));
  m.counter("rta.can.fixedpoint_iterations").add(total_iters);
  m.counter("rta.can.diverged").add(diverged);
}

CanRta::CanRta(KMatrix km, CanRtaConfig cfg) : km_{std::move(km)}, cfg_{std::move(cfg)} {
  if (!cfg_.errors) throw std::invalid_argument("CanRta: error model must not be null");
  km_.validate();
}

MessageResult CanRta::analyze_message(std::size_t index) const {
  // The two halves of the shared busy-period core (rta_context.hpp):
  // resolve the message's interference context, then run the fixed point
  // on it. IncrementalRta memoizes between exactly these two calls.
  return analysis::solve_message(analysis::build_message_context(km_, cfg_, index));
}

BusResult CanRta::analyze() const {
  SYMCAN_OBS_SPAN("rta.can.analyze");
  BusResult out;
  out.utilization = km_.utilization(cfg_.worst_case_stuffing);
  out.messages.reserve(km_.size());
  // Columnar whole-bus path: one pack resolves every context, then each
  // solve runs allocation-free over the shared columns. Bit-identical to
  // the per-message analyze_message() loop (the layout-differential
  // suite pins this). The pack arena is thread-local so repeated
  // analyses reuse its capacity.
  static thread_local analysis::ColumnarBus bus;
  analysis::pack_bus(km_, cfg_, bus);
  for (std::size_t i = 0; i < km_.size(); ++i) {
    MessageResult r = analysis::solve_columnar(bus, i);
    r.name = km_.messages()[i].name;
    r.id = km_.messages()[i].id;
    out.messages.push_back(std::move(r));
  }
  flush_rta_observations(out);
  return out;
}

}  // namespace symcan

#include "symcan/analysis/can_rta.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <stdexcept>

#include "symcan/obs/obs.hpp"

namespace symcan {

namespace {

/// Iterate a monotone fixed point x = f(x) starting from x0, bounded by
/// `horizon`. Returns the fixed point, or infinite() when it diverges.
/// `iterations` accumulates the number of evaluations of f — counted
/// locally and flushed to obs by the caller so the hot loop stays free of
/// atomics.
template <typename F>
Duration fixed_point(Duration x0, Duration horizon, std::int64_t& iterations, F&& f) {
  Duration x = x0;
  for (;;) {
    ++iterations;
    const Duration next = f(x);
    if (next == x) return x;
    if (next > horizon) return Duration::infinite();
    // f is non-decreasing in x for all our interference terms, so the
    // iteration is non-decreasing; a decrease would indicate a modelling
    // bug, which we guard in debug builds.
    assert(next > x);
    x = next;
  }
}

}  // namespace

std::size_t BusResult::miss_count() const {
  std::size_t n = 0;
  for (const auto& m : messages)
    if (!m.schedulable) ++n;
  return n;
}

double BusResult::miss_fraction() const {
  if (messages.empty()) return 0;
  return static_cast<double>(miss_count()) / static_cast<double>(messages.size());
}

CanRta::CanRta(KMatrix km, CanRtaConfig cfg) : km_{std::move(km)}, cfg_{std::move(cfg)} {
  if (!cfg_.errors) throw std::invalid_argument("CanRta: error model must not be null");
  km_.validate();
}

Duration CanRta::frame_time(const CanMessage& m) const {
  return m.wcet(km_.timing(), cfg_.worst_case_stuffing);
}

std::uint64_t CanRta::effective_rank(std::size_t index) const {
  // basicCAN FIFO degradation: once a frame sits in the hardware transmit
  // FIFO behind committed same-node lower-priority frames, it cannot reach
  // the bus before they do — so until it does, it competes at the rank of
  // the worst frame that can be committed ahead of it. Everything with a
  // priority above that rank can interfere (Davis et al.'s treatment of
  // CAN with FIFO queues). fullCAN nodes keep their own rank.
  const CanMessage& m = km_.messages()[index];
  std::uint64_t rank = m.arbitration_rank();
  if (!cfg_.model_controller_queues) return rank;
  const EcuNode* node = km_.find_node(m.sender);
  if (node == nullptr || node->controller != ControllerType::kBasicCan) return rank;
  for (const auto& k : km_.messages())
    if (k.sender == m.sender) rank = std::max(rank, k.arbitration_rank());
  return rank;
}

Duration CanRta::blocking_for(std::size_t index) const {
  // Non-preemptive bus: one already-started frame below the (effective)
  // priority level.
  const std::uint64_t rank = effective_rank(index);
  Duration b = Duration::zero();
  for (const auto& k : km_.messages())
    if (k.arbitration_rank() > rank) b = max(b, frame_time(k));
  return b;
}

Duration CanRta::intra_node_blocking(std::size_t index) const {
  // basicCAN: frames already committed to the controller's transmit
  // buffers cannot be aborted, so a newly queued high-priority frame can
  // additionally wait for up to tx_buffers same-node lower-priority
  // frames (beyond the one possibly occupying the bus, which
  // blocking_for() already charges). fullCAN buffers arbitrate internally
  // by ID and are assumed abortable: no intra-node inversion.
  if (!cfg_.model_controller_queues) return Duration::zero();
  const CanMessage& m = km_.messages()[index];
  const EcuNode* node = km_.find_node(m.sender);
  if (node == nullptr || node->controller != ControllerType::kBasicCan) return Duration::zero();

  std::vector<Duration> lp_frames;
  for (const auto& k : km_.messages())
    if (k.sender == m.sender && k.arbitration_rank() > m.arbitration_rank())
      lp_frames.push_back(frame_time(k));
  std::sort(lp_frames.begin(), lp_frames.end(), std::greater<>{});

  const std::size_t committed =
      std::min<std::size_t>(lp_frames.size(), static_cast<std::size_t>(node->tx_buffers));
  Duration b = Duration::zero();
  for (std::size_t i = 0; i < committed; ++i) b += lp_frames[i];
  return b;
}

Duration CanRta::max_retx_frame(std::size_t index) const {
  // A fault can force retransmission of any frame at or above m's
  // effective priority level, or of the blocking lower-priority frame.
  const CanMessage& m = km_.messages()[index];
  const std::uint64_t rank = effective_rank(index);
  Duration c = frame_time(m);
  for (const auto& k : km_.messages())
    if (k.arbitration_rank() <= rank) c = max(c, frame_time(k));
  return max(c, blocking_for(index));
}

Duration CanRta::error_overhead(Duration window, std::size_t index) const {
  if (window <= Duration::zero()) return Duration::zero();
  return cfg_.errors->overhead(window, max_retx_frame(index), km_.timing());
}

MessageResult CanRta::analyze_message(std::size_t index) const {
  const auto& msgs = km_.messages();
  if (index >= msgs.size()) throw std::out_of_range("CanRta::analyze_message: bad index");
  const CanMessage& m = msgs[index];
  const Duration tau_bit = km_.timing().bit_time();
  const Duration c_m = frame_time(m);
  const EventModel em_m = m.activation();

  MessageResult res;
  res.name = m.name;
  res.id = m.id;
  res.bcrt = m.bcet(km_.timing());
  res.deadline = [&] {
    if (!cfg_.deadline_override || m.deadline_policy == DeadlinePolicy::kExplicit)
      return m.deadline();
    CanMessage tmp = m;
    tmp.deadline_policy = *cfg_.deadline_override;
    return tmp.deadline();
  }();

  const Duration blocking = blocking_for(index) + intra_node_blocking(index);
  res.blocking = blocking;

  // Higher-priority interferers: offset-scheduled messages of one sender
  // form a TtGroup (bounded over the schedule's hyperperiod); everything
  // else interferes through its individual event model.
  // Interference set at the effective priority level: other-node frames
  // above the effective rank (they beat the committed FIFO entries m sits
  // behind), plus same-node frames above m's own rank (same-node frames
  // between m and the committed entries queue *behind* m in the FIFO and
  // cannot interfere; their possible head start is the committed-blocking
  // term instead).
  const std::uint64_t eff_rank = effective_rank(index);
  std::vector<std::pair<EventModel, Duration>> hp;
  std::vector<TtGroup> groups;
  {
    std::map<std::string, std::vector<TtGroup::Member>> by_sender;
    for (const auto& k : msgs) {
      if (&k == &m) continue;
      const bool interferes = k.sender == m.sender
                                  ? k.arbitration_rank() < m.arbitration_rank()
                                  : k.arbitration_rank() < eff_rank;
      if (!interferes) continue;
      if (cfg_.use_offsets && k.tt_offset) {
        by_sender[k.sender].push_back(
            TtGroup::Member{k.period, *k.tt_offset, k.jitter, frame_time(k)});
      } else {
        hp.emplace_back(k.activation(), frame_time(k));
      }
    }
    for (const auto& [sender, members] : by_sender) {
      if (auto g = TtGroup::build(members)) {
        groups.push_back(std::move(*g));
      } else {
        // Hyperperiod too large: fall back to offset-blind event models.
        for (const auto& member : members)
          hp.emplace_back(
              EventModel::periodic_jitter(member.period, member.jitter), member.cost);
      }
    }
  }

  const auto hp_interference = [&](Duration window) {
    Duration total = Duration::zero();
    for (const auto& [em, c] : hp) total += em.eta_plus(window) * c;
    for (const auto& g : groups) total += g.interference(window);
    return total;
  };

  // Length of the level-m busy period: processor demand of m itself, all
  // higher-priority traffic, blocking, and fault recovery.
  std::int64_t iterations = 0;
  const Duration busy = fixed_point(blocking + c_m, cfg_.horizon, iterations, [&](Duration t) {
    return blocking + em_m.eta_plus(t) * c_m + hp_interference(t) + error_overhead(t, index);
  });
  res.fixedpoint_iterations = iterations;
  if (busy.is_infinite()) {
    res.wcrt = Duration::infinite();
    res.busy_period = Duration::infinite();
    res.diverged = true;
    res.schedulable = false;
    return res;
  }
  res.busy_period = busy;

  const std::int64_t q_max = em_m.eta_plus(busy);
  res.instances = q_max;
  Duration wcrt = Duration::zero();
  for (std::int64_t q = 0; q < q_max; ++q) {
    // Queueing delay of instance q (0-based): blocking, q earlier
    // instances of m, higher-priority frames that win arbitration before
    // instance q gets the bus (a frame queued up to one bit time after
    // the arbitration decision still wins), and fault recovery covering
    // the window up to the end of instance q's transmission.
    const Duration w =
        fixed_point(blocking + q * c_m, cfg_.horizon, iterations, [&](Duration t) {
          return blocking + q * c_m + hp_interference(t + tau_bit) +
                 error_overhead(t + c_m, index);
        });
    res.fixedpoint_iterations = iterations;
    if (w.is_infinite()) {
      res.wcrt = Duration::infinite();
      res.diverged = true;
      res.schedulable = false;
      return res;
    }
    // Instance q arrives no earlier than delta_min(q+1) after the busy
    // period starts; its response time is measured from its own arrival.
    const Duration response = w + c_m - em_m.delta_min(q + 1);
    wcrt = max(wcrt, response);
    // Early exit: once the busy period drains before the next arrival,
    // later instances cannot be worse.
    if (w + c_m <= em_m.delta_min(q + 2)) {
      // Remaining instances start in an idle bus: response == blocking
      // path already covered by q = 0 shape; safe to stop.
      break;
    }
  }
  res.wcrt = wcrt;
  res.schedulable = !res.deadline.is_infinite() ? wcrt <= res.deadline : true;
  return res;
}

BusResult CanRta::analyze() const {
  SYMCAN_OBS_SPAN("rta.can.analyze");
  BusResult out;
  out.utilization = km_.utilization(cfg_.worst_case_stuffing);
  out.messages.reserve(km_.size());
  for (std::size_t i = 0; i < km_.size(); ++i) out.messages.push_back(analyze_message(i));
  if (obs::enabled()) {
    // Convergence cost was counted locally per message; flush it in one
    // pass so the fixed-point loops themselves stay atomic-free.
    auto& m = obs::metrics();
    std::int64_t total_iters = 0;
    std::int64_t diverged = 0;
    auto& per_message = m.histogram("rta.can.iterations_per_message");
    for (const auto& r : out.messages) {
      total_iters += r.fixedpoint_iterations;
      diverged += r.diverged ? 1 : 0;
      per_message.observe(static_cast<double>(r.fixedpoint_iterations));
    }
    m.counter("rta.can.analyses").add(1);
    m.counter("rta.can.messages").add(static_cast<std::int64_t>(out.messages.size()));
    m.counter("rta.can.fixedpoint_iterations").add(total_iters);
    m.counter("rta.can.diverged").add(diverged);
  }
  return out;
}

}  // namespace symcan

#include "symcan/analysis/tt_schedule.hpp"

#include <algorithm>
#include <numeric>

namespace symcan {

namespace {

std::int64_t lcm_capped(std::int64_t a, std::int64_t b, std::int64_t cap) {
  const std::int64_t g = std::gcd(a, b);
  const std::int64_t a_red = a / g;
  if (a_red > cap / b) return cap + 1;  // overflow-safe "too large"
  return a_red * b;
}

/// ceil(num/den) for den > 0, correct for negative numerators.
std::int64_t ceil_div_signed(std::int64_t num, std::int64_t den) {
  const std::int64_t q = num / den;
  return (num % den > 0) ? q + 1 : q;
}

std::int64_t mod_positive(std::int64_t x, std::int64_t m) {
  std::int64_t r = x % m;
  if (r < 0) r += m;
  return r;
}

}  // namespace

std::optional<TtGroup> TtGroup::build(const std::vector<Member>& members,
                                      Duration max_hyperperiod, std::size_t max_releases) {
  if (members.empty()) return std::nullopt;
  std::int64_t hyper_ns = 1;
  const std::int64_t cap = max_hyperperiod.count_ns();
  for (const auto& m : members) {
    if (m.period <= Duration::zero() || m.offset < Duration::zero() || m.offset >= m.period ||
        m.jitter < Duration::zero() || m.cost < Duration::zero())
      return std::nullopt;
    hyper_ns = lcm_capped(hyper_ns, m.period.count_ns(), cap);
    if (hyper_ns > cap) return std::nullopt;
  }

  std::size_t n_releases = 0;
  for (const auto& m : members)
    n_releases += static_cast<std::size_t>(hyper_ns / m.period.count_ns());
  if (n_releases == 0 || n_releases > max_releases) return std::nullopt;

  TtGroup g;
  g.members_ = members;
  g.hyperperiod_ = Duration::ns(hyper_ns);
  for (const auto& m : members)
    g.total_cost_ += (hyper_ns / m.period.count_ns()) * m.cost;
  g.release_count_ = n_releases;
  return g;
}

Duration TtGroup::demand_at(std::int64_t t_ns, std::int64_t w_ns) const {
  // Releases of member (T, O, J, C) landing inside [t, t+w):
  //   O + kT <  t + w   and   O + kT + J >= t
  Duration demand = Duration::zero();
  for (const auto& m : members_) {
    const std::int64_t T = m.period.count_ns();
    const std::int64_t k_max = ceil_div_signed(t_ns + w_ns - m.offset.count_ns(), T) - 1;
    const std::int64_t k_min =
        ceil_div_signed(t_ns - m.jitter.count_ns() - m.offset.count_ns(), T);
    if (k_max >= k_min) demand += (k_max - k_min + 1) * m.cost;
  }
  return demand;
}

Duration TtGroup::interference(Duration w) const {
  if (w <= Duration::zero()) return Duration::zero();
  const std::int64_t w_ns = w.count_ns();
  const std::int64_t H = hyperperiod_.count_ns();

  // Whole hyperperiods contribute their full demand; the remainder is
  // maximized over window positions.
  const std::int64_t whole = w_ns / H;
  const std::int64_t rem = w_ns % H;
  Duration base = whole * total_cost_;
  if (rem == 0) {
    // Jitter can still pull one extra batch of releases into the window;
    // evaluate the exact maximum for the full length instead of assuming
    // the clean split (demand is H-periodic in t, not in w).
    base = (whole - 1) * total_cost_;
  }
  const std::int64_t eval_w = rem == 0 ? H : rem;

  // Candidate window starts: demand(t) is piecewise constant; maxima
  // occur at t = landing-interval end (b = O + kT + J) or just after an
  // entry boundary (t = O + kT - w). All mod H by periodicity.
  Duration best = Duration::zero();
  for (const auto& m : members_) {
    const std::int64_t T = m.period.count_ns();
    for (std::int64_t s = m.offset.count_ns(); s < H; s += T) {
      const std::int64_t t1 = mod_positive(s + m.jitter.count_ns(), H);
      best = max(best, demand_at(t1, eval_w));
      const std::int64_t t2 = mod_positive(s - eval_w + 1, H);
      best = max(best, demand_at(t2, eval_w));
    }
  }
  return base + best;
}

}  // namespace symcan

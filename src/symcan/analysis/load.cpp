#include "symcan/analysis/load.hpp"

#include <algorithm>

namespace symcan {

LoadReport analyze_load(const KMatrix& km, bool worst_case_stuffing) {
  LoadReport r;
  r.bandwidth_bps = static_cast<double>(km.timing().bits_per_second());
  for (const auto& n : km.nodes()) {
    NodeLoad nl;
    nl.node = n.name;
    nl.traffic_bps = km.node_traffic_bps(n.name, worst_case_stuffing);
    r.by_node.push_back(nl);
    r.total_traffic_bps += nl.traffic_bps;
  }
  for (auto& nl : r.by_node)
    nl.share = r.total_traffic_bps > 0 ? nl.traffic_bps / r.total_traffic_bps : 0;
  std::sort(r.by_node.begin(), r.by_node.end(),
            [](const NodeLoad& a, const NodeLoad& b) { return a.traffic_bps > b.traffic_bps; });
  r.utilization = r.bandwidth_bps > 0 ? r.total_traffic_bps / r.bandwidth_bps : 0;
  return r;
}

}  // namespace symcan

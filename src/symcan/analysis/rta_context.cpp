#include "symcan/analysis/rta_context.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <stdexcept>
#include <tuple>

#include "symcan/analysis/can_rta.hpp"
#include "symcan/can/kmatrix.hpp"

namespace symcan::analysis {

namespace {

/// Iterate a monotone fixed point x = f(x) starting from x0, bounded by
/// `horizon`. Returns the fixed point, or infinite() when it diverges.
/// `iterations` accumulates the number of evaluations of f — counted
/// locally and flushed to obs by the caller so the hot loop stays free of
/// atomics. `rec(x)` observes each iterate (the inputs to f, ending with
/// the fixed point itself); the no-op recorder of the plain solve path
/// inlines away.
template <typename F, typename R>
Duration fixed_point(Duration x0, Duration horizon, std::int64_t& iterations, F&& f, R&& rec) {
  Duration x = x0;
  for (;;) {
    rec(x);
    ++iterations;
    const Duration next = f(x);
    if (next == x) return x;
    if (next > horizon) return Duration::infinite();
    // f is non-decreasing in x for all our interference terms, so the
    // iteration is non-decreasing; a decrease would indicate a modelling
    // bug, which we guard in debug builds.
    assert(next > x);
    x = next;
  }
}

/// Solver-trajectory recorders for solve_message_impl(). The null
/// recorder keeps the hot path free of any bookkeeping; the tracing
/// recorder fills a SolveTrace, keeping the window iterates of the
/// instance that attains the WCRT.
struct NullSolveRecorder {
  void busy_iterate(Duration) {}
  void begin_instance(std::int64_t) {}
  void window_iterate(Duration) {}
  void instance_result(std::int64_t, Duration, Duration) {}
};

struct TracingSolveRecorder {
  explicit TracingSolveRecorder(SolveTrace& trace) : out(trace) {}

  SolveTrace& out;
  std::vector<Duration> scratch;  ///< Iterates of the instance in flight.
  Duration best_response = -Duration::infinite();

  void busy_iterate(Duration x) { out.busy_iterates.push_back(x); }
  void begin_instance(std::int64_t) { scratch.clear(); }
  void window_iterate(Duration x) { scratch.push_back(x); }
  void instance_result(std::int64_t q, Duration w, Duration response) {
    // Strict '>' mirrors wcrt = max(wcrt, response): the first instance
    // attaining the maximum is the critical one.
    if (response > best_response) {
      best_response = response;
      out.critical_instance = q;
      out.critical_window = w;
      out.window_iterates = scratch;
    }
  }
};

Duration frame_time(const KMatrix& km, const CanRtaConfig& cfg, const CanMessage& m) {
  return m.wcet(km.timing(), cfg.worst_case_stuffing);
}

/// Arbitration rank the message effectively competes at: its own rank,
/// degraded to the node's worst same-node rank on basicCAN controllers
/// (committed FIFO entries cannot be overtaken).
std::uint64_t effective_rank(const KMatrix& km, const CanRtaConfig& cfg, std::size_t index) {
  const CanMessage& m = km.messages()[index];
  std::uint64_t rank = m.arbitration_rank();
  if (!cfg.model_controller_queues) return rank;
  const EcuNode* node = km.find_node(m.sender);
  if (node == nullptr || node->controller != ControllerType::kBasicCan) return rank;
  for (const auto& k : km.messages())
    if (k.sender == m.sender) rank = std::max(rank, k.arbitration_rank());
  return rank;
}

/// Non-preemptive bus: one already-started frame below the (effective)
/// priority level.
Duration blocking_for(const KMatrix& km, const CanRtaConfig& cfg, std::size_t index) {
  const std::uint64_t rank = effective_rank(km, cfg, index);
  Duration b = Duration::zero();
  for (const auto& k : km.messages())
    if (k.arbitration_rank() > rank) b = max(b, frame_time(km, cfg, k));
  return b;
}

/// basicCAN: frames already committed to the controller's transmit
/// buffers cannot be aborted, so a newly queued high-priority frame can
/// additionally wait for up to tx_buffers same-node lower-priority
/// frames (beyond the one possibly occupying the bus, which
/// blocking_for() already charges). fullCAN buffers arbitrate internally
/// by ID and are assumed abortable: no intra-node inversion.
Duration intra_node_blocking(const KMatrix& km, const CanRtaConfig& cfg, std::size_t index) {
  if (!cfg.model_controller_queues) return Duration::zero();
  const CanMessage& m = km.messages()[index];
  const EcuNode* node = km.find_node(m.sender);
  if (node == nullptr || node->controller != ControllerType::kBasicCan) return Duration::zero();

  std::vector<Duration> lp_frames;
  for (const auto& k : km.messages())
    if (k.sender == m.sender && k.arbitration_rank() > m.arbitration_rank())
      lp_frames.push_back(frame_time(km, cfg, k));
  std::sort(lp_frames.begin(), lp_frames.end(), std::greater<>{});

  const std::size_t committed =
      std::min<std::size_t>(lp_frames.size(), static_cast<std::size_t>(node->tx_buffers));
  Duration b = Duration::zero();
  for (std::size_t i = 0; i < committed; ++i) b += lp_frames[i];
  return b;
}

/// A fault can force retransmission of any frame at or above m's
/// effective priority level, or of the blocking lower-priority frame.
Duration max_retx_frame(const KMatrix& km, const CanRtaConfig& cfg, std::size_t index) {
  const CanMessage& m = km.messages()[index];
  const std::uint64_t rank = effective_rank(km, cfg, index);
  Duration c = frame_time(km, cfg, m);
  for (const auto& k : km.messages())
    if (k.arbitration_rank() <= rank) c = max(c, frame_time(km, cfg, k));
  return max(c, blocking_for(km, cfg, index));
}

/// Deadline under cfg's override policy, without copying the message.
/// Must mirror CanMessage::deadline() per policy exactly.
Duration effective_deadline(const CanMessage& m, const CanRtaConfig& cfg) {
  const DeadlinePolicy policy =
      (!cfg.deadline_override || m.deadline_policy == DeadlinePolicy::kExplicit)
          ? m.deadline_policy
          : *cfg.deadline_override;
  switch (policy) {
    case DeadlinePolicy::kPeriod:
      return m.period;
    case DeadlinePolicy::kMinReArrival:
      return max(m.period - m.jitter, m.min_distance);
    case DeadlinePolicy::kExplicit:
      return m.explicit_deadline;
  }
  return Duration::infinite();
}

auto member_order_key(const TtGroup::Member& m) {
  return std::make_tuple(m.period.count_ns(), m.offset.count_ns(), m.jitter.count_ns(),
                         m.cost.count_ns());
}

auto hp_order_key(const std::pair<EventModel, Duration>& e) {
  return std::make_tuple(e.first.period().count_ns(), e.first.jitter().count_ns(),
                         e.first.min_distance().count_ns(), e.second.count_ns());
}

}  // namespace

MessageContext build_message_context(const KMatrix& km, const CanRtaConfig& cfg,
                                     std::size_t index, ContextLabels* labels) {
  const auto& msgs = km.messages();
  if (index >= msgs.size())
    throw std::out_of_range("build_message_context: bad index");
  const CanMessage& m = msgs[index];

  MessageContext ctx;
  ctx.name = m.name;
  ctx.id = m.id;
  ctx.timing = km.timing();
  ctx.cost = frame_time(km, cfg, m);
  ctx.bcrt = m.bcet(km.timing());
  ctx.activation = m.activation();
  ctx.deadline = effective_deadline(m, cfg);
  ctx.blocking = blocking_for(km, cfg, index) + intra_node_blocking(km, cfg, index);
  ctx.max_retx = max_retx_frame(km, cfg, index);
  ctx.horizon = cfg.horizon;
  ctx.errors = cfg.errors;

  if (labels != nullptr) {
    labels->bus_blocking = blocking_for(km, cfg, index);
    labels->intra_node_blocking = intra_node_blocking(km, cfg, index);
    // Arg-max of blocking_for(): the largest already-started frame below
    // the effective priority level. Ties resolve to the first in matrix
    // order, which is what the maximum itself charges.
    const std::uint64_t rank = effective_rank(km, cfg, index);
    Duration b = Duration::zero();
    for (const auto& k : msgs) {
      if (k.arbitration_rank() > rank && frame_time(km, cfg, k) > b) {
        b = frame_time(km, cfg, k);
        labels->blocking_frame = k.name;
      }
    }
  }

  // Higher-priority interferers: offset-scheduled messages of one sender
  // form a TtGroup (bounded over the schedule's hyperperiod); everything
  // else interferes through its individual event model.
  // Interference set at the effective priority level: other-node frames
  // above the effective rank (they beat the committed FIFO entries m sits
  // behind), plus same-node frames above m's own rank (same-node frames
  // between m and the committed entries queue *behind* m in the FIFO and
  // cannot interfere; their possible head start is the committed-blocking
  // term instead).
  const std::uint64_t eff_rank = effective_rank(km, cfg, index);
  std::vector<std::string> hp_names;
  struct NamedMember {
    TtGroup::Member member;
    const std::string* name;
  };
  std::map<std::string, std::vector<NamedMember>> by_sender;
  for (const auto& k : msgs) {
    if (&k == &m) continue;
    const bool interferes = k.sender == m.sender
                                ? k.arbitration_rank() < m.arbitration_rank()
                                : k.arbitration_rank() < eff_rank;
    if (!interferes) continue;
    if (cfg.use_offsets && k.tt_offset) {
      by_sender[k.sender].push_back(NamedMember{
          TtGroup::Member{k.period, *k.tt_offset, k.jitter, frame_time(km, cfg, k)}, &k.name});
    } else {
      ctx.hp.emplace_back(k.activation(), frame_time(km, cfg, k));
      if (labels != nullptr) hp_names.push_back(k.name);
    }
  }

  // Canonical order: interference (and the group-build fallback) depend
  // only on the *sets*, all sums being exact integer arithmetic, so
  // sorting loses nothing and buys context reuse across priority
  // permutations and sender renames. With labels, ties break by name so
  // the labelled order is deterministic (tied entries are identical to
  // the solver, so results do not change).
  if (labels == nullptr) {
    std::sort(ctx.hp.begin(), ctx.hp.end(), [](const auto& x, const auto& y) {
      return hp_order_key(x) < hp_order_key(y);
    });
  } else {
    std::vector<std::size_t> order(ctx.hp.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      const auto kx = hp_order_key(ctx.hp[x]);
      const auto ky = hp_order_key(ctx.hp[y]);
      if (kx != ky) return kx < ky;
      return hp_names[x] < hp_names[y];
    });
    std::vector<std::pair<EventModel, Duration>> hp_sorted;
    hp_sorted.reserve(ctx.hp.size());
    labels->hp.reserve(ctx.hp.size());
    for (const std::size_t i : order) {
      hp_sorted.push_back(ctx.hp[i]);
      labels->hp.push_back(std::move(hp_names[i]));
    }
    ctx.hp = std::move(hp_sorted);
  }

  ctx.tt.reserve(by_sender.size());
  for (auto& [sender, members] : by_sender) {
    std::sort(members.begin(), members.end(), [](const NamedMember& x, const NamedMember& y) {
      const auto kx = member_order_key(x.member);
      const auto ky = member_order_key(y.member);
      if (kx != ky) return kx < ky;
      return *x.name < *y.name;  // deterministic among ties, never observable
    });
    std::vector<TtGroup::Member> group;
    group.reserve(members.size());
    for (const auto& nm : members) group.push_back(nm.member);
    ctx.tt.push_back(std::move(group));
    if (labels != nullptr) {
      labels->tt_sender.push_back(sender);
      std::vector<std::string> names;
      names.reserve(members.size());
      for (const auto& nm : members) names.push_back(*nm.name);
      labels->tt_members.push_back(std::move(names));
    }
  }
  // Group order: by_sender already iterates sender-sorted; the canonical
  // lexicographic member-key order must be re-established because sender
  // order and member order differ. Sort indices so the labels follow.
  {
    std::vector<std::size_t> order(ctx.tt.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    const auto group_less = [&](std::size_t x, std::size_t y) {
      return std::lexicographical_compare(
          ctx.tt[x].begin(), ctx.tt[x].end(), ctx.tt[y].begin(), ctx.tt[y].end(),
          [](const auto& a, const auto& b) { return member_order_key(a) < member_order_key(b); });
    };
    std::sort(order.begin(), order.end(), group_less);
    std::vector<std::vector<TtGroup::Member>> tt_sorted;
    tt_sorted.reserve(ctx.tt.size());
    for (const std::size_t i : order) tt_sorted.push_back(std::move(ctx.tt[i]));
    ctx.tt = std::move(tt_sorted);
    if (labels != nullptr) {
      std::vector<std::string> senders_sorted;
      std::vector<std::vector<std::string>> members_sorted;
      senders_sorted.reserve(order.size());
      members_sorted.reserve(order.size());
      for (const std::size_t i : order) {
        senders_sorted.push_back(std::move(labels->tt_sender[i]));
        members_sorted.push_back(std::move(labels->tt_members[i]));
      }
      labels->tt_sender = std::move(senders_sorted);
      labels->tt_members = std::move(members_sorted);
    }
  }
  return ctx;
}

namespace {

/// The single busy-period implementation behind both public overloads.
/// `rec` only observes — with the null recorder every hook inlines to
/// nothing, and the tracing overload is guaranteed bit-identical because
/// it runs this exact code.
template <typename Rec>
MessageResult solve_message_impl(const MessageContext& ctx, Rec& rec) {
  const Duration tau_bit = ctx.timing.bit_time();
  const Duration c_m = ctx.cost;
  const EventModel& em_m = ctx.activation;

  MessageResult res;
  res.name = ctx.name;
  res.id = ctx.id;
  res.bcrt = ctx.bcrt;
  res.deadline = ctx.deadline;
  res.blocking = ctx.blocking;
  const Duration blocking = ctx.blocking;

  std::vector<std::pair<EventModel, Duration>> hp = ctx.hp;
  std::vector<TtGroup> groups;
  groups.reserve(ctx.tt.size());
  for (const auto& members : ctx.tt) {
    if (auto g = TtGroup::build(members)) {
      groups.push_back(std::move(*g));
    } else {
      // Hyperperiod too large: fall back to offset-blind event models.
      for (const auto& member : members)
        hp.emplace_back(EventModel::periodic_jitter(member.period, member.jitter), member.cost);
    }
  }

  const auto hp_interference = [&](Duration window) {
    Duration total = Duration::zero();
    for (const auto& [em, c] : hp) total += em.eta_plus(window) * c;
    for (const auto& g : groups) total += g.interference(window);
    return total;
  };
  const auto error_overhead = [&](Duration window) {
    if (window <= Duration::zero()) return Duration::zero();
    return ctx.errors->overhead(window, ctx.max_retx, ctx.timing);
  };

  // Length of the level-m busy period: processor demand of m itself, all
  // higher-priority traffic, blocking, and fault recovery.
  std::int64_t iterations = 0;
  const Duration busy = fixed_point(
      blocking + c_m, ctx.horizon, iterations,
      [&](Duration t) {
        return blocking + em_m.eta_plus(t) * c_m + hp_interference(t) + error_overhead(t);
      },
      [&](Duration x) { rec.busy_iterate(x); });
  res.fixedpoint_iterations = iterations;
  if (busy.is_infinite()) {
    res.wcrt = Duration::infinite();
    res.busy_period = Duration::infinite();
    res.diverged = true;
    res.schedulable = false;
    return res;
  }
  res.busy_period = busy;

  const std::int64_t q_max = em_m.eta_plus(busy);
  res.instances = q_max;
  Duration wcrt = Duration::zero();
  for (std::int64_t q = 0; q < q_max; ++q) {
    // Queueing delay of instance q (0-based): blocking, q earlier
    // instances of m, higher-priority frames that win arbitration before
    // instance q gets the bus (a frame queued up to one bit time after
    // the arbitration decision still wins), and fault recovery covering
    // the window up to the end of instance q's transmission.
    rec.begin_instance(q);
    const Duration w = fixed_point(
        blocking + q * c_m, ctx.horizon, iterations,
        [&](Duration t) {
          return blocking + q * c_m + hp_interference(t + tau_bit) + error_overhead(t + c_m);
        },
        [&](Duration x) { rec.window_iterate(x); });
    res.fixedpoint_iterations = iterations;
    if (w.is_infinite()) {
      res.wcrt = Duration::infinite();
      res.diverged = true;
      res.schedulable = false;
      return res;
    }
    // Instance q arrives no earlier than delta_min(q+1) after the busy
    // period starts; its response time is measured from its own arrival.
    const Duration response = w + c_m - em_m.delta_min(q + 1);
    rec.instance_result(q, w, response);
    wcrt = max(wcrt, response);
    // Early exit: once the busy period drains before the next arrival,
    // later instances cannot be worse.
    if (w + c_m <= em_m.delta_min(q + 2)) {
      // Remaining instances start in an idle bus: response == blocking
      // path already covered by q = 0 shape; safe to stop.
      break;
    }
  }
  res.wcrt = wcrt;
  res.schedulable = !res.deadline.is_infinite() ? wcrt <= res.deadline : true;
  return res;
}

}  // namespace

MessageResult solve_message(const MessageContext& ctx) {
  NullSolveRecorder rec;
  return solve_message_impl(ctx, rec);
}

MessageResult solve_message(const MessageContext& ctx, SolveTrace& trace) {
  trace = SolveTrace{};
  TracingSolveRecorder rec{trace};
  return solve_message_impl(ctx, rec);
}

namespace {

/// Two-lane 128-bit mixer: lane a is FNV-1a, lane b a SplitMix-style
/// add-xor-multiply chain. Both lanes see every word, with different
/// diffusion, so a collision requires defeating both simultaneously.
class KeyMixer {
 public:
  KeyMixer() = default;
  explicit KeyMixer(std::uint64_t seed) { mix(seed); }
  void mix(std::uint64_t v) {
    a_ = (a_ ^ v) * 0x100000001b3ULL;
    b_ += v + 0x9e3779b97f4a7c15ULL;
    b_ = (b_ ^ (b_ >> 30)) * 0xbf58476d1ce4e5b9ULL;
    b_ ^= b_ >> 27;
  }
  void mix(Duration d) { mix(static_cast<std::uint64_t>(d.count_ns())); }
  void mix(const EventModel& em) {
    mix(em.period());
    mix(em.jitter());
    mix(em.min_distance());
  }
  ContextKey key() const { return ContextKey{a_, b_}; }

 private:
  std::uint64_t a_ = 0xcbf29ce484222325ULL;
  std::uint64_t b_ = 0x58a3f9e1d2c4b605ULL;
};

/// Multiset accumulator: elements are hashed individually through a
/// seeded KeyMixer and combined with wrapping addition per lane, so the
/// accumulated value is independent of element order. This is what lets
/// message_fingerprint() hash the interference sets in raw matrix order
/// while context_fingerprint() sees them canonically sorted — both
/// produce the same key for the same multiset.
struct MultisetAcc {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t n = 0;

  void add(const ContextKey& k) {
    a += k.a;
    b += k.b;
    ++n;
  }
};

ContextKey hp_entry_hash(const EventModel& em, Duration cost) {
  KeyMixer h{0x68702d656e747279ULL};  // "hp-entry"
  h.mix(em);
  h.mix(cost);
  return h.key();
}

ContextKey tt_member_hash(Duration period, Duration offset, Duration jitter, Duration cost) {
  KeyMixer h{0x74742d6d656d6265ULL};  // "tt-membe"
  h.mix(period);
  h.mix(offset);
  h.mix(jitter);
  h.mix(cost);
  return h.key();
}

ContextKey tt_group_hash(const MultisetAcc& members) {
  KeyMixer h{0x74742d67726f7570ULL};  // "tt-group"
  h.mix(members.a);
  h.mix(members.b);
  h.mix(members.n);
  return h.key();
}

/// Final key over the resolved scalar inputs and the two set
/// accumulators. Shared by both fingerprint entry points so they agree
/// field for field.
ContextKey assemble_key(const CanRtaConfig& cfg, std::uint64_t errors_fp, const BitTiming& timing,
                        Duration cost, Duration bcrt, Duration deadline,
                        const EventModel& activation, Duration blocking, Duration max_retx,
                        Duration horizon, const MultisetAcc& hp, const MultisetAcc& tt) {
  KeyMixer h;
  // Raw config switches. Strictly redundant — every switch is already
  // resolved into the values below — but hashed anyway so a future
  // config field that leaks into the solver without being folded into
  // the context shows up as a differential-test failure, not a stale hit.
  h.mix(static_cast<std::uint64_t>(cfg.worst_case_stuffing) |
        (static_cast<std::uint64_t>(cfg.model_controller_queues) << 1) |
        (static_cast<std::uint64_t>(cfg.use_offsets) << 2) |
        (cfg.deadline_override
             ? 0x10ULL + static_cast<std::uint64_t>(*cfg.deadline_override)
             : 0x8ULL));
  h.mix(errors_fp);

  h.mix(static_cast<std::uint64_t>(timing.bits_per_second()));
  h.mix(timing.bit_time());
  h.mix(cost);
  h.mix(bcrt);
  h.mix(deadline);
  h.mix(activation);
  h.mix(blocking);
  h.mix(max_retx);
  h.mix(horizon);

  h.mix(hp.a);
  h.mix(hp.b);
  h.mix(hp.n);
  h.mix(tt.a);
  h.mix(tt.b);
  h.mix(tt.n);
  return h.key();
}

}  // namespace

ContextKey context_fingerprint(const MessageContext& ctx, const CanRtaConfig& cfg) {
  MultisetAcc hp;
  for (const auto& [em, cost] : ctx.hp) hp.add(hp_entry_hash(em, cost));
  MultisetAcc tt;
  for (const auto& members : ctx.tt) {
    MultisetAcc group;
    for (const auto& m : members) group.add(tt_member_hash(m.period, m.offset, m.jitter, m.cost));
    tt.add(tt_group_hash(group));
  }
  return assemble_key(cfg, ctx.errors->fingerprint(), ctx.timing, ctx.cost, ctx.bcrt, ctx.deadline,
                      ctx.activation, ctx.blocking, ctx.max_retx, ctx.horizon, hp, tt);
}

ContextKey message_fingerprint(const KMatrix& km, const CanRtaConfig& cfg, std::size_t index) {
  const auto& msgs = km.messages();
  if (index >= msgs.size()) throw std::out_of_range("message_fingerprint: bad index");
  const CanMessage& m = msgs[index];
  const std::uint64_t own_rank = m.arbitration_rank();
  const std::uint64_t eff_rank = effective_rank(km, cfg, index);
  const Duration c_m = frame_time(km, cfg, m);

  // One pass over the matrix gathers the blocking and retransmission
  // maxima and the interference multisets — the same values
  // build_message_context() resolves, minus the vectors.
  Duration bus_blocking = Duration::zero();
  Duration max_retx = c_m;
  MultisetAcc hp;
  // Per-sender accumulators for offset groups; sender counts are small,
  // so a linear-scan vector beats a map.
  std::vector<std::pair<const std::string*, MultisetAcc>> groups;
  for (const auto& k : msgs) {
    if (&k == &m) continue;
    const std::uint64_t kr = k.arbitration_rank();
    const Duration ck = frame_time(km, cfg, k);
    if (kr > eff_rank) bus_blocking = max(bus_blocking, ck);
    if (kr <= eff_rank) max_retx = max(max_retx, ck);
    const bool interferes = k.sender == m.sender ? kr < own_rank : kr < eff_rank;
    if (!interferes) continue;
    if (cfg.use_offsets && k.tt_offset) {
      MultisetAcc* acc = nullptr;
      for (auto& [sender, a] : groups)
        if (*sender == k.sender) {
          acc = &a;
          break;
        }
      if (acc == nullptr) acc = &groups.emplace_back(&k.sender, MultisetAcc{}).second;
      acc->add(tt_member_hash(k.period, *k.tt_offset, k.jitter, ck));
    } else {
      hp.add(hp_entry_hash(k.activation(), ck));
    }
  }
  max_retx = max(max_retx, bus_blocking);
  const Duration blocking = bus_blocking + intra_node_blocking(km, cfg, index);

  MultisetAcc tt;
  for (const auto& [sender, group] : groups) tt.add(tt_group_hash(group));

  return assemble_key(cfg, cfg.errors->fingerprint(), km.timing(), c_m, m.bcet(km.timing()),
                      effective_deadline(m, cfg), m.activation(), blocking, max_retx, cfg.horizon,
                      hp, tt);
}

std::vector<ContextKey> bus_fingerprints(const KMatrix& km, const CanRtaConfig& cfg) {
  const auto& msgs = km.messages();
  const std::size_t n = msgs.size();
  const std::uint64_t errors_fp = cfg.errors->fingerprint();

  // Pre-pass: per message, its rank, frame time, sender index and its
  // one-time element hashes. Every pairwise step below is then a compare
  // plus a few additions.
  std::vector<const std::string*> senders;
  std::vector<std::uint64_t> rank(n);
  std::vector<Duration> cost(n);
  std::vector<std::size_t> sender_of(n);
  std::vector<ContextKey> hp_hash(n);
  std::vector<ContextKey> tt_hash(n);
  std::vector<char> is_tt(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    rank[k] = msgs[k].arbitration_rank();
    cost[k] = frame_time(km, cfg, msgs[k]);
    std::size_t s = senders.size();
    for (std::size_t j = 0; j < senders.size(); ++j)
      if (*senders[j] == msgs[k].sender) {
        s = j;
        break;
      }
    if (s == senders.size()) senders.push_back(&msgs[k].sender);
    sender_of[k] = s;
    if (cfg.use_offsets && msgs[k].tt_offset) {
      is_tt[k] = 1;
      tt_hash[k] = tt_member_hash(msgs[k].period, *msgs[k].tt_offset, msgs[k].jitter, cost[k]);
    } else {
      hp_hash[k] = hp_entry_hash(msgs[k].activation(), cost[k]);
    }
  }

  // Effective rank: basicCAN senders degrade every message to the node's
  // worst rank (same resolution effective_rank() does one message at a
  // time).
  std::vector<std::uint64_t> sender_max_rank(senders.size(), 0);
  std::vector<char> sender_basic(senders.size(), 0);
  for (std::size_t s = 0; s < senders.size(); ++s) {
    const EcuNode* node = km.find_node(*senders[s]);
    sender_basic[s] = cfg.model_controller_queues && node != nullptr &&
                      node->controller == ControllerType::kBasicCan;
  }
  for (std::size_t k = 0; k < n; ++k)
    sender_max_rank[sender_of[k]] = std::max(sender_max_rank[sender_of[k]], rank[k]);

  std::vector<ContextKey> keys(n);
  std::vector<MultisetAcc> group_acc(senders.size());
  for (std::size_t i = 0; i < n; ++i) {
    const CanMessage& m = msgs[i];
    const std::uint64_t eff_rank =
        sender_basic[sender_of[i]] ? sender_max_rank[sender_of[i]] : rank[i];

    Duration bus_blocking = Duration::zero();
    Duration max_retx = cost[i];
    MultisetAcc hp;
    for (auto& g : group_acc) g = MultisetAcc{};
    for (std::size_t k = 0; k < n; ++k) {
      if (k == i) continue;
      if (rank[k] > eff_rank) bus_blocking = max(bus_blocking, cost[k]);
      if (rank[k] <= eff_rank) max_retx = max(max_retx, cost[k]);
      const bool interferes =
          sender_of[k] == sender_of[i] ? rank[k] < rank[i] : rank[k] < eff_rank;
      if (!interferes) continue;
      if (is_tt[k])
        group_acc[sender_of[k]].add(tt_hash[k]);
      else
        hp.add(hp_hash[k]);
    }
    max_retx = max(max_retx, bus_blocking);
    const Duration blocking = bus_blocking + intra_node_blocking(km, cfg, i);

    MultisetAcc tt;
    for (const auto& g : group_acc)
      if (g.n > 0) tt.add(tt_group_hash(g));

    keys[i] = assemble_key(cfg, errors_fp, km.timing(), cost[i], m.bcet(km.timing()),
                           effective_deadline(m, cfg), m.activation(), blocking, max_retx,
                           cfg.horizon, hp, tt);
  }
  return keys;
}

}  // namespace symcan::analysis

#pragma once

// The shared busy-period core of the CAN response-time analysis, split
// into two halves:
//
//   build_message_context(km, cfg, i)  — resolve everything message i's
//       verdict can depend on into a self-contained MessageContext: its
//       own cost/deadline/event model, the blocking terms, the
//       higher-priority interference set (event models + frame times),
//       the offset-scheduled sender groups, and the error model.
//
//   solve_message(ctx)                 — run the Davis/Tindell busy-period
//       fixed point on that context alone. Deterministic: two equal
//       contexts always produce bit-identical MessageResults.
//
// CanRta::analyze_message() is exactly build + solve; IncrementalRta
// inserts a memo table between the two halves, keyed by
// context_fingerprint(). The split is what makes the cache sound: the
// fingerprint covers every field the solver reads, and nothing else
// reaches the solver, so a fingerprint hit *is* a proof that the fresh
// analysis would produce the same bits.
//
// The context is deliberately *resolved*, not raw: lower-priority
// messages enter only through the blocking/retransmission maxima, the
// interference set is canonically sorted (CAN interference is a set
// property — arbitration order among higher-priority frames does not
// change the busy-window sum), and config switches (stuffing, deadline
// override, controller queue modelling, offset use) are already folded
// into the values they influence. Two GA neighbours that differ in one
// ID swap therefore share contexts for every message outside the swapped
// priority span, and a jitter sweep reuses every message whose
// interference set the sweep does not touch.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "symcan/analysis/error_model.hpp"
#include "symcan/analysis/tt_schedule.hpp"
#include "symcan/model/event_model.hpp"
#include "symcan/util/time.hpp"

namespace symcan {

struct CanRtaConfig;
struct MessageResult;
class KMatrix;

namespace analysis {

/// Everything the busy-period solver may read about one message.
struct MessageContext {
  /// Output identity only — patched into the result, never hashed, so a
  /// cached result can be re-labelled for a structurally equal message.
  std::string name;
  std::uint32_t id = 0;

  // --- Solver inputs; all of these are covered by the fingerprint. ---
  BitTiming timing{500'000};
  Duration cost = Duration::zero();      ///< C_m under the configured stuffing.
  Duration bcrt = Duration::zero();      ///< Unstuffed frame time.
  Duration deadline = Duration::infinite();  ///< Resolved against any override.
  EventModel activation = EventModel::periodic(Duration::ms(10));
  /// Total blocking: one lower-priority frame on the bus plus committed
  /// same-node basicCAN FIFO entries.
  Duration blocking = Duration::zero();
  /// Largest frame a fault can force to retransmit at this level.
  Duration max_retx = Duration::zero();
  Duration horizon = Duration::s(10);

  /// Higher-priority interferers analyzed through their event models,
  /// sorted canonically (period, jitter, min distance, cost).
  std::vector<std::pair<EventModel, Duration>> hp;

  /// Offset-scheduled higher-priority interferers, one member list per
  /// sending node; members and lists sorted canonically. The solver
  /// builds TtGroups from these (falling back to offset-blind event
  /// models when a hyperperiod is unbounded — a deterministic function
  /// of the members, so the members are what the fingerprint covers).
  std::vector<std::vector<TtGroup::Member>> tt;

  std::shared_ptr<const ErrorModel> errors;
};

/// 128-bit context key. Two lanes of independent mixing make accidental
/// collisions (which would silently corrupt cached results) vanishingly
/// unlikely at any realistic cache size.
struct ContextKey {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  friend bool operator==(const ContextKey&, const ContextKey&) = default;
};

struct ContextKeyHash {
  std::size_t operator()(const ContextKey& k) const noexcept {
    return static_cast<std::size_t>(k.a ^ (k.b * 0x9e3779b97f4a7c15ULL));
  }
};

/// Human-readable identities of a context's solver inputs, filled by
/// build_message_context() on request. Pure output identity — never
/// hashed, never read by the solver — consumed by the provenance layer
/// (analysis/provenance.hpp) to name the terms of a breakdown. When
/// labels are requested, ties in the canonical interference order are
/// broken by name so the labelled order is deterministic; tied entries
/// are identical to the solver, so results are unaffected.
struct ContextLabels {
  std::vector<std::string> hp;  ///< Parallel to MessageContext::hp.
  /// Parallel to MessageContext::tt: the sending node of each offset
  /// group and the names of its members.
  std::vector<std::string> tt_sender;
  std::vector<std::vector<std::string>> tt_members;
  std::string blocking_frame;  ///< Largest lower-priority bus frame; "" if none.
  Duration bus_blocking = Duration::zero();
  Duration intra_node_blocking = Duration::zero();
};

/// Resolve message `index` of `km` under `cfg` into a solver context.
/// Mirrors CanRta's interference-set construction exactly. `labels`,
/// when non-null, receives the human-readable identity of every
/// resolved input (see ContextLabels).
MessageContext build_message_context(const KMatrix& km, const CanRtaConfig& cfg,
                                     std::size_t index, ContextLabels* labels = nullptr);

/// Everything the solver visited on the way to one verdict, recorded by
/// the explaining overload of solve_message(). The iterate sequences are
/// the successive window values of the monotone fixed points — the
/// convergence trajectory `symcan explain` renders.
struct SolveTrace {
  std::vector<Duration> busy_iterates;  ///< Busy-period fixed-point iterates.
  std::int64_t critical_instance = 0;   ///< 0-based q attaining the WCRT.
  Duration critical_window = Duration::zero();  ///< Fixed point w(q*).
  std::vector<Duration> window_iterates;        ///< Iterates of w(q*).
};

/// Run the busy-period fixed point on one context. Pure: equal contexts
/// give bit-identical results (iteration counts included).
MessageResult solve_message(const MessageContext& ctx);

/// Same computation, additionally recording the solver's trajectory.
/// Guaranteed bit-identical to the plain overload (same code path; the
/// recorder only observes), so an explained verdict *is* the verdict.
MessageResult solve_message(const MessageContext& ctx, SolveTrace& trace);

/// Stable 128-bit fingerprint over every solver input of `ctx` plus the
/// raw config switches (redundant with the resolved values, kept as
/// cheap insurance against future fields bypassing the context). The
/// interference sets are hashed as multisets (commutative combine), so
/// the key is independent of element order.
ContextKey context_fingerprint(const MessageContext& ctx, const CanRtaConfig& cfg);

/// Fingerprint of message `index` computed directly from the matrix in
/// one allocation-light pass, without materializing a MessageContext.
/// Guaranteed equal to context_fingerprint(build_message_context(km,
/// cfg, index), cfg) — the cheap lookup path of IncrementalRta, which
/// only pays for context construction on a miss.
ContextKey message_fingerprint(const KMatrix& km, const CanRtaConfig& cfg, std::size_t index);

/// All message fingerprints of `km` at once, equal element-wise to
/// message_fingerprint(km, cfg, i). Hashes every message's interference
/// contribution once and combines per message by commutative addition,
/// so the whole-bus pass does O(n^2) additions instead of O(n^2) hash
/// mixes — the lookup path of IncrementalRta::analyze().
std::vector<ContextKey> bus_fingerprints(const KMatrix& km, const CanRtaConfig& cfg);

}  // namespace analysis
}  // namespace symcan

#pragma once

// Canonical what-if assumption presets used throughout the benches,
// examples and tests. These are the two framing assumption sets of the
// paper's Figure 5:
//
//  * best case  — "ignoring bus errors": unstuffed frame lengths, no
//    faults, deadline = period;
//  * worst case — "burst bus errors, bit stuffing, and the minimum
//    re-arrival time as a deadline".

#include <memory>

#include "symcan/analysis/can_rta.hpp"
#include "symcan/analysis/error_model.hpp"

namespace symcan {

/// Figure 5 "best case" assumption set.
inline CanRtaConfig best_case_assumptions() {
  CanRtaConfig cfg;
  cfg.worst_case_stuffing = false;
  cfg.errors = std::make_shared<NoErrors>();
  cfg.deadline_override = DeadlinePolicy::kPeriod;
  return cfg;
}

/// Figure 5 "worst case" assumption set. The burst model (one 4-fault
/// burst per 25 ms) is the calibrated stand-in for the paper's
/// (undisclosed) field error data.
inline CanRtaConfig worst_case_assumptions() {
  CanRtaConfig cfg;
  cfg.worst_case_stuffing = true;
  cfg.errors = std::make_shared<BurstErrors>(Duration::ms(25), 4);
  cfg.deadline_override = DeadlinePolicy::kMinReArrival;
  return cfg;
}

}  // namespace symcan

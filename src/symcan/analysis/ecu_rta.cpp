#include "symcan/analysis/ecu_rta.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <vector>

#include "symcan/analysis/columnar.hpp"
#include "symcan/obs/obs.hpp"

namespace symcan {

namespace {

template <typename F>
Duration fixed_point(Duration x0, Duration horizon, std::int64_t& iterations, F&& f) {
  Duration x = x0;
  for (;;) {
    ++iterations;
    const Duration next = f(x);
    if (next == x) return x;
    if (next > horizon) return Duration::infinite();
    assert(next > x);
    x = next;
  }
}

Duration demand(const Task& t) { return t.wcet + t.os_overhead; }

}  // namespace

bool EcuResult::all_schedulable() const { return miss_count() == 0; }

std::size_t EcuResult::miss_count() const {
  std::size_t n = 0;
  for (const auto& t : tasks)
    if (!t.schedulable) ++n;
  return n;
}

EcuRta::EcuRta(std::vector<Task> tasks, Duration horizon)
    : tasks_{std::move(tasks)}, horizon_{horizon} {
  for (const auto& t : tasks_) {
    if (t.name.empty()) throw std::invalid_argument("EcuRta: task with empty name");
    if (t.wcet < t.bcet)
      throw std::invalid_argument("EcuRta: task '" + t.name + "' has wcet < bcet");
    if (t.wcet <= Duration::zero())
      throw std::invalid_argument("EcuRta: task '" + t.name + "' has non-positive wcet");
  }
  // Unique priorities within the interrupt class and within the task
  // classes (preemptive and cooperative tasks share one priority space).
  auto check_unique = [&](bool interrupts) {
    std::vector<int> prios;
    for (const auto& t : tasks_)
      if ((t.sched == SchedClass::kInterrupt) == interrupts) prios.push_back(t.priority);
    std::sort(prios.begin(), prios.end());
    if (std::adjacent_find(prios.begin(), prios.end()) != prios.end())
      throw std::invalid_argument("EcuRta: duplicate priorities");
  };
  check_unique(true);
  check_unique(false);
}

bool EcuRta::preempts(const Task& hp, const Task& lp) const {
  // Interrupts beat all tasks; among same class-space, lower number wins.
  const bool hp_isr = hp.sched == SchedClass::kInterrupt;
  const bool lp_isr = lp.sched == SchedClass::kInterrupt;
  if (hp_isr && !lp_isr) return true;
  if (!hp_isr && lp_isr) return false;
  return hp.priority < lp.priority;
}

Duration EcuRta::blocking_for(std::size_t index) const {
  // Longest non-preemptible segment of any lower-priority cooperative
  // task. Interrupts can also be held off by cooperative segments on
  // typical OSEK implementations only if interrupts are masked; we assume
  // unmasked ISRs (no blocking for ISRs).
  const Task& me = tasks_[index];
  if (me.sched == SchedClass::kInterrupt) return Duration::zero();
  Duration b = Duration::zero();
  for (std::size_t j = 0; j < tasks_.size(); ++j) {
    if (j == index) continue;
    const Task& other = tasks_[j];
    if (other.sched != SchedClass::kCooperativeTask) continue;
    if (!preempts(me, other)) continue;  // only lower-priority tasks block
    b = max(b, other.effective_segment());
  }
  return b;
}

TaskResult EcuRta::analyze_task(std::size_t index) const {
  if (index >= tasks_.size()) throw std::out_of_range("EcuRta::analyze_task: bad index");
  const Task& me = tasks_[index];

  TaskResult res;
  res.name = me.name;
  res.bcrt = me.bcet;
  res.deadline = me.deadline;

  const Duration blocking = blocking_for(index);
  res.blocking = blocking;
  const Duration c_me = demand(me);

  std::vector<std::pair<EventModel, Duration>> hp;
  for (std::size_t j = 0; j < tasks_.size(); ++j) {
    if (j == index) continue;
    if (preempts(tasks_[j], me)) hp.emplace_back(tasks_[j].activation, demand(tasks_[j]));
  }
  const auto hp_interference = [&](Duration w) {
    Duration total = Duration::zero();
    for (const auto& [em, c] : hp) total += em.eta_plus(w) * c;
    return total;
  };

  const EventModel& em_me = me.activation;
  std::int64_t iterations = 0;
  const Duration busy = fixed_point(blocking + c_me, horizon_, iterations, [&](Duration t) {
    return blocking + em_me.eta_plus(t) * c_me + hp_interference(t);
  });
  res.fixedpoint_iterations = iterations;
  if (busy.is_infinite()) {
    res.diverged = true;
    res.schedulable = false;
    res.busy_period = Duration::infinite();
    return res;
  }
  res.busy_period = busy;

  const std::int64_t q_max = em_me.eta_plus(busy);
  res.instances = q_max;
  Duration wcrt = Duration::zero();
  for (std::int64_t q = 0; q < q_max; ++q) {
    // Preemptive completion-time analysis: instance q completes when
    // blocking + (q+1) own demands + all higher-priority demand released
    // up to that point has been served.
    const Duration w =
        fixed_point(blocking + (q + 1) * c_me, horizon_, iterations, [&](Duration t) {
          return blocking + (q + 1) * c_me + hp_interference(t);
        });
    res.fixedpoint_iterations = iterations;
    if (w.is_infinite()) {
      res.diverged = true;
      res.schedulable = false;
      res.wcrt = Duration::infinite();
      return res;
    }
    wcrt = max(wcrt, w - em_me.delta_min(q + 1));
    if (w <= em_me.delta_min(q + 2)) break;  // busy period drained
  }
  res.wcrt = wcrt;
  res.schedulable = res.deadline.is_infinite() ? true : wcrt <= res.deadline;
  return res;
}

EcuResult EcuRta::analyze() const {
  SYMCAN_OBS_SPAN("rta.ecu.analyze");
  EcuResult out;
  out.tasks.reserve(tasks_.size());
  double u = 0;
  for (const auto& t : tasks_) u += demand(t).as_s() / t.activation.period().as_s();
  out.utilization = u;

  // Columnar whole-ECU path: resolve every task's demand, blocking and
  // preemptor set into contiguous columns once, then run each fixed
  // point allocation-free. Bit-identical to the analyze_task() loop —
  // hp rows stay in task-index order, exactly as analyze_task() collects
  // them (the layout-differential suite pins the equality).
  const std::size_t n = tasks_.size();
  std::vector<Duration> cost(n), blocking(n), act_p(n), act_j(n), act_d(n);
  std::vector<std::size_t> hp_begin;
  hp_begin.reserve(n + 1);
  std::vector<Duration> hp_p, hp_j, hp_d, hp_cost;
  for (std::size_t i = 0; i < n; ++i) {
    cost[i] = demand(tasks_[i]);
    blocking[i] = blocking_for(i);
    act_p[i] = tasks_[i].activation.period();
    act_j[i] = tasks_[i].activation.jitter();
    act_d[i] = tasks_[i].activation.min_distance();
    hp_begin.push_back(hp_p.size());
    for (std::size_t k = 0; k < n; ++k) {
      if (k == i) continue;
      if (!preempts(tasks_[k], tasks_[i])) continue;
      hp_p.push_back(tasks_[k].activation.period());
      hp_j.push_back(tasks_[k].activation.jitter());
      hp_d.push_back(tasks_[k].activation.min_distance());
      hp_cost.push_back(demand(tasks_[k]));
    }
  }
  hp_begin.push_back(hp_p.size());

  for (std::size_t i = 0; i < n; ++i) {
    const Task& me = tasks_[i];
    TaskResult res;
    res.name = me.name;
    res.bcrt = me.bcet;
    res.deadline = me.deadline;
    res.blocking = blocking[i];
    const Duration b = blocking[i];
    const Duration c_me = cost[i];
    const std::size_t lo = hp_begin[i];
    const std::size_t hi = hp_begin[i + 1];
    const auto hp_interference = [&](Duration w) {
      Duration total = Duration::zero();
      for (std::size_t k = lo; k < hi; ++k)
        total += analysis::columnar_eta_plus(w, hp_p[k], hp_j[k], hp_d[k]) * hp_cost[k];
      return total;
    };

    std::int64_t iterations = 0;
    const Duration busy = fixed_point(b + c_me, horizon_, iterations, [&](Duration t) {
      return b + analysis::columnar_eta_plus(t, act_p[i], act_j[i], act_d[i]) * c_me +
             hp_interference(t);
    });
    res.fixedpoint_iterations = iterations;
    if (busy.is_infinite()) {
      res.diverged = true;
      res.schedulable = false;
      res.busy_period = Duration::infinite();
      out.tasks.push_back(std::move(res));
      continue;
    }
    res.busy_period = busy;

    const std::int64_t q_max = analysis::columnar_eta_plus(busy, act_p[i], act_j[i], act_d[i]);
    res.instances = q_max;
    Duration wcrt = Duration::zero();
    bool window_diverged = false;
    for (std::int64_t q = 0; q < q_max; ++q) {
      const Duration w = fixed_point(b + (q + 1) * c_me, horizon_, iterations, [&](Duration t) {
        return b + (q + 1) * c_me + hp_interference(t);
      });
      res.fixedpoint_iterations = iterations;
      if (w.is_infinite()) {
        res.diverged = true;
        res.schedulable = false;
        res.wcrt = Duration::infinite();
        window_diverged = true;
        break;
      }
      wcrt = max(wcrt, w - analysis::columnar_delta_min(q + 1, act_p[i], act_j[i], act_d[i]));
      if (w <= analysis::columnar_delta_min(q + 2, act_p[i], act_j[i], act_d[i])) break;
    }
    if (!window_diverged) {
      res.wcrt = wcrt;
      res.schedulable = res.deadline.is_infinite() ? true : wcrt <= res.deadline;
    }
    out.tasks.push_back(std::move(res));
  }
  if (obs::enabled()) {
    auto& m = obs::metrics();
    std::int64_t total_iters = 0;
    std::int64_t diverged = 0;
    auto& per_task = m.histogram("rta.ecu.iterations_per_task");
    for (const auto& r : out.tasks) {
      total_iters += r.fixedpoint_iterations;
      diverged += r.diverged ? 1 : 0;
      per_task.observe(static_cast<double>(r.fixedpoint_iterations));
    }
    m.counter("rta.ecu.analyses").add(1);
    m.counter("rta.ecu.tasks").add(static_cast<std::int64_t>(out.tasks.size()));
    m.counter("rta.ecu.fixedpoint_iterations").add(total_iters);
    m.counter("rta.ecu.diverged").add(diverged);
  }
  return out;
}

}  // namespace symcan

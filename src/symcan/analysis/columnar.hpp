#pragma once

// Columnar (structure-of-arrays) form of the busy-period solve core.
//
// build_message_context() + solve_message() resolve and solve one message
// at a time through an object graph: a MessageContext owns its own hp
// vector, its own offset-group member lists and its own strings, so every
// solve on the hot path (GA fitness grids, sweeps, `symcan serve`) pays a
// dozen allocations before the fixed point even starts. pack_bus()
// instead resolves a *whole* K-Matrix + config into contiguous columns in
// one pass:
//
//   * per-message scalars (cost, bcrt, deadline, blocking, max_retx) and
//     the activation event-model parameters as parallel arrays;
//   * the higher-priority interference sets as one shared CSR block
//     (hp_begin[i] .. hp_begin[i+1]) of (period, jitter, dmin, cost)
//     columns;
//   * the offset groups pre-built into TtGroups (CSR again), with the
//     groups whose hyperperiod is unbounded already expanded into their
//     offset-blind fallback entries at the tail of the hp rows.
//
// solve_columnar() then runs the identical Davis/Tindell fixed point over
// the columns with zero heap traffic per solve. Bit-exactness contract:
// for every message i,
//
//   solve_columnar(pack_bus(km, cfg), i)  ==  solve_message(
//       build_message_context(km, cfg, i))
//
// in every field, iteration counts included (the name/id identity is
// patched by the caller; it never reaches the solver). This holds because
// the pack resolves exactly the values build_message_context() resolves,
// in exactly the legacy summation order: the hp rows are canonically
// sorted (period, jitter, min distance, cost) with group-build-fallback
// members appended after, groups are built from canonically sorted member
// lists in canonical group order, and every eta+/delta_min evaluation
// replicates EventModel verbatim on normalized parameters. All sums are
// saturating integer arithmetic over non-negative terms, so the layout
// change cannot even in principle introduce rounding drift — the
// layout-differential suite (tests/analysis/columnar_differential_test
// .cpp) pins the equality across assumption presets and seeded matrices
// anyway.
//
// Arena lifetime: a ColumnarBus is a bundle of vectors that only ever
// grow; pack_bus() into an existing instance clear()s and refills them,
// reusing capacity. Hot loops keep one thread_local instance per worker
// (IncrementalRta::analyze() packs lazily on the first cache miss), so
// steady-state re-analysis performs no allocation at all — the arena the
// per-solve scratch lives in is the packed bus itself.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "symcan/analysis/error_model.hpp"
#include "symcan/analysis/tt_schedule.hpp"
#include "symcan/can/frame.hpp"
#include "symcan/util/time.hpp"

namespace symcan {

struct CanRtaConfig;
struct MessageResult;
class KMatrix;

namespace analysis {

/// EventModel::eta_plus on raw columns. The parameters are stored
/// through the EventModel getters at pack time, so the invariants
/// (p > 0, j >= 0, 0 <= d <= p) hold by construction and this replicates
/// event_model.cpp operation for operation — inline, so the fixed-point
/// loop reads three contiguous lanes instead of chasing an object.
inline std::int64_t columnar_eta_plus(Duration dt, Duration p, Duration j, Duration d) {
  if (dt <= Duration::zero()) return 0;
  const std::int64_t periodic_bound = ceil_div(dt + j, p);
  if (d <= Duration::zero()) return periodic_bound;
  const std::int64_t burst_bound = ceil_div(dt, d) + 1;
  return std::min(periodic_bound, burst_bound);
}

/// EventModel::delta_min on raw columns; same contract as above.
inline Duration columnar_delta_min(std::int64_t n, Duration p, Duration j, Duration d) {
  if (n <= 1) return Duration::zero();
  const Duration periodic = (n - 1) * p - j;
  const Duration burst = (n - 1) * d;
  return max(max(periodic, burst), Duration::zero());
}

/// One whole bus resolved under one config, ready to solve. Index-
/// parallel to KMatrix::messages().
struct ColumnarBus {
  BitTiming timing{500'000};
  Duration horizon = Duration::s(10);
  std::shared_ptr<const ErrorModel> errors;

  // Per-message scalar columns.
  std::vector<Duration> cost;      ///< C_m under the configured stuffing.
  std::vector<Duration> bcrt;      ///< Unstuffed frame time.
  std::vector<Duration> deadline;  ///< Resolved against any override.
  std::vector<Duration> blocking;  ///< Bus + committed intra-node blocking.
  std::vector<Duration> max_retx;  ///< Largest retransmittable frame.
  // Activation event model, already normalized (dmin <= period).
  std::vector<Duration> act_period;
  std::vector<Duration> act_jitter;
  std::vector<Duration> act_dmin;

  /// Higher-priority interference CSR: message i's entries occupy
  /// [hp_begin[i], hp_begin[i+1]) of the four column arrays — the
  /// canonically sorted event-model interferers first, then the
  /// offset-blind fallbacks of any group whose hyperperiod was
  /// unbounded (in canonical group/member order, matching the legacy
  /// solver's append order).
  std::vector<std::size_t> hp_begin;
  std::vector<Duration> hp_period;
  std::vector<Duration> hp_jitter;
  std::vector<Duration> hp_dmin;
  std::vector<Duration> hp_cost;

  /// Pre-built offset groups CSR: message i's groups occupy
  /// [tt_begin[i], tt_begin[i+1]) of tt_groups, in canonical group
  /// order. Building happens once per pack instead of once per solve —
  /// TtGroup::interference() is const and safe to share.
  std::vector<std::size_t> tt_begin;
  std::vector<TtGroup> tt_groups;

  std::size_t size() const { return cost.size(); }

  /// Drop all rows, keep capacity (the arena reuse path).
  void clear();
};

/// Resolve every message of `km` under `cfg` into `out`, reusing its
/// capacity. Mirrors build_message_context() for all indices at once in
/// one O(n^2) pass (the same asymptotics one legacy context build pays).
void pack_bus(const KMatrix& km, const CanRtaConfig& cfg, ColumnarBus& out);

/// Convenience: pack into a fresh instance.
ColumnarBus pack_bus(const KMatrix& km, const CanRtaConfig& cfg);

/// Run the busy-period fixed point on packed message `i` using
/// `bus.errors`. Allocation-free; the result's name/id are left empty for
/// the caller to patch (they never influence the solver).
MessageResult solve_columnar(const ColumnarBus& bus, std::size_t i);

/// Same solve with the error model replaced per call — the grid-sweep
/// path, where only the fault assumption varies between points and the
/// packed columns stay valid (the error model enters the solver solely
/// through its overhead term).
MessageResult solve_columnar(const ColumnarBus& bus, std::size_t i, const ErrorModel& errors);

}  // namespace analysis
}  // namespace symcan

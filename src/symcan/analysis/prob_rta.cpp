#include "symcan/analysis/prob_rta.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

#include "symcan/can/kmatrix.hpp"
#include "symcan/obs/obs.hpp"
#include "symcan/util/parallel.hpp"

namespace symcan::analysis {

namespace {

/// SplitMix64-style chain (same shape as the error-model fingerprints).
std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h += v + 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

constexpr std::int64_t kPpmOne = 1'000'000;

/// 128-bit accumulator for weight products: each product is < 2^64, but
/// sums of products need the headroom. __extension__ silences -Wpedantic
/// (the toolchain targets x86-64/aarch64 gcc/clang, which all have it).
__extension__ typedef unsigned __int128 u128;

/// Binomial(n, p) in fixed point by iterated Bernoulli convolution.
/// Each step multiplies in unsigned __int128 and floor-divides by kOne;
/// the rounding residue lands on the highest occupied count — mass only
/// moves toward *more* faults, so every tail P(K >= j) over-approximates
/// the exact binomial tail (conservative). p in {0, kOne} is exact.
/// `convolutions`, when non-null, counts the Bernoulli steps performed.
std::vector<std::uint64_t> binomial_weights(std::size_t n, std::uint64_t p,
                                            std::int64_t* convolutions) {
  std::vector<std::uint64_t> w(n + 1, 0);
  w[0] = Pmf::kOne;
  const std::uint64_t q = Pmf::kOne - p;
  for (std::size_t step = 0; step < n; ++step) {
    std::vector<u128> wide(step + 2, 0);
    for (std::size_t i = 0; i <= step; ++i) {
      wide[i] += static_cast<u128>(w[i]) * q;
      wide[i + 1] += static_cast<u128>(w[i]) * p;
    }
    std::uint64_t total = 0;
    std::size_t top = 0;
    for (std::size_t i = 0; i <= step + 1; ++i) {
      w[i] = static_cast<std::uint64_t>(wide[i] >> 32);
      total += w[i];
      if (wide[i] > 0) top = i;
    }
    w[top] += Pmf::kOne - total;  // residue-to-top: conservative
    if (convolutions) ++*convolutions;
  }
  return w;
}

}  // namespace

// --- Pmf -----------------------------------------------------------------

Pmf Pmf::point(Duration v) {
  Pmf p;
  p.atoms_.push_back({v, kOne});
  return p;
}

Pmf Pmf::two_point(Duration low, Duration high, std::uint64_t high_weight) {
  if (high_weight > kOne) throw std::invalid_argument("Pmf::two_point: weight > kOne");
  if (low > high) throw std::invalid_argument("Pmf::two_point: low > high");
  if (low == high || high_weight == kOne) return point(high);
  if (high_weight == 0) return point(low);
  Pmf p;
  p.atoms_.push_back({low, kOne - high_weight});
  p.atoms_.push_back({high, high_weight});
  return p;
}

Pmf Pmf::from_atoms(std::vector<Atom> atoms) {
  std::map<std::int64_t, std::uint64_t> merged;
  std::map<std::int64_t, Duration> values;  // preserves infinite sentinels
  for (const auto& a : atoms) {
    if (a.weight == 0) continue;
    merged[a.value.count_ns()] += a.weight;
    values.emplace(a.value.count_ns(), a.value);
  }
  Pmf p;
  for (const auto& [ns, w] : merged) p.atoms_.push_back({values.at(ns), w});
  p.validate();
  return p;
}

std::uint64_t Pmf::mass_above(Duration v) const {
  std::uint64_t mass = 0;
  for (auto it = atoms_.rbegin(); it != atoms_.rend() && it->value > v; ++it) mass += it->weight;
  return mass;
}

Duration Pmf::quantile(std::uint64_t rank) const {
  if (rank > kOne) throw std::invalid_argument("Pmf::quantile: rank > kOne");
  std::uint64_t cum = 0;
  for (const auto& a : atoms_) {
    cum += a.weight;
    if (cum >= rank) return a.value;
  }
  return atoms_.back().value;  // unreachable: cum ends at exactly kOne
}

Pmf Pmf::clamped_min(Duration floor) const {
  if (atoms_.front().value >= floor) return *this;
  std::vector<Atom> out;
  std::uint64_t folded = 0;
  for (const auto& a : atoms_) {
    if (a.value < floor)
      folded += a.weight;
    else
      out.push_back(a);
  }
  if (folded > 0) {
    if (!out.empty() && out.front().value == floor) {
      out.front().weight += folded;
    } else {
      out.insert(out.begin(), Atom{floor, folded});
    }
  }
  Pmf p;
  p.atoms_ = std::move(out);
  p.validate();
  return p;
}

std::uint64_t Pmf::weight_from_ppm(std::int64_t ppm) {
  if (ppm < 0 || ppm > kPpmOne) throw std::invalid_argument("weight_from_ppm: ppm out of range");
  // Ceiling: quantization can only add mass to the modelled event, and
  // every event here is "the worst case materializes" — conservative.
  return (static_cast<std::uint64_t>(ppm) * kOne + (kPpmOne - 1)) / kPpmOne;
}

std::int64_t Pmf::ppm_from_weight(std::uint64_t weight) {
  if (weight > kOne) throw std::invalid_argument("ppm_from_weight: weight > kOne");
  return static_cast<std::int64_t>((weight * static_cast<std::uint64_t>(kPpmOne) + kOne - 1) >>
                                   32);
}

void Pmf::validate() const {
  if (atoms_.empty()) throw std::logic_error("Pmf: empty support");
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    if (atoms_[i].weight == 0) throw std::logic_error("Pmf: zero-weight atom");
    if (i > 0 && !(atoms_[i - 1].value < atoms_[i].value))
      throw std::logic_error("Pmf: atoms not strictly ascending");
    total += atoms_[i].weight;
  }
  if (total != kOne) throw std::logic_error("Pmf: mass does not sum to kOne");
}

Pmf convolve(const Pmf& a, const Pmf& b) {
  // Point masses shift exactly — no products to round.
  if (b.degenerate()) {
    const Duration shift = b.atoms_.front().value;
    if (shift == Duration::zero()) return a;
    Pmf out = a;
    for (auto& atom : out.atoms_) atom.value = atom.value + shift;
    return out;
  }
  if (a.degenerate()) return convolve(b, a);

  std::map<std::int64_t, u128> wide;
  for (const auto& x : a.atoms_)
    for (const auto& y : b.atoms_)
      wide[(x.value + y.value).count_ns()] += static_cast<u128>(x.weight) * y.weight;

  Pmf out;
  std::uint64_t total = 0;
  for (const auto& [ns, w] : wide) {
    const auto scaled = static_cast<std::uint64_t>(w >> 32);
    total += scaled;
    out.atoms_.push_back({Duration::ns(ns), scaled});
  }
  // Residue-to-top: the floor-division losses (< 1 ulp per output atom)
  // all land on the maximum-value atom, so the rounded distribution
  // stochastically dominates the exact one.
  out.atoms_.back().weight += Pmf::kOne - total;
  out.atoms_.erase(std::remove_if(out.atoms_.begin(), out.atoms_.end(),
                                  [](const Pmf::Atom& atom) { return atom.weight == 0; }),
                   out.atoms_.end());
  out.validate();
  return out;
}

// --- configuration -------------------------------------------------------

void validate_prob_config(const ProbRtaConfig& cfg) {
  const auto check_ppm = [](std::int64_t ppm, const char* what) {
    if (ppm < 0 || ppm > kPpmOne)
      throw std::invalid_argument(std::string{what} + " must lie in [0, 1000000] ppm");
  };
  check_ppm(cfg.fault_ppm, "fault probability");
  check_ppm(cfg.stuff_ppm, "stuffing probability");
  check_ppm(cfg.jitter_ppm, "jitter probability");
  if (cfg.max_rungs < 1 || cfg.max_rungs > 4096)
    throw std::invalid_argument("max_rungs must lie in [1, 4096]");
  if (cfg.parallelism < 0) throw std::invalid_argument("parallelism must be >= 0");
  if (cfg.tile < 0) throw std::invalid_argument("tile must be >= 0");
}

std::uint64_t prob_config_fingerprint(const ProbRtaConfig& cfg) {
  std::uint64_t h = mix64(0x50b, static_cast<std::uint64_t>(cfg.fault_ppm));
  h = mix64(h, static_cast<std::uint64_t>(cfg.stuff_ppm));
  h = mix64(h, static_cast<std::uint64_t>(cfg.jitter_ppm));
  return mix64(h, static_cast<std::uint64_t>(cfg.max_rungs));
}

// --- rung ladder ---------------------------------------------------------

RungLadder solve_rung_ladder(const MessageContext& ctx, std::int64_t max_rungs) {
  RungLadder ladder;
  ladder.det = solve_message(ctx);
  ladder.stuff_savings = ctx.cost - ctx.bcrt;
  ladder.jitter = ctx.activation.jitter();
  if (ladder.det.diverged || ladder.det.wcrt.is_infinite()) {
    ladder.rungs = {ladder.det.wcrt};
    return ladder;
  }
  // Fault counts the configured model admits inside the deterministic
  // busy period: every materialized-fault pattern the probabilistic run
  // can see is conditioned on one of these counts.
  const std::int64_t admitted = ctx.errors->max_faults(ladder.det.busy_period + ctx.cost);
  const std::int64_t k_stop = std::min(admitted, max_rungs);
  ladder.rungs.reserve(static_cast<std::size_t>(k_stop) + 1);
  Duration prev = Duration::zero();
  MessageContext rung_ctx = ctx;
  for (std::int64_t k = 0; k < k_stop; ++k) {
    rung_ctx.errors = std::make_shared<FixedFaults>(k);
    const MessageResult r = solve_message(rung_ctx);
    // Clamp into [previous rung, deterministic WCRT]: monotone ladder,
    // and det.wcrt bounds any run the deterministic model admits, so the
    // clamp is sound even when a conditional fixed point diverges.
    Duration v = r.diverged || r.wcrt.is_infinite() ? ladder.det.wcrt
                                                    : std::min(r.wcrt, ladder.det.wcrt);
    v = std::max(v, prev);
    ladder.rungs.push_back(v);
    prev = v;
  }
  // Top rung: the deterministic WCRT itself — the distribution's
  // provable upper support point.
  ladder.rungs.push_back(ladder.det.wcrt);
  return ladder;
}

ProbMessageResult mix_ladder(const RungLadder& ladder, const ProbRtaConfig& cfg) {
  ProbMessageResult out;
  out.det = ladder.det;
  out.rungs = ladder.rungs;
  if (out.det.diverged || out.det.wcrt.is_infinite()) {
    out.response = Pmf::point(out.det.wcrt);
    out.miss_weight = out.response.mass_above(out.det.deadline);
    return out;
  }

  const std::size_t k_stop = ladder.rungs.size() - 1;
  const std::uint64_t fault_w = Pmf::weight_from_ppm(cfg.fault_ppm);
  const std::vector<std::uint64_t> counts =
      binomial_weights(k_stop, fault_w, &out.convolutions);
  std::vector<Pmf::Atom> mixture;
  mixture.reserve(counts.size());
  for (std::size_t k = 0; k < counts.size(); ++k)
    mixture.push_back({ladder.rungs[k], counts[k]});
  Pmf response = Pmf::from_atoms(std::move(mixture));

  // Luck deltas: with probability (1 - p) the worst case does not
  // materialize and the response comes in early by the saving. Values
  // are non-positive, so residue-to-top pushes mass toward zero saving
  // — the conservative direction.
  if (ladder.stuff_savings > Duration::zero()) {
    response = convolve(response, Pmf::two_point(Duration::zero() - ladder.stuff_savings,
                                                 Duration::zero(),
                                                 Pmf::weight_from_ppm(cfg.stuff_ppm)));
    ++out.convolutions;
  }
  if (ladder.jitter > Duration::zero()) {
    response = convolve(response, Pmf::two_point(Duration::zero() - ladder.jitter,
                                                 Duration::zero(),
                                                 Pmf::weight_from_ppm(cfg.jitter_ppm)));
    ++out.convolutions;
  }
  // Responses below the best-case response time are physically
  // impossible; fold that mass back onto the floor.
  response = response.clamped_min(out.det.bcrt);

  out.response = std::move(response);
  out.miss_weight = out.response.mass_above(out.det.deadline);
  return out;
}

std::size_t ProbBusResult::miss_count(std::uint64_t threshold_weight) const {
  std::size_t n = 0;
  for (const auto& m : messages)
    if (m.miss_weight > threshold_weight) ++n;
  return n;
}

// --- entry points --------------------------------------------------------

ProbMessageResult analyze_message_prob(const KMatrix& km, const ProbRtaConfig& cfg,
                                       std::size_t index) {
  validate_prob_config(cfg);
  const MessageContext ctx = build_message_context(km, cfg.rta, index);
  return mix_ladder(solve_rung_ladder(ctx, cfg.max_rungs), cfg);
}

ProbBusResult analyze_prob(const KMatrix& km, const ProbRtaConfig& cfg) {
  validate_prob_config(cfg);
  km.validate();
  ProbBusResult out;
  ParallelExecutor exec{cfg.parallelism};
  {
    SYMCAN_OBS_SPAN("prob.analyze");
    out.messages = exec.parallel_map_indexed_tiled(
        km.size(), static_cast<std::size_t>(cfg.tile),
        [&](std::size_t i) { return analyze_message_prob(km, cfg, i); });
  }
  out.utilization = km.utilization(cfg.rta.worst_case_stuffing);
  if (obs::enabled()) {
    std::int64_t convolutions = 0;
    for (const auto& m : out.messages) convolutions += m.convolutions;
    obs::count("prob.messages", static_cast<std::int64_t>(out.messages.size()));
    obs::count("prob.convolutions", convolutions);
  }
  return out;
}

ProbProvenance explain_message_prob(const KMatrix& km, const ProbRtaConfig& cfg,
                                    std::size_t index) {
  validate_prob_config(cfg);
  ProbProvenance out;
  out.det = explain_message(km, cfg.rta, index);

  // Re-walk the ladder with the tracing solver (identical code path, so
  // the traced rungs ARE the rungs mix_ladder sees).
  const MessageContext ctx = build_message_context(km, cfg.rta, index);
  RungLadder ladder;
  ladder.det = solve_message(ctx);
  ladder.stuff_savings = ctx.cost - ctx.bcrt;
  ladder.jitter = ctx.activation.jitter();
  if (ladder.det.diverged || ladder.det.wcrt.is_infinite()) {
    ladder.rungs = {ladder.det.wcrt};
  } else {
    const std::int64_t admitted = ctx.errors->max_faults(ladder.det.busy_period + ctx.cost);
    const std::int64_t k_stop = std::min(admitted, cfg.max_rungs);
    Duration prev = Duration::zero();
    MessageContext rung_ctx = ctx;
    for (std::int64_t k = 0; k < k_stop; ++k) {
      rung_ctx.errors = std::make_shared<FixedFaults>(k);
      SolveTrace trace;
      const MessageResult r = solve_message(rung_ctx, trace);
      Duration v = r.diverged || r.wcrt.is_infinite() ? ladder.det.wcrt
                                                      : std::min(r.wcrt, ladder.det.wcrt);
      v = std::max(v, prev);
      out.rungs.push_back({k, v, r.wcrt, r.fixedpoint_iterations, trace.critical_instance,
                           trace.busy_iterates.size()});
      ladder.rungs.push_back(v);
      prev = v;
    }
    ladder.rungs.push_back(ladder.det.wcrt);
    out.rungs.push_back({k_stop, ladder.det.wcrt, ladder.det.wcrt,
                         ladder.det.fixedpoint_iterations, out.det.critical_instance,
                         out.det.busy_iterates.size()});
  }
  out.prob = mix_ladder(ladder, cfg);
  return out;
}

std::string prob_provenance_to_text(const ProbProvenance& p) {
  std::ostringstream os;
  os << "message " << p.det.name << " (id " << p.det.id << ")\n";
  os << "  deterministic wcrt " << to_string(p.det.result.wcrt) << ", deadline "
     << to_string(p.det.result.deadline) << "\n";
  os << "  miss probability " << p.prob.miss_ppm() << " ppm ("
     << p.prob.response.atoms().size() << " atoms, upper support "
     << to_string(p.prob.response.max_value()) << ")\n";
  os << "  fault rungs:\n";
  for (const auto& r : p.rungs)
    os << "    k=" << r.faults << "  R_k " << to_string(r.wcrt) << "  (iterations "
       << r.fixedpoint_iterations << ", q* " << r.critical_instance << ")\n";
  return os.str();
}

}  // namespace symcan::analysis

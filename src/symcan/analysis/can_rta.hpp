#pragma once

// Worst-case response-time analysis for CAN (fixed-priority,
// non-preemptive), in the corrected busy-period form of Davis, Burns,
// Bril & Lukkien (Real-Time Systems 35, 2007), extended with
//
//  * activation jitter and burst (standard event models),
//  * fault-recovery interference via an ErrorModel,
//  * intra-node blocking for basicCAN controllers (committed transmit
//    buffers cannot be aborted, so a frame can additionally wait for
//    same-node lower-priority frames already handed to the controller),
//  * best-case response times (needed for output-jitter propagation in
//    the compositional engine).
//
// The per-message verdict follows paper Section 3.2: "to guarantee that a
// message X will never get lost (overwritten in the sender's buffer), its
// maximum response time must not exceed its minimum re-arrival time (the
// deadline)".

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "symcan/analysis/error_model.hpp"
#include "symcan/analysis/tt_schedule.hpp"
#include "symcan/can/kmatrix.hpp"
#include "symcan/model/event_model.hpp"
#include "symcan/util/time.hpp"

namespace symcan {

/// Analysis configuration: the modelling assumptions a what-if experiment
/// varies (paper Section 4: "a set of experiments, each based on different
/// assumptions on the missing information").
struct CanRtaConfig {
  /// Use worst-case stuffed frame lengths (true) or unstuffed (false).
  bool worst_case_stuffing = true;

  /// Bus fault model; never null.
  std::shared_ptr<const ErrorModel> errors = std::make_shared<NoErrors>();

  /// When set, overrides the deadline policy of every message that does
  /// not carry an explicit deadline — Figure 5 compares "D = period"
  /// (best case) against "D = min re-arrival time" (worst case) across
  /// the whole matrix. Explicit deadlines are hard specifications and are
  /// never overridden.
  std::optional<DeadlinePolicy> deadline_override;

  /// Model intra-node priority inversion of basicCAN controllers.
  bool model_controller_queues = true;

  /// Exploit TimeTable offsets (paper Section 5.2): interference from a
  /// sender's offset-scheduled messages is bounded over its schedule's
  /// hyperperiod instead of assuming simultaneous release. Disable to get
  /// the offset-blind bound (useful for the ablation).
  bool use_offsets = true;

  /// Busy periods longer than this are declared divergent (message
  /// unschedulable). Guards the fixed point when utilization plus error
  /// interference reaches 100 %.
  Duration horizon = Duration::s(10);
};

/// Result for one message.
struct MessageResult {
  std::string name;
  CanId id = 0;

  Duration wcrt = Duration::infinite();  ///< Worst-case response time.
  Duration bcrt = Duration::zero();      ///< Best-case response time.
  Duration deadline = Duration::infinite();
  Duration blocking = Duration::zero();  ///< Total blocking charged (bus + intra-node).

  /// Level-i busy-period length and the number of instances examined.
  Duration busy_period = Duration::zero();
  std::int64_t instances = 1;

  /// Total fixed-point iterations spent on this message (busy period plus
  /// all per-instance windows) — the convergence cost profilers care about.
  std::int64_t fixedpoint_iterations = 0;

  bool schedulable = false;  ///< wcrt <= deadline (a lost message otherwise).
  bool diverged = false;     ///< Fixed point hit the horizon.

  /// D - wcrt; negative when the deadline is missed.
  Duration slack() const { return deadline.is_infinite() ? Duration::infinite() : deadline - wcrt; }

  /// Output jitter for compositional propagation: J_out = J_in + (wcrt - bcrt).
  Duration response_jitter() const { return wcrt - bcrt; }
};

/// Whole-bus result.
struct BusResult {
  std::vector<MessageResult> messages;  ///< Same order as KMatrix::messages().
  double utilization = 0;               ///< Under the configured stuffing model.

  std::size_t miss_count() const;
  /// Fraction of messages missing their deadline — the y-axis of Figure 5.
  double miss_fraction() const;
  bool all_schedulable() const { return miss_count() == 0; }
};

/// Flush the per-message convergence counters of one whole-bus result to
/// the obs registry (no-op when observation is disabled). Shared between
/// CanRta::analyze() and IncrementalRta::analyze() so cached and fresh
/// runs surface comparable metrics.
void flush_rta_observations(const BusResult& out);

/// Analyzer bound to one K-Matrix and one configuration. Stateless after
/// construction; cheap to copy the config and re-run for what-if sweeps.
/// The matrix is stored by value so temporaries are safe to pass.
///
/// The per-message computation is build_message_context() + solve_message()
/// from rta_context.hpp — the shared busy-period core that
/// IncrementalRta memoizes. Use CanRta directly for one-shot analyses;
/// prefer IncrementalRta in hot loops that re-analyze edited matrices
/// (optimizers, sweeps, extensibility searches).
class CanRta {
 public:
  CanRta(KMatrix km, CanRtaConfig cfg);

  /// Analyze one message (index into KMatrix::messages()).
  MessageResult analyze_message(std::size_t index) const;

  /// Analyze every message.
  BusResult analyze() const;

  const CanRtaConfig& config() const { return cfg_; }

 private:
  KMatrix km_;
  CanRtaConfig cfg_;
};

}  // namespace symcan

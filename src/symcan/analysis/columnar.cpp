#include "symcan/analysis/columnar.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <tuple>

#include "symcan/analysis/can_rta.hpp"
#include "symcan/can/kmatrix.hpp"
#include "symcan/model/event_model.hpp"

namespace symcan::analysis {

namespace {

/// Same fixed point as rta_context.cpp's, minus the recorder — the
/// columnar path never explains, so the hooks would inline to nothing
/// anyway. Iteration counting and divergence handling are identical.
template <typename F>
Duration fixed_point(Duration x0, Duration horizon, std::int64_t& iterations, F&& f) {
  Duration x = x0;
  for (;;) {
    ++iterations;
    const Duration next = f(x);
    if (next == x) return x;
    if (next > horizon) return Duration::infinite();
    assert(next > x);
    x = next;
  }
}

Duration frame_time(const KMatrix& km, const CanRtaConfig& cfg, const CanMessage& m) {
  return m.wcet(km.timing(), cfg.worst_case_stuffing);
}

/// Deadline under cfg's override policy; mirrors effective_deadline() in
/// rta_context.cpp (the differential suite pins the two together).
Duration effective_deadline(const CanMessage& m, const CanRtaConfig& cfg) {
  const DeadlinePolicy policy =
      (!cfg.deadline_override || m.deadline_policy == DeadlinePolicy::kExplicit)
          ? m.deadline_policy
          : *cfg.deadline_override;
  switch (policy) {
    case DeadlinePolicy::kPeriod:
      return m.period;
    case DeadlinePolicy::kMinReArrival:
      return max(m.period - m.jitter, m.min_distance);
    case DeadlinePolicy::kExplicit:
      return m.explicit_deadline;
  }
  return Duration::infinite();
}

auto member_order_key(const TtGroup::Member& m) {
  return std::make_tuple(m.period.count_ns(), m.offset.count_ns(), m.jitter.count_ns(),
                         m.cost.count_ns());
}

}  // namespace

void ColumnarBus::clear() {
  cost.clear();
  bcrt.clear();
  deadline.clear();
  blocking.clear();
  max_retx.clear();
  act_period.clear();
  act_jitter.clear();
  act_dmin.clear();
  hp_begin.clear();
  hp_period.clear();
  hp_jitter.clear();
  hp_dmin.clear();
  hp_cost.clear();
  tt_begin.clear();
  tt_groups.clear();
}

void pack_bus(const KMatrix& km, const CanRtaConfig& cfg, ColumnarBus& out) {
  const auto& msgs = km.messages();
  const std::size_t n = msgs.size();

  out.clear();
  out.timing = km.timing();
  out.horizon = cfg.horizon;
  out.errors = cfg.errors;

  out.cost.reserve(n);
  out.bcrt.reserve(n);
  out.deadline.reserve(n);
  out.blocking.reserve(n);
  out.max_retx.reserve(n);
  out.act_period.reserve(n);
  out.act_jitter.reserve(n);
  out.act_dmin.reserve(n);
  out.hp_begin.reserve(n + 1);
  out.tt_begin.reserve(n + 1);

  // Pre-pass, mirroring bus_fingerprints(): per message its rank, frame
  // time, sender index and normalized activation parameters, so every
  // pairwise step below is a compare plus a push.
  std::vector<const std::string*> senders;
  std::vector<std::uint64_t> rank(n);
  std::vector<std::size_t> sender_of(n);
  std::vector<char> is_tt(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    rank[k] = msgs[k].arbitration_rank();
    out.cost.push_back(frame_time(km, cfg, msgs[k]));
    out.bcrt.push_back(msgs[k].bcet(km.timing()));
    out.deadline.push_back(effective_deadline(msgs[k], cfg));
    const EventModel em = msgs[k].activation();
    out.act_period.push_back(em.period());
    out.act_jitter.push_back(em.jitter());
    out.act_dmin.push_back(em.min_distance());
    std::size_t s = senders.size();
    for (std::size_t j = 0; j < senders.size(); ++j)
      if (*senders[j] == msgs[k].sender) {
        s = j;
        break;
      }
    if (s == senders.size()) senders.push_back(&msgs[k].sender);
    sender_of[k] = s;
    is_tt[k] = cfg.use_offsets && msgs[k].tt_offset.has_value();
  }

  // Effective-rank resolution: basicCAN senders degrade every message to
  // the node's worst rank (what effective_rank() resolves one message at
  // a time).
  std::vector<std::uint64_t> sender_max_rank(senders.size(), 0);
  std::vector<char> sender_basic(senders.size(), 0);
  std::vector<int> sender_tx_buffers(senders.size(), 0);
  for (std::size_t s = 0; s < senders.size(); ++s) {
    const EcuNode* node = km.find_node(*senders[s]);
    sender_basic[s] = cfg.model_controller_queues && node != nullptr &&
                      node->controller == ControllerType::kBasicCan;
    sender_tx_buffers[s] = node != nullptr ? node->tx_buffers : 0;
  }
  for (std::size_t k = 0; k < n; ++k)
    sender_max_rank[sender_of[k]] = std::max(sender_max_rank[sender_of[k]], rank[k]);

  // Canonical hp order, established once: indices sorted by the legacy
  // quad (period, jitter, min distance, cost). Scanning interferers in
  // this order emits every message's hp rows already sorted, replacing n
  // per-message sorts with one global one. Ties carry identical quads,
  // so any tie order is bit-identical to the legacy per-message sort.
  std::vector<std::size_t> by_quad(n);
  for (std::size_t k = 0; k < n; ++k) by_quad[k] = k;
  const auto quad = [&](std::size_t k) {
    return std::make_tuple(out.act_period[k].count_ns(), out.act_jitter[k].count_ns(),
                           out.act_dmin[k].count_ns(), out.cost[k].count_ns());
  };
  std::sort(by_quad.begin(), by_quad.end(),
            [&](std::size_t a, std::size_t b) { return quad(a) < quad(b); });

  // Per-message scratch, reused across the loop (capacity only grows).
  std::vector<std::vector<TtGroup::Member>> group_members(senders.size());
  std::vector<std::size_t> group_order;
  std::vector<Duration> lp_frames;

  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t eff_rank =
        sender_basic[sender_of[i]] ? sender_max_rank[sender_of[i]] : rank[i];

    Duration bus_blocking = Duration::zero();
    Duration max_retx = out.cost[i];
    for (auto& g : group_members) g.clear();
    lp_frames.clear();
    out.hp_begin.push_back(out.hp_period.size());
    // Scan in quad order: hp rows land in out.hp_* pre-sorted; the max /
    // sum-after-sort aggregates below are order-independent.
    for (const std::size_t k : by_quad) {
      if (k == i) continue;
      if (rank[k] > eff_rank) bus_blocking = max(bus_blocking, out.cost[k]);
      if (rank[k] <= eff_rank) max_retx = max(max_retx, out.cost[k]);
      if (sender_basic[sender_of[i]] && sender_of[k] == sender_of[i] && rank[k] > rank[i])
        lp_frames.push_back(out.cost[k]);
      const bool interferes =
          sender_of[k] == sender_of[i] ? rank[k] < rank[i] : rank[k] < eff_rank;
      if (!interferes) continue;
      if (is_tt[k]) {
        group_members[sender_of[k]].push_back(
            TtGroup::Member{msgs[k].period, *msgs[k].tt_offset, msgs[k].jitter, out.cost[k]});
      } else {
        out.hp_period.push_back(out.act_period[k]);
        out.hp_jitter.push_back(out.act_jitter[k]);
        out.hp_dmin.push_back(out.act_dmin[k]);
        out.hp_cost.push_back(out.cost[k]);
      }
    }
    max_retx = max(max_retx, bus_blocking);

    // Committed-FIFO blocking of basicCAN senders: the top tx_buffers
    // same-node lower-priority frames, summed largest first (the exact
    // order intra_node_blocking() adds them in).
    Duration intra = Duration::zero();
    if (!lp_frames.empty()) {
      std::sort(lp_frames.begin(), lp_frames.end(), std::greater<>{});
      const std::size_t committed = std::min<std::size_t>(
          lp_frames.size(), static_cast<std::size_t>(sender_tx_buffers[sender_of[i]]));
      for (std::size_t f = 0; f < committed; ++f) intra += lp_frames[f];
    }
    out.blocking.push_back(bus_blocking + intra);
    out.max_retx.push_back(max_retx);

    // Canonical group order: members sorted by their quad, groups sorted
    // lexicographically by member quads (ties are groups with identical
    // quad sequences, interchangeable to the solver — same as legacy).
    group_order.clear();
    for (std::size_t s = 0; s < group_members.size(); ++s)
      if (!group_members[s].empty()) {
        std::sort(group_members[s].begin(), group_members[s].end(),
                  [](const TtGroup::Member& x, const TtGroup::Member& y) {
                    return member_order_key(x) < member_order_key(y);
                  });
        group_order.push_back(s);
      }
    std::sort(group_order.begin(), group_order.end(), [&](std::size_t x, std::size_t y) {
      return std::lexicographical_compare(
          group_members[x].begin(), group_members[x].end(), group_members[y].begin(),
          group_members[y].end(),
          [](const TtGroup::Member& a, const TtGroup::Member& b) {
            return member_order_key(a) < member_order_key(b);
          });
    });

    // Pre-build the groups; a failed build (unbounded hyperperiod) falls
    // back to offset-blind event models appended after the sorted hp rows
    // — the same append position solve_message_impl() uses.
    out.tt_begin.push_back(out.tt_groups.size());
    for (const std::size_t s : group_order) {
      if (auto g = TtGroup::build(group_members[s])) {
        out.tt_groups.push_back(std::move(*g));
      } else {
        for (const auto& member : group_members[s]) {
          const EventModel em = EventModel::periodic_jitter(member.period, member.jitter);
          out.hp_period.push_back(em.period());
          out.hp_jitter.push_back(em.jitter());
          out.hp_dmin.push_back(em.min_distance());
          out.hp_cost.push_back(member.cost);
        }
      }
    }
  }
  out.hp_begin.push_back(out.hp_period.size());
  out.tt_begin.push_back(out.tt_groups.size());
}

ColumnarBus pack_bus(const KMatrix& km, const CanRtaConfig& cfg) {
  ColumnarBus bus;
  pack_bus(km, cfg, bus);
  return bus;
}

MessageResult solve_columnar(const ColumnarBus& bus, std::size_t i, const ErrorModel& errors) {
  if (i + 1 >= bus.hp_begin.size())
    throw std::out_of_range("solve_columnar: bad index");

  const Duration tau_bit = bus.timing.bit_time();
  const Duration c_m = bus.cost[i];
  const Duration act_p = bus.act_period[i];
  const Duration act_j = bus.act_jitter[i];
  const Duration act_d = bus.act_dmin[i];

  MessageResult res;
  res.bcrt = bus.bcrt[i];
  res.deadline = bus.deadline[i];
  res.blocking = bus.blocking[i];
  const Duration blocking = bus.blocking[i];
  const Duration max_retx = bus.max_retx[i];

  const std::size_t hp_lo = bus.hp_begin[i];
  const std::size_t hp_hi = bus.hp_begin[i + 1];
  const std::size_t tt_lo = bus.tt_begin[i];
  const std::size_t tt_hi = bus.tt_begin[i + 1];

  const auto hp_interference = [&](Duration window) {
    Duration total = Duration::zero();
    for (std::size_t k = hp_lo; k < hp_hi; ++k)
      total +=
          columnar_eta_plus(window, bus.hp_period[k], bus.hp_jitter[k], bus.hp_dmin[k]) * bus.hp_cost[k];
    for (std::size_t g = tt_lo; g < tt_hi; ++g) total += bus.tt_groups[g].interference(window);
    return total;
  };
  const auto error_overhead = [&](Duration window) {
    if (window <= Duration::zero()) return Duration::zero();
    return errors.overhead(window, max_retx, bus.timing);
  };

  std::int64_t iterations = 0;
  const Duration busy = fixed_point(blocking + c_m, bus.horizon, iterations, [&](Duration t) {
    return blocking + columnar_eta_plus(t, act_p, act_j, act_d) * c_m + hp_interference(t) +
           error_overhead(t);
  });
  res.fixedpoint_iterations = iterations;
  if (busy.is_infinite()) {
    res.wcrt = Duration::infinite();
    res.busy_period = Duration::infinite();
    res.diverged = true;
    res.schedulable = false;
    return res;
  }
  res.busy_period = busy;

  const std::int64_t q_max = columnar_eta_plus(busy, act_p, act_j, act_d);
  res.instances = q_max;
  Duration wcrt = Duration::zero();
  for (std::int64_t q = 0; q < q_max; ++q) {
    const Duration w = fixed_point(blocking + q * c_m, bus.horizon, iterations, [&](Duration t) {
      return blocking + q * c_m + hp_interference(t + tau_bit) + error_overhead(t + c_m);
    });
    res.fixedpoint_iterations = iterations;
    if (w.is_infinite()) {
      res.wcrt = Duration::infinite();
      res.diverged = true;
      res.schedulable = false;
      return res;
    }
    const Duration response = w + c_m - columnar_delta_min(q + 1, act_p, act_j, act_d);
    wcrt = max(wcrt, response);
    if (w + c_m <= columnar_delta_min(q + 2, act_p, act_j, act_d)) break;
  }
  res.wcrt = wcrt;
  res.schedulable = !res.deadline.is_infinite() ? wcrt <= res.deadline : true;
  return res;
}

MessageResult solve_columnar(const ColumnarBus& bus, std::size_t i) {
  return solve_columnar(bus, i, *bus.errors);
}

}  // namespace symcan::analysis

#pragma once

// Probabilistic CAN response-time analysis: per-message deadline-miss
// *distributions* instead of a single worst-case verdict, following the
// convolution-based construction of arXiv 2411.05835.
//
// The deterministic engine answers "worst case under an error model";
// the integration question OEMs actually ask is "what fraction of frames
// miss at 10^-6?". This module answers it soundly and deterministically:
//
//  1. Rung ladder. The busy-period core (rta_context.hpp) is solved once
//     per possible fault count k with a FixedFaults(k) error model,
//     giving conditional bounds R_0 <= R_1 <= ... <= R_K. The top rung
//     is the deterministic WCRT itself (K is the fault count the
//     configured error model admits inside the deterministic busy
//     period), so the deterministic bound is the distribution's provable
//     upper support point by construction.
//  2. Fault mixture. The number of materialized faults is Binomial(K, p)
//     — each admitted fault occurs independently with probability p —
//     computed by iterated Bernoulli convolution in fixed point.
//  3. Luck deltas. Worst-case bit stuffing and full activation jitter
//     each materialize with a configured probability; their absence is a
//     two-point "savings" delta convolved into the response PMF.
//
// Numerics contract (no floating drift in the hot path): all mass is
// carried as 32.32 fixed-point weights summing to exactly Pmf::kOne.
// Convolution multiplies weights in unsigned __int128, floor-divides by
// kOne, and pushes the rounding residue onto the *maximum-value* atom —
// mass only ever moves toward worse outcomes, so every reported miss
// probability over-approximates the exact rational one (conservative),
// and the whole pipeline is pure integer arithmetic: bit-identical
// results at any thread count, tile size, or platform.
//
// Degenerate gate: when every probability is 1 (the defaults), the
// Bernoulli and delta convolutions are exact shifts with zero residue,
// the mixture collapses to a point mass at the top rung, and the result
// reproduces CanRta::analyze_message() bit-exactly — the differential
// tests in tests/analysis/prob_rta_test.cpp pin this across all
// assumption presets.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "symcan/analysis/can_rta.hpp"
#include "symcan/analysis/provenance.hpp"
#include "symcan/analysis/rta_context.hpp"
#include "symcan/util/time.hpp"

namespace symcan::analysis {

/// Bounded-support discrete PMF over integer-nanosecond values. Atoms
/// are sorted ascending, weights are strictly positive 32.32 fixed-point
/// and sum to exactly kOne — validate() enforces the invariant, every
/// constructor and operation preserves it.
class Pmf {
 public:
  /// Unit mass: 2^32. All probabilities in this module are weights in
  /// [0, kOne]; kOne means "certain".
  static constexpr std::uint64_t kOne = std::uint64_t{1} << 32;

  struct Atom {
    Duration value = Duration::zero();
    std::uint64_t weight = 0;
    friend bool operator==(const Atom&, const Atom&) = default;
  };

  /// Certain outcome: one atom of weight kOne at `v`.
  static Pmf point(Duration v);

  /// Two-point mass: `high` with `high_weight`, `low` with the rest.
  /// Degenerate weights (0 or kOne) collapse to a single atom, so the
  /// result is exact — no residue ever.
  static Pmf two_point(Duration low, Duration high, std::uint64_t high_weight);

  /// Build from (value, weight) pairs; merges duplicate values, drops
  /// zero weights, sorts, then validates the exact-sum invariant.
  static Pmf from_atoms(std::vector<Atom> atoms);

  const std::vector<Atom>& atoms() const { return atoms_; }
  bool degenerate() const { return atoms_.size() == 1; }
  Duration min_value() const { return atoms_.front().value; }
  /// Upper support point — for a response-time PMF this is provably the
  /// deterministic WCRT.
  Duration max_value() const { return atoms_.back().value; }

  /// Total weight strictly above `v` (the CCDF): the deadline-miss mass
  /// when `v` is the deadline. Conservative by the residue-to-top
  /// rounding: never smaller than the exact rational tail.
  std::uint64_t mass_above(Duration v) const;

  /// Smallest value whose CDF reaches `rank` (rank in [0, kOne]; the
  /// cross-validation quantile probe). rank == 0 returns min_value().
  Duration quantile(std::uint64_t rank) const;

  /// Merge every atom below `floor` into one atom at `floor` (response
  /// times below the best-case response are physically impossible; the
  /// luck deltas are clamped back to it).
  Pmf clamped_min(Duration floor) const;

  /// Exact-where-possible ppm <-> weight conversion. weight_from_ppm
  /// rounds *up* (more mass on the worst case — conservative) and is
  /// exact at 0 and 1'000'000; ppm_from_weight rounds up too, so a
  /// displayed miss-ppm never understates the bound.
  static std::uint64_t weight_from_ppm(std::int64_t ppm);
  static std::int64_t ppm_from_weight(std::uint64_t weight);
  static double probability(std::uint64_t weight) {
    return static_cast<double>(weight) / static_cast<double>(kOne);
  }

  /// Asserts the representation invariant (sorted, distinct, positive
  /// weights, sum exactly kOne); throws std::logic_error on violation.
  void validate() const;

  /// Convolution of independent sums: every atom pair multiplies its
  /// weights in unsigned __int128 and adds its values. The floor-division
  /// residue (< one ulp per output atom) lands on the maximum-value atom,
  /// so the result stochastically dominates the exact convolution.
  /// Point-mass operands convolve exactly (zero residue).
  friend Pmf convolve(const Pmf& a, const Pmf& b);

 private:
  std::vector<Atom> atoms_;
};

Pmf convolve(const Pmf& a, const Pmf& b);

/// Probabilistic analysis configuration. Probabilities are parts-per-
/// million integers so the wire, the CLI and the cache key all stay
/// exact; the defaults are the degenerate point masses that reproduce
/// the deterministic analysis bit-for-bit.
struct ProbRtaConfig {
  CanRtaConfig rta;
  /// P(an admitted fault materializes) — each of the K faults the error
  /// model admits in the deterministic busy period occurs independently
  /// with this probability.
  std::int64_t fault_ppm = 1'000'000;
  /// P(worst-case bit stuffing materializes); otherwise the frame takes
  /// its unstuffed (best-case) time.
  std::int64_t stuff_ppm = 1'000'000;
  /// P(full activation jitter materializes); otherwise the activation
  /// lands jitter-free.
  std::int64_t jitter_ppm = 1'000'000;
  /// Hard cap on the rung ladder height (fault counts beyond it are
  /// folded into the top rung, which is the deterministic WCRT — sound,
  /// just coarser).
  std::int64_t max_rungs = 96;
  /// Fan-out knobs for analyze_prob (0 = hardware / auto tile). Purely
  /// speed: results are bit-identical at any width and tile size.
  int parallelism = 1;
  int tile = 0;
};

/// Throws std::invalid_argument on out-of-range ppm / max_rungs.
void validate_prob_config(const ProbRtaConfig& cfg);

/// Stable identity of every field that can change a probabilistic
/// verdict given a fixed message context (excludes rta — the context
/// fingerprint covers it — and the parallelism/tile speed knobs).
std::uint64_t prob_config_fingerprint(const ProbRtaConfig& cfg);

/// The cacheable intermediate: the deterministic verdict plus the
/// conditional rung ladder. Depends only on the message context and
/// max_rungs — IncrementalRta caches it so probability sweeps re-solve
/// nothing and only redo the (cheap) mixture per sweep point.
struct RungLadder {
  MessageResult det;            ///< Bit-exact CanRta::analyze_message().
  std::vector<Duration> rungs;  ///< R_0..R_K, monotone, R_K == det.wcrt.
  /// Worst-case-stuffing saving (ctx.cost - ctx.bcrt) and the activation
  /// jitter — the supports of the two luck deltas the mixture convolves.
  Duration stuff_savings = Duration::zero();
  Duration jitter = Duration::zero();
};

/// Result for one message.
struct ProbMessageResult {
  MessageResult det;  ///< Bit-exact deterministic verdict (the gate).
  Pmf response = Pmf::point(Duration::zero());
  std::uint64_t miss_weight = 0;  ///< P(response > deadline), fixed point.
  std::vector<Duration> rungs;    ///< The ladder the mixture ran over.
  std::int64_t convolutions = 0;  ///< Convolutions spent on this message.

  double miss_probability() const { return Pmf::probability(miss_weight); }
  /// Rounded up: the displayed value never understates the bound.
  std::int64_t miss_ppm() const { return Pmf::ppm_from_weight(miss_weight); }
};

/// Whole-bus result.
struct ProbBusResult {
  std::vector<ProbMessageResult> messages;  ///< Same order as the matrix.
  double utilization = 0;

  /// Messages whose miss probability exceeds `threshold_weight`.
  std::size_t miss_count(std::uint64_t threshold_weight = 0) const;
};

/// Solve the rung ladder for one already-built context. `det`, when
/// non-null, receives the deterministic verdict the ladder is anchored
/// to (same object as the returned .det).
RungLadder solve_rung_ladder(const MessageContext& ctx, std::int64_t max_rungs);

/// Mix a solved ladder into the final distribution under `cfg` — the
/// cheap per-sweep-point half (pure integer; no solver calls).
ProbMessageResult mix_ladder(const RungLadder& ladder, const ProbRtaConfig& cfg);

/// Analyze one message (build context + ladder + mixture).
ProbMessageResult analyze_message_prob(const KMatrix& km, const ProbRtaConfig& cfg,
                                       std::size_t index);

/// Analyze every message, fanned out over util::ParallelExecutor with
/// slot-indexed tiling — bit-identical at any jobs x tile combination.
ProbBusResult analyze_prob(const KMatrix& km, const ProbRtaConfig& cfg);

/// One rung of the explained ladder: the conditional bound plus the
/// solver trajectory that produced it (recorded by the same tracing
/// solve_message() overload `symcan explain` uses, so the numbers *are*
/// the verdict).
struct RungTrace {
  std::int64_t faults = 0;
  Duration wcrt = Duration::zero();     ///< Clamped rung value used.
  Duration unclamped = Duration::zero();  ///< Raw conditional fixed point.
  std::int64_t fixedpoint_iterations = 0;
  std::int64_t critical_instance = 0;
  std::size_t busy_iterates = 0;
};

/// Full provenance of one probabilistic verdict: the deterministic
/// decomposition (analysis/provenance.hpp) plus the per-rung solver
/// trajectories. prob.det is bit-identical to det.result.
struct ProbProvenance {
  Provenance det;
  ProbMessageResult prob;
  std::vector<RungTrace> rungs;
};

ProbProvenance explain_message_prob(const KMatrix& km, const ProbRtaConfig& cfg,
                                    std::size_t index);

/// Human-readable ladder + distribution summary.
std::string prob_provenance_to_text(const ProbProvenance& p);

}  // namespace symcan::analysis

namespace symcan {
using analysis::analyze_prob;
using analysis::Pmf;
using analysis::ProbBusResult;
using analysis::ProbMessageResult;
using analysis::ProbRtaConfig;
}  // namespace symcan

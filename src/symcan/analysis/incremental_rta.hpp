#pragma once

// Incremental CAN response-time analysis: a memoizing layer over the
// shared busy-period core (rta_context.hpp) for the hot loops that
// re-analyze *edited* matrices thousands of times — GA/NSGA-II fitness
// evaluation, jitter/error sweeps, sensitivity probes and extensibility
// searches.
//
// A CAN message's verdict depends only on its effective interference
// context: the higher-priority message set (event models + frame times,
// offset groups per sender), the blocking maxima contributed by
// lower-priority and same-node traffic, the error model, and the
// analysis configuration. IncrementalRta resolves that context per
// message, fingerprints it (128 bits), and looks the fingerprint up in a
// bounded LRU map of solved MessageResults. Two GA neighbours that
// differ in one ID swap therefore only re-solve the messages inside the
// swapped priority span; a jitter sweep re-solves only the messages the
// swept jitter actually reaches.
//
// Soundness: the solver reads nothing but the context, and the
// fingerprint covers every context field, so a hit is bit-identical to a
// fresh solve (iteration counts included) — locked down by
// tests/analysis/incremental_rta_test.cpp and the fuzzed differential
// harness in tests/integration/rta_cache_differential_test.cpp.
//
// Thread safety: one IncrementalRta may be shared by every worker of a
// ParallelExecutor fan-out. Lookups and inserts take a mutex; solving
// happens outside the lock. Because cached and fresh results are
// bit-identical, sharing the cache cannot perturb parallel determinism.

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "symcan/analysis/can_rta.hpp"
#include "symcan/analysis/rta_context.hpp"

namespace symcan::analysis {

/// Cache policy. `enabled = false` degrades to plain context + solve
/// (still avoiding the per-call KMatrix/config copies of CanRta), which
/// is what the --rta-cache off ablation measures.
struct RtaCacheConfig {
  bool enabled = true;
  /// Maximum number of cached per-message results. The case-study matrix
  /// has ~56 messages, so the default holds ~1000 distinct interference
  /// contexts — plenty for a GA population while bounding memory.
  std::size_t capacity = 65536;
};

/// Lifetime counters (monotonic; survive clear()).
struct RtaCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;

  std::int64_t lookups() const { return hits + misses; }
  double hit_rate() const {
    return lookups() > 0 ? static_cast<double>(hits) / static_cast<double>(lookups()) : 0.0;
  }
};

class IncrementalRta {
 public:
  explicit IncrementalRta(RtaCacheConfig cfg = {});

  /// Analyze every message of `km` under `cfg`, reusing cached verdicts
  /// for unchanged interference contexts. Bit-identical to
  /// CanRta{km, cfg}.analyze() in every field.
  BusResult analyze(const KMatrix& km, const CanRtaConfig& cfg);

  /// Analyze one message (index into km.messages()); the single-message
  /// entry point the sensitivity binary searches iterate on.
  MessageResult analyze_message(const KMatrix& km, const CanRtaConfig& cfg, std::size_t index);

  const RtaCacheConfig& config() const { return cfg_; }
  RtaCacheStats stats() const;
  std::size_t size() const;

  /// Drop all cached entries (stats are kept).
  void clear();

 private:
  MessageResult analyze_one(const KMatrix& km, const CanRtaConfig& cfg, std::size_t index,
                            RtaCacheStats& delta);
  MessageResult analyze_keyed(const ContextKey& key, const KMatrix& km, const CanRtaConfig& cfg,
                              std::size_t index, RtaCacheStats& delta);
  void flush_cache_observations(const RtaCacheStats& delta);

  using Entry = std::pair<ContextKey, MessageResult>;

  RtaCacheConfig cfg_;

  mutable std::mutex m_;
  std::list<Entry> lru_;  ///< Front = most recently used; guarded by m_.
  std::unordered_map<ContextKey, std::list<Entry>::iterator, ContextKeyHash> map_;
  RtaCacheStats stats_;  ///< Guarded by m_.
};

}  // namespace symcan::analysis

namespace symcan {
using analysis::IncrementalRta;
using analysis::RtaCacheConfig;
using analysis::RtaCacheStats;
}  // namespace symcan

#pragma once

// Incremental CAN response-time analysis: a memoizing layer over the
// shared busy-period core (rta_context.hpp) for the hot loops that
// re-analyze *edited* matrices thousands of times — GA/NSGA-II fitness
// evaluation, jitter/error sweeps, sensitivity probes and extensibility
// searches.
//
// A CAN message's verdict depends only on its effective interference
// context: the higher-priority message set (event models + frame times,
// offset groups per sender), the blocking maxima contributed by
// lower-priority and same-node traffic, the error model, and the
// analysis configuration. IncrementalRta resolves that context per
// message, fingerprints it (128 bits), and looks the fingerprint up in a
// bounded LRU map of solved MessageResults. Two GA neighbours that
// differ in one ID swap therefore only re-solve the messages inside the
// swapped priority span; a jitter sweep re-solves only the messages the
// swept jitter actually reaches.
//
// Soundness: the solver reads nothing but the context, and the
// fingerprint covers every context field, so a hit is bit-identical to a
// fresh solve (iteration counts included) — locked down by
// tests/analysis/incremental_rta_test.cpp and the fuzzed differential
// harness in tests/integration/rta_cache_differential_test.cpp.
//
// Thread safety: one IncrementalRta may be shared by every worker of a
// ParallelExecutor fan-out. Lookups and inserts take a per-shard mutex;
// solving happens outside the lock. Because cached and fresh results are
// bit-identical, sharing the cache cannot perturb parallel determinism.
//
// Sharding: the key space is split across `shards` independent LRUs,
// each with its own lock, selected by the context fingerprint's own
// hash. A GA fan-out or the `symcan serve` batcher therefore does not
// serialize every worker on one mutex; with shards == 1 (the default)
// the behaviour is exactly the historical single-LRU cache. Sharding
// changes only lock granularity and eviction locality — never verdicts.

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "symcan/analysis/can_rta.hpp"
#include "symcan/analysis/prob_rta.hpp"
#include "symcan/analysis/rta_context.hpp"

namespace symcan::analysis {

struct ColumnarBus;

/// Cache policy. `enabled = false` degrades to plain context + solve
/// (still avoiding the per-call KMatrix/config copies of CanRta), which
/// is what the --rta-cache off ablation measures.
struct RtaCacheConfig {
  bool enabled = true;
  /// Maximum number of cached per-message results, summed over all
  /// shards. The case-study matrix has ~56 messages, so the default
  /// holds ~1000 distinct interference contexts — plenty for a GA
  /// population while bounding memory. The CLI exposes this as
  /// --rta-cache-capacity.
  std::size_t capacity = 65536;
  /// Number of independent LRU shards (each with its own lock). 1 is
  /// the historical shared-LRU cache; `symcan serve` defaults higher so
  /// concurrent request batches do not contend on one mutex.
  std::size_t shards = 1;
  /// Run KMatrix::validate() on every analyze() input. Hot loops that
  /// re-analyze thousands of ID permutations of one already-validated
  /// matrix (GA/NSGA-II fitness) turn this off after validating once up
  /// front; validation is O(n^2) in messages and would otherwise be paid
  /// per evaluation. Appended last so positional initializers keep
  /// meaning {enabled, capacity, shards}.
  bool validate_input = true;
};

/// Lifetime counters (monotonic; survive clear()).
struct RtaCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;

  std::int64_t lookups() const { return hits + misses; }
  double hit_rate() const {
    return lookups() > 0 ? static_cast<double>(hits) / static_cast<double>(lookups()) : 0.0;
  }
};

class IncrementalRta {
 public:
  explicit IncrementalRta(RtaCacheConfig cfg = {});

  /// Analyze every message of `km` under `cfg`, reusing cached verdicts
  /// for unchanged interference contexts. Bit-identical to
  /// CanRta{km, cfg}.analyze() in every field.
  BusResult analyze(const KMatrix& km, const CanRtaConfig& cfg);

  /// Analyze one message (index into km.messages()); the single-message
  /// entry point the sensitivity binary searches iterate on.
  MessageResult analyze_message(const KMatrix& km, const CanRtaConfig& cfg, std::size_t index);

  /// Probabilistic analysis with a warm rung-ladder cache: the expensive
  /// half of a probabilistic verdict (the deterministic solve plus one
  /// conditional solve per fault count — see analysis/prob_rta.hpp) is
  /// content-addressed by the message's context fingerprint mixed with
  /// the ladder shape, so a probability sweep over one matrix solves
  /// each ladder once and only redoes the cheap fixed-point mixture per
  /// sweep point. Bit-identical to the uncached analysis::analyze_prob.
  ProbBusResult analyze_prob(const KMatrix& km, const ProbRtaConfig& cfg);
  ProbMessageResult analyze_message_prob(const KMatrix& km, const ProbRtaConfig& cfg,
                                         std::size_t index);

  const RtaCacheConfig& config() const { return cfg_; }
  /// Aggregated over all shards.
  RtaCacheStats stats() const;
  /// Rung-ladder cache counters (the prob plane keeps its own stats).
  RtaCacheStats prob_stats() const;
  /// Total cached entries, summed over all shards.
  std::size_t size() const;
  /// Effective shard count (>= 1) after clamping to capacity.
  std::size_t shard_count() const { return shards_.size(); }

  /// Drop all cached entries in every shard (stats are kept).
  void clear();

 private:
  /// One independent LRU with its own lock. Entries are routed by the
  /// fingerprint's hash, so a key lives in exactly one shard.
  struct Shard {
    using Entry = std::pair<ContextKey, MessageResult>;
    mutable std::mutex m;
    std::list<Entry> lru;  ///< Front = most recently used; guarded by m.
    std::unordered_map<ContextKey, std::list<Entry>::iterator, ContextKeyHash> map;
    RtaCacheStats stats;  ///< Guarded by m.
  };

  /// The prob plane's shard: same sharding scheme, RungLadder payload.
  /// Ladders and verdicts never share a key space (the ladder key mixes
  /// in the ladder shape), so the planes stay independent.
  struct ProbShard {
    using Entry = std::pair<ContextKey, RungLadder>;
    mutable std::mutex m;
    std::list<Entry> lru;  ///< Front = most recently used; guarded by m.
    std::unordered_map<ContextKey, std::list<Entry>::iterator, ContextKeyHash> map;
    RtaCacheStats stats;  ///< Guarded by m.
  };

  Shard& shard_for(const ContextKey& key);
  ProbShard& prob_shard_for(const ContextKey& key);
  /// Cached rung-ladder resolution for one message (mirrors
  /// analyze_keyed: lookup under the shard lock, solve outside it).
  RungLadder ladder_keyed(const ContextKey& key, const KMatrix& km, const ProbRtaConfig& cfg,
                          std::size_t index, RtaCacheStats& delta);
  void flush_prob_observations(const RtaCacheStats& delta);
  MessageResult analyze_one(const KMatrix& km, const CanRtaConfig& cfg, std::size_t index,
                            RtaCacheStats& delta);
  /// Cache lookup + miss resolution for one message. When `scratch` is
  /// non-null, misses beyond a small threshold solve on the columnar
  /// path, packing the whole bus into `scratch` once (`*packed` tracks
  /// it); the first few misses — and every miss when `scratch` is null —
  /// run the legacy build + solve. Both miss paths are bit-identical, so
  /// the choice is purely a speed knob for whole-bus runs.
  MessageResult analyze_keyed(const ContextKey& key, const KMatrix& km, const CanRtaConfig& cfg,
                              std::size_t index, RtaCacheStats& delta,
                              ColumnarBus* scratch = nullptr, bool* packed = nullptr);
  void flush_cache_observations(const RtaCacheStats& delta);

  RtaCacheConfig cfg_;
  std::size_t shard_capacity_ = 0;  ///< Per-shard entry budget.
  /// unique_ptr keeps Shard (mutex member) immovable while the vector
  /// stays constructible; sized once in the constructor, never resized.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<ProbShard>> prob_shards_;
};

}  // namespace symcan::analysis

namespace symcan {
using analysis::IncrementalRta;
using analysis::RtaCacheConfig;
using analysis::RtaCacheStats;
}  // namespace symcan

#pragma once

// Offset-aware ("TimeTable") interference analysis.
//
// When a sender releases its messages on a static schedule — message k at
// n*T_k + O_k (+ up to J_k of release jitter) — its messages can never
// all be released simultaneously. The classic critical-instant analysis
// ignores this and charges the worst simultaneous release; offset-aware
// analysis instead bounds the group's demand by the worst window position
// over the schedule's hyperperiod.
//
// Each nominal release at time s with jitter J occupies the landing
// interval [s, s+J]. A release can contribute to a window [t, t+w) iff
// its landing interval intersects the window, i.e. s < t+w and s+J >= t.
// Because b_j = s_j + J_j >= a_j = s_j, the weighted count factorizes as
//
//     demand(t, w) = W_a(t + w) - W_b(t)
//
// with W_a(x) = total weight of releases with a_j < x and W_b(x) = total
// weight with b_j < x, both periodic step functions over the hyperperiod.
// The maximum over all window positions t is attained at a step point
// (t = b_j, or t just past a_j - w), so it is computed exactly from the
// two sorted prefix-weight arrays.
//
// Properties (tested):
//  * sound: demand(t,w) over-approximates the group's actual demand in
//    every window;
//  * never above the offset-blind bound: for one member the maximum
//    equals ceil((w + J)/T) * C, i.e. the standard event-model bound, and
//    max of a sum never exceeds the sum of maxima;
//  * monotone in w (required for fixed-point convergence).

#include <cstdint>
#include <optional>
#include <vector>

#include "symcan/util/time.hpp"

namespace symcan {

/// One sender's offset schedule, reduced to weighted landing intervals.
class TtGroup {
 public:
  struct Member {
    Duration period;
    Duration offset;
    Duration jitter;
    Duration cost;  ///< Frame time charged per release.
  };

  /// Builds the group. Fails (returns nullopt) when the members'
  /// hyperperiod exceeds `max_hyperperiod` or would need more than
  /// `max_releases` release points — callers then fall back to
  /// offset-blind per-message event models.
  static std::optional<TtGroup> build(const std::vector<Member>& members,
                                      Duration max_hyperperiod = Duration::s(10),
                                      std::size_t max_releases = 65536);

  /// Worst-case total demand of the group in any window of length w.
  Duration interference(Duration w) const;

  Duration hyperperiod() const { return hyperperiod_; }
  std::size_t release_count() const { return release_count_; }

 private:
  TtGroup() = default;

  /// Exact weighted demand of the group in the window [t, t+w), both in
  /// nanoseconds; t may be any value, the schedule extends periodically.
  Duration demand_at(std::int64_t t_ns, std::int64_t w_ns) const;

  std::vector<Member> members_;
  Duration hyperperiod_ = Duration::zero();
  Duration total_cost_ = Duration::zero();  ///< Sum of costs per hyperperiod.
  std::size_t release_count_ = 0;
};

}  // namespace symcan

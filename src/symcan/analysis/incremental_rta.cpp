#include "symcan/analysis/incremental_rta.hpp"

#include <stdexcept>

#include "symcan/analysis/columnar.hpp"
#include "symcan/can/kmatrix.hpp"
#include "symcan/obs/obs.hpp"
#include "symcan/util/parallel.hpp"

namespace symcan::analysis {

namespace {

/// Misses a run must accumulate before the whole bus gets packed for the
/// columnar miss path. Roughly pack_bus cost divided by one legacy
/// build + solve on the case study — below it the legacy path is
/// cheaper, above it the pack amortizes across the remaining misses.
constexpr std::int64_t kPackMissThreshold = 4;

/// SplitMix64-style chain (same shape as the fingerprint helpers).
std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h += v + 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

/// Ladder cache key: the context fingerprint with the ladder shape
/// (max_rungs) mixed into both lanes under a plane tag, so ladder keys
/// can never alias verdict keys or each other across shapes.
ContextKey ladder_key(const ContextKey& ctx, std::int64_t max_rungs) {
  return {mix64(ctx.a ^ 0x1adde7, static_cast<std::uint64_t>(max_rungs)),
          mix64(ctx.b, static_cast<std::uint64_t>(max_rungs))};
}

}  // namespace

IncrementalRta::IncrementalRta(RtaCacheConfig cfg) : cfg_{cfg} {
  if (cfg_.capacity == 0) throw std::invalid_argument("IncrementalRta: capacity must be >= 1");
  if (cfg_.shards == 0) throw std::invalid_argument("IncrementalRta: shards must be >= 1");
  // More shards than entries would create empty shards with capacity 0;
  // clamp so every shard can hold at least one entry.
  const std::size_t shards = cfg_.shards > cfg_.capacity ? cfg_.capacity : cfg_.shards;
  shard_capacity_ = cfg_.capacity / shards;
  shards_.reserve(shards);
  prob_shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    prob_shards_.push_back(std::make_unique<ProbShard>());
  }
}

IncrementalRta::Shard& IncrementalRta::shard_for(const ContextKey& key) {
  // The fingerprint is already uniformly mixed, so its hash modulo the
  // shard count spreads keys evenly; a key deterministically lives in
  // exactly one shard.
  return *shards_[ContextKeyHash{}(key) % shards_.size()];
}

MessageResult IncrementalRta::analyze_one(const KMatrix& km, const CanRtaConfig& cfg,
                                          std::size_t index, RtaCacheStats& delta) {
  // The fingerprint is computed straight from the matrix — a hit never
  // pays for context construction (the allocating part of an analysis).
  return analyze_keyed(message_fingerprint(km, cfg, index), km, cfg, index, delta);
}

MessageResult IncrementalRta::analyze_keyed(const ContextKey& key, const KMatrix& km,
                                            const CanRtaConfig& cfg, std::size_t index,
                                            RtaCacheStats& delta, ColumnarBus* scratch,
                                            bool* packed) {
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock{shard.m};
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      ++delta.hits;
      MessageResult res = it->second->second;
      // Identity is not part of the key: a structurally equal message in
      // another matrix (e.g. a GA neighbour after an ID swap) reuses the
      // verdict under its own name and ID.
      res.name = km.messages()[index].name;
      res.id = km.messages()[index].id;
      return res;
    }
  }

  // Miss: solve outside the lock. Two workers may race on the same key
  // and both solve; the results are bit-identical, so the duplicate
  // insert below is harmless (the second becomes a refresh). Whole-bus
  // callers hand in a columnar scratch: packing the whole bus costs a
  // handful of legacy build + solve calls, so the first few misses of a
  // run take the legacy path and the pack only happens once enough
  // misses accumulate to amortize it — near-all-hit analyses (the GA
  // steady state) never pay for a pack they would barely use. Both miss
  // paths are bit-identical, so the threshold is purely a speed knob.
  MessageResult res;
  if (scratch != nullptr && (*packed || delta.misses >= kPackMissThreshold)) {
    if (!*packed) {
      pack_bus(km, cfg, *scratch);
      *packed = true;
    }
    res = solve_columnar(*scratch, index);
    res.name = km.messages()[index].name;
    res.id = km.messages()[index].id;
  } else {
    res = solve_message(build_message_context(km, cfg, index));
  }
  ++delta.misses;
  {
    std::lock_guard<std::mutex> lock{shard.m};
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.emplace_front(key, res);
      shard.map.emplace(key, shard.lru.begin());
      if (shard.lru.size() > shard_capacity_) {
        shard.map.erase(shard.lru.back().first);
        shard.lru.pop_back();
        ++delta.evictions;
      }
    }
  }
  return res;
}

IncrementalRta::ProbShard& IncrementalRta::prob_shard_for(const ContextKey& key) {
  return *prob_shards_[ContextKeyHash{}(key) % prob_shards_.size()];
}

RungLadder IncrementalRta::ladder_keyed(const ContextKey& key, const KMatrix& km,
                                        const ProbRtaConfig& cfg, std::size_t index,
                                        RtaCacheStats& delta) {
  ProbShard& shard = prob_shard_for(key);
  {
    std::lock_guard<std::mutex> lock{shard.m};
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      ++delta.hits;
      RungLadder ladder = it->second->second;
      ladder.det.name = km.messages()[index].name;
      ladder.det.id = km.messages()[index].id;
      return ladder;
    }
  }
  // Miss: solve the ladder outside the lock (racing solvers produce
  // bit-identical ladders, so a duplicate insert is a refresh).
  RungLadder ladder = solve_rung_ladder(build_message_context(km, cfg.rta, index), cfg.max_rungs);
  ++delta.misses;
  {
    std::lock_guard<std::mutex> lock{shard.m};
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.emplace_front(key, ladder);
      shard.map.emplace(key, shard.lru.begin());
      if (shard.lru.size() > shard_capacity_) {
        shard.map.erase(shard.lru.back().first);
        shard.lru.pop_back();
        ++delta.evictions;
      }
    }
  }
  return ladder;
}

void IncrementalRta::flush_prob_observations(const RtaCacheStats& delta) {
  {
    std::lock_guard<std::mutex> lock{prob_shards_.front()->m};
    RtaCacheStats& s = prob_shards_.front()->stats;
    s.hits += delta.hits;
    s.misses += delta.misses;
    s.evictions += delta.evictions;
  }
  if (!obs::enabled()) return;
  auto& m = obs::metrics();
  m.counter("rta.prob.cache.hits").add(delta.hits);
  m.counter("rta.prob.cache.misses").add(delta.misses);
  m.counter("rta.prob.cache.evictions").add(delta.evictions);
}

ProbMessageResult IncrementalRta::analyze_message_prob(const KMatrix& km,
                                                       const ProbRtaConfig& cfg,
                                                       std::size_t index) {
  validate_prob_config(cfg);
  if (!cfg.rta.errors)
    throw std::invalid_argument("IncrementalRta: error model must not be null");
  if (!cfg_.enabled)
    return mix_ladder(solve_rung_ladder(build_message_context(km, cfg.rta, index), cfg.max_rungs),
                      cfg);
  RtaCacheStats delta;
  const ContextKey key = ladder_key(message_fingerprint(km, cfg.rta, index), cfg.max_rungs);
  ProbMessageResult res = mix_ladder(ladder_keyed(key, km, cfg, index, delta), cfg);
  flush_prob_observations(delta);
  return res;
}

ProbBusResult IncrementalRta::analyze_prob(const KMatrix& km, const ProbRtaConfig& cfg) {
  validate_prob_config(cfg);
  if (!cfg.rta.errors)
    throw std::invalid_argument("IncrementalRta: error model must not be null");
  if (cfg_.validate_input) km.validate();
  SYMCAN_OBS_SPAN("rta.prob.analyze");
  ProbBusResult out;
  out.utilization = km.utilization(cfg.rta.worst_case_stuffing);
  if (!cfg_.enabled) {
    ProbRtaConfig inner = cfg;  // analyze_prob re-validates; fan-out below
    ParallelExecutor exec{cfg.parallelism};
    out.messages = exec.parallel_map_indexed_tiled(
        km.size(), static_cast<std::size_t>(cfg.tile), [&](std::size_t i) {
          return mix_ladder(
              solve_rung_ladder(build_message_context(km, inner.rta, i), inner.max_rungs), inner);
        });
    return out;
  }
  // Whole-bus lookup path: one pre-hashed pass yields every context key.
  const std::vector<ContextKey> keys = bus_fingerprints(km, cfg.rta);
  std::vector<RtaCacheStats> deltas(km.size());
  ParallelExecutor exec{cfg.parallelism};
  out.messages = exec.parallel_map_indexed_tiled(
      km.size(), static_cast<std::size_t>(cfg.tile), [&](std::size_t i) {
        return mix_ladder(
            ladder_keyed(ladder_key(keys[i], cfg.max_rungs), km, cfg, i, deltas[i]), cfg);
      });
  RtaCacheStats delta;
  for (const auto& d : deltas) {
    delta.hits += d.hits;
    delta.misses += d.misses;
    delta.evictions += d.evictions;
  }
  flush_prob_observations(delta);
  if (obs::enabled()) {
    std::int64_t convolutions = 0;
    for (const auto& m : out.messages) convolutions += m.convolutions;
    obs::count("prob.messages", static_cast<std::int64_t>(out.messages.size()));
    obs::count("prob.convolutions", convolutions);
  }
  return out;
}

void IncrementalRta::flush_cache_observations(const RtaCacheStats& delta) {
  {
    // Lifetime counters live on shard 0; per-shard deltas are already
    // merged into `delta` by the callers.
    std::lock_guard<std::mutex> lock{shards_.front()->m};
    RtaCacheStats& s = shards_.front()->stats;
    s.hits += delta.hits;
    s.misses += delta.misses;
    s.evictions += delta.evictions;
  }
  if (!obs::enabled()) return;
  auto& m = obs::metrics();
  m.counter("rta.cache.hits").add(delta.hits);
  m.counter("rta.cache.misses").add(delta.misses);
  m.counter("rta.cache.evictions").add(delta.evictions);
  m.gauge("rta.cache.size").set(static_cast<double>(size()));
}

BusResult IncrementalRta::analyze(const KMatrix& km, const CanRtaConfig& cfg) {
  if (!cfg.errors) throw std::invalid_argument("IncrementalRta: error model must not be null");
  if (cfg_.validate_input) km.validate();
  SYMCAN_OBS_SPAN("rta.can.analyze");
  BusResult out;
  out.utilization = km.utilization(cfg.worst_case_stuffing);
  out.messages.reserve(km.size());
  RtaCacheStats delta;
  // Columnar scratch for the miss path, thread-local so every analyze()
  // on a worker reuses the same arena (capacity only grows; `packed`
  // scopes validity to this run).
  static thread_local ColumnarBus scratch;
  bool packed = false;
  if (cfg_.enabled) {
    // Whole-bus lookup path: one pre-hashed pass over the matrix yields
    // every message's key at a fraction of n independent fingerprints.
    const std::vector<ContextKey> keys = bus_fingerprints(km, cfg);
    for (std::size_t i = 0; i < km.size(); ++i)
      out.messages.push_back(analyze_keyed(keys[i], km, cfg, i, delta, &scratch, &packed));
  } else {
    pack_bus(km, cfg, scratch);
    for (std::size_t i = 0; i < km.size(); ++i) {
      MessageResult r = solve_columnar(scratch, i);
      r.name = km.messages()[i].name;
      r.id = km.messages()[i].id;
      out.messages.push_back(std::move(r));
    }
  }
  flush_rta_observations(out);
  flush_cache_observations(delta);
  return out;
}

MessageResult IncrementalRta::analyze_message(const KMatrix& km, const CanRtaConfig& cfg,
                                              std::size_t index) {
  if (!cfg.errors) throw std::invalid_argument("IncrementalRta: error model must not be null");
  RtaCacheStats delta;
  MessageResult res = cfg_.enabled ? analyze_one(km, cfg, index, delta)
                                   : solve_message(build_message_context(km, cfg, index));
  flush_cache_observations(delta);
  return res;
}

RtaCacheStats IncrementalRta::stats() const {
  std::lock_guard<std::mutex> lock{shards_.front()->m};
  return shards_.front()->stats;
}

RtaCacheStats IncrementalRta::prob_stats() const {
  std::lock_guard<std::mutex> lock{prob_shards_.front()->m};
  return prob_shards_.front()->stats;
}

std::size_t IncrementalRta::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock{shard->m};
    n += shard->map.size();
  }
  return n;
}

void IncrementalRta::clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock{shard->m};
    shard->lru.clear();
    shard->map.clear();
  }
  for (auto& shard : prob_shards_) {
    std::lock_guard<std::mutex> lock{shard->m};
    shard->lru.clear();
    shard->map.clear();
  }
}

}  // namespace symcan::analysis

#pragma once

// Bus-load (utilization) analysis — paper Section 3.1 and Figure 1.
//
// "For each message, multiply the frequency of a message (1/period) with
// its length (incl. protocol overhead), build the sum over all messages,
// and finally divide it by the network bandwidth."
//
// The paper's point is that this popular model is *insufficient*: it says
// nothing about deadlines or buffer overflow. We implement it faithfully
// (it is still the right first look and feeds the Figure 1 bench) and pair
// it with the OEM-style load-limit verdicts (some OEMs cap at 40 %, others
// at 60 %).

#include <string>
#include <vector>

#include "symcan/can/kmatrix.hpp"

namespace symcan {

/// Per-node traffic contribution.
struct NodeLoad {
  std::string node;
  double traffic_bps = 0;  ///< bits/s put on the bus by this node
  double share = 0;        ///< fraction of total bus traffic
};

/// Whole-bus load summary.
struct LoadReport {
  double total_traffic_bps = 0;   ///< accumulated traffic (Figure 1: 180 kbit/s)
  double bandwidth_bps = 0;       ///< bus bandwidth (Figure 1: 500 kbit/s)
  double utilization = 0;         ///< traffic / bandwidth (Figure 1: 36 %)
  std::vector<NodeLoad> by_node;  ///< descending by traffic
};

/// Compute the load report. `worst_case_stuffing` selects whether frame
/// lengths include worst-case stuff bits (the conservative reading).
LoadReport analyze_load(const KMatrix& km, bool worst_case_stuffing = false);

/// OEM-style verdict against a load limit in [0,1] (0.40 and 0.60 are the
/// two camps quoted in the paper).
inline bool within_load_limit(const LoadReport& r, double limit) {
  return r.utilization <= limit;
}

}  // namespace symcan

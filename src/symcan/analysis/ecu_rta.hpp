#pragma once

// ECU response-time analysis for OSEK-style fixed-priority scheduling
// with mixed preemptive and cooperative tasks plus hardware interrupts
// (paper Section 5.2). This is the resource-local analysis the
// compositional engine runs for ECUs; CAN buses use CanRta.
//
// Scheduling model:
//  * Hardware interrupts preempt every task and each other by priority.
//  * Preemptive tasks preempt lower-priority tasks immediately.
//  * Cooperative tasks yield only at segment boundaries; a task can
//    therefore be blocked for at most the longest non-preemptible segment
//    of any lower-priority cooperative task.
//  * Per-activation OS overhead is charged as additional execution time.
//
// All interference is counted through standard event models (eta+), so
// bursts and jitter at task activation are handled uniformly with the bus
// analysis.

#include <cstddef>
#include <string>
#include <vector>

#include "symcan/model/task.hpp"
#include "symcan/util/time.hpp"

namespace symcan {

/// Result for one task (fields mirror MessageResult where sensible).
struct TaskResult {
  std::string name;
  Duration wcrt = Duration::infinite();
  Duration bcrt = Duration::zero();
  Duration deadline = Duration::infinite();
  Duration blocking = Duration::zero();
  Duration busy_period = Duration::zero();
  std::int64_t instances = 1;
  /// Total fixed-point iterations spent on this task (see MessageResult).
  std::int64_t fixedpoint_iterations = 0;
  bool schedulable = false;
  bool diverged = false;

  Duration slack() const { return deadline.is_infinite() ? Duration::infinite() : deadline - wcrt; }
  Duration response_jitter() const { return wcrt - bcrt; }
};

/// Result for one ECU.
struct EcuResult {
  std::vector<TaskResult> tasks;  ///< Same order as the input task list.
  double utilization = 0;

  bool all_schedulable() const;
  std::size_t miss_count() const;
};

/// Analyzer for one ECU's task set.
class EcuRta {
 public:
  /// `tasks` must have unique priorities within each scheduling class
  /// pair that competes (validated). `horizon` bounds busy periods.
  explicit EcuRta(std::vector<Task> tasks, Duration horizon = Duration::s(10));

  TaskResult analyze_task(std::size_t index) const;
  EcuResult analyze() const;

  const std::vector<Task>& tasks() const { return tasks_; }

 private:
  bool preempts(const Task& hp, const Task& lp) const;
  Duration blocking_for(std::size_t index) const;

  std::vector<Task> tasks_;
  Duration horizon_;
};

}  // namespace symcan

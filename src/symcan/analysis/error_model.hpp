#pragma once

// Bus fault models for CAN response-time analysis.
//
// CAN signals a corrupted frame with an error frame (up to 31 bits of
// recovery overhead) and automatically retransmits. The analysis charges
// this as extra interference E(t) inside the busy-window fixed point:
// every fault costs the recovery overhead plus one retransmission of the
// largest frame that can be in flight at the message's priority level.
//
// Two practically useful families (paper Section 4):
//  * sporadic errors [Tindell & Burns, YCS 229, 1994]: at most one fault
//    per minimum inter-error interval (an MTBF-like guarantee), optionally
//    preceded by a startup burst;
//  * burst errors [Punnekkat, Hansson & Norstroem, RTAS 2000]: faults
//    arrive in clusters of up to `errors_per_burst` back-to-back hits,
//    clusters separated by a minimum distance.
//
// Both are instances of a monotone non-decreasing fault count n(t); the
// monotonicity is what keeps the response-time fixed point convergent.

#include <cstdint>
#include <memory>
#include <string>

#include "symcan/can/frame.hpp"
#include "symcan/util/time.hpp"

namespace symcan {

/// Interface: worst-case fault-recovery overhead within any window.
class ErrorModel {
 public:
  virtual ~ErrorModel() = default;

  /// Maximum number of faults in any half-open window of length `t`,
  /// treating fault clusters as instantaneous (see BurstErrors::overhead
  /// for the window extension that removes that approximation).
  virtual std::int64_t max_faults(Duration t) const = 0;

  /// Total interference from faults in a window of length `t`, when the
  /// largest frame needing retransmission at this priority level takes
  /// `max_retx_frame` and the bus bit time is `timing`. Must be monotone
  /// non-decreasing in `t`.
  virtual Duration overhead(Duration t, Duration max_retx_frame, const BitTiming& timing) const {
    const std::int64_t n = max_faults(t);
    if (n == 0) return Duration::zero();
    return n * (timing.duration_of(error_frame_bits) + max_retx_frame);
  }

  virtual std::string name() const = 0;
  virtual std::unique_ptr<ErrorModel> clone() const = 0;

  /// Stable identity of the model *including every parameter that can
  /// change overhead()* — the incremental-RTA cache folds this into its
  /// per-message key, so two models with equal fingerprints must be
  /// behaviourally identical. The default hashes name(); override it
  /// whenever name() does not encode all parameters.
  virtual std::uint64_t fingerprint() const;
};

/// Fault-free bus.
class NoErrors final : public ErrorModel {
 public:
  std::int64_t max_faults(Duration) const override { return 0; }
  std::string name() const override { return "no-errors"; }
  std::unique_ptr<ErrorModel> clone() const override { return std::make_unique<NoErrors>(); }
  std::uint64_t fingerprint() const override { return 0x1; }
};

/// Tindell-Burns sporadic error model: `initial_errors` faults may occur
/// immediately, then at most one fault per `min_inter_error`.
class SporadicErrors final : public ErrorModel {
 public:
  explicit SporadicErrors(Duration min_inter_error, std::int64_t initial_errors = 0);

  std::int64_t max_faults(Duration t) const override;
  std::string name() const override;
  std::unique_ptr<ErrorModel> clone() const override {
    return std::make_unique<SporadicErrors>(*this);
  }
  std::uint64_t fingerprint() const override;

  Duration min_inter_error() const { return min_inter_error_; }

 private:
  Duration min_inter_error_;
  std::int64_t initial_errors_;
};

/// Exactly `faults` faults in every non-empty window, independent of its
/// length. Not a physical arrival model: it is the per-rung conditioning
/// device of the probabilistic analysis (analysis/prob_rta.hpp), which
/// solves the busy period once per possible fault count k and mixes the
/// resulting response-time rungs by the probability of k. Constant n(t)
/// is trivially monotone, so the fixed point stays convergent.
class FixedFaults final : public ErrorModel {
 public:
  explicit FixedFaults(std::int64_t faults);

  std::int64_t max_faults(Duration t) const override {
    return t > Duration::zero() ? faults_ : 0;
  }
  std::string name() const override;
  std::unique_ptr<ErrorModel> clone() const override {
    return std::make_unique<FixedFaults>(*this);
  }
  std::uint64_t fingerprint() const override;

  std::int64_t faults() const { return faults_; }

 private:
  std::int64_t faults_;
};

/// Punnekkat-style burst error model: clusters of up to `errors_per_burst`
/// consecutive faults; cluster starts separated by at least
/// `min_inter_burst`; faults within a cluster separated by at least
/// `intra_burst_gap` (0 = back-to-back, each still destroying one frame).
class BurstErrors final : public ErrorModel {
 public:
  BurstErrors(Duration min_inter_burst, std::int64_t errors_per_burst,
              Duration intra_burst_gap = Duration::zero());

  std::int64_t max_faults(Duration t) const override;

  /// Burst-aware overhead: a burst has nonzero extent (its k faults are
  /// spread over up to (k-1) recovery+retransmission slots), so a window
  /// of length t can overlap faults of every burst whose *start* lies in
  /// a window of length t + (k-1)*(recovery + max_retx_frame). Using the
  /// extended window keeps the bound sound when an analysis window
  /// straddles the tail of one burst and the head of the next.
  Duration overhead(Duration t, Duration max_retx_frame, const BitTiming& timing) const override;
  std::string name() const override;
  std::unique_ptr<ErrorModel> clone() const override {
    return std::make_unique<BurstErrors>(*this);
  }
  std::uint64_t fingerprint() const override;

  Duration min_inter_burst() const { return min_inter_burst_; }
  std::int64_t errors_per_burst() const { return errors_per_burst_; }

 private:
  Duration min_inter_burst_;
  std::int64_t errors_per_burst_;
  Duration intra_burst_gap_;
};

}  // namespace symcan

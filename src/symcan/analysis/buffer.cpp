#include "symcan/analysis/buffer.hpp"

#include <algorithm>
#include <stdexcept>

namespace symcan {

std::optional<std::int64_t> max_backlog(const std::vector<EventModel>& arrivals,
                                        const EventModel& service, Duration horizon) {
  if (arrivals.empty()) return 0;

  // Long-run rate check: strictly more arrivals than service capacity in
  // the limit means unbounded backlog.
  double arrival_rate = 0;
  for (const auto& a : arrivals) arrival_rate += 1.0 / a.period().as_s();
  const double service_rate = 1.0 / service.period().as_s();
  if (arrival_rate > service_rate) return std::nullopt;

  // The supremum of sum eta+_i(dt) - eta-_srv(dt) is attained just after
  // an arrival step; enumerate every stream's step points up to the
  // horizon (or until the backlog has provably drained).
  std::vector<Duration> candidates;
  candidates.push_back(Duration::ns(1));  // immediately after t = 0
  for (const auto& a : arrivals) {
    for (std::int64_t n = 2;; ++n) {
      const Duration step = a.delta_min(n);
      if (step > horizon) break;
      candidates.push_back(step + Duration::ns(1));
      if (n > 1'000'000) break;  // degenerate-model guard
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());

  std::int64_t best = 0;
  for (const Duration dt : candidates) {
    std::int64_t pending = 0;
    for (const auto& a : arrivals) pending += a.eta_plus(dt);
    pending -= service.eta_minus(dt);
    best = std::max(best, pending);
  }
  // If equal rates never drain within the horizon, report unbounded-ish
  // behaviour honestly: check the last point for persistent growth.
  if (arrival_rate == service_rate && !candidates.empty()) {
    std::int64_t at_end = 0;
    for (const auto& a : arrivals) at_end += a.eta_plus(horizon);
    at_end -= service.eta_minus(horizon);
    if (at_end > best) return std::nullopt;
  }
  return best;
}

QueueReport size_receive_queue(const KMatrix& km, const std::string& node,
                               const EventModel& service, Duration horizon) {
  if (km.find_node(node) == nullptr)
    throw std::invalid_argument("size_receive_queue: unknown node " + node);
  QueueReport report;
  report.node = node;
  std::vector<EventModel> arrivals;
  for (const auto& m : km.messages()) {
    const bool receives =
        std::find(m.receivers.begin(), m.receivers.end(), node) != m.receivers.end();
    if (receives) arrivals.push_back(m.activation());
  }
  report.messages_multiplexed = static_cast<std::int64_t>(arrivals.size());
  report.backlog = max_backlog(arrivals, service, horizon);
  return report;
}

}  // namespace symcan

#pragma once

// Buffer/queue dimensioning (paper Section 1: integration problems
// include "buffer under- and over-flows"; Section 5: gateway "queue
// configuration" is an OEM-tunable parameter).
//
// Backlog bound: if events arrive per the arrival curves eta+_i and a
// consumer is guaranteed to remove at least eta-_srv(dt) items in any
// window dt, then the queue population never exceeds
//
//     B = sup over dt >= 0 of ( sum_i eta+_i(dt) - eta-_srv(dt) )
//
// evaluated at the arrival step points (the supremum is attained
// immediately after an arrival). If the long-run arrival rate exceeds the
// service rate the backlog is unbounded.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "symcan/can/kmatrix.hpp"
#include "symcan/model/event_model.hpp"

namespace symcan {

/// Worst-case queue population for `arrivals` multiplexed into one queue
/// served by `service` (one item removed per service event). Returns
/// nullopt when the backlog is unbounded (arrival rate >= service rate
/// with no idle margin), otherwise the exact supremum over windows up to
/// the point where the service guarantee has caught up.
std::optional<std::int64_t> max_backlog(const std::vector<EventModel>& arrivals,
                                        const EventModel& service,
                                        Duration horizon = Duration::s(10));

/// Sizing verdict for one node's receive path.
struct QueueReport {
  std::string node;
  std::int64_t messages_multiplexed = 0;  ///< Streams feeding the queue.
  std::optional<std::int64_t> backlog;    ///< nullopt = unbounded.
  /// Recommended hardware/driver queue depth: backlog plus one slot of
  /// engineering margin.
  std::int64_t recommended_depth() const { return backlog ? *backlog + 1 : -1; }
  bool overflows(std::int64_t capacity) const { return !backlog || *backlog > capacity; }
};

/// Bound the receive-queue depth a node needs when its driver drains the
/// controller with `service` (e.g. a 1 ms polling task handling one frame
/// per activation). Considers every message the node receives.
QueueReport size_receive_queue(const KMatrix& km, const std::string& node,
                               const EventModel& service, Duration horizon = Duration::s(10));

}  // namespace symcan

#include "symcan/analysis/error_model.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace symcan {

namespace {

/// SplitMix64-style chain for the parameter fingerprints.
std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h += v + 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace

std::uint64_t ErrorModel::fingerprint() const {
  std::uint64_t h = 0xe7037ed1a0b428dbULL;
  for (const char c : name()) h = mix64(h, static_cast<std::uint64_t>(c));
  return h;
}

SporadicErrors::SporadicErrors(Duration min_inter_error, std::int64_t initial_errors)
    : min_inter_error_{min_inter_error}, initial_errors_{initial_errors} {
  if (min_inter_error <= Duration::zero())
    throw std::invalid_argument("SporadicErrors: min_inter_error must be > 0");
  if (initial_errors < 0)
    throw std::invalid_argument("SporadicErrors: initial_errors must be >= 0");
}

std::int64_t SporadicErrors::max_faults(Duration t) const {
  if (t <= Duration::zero()) return 0;
  return sat_add_i64(initial_errors_, ceil_div(t, min_inter_error_));
}

std::string SporadicErrors::name() const {
  std::ostringstream os;
  os << "sporadic(T_E=" << to_string(min_inter_error_);
  if (initial_errors_ > 0) os << ", n0=" << initial_errors_;
  os << ")";
  return os.str();
}

std::uint64_t SporadicErrors::fingerprint() const {
  std::uint64_t h = mix64(0x2, static_cast<std::uint64_t>(min_inter_error_.count_ns()));
  return mix64(h, static_cast<std::uint64_t>(initial_errors_));
}

FixedFaults::FixedFaults(std::int64_t faults) : faults_{faults} {
  if (faults < 0) throw std::invalid_argument("FixedFaults: faults must be >= 0");
}

std::string FixedFaults::name() const {
  std::ostringstream os;
  os << "fixed(n=" << faults_ << ")";
  return os.str();
}

std::uint64_t FixedFaults::fingerprint() const {
  return mix64(0x4, static_cast<std::uint64_t>(faults_));
}

BurstErrors::BurstErrors(Duration min_inter_burst, std::int64_t errors_per_burst,
                         Duration intra_burst_gap)
    : min_inter_burst_{min_inter_burst},
      errors_per_burst_{errors_per_burst},
      intra_burst_gap_{intra_burst_gap} {
  if (min_inter_burst <= Duration::zero())
    throw std::invalid_argument("BurstErrors: min_inter_burst must be > 0");
  if (errors_per_burst < 1)
    throw std::invalid_argument("BurstErrors: errors_per_burst must be >= 1");
  if (intra_burst_gap < Duration::zero())
    throw std::invalid_argument("BurstErrors: intra_burst_gap must be >= 0");
}

std::int64_t BurstErrors::max_faults(Duration t) const {
  if (t <= Duration::zero()) return 0;
  // Whole bursts that can start within the window...
  const std::int64_t bursts = ceil_div(t, min_inter_burst_);
  std::int64_t faults = sat_mul_i64(bursts, errors_per_burst_);
  // ...but a trailing partial burst cannot land more faults than the
  // intra-burst spacing admits inside the remaining window.
  if (intra_burst_gap_ > Duration::zero()) {
    const Duration into_last = t - (bursts - 1) * min_inter_burst_;
    const std::int64_t in_last =
        std::min<std::int64_t>(errors_per_burst_, ceil_div(into_last, intra_burst_gap_));
    faults = sat_add_i64(sat_mul_i64(bursts - 1, errors_per_burst_),
                         std::max<std::int64_t>(in_last, 1));
  }
  return faults;
}

Duration BurstErrors::overhead(Duration t, Duration max_retx_frame,
                               const BitTiming& timing) const {
  if (t <= Duration::zero()) return Duration::zero();
  const Duration per_fault = timing.duration_of(error_frame_bits) + max_retx_frame;
  const Duration burst_extent = (errors_per_burst_ - 1) * per_fault;
  const std::int64_t bursts = ceil_div(t + burst_extent, min_inter_burst_);
  return sat_mul_i64(bursts, errors_per_burst_) * per_fault;
}

std::uint64_t BurstErrors::fingerprint() const {
  // name() omits intra_burst_gap, so hash all three parameters explicitly.
  std::uint64_t h = mix64(0x3, static_cast<std::uint64_t>(min_inter_burst_.count_ns()));
  h = mix64(h, static_cast<std::uint64_t>(errors_per_burst_));
  return mix64(h, static_cast<std::uint64_t>(intra_burst_gap_.count_ns()));
}

std::string BurstErrors::name() const {
  std::ostringstream os;
  os << "burst(T_B=" << to_string(min_inter_burst_) << ", k=" << errors_per_burst_ << ")";
  return os.str();
}

}  // namespace symcan

#include "symcan/analysis/provenance.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "symcan/analysis/rta_context.hpp"
#include "symcan/analysis/tt_schedule.hpp"
#include "symcan/can/kmatrix.hpp"
#include "symcan/obs/export.hpp"

namespace symcan::analysis {

Duration Provenance::sum_of_parts() const {
  return bus_blocking + intra_node_blocking + preceding_instances + interference_total +
         error_overhead + own_cost - arrival_credit;
}

Provenance explain_message(const KMatrix& km, const CanRtaConfig& cfg, std::size_t index) {
  ContextLabels labels;
  const MessageContext ctx = build_message_context(km, cfg, index, &labels);
  SolveTrace trace;

  Provenance p;
  p.result = solve_message(ctx, trace);
  p.name = ctx.name;
  p.id = ctx.id;
  p.blocking_frame = labels.blocking_frame;
  p.bus_blocking = labels.bus_blocking;
  p.intra_node_blocking = labels.intra_node_blocking;
  p.own_cost = ctx.cost;
  p.busy_iterates = std::move(trace.busy_iterates);
  if (p.result.diverged) return p;  // No finite window to decompose.

  // Re-evaluate every term of the window recurrence at the recorded
  // fixed point w(q*). Because w* satisfies the recurrence exactly, the
  // terms sum back to w* in integer arithmetic — no residual, no
  // rounding. This mirrors solve_message()'s interference evaluation
  // including the TtGroup build fallback, so each share is precisely
  // what the solver charged.
  const Duration w = trace.critical_window;
  const Duration probe = w + ctx.timing.bit_time();
  p.critical_instance = trace.critical_instance;
  p.critical_window = w;
  p.window_iterates = std::move(trace.window_iterates);
  p.preceding_instances = trace.critical_instance * ctx.cost;
  p.arrival_credit = ctx.activation.delta_min(trace.critical_instance + 1);
  p.error_overhead = ctx.errors->overhead(w + ctx.cost, ctx.max_retx, ctx.timing);

  for (std::size_t i = 0; i < ctx.hp.size(); ++i) {
    const auto& [em, cost] = ctx.hp[i];
    InterferenceShare s;
    s.name = labels.hp[i];
    s.preemptions = em.eta_plus(probe);
    s.contribution = s.preemptions * cost;
    p.interference.push_back(std::move(s));
  }
  for (std::size_t i = 0; i < ctx.tt.size(); ++i) {
    if (auto g = TtGroup::build(ctx.tt[i])) {
      // Offset-group demand is bounded jointly over the hyperperiod;
      // it has no exact per-member split, so the group is one share.
      InterferenceShare s;
      s.name = labels.tt_sender[i];
      s.members = labels.tt_members[i];
      s.offset_group = true;
      s.contribution = g->interference(probe);
      p.interference.push_back(std::move(s));
    } else {
      // Hyperperiod too large: the solver fell back to offset-blind
      // event models, so the members decompose individually after all.
      for (std::size_t j = 0; j < ctx.tt[i].size(); ++j) {
        const TtGroup::Member& m = ctx.tt[i][j];
        InterferenceShare s;
        s.name = labels.tt_members[i][j];
        s.preemptions = EventModel::periodic_jitter(m.period, m.jitter).eta_plus(probe);
        s.contribution = s.preemptions * m.cost;
        p.interference.push_back(std::move(s));
      }
    }
  }
  std::sort(p.interference.begin(), p.interference.end(),
            [](const InterferenceShare& a, const InterferenceShare& b) {
              if (a.contribution != b.contribution) return a.contribution > b.contribution;
              return a.name < b.name;
            });
  for (const auto& s : p.interference) p.interference_total += s.contribution;
  return p;
}

std::optional<std::size_t> find_message(const KMatrix& km, std::string_view name) {
  const auto& msgs = km.messages();
  for (std::size_t i = 0; i < msgs.size(); ++i)
    if (msgs[i].name == name) return i;
  return std::nullopt;
}

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  char buf[256];
  const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (n < 0) {
    va_end(ap2);
    return;
  }
  if (static_cast<std::size_t>(n) < sizeof buf) {
    out.append(buf, static_cast<std::size_t>(n));
  } else {
    // Hostile-length names (escaped message names in JSON) overflow the
    // stack buffer; re-render into a right-sized heap one.
    std::string big(static_cast<std::size_t>(n) + 1, '\0');
    std::vsnprintf(big.data(), big.size(), fmt, ap2);
    big.resize(static_cast<std::size_t>(n));
    out += big;
  }
  va_end(ap2);
}

/// "a -> b -> ... -> z", eliding the middle of long trajectories.
std::string iterates_to_text(const std::vector<Duration>& xs) {
  std::string out;
  constexpr std::size_t kHead = 4, kTail = 2;
  if (xs.size() <= kHead + kTail + 1) {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (i) out += " -> ";
      out += to_string(xs[i]);
    }
    return out;
  }
  for (std::size_t i = 0; i < kHead; ++i) {
    out += to_string(xs[i]);
    out += " -> ";
  }
  appendf(out, "... (%zu elided) ", xs.size() - kHead - kTail);
  for (std::size_t i = xs.size() - kTail; i < xs.size(); ++i) {
    out += "-> ";
    out += to_string(xs[i]);
    if (i + 1 < xs.size()) out += " ";
  }
  return out;
}

std::string iterates_to_json(const std::vector<Duration>& xs) {
  std::string out = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) out += ",";
    appendf(out, "%" PRId64, xs[i].count_ns());
  }
  out += "]";
  return out;
}

}  // namespace

std::string provenance_to_text(const Provenance& p) {
  std::string out;
  const MessageResult& r = p.result;
  appendf(out, "message %s (id 0x%X)\n", p.name.c_str(), p.id);
  if (r.diverged) {
    appendf(out, "verdict: DIVERGED — busy period exceeds the analysis horizon\n");
    appendf(out, "convergence: busy period %s\n", iterates_to_text(p.busy_iterates).c_str());
    return out;
  }
  appendf(out, "verdict: %s  (wcrt %s vs deadline %s, slack %s)\n",
          r.schedulable ? "schedulable" : "DEADLINE MISS", to_string(r.wcrt).c_str(),
          to_string(r.deadline).c_str(), to_string(r.slack()).c_str());
  appendf(out, "busy period: %s  (%" PRId64 " instances, %" PRId64 " fixed-point iterations)\n",
          to_string(r.busy_period).c_str(), r.instances, r.fixedpoint_iterations);
  appendf(out, "critical instance: q* = %" PRId64 "  (window w* = %s)\n", p.critical_instance,
          to_string(p.critical_window).c_str());
  out += "breakdown of the bound:\n";
  appendf(out, "  blocking             %12s", to_string(p.bus_blocking + p.intra_node_blocking).c_str());
  if (!p.blocking_frame.empty())
    appendf(out, "   frame '%s' (bus %s + intra-node %s)", p.blocking_frame.c_str(),
            to_string(p.bus_blocking).c_str(), to_string(p.intra_node_blocking).c_str());
  out += "\n";
  appendf(out, "  preceding instances  %12s   %" PRId64 " x %s\n",
          to_string(p.preceding_instances).c_str(), p.critical_instance,
          to_string(p.own_cost).c_str());
  appendf(out, "  interference         %12s\n", to_string(p.interference_total).c_str());
  for (const auto& s : p.interference) {
    if (s.offset_group) {
      appendf(out, "    %-18s %12s   offset group, %zu members\n", s.name.c_str(),
              to_string(s.contribution).c_str(), s.members.size());
    } else {
      appendf(out, "    %-18s %12s   %" PRId64 " preemptions\n", s.name.c_str(),
              to_string(s.contribution).c_str(), s.preemptions);
    }
  }
  appendf(out, "  error overhead       %12s\n", to_string(p.error_overhead).c_str());
  appendf(out, "  own transmission     %12s\n", to_string(p.own_cost).c_str());
  appendf(out, "  arrival credit       %12s\n", to_string(-p.arrival_credit).c_str());
  appendf(out, "  = bound              %12s   (sum of parts %s wcrt)\n",
          to_string(p.sum_of_parts()).c_str(), p.sum_check() ? "==" : "!=");
  appendf(out, "convergence: busy period %s\n", iterates_to_text(p.busy_iterates).c_str());
  appendf(out, "convergence: window q*   %s\n", iterates_to_text(p.window_iterates).c_str());
  return out;
}

std::string provenance_to_json(const Provenance& p) {
  const MessageResult& r = p.result;
  std::string out = "{";
  appendf(out, "\"message\":\"%s\",", obs::json_escape(p.name).c_str());
  appendf(out, "\"id\":%u,", p.id);
  appendf(out, "\"schedulable\":%s,", r.schedulable ? "true" : "false");
  appendf(out, "\"diverged\":%s,", r.diverged ? "true" : "false");
  appendf(out, "\"wcrt_ns\":%" PRId64 ",", r.wcrt.count_ns());
  appendf(out, "\"bcrt_ns\":%" PRId64 ",", r.bcrt.count_ns());
  appendf(out, "\"deadline_ns\":%" PRId64 ",", r.deadline.count_ns());
  appendf(out, "\"busy_period_ns\":%" PRId64 ",", r.busy_period.count_ns());
  appendf(out, "\"instances\":%" PRId64 ",", r.instances);
  appendf(out, "\"fixedpoint_iterations\":%" PRId64 ",", r.fixedpoint_iterations);
  out += "\"breakdown\":{";
  appendf(out, "\"blocking_frame\":\"%s\",", obs::json_escape(p.blocking_frame).c_str());
  appendf(out, "\"bus_blocking_ns\":%" PRId64 ",", p.bus_blocking.count_ns());
  appendf(out, "\"intra_node_blocking_ns\":%" PRId64 ",", p.intra_node_blocking.count_ns());
  appendf(out, "\"critical_instance\":%" PRId64 ",", p.critical_instance);
  appendf(out, "\"critical_window_ns\":%" PRId64 ",", p.critical_window.count_ns());
  appendf(out, "\"preceding_instances_ns\":%" PRId64 ",", p.preceding_instances.count_ns());
  out += "\"interference\":[";
  for (std::size_t i = 0; i < p.interference.size(); ++i) {
    const InterferenceShare& s = p.interference[i];
    if (i) out += ",";
    out += "{";
    appendf(out, "\"name\":\"%s\",", obs::json_escape(s.name).c_str());
    appendf(out, "\"offset_group\":%s,", s.offset_group ? "true" : "false");
    if (s.offset_group) {
      out += "\"members\":[";
      for (std::size_t j = 0; j < s.members.size(); ++j) {
        if (j) out += ",";
        appendf(out, "\"%s\"", obs::json_escape(s.members[j]).c_str());
      }
      out += "],";
    } else {
      appendf(out, "\"preemptions\":%" PRId64 ",", s.preemptions);
    }
    appendf(out, "\"contribution_ns\":%" PRId64 "}", s.contribution.count_ns());
  }
  out += "],";
  appendf(out, "\"interference_total_ns\":%" PRId64 ",", p.interference_total.count_ns());
  appendf(out, "\"error_overhead_ns\":%" PRId64 ",", p.error_overhead.count_ns());
  appendf(out, "\"own_cost_ns\":%" PRId64 ",", p.own_cost.count_ns());
  appendf(out, "\"arrival_credit_ns\":%" PRId64 ",", p.arrival_credit.count_ns());
  appendf(out, "\"sum_of_parts_ns\":%" PRId64 ",", p.sum_of_parts().count_ns());
  appendf(out, "\"sum_check\":%s},", p.sum_check() ? "true" : "false");
  appendf(out, "\"busy_iterates_ns\":%s,", iterates_to_json(p.busy_iterates).c_str());
  appendf(out, "\"window_iterates_ns\":%s}", iterates_to_json(p.window_iterates).c_str());
  return out;
}

}  // namespace symcan::analysis

#pragma once

// Provenance of one RTA verdict: the bound decomposed into its named
// terms, exact to the nanosecond.
//
// The busy-period solver computes the critical-instance window w* as a
// fixed point, so re-evaluating every term of the recurrence at w* and
// summing them reproduces w* — and therefore the bound — *exactly* in
// integer arithmetic:
//
//   w*    = B_bus + B_intra + q*·C_m + Σ_k I_k(w* + τ_bit) + E(w* + C_m)
//   bound = w* + C_m − δ_min(q* + 1)
//
// explain_message() records the solver's trajectory (via the tracing
// solve_message() overload, which runs the identical code path — an
// explained verdict *is* the verdict), then evaluates each interference
// term once more at w* against the labelled context, attributing every
// nanosecond of the bound to a blocking frame, an interferer, an offset
// group, the error model, or the message itself. sum_check() asserts the
// reconstruction; the differential test in tests/analysis pins it across
// assumption presets.
//
// This is the audit trail the paper's data-sheet exchange needs (Figure
// 6): a guarantee a supplier can question is only useful if the OEM can
// answer *why* the bound is what it is — which interferer dominates,
// how much is error margin, how much is pessimism.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "symcan/analysis/can_rta.hpp"
#include "symcan/util/time.hpp"

namespace symcan::analysis {

/// One named interference term of the critical-instance window.
struct InterferenceShare {
  /// Interfering message name, or the sending node for an offset group.
  std::string name;
  /// Member message names when this share is an offset (TimeTable) group.
  std::vector<std::string> members;
  /// Releases charged inside the window (eta+ count). 0 for offset
  /// groups, whose demand is bounded jointly over the hyperperiod and
  /// does not decompose into per-member release counts.
  std::int64_t preemptions = 0;
  Duration contribution = Duration::zero();
  bool offset_group = false;
};

/// Full provenance of one message's RTA verdict.
struct Provenance {
  std::string name;
  CanId id = 0;

  /// The verdict itself — bit-identical to CanRta::analyze_message().
  MessageResult result;

  // --- Decomposition of the critical-instance window w* (all exact). ---
  std::string blocking_frame;  ///< Largest lower-priority bus frame; "" if none.
  Duration bus_blocking = Duration::zero();
  Duration intra_node_blocking = Duration::zero();
  std::int64_t critical_instance = 0;  ///< 0-based q* attaining the WCRT.
  Duration critical_window = Duration::zero();  ///< w(q*).
  Duration preceding_instances = Duration::zero();  ///< q* · C_m.
  /// Per-interferer shares, sorted by contribution descending (ties by
  /// name). Non-contributing interferers are kept with 0 so the audit
  /// lists the whole interference set.
  std::vector<InterferenceShare> interference;
  Duration interference_total = Duration::zero();
  Duration error_overhead = Duration::zero();
  Duration own_cost = Duration::zero();       ///< C_m.
  Duration arrival_credit = Duration::zero();  ///< δ_min(q* + 1).

  // --- Solver trajectory (the convergence `symcan explain` renders). ---
  std::vector<Duration> busy_iterates;
  std::vector<Duration> window_iterates;  ///< Iterates of w(q*).

  /// blocking + preceding + interference + errors + own cost − credit.
  /// Equals result.wcrt exactly whenever the verdict converged.
  Duration sum_of_parts() const;

  /// True iff sum_of_parts() reproduces the bound (trivially true for a
  /// diverged verdict, which has no finite decomposition).
  bool sum_check() const { return result.diverged || sum_of_parts() == result.wcrt; }
};

/// Analyze message `index` of `km` under `cfg` with full provenance.
/// The embedded verdict is bit-identical to CanRta(km, cfg)
/// .analyze_message(index), iteration counts included.
Provenance explain_message(const KMatrix& km, const CanRtaConfig& cfg, std::size_t index);

/// Index of the message named `name`, or nullopt.
std::optional<std::size_t> find_message(const KMatrix& km, std::string_view name);

/// Human-readable breakdown (the `symcan explain` text output).
std::string provenance_to_text(const Provenance& p);

/// Machine-readable breakdown; durations in integer nanoseconds so the
/// decomposition stays exact through serialization.
std::string provenance_to_json(const Provenance& p);

}  // namespace symcan::analysis

#include "symcan/serve/ring.hpp"

namespace symcan::serve {

const char* to_string(OverflowPolicy policy) {
  switch (policy) {
    case OverflowPolicy::kDropOldest: return "drop-oldest";
    case OverflowPolicy::kBlockWithDeadline: return "block-with-deadline";
    case OverflowPolicy::kReject: break;
  }
  return "reject";
}

bool overflow_policy_from_string(const std::string& text, OverflowPolicy& out) {
  if (text == "reject") out = OverflowPolicy::kReject;
  else if (text == "drop-oldest") out = OverflowPolicy::kDropOldest;
  else if (text == "block-with-deadline") out = OverflowPolicy::kBlockWithDeadline;
  else return false;
  return true;
}

const char* to_string(PressureState state) {
  switch (state) {
    case PressureState::kElevated: return "elevated";
    case PressureState::kSaturated: return "saturated";
    case PressureState::kOk: break;
  }
  return "ok";
}

const char* to_string(PushOutcome outcome) {
  switch (outcome) {
    case PushOutcome::kReplacedOldest: return "replaced-oldest";
    case PushOutcome::kRejected: return "rejected";
    case PushOutcome::kTimedOut: return "timed-out";
    case PushOutcome::kAccepted: break;
  }
  return "accepted";
}

}  // namespace symcan::serve

#include "symcan/serve/captain.hpp"

#include <stdexcept>

#include "symcan/obs/obs.hpp"

namespace symcan::serve {

const char* to_string(ServeMode mode) {
  switch (mode) {
    case ServeMode::kNoOptimize: return "no-optimize";
    case ServeMode::kEssential: return "essential";
    case ServeMode::kFull: break;
  }
  return "full";
}

Captain::Captain(CaptainConfig cfg) : cfg_{cfg} {
  if (cfg_.degrade_after <= 0 || cfg_.recover_after <= 0)
    throw std::invalid_argument("captain streak thresholds must be positive");
}

bool Captain::admits(RequestKind kind) const {
  switch (mode()) {
    case ServeMode::kFull: return true;
    case ServeMode::kNoOptimize: return kind != RequestKind::kOptimize;
    case ServeMode::kEssential:
      return kind != RequestKind::kOptimize && kind != RequestKind::kExplain &&
             kind != RequestKind::kProb;
  }
  return true;
}

void Captain::observe(PressureState pressure) {
  switch (pressure) {
    case PressureState::kSaturated:
      ok_streak_ = 0;
      if (++saturated_streak_ >= cfg_.degrade_after) {
        saturated_streak_ = 0;
        if (mode() == ServeMode::kFull) set_mode(ServeMode::kNoOptimize);
        else if (mode() == ServeMode::kNoOptimize) set_mode(ServeMode::kEssential);
      }
      break;
    case PressureState::kOk:
      saturated_streak_ = 0;
      if (++ok_streak_ >= cfg_.recover_after) {
        ok_streak_ = 0;
        if (mode() == ServeMode::kEssential) set_mode(ServeMode::kNoOptimize);
        else if (mode() == ServeMode::kNoOptimize) set_mode(ServeMode::kFull);
      }
      break;
    case PressureState::kElevated:
      // Hold: elevated is neither evidence of overload nor of recovery.
      saturated_streak_ = 0;
      ok_streak_ = 0;
      break;
  }
}

void Captain::record_shed(RequestKind kind) {
  if (kind == RequestKind::kOptimize) {
    shed_optimize_.fetch_add(1, std::memory_order_relaxed);
    obs::count("serve.captain.shed.optimize");
    obs::instant("serve.captain.shed.optimize");
  } else if (kind == RequestKind::kExplain) {
    shed_explain_.fetch_add(1, std::memory_order_relaxed);
    obs::count("serve.captain.shed.explain");
    obs::instant("serve.captain.shed.explain");
  } else if (kind == RequestKind::kProb) {
    shed_prob_.fetch_add(1, std::memory_order_relaxed);
    obs::count("serve.captain.shed.prob");
    obs::instant("serve.captain.shed.prob");
  }
}

void Captain::set_mode(ServeMode next) {
  mode_.store(next, std::memory_order_relaxed);
  ++mode_changes_;
  obs::count("serve.captain.mode_changes");
  switch (next) {
    case ServeMode::kFull: obs::instant("serve.captain.mode.full"); break;
    case ServeMode::kNoOptimize: obs::instant("serve.captain.mode.no-optimize"); break;
    case ServeMode::kEssential: obs::instant("serve.captain.mode.essential"); break;
  }
}

}  // namespace symcan::serve

#pragma once

// The JSONL-over-stdio transport for `symcan serve --stdio`.
//
// One request object per input line, one response object per output
// line. The loop is deliberately deterministic so CI can replay a
// committed request file and diff the bytes:
//
//   cycle:  read up to batch_max lines
//           -> parse; malformed lines answer immediately (kInvalid), in
//              arrival order, without occupying a ring slot
//           -> submit the rest to the ring; overflow casualties answer
//              immediately (kRejected)
//           -> one Captain pressure sample
//           -> pop a batch, handle it via the executor, emit responses
//              in request order
//
// Responses within a cycle are therefore in arrival order (invalid and
// rejected first, then the handled batch), and the whole transcript is
// a pure function of the input lines and the ServeConfig — at any
// --jobs width, by the handle_batch determinism contract.

#include <iosfwd>

#include "symcan/serve/core.hpp"

namespace symcan::serve {

/// Run the serve loop until EOF on `in`. Returns the process exit code
/// (0: served until EOF; the per-request exit codes ride inside the
/// responses).
int run_stdio_serve(ServeCore& core, std::istream& in, std::ostream& out);

}  // namespace symcan::serve

#include "symcan/serve/telemetry.hpp"

#include <cstring>
#include <stdexcept>

#include "symcan/obs/export.hpp"

namespace symcan::serve {

void RequestTelemetry::set_id(const std::string& s) {
  const std::size_t n = s.size() < sizeof id - 1 ? s.size() : sizeof id - 1;
  std::memcpy(id, s.data(), n);
  id[n] = '\0';
}

std::string telemetry_to_jsonl(const RequestTelemetry& t) {
  std::string out = "{\"id\":\"" + obs::json_escape(t.id) + "\"";
  out += ",\"kind\":\"" + std::string(to_string(t.kind)) + "\"";
  out += ",\"outcome\":\"" + std::string(to_string(t.outcome)) + "\"";
  out += ",\"exit_code\":" + std::to_string(t.exit_code);
  out += ",\"enqueue_ns\":" + std::to_string(t.enqueue_ns);
  out += ",\"dequeue_ns\":" + std::to_string(t.dequeue_ns);
  out += ",\"start_ns\":" + std::to_string(t.start_ns);
  out += ",\"finish_ns\":" + std::to_string(t.finish_ns);
  out += ",\"queue_wait_ns\":" + std::to_string(t.queue_wait_ns());
  out += ",\"service_ns\":" + std::to_string(t.service_ns());
  out += ",\"batch_id\":" + std::to_string(t.batch_id);
  out += ",\"flow\":" + std::to_string(t.flow);
  out += ",\"matrix_cache\":" + std::to_string(static_cast<int>(t.matrix_cache));
  out += ",\"response_bytes\":" + std::to_string(t.response_bytes);
  out += "}";
  return out;
}

FlightRecorder::FlightRecorder(std::size_t capacity) : capacity_{capacity} {
  if (capacity_ == 0) throw std::invalid_argument("flight recorder capacity must be positive");
  ring_.resize(capacity_);
}

void FlightRecorder::record(const RequestTelemetry& t) {
  std::lock_guard<std::mutex> lk{m_};
  ring_[next_] = t;
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

std::vector<RequestTelemetry> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> lk{m_};
  std::vector<RequestTelemetry> out;
  const std::size_t held =
      recorded_ < static_cast<std::int64_t>(capacity_) ? static_cast<std::size_t>(recorded_)
                                                       : capacity_;
  out.reserve(held);
  // Oldest-first: the ring index `next_` points at the oldest retained
  // record once the ring has wrapped.
  const std::size_t first = recorded_ < static_cast<std::int64_t>(capacity_) ? 0 : next_;
  for (std::size_t i = 0; i < held; ++i) out.push_back(ring_[(first + i) % capacity_]);
  return out;
}

std::int64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> lk{m_};
  return recorded_;
}

std::string FlightRecorder::dump_jsonl() const {
  std::string out;
  for (const RequestTelemetry& t : snapshot()) {
    out += telemetry_to_jsonl(t);
    out += "\n";
  }
  return out;
}

}  // namespace symcan::serve

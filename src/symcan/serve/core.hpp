#pragma once

// ServeCore: the in-process heart of `symcan serve`, usable without any
// transport (tests and embedders call it directly; serve --stdio is a
// thin JSONL loop over it — the transport layer stays pluggable).
//
// One core owns:
//   - the bounded request ring (admission; overflow policies),
//   - the Captain (graceful degradation under sustained pressure),
//   - one sharded IncrementalRta shared by every request, so hot
//     K-matrices stay warm across requests and across batches,
//   - a bounded parsed-matrix memo keyed by the exact CSV text (and
//     diagnostic policy), so re-submitted matrices skip the parser,
//   - a ParallelExecutor for batch fan-out,
//   - the telemetry plane: a RequestTelemetry record per request
//     (queue-wait / service-time decomposition, batch id, cache
//     hit/miss, outcome), rolling-window latency/rate aggregates and
//     per-kind SLO burn counters (obs/window.hpp), and a flight
//     recorder holding the last N records for post-incident dumps.
//
// Determinism: handle() is a pure function of the request given the
// pipeline stages' determinism contracts — caches return bit-identical
// results to fresh computation, per-request seeds drive the stochastic
// stages, and parallel_map preserves order — so a batch's responses are
// bit-identical to handling each request alone, at any thread width,
// and byte-for-byte equal to the one-shot CLI on the same inputs
// (tests/serve/serve_differential_test.cpp). Telemetry rides alongside
// the response and never feeds back into its bytes.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "symcan/analysis/incremental_rta.hpp"
#include "symcan/obs/window.hpp"
#include "symcan/serve/captain.hpp"
#include "symcan/serve/request.hpp"
#include "symcan/serve/ring.hpp"
#include "symcan/serve/telemetry.hpp"
#include "symcan/util/parallel.hpp"

namespace symcan::serve {

/// Per-kind latency SLO targets (milliseconds); 0 disables the kind's
/// tracker. Defaults reflect each kind's intrinsic cost tier.
struct SloTargets {
  std::int64_t analyze_ms = 50;
  std::int64_t explain_ms = 200;
  std::int64_t validate_ms = 2000;
  std::int64_t optimize_ms = 30'000;
  std::int64_t health_ms = 5;
  std::int64_t telemetry_ms = 5;
  std::int64_t prob_ms = 100;

  std::int64_t for_kind(RequestKind kind) const;
};

struct TelemetryConfig {
  /// Flight-recorder depth (last N requests retained).
  std::size_t flight_capacity = 256;
  /// When non-empty, the flight recorder dumps its ring here (JSONL,
  /// truncating) on first shed, first bound violation, a telemetry
  /// request with dump:true, and shutdown.
  std::string flight_path;
  /// Rolling-window shape shared by the latency window and SLO burn
  /// counters: bucket_count sub-windows of bucket_ms each.
  std::int64_t window_bucket_ms = 5000;
  std::size_t window_buckets = 12;
  double slo_objective = 0.99;
  SloTargets slo;
};

struct ServeConfig {
  RingConfig ring;
  CaptainConfig captain;
  /// Shared RTA cache; `symcan serve` defaults to 8 shards (CLI
  /// --serve-shards) so batch workers do not serialize on one lock.
  RtaCacheConfig cache;
  /// Parsed-matrix memo entries (distinct CSV texts held ready).
  std::size_t matrix_cache_capacity = 64;
  /// ParallelExecutor width for handle_batch (0 = hardware).
  int jobs = 0;
  /// Requests coalesced per scheduling cycle.
  std::size_t batch_max = 32;
  DiagnosticPolicy policy = DiagnosticPolicy::kLenient;
  TelemetryConfig telemetry;
  /// Version/build string surfaced in health_json (the CLI passes its
  /// version_string()); empty omits the key's content, not the key.
  std::string build_info;
  /// When non-empty, the stdio server rewrites the Prometheus exposition
  /// of the global obs registry here once per scheduling cycle.
  std::string metrics_prom_path;
};

/// A request as it travels through the ring: the payload plus the
/// telemetry stamps the transport has taken so far. Timestamps are
/// core-clock nanoseconds (now_ns()); flow is the obs trace-context id.
struct QueuedRequest {
  ServeRequest req;
  std::int64_t enqueue_ns = 0;
  std::int64_t dequeue_ns = 0;
  std::uint64_t flow = 0;
};

class ServeCore {
 public:
  explicit ServeCore(ServeConfig cfg = {});

  const ServeConfig& config() const { return cfg_; }

  /// Monotonic nanoseconds since core construction — the clock every
  /// telemetry stamp uses.
  std::int64_t now_ns() const;

  /// Answer one request (any thread). Never throws: malformed or
  /// unprocessable requests become kInvalid responses, inadmissible
  /// kinds under the current mode become kShed. Telemetry is recorded
  /// with enqueue == dequeue == start (no queue time outside the ring).
  ServeResponse handle(const ServeRequest& req);

  /// Answer a batch via the executor; responses in request order,
  /// bit-identical to handling each request alone.
  std::vector<ServeResponse> handle_batch(const std::vector<ServeRequest>& reqs);

  /// Transport path: a popped ring batch, telemetry stamps included.
  std::vector<ServeResponse> handle_batch(const std::vector<QueuedRequest>& reqs);

  /// Ring producer / consumer sides for transports. submit() stamps the
  /// enqueue time and assigns the flow id; rejected / evicted / timed-
  /// out requests are recorded in telemetry here, since no worker will
  /// ever see them.
  PushOutcome submit(ServeRequest req, std::optional<QueuedRequest>* victim = nullptr);
  std::vector<QueuedRequest> take_batch();

  BoundedRing<QueuedRequest>& ring() { return ring_; }
  Captain& captain() { return captain_; }
  const analysis::IncrementalRta& rta_cache() const { return rta_; }
  const FlightRecorder& flight_recorder() const { return flight_; }

  /// The `health` request payload: mode, pressure, ring / cache /
  /// request counters, uptime + build info, windowed rates/latency and
  /// SLO burn — one JSON object.
  std::string health_json() const;

  /// The `telemetry` request payload: uptime, windowed stats, per-kind
  /// SLO state and flight-recorder occupancy.
  std::string telemetry_json() const;

  /// Flush the flight recorder to cfg.telemetry.flight_path (JSONL,
  /// truncating). Returns false when no path is configured. `reason`
  /// labels the dump in obs and in the dumps counter.
  bool dump_flight(const char* reason);

  std::int64_t handled() const { return ok_ + failed_ + invalid_ + shed_; }
  std::int64_t shed_count() const { return shed_; }

 private:
  /// Parse (or recall) the request's matrix. Throws ParseError on a
  /// malformed matrix; the memo stores successful parses only. `hit`
  /// (when non-null) reports whether the memo already held it.
  std::shared_ptr<const KMatrix> matrix_for(const std::string& csv, bool* hit = nullptr);

  /// The actual request body: stamps start/finish around the previous
  /// handle() logic and records the telemetry.
  ServeResponse handle_queued(const QueuedRequest& q, std::uint64_t batch_id);

  /// Window/SLO/flight/registry bookkeeping for one finished record.
  void finish_telemetry(RequestTelemetry& t);

  std::size_t kind_index(RequestKind kind) const {
    return static_cast<std::size_t>(kind);
  }

  ServeConfig cfg_;
  std::chrono::steady_clock::time_point epoch_;
  BoundedRing<QueuedRequest> ring_;
  Captain captain_;
  analysis::IncrementalRta rta_;
  ParallelExecutor pool_;

  /// Bounded LRU of parsed matrices, keyed by the exact CSV text —
  /// exact-text keys cannot collide, so a hit is the same matrix by
  /// construction. Guarded by matrix_m_.
  using MatrixEntry = std::pair<std::string, std::shared_ptr<const KMatrix>>;
  mutable std::mutex matrix_m_;
  std::list<MatrixEntry> matrix_lru_;
  std::unordered_map<std::string, std::list<MatrixEntry>::iterator> matrix_map_;
  std::int64_t matrix_hits_ = 0;    ///< Guarded by matrix_m_.
  std::int64_t matrix_misses_ = 0;  ///< Guarded by matrix_m_.

  std::atomic<std::int64_t> ok_{0};
  std::atomic<std::int64_t> failed_{0};
  std::atomic<std::int64_t> invalid_{0};
  std::atomic<std::int64_t> shed_{0};

  // --- telemetry plane (always on; obs::enabled() gates only the
  // global registry/tracer side) ---
  std::atomic<std::uint64_t> flow_seq_{0};
  std::atomic<std::uint64_t> batch_seq_{0};
  FlightRecorder flight_;
  obs::WindowedHistogram window_service_us_;  ///< Service time, all kinds.
  obs::WindowedCounter window_requests_;
  obs::WindowedCounter window_errors_;  ///< failed + invalid outcomes.
  obs::WindowedCounter window_shed_;    ///< shed + rejected/timed-out.
  /// Indexed by kind_index(); disabled targets hold nullptr.
  std::array<std::unique_ptr<obs::SloTracker>, 7> slo_;
  std::atomic<std::int64_t> dumps_{0};
  std::atomic<bool> dumped_on_shed_{false};
  std::atomic<bool> dumped_on_violation_{false};
  std::mutex dump_m_;  ///< Serializes flight-dump file writes.
};

}  // namespace symcan::serve

#pragma once

// ServeCore: the in-process heart of `symcan serve`, usable without any
// transport (tests and embedders call it directly; serve --stdio is a
// thin JSONL loop over it — the transport layer stays pluggable).
//
// One core owns:
//   - the bounded request ring (admission; overflow policies),
//   - the Captain (graceful degradation under sustained pressure),
//   - one sharded IncrementalRta shared by every request, so hot
//     K-matrices stay warm across requests and across batches,
//   - a bounded parsed-matrix memo keyed by the exact CSV text (and
//     diagnostic policy), so re-submitted matrices skip the parser,
//   - a ParallelExecutor for batch fan-out.
//
// Determinism: handle() is a pure function of the request given the
// pipeline stages' determinism contracts — caches return bit-identical
// results to fresh computation, per-request seeds drive the stochastic
// stages, and parallel_map preserves order — so a batch's responses are
// bit-identical to handling each request alone, at any thread width,
// and byte-for-byte equal to the one-shot CLI on the same inputs
// (tests/serve/serve_differential_test.cpp).

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "symcan/analysis/incremental_rta.hpp"
#include "symcan/serve/captain.hpp"
#include "symcan/serve/request.hpp"
#include "symcan/serve/ring.hpp"
#include "symcan/util/parallel.hpp"

namespace symcan::serve {

struct ServeConfig {
  RingConfig ring;
  CaptainConfig captain;
  /// Shared RTA cache; `symcan serve` defaults to 8 shards (CLI
  /// --serve-shards) so batch workers do not serialize on one lock.
  RtaCacheConfig cache;
  /// Parsed-matrix memo entries (distinct CSV texts held ready).
  std::size_t matrix_cache_capacity = 64;
  /// ParallelExecutor width for handle_batch (0 = hardware).
  int jobs = 0;
  /// Requests coalesced per scheduling cycle.
  std::size_t batch_max = 32;
  DiagnosticPolicy policy = DiagnosticPolicy::kLenient;
};

class ServeCore {
 public:
  explicit ServeCore(ServeConfig cfg = {});

  const ServeConfig& config() const { return cfg_; }

  /// Answer one request (any thread). Never throws: malformed or
  /// unprocessable requests become kInvalid responses, inadmissible
  /// kinds under the current mode become kShed.
  ServeResponse handle(const ServeRequest& req);

  /// Answer a batch via the executor; responses in request order,
  /// bit-identical to handling each request alone.
  std::vector<ServeResponse> handle_batch(const std::vector<ServeRequest>& reqs);

  /// Ring producer / consumer sides for transports.
  PushOutcome submit(ServeRequest req, std::optional<ServeRequest>* victim = nullptr);
  std::vector<ServeRequest> take_batch() { return ring_.pop_batch(cfg_.batch_max); }

  BoundedRing<ServeRequest>& ring() { return ring_; }
  Captain& captain() { return captain_; }
  const analysis::IncrementalRta& rta_cache() const { return rta_; }

  /// The `health` request payload: mode, pressure, ring / cache /
  /// request counters as one JSON object.
  std::string health_json() const;

  std::int64_t handled() const { return ok_ + failed_ + invalid_ + shed_; }
  std::int64_t shed_count() const { return shed_; }

 private:
  /// Parse (or recall) the request's matrix. Throws ParseError on a
  /// malformed matrix; the memo stores successful parses only.
  std::shared_ptr<const KMatrix> matrix_for(const std::string& csv);

  ServeConfig cfg_;
  BoundedRing<ServeRequest> ring_;
  Captain captain_;
  analysis::IncrementalRta rta_;
  ParallelExecutor pool_;

  /// Bounded LRU of parsed matrices, keyed by the exact CSV text —
  /// exact-text keys cannot collide, so a hit is the same matrix by
  /// construction. Guarded by matrix_m_.
  using MatrixEntry = std::pair<std::string, std::shared_ptr<const KMatrix>>;
  mutable std::mutex matrix_m_;
  std::list<MatrixEntry> matrix_lru_;
  std::unordered_map<std::string, std::list<MatrixEntry>::iterator> matrix_map_;
  std::int64_t matrix_hits_ = 0;    ///< Guarded by matrix_m_.
  std::int64_t matrix_misses_ = 0;  ///< Guarded by matrix_m_.

  std::atomic<std::int64_t> ok_{0};
  std::atomic<std::int64_t> failed_{0};
  std::atomic<std::int64_t> invalid_{0};
  std::atomic<std::int64_t> shed_{0};
};

}  // namespace symcan::serve

#pragma once

// Bounded multi-producer / single-consumer request ring for `symcan
// serve`.
//
// The ring is the service's only admission point, so its contract is
// spelled out and contract-tested (tests/serve/ring_test.cpp): every
// push returns exactly one PushOutcome, and the lifetime counters
// satisfy, at every quiescent point,
//
//   pushes            == accepted + rejected + timed_out
//   accepted          == popped + dropped_oldest + size()
//
// i.e. no request is ever lost unaccounted — it is either still queued,
// handed to the consumer, or the named casualty of an overflow policy.
//
// Overflow policies (RingConfig::overflow):
//   kReject            full ring refuses the new request (kRejected).
//   kDropOldest        full ring evicts the oldest queued request to
//                      admit the new one; the victim is handed back to
//                      the producer (kReplacedOldest) so a rejection
//                      response can still be sent for it.
//   kBlockWithDeadline the producer waits up to block_deadline for the
//                      consumer to drain a slot; kTimedOut on expiry.
//
// Pressure states (PressureState): a load-shedding signal derived from
// occupancy — kOk below elevated_fraction, kElevated from there up to
// saturated_fraction, kSaturated above. The Captain samples it once per
// scheduling cycle; the thresholds are config so the contract tests can
// walk every transition with a tiny ring.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "symcan/util/time.hpp"

namespace symcan::serve {

enum class OverflowPolicy : std::uint8_t { kReject, kDropOldest, kBlockWithDeadline };

/// Wire/CLI spelling: "reject", "drop-oldest", "block-with-deadline".
const char* to_string(OverflowPolicy policy);
bool overflow_policy_from_string(const std::string& text, OverflowPolicy& out);

enum class PressureState : std::uint8_t { kOk, kElevated, kSaturated };

/// "ok", "elevated", "saturated".
const char* to_string(PressureState state);

enum class PushOutcome : std::uint8_t {
  kAccepted,        ///< Queued; a free slot existed.
  kReplacedOldest,  ///< Queued; the oldest queued request was evicted for it.
  kRejected,        ///< Refused; ring full under kReject.
  kTimedOut,        ///< Refused; deadline expired under kBlockWithDeadline.
};

const char* to_string(PushOutcome outcome);

struct RingConfig {
  std::size_t capacity = 256;
  OverflowPolicy overflow = OverflowPolicy::kReject;
  /// kBlockWithDeadline: how long a producer may wait for a slot.
  Duration block_deadline = Duration::ms(100);
  /// Occupancy fractions where pressure() changes state.
  double elevated_fraction = 0.5;
  double saturated_fraction = 0.9;
};

/// Lifetime counters (monotonic). `accepted` includes kReplacedOldest
/// pushes; `dropped_oldest` counts their victims.
struct RingStats {
  std::int64_t pushes = 0;
  std::int64_t accepted = 0;
  std::int64_t rejected = 0;
  std::int64_t timed_out = 0;
  std::int64_t dropped_oldest = 0;
  std::int64_t popped = 0;
};

template <typename T>
class BoundedRing {
 public:
  explicit BoundedRing(RingConfig cfg = {}) : cfg_{cfg} {
    if (cfg_.capacity == 0) throw std::invalid_argument("ring capacity must be positive");
    if (!(cfg_.elevated_fraction >= 0.0) || !(cfg_.saturated_fraction >= cfg_.elevated_fraction))
      throw std::invalid_argument("pressure thresholds must satisfy 0 <= elevated <= saturated");
  }

  const RingConfig& config() const { return cfg_; }

  /// Enqueue from any thread. Under kDropOldest a full ring moves the
  /// evicted request into *victim (when non-null) so the producer can
  /// answer for it; victim is left empty for every other outcome.
  PushOutcome push(T item, std::optional<T>* victim = nullptr) {
    std::unique_lock<std::mutex> lock(m_);
    ++stats_.pushes;
    if (q_.size() >= cfg_.capacity) {
      switch (cfg_.overflow) {
        case OverflowPolicy::kReject:
          ++stats_.rejected;
          return PushOutcome::kRejected;
        case OverflowPolicy::kDropOldest: {
          if (victim) victim->emplace(std::move(q_.front()));
          q_.pop_front();
          ++stats_.dropped_oldest;
          q_.push_back(std::move(item));
          ++stats_.accepted;
          return PushOutcome::kReplacedOldest;
        }
        case OverflowPolicy::kBlockWithDeadline: {
          const auto deadline = std::chrono::steady_clock::now() +
                                std::chrono::nanoseconds(cfg_.block_deadline.count_ns());
          if (!slot_cv_.wait_until(lock, deadline,
                                   [&] { return q_.size() < cfg_.capacity; })) {
            ++stats_.timed_out;
            return PushOutcome::kTimedOut;
          }
          break;  // A slot freed in time; fall through to the accept path.
        }
      }
    }
    q_.push_back(std::move(item));
    ++stats_.accepted;
    return PushOutcome::kAccepted;
  }

  /// Dequeue up to `max` requests in FIFO order (consumer thread).
  /// Never blocks; an empty ring yields an empty batch.
  std::vector<T> pop_batch(std::size_t max) {
    std::vector<T> out;
    {
      std::lock_guard<std::mutex> lock(m_);
      const std::size_t n = q_.size() < max ? q_.size() : max;
      out.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        out.push_back(std::move(q_.front()));
        q_.pop_front();
        ++stats_.popped;
      }
    }
    // Outside the lock: waking blocked producers does not need it held.
    slot_cv_.notify_all();
    return out;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(m_);
    return q_.size();
  }

  /// Load-shedding signal from current occupancy.
  PressureState pressure() const {
    std::lock_guard<std::mutex> lock(m_);
    const double occupancy =
        static_cast<double>(q_.size()) / static_cast<double>(cfg_.capacity);
    if (occupancy >= cfg_.saturated_fraction) return PressureState::kSaturated;
    if (occupancy >= cfg_.elevated_fraction) return PressureState::kElevated;
    return PressureState::kOk;
  }

  RingStats stats() const {
    std::lock_guard<std::mutex> lock(m_);
    return stats_;
  }

 private:
  RingConfig cfg_;
  mutable std::mutex m_;
  std::condition_variable slot_cv_;
  std::deque<T> q_;      ///< Guarded by m_.
  RingStats stats_;      ///< Guarded by m_.
};

}  // namespace symcan::serve

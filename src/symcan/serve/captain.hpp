#pragma once

// The serve mode manager ("Captain"): graceful degradation under
// sustained pressure.
//
// Shedding order is by cost, most expensive first, so the cheap
// always-needed questions stay answerable for everyone:
//
//   kFull        everything admitted
//   kNoOptimize  optimize shed (GA runs are orders of magnitude above
//                the rest)
//   kEssential   optimize + explain + prob shed; analyze / validate /
//                health stay live (prob is a convolution fan-out per
//                message — affordable under normal load, first luxury
//                to drop when essentials are at risk)
//
// The Captain samples ring pressure once per scheduling cycle
// (observe()). degrade_after consecutive kSaturated samples step one
// mode down; recover_after consecutive kOk samples step one mode up;
// kElevated holds the current mode and resets both streaks. Hysteresis
// comes from recover_after > degrade_after, so a ring oscillating
// around the saturation threshold does not flap modes.
//
// Thread safety: observe() runs only on the scheduler thread; admits()
// and record_shed() are called from worker threads mid-batch, so the
// mode is an atomic and the shed counters are atomics. Every mode
// change and every shed decision is emitted as an obs event
// (serve.captain.* counters + instants), making degradation observable
// rather than a silent quality cliff.

#include <atomic>
#include <cstdint>
#include <string>

#include "symcan/serve/request.hpp"
#include "symcan/serve/ring.hpp"

namespace symcan::serve {

enum class ServeMode : std::uint8_t { kFull, kNoOptimize, kEssential };

/// "full", "no-optimize", "essential".
const char* to_string(ServeMode mode);

struct CaptainConfig {
  /// Consecutive saturated samples before degrading one level.
  int degrade_after = 3;
  /// Consecutive ok samples before recovering one level (> degrade_after
  /// for hysteresis).
  int recover_after = 8;
};

class Captain {
 public:
  explicit Captain(CaptainConfig cfg = {});

  ServeMode mode() const { return mode_.load(std::memory_order_relaxed); }

  /// Whether the current mode admits this request kind (worker threads).
  bool admits(RequestKind kind) const;

  /// Record one pressure sample (scheduler thread only); may change mode.
  void observe(PressureState pressure);

  /// Account a shed decision for an inadmissible request (worker
  /// threads); emits the obs event.
  void record_shed(RequestKind kind);

  std::int64_t shed_optimize() const { return shed_optimize_.load(std::memory_order_relaxed); }
  std::int64_t shed_explain() const { return shed_explain_.load(std::memory_order_relaxed); }
  std::int64_t shed_prob() const { return shed_prob_.load(std::memory_order_relaxed); }
  std::int64_t mode_changes() const { return mode_changes_; }

 private:
  void set_mode(ServeMode next);

  CaptainConfig cfg_;
  std::atomic<ServeMode> mode_{ServeMode::kFull};
  int saturated_streak_ = 0;  ///< Scheduler thread only.
  int ok_streak_ = 0;         ///< Scheduler thread only.
  std::int64_t mode_changes_ = 0;  ///< Scheduler thread only.
  std::atomic<std::int64_t> shed_optimize_{0};
  std::atomic<std::int64_t> shed_explain_{0};
  std::atomic<std::int64_t> shed_prob_{0};
};

}  // namespace symcan::serve

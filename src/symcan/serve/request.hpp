#pragma once

// The `symcan serve` wire grammar: one flat JSON object per line in,
// one JSON object per line out.
//
// Requests name one of the CLI's analysis questions (analyze / prob /
// explain / validate / optimize) plus `health`, and carry the K-Matrix
// inline as CSV text — the service is long-lived and must not trust client paths.
// Parsing rides the util::Diagnostics contract exactly like the file
// loaders: a malformed request yields line-numbered typed diagnostics
// and a structured `invalid` response, never a dropped connection, and
// strict mode fails on a superset of what lenient fails on.
//
// Field defaults mirror the CLI flag defaults byte for byte (validate
// seed 1, optimize seed 7, millis 2000, ...), so a request that spells
// only the essentials gets the same answer as the bare CLI invocation —
// the differential test compares the bytes.
//
// parse ∘ serialize ∘ parse is the identity on accepted requests
// (checked by the fuzz harness): request_to_jsonl emits a canonical
// spelling that re-parses to an equal ServeRequest.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "symcan/pipeline/stages.hpp"
#include "symcan/util/diagnostics.hpp"

namespace symcan::serve {

enum class RequestKind : std::uint8_t {
  kAnalyze,
  kExplain,
  kValidate,
  kOptimize,
  kHealth,
  kTelemetry,
  kProb,  ///< Appended last so existing kind indices stay stable.
};

/// Wire spelling: "analyze", "explain", "validate", "optimize", "health",
/// "telemetry", "prob".
const char* to_string(RequestKind kind);
bool request_kind_from_string(const std::string& text, RequestKind& out);

/// One parsed request line. Optional fields distinguish "absent" from an
/// explicit value only where the CLI default depends on the command
/// (seed: validate uses 1, optimize uses 7); everywhere else the struct
/// default IS the CLI default, so absent and default-spelled requests
/// are the same request.
struct ServeRequest {
  std::string id;  ///< Client correlation token, echoed in the response.
  RequestKind kind = RequestKind::kAnalyze;
  std::string matrix_csv;  ///< Inline K-Matrix CSV; required except for health.

  // analyze / explain assumption bundle; optimize maps kBestCase to the
  // GA's --best-case toggle. Not accepted for validate (the CLI refuses
  // assumption presets there — a best-case "violation" is meaningless).
  pipeline::AssumptionPreset preset = pipeline::AssumptionPreset::kDefault;

  // --jitter / --override-known, valid for every matrix-carrying kind.
  std::optional<double> jitter;
  bool override_known = false;

  std::string message;  ///< explain only: the message to explain.
  bool json = false;    ///< explain / validate: JSON instead of text.

  std::int64_t millis = 2000;             ///< validate simulation span.
  std::optional<std::uint64_t> seed;      ///< validate: 1, optimize: 7.
  std::string errors = "none";            ///< validate: none|sporadic|burst.
  std::optional<std::int64_t> error_gap_ms;  ///< validate; per-kind default.

  int generations = 25;        ///< optimize
  int population = 32;         ///< optimize
  double target_jitter = 0.25; ///< optimize

  // prob only: deadline-miss probability knobs, carried as exact
  // parts-per-million integers (the same convention as the CLI flags and
  // the cache keys). The degenerate defaults make a bare prob request
  // agree with analyze bit for bit on the verdicts.
  std::int64_t fault_ppm = 1'000'000;
  std::int64_t stuff_ppm = 1'000'000;
  std::int64_t jitter_ppm = 1'000'000;
  std::int64_t max_rungs = 96;

  /// telemetry only: also flush the flight recorder to its dump path.
  bool dump = false;

  bool operator==(const ServeRequest&) const = default;
};

/// Parse one request line. nullopt when the line is unusable; every
/// problem is a line-numbered diagnostic in `diags` (line_no is the
/// 1-based position of this line in the request stream).
std::optional<ServeRequest> request_from_jsonl(const std::string& line, std::size_t line_no,
                                               Diagnostics& diags);

/// Canonical one-line serialization; request_from_jsonl(result) yields
/// an equal ServeRequest (fields at their defaults are omitted).
std::string request_to_jsonl(const ServeRequest& req);

enum class ResponseStatus : std::uint8_t {
  kOk,        ///< Analysis ran, verdict clean (CLI exit 0).
  kFailed,    ///< Analysis ran, verdict negative — misses/violations (CLI exit 1).
  kInvalid,   ///< Request malformed or unprocessable (CLI exit 2).
  kShed,      ///< Captain refused the kind under pressure.
  kRejected,  ///< Ring overflow (reject / drop-oldest victim / deadline).
};

const char* to_string(ResponseStatus status);

struct ServeResponse {
  std::string id;  ///< Echo of the request id ("" when unparseable).
  RequestKind kind = RequestKind::kAnalyze;
  ResponseStatus status = ResponseStatus::kOk;
  int exit_code = 0;   ///< The CLI exit code the same invocation returns.
  std::string output;  ///< Exact bytes the CLI writes to stdout.
  /// kInvalid: the collected diagnostics, line numbers included.
  std::vector<Diagnostic> diagnostics;
  /// health / telemetry: raw JSON object (emitted unquoted under
  /// "health" or "telemetry" by the response kind).
  std::string health_json;
};

/// One-line JSON response.
std::string response_to_jsonl(const ServeResponse& resp);

/// Convenience: the invalid-request response for a failed parse.
ServeResponse invalid_response(const std::string& id, const Diagnostics& diags);

}  // namespace symcan::serve

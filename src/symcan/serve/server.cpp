#include "symcan/serve/server.hpp"

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "symcan/obs/export.hpp"
#include "symcan/obs/obs.hpp"
#include "symcan/obs/prometheus.hpp"

namespace symcan::serve {

namespace {

bool blank(const std::string& line) {
  for (const char c : line)
    if (c != ' ' && c != '\t' && c != '\r') return false;
  return true;
}

}  // namespace

int run_stdio_serve(ServeCore& core, std::istream& in, std::ostream& out) {
  std::string line;
  std::size_t line_no = 0;
  bool eof = false;
  while (!eof) {
    // Read one cycle's worth of lines.
    std::vector<std::pair<std::size_t, std::string>> lines;
    while (lines.size() < core.config().batch_max) {
      if (!std::getline(in, line)) {
        eof = true;
        break;
      }
      ++line_no;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!blank(line)) lines.emplace_back(line_no, line);
    }
    if (lines.empty() && eof) break;

    // Parse; answer malformed lines immediately, enqueue the rest.
    for (auto& [no, text] : lines) {
      Diagnostics diags{core.config().policy, "serve request"};
      auto req = request_from_jsonl(text, no, diags);
      if (!req) {
        out << response_to_jsonl(invalid_response("", diags)) << "\n";
        continue;
      }
      // submit() consumes the request, so remember what a rejection
      // response needs before handing it over.
      const std::string req_id = req->id;
      const RequestKind req_kind = req->kind;
      std::optional<QueuedRequest> victim;
      const PushOutcome outcome = core.submit(std::move(*req), &victim);
      const auto reject = [&](const std::string& id, RequestKind kind, const char* why) {
        ServeResponse resp;
        resp.id = id;
        resp.kind = kind;
        resp.status = ResponseStatus::kRejected;
        resp.exit_code = 2;
        Diagnostic d;
        d.source = "serve";
        d.line = 0;
        d.message = why;
        resp.diagnostics = {d};
        out << response_to_jsonl(resp) << "\n";
      };
      if (outcome == PushOutcome::kRejected)
        reject(req_id, req_kind, "request ring full (overflow policy: reject)");
      else if (outcome == PushOutcome::kTimedOut)
        reject(req_id, req_kind, "request ring full past the block deadline");
      else if (victim)
        reject(victim->req.id, victim->req.kind,
               "evicted by a newer request (overflow policy: drop-oldest)");
    }

    // One pressure sample per cycle, then drain and answer the batch.
    core.captain().observe(core.ring().pressure());
    const std::vector<QueuedRequest> batch = core.take_batch();
    for (const ServeResponse& resp : core.handle_batch(batch))
      out << response_to_jsonl(resp) << "\n";
    out.flush();

    // Periodic Prometheus exposition: rewrite the scrape file once per
    // cycle so an external collector always reads a fresh snapshot.
    if (!core.config().metrics_prom_path.empty()) {
      try {
        obs::write_file(core.config().metrics_prom_path,
                        obs::metrics_to_prometheus(obs::metrics()));
      } catch (const std::exception&) {
        // Scrape-file trouble must not take the service down.
      }
    }
  }
  // Shutdown is one of the flight recorder's dump triggers: the last N
  // requests are exactly what a post-mortem wants.
  core.dump_flight("shutdown");
  return 0;
}

}  // namespace symcan::serve

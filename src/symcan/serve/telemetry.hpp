#pragma once

// Request-scoped telemetry for `symcan serve`: one fixed-size record per
// request tracing its life from ring admission to response bytes, plus
// the flight recorder that keeps the last N of them for post-incident
// dumps.
//
// The record is plain data with no heap members (the id is a truncating
// char array), so recording one is a bounded copy — no allocation — and
// the flight recorder can preallocate its whole ring up front. Timing
// decomposes exactly in integer nanoseconds:
//
//   queue_wait_ns() + service_ns() == finish_ns - enqueue_ns
//
// (queue wait = enqueue→start, service = start→finish; dequeue_ns marks
// when the scheduler popped the request, bounding scheduler overhead as
// start - dequeue). Requests that never reach a worker — rejected at the
// ring, evicted as a drop-oldest victim, timed out past the block
// deadline — carry outcome kRejected with start == finish == the moment
// of refusal, so the identity still holds.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "symcan/serve/request.hpp"

namespace symcan::serve {

struct RequestTelemetry {
  /// Truncating copy of the client correlation id (39 bytes + NUL).
  char id[40] = {};
  RequestKind kind = RequestKind::kAnalyze;
  ResponseStatus outcome = ResponseStatus::kOk;
  int exit_code = 0;
  std::int64_t enqueue_ns = 0;  ///< Ring admission (or handle() entry).
  std::int64_t dequeue_ns = 0;  ///< Scheduler popped the request.
  std::int64_t start_ns = 0;    ///< A worker began handling it.
  std::int64_t finish_ns = 0;   ///< Response fully rendered.
  std::uint64_t batch_id = 0;   ///< Scheduling cycle that carried it.
  std::uint64_t flow = 0;       ///< Trace-context id (obs::FlowScope).
  std::int8_t matrix_cache = -1;  ///< 1 hit, 0 miss, -1 not consulted.
  std::uint64_t response_bytes = 0;

  void set_id(const std::string& s);

  std::int64_t queue_wait_ns() const { return start_ns - enqueue_ns; }
  std::int64_t service_ns() const { return finish_ns - start_ns; }
};

/// One telemetry record as a single JSON line.
std::string telemetry_to_jsonl(const RequestTelemetry& t);

/// Bounded ring of the last `capacity` records. record() is a mutex-
/// guarded bounded copy into preallocated storage — never allocates, so
/// it may run unconditionally on the request path. snapshot() returns
/// the retained records oldest-first.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity);

  void record(const RequestTelemetry& t);

  std::vector<RequestTelemetry> snapshot() const;

  std::size_t capacity() const { return capacity_; }
  /// Total records ever recorded (retained + overwritten).
  std::int64_t recorded() const;

  /// The snapshot as JSONL, oldest record first.
  std::string dump_jsonl() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex m_;
  std::vector<RequestTelemetry> ring_;  ///< Guarded by m_; size capacity_.
  std::size_t next_ = 0;                ///< Guarded by m_.
  std::int64_t recorded_ = 0;           ///< Guarded by m_.
};

}  // namespace symcan::serve

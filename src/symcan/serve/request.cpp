#include "symcan/serve/request.hpp"

#include "symcan/obs/export.hpp"
#include "symcan/util/jsonl.hpp"

namespace symcan::serve {

namespace {

using jsonl::Cursor;
using pipeline::AssumptionPreset;

/// Presence bookkeeping: the grammar is order-independent, so values are
/// collected first and the kind-dependent rules are checked at the end.
struct Seen {
  bool id = false, kind = false, matrix = false, preset = false, jitter = false;
  bool override_known = false, message = false, json = false, millis = false;
  bool seed = false, errors = false, error_gap_ms = false, generations = false;
  bool population = false, target_jitter = false, dump = false;
  bool fault_ppm = false, stuff_ppm = false, jitter_ppm = false, max_rungs = false;
};

bool check_kind_rules(const ServeRequest& req, const Seen& seen, std::size_t line_no,
                      Diagnostics& diags) {
  const RequestKind k = req.kind;
  const char* name = to_string(k);
  bool ok = true;
  const auto only_for = [&](bool present, const char* key, bool allowed) {
    if (!present || allowed) return;
    diags.error(line_no, std::string("key \"") + key + "\" is not valid for " + name + " requests");
    ok = false;
  };
  const bool has_matrix = k != RequestKind::kHealth && k != RequestKind::kTelemetry;
  only_for(seen.matrix, "matrix_csv", has_matrix);
  only_for(seen.preset, "preset",
           k == RequestKind::kAnalyze || k == RequestKind::kProb ||
               k == RequestKind::kExplain || k == RequestKind::kOptimize);
  only_for(seen.jitter, "jitter", has_matrix);
  only_for(seen.override_known, "override_known", has_matrix);
  only_for(seen.message, "message", k == RequestKind::kExplain);
  only_for(seen.json, "json", k == RequestKind::kExplain || k == RequestKind::kValidate);
  only_for(seen.millis, "millis", k == RequestKind::kValidate);
  only_for(seen.seed, "seed", k == RequestKind::kValidate || k == RequestKind::kOptimize);
  only_for(seen.errors, "errors", k == RequestKind::kValidate);
  only_for(seen.error_gap_ms, "error_gap_ms", k == RequestKind::kValidate);
  only_for(seen.generations, "generations", k == RequestKind::kOptimize);
  only_for(seen.population, "population", k == RequestKind::kOptimize);
  only_for(seen.target_jitter, "target_jitter", k == RequestKind::kOptimize);
  only_for(seen.dump, "dump", k == RequestKind::kTelemetry);
  only_for(seen.fault_ppm, "fault_ppm", k == RequestKind::kProb);
  only_for(seen.stuff_ppm, "stuff_ppm", k == RequestKind::kProb);
  only_for(seen.jitter_ppm, "jitter_ppm", k == RequestKind::kProb);
  only_for(seen.max_rungs, "max_rungs", k == RequestKind::kProb);

  if (has_matrix && !seen.matrix) {
    diags.error(line_no, std::string("missing key \"matrix_csv\" for ") + name + " request");
    ok = false;
  }
  if (k == RequestKind::kExplain && !seen.message) {
    diags.error(line_no, "missing key \"message\" for explain request");
    ok = false;
  }
  return ok;
}

}  // namespace

const char* to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::kExplain: return "explain";
    case RequestKind::kValidate: return "validate";
    case RequestKind::kOptimize: return "optimize";
    case RequestKind::kHealth: return "health";
    case RequestKind::kTelemetry: return "telemetry";
    case RequestKind::kProb: return "prob";
    case RequestKind::kAnalyze: break;
  }
  return "analyze";
}

bool request_kind_from_string(const std::string& text, RequestKind& out) {
  if (text == "analyze") out = RequestKind::kAnalyze;
  else if (text == "explain") out = RequestKind::kExplain;
  else if (text == "validate") out = RequestKind::kValidate;
  else if (text == "optimize") out = RequestKind::kOptimize;
  else if (text == "health") out = RequestKind::kHealth;
  else if (text == "telemetry") out = RequestKind::kTelemetry;
  else if (text == "prob") out = RequestKind::kProb;
  else return false;
  return true;
}

const char* to_string(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kFailed: return "failed";
    case ResponseStatus::kInvalid: return "invalid";
    case ResponseStatus::kShed: return "shed";
    case ResponseStatus::kRejected: return "rejected";
    case ResponseStatus::kOk: break;
  }
  return "ok";
}

std::optional<ServeRequest> request_from_jsonl(const std::string& line, std::size_t line_no,
                                               Diagnostics& diags) {
  Cursor c{line.data(), line.data() + line.size()};
  if (!c.eat('{')) {
    diags.error(line_no, "expected a JSON object");
    return std::nullopt;
  }
  ServeRequest req;
  Seen seen;
  std::string key, text;

  const auto dup = [&](bool already, const char* what) {
    if (!already) return false;
    diags.error(line_no, std::string("duplicate key \"") + what + "\"");
    return true;
  };
  const auto positive = [&](std::int64_t v, const char* what) {
    if (v > 0) return true;
    diags.error(line_no, std::string(what) + " must be positive");
    return false;
  };

  c.skip_ws();
  if (!c.eat('}')) {
    while (true) {
      if (!jsonl::parse_string(c, line_no, "key", key, diags)) return std::nullopt;
      if (!c.eat(':')) {
        diags.error(line_no, "expected ':' after key \"" + key + "\"");
        return std::nullopt;
      }
      if (key == "id") {
        if (dup(seen.id, "id")) return std::nullopt;
        if (!jsonl::parse_string(c, line_no, "id", req.id, diags)) return std::nullopt;
        seen.id = true;
      } else if (key == "kind") {
        if (dup(seen.kind, "kind")) return std::nullopt;
        if (!jsonl::parse_string(c, line_no, "kind", text, diags)) return std::nullopt;
        if (!request_kind_from_string(text, req.kind)) {
          diags.error(line_no,
                      "unknown kind '" + text +
                          "' (expected analyze|prob|explain|validate|optimize|health|telemetry)");
          return std::nullopt;
        }
        seen.kind = true;
      } else if (key == "matrix_csv") {
        if (dup(seen.matrix, "matrix_csv")) return std::nullopt;
        if (!jsonl::parse_string(c, line_no, "matrix_csv", req.matrix_csv, diags))
          return std::nullopt;
        seen.matrix = true;
      } else if (key == "preset") {
        if (dup(seen.preset, "preset")) return std::nullopt;
        if (!jsonl::parse_string(c, line_no, "preset", text, diags)) return std::nullopt;
        if (!pipeline::preset_from_string(text, req.preset)) {
          diags.error(line_no,
                      "unknown preset '" + text + "' (expected default|worst-case|best-case)");
          return std::nullopt;
        }
        seen.preset = true;
      } else if (key == "jitter") {
        if (dup(seen.jitter, "jitter")) return std::nullopt;
        double v = 0;
        if (!jsonl::parse_double(c, line_no, "jitter", v, diags)) return std::nullopt;
        if (v < 0) {
          diags.error(line_no, "jitter must be non-negative");
          return std::nullopt;
        }
        req.jitter = v;
        seen.jitter = true;
      } else if (key == "override_known") {
        if (dup(seen.override_known, "override_known")) return std::nullopt;
        if (!jsonl::parse_bool(c, line_no, "override_known", req.override_known, diags))
          return std::nullopt;
        seen.override_known = true;
      } else if (key == "message") {
        if (dup(seen.message, "message")) return std::nullopt;
        if (!jsonl::parse_string(c, line_no, "message", req.message, diags)) return std::nullopt;
        seen.message = true;
      } else if (key == "json") {
        if (dup(seen.json, "json")) return std::nullopt;
        if (!jsonl::parse_bool(c, line_no, "json", req.json, diags)) return std::nullopt;
        seen.json = true;
      } else if (key == "millis") {
        if (dup(seen.millis, "millis")) return std::nullopt;
        if (!jsonl::parse_i64(c, line_no, "millis", req.millis, diags)) return std::nullopt;
        if (!positive(req.millis, "millis")) return std::nullopt;
        seen.millis = true;
      } else if (key == "seed") {
        if (dup(seen.seed, "seed")) return std::nullopt;
        std::int64_t v = 0;
        if (!jsonl::parse_i64(c, line_no, "seed", v, diags)) return std::nullopt;
        if (v < 0) {
          diags.error(line_no, "seed must be non-negative");
          return std::nullopt;
        }
        req.seed = static_cast<std::uint64_t>(v);
        seen.seed = true;
      } else if (key == "errors") {
        if (dup(seen.errors, "errors")) return std::nullopt;
        if (!jsonl::parse_string(c, line_no, "errors", req.errors, diags)) return std::nullopt;
        if (req.errors != "none" && req.errors != "sporadic" && req.errors != "burst") {
          diags.error(line_no, "errors must be none|sporadic|burst");
          return std::nullopt;
        }
        seen.errors = true;
      } else if (key == "error_gap_ms") {
        if (dup(seen.error_gap_ms, "error_gap_ms")) return std::nullopt;
        std::int64_t v = 0;
        if (!jsonl::parse_i64(c, line_no, "error_gap_ms", v, diags)) return std::nullopt;
        if (!positive(v, "error_gap_ms")) return std::nullopt;
        req.error_gap_ms = v;
        seen.error_gap_ms = true;
      } else if (key == "generations") {
        if (dup(seen.generations, "generations")) return std::nullopt;
        std::int64_t v = 0;
        if (!jsonl::parse_i64(c, line_no, "generations", v, diags)) return std::nullopt;
        if (!positive(v, "generations")) return std::nullopt;
        if (v > 1'000'000) {
          diags.error(line_no, "generations is implausibly large");
          return std::nullopt;
        }
        req.generations = static_cast<int>(v);
        seen.generations = true;
      } else if (key == "population") {
        if (dup(seen.population, "population")) return std::nullopt;
        std::int64_t v = 0;
        if (!jsonl::parse_i64(c, line_no, "population", v, diags)) return std::nullopt;
        if (!positive(v, "population")) return std::nullopt;
        if (v > 1'000'000) {
          diags.error(line_no, "population is implausibly large");
          return std::nullopt;
        }
        req.population = static_cast<int>(v);
        seen.population = true;
      } else if (key == "target_jitter") {
        if (dup(seen.target_jitter, "target_jitter")) return std::nullopt;
        if (!jsonl::parse_double(c, line_no, "target_jitter", req.target_jitter, diags))
          return std::nullopt;
        seen.target_jitter = true;
      } else if (key == "dump") {
        if (dup(seen.dump, "dump")) return std::nullopt;
        if (!jsonl::parse_bool(c, line_no, "dump", req.dump, diags)) return std::nullopt;
        seen.dump = true;
      } else if (key == "fault_ppm" || key == "stuff_ppm" || key == "jitter_ppm") {
        bool& was = key == "fault_ppm" ? seen.fault_ppm
                    : key == "stuff_ppm" ? seen.stuff_ppm
                                         : seen.jitter_ppm;
        if (dup(was, key.c_str())) return std::nullopt;
        std::int64_t v = 0;
        if (!jsonl::parse_i64(c, line_no, key.c_str(), v, diags)) return std::nullopt;
        if (v < 0 || v > 1'000'000) {
          diags.error(line_no, key + " must lie in [0, 1000000]");
          return std::nullopt;
        }
        (key == "fault_ppm" ? req.fault_ppm
         : key == "stuff_ppm" ? req.stuff_ppm
                              : req.jitter_ppm) = v;
        was = true;
      } else if (key == "max_rungs") {
        if (dup(seen.max_rungs, "max_rungs")) return std::nullopt;
        if (!jsonl::parse_i64(c, line_no, "max_rungs", req.max_rungs, diags)) return std::nullopt;
        if (req.max_rungs < 1 || req.max_rungs > 4096) {
          diags.error(line_no, "max_rungs must lie in [1, 4096]");
          return std::nullopt;
        }
        seen.max_rungs = true;
      } else {
        diags.warning(line_no, "unknown key \"" + key + "\" ignored");
        if (!jsonl::skip_scalar(c, line_no, diags)) return std::nullopt;
        if (diags.policy() == DiagnosticPolicy::kStrict) return std::nullopt;
      }
      if (c.eat(',')) continue;
      if (c.eat('}')) break;
      diags.error(line_no, "expected ',' or '}'");
      return std::nullopt;
    }
  }
  c.skip_ws();
  if (!c.done()) {
    diags.error(line_no, "trailing characters after object");
    return std::nullopt;
  }
  if (!seen.id) {
    diags.error(line_no, "missing key \"id\"");
    return std::nullopt;
  }
  if (!seen.kind) {
    diags.error(line_no, "missing key \"kind\"");
    return std::nullopt;
  }
  if (!check_kind_rules(req, seen, line_no, diags)) return std::nullopt;
  return req;
}

namespace {

/// json_escape escapes content only; the wire format wants quoted strings.
std::string quote(const std::string& s) { return "\"" + obs::json_escape(s) + "\""; }

}  // namespace

std::string request_to_jsonl(const ServeRequest& req) {
  using obs::json_number;
  std::string out = "{\"id\":" + quote(req.id);
  out += ",\"kind\":\"" + std::string(to_string(req.kind)) + "\"";
  if (req.kind != RequestKind::kHealth && req.kind != RequestKind::kTelemetry)
    out += ",\"matrix_csv\":" + quote(req.matrix_csv);
  if (req.preset != AssumptionPreset::kDefault)
    out += ",\"preset\":\"" + std::string(pipeline::to_string(req.preset)) + "\"";
  if (req.jitter) out += ",\"jitter\":" + json_number(*req.jitter);
  if (req.override_known) out += ",\"override_known\":true";
  // `message` is mandatory for explain, so it is always spelled there
  // (an empty name is a present-but-empty value, not an absent key).
  if (req.kind == RequestKind::kExplain) out += ",\"message\":" + quote(req.message);
  if (req.json) out += ",\"json\":true";
  if (req.millis != 2000) out += ",\"millis\":" + std::to_string(req.millis);
  if (req.seed) out += ",\"seed\":" + std::to_string(*req.seed);
  if (req.errors != "none") out += ",\"errors\":" + quote(req.errors);
  if (req.error_gap_ms) out += ",\"error_gap_ms\":" + std::to_string(*req.error_gap_ms);
  if (req.generations != 25) out += ",\"generations\":" + std::to_string(req.generations);
  if (req.population != 32) out += ",\"population\":" + std::to_string(req.population);
  if (req.target_jitter != 0.25) out += ",\"target_jitter\":" + json_number(req.target_jitter);
  if (req.fault_ppm != 1'000'000) out += ",\"fault_ppm\":" + std::to_string(req.fault_ppm);
  if (req.stuff_ppm != 1'000'000) out += ",\"stuff_ppm\":" + std::to_string(req.stuff_ppm);
  if (req.jitter_ppm != 1'000'000) out += ",\"jitter_ppm\":" + std::to_string(req.jitter_ppm);
  if (req.max_rungs != 96) out += ",\"max_rungs\":" + std::to_string(req.max_rungs);
  if (req.dump) out += ",\"dump\":true";
  out += "}";
  return out;
}

std::string response_to_jsonl(const ServeResponse& resp) {
  std::string out = "{\"id\":" + quote(resp.id);
  out += ",\"kind\":\"" + std::string(to_string(resp.kind)) + "\"";
  out += ",\"status\":\"" + std::string(to_string(resp.status)) + "\"";
  out += ",\"exit_code\":" + std::to_string(resp.exit_code);
  if (!resp.output.empty()) out += ",\"output\":" + quote(resp.output);
  if (!resp.diagnostics.empty()) {
    out += ",\"diagnostics\":[";
    bool first = true;
    for (const Diagnostic& d : resp.diagnostics) {
      if (!first) out += ",";
      first = false;
      out += "{\"severity\":\"" + std::string(to_string(d.severity)) + "\"";
      out += ",\"line\":" + std::to_string(d.line);
      out += ",\"message\":" + quote(d.message) + "}";
    }
    out += "]";
  }
  if (!resp.health_json.empty()) {
    const char* key = resp.kind == RequestKind::kTelemetry ? "telemetry" : "health";
    out += ",\"" + std::string(key) + "\":" + resp.health_json;
  }
  out += "}";
  return out;
}

ServeResponse invalid_response(const std::string& id, const Diagnostics& diags) {
  ServeResponse resp;
  resp.id = id;
  resp.status = ResponseStatus::kInvalid;
  resp.exit_code = 2;
  resp.diagnostics = diags.entries();
  return resp;
}

}  // namespace symcan::serve

#include "symcan/serve/core.hpp"

#include <sstream>

#include "symcan/can/kmatrix_io.hpp"
#include "symcan/obs/export.hpp"
#include "symcan/obs/obs.hpp"

namespace symcan::serve {

namespace {

obs::WindowConfig window_config(const TelemetryConfig& t) {
  obs::WindowConfig w;
  w.bucket_width_ns = t.window_bucket_ms * 1'000'000;
  w.bucket_count = t.window_buckets;
  return w;
}

}  // namespace

std::int64_t SloTargets::for_kind(RequestKind kind) const {
  switch (kind) {
    case RequestKind::kAnalyze: return analyze_ms;
    case RequestKind::kExplain: return explain_ms;
    case RequestKind::kValidate: return validate_ms;
    case RequestKind::kOptimize: return optimize_ms;
    case RequestKind::kHealth: return health_ms;
    case RequestKind::kTelemetry: return telemetry_ms;
    case RequestKind::kProb: return prob_ms;
  }
  return 0;
}

ServeCore::ServeCore(ServeConfig cfg)
    : cfg_{std::move(cfg)},
      epoch_{std::chrono::steady_clock::now()},
      ring_{cfg_.ring},
      captain_{cfg_.captain},
      rta_{cfg_.cache},
      pool_{cfg_.jobs},
      flight_{cfg_.telemetry.flight_capacity},
      window_service_us_{window_config(cfg_.telemetry),
                         obs::MetricsRegistry::default_latency_bounds_us()},
      window_requests_{window_config(cfg_.telemetry)},
      window_errors_{window_config(cfg_.telemetry)},
      window_shed_{window_config(cfg_.telemetry)} {
  if (cfg_.matrix_cache_capacity == 0)
    throw std::invalid_argument("matrix cache capacity must be positive");
  if (cfg_.batch_max == 0) throw std::invalid_argument("batch size must be positive");
  for (const RequestKind k :
       {RequestKind::kAnalyze, RequestKind::kExplain, RequestKind::kValidate,
        RequestKind::kOptimize, RequestKind::kHealth, RequestKind::kTelemetry,
        RequestKind::kProb}) {
    const std::int64_t target_ms = cfg_.telemetry.slo.for_kind(k);
    if (target_ms <= 0) continue;
    obs::SloConfig sc;
    sc.target_ns = target_ms * 1'000'000;
    sc.objective = cfg_.telemetry.slo_objective;
    sc.window = window_config(cfg_.telemetry);
    slo_[kind_index(k)] = std::make_unique<obs::SloTracker>(sc);
  }
}

std::int64_t ServeCore::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                              epoch_)
      .count();
}

std::shared_ptr<const KMatrix> ServeCore::matrix_for(const std::string& csv, bool* hit) {
  // The diagnostic policy is fixed per core, so the exact CSV text alone
  // identifies a parse.
  if (hit) *hit = false;
  {
    std::lock_guard<std::mutex> lock(matrix_m_);
    const auto it = matrix_map_.find(csv);
    if (it != matrix_map_.end()) {
      matrix_lru_.splice(matrix_lru_.begin(), matrix_lru_, it->second);
      ++matrix_hits_;
      if (hit) *hit = true;
      obs::count("serve.matrix_cache.hits");
      return it->second->second;
    }
    ++matrix_misses_;
  }
  obs::count("serve.matrix_cache.misses");

  // Parse outside the lock; a concurrent duplicate parse of the same
  // text yields an identical matrix, so the race is benign.
  Diagnostics diags{cfg_.policy};
  auto km = kmatrix_from_csv(csv, diags);
  diags.throw_if_failed();
  if (!km) throw ParseError{diags};
  auto shared = std::make_shared<const KMatrix>(std::move(*km));

  std::lock_guard<std::mutex> lock(matrix_m_);
  if (matrix_map_.count(csv) == 0) {
    matrix_lru_.emplace_front(csv, shared);
    matrix_map_.emplace(csv, matrix_lru_.begin());
    while (matrix_lru_.size() > cfg_.matrix_cache_capacity) {
      matrix_map_.erase(matrix_lru_.back().first);
      matrix_lru_.pop_back();
    }
  }
  return shared;
}

ServeResponse ServeCore::handle(const ServeRequest& req) {
  QueuedRequest q;
  q.req = req;
  // Leave the transport stamps unset: handle_queued copies its own start
  // stamp into them, so a direct call reads enqueue == dequeue == start
  // (zero queue wait) exactly.
  q.flow = flow_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  return handle_queued(q, 0);
}

ServeResponse ServeCore::handle_queued(const QueuedRequest& q, std::uint64_t batch_id) {
  const ServeRequest& req = q.req;
  RequestTelemetry t;
  t.set_id(req.id);
  t.kind = req.kind;
  t.start_ns = now_ns();
  t.enqueue_ns = q.enqueue_ns != 0 ? q.enqueue_ns : t.start_ns;
  t.dequeue_ns = q.dequeue_ns != 0 ? q.dequeue_ns : t.start_ns;
  t.batch_id = batch_id;
  t.flow = q.flow;

  // Install the request's trace context for everything this worker (and
  // any nested fan-out) records while handling it.
  obs::FlowScope flow_scope{q.flow};
  SYMCAN_OBS_SPAN("serve.request");

  ServeResponse resp;
  resp.id = req.id;
  resp.kind = req.kind;
  obs::count("serve.requests");

  const auto finish = [&](ServeResponse& r) -> ServeResponse& {
    t.finish_ns = now_ns();
    t.outcome = r.status;
    t.exit_code = r.exit_code;
    t.response_bytes = r.output.size() + r.health_json.size();
    finish_telemetry(t);
    return r;
  };

  if (!captain_.admits(req.kind)) {
    captain_.record_shed(req.kind);
    shed_.fetch_add(1, std::memory_order_relaxed);
    resp.status = ResponseStatus::kShed;
    resp.exit_code = 2;
    return finish(resp);
  }

  try {
    if (req.kind == RequestKind::kHealth) {
      resp.health_json = health_json();
      ok_.fetch_add(1, std::memory_order_relaxed);
      return finish(resp);
    }
    if (req.kind == RequestKind::kTelemetry) {
      resp.health_json = telemetry_json();
      if (req.dump) dump_flight("request");
      ok_.fetch_add(1, std::memory_order_relaxed);
      return finish(resp);
    }

    bool matrix_hit = false;
    const std::shared_ptr<const KMatrix> base = matrix_for(req.matrix_csv, &matrix_hit);
    t.matrix_cache = matrix_hit ? 1 : 0;
    // Jitter assumptions mutate the matrix, so they work on a copy; the
    // memoized matrix stays pristine for the next request.
    std::optional<KMatrix> adjusted;
    const KMatrix* km = base.get();
    if (req.jitter) {
      adjusted.emplace(*base);
      pipeline::apply_matrix_spec(*adjusted, {*req.jitter, req.override_known});
      km = &*adjusted;
    }

    std::ostringstream out;
    int rc = 0;
    switch (req.kind) {
      case RequestKind::kAnalyze:
        rc = pipeline::render_analyze(*km, pipeline::assumptions_for(req.preset), out, &rta_);
        break;
      case RequestKind::kProb: {
        pipeline::ProbSpec spec;
        spec.fault_ppm = req.fault_ppm;
        spec.stuff_ppm = req.stuff_ppm;
        spec.jitter_ppm = req.jitter_ppm;
        spec.max_rungs = req.max_rungs;
        // Batch workers already run in parallel; the convolution fan-out
        // inside each stays serial (results are bit-identical at any
        // width, so this is a scheduling choice only).
        spec.jobs = 1;
        rc = pipeline::render_prob(*km, pipeline::assumptions_for(req.preset), spec, out, &rta_);
        break;
      }
      case RequestKind::kExplain:
        rc = pipeline::render_explain(*km, pipeline::assumptions_for(req.preset), req.message,
                                      req.json, out);
        break;
      case RequestKind::kValidate: {
        pipeline::ValidateSpec spec;
        spec.millis = req.millis;
        spec.seed = req.seed.value_or(1);
        spec.errors = {req.errors, req.error_gap_ms.value_or(-1)};
        spec.json = req.json;
        rc = pipeline::render_validate(*km, spec, out, &rta_);
        break;
      }
      case RequestKind::kOptimize: {
        pipeline::OptimizeSpec spec;
        spec.seed = req.seed.value_or(7);
        spec.generations = req.generations;
        spec.population = req.population;
        spec.target_jitter = req.target_jitter;
        spec.best_case = req.preset == pipeline::AssumptionPreset::kBestCase;
        // Batch workers already run in parallel; the GA inside each
        // stays serial (its results are bit-identical at any width).
        spec.jobs = 1;
        spec.cache = cfg_.cache;
        rc = pipeline::render_optimize(*km, spec, out);
        break;
      }
      case RequestKind::kHealth:
      case RequestKind::kTelemetry:
        break;  // Handled above.
    }
    resp.output = out.str();
    resp.exit_code = rc;
    resp.status = rc == 0 ? ResponseStatus::kOk : ResponseStatus::kFailed;
    (rc == 0 ? ok_ : failed_).fetch_add(1, std::memory_order_relaxed);
    return finish(resp);
  } catch (const ParseError& e) {
    invalid_.fetch_add(1, std::memory_order_relaxed);
    obs::count("serve.requests.invalid");
    ServeResponse bad = invalid_response(req.id, e.diagnostics());
    bad.kind = req.kind;
    return finish(bad);
  } catch (const std::exception& e) {
    invalid_.fetch_add(1, std::memory_order_relaxed);
    obs::count("serve.requests.invalid");
    resp.status = ResponseStatus::kInvalid;
    resp.exit_code = 2;
    Diagnostic d;
    d.source = "serve";
    d.message = e.what();
    resp.diagnostics = {d};
    resp.output.clear();
    resp.health_json.clear();
    return finish(resp);
  }
}

void ServeCore::finish_telemetry(RequestTelemetry& t) {
  flight_.record(t);
  const std::int64_t now = t.finish_ns;
  window_requests_.add(now);
  window_service_us_.record(now, static_cast<double>(t.service_ns()) / 1000.0);
  switch (t.outcome) {
    case ResponseStatus::kFailed:
    case ResponseStatus::kInvalid:
      window_errors_.add(now);
      break;
    case ResponseStatus::kShed:
    case ResponseStatus::kRejected:
      window_shed_.add(now);
      break;
    case ResponseStatus::kOk:
      break;
  }
  if (const auto& slo = slo_[kind_index(t.kind)]; slo && t.outcome != ResponseStatus::kShed &&
                                                  t.outcome != ResponseStatus::kRejected) {
    // SLO latency is end-to-end: queue wait counts against the target.
    slo->record(now, t.finish_ns - t.enqueue_ns);
  }

  // Dump triggers: the first shed and the first bound violation are the
  // moments an operator will want the surrounding request history.
  if (t.outcome == ResponseStatus::kShed || t.outcome == ResponseStatus::kRejected) {
    if (!dumped_on_shed_.exchange(true, std::memory_order_relaxed)) dump_flight("first-shed");
  } else if (t.exit_code == 1 &&
             (t.kind == RequestKind::kAnalyze || t.kind == RequestKind::kValidate)) {
    if (!dumped_on_violation_.exchange(true, std::memory_order_relaxed))
      dump_flight("bound-violation");
  }

  if (obs::enabled()) {
    auto& m = obs::metrics();
    m.histogram("serve.request.queue_wait_us")
        .observe(static_cast<double>(t.queue_wait_ns()) / 1000.0);
    m.histogram("serve.request.service_us")
        .observe(static_cast<double>(t.service_ns()) / 1000.0);
  }
}

std::vector<ServeResponse> ServeCore::handle_batch(const std::vector<ServeRequest>& reqs) {
  if (reqs.empty()) return {};
  std::vector<QueuedRequest> queued;
  queued.reserve(reqs.size());
  const std::int64_t now = now_ns();
  for (const ServeRequest& r : reqs) {
    QueuedRequest q;
    q.req = r;
    q.enqueue_ns = now;
    q.dequeue_ns = now;
    q.flow = flow_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    queued.push_back(std::move(q));
  }
  return handle_batch(queued);
}

std::vector<ServeResponse> ServeCore::handle_batch(const std::vector<QueuedRequest>& reqs) {
  if (reqs.empty()) return {};
  const std::uint64_t batch_id = batch_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  return pool_.parallel_map(reqs,
                            [&](const QueuedRequest& q) { return handle_queued(q, batch_id); });
}

PushOutcome ServeCore::submit(ServeRequest req, std::optional<QueuedRequest>* victim) {
  QueuedRequest q;
  q.req = std::move(req);
  q.enqueue_ns = now_ns();
  q.flow = flow_seq_.fetch_add(1, std::memory_order_relaxed) + 1;

  // Remember enough to write a telemetry record if the ring refuses it.
  RequestTelemetry t;
  t.set_id(q.req.id);
  t.kind = q.req.kind;
  t.enqueue_ns = q.enqueue_ns;
  t.flow = q.flow;

  const PushOutcome outcome = ring_.push(std::move(q), victim);
  if (outcome == PushOutcome::kRejected || outcome == PushOutcome::kTimedOut) {
    const std::int64_t now = now_ns();
    t.dequeue_ns = now;
    t.start_ns = now;
    t.finish_ns = now;
    t.outcome = ResponseStatus::kRejected;
    t.exit_code = 2;
    finish_telemetry(t);
  }
  if (victim && *victim) {
    // The drop-oldest casualty: it queued for a while, then died unserved.
    RequestTelemetry v;
    v.set_id((*victim)->req.id);
    v.kind = (*victim)->req.kind;
    v.enqueue_ns = (*victim)->enqueue_ns;
    v.flow = (*victim)->flow;
    const std::int64_t now = now_ns();
    v.dequeue_ns = now;
    v.start_ns = now;
    v.finish_ns = now;
    v.outcome = ResponseStatus::kRejected;
    v.exit_code = 2;
    finish_telemetry(v);
  }
  return outcome;
}

std::vector<QueuedRequest> ServeCore::take_batch() {
  std::vector<QueuedRequest> batch = ring_.pop_batch(cfg_.batch_max);
  const std::int64_t now = now_ns();
  for (QueuedRequest& q : batch) q.dequeue_ns = now;
  return batch;
}

bool ServeCore::dump_flight(const char* reason) {
  obs::count("serve.flight.dump_triggers");
  if (cfg_.telemetry.flight_path.empty()) return false;
  std::lock_guard<std::mutex> lock(dump_m_);
  try {
    std::string out = "{\"reason\":\"" + std::string(reason) + "\"}\n";
    out += flight_.dump_jsonl();
    obs::write_file(cfg_.telemetry.flight_path, out);
  } catch (const std::exception&) {
    return false;  // A failed dump must never take a request down with it.
  }
  dumps_.fetch_add(1, std::memory_order_relaxed);
  obs::instant("serve.flight.dump");
  return true;
}

namespace {

std::string slo_json(const obs::SloStats& s) {
  using obs::json_number;
  std::string out = "{\"target_ms\":" + std::to_string(s.target_ns / 1'000'000);
  out += ",\"objective\":" + json_number(s.objective);
  out += ",\"total\":" + std::to_string(s.total);
  out += ",\"over_target\":" + std::to_string(s.over_target);
  out += ",\"window_total\":" + std::to_string(s.window_total);
  out += ",\"window_over\":" + std::to_string(s.window_over);
  out += ",\"burn_rate\":" + json_number(s.burn_rate);
  out += ",\"budget_used\":" + json_number(s.budget_used) + "}";
  return out;
}

}  // namespace

std::string ServeCore::telemetry_json() const {
  using obs::json_number;
  const std::int64_t now = now_ns();
  const obs::WindowStats w = window_service_us_.snapshot(now);
  std::string out = "{";
  out += "\"uptime_ms\":" + std::to_string(now / 1'000'000);
  out += ",\"window\":{\"windowed_total\":" + std::to_string(window_requests_.window_count(now));
  out += ",\"rate_per_sec\":" + json_number(window_requests_.window_rate(now));
  out += ",\"errors\":" + std::to_string(window_errors_.window_count(now));
  out += ",\"shed\":" + std::to_string(window_shed_.window_count(now));
  out += ",\"window_ms\":" + std::to_string(w.window_ns / 1'000'000);
  out += ",\"service_us\":{\"count\":" + std::to_string(w.count);
  out += ",\"mean\":" + json_number(w.mean);
  out += ",\"p50\":" + json_number(w.p50);
  out += ",\"p95\":" + json_number(w.p95);
  out += ",\"p99\":" + json_number(w.p99) + "}}";
  out += ",\"slo\":{";
  bool first = true;
  for (const RequestKind k :
       {RequestKind::kAnalyze, RequestKind::kProb, RequestKind::kExplain,
        RequestKind::kValidate, RequestKind::kOptimize, RequestKind::kHealth,
        RequestKind::kTelemetry}) {
    const auto& slo = slo_[kind_index(k)];
    if (!slo) continue;
    if (!first) out += ",";
    first = false;
    out += "\"" + std::string(to_string(k)) + "\":" + slo_json(slo->snapshot(now));
  }
  out += "}";
  out += ",\"flight_recorder\":{\"capacity\":" + std::to_string(flight_.capacity());
  out += ",\"recorded\":" + std::to_string(flight_.recorded());
  out += ",\"dumps\":" + std::to_string(dumps_.load(std::memory_order_relaxed)) + "}";
  out += "}";
  return out;
}

std::string ServeCore::health_json() const {
  using obs::json_number;
  const RingStats rs = ring_.stats();
  const analysis::RtaCacheStats cs = rta_.stats();
  std::int64_t mhits = 0, mmisses = 0;
  std::size_t msize = 0;
  {
    std::lock_guard<std::mutex> lock(matrix_m_);
    mhits = matrix_hits_;
    mmisses = matrix_misses_;
    msize = matrix_lru_.size();
  }
  const std::int64_t now = now_ns();
  const obs::WindowStats w = window_service_us_.snapshot(now);
  std::string out = "{";
  out += "\"mode\":\"" + std::string(to_string(captain_.mode())) + "\"";
  out += ",\"pressure\":\"" + std::string(to_string(ring_.pressure())) + "\"";
  out += ",\"ring\":{\"capacity\":" + std::to_string(ring_.config().capacity);
  out += ",\"size\":" + std::to_string(ring_.size());
  out += ",\"pushes\":" + std::to_string(rs.pushes);
  out += ",\"accepted\":" + std::to_string(rs.accepted);
  out += ",\"rejected\":" + std::to_string(rs.rejected);
  out += ",\"timed_out\":" + std::to_string(rs.timed_out);
  out += ",\"dropped_oldest\":" + std::to_string(rs.dropped_oldest);
  out += ",\"popped\":" + std::to_string(rs.popped) + "}";
  out += ",\"captain\":{\"shed_optimize\":" + std::to_string(captain_.shed_optimize());
  out += ",\"shed_explain\":" + std::to_string(captain_.shed_explain());
  out += ",\"shed_prob\":" + std::to_string(captain_.shed_prob());
  out += ",\"mode_changes\":" + std::to_string(captain_.mode_changes()) + "}";
  out += ",\"rta_cache\":{\"shards\":" + std::to_string(rta_.shard_count());
  out += ",\"capacity\":" + std::to_string(rta_.config().capacity);
  out += ",\"size\":" + std::to_string(rta_.size());
  out += ",\"hits\":" + std::to_string(cs.hits);
  out += ",\"misses\":" + std::to_string(cs.misses);
  out += ",\"evictions\":" + std::to_string(cs.evictions);
  out += ",\"hit_rate\":" + json_number(cs.hit_rate()) + "}";
  out += ",\"matrix_cache\":{\"capacity\":" + std::to_string(cfg_.matrix_cache_capacity);
  out += ",\"size\":" + std::to_string(msize);
  out += ",\"hits\":" + std::to_string(mhits);
  out += ",\"misses\":" + std::to_string(mmisses) + "}";
  out += ",\"requests\":{\"handled\":" + std::to_string(handled());
  out += ",\"ok\":" + std::to_string(ok_.load(std::memory_order_relaxed));
  out += ",\"failed\":" + std::to_string(failed_.load(std::memory_order_relaxed));
  out += ",\"invalid\":" + std::to_string(invalid_.load(std::memory_order_relaxed));
  out += ",\"shed\":" + std::to_string(shed_.load(std::memory_order_relaxed)) + "}";
  out += ",\"uptime_ms\":" + std::to_string(now / 1'000'000);
  out += ",\"build\":\"" + obs::json_escape(cfg_.build_info) + "\"";
  out += ",\"window\":{\"windowed_total\":" + std::to_string(window_requests_.window_count(now));
  out += ",\"rate_per_sec\":" + json_number(window_requests_.window_rate(now));
  out += ",\"errors\":" + std::to_string(window_errors_.window_count(now));
  out += ",\"shed\":" + std::to_string(window_shed_.window_count(now));
  out += ",\"window_ms\":" + std::to_string(w.window_ns / 1'000'000);
  out += ",\"service_us\":{\"count\":" + std::to_string(w.count);
  out += ",\"mean\":" + json_number(w.mean);
  out += ",\"p50\":" + json_number(w.p50);
  out += ",\"p95\":" + json_number(w.p95);
  out += ",\"p99\":" + json_number(w.p99) + "}}";
  out += ",\"slo\":{";
  bool first = true;
  for (const RequestKind k :
       {RequestKind::kAnalyze, RequestKind::kProb, RequestKind::kExplain,
        RequestKind::kValidate, RequestKind::kOptimize, RequestKind::kHealth,
        RequestKind::kTelemetry}) {
    const auto& slo = slo_[kind_index(k)];
    if (!slo) continue;
    if (!first) out += ",";
    first = false;
    out += "\"" + std::string(to_string(k)) + "\":" + slo_json(slo->snapshot(now));
  }
  out += "}";
  out += ",\"flight_recorder\":{\"capacity\":" + std::to_string(flight_.capacity());
  out += ",\"recorded\":" + std::to_string(flight_.recorded());
  out += ",\"dumps\":" + std::to_string(dumps_.load(std::memory_order_relaxed)) + "}";
  out += "}";
  return out;
}

}  // namespace symcan::serve

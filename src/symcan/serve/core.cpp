#include "symcan/serve/core.hpp"

#include <sstream>

#include "symcan/can/kmatrix_io.hpp"
#include "symcan/obs/export.hpp"
#include "symcan/obs/obs.hpp"

namespace symcan::serve {

ServeCore::ServeCore(ServeConfig cfg)
    : cfg_{std::move(cfg)},
      ring_{cfg_.ring},
      captain_{cfg_.captain},
      rta_{cfg_.cache},
      pool_{cfg_.jobs} {
  if (cfg_.matrix_cache_capacity == 0)
    throw std::invalid_argument("matrix cache capacity must be positive");
  if (cfg_.batch_max == 0) throw std::invalid_argument("batch size must be positive");
}

std::shared_ptr<const KMatrix> ServeCore::matrix_for(const std::string& csv) {
  // The diagnostic policy is fixed per core, so the exact CSV text alone
  // identifies a parse.
  {
    std::lock_guard<std::mutex> lock(matrix_m_);
    const auto it = matrix_map_.find(csv);
    if (it != matrix_map_.end()) {
      matrix_lru_.splice(matrix_lru_.begin(), matrix_lru_, it->second);
      ++matrix_hits_;
      obs::count("serve.matrix_cache.hits");
      return it->second->second;
    }
    ++matrix_misses_;
  }
  obs::count("serve.matrix_cache.misses");

  // Parse outside the lock; a concurrent duplicate parse of the same
  // text yields an identical matrix, so the race is benign.
  Diagnostics diags{cfg_.policy};
  auto km = kmatrix_from_csv(csv, diags);
  diags.throw_if_failed();
  if (!km) throw ParseError{diags};
  auto shared = std::make_shared<const KMatrix>(std::move(*km));

  std::lock_guard<std::mutex> lock(matrix_m_);
  if (matrix_map_.count(csv) == 0) {
    matrix_lru_.emplace_front(csv, shared);
    matrix_map_.emplace(csv, matrix_lru_.begin());
    while (matrix_lru_.size() > cfg_.matrix_cache_capacity) {
      matrix_map_.erase(matrix_lru_.back().first);
      matrix_lru_.pop_back();
    }
  }
  return shared;
}

ServeResponse ServeCore::handle(const ServeRequest& req) {
  ServeResponse resp;
  resp.id = req.id;
  resp.kind = req.kind;
  obs::count("serve.requests");

  if (!captain_.admits(req.kind)) {
    captain_.record_shed(req.kind);
    shed_.fetch_add(1, std::memory_order_relaxed);
    resp.status = ResponseStatus::kShed;
    resp.exit_code = 2;
    return resp;
  }

  try {
    if (req.kind == RequestKind::kHealth) {
      resp.health_json = health_json();
      ok_.fetch_add(1, std::memory_order_relaxed);
      return resp;
    }

    const std::shared_ptr<const KMatrix> base = matrix_for(req.matrix_csv);
    // Jitter assumptions mutate the matrix, so they work on a copy; the
    // memoized matrix stays pristine for the next request.
    std::optional<KMatrix> adjusted;
    const KMatrix* km = base.get();
    if (req.jitter) {
      adjusted.emplace(*base);
      pipeline::apply_matrix_spec(*adjusted, {*req.jitter, req.override_known});
      km = &*adjusted;
    }

    std::ostringstream out;
    int rc = 0;
    switch (req.kind) {
      case RequestKind::kAnalyze:
        rc = pipeline::render_analyze(*km, pipeline::assumptions_for(req.preset), out, &rta_);
        break;
      case RequestKind::kExplain:
        rc = pipeline::render_explain(*km, pipeline::assumptions_for(req.preset), req.message,
                                      req.json, out);
        break;
      case RequestKind::kValidate: {
        pipeline::ValidateSpec spec;
        spec.millis = req.millis;
        spec.seed = req.seed.value_or(1);
        spec.errors = {req.errors, req.error_gap_ms.value_or(-1)};
        spec.json = req.json;
        rc = pipeline::render_validate(*km, spec, out, &rta_);
        break;
      }
      case RequestKind::kOptimize: {
        pipeline::OptimizeSpec spec;
        spec.seed = req.seed.value_or(7);
        spec.generations = req.generations;
        spec.population = req.population;
        spec.target_jitter = req.target_jitter;
        spec.best_case = req.preset == pipeline::AssumptionPreset::kBestCase;
        // Batch workers already run in parallel; the GA inside each
        // stays serial (its results are bit-identical at any width).
        spec.jobs = 1;
        spec.cache = cfg_.cache;
        rc = pipeline::render_optimize(*km, spec, out);
        break;
      }
      case RequestKind::kHealth: break;  // Handled above.
    }
    resp.output = out.str();
    resp.exit_code = rc;
    resp.status = rc == 0 ? ResponseStatus::kOk : ResponseStatus::kFailed;
    (rc == 0 ? ok_ : failed_).fetch_add(1, std::memory_order_relaxed);
    return resp;
  } catch (const ParseError& e) {
    invalid_.fetch_add(1, std::memory_order_relaxed);
    obs::count("serve.requests.invalid");
    ServeResponse bad = invalid_response(req.id, e.diagnostics());
    bad.kind = req.kind;
    return bad;
  } catch (const std::exception& e) {
    invalid_.fetch_add(1, std::memory_order_relaxed);
    obs::count("serve.requests.invalid");
    resp.status = ResponseStatus::kInvalid;
    resp.exit_code = 2;
    Diagnostic d;
    d.source = "serve";
    d.message = e.what();
    resp.diagnostics = {d};
    resp.output.clear();
    resp.health_json.clear();
    return resp;
  }
}

std::vector<ServeResponse> ServeCore::handle_batch(const std::vector<ServeRequest>& reqs) {
  if (reqs.empty()) return {};
  return pool_.parallel_map(reqs, [&](const ServeRequest& r) { return handle(r); });
}

PushOutcome ServeCore::submit(ServeRequest req, std::optional<ServeRequest>* victim) {
  return ring_.push(std::move(req), victim);
}

std::string ServeCore::health_json() const {
  using obs::json_number;
  const RingStats rs = ring_.stats();
  const analysis::RtaCacheStats cs = rta_.stats();
  std::int64_t mhits = 0, mmisses = 0;
  std::size_t msize = 0;
  {
    std::lock_guard<std::mutex> lock(matrix_m_);
    mhits = matrix_hits_;
    mmisses = matrix_misses_;
    msize = matrix_lru_.size();
  }
  std::string out = "{";
  out += "\"mode\":\"" + std::string(to_string(captain_.mode())) + "\"";
  out += ",\"pressure\":\"" + std::string(to_string(ring_.pressure())) + "\"";
  out += ",\"ring\":{\"capacity\":" + std::to_string(ring_.config().capacity);
  out += ",\"size\":" + std::to_string(ring_.size());
  out += ",\"pushes\":" + std::to_string(rs.pushes);
  out += ",\"accepted\":" + std::to_string(rs.accepted);
  out += ",\"rejected\":" + std::to_string(rs.rejected);
  out += ",\"timed_out\":" + std::to_string(rs.timed_out);
  out += ",\"dropped_oldest\":" + std::to_string(rs.dropped_oldest);
  out += ",\"popped\":" + std::to_string(rs.popped) + "}";
  out += ",\"captain\":{\"shed_optimize\":" + std::to_string(captain_.shed_optimize());
  out += ",\"shed_explain\":" + std::to_string(captain_.shed_explain());
  out += ",\"mode_changes\":" + std::to_string(captain_.mode_changes()) + "}";
  out += ",\"rta_cache\":{\"shards\":" + std::to_string(rta_.shard_count());
  out += ",\"capacity\":" + std::to_string(rta_.config().capacity);
  out += ",\"size\":" + std::to_string(rta_.size());
  out += ",\"hits\":" + std::to_string(cs.hits);
  out += ",\"misses\":" + std::to_string(cs.misses);
  out += ",\"evictions\":" + std::to_string(cs.evictions);
  out += ",\"hit_rate\":" + json_number(cs.hit_rate()) + "}";
  out += ",\"matrix_cache\":{\"capacity\":" + std::to_string(cfg_.matrix_cache_capacity);
  out += ",\"size\":" + std::to_string(msize);
  out += ",\"hits\":" + std::to_string(mhits);
  out += ",\"misses\":" + std::to_string(mmisses) + "}";
  out += ",\"requests\":{\"handled\":" + std::to_string(handled());
  out += ",\"ok\":" + std::to_string(ok_.load(std::memory_order_relaxed));
  out += ",\"failed\":" + std::to_string(failed_.load(std::memory_order_relaxed));
  out += ",\"invalid\":" + std::to_string(invalid_.load(std::memory_order_relaxed));
  out += ",\"shed\":" + std::to_string(shed_.load(std::memory_order_relaxed)) + "}";
  out += "}";
  return out;
}

}  // namespace symcan::serve

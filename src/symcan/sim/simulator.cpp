#include "symcan/sim/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <queue>
#include <stdexcept>

#include "symcan/can/frame.hpp"
#include "symcan/obs/obs.hpp"

namespace symcan {

SimErrorProcess SimErrorProcess::sporadic(Duration min_gap) {
  SimErrorProcess p;
  p.kind = Kind::kSporadic;
  p.min_gap = min_gap;
  return p;
}

SimErrorProcess SimErrorProcess::burst(Duration min_gap, std::int64_t burst_len) {
  SimErrorProcess p;
  p.kind = Kind::kBurst;
  p.min_gap = min_gap;
  p.burst_len = burst_len;
  return p;
}

Duration MessageStats::percentile(double p) const {
  if (responses.empty()) return Duration::zero();
  if (p <= 0) return responses.front();
  if (p >= 1) return responses.back();
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(responses.size() - 1));
  return responses[idx];
}

const MessageStats* SimResult::find(const std::string& name) const {
  for (const auto& m : messages)
    if (m.name == name) return &m;
  return nullptr;
}

const NodeStats* SimResult::find_node(const std::string& name) const {
  for (const auto& n : nodes)
    if (n.name == name) return &n;
  return nullptr;
}

namespace {

enum class EvKind : std::uint8_t { kRelease, kTxEnd, kRecoveryEnd, kFault, kBurstStart, kBurstHit };

struct Event {
  Duration time = Duration::zero();
  std::uint64_t seq = 0;  // FIFO tie-break for simultaneous events
  EvKind kind = EvKind::kRelease;
  std::size_t msg = 0;        // kRelease
  std::uint64_t tx_gen = 0;   // kTxEnd / kBurstHit validity check
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

/// One queued-but-not-transmitting instance of a message.
struct PendingInstance {
  std::int64_t instance = 0;
  Duration release = Duration::zero();
  int retransmits = 0;
};

class Simulation {
 public:
  Simulation(const KMatrix& km, const SimConfig& cfg)
      : km_{km}, cfg_{cfg}, rng_{cfg.seed}, tau_{km.timing().bit_time()} {
    km_.validate();
    const auto& msgs = km_.messages();
    buffers_.resize(msgs.size());
    next_instance_.resize(msgs.size(), 0);
    node_index_.resize(msgs.size());
    stats_.resize(msgs.size());
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      stats_[i].name = msgs[i].name;
      std::size_t ni = 0;
      for (std::size_t n = 0; n < km_.nodes().size(); ++n)
        if (km_.nodes()[n].name == msgs[i].sender) ni = n;
      node_index_[i] = ni;
    }
    fifos_.resize(km_.nodes().size());
    node_stats_.resize(km_.nodes().size());
    tec_.resize(km_.nodes().size(), 0);
    bus_off_until_.resize(km_.nodes().size(), Duration::zero());
    for (std::size_t n = 0; n < km_.nodes().size(); ++n)
      node_stats_[n].name = km_.nodes()[n].name;
    max_frame_wc_ = Duration::zero();
    for (const auto& m : msgs)
      max_frame_wc_ = max(max_frame_wc_, frame_time_worst_case(km_.timing(), m.format,
                                                               m.payload_bytes));
  }

  SimResult run() {
    // Initial releases: TimeTable messages start exactly at their offset;
    // others get a random phase inside the first period.
    for (std::size_t i = 0; i < km_.size(); ++i) {
      const auto& m = km_.messages()[i];
      Duration phase = Duration::zero();
      if (m.tt_offset)
        phase = *m.tt_offset;
      else if (cfg_.randomize_jitter)
        phase = rng_.uniform_duration(Duration::zero(), m.period);
      push(Event{phase, seq_++, EvKind::kRelease, i, 0});
    }
    switch (cfg_.errors.kind) {
      case SimErrorProcess::Kind::kNone:
        break;
      case SimErrorProcess::Kind::kSporadic:
        push(Event{next_fault_gap(), seq_++, EvKind::kFault, 0, 0});
        break;
      case SimErrorProcess::Kind::kBurst:
        push(Event{next_fault_gap(), seq_++, EvKind::kBurstStart, 0, 0});
        break;
    }

    std::int64_t dispatched = 0;
    const auto wall0 = std::chrono::steady_clock::now();
    {
      SYMCAN_OBS_SPAN("sim.run");
      while (!events_.empty()) {
        Event ev = events_.top();
        if (ev.time > cfg_.duration) break;
        events_.pop();
        now_ = ev.time;
        dispatch(ev);
        ++dispatched;
      }
    }
    if (obs::enabled()) {
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();
      auto& m = obs::metrics();
      m.counter("sim.runs").add(1);
      m.counter("sim.events").add(dispatched);
      m.counter("sim.errors_injected").add(total_errors_);
      if (wall_s > 0)
        m.gauge("sim.events_per_sec").set(static_cast<double>(dispatched) / wall_s);
    }

    SimResult out;
    out.messages = std::move(stats_);
    for (auto& s : out.messages) {
      if (s.completions > 0) s.avg_response_us = response_sum_us_[s.name] / static_cast<double>(s.completions);
      if (s.bcrt_observed.is_infinite() && s.completions == 0) s.bcrt_observed = Duration::zero();
    }
    for (auto& m : out.messages) std::sort(m.responses.begin(), m.responses.end());
    out.nodes = std::move(node_stats_);
    out.total_errors_injected = total_errors_;
    out.simulated = cfg_.duration;
    out.trace = std::move(trace_);
    return out;
  }

 private:
  struct Tx {
    std::size_t msg = 0;
    PendingInstance inst;
    Duration start = Duration::zero();
    Duration end = Duration::zero();
    std::uint64_t gen = 0;
  };

  void push(Event e) { events_.push(e); }

  void record(TraceEventType t, std::size_t msg, std::int64_t instance) {
    if (cfg_.record_trace) trace_.record(now_, t, km_.messages()[msg].name, instance);
  }

  Duration next_fault_gap() {
    // Gaps strictly respect the model's minimum distance; randomization
    // only adds slack, so analysis bounds remain valid oracles.
    const Duration g = cfg_.errors.min_gap;
    if (!cfg_.randomize_jitter) return g;
    return g + rng_.uniform_duration(Duration::zero(), g);
  }

  Duration sample_frame_time(std::size_t i) {
    const auto& m = km_.messages()[i];
    const std::int64_t lo = frame_bits_unstuffed(m.format, m.payload_bytes);
    const std::int64_t hi = frame_bits_worst_case(m.format, m.payload_bytes);
    switch (cfg_.stuffing) {
      case StuffingMode::kNone:
        return km_.timing().duration_of(lo);
      case StuffingMode::kWorstCase:
        return km_.timing().duration_of(hi);
      case StuffingMode::kRandom:
        return km_.timing().duration_of(rng_.uniform_int(lo, hi));
    }
    return km_.timing().duration_of(hi);
  }

  void dispatch(const Event& ev) {
    switch (ev.kind) {
      case EvKind::kRelease:
        on_release(ev.msg);
        break;
      case EvKind::kTxEnd:
        if (tx_ && tx_->gen == ev.tx_gen) on_tx_end();
        break;
      case EvKind::kRecoveryEnd:
        recovering_ = false;
        try_start();
        break;
      case EvKind::kFault:
        on_sporadic_fault();
        break;
      case EvKind::kBurstStart:
        on_burst_start();
        break;
      case EvKind::kBurstHit:
        if (tx_ && tx_->gen == ev.tx_gen && burst_remaining_ > 0) consume_burst_hit();
        break;
    }
  }

  void on_release(std::size_t i) {
    const auto& m = km_.messages()[i];
    ++stats_[i].activations;
    record(TraceEventType::kRelease, i, next_instance_[i]);
    enqueue(i, PendingInstance{next_instance_[i], now_, 0});
    ++next_instance_[i];

    // Schedule the next activation: n*T + U(0, J) after this one's
    // nominal slot; clamp to now (a very late instance cannot precede the
    // event that schedules it).
    const Duration jit = cfg_.randomize_jitter
                             ? rng_.uniform_duration(Duration::zero(), m.jitter)
                             : m.jitter;
    const Duration nominal_next = now_ - last_jitter_[i] + m.period;
    // Strictly-later clamp: bursty jitter (J >= T) may pull the next
    // release before this one; 1 ns forward progress keeps the event loop
    // finite.
    Duration t_next = max(nominal_next + jit, now_ + Duration::ns(1));
    last_jitter_[i] = jit;
    push(Event{t_next, seq_++, EvKind::kRelease, i, 0});
    try_start();
  }

  /// Place an instance into its message buffer. A still-pending older
  /// instance is overwritten — the paper's loss criterion. basicCAN nodes
  /// then top up their hardware transmit FIFO.
  void enqueue(std::size_t i, PendingInstance inst) {
    auto& buf = buffers_[i];
    if (buf) {
      ++stats_[i].losses;
      record(TraceEventType::kLoss, i, buf->instance);
      *buf = inst;  // keeps any committed FIFO position
    } else {
      buf = inst;
    }
    refill_fifo(node_index_[i]);
  }

  /// basicCAN: software driver keeps pending frames priority-sorted and
  /// commits them into the (non-abortable, FIFO-drained) hardware
  /// transmit buffers whenever a slot is free. Committed order is what
  /// creates the intra-node priority inversion the analysis charges.
  void refill_fifo(std::size_t node_idx) {
    const EcuNode& node = km_.nodes()[node_idx];
    if (node.controller != ControllerType::kBasicCan) return;
    auto& fifo = fifos_[node_idx];
    while (fifo.size() < static_cast<std::size_t>(node.tx_buffers)) {
      std::optional<std::size_t> best;
      for (std::size_t i = 0; i < km_.size(); ++i) {
        if (node_index_[i] != node_idx || !buffers_[i]) continue;
        if (std::find(fifo.begin(), fifo.end(), i) != fifo.end()) continue;
        if (!best ||
            km_.messages()[i].arbitration_rank() < km_.messages()[*best].arbitration_rank())
          best = i;
      }
      if (!best) break;
      fifo.push_back(*best);
    }
  }

  /// The frame this node would present to arbitration, or nullopt.
  std::optional<std::size_t> node_candidate(std::size_t node_idx) const {
    if (now_ < bus_off_until_[node_idx]) return std::nullopt;  // node silent
    const EcuNode& node = km_.nodes()[node_idx];
    if (node.controller == ControllerType::kBasicCan) {
      const auto& fifo = fifos_[node_idx];
      if (fifo.empty()) return std::nullopt;
      return fifo.front();
    }
    std::optional<std::size_t> best;
    for (std::size_t i = 0; i < km_.size(); ++i) {
      if (node_index_[i] != node_idx || !buffers_[i]) continue;
      if (!best ||
          km_.messages()[i].arbitration_rank() < km_.messages()[*best].arbitration_rank())
        best = i;
    }
    return best;
  }

  void try_start() {
    if (tx_ || recovering_) return;
    std::optional<std::size_t> winner;
    for (std::size_t n = 0; n < km_.nodes().size(); ++n) {
      const auto cand = node_candidate(n);
      if (!cand) continue;
      if (!winner ||
          km_.messages()[*cand].arbitration_rank() < km_.messages()[*winner].arbitration_rank())
        winner = cand;
    }
    if (!winner) return;

    const std::size_t i = *winner;
    Tx tx;
    tx.msg = i;
    tx.inst = *buffers_[i];
    tx.start = now_;
    tx.end = now_ + sample_frame_time(i);
    tx.gen = ++gen_;
    buffers_[i].reset();
    auto& fifo = fifos_[node_index_[i]];
    if (!fifo.empty() && fifo.front() == i) fifo.pop_front();
    refill_fifo(node_index_[i]);
    tx_ = tx;
    record(TraceEventType::kTxStart, i, tx.inst.instance);

    if (burst_remaining_ > 0 && now_ <= burst_expires_) {
      // Burst in progress: this transmission is corrupted after its first
      // bit (keeps all faults of the burst tightly clustered, within the
      // extent the BurstErrors analysis model charges for).
      push(Event{now_ + tau_, seq_++, EvKind::kBurstHit, 0, tx.gen});
    } else {
      push(Event{tx.end, seq_++, EvKind::kTxEnd, 0, tx.gen});
    }
  }

  void on_tx_end() {
    const Tx tx = *tx_;
    tx_ = std::nullopt;
    auto& s = stats_[tx.msg];
    ++s.completions;
    const Duration r = now_ - tx.inst.release;
    s.wcrt_observed = max(s.wcrt_observed, r);
    s.bcrt_observed = min(s.bcrt_observed, r);
    if (cfg_.record_percentiles) s.responses.push_back(r);
    response_sum_us_[s.name] += r.as_us();
    if (cfg_.model_fault_confinement && tec_[node_index_[tx.msg]] > 0)
      --tec_[node_index_[tx.msg]];
    record(TraceEventType::kTxEnd, tx.msg, tx.inst.instance);
    try_start();
  }

  /// Corrupt the frame currently in transmission at time `now_`.
  void corrupt_current() {
    Tx tx = *tx_;
    tx_ = std::nullopt;
    ++total_errors_;
    ++stats_[tx.msg].retransmissions;
    record(TraceEventType::kError, tx.msg, tx.inst.instance);

    // The instance returns to its buffer for retransmission — unless a
    // newer instance already claimed the buffer, in which case the
    // corrupted one is lost.
    ++tx.inst.retransmits;
    if (buffers_[tx.msg]) {
      ++stats_[tx.msg].losses;
      record(TraceEventType::kLoss, tx.msg, tx.inst.instance);
    } else {
      buffers_[tx.msg] = tx.inst;
      if (km_.nodes()[node_index_[tx.msg]].controller == ControllerType::kBasicCan)
        fifos_[node_index_[tx.msg]].push_front(tx.msg);
      record(TraceEventType::kRetransmit, tx.msg, tx.inst.instance);
    }
    if (cfg_.model_fault_confinement) {
      const std::size_t node = node_index_[tx.msg];
      tec_[node] += 8;
      node_stats_[node].peak_tec = std::max(node_stats_[node].peak_tec, tec_[node]);
      if (tec_[node] >= 256) {
        // Bus-off: the node falls silent for the standard recovery span
        // (128 x 11 recessive bits), then rejoins with a clean counter.
        const Duration recovery = km_.timing().duration_of(128 * 11);
        bus_off_until_[node] = now_ + recovery;
        node_stats_[node].silent_time += recovery;
        ++node_stats_[node].bus_off_events;
        tec_[node] = 0;
        push(Event{bus_off_until_[node], seq_++, EvKind::kRecoveryEnd, 0, 0});
      }
    }
    recovering_ = true;
    push(Event{now_ + km_.timing().duration_of(error_frame_bits), seq_++, EvKind::kRecoveryEnd, 0,
               0});
  }

  void on_sporadic_fault() {
    if (tx_ && now_ >= tx_->start && now_ < tx_->end) corrupt_current();
    push(Event{now_ + next_fault_gap(), seq_++, EvKind::kFault, 0, 0});
  }

  void on_burst_start() {
    burst_remaining_ = cfg_.errors.burst_len;
    // All faults of this burst must fall within the extent the analysis
    // model charges: (k-1) recovery+retransmission slots from the first.
    burst_expires_ = now_ + (cfg_.errors.burst_len - 1) *
                                (km_.timing().duration_of(error_frame_bits) + max_frame_wc_);
    if (tx_ && now_ >= tx_->start && now_ < tx_->end) consume_burst_hit();
    push(Event{now_ + next_fault_gap(), seq_++, EvKind::kBurstStart, 0, 0});
  }

  void consume_burst_hit() {
    --burst_remaining_;
    corrupt_current();
  }

  const KMatrix& km_;
  const SimConfig& cfg_;
  Rng rng_;
  Duration tau_;
  Duration now_ = Duration::zero();
  std::uint64_t seq_ = 0;
  std::uint64_t gen_ = 0;

  std::priority_queue<Event, std::vector<Event>, EventAfter> events_;
  std::vector<std::optional<PendingInstance>> buffers_;
  std::vector<std::int64_t> next_instance_;
  std::vector<std::size_t> node_index_;
  std::vector<std::deque<std::size_t>> fifos_;
  std::map<std::size_t, Duration> last_jitter_;
  std::optional<Tx> tx_;
  bool recovering_ = false;

  Duration max_frame_wc_ = Duration::zero();
  std::int64_t burst_remaining_ = 0;
  Duration burst_expires_ = Duration::zero();
  std::int64_t total_errors_ = 0;

  std::vector<MessageStats> stats_;
  std::vector<NodeStats> node_stats_;
  std::vector<std::int64_t> tec_;
  std::vector<Duration> bus_off_until_;
  std::map<std::string, double> response_sum_us_;
  Trace trace_;
};

}  // namespace

SimResult simulate(const KMatrix& km, const SimConfig& cfg) {
  if (cfg.duration <= Duration::zero())
    throw std::invalid_argument("simulate: duration must be > 0");
  Simulation sim{km, cfg};
  return sim.run();
}

}  // namespace symcan

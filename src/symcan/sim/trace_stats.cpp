#include "symcan/sim/trace_stats.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <utility>

#include "symcan/obs/export.hpp"

namespace symcan {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  char buf[256];
  const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (n < 0) {
    va_end(ap2);
    return;
  }
  if (static_cast<std::size_t>(n) < sizeof buf) {
    out.append(buf, static_cast<std::size_t>(n));
  } else {
    std::string big(static_cast<std::size_t>(n) + 1, '\0');
    std::vsnprintf(big.data(), big.size(), fmt, ap2);
    big.resize(static_cast<std::size_t>(n));
    out += big;
  }
  va_end(ap2);
}

/// In-flight state of one (message, instance) pair.
struct InstanceState {
  Duration release = Duration::zero();
  Duration first_error = Duration::zero();
  bool released = false;
  bool started = false;
  bool errored = false;
};

/// Per-message accumulator. Holds a live obs::Histogram (non-copyable —
/// the map constructs it in place) snapshotted at the end.
struct Accum {
  MessageTraceStats out;
  obs::Histogram latency_us{obs::MetricsRegistry::default_latency_bounds_us()};
  std::unordered_map<std::int64_t, InstanceState> inflight;
};

obs::HistogramSnapshot snapshot_histogram(const std::string& name, const obs::Histogram& h) {
  obs::HistogramSnapshot s;
  s.name = name;
  s.count = h.count();
  s.sum = h.sum();
  s.min = h.observed_min();
  s.max = h.observed_max();
  s.p50 = h.quantile(0.50);
  s.p95 = h.quantile(0.95);
  s.p99 = h.quantile(0.99);
  const auto& bounds = h.bounds();
  s.buckets.reserve(bounds.size());
  for (std::size_t i = 0; i < bounds.size(); ++i) s.buckets.emplace_back(bounds[i], h.bucket_count(i));
  s.overflow = h.bucket_count(bounds.size());
  return s;
}

}  // namespace

const MessageTraceStats* TraceStats::find(const std::string& name) const {
  for (const auto& m : messages)
    if (m.name == name) return &m;
  return nullptr;
}

TraceStats compute_trace_stats(const Trace& trace, Duration span, Duration window) {
  TraceStats stats;
  stats.span = span;

  std::map<std::string, Accum> by_message;
  // Bus busy intervals: transmission start to completion or corruption.
  // The bus is serial, so at most one interval is open at a time.
  std::vector<std::pair<Duration, Duration>> busy;
  Duration open_start = Duration::zero();
  bool open = false;

  for (const TraceEvent& e : trace.events()) {
    Accum& acc = by_message[e.message];
    InstanceState& st = acc.inflight[e.instance];
    switch (e.type) {
      case TraceEventType::kRelease:
        ++acc.out.releases;
        st.release = e.time;
        st.released = true;
        break;
      case TraceEventType::kTxStart:
        if (!st.started) {
          st.started = true;
          if (st.released) {
            const Duration wait = e.time - st.release;
            acc.out.arbitration_wait_total += wait;
            acc.out.arbitration_wait_max = max(acc.out.arbitration_wait_max, wait);
          }
        }
        open_start = e.time;
        open = true;
        break;
      case TraceEventType::kTxEnd: {
        ++acc.out.completions;
        if (st.released) {
          const Duration latency = e.time - st.release;
          acc.out.observed_max = max(acc.out.observed_max, latency);
          acc.out.observed_min = min(acc.out.observed_min, latency);
          acc.out.latency_total += latency;
          ++acc.out.latency_samples;
          acc.latency_us.observe(static_cast<double>(latency.count_ns()) / 1000.0);
          if (st.errored) acc.out.retransmit_delay_total += e.time - st.first_error;
        }
        acc.inflight.erase(e.instance);
        if (open) busy.emplace_back(open_start, e.time);
        open = false;
        break;
      }
      case TraceEventType::kError:
        ++acc.out.errors;
        if (!st.errored) {
          st.errored = true;
          st.first_error = e.time;
        }
        if (open) busy.emplace_back(open_start, e.time);
        open = false;
        break;
      case TraceEventType::kRetransmit:
        ++acc.out.retransmits;
        break;
      case TraceEventType::kLoss:
        ++acc.out.losses;
        acc.inflight.erase(e.instance);
        break;
    }
  }
  // A transmission still on the wire when the trace ends counts as busy
  // up to the span boundary.
  if (open && span > open_start) busy.emplace_back(open_start, span);

  for (auto& [name, acc] : by_message) {
    acc.out.name = name;
    acc.out.latency_us = snapshot_histogram(name, acc.latency_us);
    acc.out.observed_p99 =
        Duration::ns(static_cast<std::int64_t>(acc.out.latency_us.p99 * 1000.0 + 0.5));
    stats.messages.push_back(std::move(acc.out));
  }

  // Utilization. Guard every divisor: an empty trace, a zero span, or a
  // non-positive window must all degrade to "no windows", never to a
  // division by zero.
  Duration total_busy = Duration::zero();
  for (const auto& [b, e] : busy) total_busy += min(e, span) - min(b, span);
  if (span > Duration::zero())
    stats.average_utilization =
        static_cast<double>(total_busy.count_ns()) / static_cast<double>(span.count_ns());

  if (span > Duration::zero() && window > Duration::zero()) {
    const Duration step = window.count_ns() >= 2 ? Duration::ns(window.count_ns() / 2) : window;
    std::size_t lo = 0;  // First busy interval that can still overlap.
    for (Duration t = Duration::zero(); t < span; t += step) {
      const Duration end = min(t + window, span);
      while (lo < busy.size() && busy[lo].second <= t) ++lo;
      Duration overlap = Duration::zero();
      for (std::size_t i = lo; i < busy.size() && busy[i].first < end; ++i)
        overlap += min(busy[i].second, end) - max(busy[i].first, t);
      UtilizationWindow uw;
      uw.start = t;
      uw.end = end;
      uw.utilization =
          static_cast<double>(overlap.count_ns()) / static_cast<double>((end - t).count_ns());
      stats.peak_utilization = std::max(stats.peak_utilization, uw.utilization);
      stats.utilization.push_back(uw);
    }
  }
  return stats;
}

std::string trace_stats_to_text(const TraceStats& stats) {
  std::string out;
  appendf(out, "trace span %s, bus utilization avg %.1f%% peak %.1f%% (%zu windows)\n",
          to_string(stats.span).c_str(), stats.average_utilization * 100.0,
          stats.peak_utilization * 100.0, stats.utilization.size());
  appendf(out, "%-20s %8s %8s %6s %6s %6s %12s %12s %12s\n", "message", "released", "complete",
          "err", "retx", "lost", "max latency", "p99", "max arb wait");
  for (const auto& m : stats.messages) {
    appendf(out, "%-20s %8" PRId64 " %8" PRId64 " %6" PRId64 " %6" PRId64 " %6" PRId64
                 " %12s %12s %12s\n",
            m.name.c_str(), m.releases, m.completions, m.errors, m.retransmits, m.losses,
            to_string(m.observed_max).c_str(), to_string(m.observed_p99).c_str(),
            to_string(m.arbitration_wait_max).c_str());
  }
  return out;
}

std::string trace_stats_to_json(const TraceStats& stats) {
  std::string out = "{";
  appendf(out, "\"span_ns\":%" PRId64 ",", stats.span.count_ns());
  out += "\"average_utilization\":" + obs::json_number(stats.average_utilization) + ",";
  out += "\"peak_utilization\":" + obs::json_number(stats.peak_utilization) + ",";
  out += "\"messages\":[";
  for (std::size_t i = 0; i < stats.messages.size(); ++i) {
    const MessageTraceStats& m = stats.messages[i];
    if (i) out += ",";
    out += "{";
    appendf(out, "\"name\":\"%s\",", obs::json_escape(m.name).c_str());
    appendf(out, "\"releases\":%" PRId64 ",", m.releases);
    appendf(out, "\"completions\":%" PRId64 ",", m.completions);
    appendf(out, "\"errors\":%" PRId64 ",", m.errors);
    appendf(out, "\"retransmits\":%" PRId64 ",", m.retransmits);
    appendf(out, "\"losses\":%" PRId64 ",", m.losses);
    appendf(out, "\"observed_max_ns\":%" PRId64 ",", m.observed_max.count_ns());
    appendf(out, "\"observed_min_ns\":%" PRId64 ",",
            m.latency_samples > 0 ? m.observed_min.count_ns() : 0);
    appendf(out, "\"latency_mean_ns\":%" PRId64 ",", m.latency_mean().count_ns());
    appendf(out, "\"latency_samples\":%" PRId64 ",", m.latency_samples);
    appendf(out, "\"observed_p99_ns\":%" PRId64 ",", m.observed_p99.count_ns());
    appendf(out, "\"arbitration_wait_max_ns\":%" PRId64 ",", m.arbitration_wait_max.count_ns());
    appendf(out, "\"arbitration_wait_total_ns\":%" PRId64 ",", m.arbitration_wait_total.count_ns());
    appendf(out, "\"retransmit_delay_total_ns\":%" PRId64 ",", m.retransmit_delay_total.count_ns());
    out += "\"latency_us\":{";
    out += "\"count\":";
    appendf(out, "%" PRId64 ",", m.latency_us.count);
    out += "\"sum\":" + obs::json_number(m.latency_us.sum) + ",";
    out += "\"min\":" + obs::json_number(m.latency_us.min) + ",";
    out += "\"max\":" + obs::json_number(m.latency_us.max) + ",";
    out += "\"p50\":" + obs::json_number(m.latency_us.p50) + ",";
    out += "\"p95\":" + obs::json_number(m.latency_us.p95) + ",";
    out += "\"p99\":" + obs::json_number(m.latency_us.p99) + ",";
    out += "\"buckets\":[";
    for (std::size_t j = 0; j < m.latency_us.buckets.size(); ++j) {
      if (j) out += ",";
      out += "[" + obs::json_number(m.latency_us.buckets[j].first) + ",";
      appendf(out, "%" PRId64 "]", m.latency_us.buckets[j].second);
    }
    out += "],";
    appendf(out, "\"overflow\":%" PRId64 "}}", m.latency_us.overflow);
  }
  out += "],\"utilization\":[";
  for (std::size_t i = 0; i < stats.utilization.size(); ++i) {
    const UtilizationWindow& w = stats.utilization[i];
    if (i) out += ",";
    appendf(out, "{\"start_ns\":%" PRId64 ",\"end_ns\":%" PRId64 ",\"utilization\":%s}",
            w.start.count_ns(), w.end.count_ns(), obs::json_number(w.utilization).c_str());
  }
  out += "]}";
  return out;
}

}  // namespace symcan

#pragma once

// Bound-vs-observed divergence report: the joint of the two
// domain-observability halves. The RTA side claims "no instance of m
// ever responds later than its bound"; the simulator produces concrete
// response times under assumptions the analysis dominates. Observed
// latency above the bound is therefore a *bug* (in the analysis, the
// simulator, or the assumption pairing) and is flagged as a violation;
// the distance below the bound is the pessimism gap — the price of
// analyzing worst-case phasings, stuffing, and error timing that the
// random simulation did not happen to produce.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "symcan/analysis/can_rta.hpp"
#include "symcan/sim/simulator.hpp"
#include "symcan/util/time.hpp"

namespace symcan {

/// One message's analytic bound against its simulated behaviour.
struct BoundObservation {
  std::string name;
  Duration bound = Duration::infinite();     ///< Analytic WCRT.
  Duration observed_max = Duration::zero();  ///< Largest simulated response.
  Duration observed_p99 = Duration::zero();  ///< Zero without record_percentiles.
  std::int64_t completions = 0;
  bool diverged = false;   ///< Analysis hit the horizon — no finite bound.
  bool violation = false;  ///< observed_max > bound: soundness bug.

  /// Pessimism gap; infinite when the analysis diverged.
  Duration gap() const { return bound.is_infinite() ? Duration::infinite() : bound - observed_max; }
  /// observed_max / bound in [0, 1] for sound pairs; 0 when unbounded.
  double tightness() const {
    if (bound.is_infinite() || bound <= Duration::zero()) return 0;
    return static_cast<double>(observed_max.count_ns()) / static_cast<double>(bound.count_ns());
  }
};

struct BoundValidation {
  std::vector<BoundObservation> messages;  ///< Analysis order.
  std::size_t violations = 0;
  /// Largest observed/bound ratio across sound, completed messages —
  /// how close the simulation came to the analytic worst case.
  double worst_tightness = 0;

  bool ok() const { return violations == 0; }
};

/// Join `analysis` and `sim` by message name. Messages missing from the
/// simulation (never completed, or absent) report zero observations and
/// cannot violate.
BoundValidation compare_bound_vs_observed(const BusResult& analysis, const SimResult& sim);

/// Per-message table with gap and tightness columns, violations marked.
std::string validation_to_text(const BoundValidation& v);

/// Machine-readable form; durations in integer nanoseconds.
std::string validation_to_json(const BoundValidation& v);

}  // namespace symcan

#pragma once

// Discrete-event simulation of one ECU's OSEK-style scheduler — the
// task-level counterpart of the CAN bus simulator, and the soundness
// oracle for EcuRta: simulated task response times must never exceed the
// analysis bounds when execution times and release jitter respect the
// task model.
//
// Scheduling semantics (matching EcuRta's model):
//  * hardware ISRs preempt every task and each other by priority;
//  * preemptive tasks preempt lower-priority tasks immediately;
//  * cooperative tasks yield to other *tasks* only at segment boundaries
//    (every `max_segment` of executed time); ISRs still preempt them;
//  * per-activation OS overhead executes as part of the task;
//  * activations queue (OSEK multiple-activation): a pending activation
//    waits for the previous instance to complete.

#include <cstdint>
#include <string>
#include <vector>

#include "symcan/model/task.hpp"
#include "symcan/util/rng.hpp"
#include "symcan/util/time.hpp"

namespace symcan {

struct EcuSimConfig {
  Duration duration = Duration::s(2);
  std::uint64_t seed = 1;
  /// Sample execution in [bcet, wcet] and release jitter in [0, J];
  /// when false: always wcet and full jitter (deterministic stress).
  bool randomize = true;
};

struct TaskStats {
  std::string name;
  std::int64_t activations = 0;
  std::int64_t completions = 0;
  Duration wcrt_observed = Duration::zero();
  Duration bcrt_observed = Duration::infinite();
  double avg_response_us = 0;
  std::int64_t max_backlog = 0;  ///< Peak pending activations of this task.
};

struct EcuSimResult {
  std::vector<TaskStats> tasks;  ///< Input order.
  Duration simulated = Duration::zero();
  Duration busy_time = Duration::zero();  ///< CPU non-idle time.

  double utilization_observed() const {
    return simulated > Duration::zero() ? busy_time.as_s() / simulated.as_s() : 0;
  }
  const TaskStats* find(const std::string& name) const;
};

/// Simulate `tasks` on one core. Validates the task set like EcuRta does.
EcuSimResult simulate_ecu(const std::vector<Task>& tasks, const EcuSimConfig& cfg);

}  // namespace symcan

#include "symcan/sim/validation.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "symcan/obs/export.hpp"

namespace symcan {

BoundValidation compare_bound_vs_observed(const BusResult& analysis, const SimResult& sim) {
  BoundValidation v;
  v.messages.reserve(analysis.messages.size());
  for (const MessageResult& r : analysis.messages) {
    BoundObservation o;
    o.name = r.name;
    o.bound = r.wcrt;
    o.diverged = r.diverged;
    if (const MessageStats* s = sim.find(r.name)) {
      o.observed_max = s->wcrt_observed;
      o.observed_p99 = s->percentile(0.99);
      o.completions = s->completions;
    }
    // A diverged analysis has no finite bound to violate; anything the
    // sim observed is trivially below infinity.
    o.violation = !o.diverged && o.completions > 0 && o.observed_max > o.bound;
    if (o.violation) ++v.violations;
    if (!o.diverged && o.completions > 0)
      v.worst_tightness = std::max(v.worst_tightness, o.tightness());
    v.messages.push_back(std::move(o));
  }
  return v;
}

std::string validation_to_text(const BoundValidation& v) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "bound vs observed: %zu messages, %zu violations, worst tightness %.1f%%\n",
                v.messages.size(), v.violations, v.worst_tightness * 100.0);
  out += buf;
  std::snprintf(buf, sizeof buf, "%-20s %12s %12s %12s %12s %9s\n", "message", "bound",
                "observed max", "observed p99", "gap", "tight");
  out += buf;
  for (const BoundObservation& o : v.messages) {
    std::snprintf(buf, sizeof buf, "%-20s %12s %12s %12s %12s %8.1f%%%s\n", o.name.c_str(),
                  to_string(o.bound).c_str(), to_string(o.observed_max).c_str(),
                  to_string(o.observed_p99).c_str(), to_string(o.gap()).c_str(),
                  o.tightness() * 100.0,
                  o.violation ? "  <-- VIOLATION: sim exceeds analytic bound" : "");
    out += buf;
  }
  return out;
}

std::string validation_to_json(const BoundValidation& v) {
  std::string out = "{";
  char buf[128];
  std::snprintf(buf, sizeof buf, "\"violations\":%zu,", v.violations);
  out += buf;
  out += "\"worst_tightness\":" + obs::json_number(v.worst_tightness) + ",";
  out += "\"messages\":[";
  for (std::size_t i = 0; i < v.messages.size(); ++i) {
    const BoundObservation& o = v.messages[i];
    if (i) out += ",";
    out += "{\"name\":\"" + obs::json_escape(o.name) + "\",";
    std::snprintf(buf, sizeof buf,
                  "\"bound_ns\":%" PRId64 ",\"observed_max_ns\":%" PRId64
                  ",\"observed_p99_ns\":%" PRId64 ",\"completions\":%" PRId64 ",",
                  o.bound.count_ns(), o.observed_max.count_ns(), o.observed_p99.count_ns(),
                  o.completions);
    out += buf;
    out += "\"diverged\":";
    out += o.diverged ? "true" : "false";
    out += ",\"violation\":";
    out += o.violation ? "true" : "false";
    out += ",\"tightness\":" + obs::json_number(o.tightness()) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace symcan

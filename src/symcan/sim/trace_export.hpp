#pragma once

// Simulation-trace exporters: the event log as line-delimited JSON for
// ad-hoc tooling (jq, pandas), and as chrome://tracing / Perfetto JSON
// with one track per ECU plus one for the bus — the same target format
// obs::trace_to_chrome_json uses for runtime spans, so a simulated bus
// and the tool's own execution can be inspected with one viewer.

#include <string>

#include "symcan/can/kmatrix.hpp"
#include "symcan/sim/trace.hpp"

namespace symcan {

/// One JSON object per line:
/// {"t_ns":...,"type":"tx_start","message":"...","instance":N}
/// Message names are JSON-escaped; an empty trace yields an empty string.
std::string trace_to_jsonl(const Trace& trace);

/// Chrome trace-event JSON. Transmission attempts (start to completion
/// or corruption) become complete ("ph":"X") slices on the bus track;
/// releases, losses and retransmits become instants on their sending
/// ECU's track (resolved through `km`; messages unknown to `km` land on
/// a "?" track). Timestamps are microseconds as the format requires.
std::string sim_trace_to_chrome_json(const Trace& trace, const KMatrix& km);

}  // namespace symcan

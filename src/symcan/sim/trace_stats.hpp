#pragma once

// Post-hoc analytics over a recorded simulation Trace — the "what did
// the bus actually do" half of the domain-observability layer (the RTA
// provenance in analysis/provenance.hpp is the "why is the bound what it
// is" half; sim/validation.hpp joins the two).
//
// Everything here is computed from the event log alone: per-message
// observed-latency histograms (on the obs subsystem's latency buckets,
// so sim latencies and runtime latencies read on the same axis),
// arbitration-wait and retransmit breakdowns, and bus utilization over
// sliding windows — the trace analytics that in-vehicle network
// simulation platforms treat as first-class outputs.

#include <cstdint>
#include <string>
#include <vector>

#include "symcan/obs/metrics.hpp"
#include "symcan/sim/trace.hpp"
#include "symcan/util/time.hpp"

namespace symcan {

/// Observed statistics of one message, reduced from its trace events.
struct MessageTraceStats {
  std::string name;
  std::int64_t releases = 0;
  std::int64_t completions = 0;
  std::int64_t errors = 0;       ///< Corrupted transmissions of this message.
  std::int64_t retransmits = 0;
  std::int64_t losses = 0;       ///< Overwritten instances.

  /// Release-to-completion latency of completed instances, in
  /// microseconds on obs::MetricsRegistry::default_latency_bounds_us().
  obs::HistogramSnapshot latency_us;
  Duration observed_max = Duration::zero();
  Duration observed_p99 = Duration::zero();  ///< Interpolated from the histogram.

  /// Exact integer-ns latency aggregates (the histogram above is a lossy
  /// microsecond view). The online StreamAnalyzer reproduces these
  /// bit-for-bit — the equivalence contract tests/stream/equivalence_test.cpp
  /// pins. `observed_min` is infinite when no completed instance had an
  /// observed release.
  Duration observed_min = Duration::infinite();
  Duration latency_total = Duration::zero();
  std::int64_t latency_samples = 0;
  Duration latency_mean() const {
    return latency_samples > 0 ? latency_total / latency_samples : Duration::zero();
  }

  /// Arbitration wait: release to *first* transmission start — the time
  /// an instance spent queued while losing (or waiting out) arbitration.
  Duration arbitration_wait_total = Duration::zero();
  Duration arbitration_wait_max = Duration::zero();

  /// Extra latency retransmissions cost: first error to final completion,
  /// summed over instances that were corrupted at least once.
  Duration retransmit_delay_total = Duration::zero();
};

/// Bus utilization inside one window position.
struct UtilizationWindow {
  Duration start = Duration::zero();
  Duration end = Duration::zero();
  double utilization = 0;  ///< Transmitting fraction of [start, end).
};

struct TraceStats {
  /// Sorted by message name.
  std::vector<MessageTraceStats> messages;

  /// Sliding windows (50 % overlap) covering [0, span).
  std::vector<UtilizationWindow> utilization;
  double peak_utilization = 0;
  double average_utilization = 0;  ///< Busy fraction of the whole span.

  Duration span = Duration::zero();

  const MessageTraceStats* find(const std::string& name) const;
};

/// Reduce `trace` over the time span [0, span). `window` is the sliding
/// utilization window length; a non-positive `window` or `span` yields no
/// utilization windows (never a division by zero). An empty trace yields
/// empty stats. Busy time counts transmission attempts (start to
/// completion or corruption); error-frame recovery between a corruption
/// and the retransmission re-entering arbitration is not charged.
TraceStats compute_trace_stats(const Trace& trace, Duration span, Duration window);

/// Render per-message table + utilization summary for terminals.
std::string trace_stats_to_text(const TraceStats& stats);

/// Machine-readable form; durations in integer nanoseconds, histograms
/// as (le_us, count) pairs.
std::string trace_stats_to_json(const TraceStats& stats);

}  // namespace symcan

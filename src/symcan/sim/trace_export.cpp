#include "symcan/sim/trace_export.hpp"

#include <cinttypes>
#include <cstdio>
#include <map>
#include <string>

#include "symcan/obs/export.hpp"

namespace symcan {

namespace {

const char* type_slug(TraceEventType t) {
  switch (t) {
    case TraceEventType::kRelease: return "release";
    case TraceEventType::kTxStart: return "tx_start";
    case TraceEventType::kTxEnd: return "tx_end";
    case TraceEventType::kError: return "error";
    case TraceEventType::kRetransmit: return "retransmit";
    case TraceEventType::kLoss: return "loss";
  }
  return "?";
}

double to_us(Duration d) { return static_cast<double>(d.count_ns()) / 1000.0; }

}  // namespace

std::string trace_to_jsonl(const Trace& trace) {
  std::string out;
  char buf[64];
  for (const TraceEvent& e : trace.events()) {
    out += "{\"t_ns\":";
    std::snprintf(buf, sizeof buf, "%" PRId64, e.time.count_ns());
    out += buf;
    out += ",\"type\":\"";
    out += type_slug(e.type);
    out += "\",\"message\":\"";
    out += obs::json_escape(e.message);
    out += "\",\"instance\":";
    std::snprintf(buf, sizeof buf, "%" PRId64, e.instance);
    out += buf;
    out += "}\n";
  }
  return out;
}

std::string sim_trace_to_chrome_json(const Trace& trace, const KMatrix& km) {
  // Track layout: tid 0 is the bus; each ECU (in KMatrix node order) gets
  // the next tid; names that resolve to no sender share a "?" track.
  std::map<std::string, int> ecu_tid;          // ECU name -> tid
  std::map<std::string, int> sender_of;        // message name -> tid
  std::string out = "{\"traceEvents\": [\n  "
                    "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
                    "\"args\": {\"name\": \"bus\"}}";
  int next_tid = 1;
  for (const auto& m : km.messages()) {
    auto [it, inserted] = ecu_tid.emplace(m.sender, next_tid);
    if (inserted) {
      char buf[32];
      out += ",\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": ";
      std::snprintf(buf, sizeof buf, "%d", next_tid);
      out += buf;
      out += ", \"args\": {\"name\": \"";
      out += obs::json_escape(m.sender);
      out += "\"}}";
      ++next_tid;
    }
    sender_of.emplace(m.name, it->second);
  }
  const int unknown_tid = next_tid;
  bool unknown_used = false;

  const auto tid_of = [&](const std::string& message) {
    const auto it = sender_of.find(message);
    if (it != sender_of.end()) return it->second;
    unknown_used = true;
    return unknown_tid;
  };

  // The bus is serial, so each kTxStart terminates at the next
  // kTxEnd/kError; a following kTxStart first means the trace was cut
  // mid-transmission.
  const auto& events = trace.events();
  std::string body;
  char buf[128];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (e.type == TraceEventType::kTxStart) {
      Duration end = e.time;
      const char* outcome = "cut";  // Trace ended mid-transmission.
      for (std::size_t j = i + 1; j < events.size(); ++j) {
        if (events[j].type == TraceEventType::kTxStart) break;
        if (events[j].type == TraceEventType::kTxEnd || events[j].type == TraceEventType::kError) {
          end = events[j].time;
          outcome = events[j].type == TraceEventType::kTxEnd ? "ok" : "error";
          break;
        }
      }
      body += ",\n  {\"name\": \"";
      body += obs::json_escape(e.message);
      body += "\", \"cat\": \"tx\", \"ph\": \"X\", \"ts\": ";
      body += obs::json_number(to_us(e.time));
      body += ", \"dur\": ";
      body += obs::json_number(to_us(end - e.time));
      std::snprintf(buf, sizeof buf,
                    ", \"pid\": 1, \"tid\": 0, \"args\": {\"instance\": %" PRId64
                    ", \"outcome\": \"%s\"}}",
                    e.instance, outcome);
      body += buf;
    } else if (e.type == TraceEventType::kRelease || e.type == TraceEventType::kLoss ||
               e.type == TraceEventType::kRetransmit) {
      body += ",\n  {\"name\": \"";
      body += obs::json_escape(e.message);
      body += "\", \"cat\": \"";
      body += type_slug(e.type);
      body += "\", \"ph\": \"i\", \"s\": \"t\", \"ts\": ";
      body += obs::json_number(to_us(e.time));
      std::snprintf(buf, sizeof buf, ", \"pid\": 1, \"tid\": %d, \"args\": {\"instance\": %" PRId64 "}}",
                    tid_of(e.message), e.instance);
      body += buf;
    }
  }
  if (unknown_used) {
    char tbuf[32];
    out += ",\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": ";
    std::snprintf(tbuf, sizeof tbuf, "%d", unknown_tid);
    out += tbuf;
    out += ", \"args\": {\"name\": \"?\"}}";
  }
  out += body;
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

}  // namespace symcan

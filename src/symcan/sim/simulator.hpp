#pragma once

// Discrete-event simulation of one CAN bus.
//
// The paper contrasts analysis with "simulation and test [which] suffers
// from serious corner case coverage problems". We implement the simulator
// anyway, for two reasons that mirror how such tools are validated in
// practice:
//
//  * it renders concrete communication patterns (Figure 2), and
//  * it provides a soundness oracle: every simulated response time must
//    stay at or below the analysis bound when the simulated jitter,
//    stuffing, and error processes respect the analysis assumptions.
//
// Model: nodes release message instances periodically with sampled
// release jitter; the bus arbitrates non-preemptively by CAN ID among the
// frames each node presents (fullCAN: its highest-priority pending frame;
// basicCAN: the head of its FIFO transmit queue). Bus errors corrupt the
// frame in transmission, cost an error-frame recovery, and trigger
// retransmission. A pending instance overwritten by a newer release of
// the same message is counted as a loss (paper Section 3.2).

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "symcan/can/kmatrix.hpp"
#include "symcan/sim/trace.hpp"
#include "symcan/util/rng.hpp"
#include "symcan/util/time.hpp"

namespace symcan {

/// How frame lengths are drawn during simulation.
enum class StuffingMode : std::uint8_t {
  kNone,       ///< Unstuffed lengths (optimistic).
  kRandom,     ///< Uniform between unstuffed and worst-case (realistic).
  kWorstCase,  ///< Always worst-case stuffing (matches conservative analysis).
};

/// Error injection process for the simulator. Generators guarantee their
/// produced fault times respect the corresponding analysis model, so
/// analysis bounds remain valid oracles.
struct SimErrorProcess {
  enum class Kind : std::uint8_t { kNone, kSporadic, kBurst } kind = Kind::kNone;
  /// kSporadic: faults separated by >= min_gap (plus random slack).
  /// kBurst: burst starts separated by >= min_gap; each burst corrupts
  /// `burst_len` consecutive transmissions.
  Duration min_gap = Duration::ms(100);
  std::int64_t burst_len = 1;

  static SimErrorProcess none() { return {}; }
  static SimErrorProcess sporadic(Duration min_gap);
  static SimErrorProcess burst(Duration min_gap, std::int64_t burst_len);
};

struct SimConfig {
  Duration duration = Duration::s(2);  ///< Simulated bus time.
  std::uint64_t seed = 1;
  StuffingMode stuffing = StuffingMode::kRandom;
  SimErrorProcess errors;
  bool record_trace = false;  ///< Trace recording is O(events); off for long runs.
  /// Sample each instance's release as n*T + U(0, J) when true; when
  /// false use the deterministic worst phasing U == J for all.
  bool randomize_jitter = true;

  /// CAN fault confinement: each transmit error adds 8 to the sender's
  /// transmit error counter (TEC), each success subtracts 1; at TEC >=
  /// 256 the node goes bus-off and stays silent for the standard
  /// recovery time (128 occurrences of 11 recessive bits, approximated
  /// as 1408 contiguous bit times), then rejoins with TEC = 0. Silent
  /// nodes keep losing overwritten instances — the realistic failure
  /// mode behind the paper's reliability concerns.
  bool model_fault_confinement = true;

  /// Record every completed response time so percentiles can be queried
  /// (memory: one Duration per completion).
  bool record_percentiles = false;
};

/// Per-message simulation statistics.
struct MessageStats {
  std::string name;
  std::int64_t activations = 0;
  std::int64_t completions = 0;
  std::int64_t losses = 0;          ///< Overwritten instances.
  std::int64_t retransmissions = 0;
  Duration wcrt_observed = Duration::zero();
  Duration bcrt_observed = Duration::infinite();
  double avg_response_us = 0;  ///< Mean response of completed instances.

  /// Sorted response times; populated only with record_percentiles.
  std::vector<Duration> responses;

  double loss_rate() const {
    return activations > 0 ? static_cast<double>(losses) / static_cast<double>(activations) : 0;
  }

  /// p-quantile (p in [0,1]) of the recorded responses; zero when none
  /// were recorded. p = 0.5 is the median, p = 1.0 the maximum.
  Duration percentile(double p) const;
};

/// Per-node fault-confinement statistics.
struct NodeStats {
  std::string name;
  std::int64_t bus_off_events = 0;
  Duration silent_time = Duration::zero();  ///< Total time spent bus-off.
  std::int64_t peak_tec = 0;
};

struct SimResult {
  std::vector<MessageStats> messages;  ///< Same order as KMatrix::messages().
  std::vector<NodeStats> nodes;        ///< Same order as KMatrix::nodes().
  std::int64_t total_errors_injected = 0;
  Duration simulated = Duration::zero();
  Trace trace;  ///< Empty unless SimConfig::record_trace.

  const MessageStats* find(const std::string& name) const;
  const NodeStats* find_node(const std::string& name) const;
};

/// Run one simulation of `km` under `cfg`.
SimResult simulate(const KMatrix& km, const SimConfig& cfg);

}  // namespace symcan

#include "symcan/sim/trace.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace symcan {

const char* to_string(TraceEventType t) {
  switch (t) {
    case TraceEventType::kRelease:
      return "release";
    case TraceEventType::kTxStart:
      return "tx-start";
    case TraceEventType::kTxEnd:
      return "tx-end";
    case TraceEventType::kError:
      return "error";
    case TraceEventType::kRetransmit:
      return "retransmit";
    case TraceEventType::kLoss:
      return "loss";
  }
  return "?";
}

void Trace::record(Duration time, TraceEventType type, std::string message,
                   std::int64_t instance) {
  events_.push_back(TraceEvent{time, type, std::move(message), instance});
}

std::string Trace::to_text() const {
  std::ostringstream os;
  for (const auto& e : events_) {
    os << to_string(e.time) << "  " << to_string(e.type) << "  " << e.message << "#" << e.instance
       << '\n';
  }
  return os.str();
}

std::string Trace::to_gantt(Duration from, Duration to, Duration resolution) const {
  if (resolution <= Duration::zero() || to <= from) return {};
  const std::size_t cols =
      static_cast<std::size_t>(ceil_div(to - from, resolution));

  // Stable row order: first appearance in the trace.
  std::vector<std::string> order;
  std::map<std::string, std::size_t> row_of;
  for (const auto& e : events_) {
    if (!row_of.contains(e.message)) {
      row_of[e.message] = order.size();
      order.push_back(e.message);
    }
  }
  std::vector<std::string> rows(order.size(), std::string(cols, ' '));

  auto col_of = [&](Duration t) -> std::int64_t { return floor_div(t - from, resolution); };
  auto paint = [&](std::size_t row, std::int64_t c0, std::int64_t c1, char ch) {
    const std::int64_t lo = std::max<std::int64_t>(c0, 0);
    const std::int64_t hi = std::min<std::int64_t>(c1, static_cast<std::int64_t>(cols) - 1);
    for (std::int64_t c = lo; c <= hi; ++c) {
      char& cell = rows[row][static_cast<std::size_t>(c)];
      // Do not let waiting dots overwrite stronger marks.
      if (ch == '.' && cell != ' ') continue;
      cell = ch;
    }
  };

  // Track per (message, instance) lifecycle to paint spans.
  struct Open {
    Duration release = Duration::zero();
    Duration tx_start = Duration::zero();
    bool transmitting = false;
  };
  std::map<std::pair<std::string, std::int64_t>, Open> open;
  for (const auto& e : events_) {
    const std::size_t row = row_of[e.message];
    const auto key = std::make_pair(e.message, e.instance);
    switch (e.type) {
      case TraceEventType::kRelease:
        open[key] = Open{e.time, e.time, false};
        break;
      case TraceEventType::kTxStart:
        if (auto it = open.find(key); it != open.end()) {
          paint(row, col_of(it->second.release), col_of(e.time) - 1, '.');
          it->second.tx_start = e.time;
          it->second.transmitting = true;
        }
        break;
      case TraceEventType::kTxEnd:
        if (auto it = open.find(key); it != open.end()) {
          paint(row, col_of(it->second.tx_start), col_of(e.time), '=');
          open.erase(it);
        }
        break;
      case TraceEventType::kError:
        if (auto it = open.find(key); it != open.end()) {
          paint(row, col_of(it->second.tx_start), col_of(e.time), '=');
          paint(row, col_of(e.time), col_of(e.time), '!');
          it->second.transmitting = false;
          it->second.tx_start = e.time;  // waiting resumes here
        }
        break;
      case TraceEventType::kRetransmit:
        break;
      case TraceEventType::kLoss:
        paint(row, col_of(e.time), col_of(e.time), 'X');
        open.erase(key);
        break;
    }
  }

  std::size_t name_w = 0;
  for (const auto& n : order) name_w = std::max(name_w, n.size());
  std::ostringstream os;
  os << "time: " << to_string(from) << " .. " << to_string(to) << ", 1 col = "
     << to_string(resolution) << "  (= tx, . queued, ! error, X loss)\n";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    os << order[r] << std::string(name_w - order[r].size() + 1, ' ') << '|' << rows[r] << "|\n";
  }
  return os.str();
}

}  // namespace symcan

#include "symcan/sim/ecu_simulator.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <queue>
#include <stdexcept>

namespace symcan {

const TaskStats* EcuSimResult::find(const std::string& name) const {
  for (const auto& t : tasks)
    if (t.name == name) return &t;
  return nullptr;
}

namespace {

/// One pending/running activation.
struct Instance {
  std::size_t task = 0;
  Duration release = Duration::zero();
  Duration remaining = Duration::zero();  ///< Execution left (incl. overhead).
  Duration executed = Duration::zero();   ///< Progress, for segment boundaries.
};

class EcuSimulation {
 public:
  EcuSimulation(const std::vector<Task>& tasks, const EcuSimConfig& cfg)
      : tasks_{tasks}, cfg_{cfg}, rng_{cfg.seed} {
    if (tasks.empty()) throw std::invalid_argument("simulate_ecu: no tasks");
    // Reuse EcuRta's validation rules by construction checks here.
    for (const auto& t : tasks_) {
      if (t.wcet <= Duration::zero() || t.wcet < t.bcet)
        throw std::invalid_argument("simulate_ecu: bad execution times for " + t.name);
    }
    stats_.resize(tasks_.size());
    pending_.resize(tasks_.size());
    for (std::size_t i = 0; i < tasks_.size(); ++i) stats_[i].name = tasks_[i].name;
  }

  EcuSimResult run() {
    // Prime first activations (random phase within one period when
    // randomizing; all at 0 for the deterministic critical-instant-like
    // stress).
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      const Duration phase = cfg_.randomize
                                 ? rng_.uniform_duration(Duration::zero(),
                                                         tasks_[i].activation.period())
                                 : Duration::zero();
      arrivals_.push({phase, i});
    }

    Duration now = Duration::zero();
    while (now < cfg_.duration) {
      // Admit all arrivals at `now`.
      while (!arrivals_.empty() && arrivals_.top().time <= now) {
        const Arrival a = arrivals_.top();
        arrivals_.pop();
        admit(a.task, a.time);
      }
      const Duration next_arrival =
          arrivals_.empty() ? cfg_.duration : min(arrivals_.top().time, cfg_.duration);

      std::optional<std::size_t> who = pick_runner();
      if (!who) {
        now = next_arrival;
        continue;
      }

      Instance& inst = *running_;
      const Task& t = tasks_[inst.task];
      // Run until completion, the next arrival (a preemption decision
      // point), or — for cooperative tasks with a higher-priority task
      // waiting — the next segment boundary.
      Duration until = min(now + inst.remaining, next_arrival);
      if (t.sched == SchedClass::kCooperativeTask) {
        const Duration seg = t.effective_segment();
        if (seg > Duration::zero()) {
          const Duration into = Duration::ns(inst.executed.count_ns() % seg.count_ns());
          const Duration boundary = now + (seg - into);
          if (boundary < until && higher_task_waiting(inst.task)) until = boundary;
        }
      }
      const Duration slice = until - now;
      inst.remaining -= slice;
      inst.executed += slice;
      busy_ += slice;
      now = until;

      if (inst.remaining <= Duration::zero()) complete(now);
    }

    EcuSimResult out;
    out.tasks = stats_;
    for (auto& s : out.tasks) {
      if (s.completions > 0)
        s.avg_response_us = response_sum_us_[s.name] / static_cast<double>(s.completions);
      else if (s.bcrt_observed.is_infinite())
        s.bcrt_observed = Duration::zero();
    }
    out.simulated = cfg_.duration;
    out.busy_time = busy_;
    return out;
  }

 private:
  struct Arrival {
    Duration time;
    std::size_t task;
    bool operator<(const Arrival& o) const { return time > o.time; }  // min-heap
  };

  void admit(std::size_t task, Duration release) {
    ++stats_[task].activations;
    Instance inst;
    inst.task = task;
    inst.release = release;
    const Task& t = tasks_[task];
    const Duration exec =
        cfg_.randomize ? rng_.uniform_duration(t.bcet, t.wcet) : t.wcet;
    inst.remaining = exec + t.os_overhead;
    pending_[task].push_back(inst);
    stats_[task].max_backlog = std::max<std::int64_t>(
        stats_[task].max_backlog,
        static_cast<std::int64_t>(pending_[task].size()) + (running_ && running_->task == task));

    // Chain the next activation.
    const Duration jit = cfg_.randomize
                             ? rng_.uniform_duration(Duration::zero(), t.activation.jitter())
                             : t.activation.jitter();
    const Duration nominal_next = release - last_jitter_[task] + t.activation.period();
    last_jitter_[task] = jit;
    // Strictly-later clamp: a bursty model (J >= P) may pull the next
    // activation before this one; 1 ns forward progress keeps the event
    // loop finite without changing the load meaningfully.
    arrivals_.push({max(nominal_next + jit, release + Duration::ns(1)), task});
  }

  /// True when a task (not ISR) with higher priority than `current` waits.
  bool higher_task_waiting(std::size_t current) const {
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      if (pending_[i].empty() || tasks_[i].sched == SchedClass::kInterrupt) continue;
      if (tasks_[i].priority < tasks_[current].priority) return true;
    }
    return false;
  }

  /// Select who runs now, applying preemption rules; maintains running_.
  std::optional<std::size_t> pick_runner() {
    // Highest-priority ready ISR, if any.
    std::optional<std::size_t> best_isr;
    std::optional<std::size_t> best_task;
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      if (pending_[i].empty()) continue;
      if (tasks_[i].sched == SchedClass::kInterrupt) {
        if (!best_isr || tasks_[i].priority < tasks_[*best_isr].priority) best_isr = i;
      } else {
        if (!best_task || tasks_[i].priority < tasks_[*best_task].priority) best_task = i;
      }
    }

    if (running_) {
      const Task& cur = tasks_[running_->task];
      const bool cur_isr = cur.sched == SchedClass::kInterrupt;
      bool preempt = false;
      if (best_isr && (!cur_isr || tasks_[*best_isr].priority < cur.priority)) {
        preempt = true;
      } else if (!cur_isr && best_task && tasks_[*best_task].priority < cur.priority) {
        // Task-level preemption: immediate for preemptive victims, only
        // at segment boundaries for cooperative ones.
        if (cur.sched == SchedClass::kPreemptiveTask) {
          preempt = true;
        } else {
          const Duration seg = cur.effective_segment();
          const bool at_boundary =
              seg > Duration::zero() && running_->executed.count_ns() % seg.count_ns() == 0;
          preempt = at_boundary;
        }
      }
      if (!preempt) return running_->task;
      // Suspend: back to its queue front.
      pending_[running_->task].push_front(*running_);
      running_.reset();
    }

    const std::optional<std::size_t> chosen = best_isr ? best_isr : best_task;
    if (!chosen) return std::nullopt;
    running_ = pending_[*chosen].front();
    pending_[*chosen].pop_front();
    return chosen;
  }

  void complete(Duration now) {
    const Instance inst = *running_;
    running_.reset();
    auto& s = stats_[inst.task];
    ++s.completions;
    const Duration r = now - inst.release;
    s.wcrt_observed = max(s.wcrt_observed, r);
    s.bcrt_observed = min(s.bcrt_observed, r);
    response_sum_us_[s.name] += r.as_us();
  }

  const std::vector<Task>& tasks_;
  const EcuSimConfig& cfg_;
  Rng rng_;

  std::priority_queue<Arrival> arrivals_;
  std::vector<std::deque<Instance>> pending_;  ///< FIFO per task (multi-activation).
  std::optional<Instance> running_;
  std::map<std::size_t, Duration> last_jitter_;
  std::map<std::string, double> response_sum_us_;
  std::vector<TaskStats> stats_;
  Duration busy_ = Duration::zero();
};

}  // namespace

EcuSimResult simulate_ecu(const std::vector<Task>& tasks, const EcuSimConfig& cfg) {
  if (cfg.duration <= Duration::zero())
    throw std::invalid_argument("simulate_ecu: duration must be > 0");
  EcuSimulation sim{tasks, cfg};
  return sim.run();
}

}  // namespace symcan

#pragma once

// Simulation trace recording and ASCII rendering (paper Figure 2:
// "Message Jitters, Burst, and Errors Result in Complex Communication
// Patterns").

#include <cstdint>
#include <string>
#include <vector>

#include "symcan/util/time.hpp"

namespace symcan {

enum class TraceEventType : std::uint8_t {
  kRelease,     ///< Message instance queued at its sender.
  kTxStart,     ///< Frame won arbitration, transmission begins.
  kTxEnd,       ///< Frame completed successfully.
  kError,       ///< Bus error corrupted the frame in transmission.
  kRetransmit,  ///< Corrupted frame re-entered arbitration.
  kLoss,        ///< Instance overwritten in the sender's buffer.
};

const char* to_string(TraceEventType t);

struct TraceEvent {
  Duration time = Duration::zero();
  TraceEventType type = TraceEventType::kRelease;
  std::string message;    ///< Message name.
  std::int64_t instance = 0;  ///< Activation index of that message.
};

/// Append-only event log with a textual Gantt renderer.
class Trace {
 public:
  void record(Duration time, TraceEventType type, std::string message, std::int64_t instance);

  const std::vector<TraceEvent>& events() const { return events_; }
  /// Drops all events but retains the allocated capacity, so a Trace
  /// reused across simulation runs stops allocating once it has seen the
  /// largest run (std::vector::clear() never shrinks).
  void clear() { events_.clear(); }

  /// Plain chronological listing.
  std::string to_text() const;

  /// ASCII Gantt chart: one row per message, one column per `resolution`
  /// of simulated time, covering [from, to). Transmission is '=', error
  /// recovery '!', queued-but-waiting '.', loss 'X', idle ' '.
  std::string to_gantt(Duration from, Duration to, Duration resolution) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace symcan

#include "symcan/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace symcan::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_{std::move(upper_bounds)},
      buckets_(bounds_.size() + 1),
      min_{std::numeric_limits<double>::infinity()},
      max_{-std::numeric_limits<double>::infinity()} {
  if (bounds_.empty()) throw std::invalid_argument("Histogram: need at least one bucket bound");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end())
    throw std::invalid_argument("Histogram: bounds must be strictly increasing");
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto i = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, v);
  detail::atomic_min(min_, v);
  detail::atomic_max(max_, v);
}

double Histogram::observed_min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::observed_max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
  const std::int64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double lo = observed_min();
  const double hi = observed_max();
  std::int64_t rank = static_cast<std::int64_t>(std::ceil(q * static_cast<double>(n)));
  if (rank < 1) rank = 1;

  std::int64_t cum = 0;
  double lower = 0.0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    const std::int64_t c = bucket_count(i);
    if (c > 0 && cum + c >= rank) {
      const double upper = bounds_[i];
      const double pos = static_cast<double>(rank - cum) / static_cast<double>(c);
      return std::clamp(lower + pos * (upper - lower), lo, hi);
    }
    cum += c;
    lower = bounds_[i];
  }
  // Rank falls into the overflow bucket: all we know is v > bounds.back().
  // Report the last finite bucket edge (the documented contract, matching
  // WindowedHistogram::snapshot): returning the observed max would
  // surface +inf here whenever an infinite sample was recorded, poisoning
  // JSON consumers — the Prometheus export maps non-finite to 0, and the
  // two surfaces must stay consistent.
  return bounds_.back();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

void Series::append(Sample s) {
  std::lock_guard<std::mutex> lk{m_};
  samples_.push_back(std::move(s));
}

std::vector<Series::Sample> Series::samples() const {
  std::lock_guard<std::mutex> lk{m_};
  return samples_;
}

void Series::reset() {
  std::lock_guard<std::mutex> lk{m_};
  samples_.clear();
}

std::vector<double> MetricsRegistry::default_latency_bounds_us() {
  return {1,     2,     5,     10,    20,    50,    100,    200,    500,
          1'000, 2'000, 5'000, 10'000, 20'000, 50'000, 100'000, 200'000, 500'000, 1'000'000};
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk{m_};
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk{m_};
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return histogram(name, default_latency_bounds_us());
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lk{m_};
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

Series& MetricsRegistry::series(const std::string& name) {
  std::lock_guard<std::mutex> lk{m_};
  auto& slot = series_[name];
  if (!slot) slot = std::make_unique<Series>();
  return *slot;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk{m_};
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, s] : series_) s->reset();
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk{m_};
  RegistrySnapshot out;
  for (const auto& [name, c] : counters_) out.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : gauges_) out.gauges.emplace_back(name, g->value());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->count();
    hs.sum = h->sum();
    hs.min = h->observed_min();
    hs.max = h->observed_max();
    hs.p50 = h->quantile(0.50);
    hs.p95 = h->quantile(0.95);
    hs.p99 = h->quantile(0.99);
    for (std::size_t i = 0; i < h->bounds().size(); ++i)
      hs.buckets.emplace_back(h->bounds()[i], h->bucket_count(i));
    hs.overflow = h->bucket_count(h->bounds().size());
    out.histograms.push_back(std::move(hs));
  }
  for (const auto& [name, s] : series_) out.series.emplace_back(name, s->samples());
  return out;
}

}  // namespace symcan::obs

#pragma once

// symcan::obs tracing: scoped spans collected into per-thread event
// buffers and exported in Chrome `chrome://tracing` format (export.hpp).
//
// Threading model: each recording thread appends to its own buffer, so
// recording never contends on a lock (the tracer mutex is taken once per
// thread to register the buffer, and by collect()/reset()). collect()
// must not race recording — the CLI and benches export after all worker
// fan-outs have joined, which ParallelExecutor::run guarantees.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace symcan::obs {

struct TraceEvent {
  std::string name;
  std::int64_t start_us = 0;  ///< Microseconds since the tracer epoch.
  std::int64_t dur_us = 0;    ///< Span duration; 0 allowed, -1 = instant event.
  int tid = 0;                ///< Small sequential id per recording thread.
  std::uint64_t flow = 0;     ///< Trace-context id (0 = none); see below.
};

/// Trace context: a thread-local flow id stamped onto every event the
/// thread records, so the spans of one serve request form one tree in
/// the exported trace even when its stages hop across ParallelExecutor
/// workers. Scoped installation (save old, set, restore) lives in
/// obs::FlowScope; these are the raw accessors it and the executor use.
std::uint64_t current_flow();
void set_current_flow(std::uint64_t flow);

/// Label the calling thread in exported traces (chrome://tracing
/// `thread_name` metadata). Copies into a fixed thread-local buffer —
/// never allocates — and applies to buffers the thread registers from
/// now on, including after a tracer reset.
void set_thread_name(const char* name);

class Tracer {
 public:
  Tracer();

  /// Microseconds since the tracer epoch (construction or last reset).
  std::int64_t now_us() const;

  void record_span(const char* name, std::int64_t start_us, std::int64_t end_us);
  void record_instant(const char* name);

  /// Merge every thread buffer, sorted by start time. Events dropped by
  /// the per-buffer cap (guards unbounded growth on very long runs) are
  /// reported via dropped().
  std::vector<TraceEvent> collect() const;
  std::int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// (tid, name) for every registered buffer whose thread had a name at
  /// registration time; consumed by the chrome exporter's metadata pass.
  std::vector<std::pair<int, std::string>> thread_names() const;

  /// Discard all buffers and restart the epoch clock.
  void reset();

 private:
  struct Buffer {
    int tid = 0;
    std::string thread_name;  ///< Copied from set_thread_name at creation.
    std::vector<TraceEvent> events;
  };

  Buffer& local_buffer();

  static constexpr std::size_t kMaxEventsPerBuffer = 1 << 22;  // ~4M spans

  mutable std::mutex m_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
  int next_tid_ = 0;
  std::atomic<std::uint64_t> epoch_;
  std::chrono::steady_clock::time_point epoch_time_;
  std::atomic<std::int64_t> dropped_{0};
};

}  // namespace symcan::obs

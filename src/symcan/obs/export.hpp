#pragma once

// Exporters for the obs subsystem: metrics → JSON, trace → Chrome
// `chrome://tracing` / Perfetto JSON (load via chrome://tracing "Load" or
// https://ui.perfetto.dev).

#include <string>

#include "symcan/obs/metrics.hpp"
#include "symcan/obs/trace.hpp"

namespace symcan::obs {

/// JSON-escape a string body (no surrounding quotes).
std::string json_escape(const std::string& s);

/// Finite numbers print via %.17g round-trip; NaN/Inf degrade to null.
std::string json_number(double v);

/// {"counters":{...},"gauges":{...},"histograms":[...],"series":{...}}
std::string metrics_to_json(const MetricsRegistry& registry);

/// {"traceEvents":[...],"displayTimeUnit":"ms"} — spans as "ph":"X"
/// complete events, instants as "ph":"i".
std::string trace_to_chrome_json(const Tracer& tracer);

/// Throws std::runtime_error on I/O failure.
void write_file(const std::string& path, const std::string& contents);

}  // namespace symcan::obs

#pragma once

// symcan::obs rolling windows: time-windowed rates, latency quantiles and
// SLO error budgets over a fixed ring of bucketed sub-windows.
//
// The lifetime metrics in metrics.hpp answer "how has this process done
// since it started"; these answer "how is it doing NOW". A window is a
// ring of `bucket_count` sub-windows, each `bucket_width_ns` wide, tagged
// with the absolute bucket index (`now_ns / bucket_width_ns`) it last
// held. Recording CASes the slot's epoch tag forward when time has moved
// past it — O(1) rotation, no timer thread — and a snapshot merges
// exactly the slots whose tag falls inside the window ending now. Stale
// slots (idle period, clock jump forward) are excluded by their tag, so
// reuse after idle and jumps need no special casing.
//
// Concurrency contract (same as metrics.hpp): recording is wait-free
// relaxed atomics from any thread; no allocation after construction; a
// sample racing a slot rotation may land in a slot that the rotation
// winner zeroes, losing that sample — windowed values are statistical
// aggregates, never exact accounting, which the exact lifetime counters
// remain. Callers pass `now_ns` explicitly (monotonic, from any epoch),
// so tests can drive rotation deterministically.

#include <atomic>
#include <cstdint>
#include <vector>

namespace symcan::obs {

struct WindowConfig {
  std::int64_t bucket_width_ns = 5'000'000'000;  ///< 5 s sub-windows...
  std::size_t bucket_count = 12;                 ///< ...over a 60 s window.

  std::int64_t window_ns() const {
    return bucket_width_ns * static_cast<std::int64_t>(bucket_count);
  }
};

/// Merged view of the sub-windows covering (now - window, now].
struct WindowStats {
  std::int64_t count = 0;
  double sum = 0;
  double mean = 0;          ///< 0 when empty.
  double rate_per_sec = 0;  ///< count / window length (fixed denominator).
  double p50 = 0;           ///< Bucket-interpolated, like Histogram::quantile,
  double p95 = 0;           ///< but without an observed min/max clamp (the
  double p99 = 0;           ///< window keeps no per-slot extrema).
  std::int64_t window_ns = 0;
};

/// Windowed event count (no value distribution).
class WindowedCounter {
 public:
  explicit WindowedCounter(WindowConfig cfg = {});

  void add(std::int64_t now_ns, std::int64_t delta = 1);

  std::int64_t window_count(std::int64_t now_ns) const;
  double window_rate(std::int64_t now_ns) const;

  const WindowConfig& config() const { return cfg_; }

 private:
  WindowConfig cfg_;
  /// epochs_[s] holds the absolute bucket index the slot's count belongs
  /// to; -1 = never written.
  std::vector<std::atomic<std::int64_t>> epochs_;
  std::vector<std::atomic<std::int64_t>> counts_;
};

/// Windowed latency/value distribution: count, sum and fixed `le`
/// buckets per sub-window, merged into quantiles at snapshot time.
class WindowedHistogram {
 public:
  /// Bounds must be strictly increasing (same contract as Histogram);
  /// one implicit overflow bucket catches v > bounds.back().
  WindowedHistogram(WindowConfig cfg, std::vector<double> upper_bounds);

  void record(std::int64_t now_ns, double v);

  WindowStats snapshot(std::int64_t now_ns) const;

  const WindowConfig& config() const { return cfg_; }
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  /// Rotate `slot` to absolute bucket `idx` if it is stale; returns false
  /// when the sample is older than what the slot currently holds (clock
  /// skew between recording threads) and should be dropped.
  bool claim(std::size_t slot, std::int64_t idx);

  WindowConfig cfg_;
  std::vector<double> bounds_;
  std::size_t stride_;  ///< bounds_.size() + 1 (overflow bucket).
  std::vector<std::atomic<std::int64_t>> epochs_;
  std::vector<std::atomic<std::int64_t>> counts_;
  std::vector<std::atomic<double>> sums_;
  /// bucket_count x stride_, row-major per slot.
  std::vector<std::atomic<std::int64_t>> buckets_;
};

struct SloConfig {
  std::int64_t target_ns = 0;  ///< Latency target; <= target meets the SLO.
  double objective = 0.99;     ///< Fraction of requests that must meet it.
  WindowConfig window;
};

struct SloStats {
  std::int64_t target_ns = 0;
  double objective = 0;
  std::int64_t total = 0;         ///< Lifetime requests recorded.
  std::int64_t over_target = 0;   ///< Lifetime requests over target.
  std::int64_t window_total = 0;  ///< Same pair, window-scoped.
  std::int64_t window_over = 0;
  /// (windowed miss fraction) / (allowed miss fraction): 1.0 burns the
  /// error budget exactly at the sustainable pace, >1 exhausts it early.
  double burn_rate = 0;
  /// Lifetime miss fraction / allowed miss fraction, >= 0.
  double budget_used = 0;
};

/// Per-kind latency SLO: lifetime hit/miss counters plus a windowed pair
/// giving the instantaneous error-budget burn rate.
class SloTracker {
 public:
  explicit SloTracker(SloConfig cfg);

  void record(std::int64_t now_ns, std::int64_t latency_ns);

  SloStats snapshot(std::int64_t now_ns) const;

  const SloConfig& config() const { return cfg_; }

 private:
  SloConfig cfg_;
  std::atomic<std::int64_t> total_{0};
  std::atomic<std::int64_t> over_{0};
  WindowedCounter window_total_;
  WindowedCounter window_over_;
};

}  // namespace symcan::obs

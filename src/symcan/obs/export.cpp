#include "symcan/obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace symcan::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

namespace {

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  out += json_escape(s);
  out += '"';
}

}  // namespace

std::string metrics_to_json(const MetricsRegistry& registry) {
  const RegistrySnapshot snap = registry.snapshot();
  std::string out;
  out += "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_quoted(out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_quoted(out, name);
    out += ": " + json_number(value);
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"histograms\": [";
  first = true;
  for (const auto& h : snap.histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"name\": ";
    append_quoted(out, h.name);
    out += ", \"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + json_number(h.sum);
    out += ", \"min\": " + json_number(h.min);
    out += ", \"max\": " + json_number(h.max);
    out += ", \"p50\": " + json_number(h.p50);
    out += ", \"p95\": " + json_number(h.p95);
    out += ", \"p99\": " + json_number(h.p99);
    out += ", \"buckets\": [";
    bool bfirst = true;
    for (const auto& [le, count] : h.buckets) {
      if (!bfirst) out += ", ";
      bfirst = false;
      out += "{\"le\": " + json_number(le) + ", \"count\": " + std::to_string(count) + "}";
    }
    out += "], \"overflow\": " + std::to_string(h.overflow) + "}";
  }
  out += first ? "]" : "\n  ]";

  out += ",\n  \"series\": {";
  first = true;
  for (const auto& [name, samples] : snap.series) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_quoted(out, name);
    out += ": [";
    bool sfirst = true;
    for (const auto& sample : samples) {
      out += sfirst ? "\n      {" : ",\n      {";
      sfirst = false;
      bool ffirst = true;
      for (const auto& [key, value] : sample) {
        if (!ffirst) out += ", ";
        ffirst = false;
        append_quoted(out, key);
        out += ": " + json_number(value);
      }
      out += "}";
    }
    out += sfirst ? "]" : "\n    ]";
  }
  out += first ? "}" : "\n  }";
  out += "\n}\n";
  return out;
}

std::string trace_to_chrome_json(const Tracer& tracer) {
  const std::vector<TraceEvent> events = tracer.collect();
  std::string out;
  out += "{\"traceEvents\": [";
  bool first = true;
  // Metadata pass: name the process and every thread that registered a
  // name, so chrome://tracing shows "symcan-worker-3" instead of a bare
  // tid.
  out += "\n  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1"
         ", \"args\": {\"name\": \"symcan\"}}";
  first = false;
  for (const auto& [tid, name] : tracer.thread_names()) {
    out += ",\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": " +
           std::to_string(tid) + ", \"args\": {\"name\": ";
    append_quoted(out, name);
    out += "}}";
  }
  for (const TraceEvent& e : events) {
    out += first ? "\n  " : ",\n  ";
    first = false;
    out += "{\"name\": ";
    append_quoted(out, e.name);
    out += ", \"cat\": \"symcan\"";
    if (e.dur_us < 0) {
      out += ", \"ph\": \"i\", \"s\": \"t\"";
    } else {
      out += ", \"ph\": \"X\", \"dur\": " + std::to_string(e.dur_us);
    }
    out += ", \"ts\": " + std::to_string(e.start_us);
    out += ", \"pid\": 1, \"tid\": " + std::to_string(e.tid);
    if (e.flow != 0) out += ", \"args\": {\"flow\": " + std::to_string(e.flow) + "}";
    out += "}";
  }
  out += first ? "]" : "\n]";
  out += ", \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream f{path, std::ios::binary | std::ios::trunc};
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  f.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  f.flush();
  if (!f) throw std::runtime_error("write failed: " + path);
}

}  // namespace symcan::obs

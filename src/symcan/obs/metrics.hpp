#pragma once

// symcan::obs metrics: a lock-cheap registry of named counters, gauges,
// fixed-bucket histograms, and sample series.
//
// Design contract (see DESIGN.md "Observability"):
//  * All recording operations on an obtained handle are wait-free relaxed
//    atomics — safe from any thread, including ParallelExecutor workers
//    inside an RTA fan-out.
//  * The registry mutex is taken only to register/look up a metric by
//    name and to take snapshots, never per recorded value on a handle.
//  * Handles stay valid for the registry's lifetime; reset() zeroes the
//    recorded values but never invalidates a handle, so call sites may
//    cache `Counter&`/`Histogram&` across runs.
//  * Whether recording happens at all is gated one level up by
//    obs::enabled() (obs.hpp); nothing here checks the flag.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace symcan::obs {

namespace detail {

/// CAS add/min/max for atomic<double>; relaxed ordering is enough because
/// metrics are statistical aggregates, not synchronization.
inline void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

inline void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

inline void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Monotonic event count.
class Counter {
 public:
  void add(std::int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-value-wins instantaneous reading.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with cumulative-`le` semantics: bucket i counts
/// observations v with bounds[i-1] < v <= bounds[i]; one implicit
/// overflow bucket catches v > bounds.back(). Quantiles interpolate
/// linearly inside the selected bucket and are clamped to the observed
/// [min, max], so a quantile query at a bucket boundary with only
/// boundary-valued observations returns the boundary exactly. A rank
/// that falls into the overflow bucket reports the last finite bucket
/// edge — never the observed max, which may be +inf and would poison
/// JSON consumers (the Prometheus export maps non-finite to 0; both
/// surfaces stay finite and consistent).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest observed value; 0 when empty.
  double observed_min() const;
  double observed_max() const;
  /// q in [0, 1]; 0 when empty.
  double quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// i in [0, bounds().size()]; the last index is the overflow bucket.
  std::int64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  void reset();

 private:
  std::vector<double> bounds_;                       ///< Strictly increasing.
  std::vector<std::atomic<std::int64_t>> buckets_;   ///< bounds_.size() + 1.
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Ordered per-iteration snapshots (one sample per GA generation, sweep
/// point, engine iteration, ...). Appends take the series mutex — they
/// happen at iteration granularity, never inside a hot loop.
class Series {
 public:
  using Sample = std::vector<std::pair<std::string, double>>;

  void append(Sample s);
  std::vector<Sample> samples() const;
  void reset();

 private:
  mutable std::mutex m_;
  std::vector<Sample> samples_;
};

/// Snapshot structs consumed by the exporters (export.hpp).
struct HistogramSnapshot {
  std::string name;
  std::int64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  std::vector<std::pair<double, std::int64_t>> buckets;  ///< (le, count).
  std::int64_t overflow = 0;
};

struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
  std::vector<std::pair<std::string, std::vector<Series::Sample>>> series;
};

class MetricsRegistry {
 public:
  /// Registered on first use; subsequent calls return the same handle.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Default bounds suit microsecond-scale latencies (1 us .. 1 s).
  Histogram& histogram(const std::string& name);
  /// Bounds are fixed at first registration; later calls with different
  /// bounds return the existing histogram unchanged.
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds);
  Series& series(const std::string& name);

  /// Zero every value and clear every series. Handles remain valid.
  void reset();

  RegistrySnapshot snapshot() const;

  static std::vector<double> default_latency_bounds_us();

 private:
  mutable std::mutex m_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<Series>> series_;
};

}  // namespace symcan::obs

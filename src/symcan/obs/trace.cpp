#include "symcan/obs/trace.hpp"

#include <algorithm>
#include <cstring>

namespace symcan::obs {

namespace {

/// Thread-local trace context. Fixed storage so installing a flow or a
/// thread name never allocates (the obs overhead contract).
thread_local std::uint64_t g_current_flow = 0;
thread_local char g_thread_name[64] = {};

/// Epoch ids are unique across all Tracer instances and resets, so a
/// thread-local buffer pointer from a previous epoch (or another tracer)
/// is never mistaken for a current one.
std::atomic<std::uint64_t> g_next_epoch{1};

struct Tls {
  const void* owner = nullptr;
  std::uint64_t epoch = 0;
  void* buffer = nullptr;
};

thread_local Tls tls;

}  // namespace

std::uint64_t current_flow() { return g_current_flow; }

void set_current_flow(std::uint64_t flow) { g_current_flow = flow; }

void set_thread_name(const char* name) {
  std::strncpy(g_thread_name, name, sizeof g_thread_name - 1);
  g_thread_name[sizeof g_thread_name - 1] = '\0';
}

Tracer::Tracer()
    : epoch_{g_next_epoch.fetch_add(1, std::memory_order_relaxed)},
      epoch_time_{std::chrono::steady_clock::now()} {}

std::int64_t Tracer::now_us() const {
  const auto d = std::chrono::steady_clock::now() - epoch_time_;
  return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
}

Tracer::Buffer& Tracer::local_buffer() {
  const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (tls.owner != this || tls.epoch != epoch) {
    std::lock_guard<std::mutex> lk{m_};
    buffers_.push_back(std::make_unique<Buffer>());
    buffers_.back()->tid = next_tid_++;
    buffers_.back()->thread_name = g_thread_name;
    tls.owner = this;
    tls.epoch = epoch_.load(std::memory_order_relaxed);
    tls.buffer = buffers_.back().get();
  }
  return *static_cast<Buffer*>(tls.buffer);
}

void Tracer::record_span(const char* name, std::int64_t start_us, std::int64_t end_us) {
  Buffer& b = local_buffer();
  if (b.events.size() >= kMaxEventsPerBuffer) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  b.events.push_back(TraceEvent{name, start_us, end_us - start_us, b.tid, g_current_flow});
}

void Tracer::record_instant(const char* name) {
  Buffer& b = local_buffer();
  if (b.events.size() >= kMaxEventsPerBuffer) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  b.events.push_back(TraceEvent{name, now_us(), -1, b.tid, g_current_flow});
}

std::vector<TraceEvent> Tracer::collect() const {
  std::lock_guard<std::mutex> lk{m_};
  std::vector<TraceEvent> out;
  std::size_t total = 0;
  for (const auto& b : buffers_) total += b->events.size();
  out.reserve(total);
  for (const auto& b : buffers_) out.insert(out.end(), b->events.begin(), b->events.end());
  std::stable_sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.start_us != b.start_us) return a.start_us < b.start_us;
    return a.tid < b.tid;
  });
  return out;
}

std::vector<std::pair<int, std::string>> Tracer::thread_names() const {
  std::lock_guard<std::mutex> lk{m_};
  std::vector<std::pair<int, std::string>> out;
  for (const auto& b : buffers_)
    if (!b->thread_name.empty()) out.emplace_back(b->tid, b->thread_name);
  return out;
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lk{m_};
  buffers_.clear();
  next_tid_ = 0;
  dropped_.store(0, std::memory_order_relaxed);
  epoch_time_ = std::chrono::steady_clock::now();
  epoch_.store(g_next_epoch.fetch_add(1, std::memory_order_relaxed), std::memory_order_release);
}

}  // namespace symcan::obs

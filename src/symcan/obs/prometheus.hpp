#pragma once

// Prometheus text exposition (version 0.0.4) for the metrics registry,
// suitable for a node_exporter textfile collector or any file-based
// scrape: counters become `<name>_total`, gauges stay gauges, histograms
// expand to the `_bucket{le=...}` / `_sum` / `_count` family.
//
// Name hygiene: registry names use dots ("serve.requests"); Prometheus
// names may only use [a-zA-Z0-9_:], so every invalid rune maps to '_',
// the result is prefixed with "symcan_", and families that collide after
// sanitization keep the first spelling only (the linter in CI rejects
// duplicate names, so collisions must not reach the wire). Non-finite
// values degrade to 0 — the exposition format has no NaN/Inf and the CI
// lint rejects them.

#include <string>

#include "symcan/obs/metrics.hpp"

namespace symcan::obs {

/// Sanitize one registry metric name into a Prometheus family name
/// (prefixed, charset-mapped, leading-digit guarded).
std::string prometheus_name(const std::string& name);

/// Render the full exposition: one `# HELP` + `# TYPE` header per family
/// followed by its samples, families in registry (sorted-name) order.
std::string metrics_to_prometheus(const MetricsRegistry& registry);

/// Same, from an already-taken snapshot (serve uses one snapshot for
/// both the JSON and Prometheus surfaces).
std::string snapshot_to_prometheus(const RegistrySnapshot& snap);

}  // namespace symcan::obs

#include "symcan/obs/obs.hpp"

namespace symcan::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) { detail::g_enabled.store(on, std::memory_order_relaxed); }

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

Tracer& tracer() {
  static Tracer t;
  return t;
}

void reset() {
  metrics().reset();
  tracer().reset();
}

}  // namespace symcan::obs

#include "symcan/obs/prometheus.hpp"

#include <cmath>
#include <cstdio>
#include <set>

namespace symcan::obs {

namespace {

std::string prom_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void family_header(std::string& out, const std::string& name, const char* type) {
  out += "# HELP " + name + " symcan metric " + name + "\n";
  out += "# TYPE " + name + " " + type + "\n";
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out = "symcan_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string snapshot_to_prometheus(const RegistrySnapshot& snap) {
  std::string out;
  // Families that collide after sanitization keep the first spelling;
  // duplicate family names are invalid exposition and CI lints for them.
  std::set<std::string> emitted;
  const auto fresh = [&](const std::string& name) { return emitted.insert(name).second; };

  for (const auto& [name, value] : snap.counters) {
    const std::string p = prometheus_name(name) + "_total";
    if (!fresh(p)) continue;
    family_header(out, p, "counter");
    out += p + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string p = prometheus_name(name);
    if (!fresh(p)) continue;
    family_header(out, p, "gauge");
    out += p + " " + prom_number(value) + "\n";
  }
  for (const auto& h : snap.histograms) {
    const std::string p = prometheus_name(h.name);
    if (!fresh(p)) continue;
    family_header(out, p, "histogram");
    std::int64_t cum = 0;
    for (const auto& [le, count] : h.buckets) {
      cum += count;
      out += p + "_bucket{le=\"" + prom_number(le) + "\"} " + std::to_string(cum) + "\n";
    }
    out += p + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += p + "_sum " + prom_number(h.sum) + "\n";
    out += p + "_count " + std::to_string(h.count) + "\n";
  }
  // Series are per-iteration sample logs, not scrapeable families; the
  // JSON exporter carries them.
  return out;
}

std::string metrics_to_prometheus(const MetricsRegistry& registry) {
  return snapshot_to_prometheus(registry.snapshot());
}

}  // namespace symcan::obs

#include "symcan/obs/window.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "symcan/obs/metrics.hpp"

namespace symcan::obs {

namespace {

void check_window(const WindowConfig& cfg) {
  if (cfg.bucket_width_ns <= 0)
    throw std::invalid_argument("window bucket width must be positive");
  if (cfg.bucket_count == 0) throw std::invalid_argument("window needs at least one bucket");
}

/// A slot participates in the window ending at `cur` when its tag lies in
/// (cur - bucket_count, cur]; anything older is idle-time or pre-jump
/// residue.
bool in_window(std::int64_t epoch, std::int64_t cur, std::size_t bucket_count) {
  return epoch >= 0 && epoch <= cur && cur - epoch < static_cast<std::int64_t>(bucket_count);
}

/// Rotate-or-drop on the epoch tag shared by both windowed types. Returns
/// false when the sample's bucket is older than the slot's current tag.
bool claim_slot(std::atomic<std::int64_t>& epoch_slot, std::int64_t idx, bool& rotated) {
  rotated = false;
  std::int64_t cur = epoch_slot.load(std::memory_order_relaxed);
  while (cur != idx) {
    if (cur > idx) return false;  // A newer occupant owns the slot.
    if (epoch_slot.compare_exchange_weak(cur, idx, std::memory_order_relaxed)) {
      rotated = true;
      return true;
    }
  }
  return true;
}

}  // namespace

WindowedCounter::WindowedCounter(WindowConfig cfg)
    : cfg_{cfg} {
  check_window(cfg_);
  epochs_ = std::vector<std::atomic<std::int64_t>>(cfg_.bucket_count);
  counts_ = std::vector<std::atomic<std::int64_t>>(cfg_.bucket_count);
  for (auto& e : epochs_) e.store(-1, std::memory_order_relaxed);
}

void WindowedCounter::add(std::int64_t now_ns, std::int64_t delta) {
  const std::int64_t idx = now_ns / cfg_.bucket_width_ns;
  const auto slot = static_cast<std::size_t>(idx % static_cast<std::int64_t>(cfg_.bucket_count));
  bool rotated = false;
  if (!claim_slot(epochs_[slot], idx, rotated)) return;
  if (rotated) counts_[slot].store(0, std::memory_order_relaxed);
  counts_[slot].fetch_add(delta, std::memory_order_relaxed);
}

std::int64_t WindowedCounter::window_count(std::int64_t now_ns) const {
  const std::int64_t cur = now_ns / cfg_.bucket_width_ns;
  std::int64_t total = 0;
  for (std::size_t s = 0; s < cfg_.bucket_count; ++s) {
    if (in_window(epochs_[s].load(std::memory_order_relaxed), cur, cfg_.bucket_count))
      total += counts_[s].load(std::memory_order_relaxed);
  }
  return total;
}

double WindowedCounter::window_rate(std::int64_t now_ns) const {
  return static_cast<double>(window_count(now_ns)) /
         (static_cast<double>(cfg_.window_ns()) / 1e9);
}

WindowedHistogram::WindowedHistogram(WindowConfig cfg, std::vector<double> upper_bounds)
    : cfg_{cfg}, bounds_{std::move(upper_bounds)}, stride_{bounds_.size() + 1} {
  check_window(cfg_);
  if (bounds_.empty())
    throw std::invalid_argument("WindowedHistogram: need at least one bucket bound");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end())
    throw std::invalid_argument("WindowedHistogram: bounds must be strictly increasing");
  epochs_ = std::vector<std::atomic<std::int64_t>>(cfg_.bucket_count);
  counts_ = std::vector<std::atomic<std::int64_t>>(cfg_.bucket_count);
  sums_ = std::vector<std::atomic<double>>(cfg_.bucket_count);
  buckets_ = std::vector<std::atomic<std::int64_t>>(cfg_.bucket_count * stride_);
  for (auto& e : epochs_) e.store(-1, std::memory_order_relaxed);
}

bool WindowedHistogram::claim(std::size_t slot, std::int64_t idx) {
  bool rotated = false;
  if (!claim_slot(epochs_[slot], idx, rotated)) return false;
  if (rotated) {
    counts_[slot].store(0, std::memory_order_relaxed);
    sums_[slot].store(0.0, std::memory_order_relaxed);
    for (std::size_t b = 0; b < stride_; ++b)
      buckets_[slot * stride_ + b].store(0, std::memory_order_relaxed);
  }
  return true;
}

void WindowedHistogram::record(std::int64_t now_ns, double v) {
  const std::int64_t idx = now_ns / cfg_.bucket_width_ns;
  const auto slot = static_cast<std::size_t>(idx % static_cast<std::int64_t>(cfg_.bucket_count));
  if (!claim(slot, idx)) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto b = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[slot * stride_ + b].fetch_add(1, std::memory_order_relaxed);
  counts_[slot].fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sums_[slot], v);
}

WindowStats WindowedHistogram::snapshot(std::int64_t now_ns) const {
  const std::int64_t cur = now_ns / cfg_.bucket_width_ns;
  WindowStats out;
  out.window_ns = cfg_.window_ns();
  std::vector<std::int64_t> merged(stride_, 0);
  for (std::size_t s = 0; s < cfg_.bucket_count; ++s) {
    if (!in_window(epochs_[s].load(std::memory_order_relaxed), cur, cfg_.bucket_count)) continue;
    out.count += counts_[s].load(std::memory_order_relaxed);
    out.sum += sums_[s].load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < stride_; ++b)
      merged[b] += buckets_[s * stride_ + b].load(std::memory_order_relaxed);
  }
  out.rate_per_sec = static_cast<double>(out.count) / (static_cast<double>(out.window_ns) / 1e9);
  if (out.count == 0) return out;
  out.mean = out.sum / static_cast<double>(out.count);

  const auto quantile = [&](double q) {
    std::int64_t rank = static_cast<std::int64_t>(std::ceil(q * static_cast<double>(out.count)));
    if (rank < 1) rank = 1;
    std::int64_t cum = 0;
    double lower = 0.0;
    for (std::size_t b = 0; b < bounds_.size(); ++b) {
      const std::int64_t c = merged[b];
      if (c > 0 && cum + c >= rank) {
        const double pos = static_cast<double>(rank - cum) / static_cast<double>(c);
        return lower + pos * (bounds_[b] - lower);
      }
      cum += c;
      lower = bounds_[b];
    }
    // Overflow bucket: all we know is v > bounds.back().
    return bounds_.back();
  };
  out.p50 = quantile(0.50);
  out.p95 = quantile(0.95);
  out.p99 = quantile(0.99);
  return out;
}

SloTracker::SloTracker(SloConfig cfg)
    : cfg_{cfg}, window_total_{cfg.window}, window_over_{cfg.window} {
  if (cfg_.target_ns <= 0) throw std::invalid_argument("SLO target must be positive");
  if (!(cfg_.objective > 0.0) || !(cfg_.objective < 1.0))
    throw std::invalid_argument("SLO objective must lie in (0, 1)");
}

void SloTracker::record(std::int64_t now_ns, std::int64_t latency_ns) {
  total_.fetch_add(1, std::memory_order_relaxed);
  window_total_.add(now_ns);
  if (latency_ns > cfg_.target_ns) {
    over_.fetch_add(1, std::memory_order_relaxed);
    window_over_.add(now_ns);
  }
}

SloStats SloTracker::snapshot(std::int64_t now_ns) const {
  SloStats out;
  out.target_ns = cfg_.target_ns;
  out.objective = cfg_.objective;
  out.total = total_.load(std::memory_order_relaxed);
  out.over_target = over_.load(std::memory_order_relaxed);
  out.window_total = window_total_.window_count(now_ns);
  out.window_over = window_over_.window_count(now_ns);
  // Defense in depth: the constructor rejects objectives outside (0, 1),
  // but a non-positive error allowance must never reach the divisions —
  // burn_rate/budget_used stay 0 instead of poisoning the telemetry and
  // health JSON with inf/nan.
  const double allowed = 1.0 - cfg_.objective;
  if (allowed > 0.0) {
    if (out.window_total > 0)
      out.burn_rate = (static_cast<double>(out.window_over) /
                       static_cast<double>(out.window_total)) / allowed;
    if (out.total > 0)
      out.budget_used = (static_cast<double>(out.over_target) /
                         static_cast<double>(out.total)) / allowed;
  }
  return out;
}

}  // namespace symcan::obs

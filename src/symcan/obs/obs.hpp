#pragma once

// symcan::obs — tracing, metrics & profiling for the analysis pipeline.
//
// One global switch gates everything:
//
//   symcan::obs::set_enabled(true);
//   ... run analyses ...
//   write_file("m.json", metrics_to_json(symcan::obs::metrics()));
//   write_file("t.json", trace_to_chrome_json(symcan::obs::tracer()));
//
// Overhead contract: when disabled, every instrumentation point costs a
// single relaxed atomic load and performs no allocation — enforced by
// tests/obs/obs_overhead_test.cpp. Instrumented layers therefore guard
// with obs::enabled() (or use the helpers below, which do) before
// touching the registry or tracer.

#include <cstdint>

#include "symcan/obs/metrics.hpp"
#include "symcan/obs/trace.hpp"

namespace symcan::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// The single gate every instrumentation point checks first.
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on);

/// Process-wide registry / tracer (lazily constructed on first use, which
/// only happens once observation is enabled or an export is requested).
MetricsRegistry& metrics();
Tracer& tracer();

/// Clear all recorded data (counters, histograms, series, trace events).
/// The enabled flag is left unchanged; cached handles stay valid.
void reset();

/// No-ops when disabled; never allocate on the disabled path.
inline void count(const char* name, std::int64_t delta = 1) {
  if (!enabled()) return;
  metrics().counter(name).add(delta);
}

inline void gauge_set(const char* name, double v) {
  if (!enabled()) return;
  metrics().gauge(name).set(v);
}

/// Observe into a default-bucket (microsecond-scale) histogram.
inline void observe(const char* name, double v) {
  if (!enabled()) return;
  metrics().histogram(name).observe(v);
}

inline void instant(const char* name) {
  if (!enabled()) return;
  tracer().record_instant(name);
}

/// RAII trace context: installs `flow` as the calling thread's flow id
/// for the scope, restoring the previous one on exit. Spans and instants
/// recorded inside the scope carry the flow, stitching one request's
/// events into a tree across threads. Pure thread-local stores — no
/// atomics, no allocation — so it is safe to install unconditionally,
/// but call sites still gate on enabled() to keep the disabled path at
/// one relaxed load.
class FlowScope {
 public:
  explicit FlowScope(std::uint64_t flow) : saved_{current_flow()} { set_current_flow(flow); }
  FlowScope(const FlowScope&) = delete;
  FlowScope& operator=(const FlowScope&) = delete;
  ~FlowScope() { set_current_flow(saved_); }

 private:
  std::uint64_t saved_;
};

/// RAII span: records [construction, destruction) into the tracer when
/// observation was enabled at construction. `name` must outlive the
/// guard (string literals at every call site).
class SpanGuard {
 public:
  explicit SpanGuard(const char* name) {
    if (!enabled()) return;
    name_ = name;
    start_us_ = tracer().now_us();
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;
  ~SpanGuard() {
    if (name_ == nullptr) return;
    Tracer& t = tracer();
    t.record_span(name_, start_us_, t.now_us());
  }

 private:
  const char* name_ = nullptr;
  std::int64_t start_us_ = 0;
};

}  // namespace symcan::obs

#define SYMCAN_OBS_CONCAT2(a, b) a##b
#define SYMCAN_OBS_CONCAT(a, b) SYMCAN_OBS_CONCAT2(a, b)
/// Scoped span covering the rest of the enclosing block.
#define SYMCAN_OBS_SPAN(name) \
  ::symcan::obs::SpanGuard SYMCAN_OBS_CONCAT(symcan_obs_span_, __LINE__) { name }

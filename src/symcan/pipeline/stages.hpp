#pragma once

// Reusable parse → analyze → render pipeline stages.
//
// Historically each CLI command owned its whole flow: load a K-Matrix
// from argv, run the analysis, render the verdict to stdout. `symcan
// serve` answers the same questions over a long-lived process, so the
// analyze+render halves live here, parameterized by plain spec structs
// instead of parsed argv. The CLI builds a spec from flags; the service
// builds the identical spec from a JSON request — and because both call
// the same stage with the same defaults, a service response is
// bit-identical to the one-shot CLI invocation on the same inputs
// (tests/serve/serve_differential_test.cpp locks this down).
//
// Every stage writes exactly what the historical command wrote and
// returns the command's exit code (0 = ok, 1 = analysis "failure" such
// as a deadline miss). Input parsing stays with the trust-boundary
// loaders (kmatrix_io.hpp / serve/request.hpp); stages assume a
// validated matrix.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "symcan/analysis/can_rta.hpp"
#include "symcan/analysis/incremental_rta.hpp"
#include "symcan/can/kmatrix.hpp"
#include "symcan/opt/ga.hpp"
#include "symcan/sim/simulator.hpp"

namespace symcan::pipeline {

/// The three assumption bundles the CLI exposes (--worst-case /
/// --best-case / neither) and serve requests name via "preset".
enum class AssumptionPreset : std::uint8_t { kDefault, kWorstCase, kBestCase };

/// Spelling used by serve requests and health output ("default",
/// "worst-case", "best-case").
const char* to_string(AssumptionPreset preset);
/// Inverse of to_string; false on an unknown spelling.
bool preset_from_string(const std::string& text, AssumptionPreset& out);

CanRtaConfig assumptions_for(AssumptionPreset preset);

/// Post-parse matrix adjustments shared by CLI --jitter/--override-known
/// and the corresponding request fields. jitter < 0 leaves the matrix
/// untouched.
struct MatrixSpec {
  double jitter = -1.0;
  bool override_known = false;
};

void apply_matrix_spec(KMatrix& km, const MatrixSpec& spec);

/// --errors none|sporadic|burst plus the gap override; gap_ms < 0 picks
/// the per-kind default (40 ms sporadic, 25 ms burst) exactly as the CLI
/// does when --error-gap-ms is absent.
struct ErrorSpec {
  std::string kind = "none";
  std::int64_t gap_ms = -1;
};

/// Throws std::invalid_argument on an unknown kind or non-positive gap.
SimErrorProcess sim_errors_for(const ErrorSpec& spec);

/// Analysis error model dominating the given simulated error process —
/// the pairing that keeps RTA bounds valid simulation oracles.
std::shared_ptr<const ErrorModel> matching_error_model(const SimErrorProcess& p);

/// `symcan analyze`: load line, verdict table, miss count. Returns 0
/// when every message is schedulable, 1 otherwise. `cache`, when given,
/// routes the analysis through the (sharded) RTA cache — cached verdicts
/// are bit-identical to fresh ones, so the rendered bytes are too.
int render_analyze(const KMatrix& km, const CanRtaConfig& cfg, std::ostream& out,
                   analysis::IncrementalRta* cache = nullptr);

/// `symcan analyze --prob` / the serve "prob" kind: the probabilistic
/// analysis knobs, carried as exact parts-per-million integers so the
/// CLI flags, the JSONL wire and the cache keys all agree bit-for-bit.
/// The defaults are the degenerate point masses — with them the verdict
/// table reproduces the deterministic analysis exactly.
struct ProbSpec {
  std::int64_t fault_ppm = 1'000'000;
  std::int64_t stuff_ppm = 1'000'000;
  std::int64_t jitter_ppm = 1'000'000;
  std::int64_t max_rungs = 96;
  /// Fan-out knobs (0 = hardware / auto tile). Speed only: rendered
  /// bytes are identical at any jobs x tile combination.
  int jobs = 0;
  int tile = 0;
};

/// `symcan analyze --prob`: load line, per-message deadline-miss
/// probability table, at-risk count. Returns 0 when every message has
/// zero miss probability, 1 otherwise (the degenerate defaults make
/// this agree with render_analyze's exit code).
int render_prob(const KMatrix& km, const CanRtaConfig& cfg, const ProbSpec& spec,
                std::ostream& out, analysis::IncrementalRta* cache = nullptr);

/// `symcan explain MESSAGE [--json]`: per-term bound breakdown. Returns
/// 0/1 with the message's schedulability; throws std::invalid_argument
/// when no message has that name.
int render_explain(const KMatrix& km, const CanRtaConfig& cfg, const std::string& message,
                   bool json, std::ostream& out);

struct ValidateSpec {
  std::int64_t millis = 2000;
  std::uint64_t seed = 1;
  ErrorSpec errors;
  bool json = false;
};

/// `symcan validate`: bound-vs-observed report under the forced-sound
/// pairing. Returns 0 when no simulated response crossed its bound.
int render_validate(const KMatrix& km, const ValidateSpec& spec, std::ostream& out,
                    analysis::IncrementalRta* cache = nullptr);

struct OptimizeSpec {
  std::uint64_t seed = 7;
  int generations = 25;
  int population = 32;
  double target_jitter = 0.25;
  bool best_case = false;
  /// Worker threads for fitness evaluation (0 = hardware). Evolved
  /// populations are bit-identical at any width.
  int jobs = 0;
  /// Individuals per fan-out tile (0 = auto). Scheduling only — evolved
  /// populations are byte-identical for every tile size.
  int tile = 0;
  RtaCacheConfig cache;
};

/// The exact GaConfig `symcan optimize` builds from this spec.
GaConfig ga_config_for(const KMatrix& km, const OptimizeSpec& spec);

struct OptimizeOutcome {
  GaResult result;
  KMatrix optimized;
};

/// Run the GA stage without rendering (the CLI --out path).
OptimizeOutcome run_optimize(const KMatrix& km, const OptimizeSpec& spec);

/// `symcan optimize` without --out: GA summary line plus the optimized
/// matrix as CSV. Returns 0 when the best candidate has zero misses.
int render_optimize(const KMatrix& km, const OptimizeSpec& spec, std::ostream& out);

}  // namespace symcan::pipeline

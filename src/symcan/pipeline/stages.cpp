#include "symcan/pipeline/stages.hpp"

#include <ostream>
#include <stdexcept>

#include "symcan/analysis/load.hpp"
#include "symcan/analysis/presets.hpp"
#include "symcan/analysis/provenance.hpp"
#include "symcan/can/kmatrix_io.hpp"
#include "symcan/opt/assignment.hpp"
#include "symcan/sim/validation.hpp"
#include "symcan/obs/obs.hpp"
#include "symcan/util/table.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan::pipeline {

const char* to_string(AssumptionPreset preset) {
  switch (preset) {
    case AssumptionPreset::kWorstCase: return "worst-case";
    case AssumptionPreset::kBestCase: return "best-case";
    case AssumptionPreset::kDefault: break;
  }
  return "default";
}

bool preset_from_string(const std::string& text, AssumptionPreset& out) {
  if (text == "default") out = AssumptionPreset::kDefault;
  else if (text == "worst-case") out = AssumptionPreset::kWorstCase;
  else if (text == "best-case") out = AssumptionPreset::kBestCase;
  else return false;
  return true;
}

CanRtaConfig assumptions_for(AssumptionPreset preset) {
  if (preset == AssumptionPreset::kWorstCase) return worst_case_assumptions();
  if (preset == AssumptionPreset::kBestCase) return best_case_assumptions();
  // Default: stuffing + no errors + period deadlines.
  CanRtaConfig cfg;
  cfg.worst_case_stuffing = true;
  cfg.deadline_override = DeadlinePolicy::kPeriod;
  return cfg;
}

void apply_matrix_spec(KMatrix& km, const MatrixSpec& spec) {
  if (spec.jitter >= 0) assume_jitter_fraction(km, spec.jitter, spec.override_known);
}

SimErrorProcess sim_errors_for(const ErrorSpec& spec) {
  const auto gap = [&](std::int64_t fallback) {
    const std::int64_t ms = spec.gap_ms < 0 ? fallback : spec.gap_ms;
    if (ms <= 0) throw std::invalid_argument("error gap must be positive");
    return Duration::ms(ms);
  };
  if (spec.kind == "sporadic") return SimErrorProcess::sporadic(gap(40));
  if (spec.kind == "burst") return SimErrorProcess::burst(gap(25), 4);
  if (spec.kind != "none") throw std::invalid_argument("--errors must be none|sporadic|burst");
  return SimErrorProcess::none();
}

std::shared_ptr<const ErrorModel> matching_error_model(const SimErrorProcess& p) {
  switch (p.kind) {
    case SimErrorProcess::Kind::kSporadic: return std::make_shared<SporadicErrors>(p.min_gap);
    case SimErrorProcess::Kind::kBurst:
      return std::make_shared<BurstErrors>(p.min_gap, p.burst_len);
    case SimErrorProcess::Kind::kNone: break;
  }
  return std::make_shared<NoErrors>();
}

int render_analyze(const KMatrix& km, const CanRtaConfig& cfg, std::ostream& out,
                   analysis::IncrementalRta* cache) {
  SYMCAN_OBS_SPAN("pipeline.analyze");
  const LoadReport load = analyze_load(km, cfg.worst_case_stuffing);
  out << strprintf("bus %s: %zu messages, load %.1f%% of %.0f kbit/s\n", km.bus_name().c_str(),
                   km.size(), 100 * load.utilization, load.bandwidth_bps / 1000);

  const BusResult res = cache ? cache->analyze(km, cfg) : CanRta{km, cfg}.analyze();
  TextTable t;
  t.header({"message", "id", "wcrt", "deadline", "slack", "verdict"});
  for (const std::size_t i : km.priority_order()) {
    const MessageResult& m = res.messages[i];
    t.row({m.name, strprintf("0x%03X", m.id), to_string(m.wcrt), to_string(m.deadline),
           to_string(m.slack()), m.schedulable ? "ok" : "MISS"});
  }
  t.print(out);
  out << strprintf("misses: %zu/%zu\n", res.miss_count(), res.messages.size());
  return res.all_schedulable() ? 0 : 1;
}

int render_prob(const KMatrix& km, const CanRtaConfig& cfg, const ProbSpec& spec,
                std::ostream& out, analysis::IncrementalRta* cache) {
  SYMCAN_OBS_SPAN("pipeline.prob");
  ProbRtaConfig pcfg;
  pcfg.rta = cfg;
  pcfg.fault_ppm = spec.fault_ppm;
  pcfg.stuff_ppm = spec.stuff_ppm;
  pcfg.jitter_ppm = spec.jitter_ppm;
  pcfg.max_rungs = spec.max_rungs;
  pcfg.parallelism = spec.jobs;
  pcfg.tile = spec.tile;
  analysis::validate_prob_config(pcfg);

  const LoadReport load = analyze_load(km, cfg.worst_case_stuffing);
  out << strprintf("bus %s: %zu messages, load %.1f%% of %.0f kbit/s\n", km.bus_name().c_str(),
                   km.size(), 100 * load.utilization, load.bandwidth_bps / 1000);
  out << strprintf("probabilities (ppm): fault %lld, worst-case stuffing %lld, jitter %lld\n",
                   static_cast<long long>(spec.fault_ppm), static_cast<long long>(spec.stuff_ppm),
                   static_cast<long long>(spec.jitter_ppm));

  const ProbBusResult res =
      cache ? cache->analyze_prob(km, pcfg) : analysis::analyze_prob(km, pcfg);
  TextTable t;
  t.header({"message", "id", "det wcrt", "deadline", "miss ppm", "atoms", "verdict"});
  for (const std::size_t i : km.priority_order()) {
    const ProbMessageResult& m = res.messages[i];
    t.row({m.det.name, strprintf("0x%03X", m.det.id), to_string(m.det.wcrt),
           to_string(m.det.deadline), strprintf("%lld", static_cast<long long>(m.miss_ppm())),
           strprintf("%zu", m.response.atoms().size()), m.miss_weight == 0 ? "ok" : "AT-RISK"});
  }
  t.print(out);
  out << strprintf("at-risk: %zu/%zu\n", res.miss_count(), res.messages.size());
  return res.miss_count() == 0 ? 0 : 1;
}

int render_explain(const KMatrix& km, const CanRtaConfig& cfg, const std::string& message,
                   bool json, std::ostream& out) {
  SYMCAN_OBS_SPAN("pipeline.explain");
  const std::optional<std::size_t> index = analysis::find_message(km, message);
  if (!index)
    throw std::invalid_argument("no message named '" + message + "' in " + km.bus_name());
  const analysis::Provenance p = analysis::explain_message(km, cfg, *index);
  if (json)
    out << analysis::provenance_to_json(p) << "\n";
  else
    out << analysis::provenance_to_text(p);
  return p.result.schedulable ? 0 : 1;
}

int render_validate(const KMatrix& km, const ValidateSpec& spec, std::ostream& out,
                    analysis::IncrementalRta* cache) {
  SYMCAN_OBS_SPAN("pipeline.validate");
  if (spec.millis <= 0) throw std::invalid_argument("millis must be positive");
  SimConfig sim;
  sim.duration = Duration::ms(spec.millis);
  sim.seed = spec.seed;
  sim.errors = sim_errors_for(spec.errors);
  sim.stuffing = StuffingMode::kRandom;
  sim.randomize_jitter = true;
  sim.record_percentiles = true;

  // The analysis must dominate the simulation for its bounds to be valid
  // oracles: worst-case stuffing over sampled stuffing, and an error
  // model admitting every injected fault. Assumption presets are
  // deliberately not offered here — --best-case would make a reported
  // "violation" meaningless.
  CanRtaConfig rta;
  rta.worst_case_stuffing = true;
  rta.deadline_override = DeadlinePolicy::kPeriod;
  rta.errors = matching_error_model(sim.errors);

  const BusResult bounds = cache ? cache->analyze(km, rta) : CanRta{km, rta}.analyze();
  const BoundValidation v = compare_bound_vs_observed(bounds, simulate(km, sim));
  if (spec.json)
    out << validation_to_json(v) << "\n";
  else
    out << validation_to_text(v);
  return v.ok() ? 0 : 1;
}

GaConfig ga_config_for(const KMatrix& km, const OptimizeSpec& spec) {
  if (spec.generations <= 0) throw std::invalid_argument("generations must be positive");
  if (spec.population <= 0) throw std::invalid_argument("population must be positive");
  GaConfig cfg;
  cfg.rta = spec.best_case ? best_case_assumptions() : worst_case_assumptions();
  cfg.seed = spec.seed;
  cfg.generations = spec.generations;
  cfg.population = spec.population;
  cfg.archive = std::max(2, cfg.population / 2);
  cfg.eval_fractions = {spec.target_jitter};
  cfg.seeds = {current_order(km), deadline_monotonic_order(km)};
  cfg.parallelism = spec.jobs;
  cfg.tile = spec.tile;
  cfg.cache = spec.cache;
  return cfg;
}

OptimizeOutcome run_optimize(const KMatrix& km, const OptimizeSpec& spec) {
  const GaConfig cfg = ga_config_for(km, spec);
  GaResult res = optimize_priorities(km, cfg);
  KMatrix optimized = apply_priority_order(km, res.best.order);
  return {std::move(res), std::move(optimized)};
}

int render_optimize(const KMatrix& km, const OptimizeSpec& spec, std::ostream& out) {
  SYMCAN_OBS_SPAN("pipeline.optimize");
  const OptimizeOutcome o = run_optimize(km, spec);
  out << strprintf("GA: %d evaluations, best misses %.0f, robustness cost %.3f\n",
                   o.result.evaluations, o.result.best.misses, o.result.best.robustness_cost);
  out << kmatrix_to_csv(o.optimized);
  return o.result.best.misses == 0 ? 0 : 1;
}

}  // namespace symcan::pipeline

#pragma once

// NSGA-II (Deb, Pratap, Agarwal & Meyarivan, 2002) for CAN-ID
// assignment — the second multi-objective optimizer, sharing the GA's
// genome, objectives and variation operators but replacing SPEA2's
// strength/density fitness with fast non-dominated sorting and crowding
// distance. Included both as an algorithmic baseline for the SPEA2-style
// optimizer the paper's tool used (ref [10]) and as the better-known
// modern default.

#include "symcan/opt/ga.hpp"

namespace symcan {

/// Reuses GaConfig (population doubles as NSGA-II's mu; `archive` is
/// ignored — NSGA-II keeps the full parent population).
GaResult optimize_priorities_nsga2(const KMatrix& km, const GaConfig& cfg);

}  // namespace symcan

#pragma once

// Multi-objective genetic optimization of CAN-ID assignments, modelled on
// SPEA2 (Zitzler, Laumanns & Thiele, TIK report 103, 2001 — the paper's
// reference [10] for the SymTA/S optimizer).
//
// Section 4.3: "We used the automatic optimization feature ... to find
// better CAN ID configurations that would exhibit less message loss. The
// optimizer also performs what-if analysis using genetic algorithms. We
// configured the optimizer to favor robust configurations over sensitive
// ones. Quickly, we obtained a system that does not loose a single
// message at 25 % jitter, even in the presence of errors and bit
// stuffing."
//
// Objectives (both minimized):
//   0: total deadline misses, summed over the evaluation jitter fractions;
//   1: robustness cost — mean over evaluation points and messages of the
//      response/deadline ratio (capped), so configurations with more
//      headroom rank better even among zero-miss candidates.

#include <cstdint>
#include <vector>

#include "symcan/analysis/can_rta.hpp"
#include "symcan/analysis/incremental_rta.hpp"
#include "symcan/can/kmatrix.hpp"
#include "symcan/opt/assignment.hpp"

namespace symcan {

struct GaConfig {
  std::uint64_t seed = 7;
  int population = 48;
  int archive = 24;
  int generations = 40;
  double crossover_rate = 0.9;
  double mutation_rate = 0.3;  ///< Per-individual probability of a swap mutation.

  /// Jitter fractions at which candidates are evaluated. The paper's goal
  /// configuration is judged at 25 % jitter. Earlier fractions dominate
  /// lexicographically (each is weighted 1000x the next), so the primary
  /// target is met before stress points are traded off.
  std::vector<double> eval_fractions = {0.25};
  bool override_known = true;

  /// Analysis assumptions for evaluation — the paper's optimized system
  /// holds "even in the presence of errors and bit stuffing", i.e. the
  /// caller passes worst-case stuffing + burst errors here.
  CanRtaConfig rta;

  /// Ratio cap in the robustness objective (misses already dominate
  /// objective 0; the cap keeps diverged messages from swamping it).
  double ratio_cap = 4.0;

  /// Seed individuals injected into the initial population (e.g. the
  /// current matrix order and the DM order); the GA result is therefore
  /// never worse than the best seed under the objectives.
  std::vector<PriorityOrder> seeds;

  /// Worker threads for fitness evaluation (0 = hardware concurrency,
  /// 1 = serial). Every individual draws from its own RNG stream seeded
  /// by (seed, generation, slot), so the evolved populations are
  /// bit-identical at any parallelism.
  int parallelism = 1;

  /// Individuals per work tile in the fitness fan-out (0 = auto-size
  /// from batch and thread count). Tiling batches cheap evaluations so
  /// workers claim work in chunks instead of one atomic per individual;
  /// it never changes the evolved populations (slot-indexed results).
  /// Must be >= 0.
  int tile = 0;

  /// RTA memoization across fitness evaluations. Neighbouring candidates
  /// share most of their interference contexts, so the optimizer's
  /// dominant cost collapses to the messages each edit actually touches.
  /// Cached verdicts are bit-identical to fresh ones, so this never
  /// changes the evolved populations — disable only to measure.
  RtaCacheConfig cache;
};

/// One evaluated candidate.
struct GaIndividual {
  PriorityOrder order;
  double misses = 0;          ///< Objective 0.
  double robustness_cost = 0; ///< Objective 1.
};

struct GaResult {
  GaIndividual best;                    ///< Lexicographically best (misses, cost).
  std::vector<GaIndividual> pareto;     ///< Final archive (nondominated set).
  std::vector<double> best_misses_history;  ///< Per generation.
  int evaluations = 0;
};

/// Evaluate one order under the GA's objective definition, reusing cached
/// RTA verdicts from `rta` (which may be shared across threads and calls).
GaIndividual evaluate_order(const KMatrix& km, const PriorityOrder& order, const GaConfig& cfg,
                            IncrementalRta& rta);

/// Convenience overload with a private, cache-disabled analyzer.
GaIndividual evaluate_order(const KMatrix& km, const PriorityOrder& order, const GaConfig& cfg);

/// Run the optimizer. Deterministic in cfg.seed.
GaResult optimize_priorities(const KMatrix& km, const GaConfig& cfg);

}  // namespace symcan

#include "symcan/opt/ga.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "symcan/obs/obs.hpp"
#include "symcan/opt/permutation_ops.hpp"
#include "symcan/util/parallel.hpp"
#include "symcan/util/rng.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {

namespace {

bool dominates(const GaIndividual& a, const GaIndividual& b) {
  const bool le = a.misses <= b.misses && a.robustness_cost <= b.robustness_cost;
  const bool lt = a.misses < b.misses || a.robustness_cost < b.robustness_cost;
  return le && lt;
}

double objective_distance(const GaIndividual& a, const GaIndividual& b) {
  const double d0 = a.misses - b.misses;
  const double d1 = a.robustness_cost - b.robustness_cost;
  return std::sqrt(d0 * d0 + d1 * d1);
}

/// SPEA2 fitness: raw dominance strength plus a k-nearest-neighbour
/// density term. Lower is better; nondominated individuals have F < 1.
std::vector<double> spea2_fitness(const std::vector<GaIndividual>& pool) {
  const std::size_t n = pool.size();
  std::vector<int> strength(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (i != j && dominates(pool[i], pool[j])) ++strength[i];

  std::vector<double> fitness(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double raw = 0;
    for (std::size_t j = 0; j < n; ++j)
      if (i != j && dominates(pool[j], pool[i])) raw += strength[j];
    // Density: 1 / (distance to k-th neighbour + 2).
    std::vector<double> dist;
    dist.reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j)
      if (i != j) dist.push_back(objective_distance(pool[i], pool[j]));
    const std::size_t k = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
    std::nth_element(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k), dist.end());
    const double density = 1.0 / (dist[k] + 2.0);
    fitness[i] = raw + density;
  }
  return fitness;
}

bool lex_better(const GaIndividual& a, const GaIndividual& b) {
  if (a.misses != b.misses) return a.misses < b.misses;
  return a.robustness_cost < b.robustness_cost;
}

}  // namespace

GaIndividual evaluate_order(const KMatrix& km, const PriorityOrder& order, const GaConfig& cfg,
                            IncrementalRta& rta) {
  GaIndividual ind;
  ind.order = order;
  double misses = 0;
  double cost = 0;
  std::size_t samples = 0;
  // Lexicographic weighting: misses at eval_fractions[0] outweigh any
  // number of misses at later (stress) fractions.
  double weight = 1.0;
  for (std::size_t k = 1; k < cfg.eval_fractions.size(); ++k) weight *= 1000.0;
  // Per-worker variant buffer: the reorder copy-assigns into it, so the
  // message strings and vectors keep their heap blocks across the
  // thousands of evaluations a GA run makes on this thread.
  static thread_local KMatrix variant{"", BitTiming{500'000}};
  for (const double f : cfg.eval_fractions) {
    // One matrix copy per evaluation point — reorder and jitter-edit in
    // the reused buffer rather than allocating a fresh matrix. The
    // ID rewrite preserves validity, so no re-validation here; callers
    // validate `km` once (CanRta/IncrementalRta do, and the optimizers
    // validate up front before turning per-call validation off).
    apply_priority_order_into(km, order, variant);
    assume_jitter_fraction(variant, f, cfg.override_known);
    // The config (and its ErrorModel shared_ptr) stays by const reference
    // all the way down — no per-individual CanRtaConfig copies on the hot
    // path, and cached verdicts short-circuit the fixed point entirely.
    const BusResult res = rta.analyze(variant, cfg.rta);
    misses += weight * static_cast<double>(res.miss_count());
    weight /= 1000.0;
    for (const auto& m : res.messages) {
      double ratio = cfg.ratio_cap;
      if (!m.wcrt.is_infinite() && !m.deadline.is_infinite() && m.deadline > Duration::zero()) {
        ratio = std::min(cfg.ratio_cap, static_cast<double>(m.wcrt.count_ns()) /
                                            static_cast<double>(m.deadline.count_ns()));
      }
      cost += ratio;
      ++samples;
    }
  }
  ind.misses = misses;
  ind.robustness_cost = samples > 0 ? cost / static_cast<double>(samples) : 0;
  return ind;
}

GaIndividual evaluate_order(const KMatrix& km, const PriorityOrder& order, const GaConfig& cfg) {
  IncrementalRta scratch{RtaCacheConfig{false, 1}};
  return evaluate_order(km, order, cfg, scratch);
}

GaResult optimize_priorities(const KMatrix& km, const GaConfig& cfg) {
  if (cfg.population < 4) throw std::invalid_argument("optimize_priorities: population too small");
  if (cfg.archive < 2) throw std::invalid_argument("optimize_priorities: archive too small");
  if (cfg.eval_fractions.empty())
    throw std::invalid_argument("optimize_priorities: need at least one evaluation fraction");
  if (cfg.tile < 0) throw std::invalid_argument("optimize_priorities: tile must be >= 0");

  const std::size_t n = km.size();
  GaResult result;
  SYMCAN_OBS_SPAN("ga.optimize");

  // All fitness evaluation — the expensive part, each one a full RTA per
  // eval fraction — fans out over the pool; variation stays serial and
  // cheap, with every individual drawing from its own (seed, generation,
  // slot) stream so results never depend on evaluation order.
  ParallelExecutor exec{cfg.parallelism};
  // One memo shared by all workers across all generations: neighbouring
  // candidates differ in a few swapped ranks, so most per-message
  // contexts recur and only the edited span re-solves. Safe because a
  // cache hit is bit-identical to a fresh solve. Validate the input once
  // here instead of per evaluation — every variant is an ID permutation
  // of this matrix, which preserves validity.
  km.validate();
  RtaCacheConfig cache_cfg = cfg.cache;
  cache_cfg.validate_input = false;
  IncrementalRta rta{cache_cfg};
  double last_eval_ms = 0;
  auto evaluate_all = [&](const std::vector<PriorityOrder>& orders) {
    result.evaluations += static_cast<int>(orders.size());
    const auto t0 = std::chrono::steady_clock::now();
    auto evaluated = exec.parallel_map_tiled(
        orders, static_cast<std::size_t>(cfg.tile),
        [&](const PriorityOrder& o) { return evaluate_order(km, o, cfg, rta); });
    last_eval_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
    if (obs::enabled()) {
      auto& m = obs::metrics();
      m.counter("ga.evaluations").add(static_cast<std::int64_t>(orders.size()));
      m.histogram("ga.eval_batch_ms").observe(last_eval_ms);
    }
    return evaluated;
  };

  // Initial population (generation 0): seeds first, then random
  // permutations, one stream per slot.
  std::vector<PriorityOrder> init = cfg.seeds;
  while (init.size() < static_cast<std::size_t>(cfg.population)) {
    Rng slot_rng{stream_seed(cfg.seed, 0, init.size())};
    init.push_back(opt_detail::random_order(n, slot_rng));
  }
  std::vector<GaIndividual> pop = evaluate_all(init);

  // Elitism: the lexicographically best individual ever evaluated is
  // re-injected into every archive so density truncation can never lose
  // the champion (SPEA2 boundary preservation, simplified).
  GaIndividual champion = pop.front();
  auto update_champion = [&](const std::vector<GaIndividual>& xs) {
    for (const auto& x : xs)
      if (lex_better(x, champion)) champion = x;
  };
  update_champion(pop);

  std::vector<GaIndividual> archive;
  for (int gen = 0; gen < cfg.generations; ++gen) {
    // Environmental selection on population + archive.
    std::vector<GaIndividual> pool = pop;
    pool.insert(pool.end(), archive.begin(), archive.end());
    const std::vector<double> fitness = spea2_fitness(pool);

    std::vector<std::size_t> idx(pool.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::stable_sort(idx.begin(), idx.end(),
                     [&](std::size_t a, std::size_t b) { return fitness[a] < fitness[b]; });
    archive.clear();
    for (std::size_t i = 0; i < idx.size() && archive.size() < static_cast<std::size_t>(cfg.archive);
         ++i)
      archive.push_back(pool[idx[i]]);

    bool champion_in_archive = false;
    for (const auto& a : archive)
      champion_in_archive = champion_in_archive ||
                            (a.misses == champion.misses &&
                             a.robustness_cost == champion.robustness_cost);
    if (!champion_in_archive) archive.back() = champion;

    result.best_misses_history.push_back(champion.misses);

    // Variation: binary tournament on archive fitness rank (archive is
    // sorted by fitness already). One RNG stream per offspring slot.
    std::vector<PriorityOrder> children(static_cast<std::size_t>(cfg.population));
    for (std::size_t slot = 0; slot < children.size(); ++slot) {
      Rng slot_rng{stream_seed(cfg.seed, static_cast<std::uint64_t>(gen) + 1, slot)};
      auto tournament = [&]() -> const GaIndividual& {
        const std::size_t a = slot_rng.index(archive.size());
        const std::size_t b = slot_rng.index(archive.size());
        return archive[std::min(a, b)];
      };
      PriorityOrder child;
      if (slot_rng.chance(cfg.crossover_rate))
        child = opt_detail::order_crossover(tournament().order, tournament().order, slot_rng);
      else
        child = tournament().order;
      if (slot_rng.chance(cfg.mutation_rate)) opt_detail::swap_mutation(child, slot_rng);
      children[slot] = std::move(child);
    }
    pop = evaluate_all(children);
    update_champion(pop);

    if (obs::enabled()) {
      obs::count("ga.generations");
      obs::metrics().series("ga.generations").append({
          {"generation", static_cast<double>(gen)},
          {"best_misses", champion.misses},
          {"best_robustness_cost", champion.robustness_cost},
          {"evaluations", static_cast<double>(result.evaluations)},
          {"eval_ms", last_eval_ms},
      });
    }
  }

  // Final archive update and champion extraction.
  std::vector<GaIndividual> pool = pop;
  pool.insert(pool.end(), archive.begin(), archive.end());
  std::vector<GaIndividual> pareto;
  for (const auto& c : pool) {
    bool dominated = false;
    for (const auto& d : pool)
      if (dominates(d, c)) {
        dominated = true;
        break;
      }
    if (!dominated) pareto.push_back(c);
  }
  // Dedup identical objective pairs to keep the front readable.
  std::sort(pareto.begin(), pareto.end(), lex_better);
  pareto.erase(std::unique(pareto.begin(), pareto.end(),
                           [](const GaIndividual& a, const GaIndividual& b) {
                             return a.misses == b.misses &&
                                    a.robustness_cost == b.robustness_cost;
                           }),
               pareto.end());

  result.pareto = pareto;
  result.best = pareto.front();
  return result;
}

}  // namespace symcan

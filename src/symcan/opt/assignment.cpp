#include "symcan/opt/assignment.hpp"

#include <algorithm>
#include <stdexcept>

#include "symcan/workload/powertrain.hpp"

namespace symcan {

namespace {

void check_permutation(const PriorityOrder& order, std::size_t n) {
  if (order.size() != n)
    throw std::invalid_argument("apply_priority_order: order size mismatch");
  std::vector<bool> seen(order.size(), false);
  for (const std::size_t i : order) {
    if (i >= order.size() || seen[i])
      throw std::invalid_argument("apply_priority_order: order is not a permutation");
    seen[i] = true;
  }
}

void reassign_ids(KMatrix& out, const PriorityOrder& order, CanId base, CanId spacing) {
  const CanId top = base + spacing * static_cast<CanId>(order.size() - 1);
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    CanMessage& m = out.messages()[order[rank]];
    CanId id = base + spacing * static_cast<CanId>(rank);
    const CanId max_id = m.format == FrameFormat::kStandard ? max_standard_id : max_extended_id;
    if (top > max_id) {
      // Fall back to dense assignment when the spaced range overflows the
      // ID space (large matrices of standard frames).
      id = static_cast<CanId>(rank);
    }
    m.id = id;
  }
}

}  // namespace

KMatrix apply_priority_order(const KMatrix& km, const PriorityOrder& order, CanId base,
                             CanId spacing) {
  check_permutation(order, km.size());
  KMatrix out = km;
  reassign_ids(out, order, base, spacing);
  out.validate();
  return out;
}

void apply_priority_order_into(const KMatrix& km, const PriorityOrder& order, KMatrix& out,
                               CanId base, CanId spacing) {
  check_permutation(order, km.size());
  out = km;  // copy-assign: a reused `out` keeps its heap buffers
  reassign_ids(out, order, base, spacing);
}

PriorityOrder current_order(const KMatrix& km) { return km.priority_order(); }

PriorityOrder deadline_monotonic_order(const KMatrix& km) {
  PriorityOrder order(km.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  const auto& msgs = km.messages();
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (msgs[a].deadline() != msgs[b].deadline()) return msgs[a].deadline() < msgs[b].deadline();
    if (msgs[a].period != msgs[b].period) return msgs[a].period < msgs[b].period;
    return msgs[a].id < msgs[b].id;
  });
  return order;
}

namespace {

/// Schedulability of `cand` when it sits at the current lowest open rank:
/// every still-unplaced message above it, the already-placed suffix below
/// it, all jitters at `fraction` of their periods.
bool feasible_at_rank(const KMatrix& km, const CanRtaConfig& rta, double fraction,
                      const std::vector<bool>& placed, const PriorityOrder& order,
                      std::size_t back, std::size_t cand) {
  const std::size_t n = km.size();
  KMatrix trial = km;
  assume_jitter_fraction(trial, fraction, true);
  CanId next_high = 0x100;
  for (std::size_t i = 0; i < n; ++i) {
    if (placed[i] || i == cand) continue;
    trial.messages()[i].id = next_high++;
  }
  trial.messages()[cand].id = next_high;
  CanId below = next_high + 1;
  for (std::size_t r = back + 1; r < n; ++r) trial.messages()[order[r]].id = below++;
  trial.validate();
  return CanRta{trial, rta}.analyze_message(cand).schedulable;
}

}  // namespace

std::optional<PriorityOrder> robust_priority_order(const KMatrix& km, const CanRtaConfig& rta,
                                                   double assumed_jitter_fraction,
                                                   double tolerance) {
  const std::size_t n = km.size();
  PriorityOrder order(n);
  std::vector<bool> placed(n, false);

  for (std::size_t back = n; back-- > 0;) {
    std::optional<std::size_t> best;
    double best_tolerance = -1;
    for (std::size_t cand = 0; cand < n; ++cand) {
      if (placed[cand]) continue;
      if (!feasible_at_rank(km, rta, assumed_jitter_fraction, placed, order, back, cand))
        continue;
      // Largest uniform jitter fraction this candidate tolerates here.
      double lo = assumed_jitter_fraction, hi = 1.0;
      if (feasible_at_rank(km, rta, hi, placed, order, back, cand)) {
        lo = hi;
      } else {
        while (hi - lo > tolerance) {
          const double mid = (lo + hi) / 2;
          if (feasible_at_rank(km, rta, mid, placed, order, back, cand))
            lo = mid;
          else
            hi = mid;
        }
      }
      if (lo > best_tolerance) {
        best_tolerance = lo;
        best = cand;
      }
    }
    if (!best) return std::nullopt;
    order[back] = *best;
    placed[*best] = true;
  }
  return order;
}

std::optional<PriorityOrder> audsley_order(const KMatrix& km, const CanRtaConfig& rta,
                                           std::optional<double> assumed_jitter_fraction,
                                           bool override_known) {
  KMatrix work = km;
  if (assumed_jitter_fraction)
    assume_jitter_fraction(work, *assumed_jitter_fraction, override_known);

  const std::size_t n = work.size();
  PriorityOrder order(n);  // filled from the back (lowest rank first)
  std::vector<bool> placed(n, false);

  // Trial IDs: unplaced messages sit above (higher priority than) the
  // candidate; already-placed ones below. We renumber on every probe.
  for (std::size_t back = n; back-- > 0;) {
    bool found = false;
    for (std::size_t cand = 0; cand < n && !found; ++cand) {
      if (placed[cand]) continue;
      KMatrix trial = work;
      CanId next_high = 0x100;
      // Unplaced (excluding candidate): any relative order, all above.
      for (std::size_t i = 0; i < n; ++i) {
        if (placed[i] || i == cand) continue;
        trial.messages()[i].id = next_high;
        next_high += 1;
      }
      trial.messages()[cand].id = next_high;
      CanId below = next_high + 1;
      // Placed ones keep their established relative order below.
      for (std::size_t r = back + 1; r < n; ++r) {
        trial.messages()[order[r]].id = below;
        below += 1;
      }
      trial.validate();
      std::size_t cand_pos = cand;
      const MessageResult res = CanRta{trial, rta}.analyze_message(cand_pos);
      if (res.schedulable) {
        order[back] = cand;
        placed[cand] = true;
        found = true;
      }
    }
    if (!found) return std::nullopt;
  }
  return order;
}

}  // namespace symcan

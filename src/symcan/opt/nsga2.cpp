#include "symcan/opt/nsga2.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>

#include "symcan/obs/obs.hpp"
#include "symcan/opt/permutation_ops.hpp"
#include "symcan/util/parallel.hpp"
#include "symcan/util/rng.hpp"

namespace symcan {

namespace {

bool dominates(const GaIndividual& a, const GaIndividual& b) {
  const bool le = a.misses <= b.misses && a.robustness_cost <= b.robustness_cost;
  const bool lt = a.misses < b.misses || a.robustness_cost < b.robustness_cost;
  return le && lt;
}

bool lex_better(const GaIndividual& a, const GaIndividual& b) {
  if (a.misses != b.misses) return a.misses < b.misses;
  return a.robustness_cost < b.robustness_cost;
}

/// Fast non-dominated sort: returns front index per individual (0 = best).
std::vector<int> nondominated_sort(const std::vector<GaIndividual>& pool) {
  const std::size_t n = pool.size();
  std::vector<std::vector<std::size_t>> dominated_by(n);
  std::vector<int> domination_count(n, 0);
  std::vector<int> front(n, -1);

  std::vector<std::size_t> current;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (dominates(pool[i], pool[j]))
        dominated_by[i].push_back(j);
      else if (dominates(pool[j], pool[i]))
        ++domination_count[i];
    }
    if (domination_count[i] == 0) {
      front[i] = 0;
      current.push_back(i);
    }
  }
  int level = 0;
  while (!current.empty()) {
    std::vector<std::size_t> next;
    for (const std::size_t i : current) {
      for (const std::size_t j : dominated_by[i]) {
        if (--domination_count[j] == 0) {
          front[j] = level + 1;
          next.push_back(j);
        }
      }
    }
    ++level;
    current = std::move(next);
  }
  return front;
}

/// Crowding distance within one front (by index list).
std::vector<double> crowding(const std::vector<GaIndividual>& pool,
                             const std::vector<std::size_t>& front) {
  std::vector<double> dist(pool.size(), 0.0);
  const double inf = std::numeric_limits<double>::infinity();
  auto by_objective = [&](auto getter) {
    std::vector<std::size_t> order = front;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return getter(pool[a]) < getter(pool[b]);
    });
    if (order.size() < 2) {
      for (const std::size_t i : order) dist[i] = inf;
      return;
    }
    dist[order.front()] = inf;
    dist[order.back()] = inf;
    const double span = getter(pool[order.back()]) - getter(pool[order.front()]);
    if (span <= 0) return;
    for (std::size_t k = 1; k + 1 < order.size(); ++k)
      dist[order[k]] +=
          (getter(pool[order[k + 1]]) - getter(pool[order[k - 1]])) / span;
  };
  by_objective([](const GaIndividual& x) { return x.misses; });
  by_objective([](const GaIndividual& x) { return x.robustness_cost; });
  return dist;
}

}  // namespace

GaResult optimize_priorities_nsga2(const KMatrix& km, const GaConfig& cfg) {
  if (cfg.population < 4)
    throw std::invalid_argument("optimize_priorities_nsga2: population too small");
  if (cfg.eval_fractions.empty())
    throw std::invalid_argument("optimize_priorities_nsga2: need an evaluation fraction");
  if (cfg.tile < 0) throw std::invalid_argument("optimize_priorities_nsga2: tile must be >= 0");

  const std::size_t n = km.size();
  const std::size_t mu = static_cast<std::size_t>(cfg.population);
  GaResult result;
  SYMCAN_OBS_SPAN("nsga2.optimize");

  // Parallel fitness evaluation with per-slot RNG streams — see ga.cpp;
  // the same scheme keeps NSGA-II's populations bit-identical at any
  // worker count.
  ParallelExecutor exec{cfg.parallelism};
  // Shared RTA memo, as in ga.cpp: bit-identical hits keep populations
  // deterministic at any worker count. One up-front validation covers
  // every ID-permuted variant the evaluations produce.
  km.validate();
  RtaCacheConfig cache_cfg = cfg.cache;
  cache_cfg.validate_input = false;
  IncrementalRta rta{cache_cfg};
  double last_eval_ms = 0;
  auto evaluate_all = [&](const std::vector<PriorityOrder>& orders) {
    result.evaluations += static_cast<int>(orders.size());
    const auto t0 = std::chrono::steady_clock::now();
    auto evaluated = exec.parallel_map_tiled(
        orders, static_cast<std::size_t>(cfg.tile),
        [&](const PriorityOrder& o) { return evaluate_order(km, o, cfg, rta); });
    last_eval_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
    if (obs::enabled()) {
      auto& m = obs::metrics();
      m.counter("nsga2.evaluations").add(static_cast<std::int64_t>(orders.size()));
      m.histogram("nsga2.eval_batch_ms").observe(last_eval_ms);
    }
    return evaluated;
  };

  std::vector<PriorityOrder> init = cfg.seeds;
  while (init.size() < mu) {
    Rng slot_rng{stream_seed(cfg.seed, 0, init.size())};
    init.push_back(opt_detail::random_order(n, slot_rng));
  }
  std::vector<GaIndividual> parents = evaluate_all(init);

  GaIndividual champion = parents.front();
  for (const auto& p : parents)
    if (lex_better(p, champion)) champion = p;

  for (int gen = 0; gen < cfg.generations; ++gen) {
    // Rank parents for tournament selection.
    const std::vector<int> rank = nondominated_sort(parents);
    std::vector<std::size_t> all(parents.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    const std::vector<double> crowd = crowding(parents, all);

    // Offspring: one RNG stream per slot, evaluated as one batch.
    const std::size_t offspring =
        2 * mu > parents.size() ? 2 * mu - parents.size() : 0;
    std::vector<PriorityOrder> children(offspring);
    for (std::size_t slot = 0; slot < children.size(); ++slot) {
      Rng slot_rng{stream_seed(cfg.seed, static_cast<std::uint64_t>(gen) + 1, slot)};
      auto tournament = [&]() -> const GaIndividual& {
        const std::size_t a = slot_rng.index(parents.size());
        const std::size_t b = slot_rng.index(parents.size());
        if (rank[a] != rank[b]) return parents[rank[a] < rank[b] ? a : b];
        return parents[crowd[a] > crowd[b] ? a : b];
      };
      PriorityOrder child;
      if (slot_rng.chance(cfg.crossover_rate))
        child = opt_detail::order_crossover(tournament().order, tournament().order, slot_rng);
      else
        child = tournament().order;
      if (slot_rng.chance(cfg.mutation_rate)) opt_detail::swap_mutation(child, slot_rng);
      children[slot] = std::move(child);
    }
    std::vector<GaIndividual> pool = parents;
    for (auto& c : evaluate_all(children)) pool.push_back(std::move(c));
    for (const auto& p : pool)
      if (lex_better(p, champion)) champion = p;

    // Environmental selection: fill by fronts, crowding-truncate the last.
    const std::vector<int> pool_rank = nondominated_sort(pool);
    std::vector<std::size_t> order(pool.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::vector<std::size_t> everyone = order;
    const std::vector<double> pool_crowd = crowding(pool, everyone);
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (pool_rank[a] != pool_rank[b]) return pool_rank[a] < pool_rank[b];
      return pool_crowd[a] > pool_crowd[b];
    });
    std::vector<GaIndividual> next;
    next.reserve(mu);
    for (std::size_t i = 0; i < mu && i < order.size(); ++i) next.push_back(pool[order[i]]);
    parents = std::move(next);
    result.best_misses_history.push_back(champion.misses);

    if (obs::enabled()) {
      obs::count("nsga2.generations");
      obs::metrics().series("nsga2.generations").append({
          {"generation", static_cast<double>(gen)},
          {"best_misses", champion.misses},
          {"best_robustness_cost", champion.robustness_cost},
          {"evaluations", static_cast<double>(result.evaluations)},
          {"eval_ms", last_eval_ms},
      });
    }
  }

  // Final front (dedup by objectives), champion guaranteed present.
  parents.push_back(champion);
  std::vector<GaIndividual> pareto;
  for (const auto& c : parents) {
    bool dominated = false;
    for (const auto& d : parents)
      if (dominates(d, c)) {
        dominated = true;
        break;
      }
    if (!dominated) pareto.push_back(c);
  }
  std::sort(pareto.begin(), pareto.end(), lex_better);
  pareto.erase(std::unique(pareto.begin(), pareto.end(),
                           [](const GaIndividual& a, const GaIndividual& b) {
                             return a.misses == b.misses &&
                                    a.robustness_cost == b.robustness_cost;
                           }),
               pareto.end());
  result.pareto = pareto;
  result.best = pareto.front();
  return result;
}

}  // namespace symcan

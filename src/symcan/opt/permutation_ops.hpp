#pragma once

// Shared permutation-genome operators for the multi-objective CAN-ID
// optimizers (SPEA2-style GA and NSGA-II).

#include <vector>

#include "symcan/opt/assignment.hpp"
#include "symcan/util/rng.hpp"

namespace symcan::opt_detail {

/// Order crossover (OX): keep a slice of parent A, fill the rest in
/// parent B's order. Preserves permutation validity.
inline PriorityOrder order_crossover(const PriorityOrder& a, const PriorityOrder& b, Rng& rng) {
  const std::size_t n = a.size();
  if (n < 2) return a;
  std::size_t lo = rng.index(n);
  std::size_t hi = rng.index(n);
  if (lo > hi) std::swap(lo, hi);
  PriorityOrder child(n, n);  // n = unset sentinel
  std::vector<bool> used(n, false);
  for (std::size_t i = lo; i <= hi; ++i) {
    child[i] = a[i];
    used[a[i]] = true;
  }
  std::size_t pos = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (used[b[i]]) continue;
    while (pos >= lo && pos <= hi) ++pos;
    child[pos++] = b[i];
  }
  return child;
}

inline void swap_mutation(PriorityOrder& o, Rng& rng) {
  if (o.size() < 2) return;
  const std::size_t i = rng.index(o.size());
  const std::size_t j = rng.index(o.size());
  std::swap(o[i], o[j]);
}

inline PriorityOrder random_order(std::size_t n, Rng& rng) {
  PriorityOrder o(n);
  for (std::size_t i = 0; i < n; ++i) o[i] = i;
  rng.shuffle(o);
  return o;
}

}  // namespace symcan::opt_detail

#pragma once

// CAN-ID (priority) assignment: shared representation plus the classic
// deterministic baselines the genetic optimizer is compared against.
//
// An assignment is a priority order: order[rank] = index into
// KMatrix::messages() of the message holding that rank (rank 0 = highest
// priority = numerically lowest CAN ID).

#include <cstddef>
#include <optional>
#include <vector>

#include "symcan/analysis/can_rta.hpp"
#include "symcan/can/kmatrix.hpp"

namespace symcan {

using PriorityOrder = std::vector<std::size_t>;

/// Rewrite message IDs per `order`: rank r gets ID base + r*spacing
/// (spacing leaves room for later insertions, like real matrices do).
/// All other fields are preserved. `order` must be a permutation of
/// [0, km.size()).
KMatrix apply_priority_order(const KMatrix& km, const PriorityOrder& order, CanId base = 0x100,
                             CanId spacing = 8);

/// Hot-loop variant: write the reordered matrix into `out` (copy-assign
/// reuses its string/vector capacity, so a reused buffer makes this
/// allocation-light) and skip the output re-validation — the rewrite
/// only permutes IDs over a collision-free range, so `out` is valid iff
/// `km` is. `order` is still checked to be a permutation.
void apply_priority_order_into(const KMatrix& km, const PriorityOrder& order, KMatrix& out,
                               CanId base = 0x100, CanId spacing = 8);

/// The order implied by the matrix's current IDs.
PriorityOrder current_order(const KMatrix& km);

/// Deadline-monotonic assignment: shorter effective deadline = higher
/// priority (ties broken by period, then by current ID for determinism).
/// Optimal for CAN without jitter/errors in the D <= T class only; the
/// paper's setting breaks those preconditions, which is the point of the
/// comparison.
PriorityOrder deadline_monotonic_order(const KMatrix& km);

/// Audsley's optimal priority assignment: builds the order bottom-up,
/// placing at each (lowest remaining) rank any message that is
/// schedulable there under `rta` with every still-unplaced message above
/// it. Returns nullopt if some rank admits no message — then no
/// fixed-priority assignment is feasible under this analysis (the
/// analysis satisfies the OPA independence conditions: a message's
/// response depends only on the *sets* of higher/lower-priority messages,
/// not on their relative order).
///
/// `assumed_jitter_fraction`, when set, first applies that uniform jitter
/// assumption (as in the what-if experiments) before testing.
std::optional<PriorityOrder> audsley_order(const KMatrix& km, const CanRtaConfig& rta,
                                           std::optional<double> assumed_jitter_fraction = {},
                                           bool override_known = true);

/// Robust priority assignment (after Davis & Burns, "Robust priority
/// assignment for fixed priority real-time systems"): Audsley's bottom-up
/// scheme, but at every priority level it places the candidate that
/// *maximizes robustness* — here, the largest uniform jitter fraction the
/// message tolerates at that level (binary search, `tolerance` wide) —
/// instead of the first feasible one. Matches the paper's Section 4.3
/// configuration of the optimizer "to favor robust configurations over
/// sensitive ones", with a deterministic algorithm instead of a GA.
/// Returns nullopt when no feasible assignment exists at the base
/// assumption (`assumed_jitter_fraction`).
std::optional<PriorityOrder> robust_priority_order(const KMatrix& km, const CanRtaConfig& rta,
                                                   double assumed_jitter_fraction = 0.0,
                                                   double tolerance = 0.02);

}  // namespace symcan

#include "symcan/workload/powertrain.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "symcan/util/rng.hpp"

namespace symcan {

namespace {

/// Typical power-train period grid (ms) with sampling weights: control
/// loops dominate, slow status/diagnostic frames fill the tail.
struct PeriodChoice {
  std::int64_t ms;
  double weight;
};
constexpr PeriodChoice period_grid[] = {
    {5, 0.06}, {10, 0.22}, {20, 0.22}, {50, 0.18},
    {100, 0.16}, {200, 0.08}, {500, 0.05}, {1000, 0.03},
};

std::int64_t sample_period_ms(Rng& rng) {
  double total = 0;
  for (const auto& p : period_grid) total += p.weight;
  double x = rng.uniform_real(0, total);
  for (const auto& p : period_grid) {
    if (x < p.weight) return p.ms;
    x -= p.weight;
  }
  return period_grid[std::size(period_grid) - 1].ms;
}

int sample_payload(Rng& rng) {
  // Power-train frames pack many signals; most use the full 8 bytes.
  const double x = rng.uniform_real(0, 1);
  if (x < 0.55) return 8;
  if (x < 0.70) return 6;
  if (x < 0.82) return 4;
  if (x < 0.92) return 2;
  return 1;
}

}  // namespace

KMatrix generate_powertrain(const PowertrainConfig& cfg) {
  if (cfg.message_count < 1) throw std::invalid_argument("generate_powertrain: message_count < 1");
  if (cfg.ecu_count < 1) throw std::invalid_argument("generate_powertrain: ecu_count < 1");
  if (cfg.gateway_count >= cfg.ecu_count)
    throw std::invalid_argument("generate_powertrain: gateways must be < ecus");
  if (cfg.target_utilization <= 0 || cfg.target_utilization >= 1)
    throw std::invalid_argument("generate_powertrain: target_utilization must be in (0,1)");

  Rng rng{cfg.seed};
  KMatrix km{"powertrain", BitTiming{cfg.bitrate_bps}};

  // Nodes: engine/transmission style names, gateways last.
  static const char* base_names[] = {"ENG", "TRANS", "ABS", "ESP", "DASH", "EPS", "TCU", "BCM"};
  std::vector<std::string> node_names;
  for (int i = 0; i < cfg.ecu_count - cfg.gateway_count; ++i) {
    std::string n = i < static_cast<int>(std::size(base_names))
                        ? base_names[i]
                        : "ECU" + std::to_string(i);
    node_names.push_back(n);
    EcuNode node;
    node.name = n;
    node.controller = rng.chance(cfg.basic_can_fraction) ? ControllerType::kBasicCan
                                                         : ControllerType::kFullCan;
    node.tx_buffers = node.controller == ControllerType::kBasicCan
                          ? static_cast<int>(rng.uniform_int(1, 3))
                          : 1;
    km.add_node(std::move(node));
  }
  for (int g = 0; g < cfg.gateway_count; ++g) {
    std::string n = cfg.gateway_count == 1 ? "GW" : "GW" + std::to_string(g);
    node_names.push_back(n);
    EcuNode node;
    node.name = n;
    node.controller = ControllerType::kFullCan;
    node.is_gateway = true;
    km.add_node(std::move(node));
  }

  // Draw the raw rows.
  struct Row {
    std::int64_t period_ms;
    int payload;
    std::size_t sender;
    bool known_jitter;
    double jitter_frac;  // for known-jitter rows: 10..30 % of period
  };
  std::vector<Row> rows;
  rows.reserve(static_cast<std::size_t>(cfg.message_count));
  for (int i = 0; i < cfg.message_count; ++i) {
    Row r;
    r.period_ms = sample_period_ms(rng);
    r.payload = sample_payload(rng);
    // Gateways forward proportionally more frames than regular ECUs send.
    const bool from_gateway = rng.chance(0.25 * cfg.gateway_count);
    if (from_gateway) {
      r.sender = node_names.size() - 1 -
                 static_cast<std::size_t>(rng.uniform_int(0, cfg.gateway_count - 1));
    } else {
      r.sender = rng.index(node_names.size() - static_cast<std::size_t>(cfg.gateway_count));
    }
    r.known_jitter = rng.chance(cfg.known_jitter_fraction);
    r.jitter_frac = rng.uniform_real(0.10, 0.30);
    rows.push_back(r);
  }

  // Scale periods to hit the target worst-case utilization.
  double util = 0;
  const BitTiming timing{cfg.bitrate_bps};
  for (const auto& r : rows) {
    const auto bits = frame_bits_worst_case(FrameFormat::kStandard, r.payload);
    util += static_cast<double>(bits) * timing.bit_time().as_s() /
            (static_cast<double>(r.period_ms) * 1e-3);
  }
  const double scale = util / cfg.target_utilization;

  // Assign IDs: rank by period (rate-monotonic-ish), then perturb. Real
  // matrices cluster IDs by function with historical accretion, so a
  // fraction of rows get their rank displaced by a random amount.
  std::vector<std::size_t> order(rows.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return rows[a].period_ms < rows[b].period_ms;
  });
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (!rng.chance(cfg.id_disorder)) continue;
    const std::int64_t span = std::max<std::int64_t>(1, static_cast<std::int64_t>(order.size()) / 3);
    const std::int64_t j = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(i) + rng.uniform_int(-span, span), 0,
        static_cast<std::int64_t>(order.size()) - 1);
    std::swap(order[i], order[static_cast<std::size_t>(j)]);
  }

  // Materialize messages. IDs spread over 0x100.. with gaps, as real
  // matrices leave room for extension.
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const Row& r = rows[order[rank]];
    CanMessage m;
    m.name = "M" + std::to_string(order[rank]);
    m.id = static_cast<CanId>(0x100 + rank * 8 +
                              static_cast<std::size_t>(rng.uniform_int(0, 5)));
    m.format = FrameFormat::kStandard;
    m.payload_bytes = r.payload;
    const double period_us = static_cast<double>(r.period_ms) * 1000.0 * scale;
    m.period = Duration::us(static_cast<std::int64_t>(std::llround(period_us)));
    m.jitter_known = r.known_jitter;
    m.jitter = r.known_jitter
                   ? Duration::ns(static_cast<std::int64_t>(r.jitter_frac *
                                                            static_cast<double>(m.period.count_ns())))
                   : Duration::zero();
    m.deadline_policy = DeadlinePolicy::kPeriod;
    m.sender = node_names[r.sender];
    // 1..3 receivers among the other nodes.
    const int n_recv = static_cast<int>(rng.uniform_int(1, 3));
    for (int k = 0; k < n_recv; ++k) {
      const std::string& cand = node_names[rng.index(node_names.size())];
      if (cand == m.sender) continue;
      if (std::find(m.receivers.begin(), m.receivers.end(), cand) != m.receivers.end()) continue;
      m.receivers.push_back(cand);
    }
    if (m.receivers.empty()) m.receivers.push_back(m.sender == node_names[0] ? node_names[1]
                                                                             : node_names[0]);
    km.add_message(std::move(m));
  }

  km.validate();
  return km;
}

void assume_jitter_fraction(KMatrix& km, double fraction, bool override_known) {
  if (fraction < 0) throw std::invalid_argument("assume_jitter_fraction: negative fraction");
  for (auto& m : km.messages()) {
    if (m.jitter_known && !override_known) continue;
    m.jitter = Duration::ns(
        static_cast<std::int64_t>(fraction * static_cast<double>(m.period.count_ns())));
  }
}

void snap_periods(KMatrix& km, Duration grid) {
  if (grid <= Duration::zero()) throw std::invalid_argument("snap_periods: grid must be > 0");
  for (auto& m : km.messages()) {
    const std::int64_t steps = std::max<std::int64_t>(1, m.period / grid);
    m.period = steps * grid;
    m.jitter = min(m.jitter, m.period);  // keep J <= T where it was
    if (m.tt_offset && *m.tt_offset >= m.period) m.tt_offset = Duration::zero();
  }
  km.validate();
}

std::size_t assign_tt_offsets(KMatrix& km, Duration granularity) {
  if (granularity <= Duration::zero())
    throw std::invalid_argument("assign_tt_offsets: granularity must be > 0");

  // Per sender: place messages one by one (shortest period first, as they
  // repeat most often); each candidate offset is scored by the release
  // density it creates against the already-placed schedule, evaluated
  // over the pairwise-lcm pattern via modular distance to the nearest
  // existing release.
  std::size_t assigned = 0;
  for (const auto& node : km.nodes()) {
    std::vector<CanMessage*> mine;
    for (auto& m : km.messages())
      if (m.sender == node.name) mine.push_back(&m);
    std::sort(mine.begin(), mine.end(),
              [](const CanMessage* a, const CanMessage* b) { return a->period < b->period; });

    struct Placed {
      Duration period;
      Duration offset;
    };
    std::vector<Placed> placed;
    for (CanMessage* m : mine) {
      const std::int64_t slots = std::max<std::int64_t>(1, m->period / granularity);
      Duration best_offset = Duration::zero();
      double best_score = -1;
      for (std::int64_t s = 0; s < slots; ++s) {
        const Duration candidate = s * granularity;
        // Score: smallest modular distance from any release of `candidate`
        // to any release of an already-placed message, approximated on
        // the gcd lattice (releases of (T1,O1) and (T2,O2) approach each
        // other down to (O1-O2) mod gcd(T1,T2)).
        double score = 1e18;
        for (const auto& p : placed) {
          const std::int64_t g = std::gcd(m->period.count_ns(), p.period.count_ns());
          std::int64_t d = (candidate.count_ns() - p.offset.count_ns()) % g;
          if (d < 0) d += g;
          const double dist = static_cast<double>(std::min(d, g - d));
          score = std::min(score, dist);
        }
        if (score > best_score) {
          best_score = score;
          best_offset = candidate;
        }
      }
      m->tt_offset = best_offset;
      placed.push_back({m->period, best_offset});
      ++assigned;
    }
  }
  km.validate();
  return assigned;
}

void scale_periods(KMatrix& km, double factor) {
  if (factor <= 0) throw std::invalid_argument("scale_periods: factor must be > 0");
  for (auto& m : km.messages()) {
    m.period = Duration::ns(
        static_cast<std::int64_t>(factor * static_cast<double>(m.period.count_ns())));
    m.jitter = Duration::ns(
        static_cast<std::int64_t>(factor * static_cast<double>(m.jitter.count_ns())));
    if (m.tt_offset)
      m.tt_offset = Duration::ns(
          static_cast<std::int64_t>(factor * static_cast<double>(m.tt_offset->count_ns())));
  }
}

}  // namespace symcan

#pragma once

// Vehicle-level synthetic workload: two CAN buses (power train at
// 500 kbit/s, body/comfort at 125 kbit/s) joined by a gateway, ECU task
// sets on every node, and cross-bus event paths routed through gateway
// forwarding tasks. This is the full System the compositional engine
// (core::Engine) analyzes — the "network integration" object of the
// paper, one level above a single K-Matrix.

#include "symcan/core/system.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {

struct VehicleConfig {
  std::uint64_t seed = 42;

  /// Power-train bus (reuses the case-study generator).
  PowertrainConfig powertrain = PowertrainConfig::case_study();

  /// Body/comfort bus.
  int body_message_count = 28;
  int body_ecu_count = 5;  ///< Excluding the shared gateway.
  std::int64_t body_bitrate_bps = 125'000;
  double body_target_utilization = 0.35;

  /// Cross-bus streams routed through the gateway (each direction).
  int gateway_streams_per_direction = 3;

  /// Local control tasks generated per ECU (plus one sender task per
  /// cross-bus stream on its source ECU and forwarding tasks on GW).
  int tasks_per_ecu = 3;

  /// End-to-end deadline granted to each cross-bus path, as a multiple of
  /// the stream period.
  double path_deadline_periods = 2.0;
};

/// Deterministically build the vehicle System: buses named "powertrain"
/// and "body", gateway node "GW" on both, ECU task sets, and named paths
/// "pt_to_body_<i>" / "body_to_pt_<i>".
System generate_vehicle(const VehicleConfig& cfg);

}  // namespace symcan

#include "symcan/workload/scenario.hpp"

#include <stdexcept>

namespace symcan {

std::vector<std::string> add_diagnosis_traffic(KMatrix& km, const DiagnosisConfig& cfg) {
  if (km.find_node(cfg.tester_node) == nullptr)
    throw std::invalid_argument("add_diagnosis_traffic: unknown tester node " + cfg.tester_node);
  if (km.find_node(cfg.target_node) == nullptr)
    throw std::invalid_argument("add_diagnosis_traffic: unknown target node " + cfg.target_node);

  std::vector<std::string> added;
  auto mk = [&](const char* name, CanId id, const std::string& from, const std::string& to) {
    CanMessage m;
    m.name = name;
    m.id = id;
    m.payload_bytes = 8;
    // ISO-TP block transfer: long-term rate one frame per spacing, with
    // bursts of up to cfg.burst consecutive frames.
    m.period = cfg.frame_spacing;
    m.jitter = (cfg.burst - 1) * cfg.frame_spacing;
    m.min_distance = Duration::us(200);  // driver pacing between frames
    m.deadline_policy = DeadlinePolicy::kExplicit;
    m.explicit_deadline = cfg.stream_deadline;
    m.sender = from;
    m.receivers = {to};
    m.jitter_known = true;
    km.add_message(m);
    added.push_back(m.name);
  };
  mk("DIAG_REQ", cfg.request_id, cfg.tester_node, cfg.target_node);
  mk("FLASH_DATA", cfg.response_id, cfg.target_node, cfg.tester_node);
  km.validate();
  return added;
}

void apply_n_out_of_m(KMatrix& km, std::int64_t m_factor,
                      const std::function<bool(const CanMessage&)>& pick) {
  if (m_factor < 1) throw std::invalid_argument("apply_n_out_of_m: m_factor must be >= 1");
  for (auto& m : km.messages()) {
    if (!pick(m)) continue;
    m.period = m.period / m_factor;
    m.jitter = m.jitter / m_factor;
  }
  km.validate();
}

}  // namespace symcan

#include "symcan/workload/vehicle.hpp"

#include <stdexcept>

#include "symcan/util/rng.hpp"

namespace symcan {

namespace {

/// Body/comfort bus: slower rates, smaller frames, basicCAN controllers
/// are common on cost-driven nodes.
KMatrix generate_body_bus(const VehicleConfig& cfg, Rng& rng) {
  KMatrix km{"body", BitTiming{cfg.body_bitrate_bps}};
  static const char* names[] = {"DOOR", "SEAT", "CLIM", "LIGHT", "WIPER", "MIRROR", "ROOF"};
  std::vector<std::string> nodes;
  for (int i = 0; i < cfg.body_ecu_count; ++i) {
    std::string n = i < static_cast<int>(std::size(names)) ? names[i]
                                                           : "BODY" + std::to_string(i);
    nodes.push_back(n);
    EcuNode node;
    node.name = n;
    node.controller = rng.chance(0.5) ? ControllerType::kBasicCan : ControllerType::kFullCan;
    node.tx_buffers = node.controller == ControllerType::kBasicCan
                          ? static_cast<int>(rng.uniform_int(1, 3))
                          : 1;
    km.add_node(std::move(node));
  }
  EcuNode gw;
  gw.name = "GW";
  gw.is_gateway = true;
  km.add_node(std::move(gw));

  // Draw rows and scale to the target utilization, mirroring the
  // power-train generator's approach with a body-typical period grid.
  struct Row {
    std::int64_t period_ms;
    int payload;
    std::size_t sender;
  };
  std::vector<Row> rows;
  for (int i = 0; i < cfg.body_message_count; ++i) {
    static const std::int64_t grid[] = {20, 50, 100, 200, 500, 1000};
    Row r;
    r.period_ms = grid[rng.index(std::size(grid))];
    r.payload = static_cast<int>(rng.uniform_int(1, 8));
    r.sender = rng.index(nodes.size());
    rows.push_back(r);
  }
  double util = 0;
  for (const auto& r : rows) {
    const auto bits = frame_bits_worst_case(FrameFormat::kStandard, r.payload);
    util += static_cast<double>(bits) * km.timing().bit_time().as_s() /
            (static_cast<double>(r.period_ms) * 1e-3);
  }
  const double scale = util / cfg.body_target_utilization;

  for (std::size_t i = 0; i < rows.size(); ++i) {
    CanMessage m;
    m.name = "B" + std::to_string(i);
    m.id = static_cast<CanId>(0x200 + i * 8 + static_cast<std::size_t>(rng.uniform_int(0, 5)));
    m.payload_bytes = rows[i].payload;
    m.period = Duration::ns(static_cast<std::int64_t>(
        static_cast<double>(rows[i].period_ms) * 1e6 * scale));
    m.sender = nodes[rows[i].sender];
    m.receivers = {nodes[(rows[i].sender + 1) % nodes.size()]};
    km.add_message(std::move(m));
  }
  km.validate();
  return km;
}

/// A plausible OSEK task set for one ECU: a fast control task, a medium
/// worker, and a cooperative background task; ISR on some nodes.
std::vector<Task> generate_tasks(const std::string& ecu, int count, Rng& rng) {
  std::vector<Task> tasks;
  for (int i = 0; i < count; ++i) {
    Task t;
    t.name = ecu + "_task" + std::to_string(i);
    t.priority = 10 + i;
    const std::int64_t period_ms = (i + 1) * static_cast<std::int64_t>(rng.uniform_int(5, 20));
    t.activation = EventModel::periodic(Duration::ms(period_ms));
    const std::int64_t wcet_us = rng.uniform_int(100, 400) * (i + 1);
    t.wcet = Duration::us(wcet_us);
    t.bcet = t.wcet / 2;
    t.os_overhead = Duration::us(20);
    t.deadline = t.activation.period();
    if (i == count - 1 && count >= 3) {
      t.sched = SchedClass::kCooperativeTask;
      t.max_segment = t.wcet / 3;
    }
    tasks.push_back(std::move(t));
  }
  if (rng.chance(0.4)) {
    Task isr;
    isr.name = ecu + "_isr";
    isr.sched = SchedClass::kInterrupt;
    isr.priority = 1;
    isr.activation = EventModel::periodic(Duration::ms(1));
    isr.wcet = Duration::us(40);
    isr.bcet = Duration::us(10);
    tasks.push_back(std::move(isr));
  }
  return tasks;
}

}  // namespace

System generate_vehicle(const VehicleConfig& cfg) {
  if (cfg.gateway_streams_per_direction < 0)
    throw std::invalid_argument("generate_vehicle: negative stream count");
  if (cfg.tasks_per_ecu < 1)
    throw std::invalid_argument("generate_vehicle: tasks_per_ecu must be >= 1");

  Rng rng{cfg.seed};
  System sys;

  PowertrainConfig pt_cfg = cfg.powertrain;
  pt_cfg.seed = cfg.seed;
  KMatrix powertrain = generate_powertrain(pt_cfg);
  KMatrix body = generate_body_bus(cfg, rng);

  // Cross-bus messages: pt -> body and body -> pt, carried by the
  // gateway. High-ish priority on the destination bus (control data).
  struct Stream {
    std::string name;
    Duration period;
    bool pt_to_body;
  };
  std::vector<Stream> streams;
  for (int i = 0; i < cfg.gateway_streams_per_direction; ++i) {
    const Duration period = Duration::ms(rng.uniform_int(2, 10) * 10);
    streams.push_back({"xpt" + std::to_string(i), period, true});
    streams.push_back({"xbd" + std::to_string(i), period, false});
  }
  CanId pt_id = 0x0A0;
  CanId body_id = 0x0A0;
  for (const auto& s : streams) {
    CanMessage src;
    src.name = s.name + "_src";
    src.payload_bytes = 8;
    src.period = s.period;
    CanMessage fwd = src;
    fwd.name = s.name + "_fwd";
    if (s.pt_to_body) {
      src.id = pt_id++;
      src.sender = powertrain.nodes().front().name;
      src.receivers = {"GW"};
      powertrain.add_message(src);
      fwd.id = body_id++;
      fwd.sender = "GW";
      fwd.receivers = {body.nodes().front().name};
      body.add_message(fwd);
    } else {
      src.id = body_id++;
      src.sender = body.nodes().front().name;
      src.receivers = {"GW"};
      body.add_message(src);
      fwd.id = pt_id++;
      fwd.sender = "GW";
      fwd.receivers = {powertrain.nodes().front().name};
      powertrain.add_message(fwd);
    }
  }
  powertrain.validate();
  body.validate();

  // ECU task sets: every node of either bus, gateway last (it hosts the
  // forwarding tasks).
  std::vector<std::string> ecu_names;
  for (const auto& n : powertrain.nodes())
    if (!n.is_gateway) ecu_names.push_back(n.name);
  for (const auto& n : body.nodes())
    if (!n.is_gateway) ecu_names.push_back(n.name);
  for (const auto& name : ecu_names) sys.add_ecu(name, generate_tasks(name, cfg.tasks_per_ecu, rng));

  std::vector<Task> gw_tasks;
  for (std::size_t i = 0; i < streams.size(); ++i) {
    Task t;
    t.name = "fwd_" + streams[i].name;
    t.priority = static_cast<int>(10 + i);
    t.wcet = Duration::us(150);
    t.bcet = Duration::us(40);
    t.os_overhead = Duration::us(10);
    t.activation = EventModel::periodic(streams[i].period);  // overwritten by engine
    gw_tasks.push_back(std::move(t));
  }
  sys.add_ecu("GW", std::move(gw_tasks));

  const std::string pt_bus = powertrain.bus_name();
  const std::string body_bus = body.bus_name();
  sys.add_bus(std::move(powertrain));
  sys.add_bus(std::move(body));

  // Paths: source message -> gateway forwarding task -> forwarded message.
  int pt_i = 0, bd_i = 0;
  for (const auto& s : streams) {
    Path p;
    p.name = (s.pt_to_body ? "pt_to_body_" + std::to_string(pt_i++)
                           : "body_to_pt_" + std::to_string(bd_i++));
    p.source = EventModel::periodic(s.period);
    const std::string src_bus = s.pt_to_body ? pt_bus : body_bus;
    const std::string dst_bus = s.pt_to_body ? body_bus : pt_bus;
    p.elements = {{PathElement::Kind::kMessage, src_bus, s.name + "_src"},
                  {PathElement::Kind::kTask, "GW", "fwd_" + s.name},
                  {PathElement::Kind::kMessage, dst_bus, s.name + "_fwd"}};
    p.deadline = Duration::ns(static_cast<std::int64_t>(
        cfg.path_deadline_periods * static_cast<double>(s.period.count_ns())));
    sys.add_path(std::move(p));
  }

  sys.validate();
  return sys;
}

}  // namespace symcan

#pragma once

// Synthetic power-train K-Matrix generation.
//
// The paper's case study analyzes "a real-world power train CAN bus from
// the automotive industry. Several ECUs ... including gateways are
// attached to that bus, each sending and receiving a total number of more
// than 50 messages." That matrix is proprietary; this generator produces
// matrices with the same structural statistics so every experiment of the
// paper can run on reproducible, seeded inputs:
//
//  * 500 kbit/s bus, ~50 % worst-case utilization by default;
//  * periods drawn from the typical power-train grid (5..1000 ms),
//    weighted toward the 10..100 ms control loops;
//  * payloads weighted toward full 8-byte frames;
//  * CAN IDs correlated with rate (faster messages get better IDs) but
//    deliberately perturbed — real matrices grow historically and are
//    never priority-optimal, which is exactly what Section 4.3 optimizes;
//  * a minority of messages with known jitter in the 10..30 % range of
//    their period (Section 4: "We knew the jitters of only a few
//    messages"), the rest marked as assumptions.

#include <cstdint>
#include <string>
#include <vector>

#include "symcan/can/kmatrix.hpp"

namespace symcan {

struct PowertrainConfig {
  std::uint64_t seed = 42;
  int message_count = 56;
  int ecu_count = 6;       ///< Including gateways.
  int gateway_count = 1;   ///< Gateways forward body/chassis traffic in.
  std::int64_t bitrate_bps = 500'000;

  /// Target worst-case-stuffing utilization; periods are scaled uniformly
  /// to land within ~1 % of this.
  double target_utilization = 0.50;

  /// Fraction of messages whose jitter the OEM "knows" (set in the matrix
  /// with jitter_known = true), drawn as 10..30 % of the period.
  double known_jitter_fraction = 0.2;

  /// Fraction of ECUs using basicCAN controllers (older nodes).
  double basic_can_fraction = 0.3;

  /// How scrambled the ID assignment is relative to rate-monotonic order:
  /// 0 = perfectly rate-ordered, 1 = fully random. Historical matrices
  /// sit in between.
  double id_disorder = 0.35;

  /// The calibrated configuration used to reproduce the paper's case
  /// study (Figures 4 and 5): a heavily loaded bus whose historically
  /// grown ID assignment loses messages under pessimistic assumptions but
  /// can be optimized to zero loss at 25 % jitter. Power-train nodes use
  /// fullCAN controllers (per-message buffers); the basicCAN FIFO
  /// degradation is explored separately in the controller ablation.
  static PowertrainConfig case_study() {
    PowertrainConfig cfg;
    cfg.target_utilization = 0.70;
    cfg.id_disorder = 0.60;
    cfg.basic_can_fraction = 0.0;
    return cfg;
  }
};

/// Generate a validated single-bus K-Matrix per the configuration.
/// Deterministic in cfg.seed.
KMatrix generate_powertrain(const PowertrainConfig& cfg);

/// Set every message whose jitter is not "known" to `fraction` of its own
/// period — the what-if knob of the paper's experiments (Sections 4.1,
/// 4.2; x-axis of Figures 4 and 5). Known-jitter messages keep their
/// value unless `override_known` is set.
void assume_jitter_fraction(KMatrix& km, double fraction, bool override_known = false);

/// Scale all periods by `factor` (used to explore utilization levels).
void scale_periods(KMatrix& km, double factor);

/// Snap every period down to the nearest multiple of `grid` (at least one
/// grid step). Slightly conservative (shorter periods = more load).
/// TimeTable schedules need grid-aligned periods to keep per-sender
/// hyperperiods small; real K-Matrices are grid-aligned by construction,
/// the synthetic generator's utilization scaling is not.
void snap_periods(KMatrix& km, Duration grid);

/// Assign TimeTable offsets (paper Section 5.2) to every message of every
/// sender, greedily spreading releases: messages are processed by
/// ascending period and each gets the offset (on a `granularity` grid
/// within its period) that minimizes the sender's worst release clustering
/// over the emerging schedule. Returns the number of messages scheduled.
/// Offsets only desynchronize messages of the *same* sender — CAN nodes
/// share no global clock, so cross-node offsets would be unsound and are
/// not produced.
std::size_t assign_tt_offsets(KMatrix& km, Duration granularity = Duration::us(500));

}  // namespace symcan

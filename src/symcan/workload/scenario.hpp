#pragma once

// Scenario mutations on top of a base K-Matrix: diagnosis / ECU-flashing
// traffic and the naive "N out of M" redundancy pattern the paper calls
// out as counterproductive common practice (Section 2).

#include <functional>
#include <string>

#include "symcan/can/kmatrix.hpp"

namespace symcan {

struct DiagnosisConfig {
  /// Spacing of consecutive flash/diagnosis data frames (ISO-TP style
  /// block transfer with flow control); 2 ms sustains ~64 kbit/s of
  /// payload on a 500 kbit/s bus.
  Duration frame_spacing = Duration::ms(2);
  /// Burstiness: frames may bunch up to this many back-to-back.
  std::int64_t burst = 4;
  /// Diagnostic IDs sit at the top of the ID space (lowest priority).
  CanId request_id = 0x700;
  CanId response_id = 0x708;
  /// Deadline of the diagnostic stream itself: ISO-TP flow-control
  /// timeouts are generous (the tool retries); 250 ms matches typical
  /// N_Bs/N_Cr defaults.
  Duration stream_deadline = Duration::ms(250);
  std::string tester_node = "GW";  ///< Node injecting the tester traffic.
  std::string target_node = "ENG";
};

/// Add a flashing/diagnosis session to the matrix: a request stream from
/// the tester (via gateway) and a response/data stream from the target.
/// Both are low-priority and bursty. Returns names of the added messages.
std::vector<std::string> add_diagnosis_traffic(KMatrix& km, const DiagnosisConfig& cfg);

/// Apply the naive "N out of M" robustness pattern: every message
/// selected by `pick` is sent `m_factor` times as often (period divided),
/// so that N of the M copies per original period survive loss. The paper:
/// "sending significantly more messages than actually required further
/// increases bus load and should be avoided".
void apply_n_out_of_m(KMatrix& km, std::int64_t m_factor,
                      const std::function<bool(const CanMessage&)>& pick);

}  // namespace symcan

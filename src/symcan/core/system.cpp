#include "symcan/core/system.hpp"

#include <stdexcept>

namespace symcan {

void System::add_bus(KMatrix km) {
  const std::string name = km.bus_name();
  if (buses_.contains(name)) throw std::invalid_argument("System: duplicate bus '" + name + "'");
  buses_.emplace(name, std::move(km));
}

void System::add_ecu(std::string name, std::vector<Task> tasks) {
  if (name.empty()) throw std::invalid_argument("System: ECU with empty name");
  if (ecus_.contains(name)) throw std::invalid_argument("System: duplicate ECU '" + name + "'");
  ecus_.emplace(std::move(name), std::move(tasks));
}

void System::add_path(Path p) {
  if (p.name.empty()) throw std::invalid_argument("System: path with empty name");
  if (p.elements.empty())
    throw std::invalid_argument("System: path '" + p.name + "' has no elements");
  paths_.push_back(std::move(p));
}

void System::validate() const {
  for (const auto& [name, km] : buses_) km.validate();
  for (const auto& p : paths_) {
    for (const auto& el : p.elements) {
      if (el.kind == PathElement::Kind::kMessage) {
        auto it = buses_.find(el.resource);
        if (it == buses_.end())
          throw std::invalid_argument("System: path '" + p.name + "' references unknown bus '" +
                                      el.resource + "'");
        if (it->second.find_message(el.item) == nullptr)
          throw std::invalid_argument("System: path '" + p.name + "' references unknown message '" +
                                      el.item + "' on bus '" + el.resource + "'");
      } else {
        auto it = ecus_.find(el.resource);
        if (it == ecus_.end())
          throw std::invalid_argument("System: path '" + p.name + "' references unknown ECU '" +
                                      el.resource + "'");
        bool found = false;
        for (const auto& t : it->second) found = found || t.name == el.item;
        if (!found)
          throw std::invalid_argument("System: path '" + p.name + "' references unknown task '" +
                                      el.item + "' on ECU '" + el.resource + "'");
      }
    }
  }
}

}  // namespace symcan

#include "symcan/core/engine.hpp"

#include <stdexcept>

#include "symcan/obs/obs.hpp"

namespace symcan {

bool SystemResult::all_schedulable() const {
  for (const auto& [name, b] : buses)
    if (!b.all_schedulable()) return false;
  for (const auto& [name, e] : ecus)
    if (!e.all_schedulable()) return false;
  for (const auto& p : paths)
    if (!p.met) return false;
  return true;
}

Engine::Engine(System sys, EngineConfig cfg) : sys_{std::move(sys)}, cfg_{std::move(cfg)} {
  sys_.validate();
  buses_ = sys_.buses();
  ecus_ = sys_.ecus();
  // Seed path-driven elements: the head of every path is activated by the
  // path source; downstream elements start from the same model with zero
  // accumulated response jitter (optimistic start of the monotone
  // iteration).
  for (const auto& p : sys_.paths()) {
    EventModel m = p.source;
    for (const auto& el : p.elements) {
      if (el.kind == PathElement::Kind::kMessage) {
        for (auto& msg : buses_.at(el.resource).messages()) {
          if (msg.name != el.item) continue;
          msg.period = m.period();
          msg.jitter = m.jitter();
          msg.min_distance = m.min_distance();
        }
      } else {
        for (auto& t : ecus_.at(el.resource)) {
          if (t.name != el.item) continue;
          t.activation = m;
        }
      }
    }
  }
}

SystemResult Engine::analyze_all_resources() {
  SYMCAN_OBS_SPAN("engine.analyze_resources");
  SystemResult r;
  for (const auto& [name, km] : buses_) r.buses.emplace(name, CanRta{km, cfg_.bus}.analyze());
  for (const auto& [name, tasks] : ecus_) {
    if (tasks.empty()) {
      r.ecus.emplace(name, EcuResult{});
      continue;
    }
    r.ecus.emplace(name, EcuRta{tasks, cfg_.ecu_horizon}.analyze());
  }
  return r;
}

Engine::ElementState Engine::lookup(const SystemResult& r, const PathElement& el) const {
  ElementState s;
  if (el.kind == PathElement::Kind::kMessage) {
    const auto& bus_result = r.buses.at(el.resource);
    for (const auto& m : bus_result.messages)
      if (m.name == el.item) {
        s.wcrt = m.wcrt;
        s.bcrt = m.bcrt;
        return s;
      }
  } else {
    const auto& ecu_result = r.ecus.at(el.resource);
    for (const auto& t : ecu_result.tasks)
      if (t.name == el.item) {
        s.wcrt = t.wcrt;
        s.bcrt = t.bcrt;
        return s;
      }
  }
  throw std::logic_error("Engine: path element not found in results (validate() missed it)");
}

bool Engine::propagate(const SystemResult& r) {
  SYMCAN_OBS_SPAN("engine.propagate");
  bool changed = false;
  for (const auto& p : sys_.paths()) {
    EventModel m = p.source;
    for (std::size_t i = 0; i + 1 < p.elements.size(); ++i) {
      const ElementState s = lookup(r, p.elements[i]);
      if (s.wcrt.is_infinite()) {
        // Upstream diverged: pin the successor at a divergent model by
        // keeping the current one; global convergence flag will be false
        // because the resource result stays unschedulable.
        break;
      }
      m = m.with_added_jitter(s.wcrt - s.bcrt);
      const PathElement& next = p.elements[i + 1];
      if (next.kind == PathElement::Kind::kMessage) {
        for (auto& msg : buses_.at(next.resource).messages()) {
          if (msg.name != next.item) continue;
          if (msg.jitter != m.jitter() || msg.period != m.period()) {
            msg.period = m.period();
            msg.jitter = m.jitter();
            msg.min_distance = m.min_distance();
            changed = true;
          }
        }
      } else {
        for (auto& t : ecus_.at(next.resource)) {
          if (t.name != next.item) continue;
          if (!(t.activation == m)) {
            t.activation = m;
            changed = true;
          }
        }
      }
    }
  }
  return changed;
}

SystemResult Engine::analyze() {
  SYMCAN_OBS_SPAN("engine.analyze");
  SystemResult result;
  for (int iter = 1; iter <= cfg_.max_iterations; ++iter) {
    result = analyze_all_resources();
    result.iterations = iter;
    if (!propagate(result)) {
      result.converged = true;
      break;
    }
  }
  if (obs::enabled()) {
    auto& m = obs::metrics();
    m.counter("engine.analyses").add(1);
    m.counter("engine.iterations").add(result.iterations);
    if (!result.converged) m.counter("engine.unconverged").add(1);
  }
  // End-to-end path latencies from the final resource results.
  for (const auto& p : sys_.paths()) {
    PathResult pr;
    pr.name = p.name;
    pr.deadline = p.deadline;
    Duration lat_max = Duration::zero();
    Duration lat_min = Duration::zero();
    bool diverged = false;
    for (const auto& el : p.elements) {
      const ElementState s = lookup(result, el);
      if (s.wcrt.is_infinite()) diverged = true;
      if (!diverged) lat_max += s.wcrt;
      lat_min += s.bcrt;
    }
    pr.latency_max = diverged ? Duration::infinite() : lat_max;
    pr.latency_min = lat_min;
    pr.met = !diverged && result.converged &&
             (pr.deadline.is_infinite() || pr.latency_max <= pr.deadline);
    result.paths.push_back(pr);
  }
  return result;
}

}  // namespace symcan

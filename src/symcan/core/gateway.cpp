#include "symcan/core/gateway.hpp"

#include <stdexcept>

namespace symcan {

const char* to_string(GatewayStrategy s) {
  switch (s) {
    case GatewayStrategy::kImmediate:
      return "immediate";
    case GatewayStrategy::kFifo:
      return "fifo";
    case GatewayStrategy::kShaped:
      return "shaped";
  }
  return "?";
}

namespace {

ForwardedStream forward_immediate(const EventModel& input, const GatewayConfig& cfg) {
  ForwardedStream out;
  out.min_delay = cfg.forward_bcet;
  out.max_delay = cfg.forward_wcet;
  out.output = input.with_added_jitter(cfg.forward_wcet - cfg.forward_bcet);
  out.queue_depth = 1;
  return out;
}

ForwardedStream forward_fifo(const EventModel& input, const GatewayConfig& cfg,
                             const std::vector<EventModel>& siblings) {
  ForwardedStream out;
  std::vector<EventModel> arrivals = siblings;
  arrivals.push_back(input);
  out.queue_depth = max_backlog(arrivals, cfg.fifo_service);
  if (!out.queue_depth) {
    out.max_delay = Duration::infinite();
    out.min_delay = cfg.forward_bcet;
    out.output = input;  // meaningless under overload; caller checks max_delay
    return out;
  }
  // Worst wait: the service guarantees backlog-many removals within
  // backlog * P_srv + J_srv; then the frame itself is handled.
  const Duration drain =
      *out.queue_depth * cfg.fifo_service.period() + cfg.fifo_service.jitter();
  out.max_delay = drain + cfg.forward_wcet;
  out.min_delay = cfg.forward_bcet;
  out.output = input.with_added_jitter(out.max_delay - out.min_delay);
  return out;
}

ForwardedStream forward_shaped(const EventModel& input, const GatewayConfig& cfg) {
  if (cfg.shaping_distance > input.period())
    throw std::invalid_argument(
        "forward_stream: shaping distance above the stream period starves the stream");
  ForwardedStream out;
  // Smoothing delay: event n (worst clustering) must wait until the
  // shaper has spaced its predecessors by the enforced distance.
  Duration smooth = Duration::zero();
  int settled = 0;
  for (std::int64_t n = 2; n < 100'000 && settled < 8; ++n) {
    const Duration need = (n - 1) * cfg.shaping_distance - input.delta_min(n);
    if (need > smooth) {
      smooth = need;
      settled = 0;
    } else {
      ++settled;
    }
  }
  out.min_delay = cfg.forward_bcet;
  out.max_delay = smooth + cfg.forward_wcet;
  // The far bus sees: same rate, jitter widened by the added-delay range,
  // but a hard minimum distance — usually a large net win downstream.
  out.output = EventModel::periodic_burst(
      input.period(), input.jitter() + (out.max_delay - out.min_delay), cfg.shaping_distance);
  out.queue_depth =
      max_backlog({input}, EventModel::sporadic(cfg.shaping_distance));
  return out;
}

}  // namespace

ForwardedStream forward_stream(const EventModel& input, const GatewayConfig& cfg,
                               const std::vector<EventModel>& siblings) {
  if (cfg.forward_wcet < cfg.forward_bcet || cfg.forward_bcet < Duration::zero())
    throw std::invalid_argument("forward_stream: bad forwarding execution times");
  switch (cfg.strategy) {
    case GatewayStrategy::kImmediate:
      return forward_immediate(input, cfg);
    case GatewayStrategy::kFifo:
      return forward_fifo(input, cfg, siblings);
    case GatewayStrategy::kShaped:
      return forward_shaped(input, cfg);
  }
  throw std::logic_error("forward_stream: unknown strategy");
}

}  // namespace symcan

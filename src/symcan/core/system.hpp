#pragma once

// System-level model for compositional analysis: a set of resources
// (ECUs with task sets, CAN buses with K-Matrices) connected by event
// paths (task -> message -> task chains, possibly crossing gateways onto
// other buses). This is the SymTA/S application model from Richter's and
// Jersak's theses, specialized to the automotive network-integration
// setting of the paper.

#include <map>
#include <string>
#include <vector>

#include "symcan/analysis/ecu_rta.hpp"
#include "symcan/can/kmatrix.hpp"
#include "symcan/model/event_model.hpp"
#include "symcan/model/task.hpp"

namespace symcan {

/// One stop of an event path.
struct PathElement {
  enum class Kind : std::uint8_t { kTask, kMessage };
  Kind kind = Kind::kTask;
  std::string resource;  ///< ECU name (kTask) or bus name (kMessage).
  std::string item;      ///< Task or message name on that resource.
};

/// A causal chain of activations: each element's completion activates the
/// next. The head is activated by `source`.
struct Path {
  std::string name;
  EventModel source = EventModel::periodic(Duration::ms(10));
  std::vector<PathElement> elements;
  /// Optional end-to-end latency constraint (infinite = unconstrained).
  Duration deadline = Duration::infinite();
};

/// The complete system under integration.
class System {
 public:
  /// Add a bus (K-Matrix). Bus names must be unique.
  void add_bus(KMatrix km);

  /// Add an ECU as a computational resource with its task set. The name
  /// should match the EcuNode names used in K-Matrices so gateway chains
  /// line up, but standalone ECUs are allowed.
  void add_ecu(std::string name, std::vector<Task> tasks);

  /// Register an event path. Elements must reference existing resources
  /// and items (checked by validate()).
  void add_path(Path p);

  const std::map<std::string, KMatrix>& buses() const { return buses_; }
  const std::map<std::string, std::vector<Task>>& ecus() const { return ecus_; }
  const std::vector<Path>& paths() const { return paths_; }

  /// Structural validation: unique names, resolvable path elements,
  /// alternating feasibility (a message must be precedable by a task on
  /// its sending ECU, etc. is *not* enforced — gateways forward without
  /// modelling a task when the user chooses). Throws std::invalid_argument.
  void validate() const;

 private:
  std::map<std::string, KMatrix> buses_;
  std::map<std::string, std::vector<Task>> ecus_;
  std::vector<Path> paths_;
};

}  // namespace symcan

#pragma once

// The compositional analysis engine: the technical core of SymTA/S
// (Richter & Ernst, "Event Model Interfaces for Heterogeneous System
// Analysis", DATE 2002; Richter, PhD thesis 2005).
//
// Global analysis alternates two steps until a fixed point:
//
//   1. Resource-local analysis: every ECU (EcuRta) and every bus (CanRta)
//      is analyzed in isolation under its current activation models.
//   2. Event-model propagation: along every path, the completion of
//      element i activates element i+1 with
//         J_out(i) = J_in(i) + (wcrt_i - bcrt_i)
//      (same period; burst limitation preserved).
//
// Response jitter is monotone in input jitter for all local analyses, so
// the iteration is monotone non-decreasing and either converges or grows
// past a divergence bound (non-schedulable feedback, reported as
// `converged == false`).

#include <map>
#include <string>
#include <vector>

#include "symcan/analysis/can_rta.hpp"
#include "symcan/analysis/ecu_rta.hpp"
#include "symcan/core/system.hpp"

namespace symcan {

struct EngineConfig {
  /// Bus analysis assumptions (stuffing, error model, deadline policy).
  CanRtaConfig bus;
  /// ECU busy-period horizon.
  Duration ecu_horizon = Duration::s(10);
  /// Iteration bound before declaring global divergence.
  int max_iterations = 64;
};

/// End-to-end result for one path.
struct PathResult {
  std::string name;
  Duration latency_max = Duration::infinite();  ///< Sum of element WCRTs.
  Duration latency_min = Duration::zero();      ///< Sum of element BCRTs.
  Duration deadline = Duration::infinite();
  bool met = false;
};

/// Global analysis result.
struct SystemResult {
  std::map<std::string, BusResult> buses;
  std::map<std::string, EcuResult> ecus;
  std::vector<PathResult> paths;
  int iterations = 0;
  bool converged = false;

  bool all_schedulable() const;
};

/// Analysis engine bound to one System. The engine works on internal
/// copies of the K-Matrices/task sets (propagation rewrites activation
/// jitter), so the input System is never mutated; it is stored by value
/// so temporaries are safe to pass.
class Engine {
 public:
  Engine(System sys, EngineConfig cfg);

  /// Run the global fixed-point iteration.
  SystemResult analyze();

 private:
  struct ElementState {
    Duration wcrt = Duration::zero();
    Duration bcrt = Duration::zero();
  };

  SystemResult analyze_all_resources();
  ElementState lookup(const SystemResult& r, const PathElement& el) const;
  bool propagate(const SystemResult& r);

  System sys_;
  EngineConfig cfg_;
  std::map<std::string, KMatrix> buses_;
  std::map<std::string, std::vector<Task>> ecus_;
};

}  // namespace symcan

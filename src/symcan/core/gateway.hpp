#pragma once

// Gateway forwarding strategies (paper Section 5: "gatewaying strategies
// can be optimized. These are usually under the control of the OEMs and
// provide many parameters that can be tuned such as queue configuration").
//
// A gateway moves a stream from one bus to another. How it queues and
// paces the stream decides both the latency it adds and the event model
// it injects into the destination bus:
//
//  * immediate    — per-stream buffer, forwarded as soon as the
//                   forwarding task runs: minimal latency, jitter passes
//                   through (plus the task's response jitter);
//  * fifo         — one shared queue for all forwarded streams: cheap
//                   hardware, but streams add queueing delay and jitter
//                   to each other (bounded via the backlog analysis);
//  * shaped       — a traffic shaper enforces a minimum distance on the
//                   output: bursts are flattened, the destination bus
//                   sees a friendlier model, the shaper adds bounded
//                   smoothing delay.

#include <vector>

#include "symcan/analysis/buffer.hpp"
#include "symcan/model/event_model.hpp"
#include "symcan/util/time.hpp"

namespace symcan {

enum class GatewayStrategy : std::uint8_t { kImmediate, kFifo, kShaped };

const char* to_string(GatewayStrategy s);

struct GatewayConfig {
  GatewayStrategy strategy = GatewayStrategy::kImmediate;
  /// Forwarding task: worst/best-case handling latency per frame.
  Duration forward_bcet = Duration::us(50);
  Duration forward_wcet = Duration::us(200);
  /// kFifo: service model of the queue drain (e.g. forwarding task
  /// activation). One frame forwarded per service event.
  EventModel fifo_service = EventModel::periodic(Duration::ms(1));
  /// kShaped: enforced minimum output distance.
  Duration shaping_distance = Duration::ms(1);
};

/// Result of pushing one stream through the gateway.
struct ForwardedStream {
  /// Event model injected into the far bus.
  EventModel output = EventModel::periodic(Duration::ms(10));
  Duration max_delay;           ///< Worst added latency (queue + handling).
  Duration min_delay;           ///< Best added latency.
  std::optional<std::int64_t> queue_depth;  ///< kFifo: bound; nullopt = unbounded.
};

/// Forward `input` through a gateway configured by `cfg`. For kFifo,
/// `siblings` are the other streams sharing the queue (their arrivals
/// delay ours). Returns nullopt-queue_depth ForwardedStream with
/// max_delay == infinite() when the FIFO is unboundedly backlogged.
ForwardedStream forward_stream(const EventModel& input, const GatewayConfig& cfg,
                               const std::vector<EventModel>& siblings = {});

}  // namespace symcan

#include "symcan/util/time.hpp"

#include <cmath>
#include <cstdio>

namespace symcan {

std::string to_string(Duration d) {
  if (d.is_infinite()) return "inf";
  const std::int64_t n = d.count_ns();
  const std::int64_t a = n < 0 ? -n : n;
  char buf[64];
  if (a >= 1'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.6g s", d.as_s());
  } else if (a >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.6g ms", d.as_ms());
  } else if (a >= 1'000) {
    std::snprintf(buf, sizeof buf, "%.6g us", d.as_us());
  } else {
    std::snprintf(buf, sizeof buf, "%lld ns", static_cast<long long>(n));
  }
  return buf;
}

std::ostream& operator<<(std::ostream& os, Duration d) { return os << to_string(d); }

}  // namespace symcan

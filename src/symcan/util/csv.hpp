#pragma once

// Minimal CSV reading/writing used for K-Matrix import/export and for
// dumping benchmark series. Supports quoted fields with embedded commas
// and quotes; does not support embedded newlines (K-Matrices never
// contain them).

#include <string>
#include <string_view>
#include <vector>

namespace symcan {

/// One parsed CSV row.
using CsvRow = std::vector<std::string>;

/// Parse a single CSV line into fields. Handles "quoted, fields" and
/// doubled quotes ("") as an escaped quote.
CsvRow parse_csv_line(std::string_view line);

/// Parse a whole CSV document. Blank lines and lines starting with '#'
/// are skipped.
std::vector<CsvRow> parse_csv(std::string_view text);

/// A parsed row together with its 1-based physical line number in the
/// original text — what line-numbered ingest diagnostics point at.
struct NumberedCsvRow {
  std::size_t line = 0;
  CsvRow fields;
};

/// parse_csv(), keeping physical line numbers across skipped blank and
/// comment lines.
std::vector<NumberedCsvRow> parse_csv_numbered(std::string_view text);

/// Render one row, quoting any field that contains a comma, quote, or
/// leading/trailing whitespace.
std::string format_csv_row(const CsvRow& row);

/// Read an entire file into a string. Throws std::runtime_error on failure.
std::string read_file(const std::string& path);

/// Write a string to a file, truncating. Throws std::runtime_error on failure.
void write_file(const std::string& path, std::string_view content);

}  // namespace symcan

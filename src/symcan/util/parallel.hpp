#pragma once

// Fixed-size thread pool for the embarrassingly parallel fan-out paths
// (what-if sweeps, GA candidate evaluation, sensitivity probes). The one
// primitive is parallel_map: apply a function to every item and collect
// the results in input order, so callers observe bit-identical output
// whether the work ran on one thread or many. Exceptions are captured per
// item and the lowest-index one is rethrown after the batch completes —
// again independent of scheduling. With threads <= 1 (or a single item)
// everything runs inline on the calling thread and no pool exists.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace symcan {

class ParallelExecutor {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency(); threads == 1
  /// degrades to inline execution (no worker threads are created).
  explicit ParallelExecutor(int threads = 0);
  ~ParallelExecutor();
  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  /// Effective parallel width, calling thread included (>= 1).
  int threads() const { return threads_; }

  /// Resolve a requested thread count (0 => hardware_concurrency, >= 1).
  static int resolve(int requested);

  /// fn(i) for every i in [0, count); results returned in index order.
  /// If any invocations throw, the exception of the lowest failing index
  /// is rethrown once all items have been attempted.
  template <typename F>
  auto parallel_map_indexed(std::size_t count, F&& fn)
      -> std::vector<std::decay_t<std::invoke_result_t<F&, std::size_t>>> {
    using R = std::decay_t<std::invoke_result_t<F&, std::size_t>>;
    std::vector<std::optional<R>> slots(count);
    std::vector<std::exception_ptr> errors(count);
    run(count, [&](std::size_t i) {
      try {
        slots[i].emplace(fn(i));
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
    for (std::size_t i = 0; i < count; ++i)
      if (errors[i]) std::rethrow_exception(errors[i]);
    std::vector<R> out;
    out.reserve(count);
    for (auto& s : slots) out.push_back(std::move(*s));
    return out;
  }

  /// Order-preserving map over a vector: out[i] == fn(items[i]).
  template <typename T, typename F>
  auto parallel_map(const std::vector<T>& items, F&& fn)
      -> std::vector<std::decay_t<std::invoke_result_t<F&, const T&>>> {
    return parallel_map_indexed(items.size(), [&](std::size_t i) { return fn(items[i]); });
  }

  /// Tile size for a batch when the caller asked for automatic sharding
  /// (tile == 0): about four tiles per thread — small enough to balance
  /// uneven item costs, large enough that the per-tile dispatch (one
  /// atomic claim) amortizes over cheap items — clamped to [1, 64].
  static std::size_t auto_tile(std::size_t count, int threads);

  /// parallel_map_indexed with the index space sharded into fixed-size
  /// tiles: workers claim whole tiles, but every result still lands in
  /// its own index slot, so the output (values and which-exception-wins)
  /// is byte-identical for EVERY tile size and thread count — tiling
  /// changes only how work is batched onto threads. tile == 0 derives
  /// a size via auto_tile.
  template <typename F>
  auto parallel_map_indexed_tiled(std::size_t count, std::size_t tile, F&& fn)
      -> std::vector<std::decay_t<std::invoke_result_t<F&, std::size_t>>> {
    using R = std::decay_t<std::invoke_result_t<F&, std::size_t>>;
    const std::size_t width = tile == 0 ? auto_tile(count, threads_) : tile;
    std::vector<std::optional<R>> slots(count);
    std::vector<std::exception_ptr> errors(count);
    const std::size_t tiles = count == 0 ? 0 : (count + width - 1) / width;
    run(tiles, [&](std::size_t t) {
      const std::size_t lo = t * width;
      const std::size_t hi = lo + width < count ? lo + width : count;
      for (std::size_t i = lo; i < hi; ++i) {
        try {
          slots[i].emplace(fn(i));
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    });
    for (std::size_t i = 0; i < count; ++i)
      if (errors[i]) std::rethrow_exception(errors[i]);
    std::vector<R> out;
    out.reserve(count);
    for (auto& s : slots) out.push_back(std::move(*s));
    return out;
  }

  /// Order-preserving tiled map over a vector: out[i] == fn(items[i]).
  template <typename T, typename F>
  auto parallel_map_tiled(const std::vector<T>& items, std::size_t tile, F&& fn)
      -> std::vector<std::decay_t<std::invoke_result_t<F&, const T&>>> {
    return parallel_map_indexed_tiled(items.size(), tile,
                                      [&](std::size_t i) { return fn(items[i]); });
  }

 private:
  /// Dispatch body(i) over [0, count) to the pool and block until every
  /// index has completed. body must not throw (the template layer wraps).
  void run(std::size_t count, const std::function<void(std::size_t)>& body);
  void worker_loop();
  void drain(std::size_t count, const std::function<void(std::size_t)>& body);

  int threads_;
  std::vector<std::thread> workers_;

  std::mutex m_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* body_ = nullptr;  ///< Guarded by m_.
  std::size_t count_ = 0;                                   ///< Guarded by m_.
  std::uint64_t generation_ = 0;                            ///< Guarded by m_.
  int active_ = 0;  ///< Workers currently draining; guarded by m_.
  bool stop_ = false;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> done_{0};
};

}  // namespace symcan

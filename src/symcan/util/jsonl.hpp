#pragma once

// Shared single-line JSON scanning primitives for the JSONL trust
// boundaries (stream/trace_reader.cpp, serve/request.cpp). Both readers
// accept "one flat JSON object per line" grammars, and both must turn
// every malformed construct into a line-numbered diagnostic — never a
// crash, never a silently skewed value — so the escape/number handling
// lives here once instead of being forked per reader.
//
// These are deliberately not a general JSON parser: values are scalars
// only (the readers reject nested containers where their grammars do not
// allow them), numbers are parsed to exact integers or round-trip
// doubles, and \uXXXX escapes (including surrogate pairs; lone
// surrogates as WTF-8) decode to UTF-8 so parse ∘ serialize ∘ parse is
// the identity the fuzz harnesses check.

#include <cstddef>
#include <cstdint>
#include <string>

#include "symcan/util/diagnostics.hpp"

namespace symcan::jsonl {

/// Cursor over one line; all helpers leave the cursor after what they
/// consumed and report failures through the line's diagnostics.
struct Cursor {
  const char* p;
  const char* end;

  bool done() const { return p == end; }
  char peek() const { return *p; }
  void skip_ws() {
    while (p != end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
  }
  bool eat(char c) {
    skip_ws();
    if (p == end || *p != c) return false;
    ++p;
    return true;
  }
};

/// Append one code point as UTF-8 (lone surrogates as WTF-8, keeping
/// parse/serialize an identity even on inputs no sane writer produces).
void append_utf8(std::string& out, std::uint32_t cp);

/// A quoted JSON string with full escape handling. `what` names the
/// field in diagnostics ("key", "matrix_csv", ...).
bool parse_string(Cursor& c, std::size_t line_no, const char* what, std::string& out,
                  Diagnostics& diags);

/// A strict integer: JSON permits fractions and exponents, the JSONL
/// grammars here do not, so `1.5` and `1e9` are diagnosed.
bool parse_i64(Cursor& c, std::size_t line_no, const char* what, std::int64_t& out,
               Diagnostics& diags);

/// A finite JSON number (integer or fraction/exponent form).
bool parse_double(Cursor& c, std::size_t line_no, const char* what, double& out,
                  Diagnostics& diags);

/// The literals true / false.
bool parse_bool(Cursor& c, std::size_t line_no, const char* what, bool& out, Diagnostics& diags);

/// Skip a scalar value of an unknown key; nested containers are rejected
/// (nothing in the line grammars nests, and skipping them faithfully
/// would turn these readers into full JSON parsers).
bool skip_scalar(Cursor& c, std::size_t line_no, Diagnostics& diags);

}  // namespace symcan::jsonl

#pragma once

// Lightweight aligned-text table printer used by benches and examples to
// render paper-style result tables on stdout.

#include <ostream>
#include <string>
#include <vector>

namespace symcan {

/// Collects rows of string cells and prints them with aligned columns.
class TextTable {
 public:
  /// Set the header row. Resets any previously set header.
  void header(std::vector<std::string> cells);

  /// Append a data row. Rows may have differing lengths.
  void row(std::vector<std::string> cells);

  /// Render with a separator line beneath the header.
  void print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper returning std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Render an ASCII sparkline/bar of `value` within [0, maxv] using `width`
/// '#' characters; used for textual figure rendering.
std::string ascii_bar(double value, double maxv, int width);

}  // namespace symcan

#include "symcan/util/jsonl.hpp"

#include <charconv>
#include <cmath>

namespace symcan::jsonl {

void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    // Lone surrogates are encoded as-is (WTF-8): the exporters pass
    // bytes >= 0x20 through raw, so this keeps parse/serialize an
    // identity even on inputs no sane recorder writes.
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

namespace {

/// Four hex digits after \u; returns 0x110000 on failure.
std::uint32_t parse_hex4(Cursor& c) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    if (c.done()) return 0x110000;
    const char ch = *c.p++;
    v <<= 4;
    if (ch >= '0' && ch <= '9') v |= static_cast<std::uint32_t>(ch - '0');
    else if (ch >= 'a' && ch <= 'f') v |= static_cast<std::uint32_t>(ch - 'a' + 10);
    else if (ch >= 'A' && ch <= 'F') v |= static_cast<std::uint32_t>(ch - 'A' + 10);
    else return 0x110000;
  }
  return v;
}

}  // namespace

bool parse_string(Cursor& c, std::size_t line_no, const char* what, std::string& out,
                  Diagnostics& diags) {
  if (!c.eat('"')) {
    diags.error(line_no, std::string("expected string for ") + what);
    return false;
  }
  out.clear();
  while (true) {
    if (c.done()) {
      diags.error(line_no, std::string("unterminated string for ") + what);
      return false;
    }
    const char ch = *c.p++;
    if (ch == '"') return true;
    if (static_cast<unsigned char>(ch) < 0x20) {
      diags.error(line_no, std::string("raw control character in string for ") + what);
      return false;
    }
    if (ch != '\\') {
      out.push_back(ch);
      continue;
    }
    if (c.done()) {
      diags.error(line_no, std::string("dangling escape in string for ") + what);
      return false;
    }
    const char esc = *c.p++;
    switch (esc) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        std::uint32_t cp = parse_hex4(c);
        if (cp > 0x10FFFF) {
          diags.error(line_no, std::string("bad \\u escape in string for ") + what);
          return false;
        }
        if (cp >= 0xD800 && cp <= 0xDBFF && c.end - c.p >= 6 && c.p[0] == '\\' && c.p[1] == 'u') {
          // High surrogate followed by a \u escape: try to pair them.
          Cursor save = c;
          c.p += 2;
          const std::uint32_t lo = parse_hex4(c);
          if (lo >= 0xDC00 && lo <= 0xDFFF) {
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else {
            c = save;  // Not a low surrogate; emit the lone high one.
          }
        }
        append_utf8(out, cp);
        break;
      }
      default:
        diags.error(line_no, std::string("unknown escape '\\") + esc + "' in string for " + what);
        return false;
    }
  }
}

bool parse_i64(Cursor& c, std::size_t line_no, const char* what, std::int64_t& out,
               Diagnostics& diags) {
  c.skip_ws();
  const char* begin = c.p;
  if (c.p != c.end && *c.p == '-') ++c.p;
  while (c.p != c.end && *c.p >= '0' && *c.p <= '9') ++c.p;
  // JSON permits fractions and exponents; the line grammars do not.
  if (c.p != c.end && (*c.p == '.' || *c.p == 'e' || *c.p == 'E')) {
    diags.error(line_no, std::string(what) + " must be an integer");
    return false;
  }
  std::int64_t v = 0;
  const auto res = std::from_chars(begin, c.p, v);
  if (res.ec != std::errc{} || res.ptr != c.p || begin == c.p) {
    diags.error(line_no, std::string("bad integer for ") + what);
    return false;
  }
  out = v;
  return true;
}

bool parse_double(Cursor& c, std::size_t line_no, const char* what, double& out,
                  Diagnostics& diags) {
  c.skip_ws();
  const char* begin = c.p;
  // Consume exactly JSON number syntax (so `nan`, `inf`, `0x..` never
  // reach from_chars) and let from_chars do the value conversion.
  if (c.p != c.end && *c.p == '-') ++c.p;
  while (c.p != c.end && *c.p >= '0' && *c.p <= '9') ++c.p;
  if (c.p != c.end && *c.p == '.') {
    ++c.p;
    while (c.p != c.end && *c.p >= '0' && *c.p <= '9') ++c.p;
  }
  if (c.p != c.end && (*c.p == 'e' || *c.p == 'E')) {
    ++c.p;
    if (c.p != c.end && (*c.p == '+' || *c.p == '-')) ++c.p;
    while (c.p != c.end && *c.p >= '0' && *c.p <= '9') ++c.p;
  }
  double v = 0;
  const auto res = std::from_chars(begin, c.p, v);
  if (res.ec != std::errc{} || res.ptr != c.p || begin == c.p || !std::isfinite(v)) {
    diags.error(line_no, std::string("bad number for ") + what);
    return false;
  }
  out = v;
  return true;
}

bool parse_bool(Cursor& c, std::size_t line_no, const char* what, bool& out, Diagnostics& diags) {
  c.skip_ws();
  const auto match = [&](const char* lit, std::size_t n) {
    if (static_cast<std::size_t>(c.end - c.p) < n) return false;
    for (std::size_t i = 0; i < n; ++i)
      if (c.p[i] != lit[i]) return false;
    c.p += n;
    return true;
  };
  if (match("true", 4)) {
    out = true;
    return true;
  }
  if (match("false", 5)) {
    out = false;
    return true;
  }
  diags.error(line_no, std::string("expected true or false for ") + what);
  return false;
}

bool skip_scalar(Cursor& c, std::size_t line_no, Diagnostics& diags) {
  c.skip_ws();
  if (c.done()) {
    diags.error(line_no, "missing value");
    return false;
  }
  const char ch = c.peek();
  if (ch == '"') {
    std::string ignored;
    return parse_string(c, line_no, "unknown key", ignored, diags);
  }
  if (ch == '{' || ch == '[') {
    diags.error(line_no, "nested containers are not part of the line format");
    return false;
  }
  // Number / true / false / null: consume the bare token.
  const char* begin = c.p;
  while (!c.done() && *c.p != ',' && *c.p != '}' && *c.p != ' ' && *c.p != '\t' && *c.p != '\r')
    ++c.p;
  if (begin == c.p) {
    diags.error(line_no, "missing value");
    return false;
  }
  return true;
}

}  // namespace symcan::jsonl

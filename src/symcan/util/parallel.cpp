#include "symcan/util/parallel.hpp"

#include <chrono>
#include <cstdio>

#include "symcan/obs/obs.hpp"

namespace symcan {

int ParallelExecutor::resolve(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::size_t ParallelExecutor::auto_tile(std::size_t count, int threads) {
  if (count == 0) return 1;
  const std::size_t slots = static_cast<std::size_t>(threads) * 4;
  const std::size_t tile = (count + slots - 1) / slots;
  if (tile < 1) return 1;
  return tile > 64 ? 64 : tile;
}

ParallelExecutor::ParallelExecutor(int threads) : threads_{resolve(threads)} {
  // The calling thread participates in every run, so the pool holds one
  // worker fewer than the requested width.
  for (int i = 1; i < threads_; ++i)
    workers_.emplace_back([this, i] {
      char name[32];
      std::snprintf(name, sizeof name, "symcan-worker-%d", i);
      obs::set_thread_name(name);
      worker_loop();
    });
}

ParallelExecutor::~ParallelExecutor() {
  {
    std::lock_guard<std::mutex> lk{m_};
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ParallelExecutor::drain(std::size_t count, const std::function<void(std::size_t)>& body) {
  for (;;) {
    const std::size_t i = next_.fetch_add(1);
    if (i >= count) return;
    body(i);
    if (done_.fetch_add(1) + 1 == count) {
      std::lock_guard<std::mutex> lk{m_};
      done_cv_.notify_all();
    }
  }
}

void ParallelExecutor::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t count = 0;
    {
      std::unique_lock<std::mutex> lk{m_};
      work_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      body = body_;
      count = count_;
      ++active_;
    }
    drain(count, *body);
    {
      std::lock_guard<std::mutex> lk{m_};
      --active_;
    }
    done_cv_.notify_all();
  }
}

void ParallelExecutor::run(std::size_t count, const std::function<void(std::size_t)>& body) {
  if (count == 0) return;

  // Observability: when enabled, dispatch a wrapper that times each task.
  // Handles are fetched once per batch (registry lock), recording inside
  // the wrapper is wait-free; when disabled this whole block is one
  // relaxed load and `effective` aliases `body` untouched.
  const std::function<void(std::size_t)>* effective = &body;
  std::function<void(std::size_t)> timed;
  if (obs::enabled()) {
    auto& m = obs::metrics();
    m.counter("parallel.batches").add(1);
    m.counter("parallel.tasks").add(static_cast<std::int64_t>(count));
    m.gauge("parallel.queue_depth").set(static_cast<double>(count));
    m.gauge("parallel.width").set(static_cast<double>(threads_));
    obs::Histogram& task_us = m.histogram("parallel.task_us");
    // Propagate the caller's trace context into the workers so spans a
    // task records land in the same flow tree as the dispatching span.
    const std::uint64_t flow = obs::current_flow();
    timed = [&body, &task_us, flow](std::size_t i) {
      obs::FlowScope flow_scope{flow};
      const auto t0 = std::chrono::steady_clock::now();
      body(i);
      const auto dt = std::chrono::steady_clock::now() - t0;
      task_us.observe(std::chrono::duration<double, std::micro>(dt).count());
    };
    effective = &timed;
  }

  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) (*effective)(i);
    return;
  }
  {
    std::unique_lock<std::mutex> lk{m_};
    // A straggler from the previous run may still hold a reference to the
    // old body and dispenser; wait until everyone is back in the waiting
    // room before redirecting them.
    done_cv_.wait(lk, [&] { return active_ == 0; });
    body_ = effective;
    count_ = count;
    next_.store(0);
    done_.store(0);
    ++generation_;
  }
  work_cv_.notify_all();
  drain(count, *effective);
  {
    std::unique_lock<std::mutex> lk{m_};
    done_cv_.wait(lk, [&] { return done_.load() >= count; });
  }
}

}  // namespace symcan

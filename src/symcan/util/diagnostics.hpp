#pragma once

// Typed diagnostics for the ingest layer.
//
// K-Matrices, DBC files and data sheets cross the OEM/supplier boundary
// as *files* (paper Section 5, Figure 6), which makes the parsers the
// supply-chain trust boundary of the toolkit. Instead of throwing on the
// first malformed construct, the loaders collect structured, line-numbered
// records into a Diagnostics sink, so one pass over a bad file reports
// every problem, and the CLI can render them uniformly and exit 2.
//
// Policy knob: under kLenient, recoverable oddities (a zero cycle time, a
// stray signal line) are recorded as warnings and parsing proceeds with a
// documented substitute; under kStrict every warning is escalated to an
// error. Strict therefore fails on a superset of the inputs lenient fails
// on — a property the fuzz harness checks.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace symcan {

enum class Severity : std::uint8_t {
  kWarning,  ///< Recoverable; parsing continued with a documented substitute.
  kError,    ///< The input (or this record of it) is unusable.
};

const char* to_string(Severity s);

/// One diagnostic record. `line` is 1-based; 0 means "whole input".
/// `column` is 1-based; 0 means "unknown".
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string source;  ///< Input label, e.g. "DBC", "K-Matrix CSV".
  std::size_t line = 0;
  std::size_t column = 0;
  std::string message;
};

/// "DBC line 12: error: malformed message id 'zz'".
std::string to_string(const Diagnostic& d);

enum class DiagnosticPolicy : std::uint8_t {
  kLenient,  ///< Warnings stay warnings; parse continues where possible.
  kStrict,   ///< Warnings are escalated to errors.
};

/// Collector the ingest layer reports through.
///
/// Bounded: after kMaxRecorded records further entries only bump the
/// counters, so a hostile input with a million bad lines cannot balloon
/// memory. `exhausted()` tells a parser it can stop early.
class Diagnostics {
 public:
  static constexpr std::size_t kMaxRecorded = 64;

  explicit Diagnostics(DiagnosticPolicy policy = DiagnosticPolicy::kLenient,
                       std::string source = "input")
      : policy_{policy}, source_{std::move(source)} {}

  DiagnosticPolicy policy() const { return policy_; }
  const std::string& source() const { return source_; }
  void set_source(std::string source) { source_ = std::move(source); }

  void error(std::size_t line, std::string message) {
    record(Severity::kError, line, 0, std::move(message));
  }
  void error_at(std::size_t line, std::size_t column, std::string message) {
    record(Severity::kError, line, column, std::move(message));
  }
  /// Escalated to an error under DiagnosticPolicy::kStrict.
  void warning(std::size_t line, std::string message) {
    record(policy_ == DiagnosticPolicy::kStrict ? Severity::kError : Severity::kWarning, line, 0,
           std::move(message));
  }

  bool ok() const { return error_count_ == 0; }
  std::size_t error_count() const { return error_count_; }
  std::size_t warning_count() const { return warning_count_; }
  /// True once the bounded store is full; parsers may bail out early.
  bool exhausted() const { return error_count_ + warning_count_ >= kMaxRecorded; }

  const std::vector<Diagnostic>& entries() const { return entries_; }

  /// All recorded entries, one per line, plus a trailing "... and N more"
  /// marker when the bounded store overflowed.
  std::string format() const;

  /// Throws ParseError carrying *this when any error was recorded.
  void throw_if_failed() const;

 private:
  void record(Severity severity, std::size_t line, std::size_t column, std::string message);

  DiagnosticPolicy policy_;
  std::string source_;
  std::vector<Diagnostic> entries_;
  std::size_t error_count_ = 0;
  std::size_t warning_count_ = 0;
};

/// Exception form of a failed parse, for the throwing convenience
/// wrappers (load_dbc, load_kmatrix, ...). what() is the formatted
/// diagnostic list, so legacy catch sites keep printing useful,
/// line-numbered text; new code can inspect diagnostics() directly.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(Diagnostics diagnostics);

  const Diagnostics& diagnostics() const { return diagnostics_; }

 private:
  Diagnostics diagnostics_;
};

}  // namespace symcan

#include "symcan/util/table.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace symcan {

void TextTable::header(std::vector<std::string> cells) { header_ = std::move(cells); }

void TextTable::row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width;
  auto widen = [&](const std::vector<std::string>& r) {
    if (r.size() > width.size()) width.resize(r.size(), 0);
    for (std::size_t i = 0; i < r.size(); ++i) width[i] = std::max(width[i], r[i].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      os << r[i];
      if (i + 1 < r.size()) os << std::string(width[i] - r[i].size() + 2, ' ');
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < width.size(); ++i) total += width[i] + (i + 1 < width.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
}

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

std::string ascii_bar(double value, double maxv, int width) {
  if (maxv <= 0 || width <= 0) return {};
  double frac = value / maxv;
  frac = std::clamp(frac, 0.0, 1.0);
  const int n = static_cast<int>(frac * width + 0.5);
  return std::string(static_cast<std::size_t>(n), '#');
}

}  // namespace symcan

#pragma once

// Strong time types for schedulability analysis.
//
// All analysis code works on integer nanoseconds to keep fixed-point
// iterations exact and platform-independent. A CAN bit at 1 Mbit/s is
// 1000 ns, at 500 kbit/s it is 2000 ns, so int64 nanoseconds comfortably
// cover every window length the analyses iterate over (hours of bus time)
// without rounding drift.

#include <cassert>
#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>

namespace symcan {

/// Saturating scalar arithmetic on int64 nanosecond counts.
///
/// K-Matrices cross an organizational boundary as files, so every value a
/// duration is built from may be hostile. Instead of wrapping (signed
/// overflow, UB), these clamp to +/- int64 max; Duration's operators are
/// built on them, so a poisoned matrix drives windows to
/// Duration::infinite() (reported unschedulable) rather than into UB.
/// Saturation clamps symmetrically to +/- max: the positive rail is
/// Duration::infinite(), and negating either rail yields the other.
constexpr std::int64_t sat_add_i64(std::int64_t a, std::int64_t b) {
  constexpr std::int64_t hi = std::numeric_limits<std::int64_t>::max();
#if defined(__GNUC__) || defined(__clang__)
  std::int64_t r = 0;
  if (!__builtin_add_overflow(a, b, &r)) return r;
  return b > 0 ? hi : -hi;
#else
  if (b > 0 && a > hi - b) return hi;
  if (b < 0 && a < std::numeric_limits<std::int64_t>::min() - b) return -hi;
  return a + b;
#endif
}

constexpr std::int64_t sat_sub_i64(std::int64_t a, std::int64_t b) {
  constexpr std::int64_t hi = std::numeric_limits<std::int64_t>::max();
#if defined(__GNUC__) || defined(__clang__)
  std::int64_t r = 0;
  if (!__builtin_sub_overflow(a, b, &r)) return r;
  return b < 0 ? hi : -hi;
#else
  if (b < 0 && a > hi + b) return hi;
  if (b > 0 && a < std::numeric_limits<std::int64_t>::min() + b) return -hi;
  return a - b;
#endif
}

constexpr std::int64_t sat_mul_i64(std::int64_t a, std::int64_t b) {
  constexpr std::int64_t hi = std::numeric_limits<std::int64_t>::max();
#if defined(__GNUC__) || defined(__clang__)
  std::int64_t r = 0;
  if (!__builtin_mul_overflow(a, b, &r)) return r;
  return ((a > 0) == (b > 0)) ? hi : -hi;
#else
  if (a == 0 || b == 0) return 0;
  if (a > 0 ? (b > 0 ? a > hi / b : b < -hi / a) : (b > 0 ? a < -hi / b : b < hi / a))
    return ((a > 0) == (b > 0)) ? hi : -hi;
  return a * b;
#endif
}

constexpr std::int64_t sat_neg_i64(std::int64_t a) {
  if (a == std::numeric_limits<std::int64_t>::min())
    return std::numeric_limits<std::int64_t>::max();
  return -a;
}

/// A signed time span with nanosecond resolution.
///
/// Value type; totally ordered. Arithmetic saturates at
/// +/- infinite() instead of wrapping: overflow cannot occur in untrusted
/// inputs, it merely drives the value onto the infinity rail, where
/// schedulability verdicts treat it as "unbounded". Negative durations are
/// representable (they arise as intermediate slack values) but most APIs
/// document non-negative inputs.
class Duration {
 public:
  constexpr Duration() = default;

  /// Named constructors. Prefer these over the raw-count constructor.
  /// Unit conversions saturate like all other arithmetic, so
  /// Duration::ms(untrusted) is safe for any int64 input.
  static constexpr Duration ns(std::int64_t v) { return Duration{v}; }
  static constexpr Duration us(std::int64_t v) { return Duration{sat_mul_i64(v, 1000)}; }
  static constexpr Duration ms(std::int64_t v) { return Duration{sat_mul_i64(v, 1'000'000)}; }
  static constexpr Duration s(std::int64_t v) { return Duration{sat_mul_i64(v, 1'000'000'000)}; }

  /// Largest representable duration; used as "unbounded / not schedulable"
  /// and as the positive saturation rail of all arithmetic.
  static constexpr Duration infinite() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }
  static constexpr Duration zero() { return Duration{0}; }

  constexpr std::int64_t count_ns() const { return ns_; }
  constexpr double as_us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double as_ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double as_s() const { return static_cast<double>(ns_) / 1e9; }

  constexpr bool is_infinite() const { return *this == infinite(); }

  friend constexpr auto operator<=>(Duration, Duration) = default;

  constexpr Duration operator+(Duration o) const { return Duration{sat_add_i64(ns_, o.ns_)}; }
  constexpr Duration operator-(Duration o) const { return Duration{sat_sub_i64(ns_, o.ns_)}; }
  constexpr Duration operator-() const { return Duration{sat_neg_i64(ns_)}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{sat_mul_i64(ns_, k)}; }
  friend constexpr Duration operator*(std::int64_t k, Duration d) { return d * k; }

  constexpr Duration& operator+=(Duration o) {
    ns_ = sat_add_i64(ns_, o.ns_);
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    ns_ = sat_sub_i64(ns_, o.ns_);
    return *this;
  }

  /// Truncating integer division by another duration (how many `o` fit).
  /// The single overflowing quotient (min / -1) saturates.
  constexpr std::int64_t operator/(Duration o) const {
    assert(o.ns_ != 0);
    if (o.ns_ == -1 && ns_ == std::numeric_limits<std::int64_t>::min())
      return std::numeric_limits<std::int64_t>::max();
    return ns_ / o.ns_;
  }
  /// Scalar division, truncating toward zero.
  constexpr Duration operator/(std::int64_t k) const {
    assert(k != 0);
    if (k == -1 && ns_ == std::numeric_limits<std::int64_t>::min())
      return Duration{std::numeric_limits<std::int64_t>::max()};
    return Duration{ns_ / k};
  }

  friend std::ostream& operator<<(std::ostream& os, Duration d);

 private:
  constexpr explicit Duration(std::int64_t v) : ns_{v} {}
  std::int64_t ns_ = 0;
};

/// ceil(a / b) for positive durations. Core operation of every
/// response-time fixed point: the number of activations of a periodic
/// source within a half-open window. Written as (a-1)/b + 1 so it cannot
/// overflow even at a == infinite().
constexpr std::int64_t ceil_div(Duration a, Duration b) {
  assert(b > Duration::zero());
  const std::int64_t an = a.count_ns();
  const std::int64_t bn = b.count_ns();
  if (an <= 0) return 0;
  return (an - 1) / bn + 1;
}

/// floor(a / b) for b > 0; negative a floors toward -infinity.
constexpr std::int64_t floor_div(Duration a, Duration b) {
  assert(b > Duration::zero());
  const std::int64_t an = a.count_ns();
  const std::int64_t bn = b.count_ns();
  std::int64_t q = an / bn;
  if ((an % bn != 0) && (an < 0)) --q;
  return q;
}

constexpr Duration min(Duration a, Duration b) { return a < b ? a : b; }
constexpr Duration max(Duration a, Duration b) { return a > b ? a : b; }

/// Human-readable rendering with an adaptive unit ("1.25 ms", "500 ns").
std::string to_string(Duration d);

}  // namespace symcan

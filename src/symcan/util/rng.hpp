#pragma once

// Deterministic, seedable random number generation.
//
// Every stochastic component in symcan (workload generation, the genetic
// optimizer, simulator jitter/error sampling) draws from this engine so
// that whole experiments replay bit-identically from a single seed.

#include <algorithm>
#include <cstdint>
#include <random>

#include "symcan/util/time.hpp"

namespace symcan {

/// Thin wrapper around std::mt19937_64 with convenience samplers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_{seed} {}

  /// Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) {
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }

  /// Uniform duration in [lo, hi], inclusive, at nanosecond granularity.
  Duration uniform_duration(Duration lo, Duration hi) {
    return Duration::ns(uniform_int(lo.count_ns(), hi.count_ns()));
  }

  /// Bernoulli trial with success probability p in [0, 1].
  bool chance(double p) { return std::bernoulli_distribution{p}(engine_); }

  /// Index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Exponentially distributed duration with the given mean (> 0).
  Duration exponential(Duration mean) {
    const double lambda = 1.0 / static_cast<double>(mean.count_ns());
    const double v = std::exponential_distribution<double>{lambda}(engine_);
    return Duration::ns(static_cast<std::int64_t>(v));
  }

  /// Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    std::shuffle(c.begin(), c.end(), engine_);
  }

  /// Derive an independent child generator (for parallel components).
  Rng fork() { return Rng{engine_()}; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Derive a statistically independent stream seed from a base seed and up
/// to two stream coordinates (e.g. generation and individual index), via
/// the SplitMix64 finalizer. Components that evaluate work in parallel
/// seed one Rng per work item from this, so the drawn numbers depend only
/// on (base, a, b) — never on thread scheduling or evaluation order —
/// and serial and parallel runs replay bit-identically.
inline std::uint64_t stream_seed(std::uint64_t base, std::uint64_t a, std::uint64_t b = 0) {
  std::uint64_t z = base;
  z += 0x9e3779b97f4a7c15ULL * (a + 1);
  z += 0xbf58476d1ce4e5b9ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace symcan

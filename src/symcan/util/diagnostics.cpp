#include "symcan/util/diagnostics.hpp"

#include <sstream>

namespace symcan {

const char* to_string(Severity s) { return s == Severity::kError ? "error" : "warning"; }

std::string to_string(const Diagnostic& d) {
  std::ostringstream os;
  os << d.source;
  if (d.line > 0) {
    os << " line " << d.line;
    if (d.column > 0) os << ", column " << d.column;
  }
  os << ": " << to_string(d.severity) << ": " << d.message;
  return os.str();
}

void Diagnostics::record(Severity severity, std::size_t line, std::size_t column,
                         std::string message) {
  if (severity == Severity::kError)
    ++error_count_;
  else
    ++warning_count_;
  if (entries_.size() >= kMaxRecorded) return;  // counters keep the true totals
  Diagnostic d;
  d.severity = severity;
  d.source = source_;
  d.line = line;
  d.column = column;
  d.message = std::move(message);
  entries_.push_back(std::move(d));
}

std::string Diagnostics::format() const {
  std::ostringstream os;
  for (const auto& d : entries_) os << to_string(d) << "\n";
  const std::size_t total = error_count_ + warning_count_;
  if (total > entries_.size())
    os << "... and " << (total - entries_.size()) << " more not shown\n";
  return os.str();
}

void Diagnostics::throw_if_failed() const {
  if (!ok()) throw ParseError{*this};
}

namespace {
std::string parse_error_what(const Diagnostics& d) {
  std::ostringstream os;
  os << d.source() << ": " << d.error_count() << " error(s)";
  if (d.warning_count() > 0) os << ", " << d.warning_count() << " warning(s)";
  const std::string body = d.format();
  if (!body.empty()) os << "\n" << body;
  return os.str();
}
}  // namespace

ParseError::ParseError(Diagnostics diagnostics)
    : std::runtime_error(parse_error_what(diagnostics)), diagnostics_{std::move(diagnostics)} {}

}  // namespace symcan

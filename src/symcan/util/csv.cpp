#include "symcan/util/csv.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace symcan {

CsvRow parse_csv_line(std::string_view line) {
  CsvRow out;
  std::string field;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      out.push_back(std::move(field));
      field.clear();
    } else if (c == '\r') {
      // Tolerate CRLF line endings.
    } else {
      field.push_back(c);
    }
  }
  out.push_back(std::move(field));
  return out;
}

std::vector<CsvRow> parse_csv(std::string_view text) {
  std::vector<CsvRow> rows;
  for (auto& [line, fields] : parse_csv_numbered(text)) rows.push_back(std::move(fields));
  return rows;
}

std::vector<NumberedCsvRow> parse_csv_numbered(std::string_view text) {
  std::vector<NumberedCsvRow> rows;
  std::size_t start = 0;
  std::size_t line_no = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty() && line.front() != '#')
      rows.push_back(NumberedCsvRow{line_no, parse_csv_line(line)});
    if (end == text.size()) break;
    start = end + 1;
  }
  return rows;
}

namespace {
bool needs_quoting(const std::string& f) {
  if (f.empty()) return false;
  if (std::isspace(static_cast<unsigned char>(f.front())) ||
      std::isspace(static_cast<unsigned char>(f.back())))
    return true;
  return f.find_first_of(",\"") != std::string::npos;
}
}  // namespace

std::string format_csv_row(const CsvRow& row) {
  std::string out;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) out.push_back(',');
    const std::string& f = row[i];
    if (needs_quoting(f)) {
      out.push_back('"');
      for (char c : f) {
        if (c == '"') out.push_back('"');
        out.push_back(c);
      }
      out.push_back('"');
    } else {
      out += f;
    }
  }
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error("cannot open file for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, std::string_view content) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) throw std::runtime_error("cannot open file for writing: " + path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace symcan

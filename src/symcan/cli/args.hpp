#pragma once

// Minimal argument parsing for the symcan command-line tool. Kept as a
// library so the commands are unit-testable without spawning processes.
//
// Grammar:  symcan <command> [positionals...] [--key value]... [--flag]...

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace symcan::cli {

class Args {
 public:
  /// Parse raw arguments (excluding argv[0] and the command word).
  /// `flag_names` lists the options that take no value; everything else
  /// starting with "--" expects one. Throws std::invalid_argument on a
  /// missing value or an unknown flag-style token at the end.
  static Args parse(const std::vector<std::string>& raw,
                    const std::vector<std::string>& flag_names = {});

  const std::vector<std::string>& positionals() const { return positionals_; }

  bool has_flag(const std::string& name) const { return flags_.count(name) > 0; }

  std::optional<std::string> option(const std::string& name) const;
  std::string option_or(const std::string& name, const std::string& fallback) const;

  /// Typed accessors; throw std::invalid_argument with the option name on
  /// malformed numbers.
  std::int64_t int_option_or(const std::string& name, std::int64_t fallback) const;
  double double_option_or(const std::string& name, double fallback) const;

  /// Like int_option_or but additionally rejects negative values (counts
  /// such as --jobs, --population, --millis).
  std::int64_t count_option_or(const std::string& name, std::int64_t fallback) const;

  /// Like count_option_or but additionally rejects zero (sizes such as
  /// --messages or --generations where 0 is meaningless).
  std::int64_t positive_option_or(const std::string& name, std::int64_t fallback) const;

  /// Output-file path option: rejects empty values and values that look
  /// like another option ("--trace-out --metrics-out m.json" is a missing
  /// value, not a file named "--metrics-out"). nullopt when absent.
  std::optional<std::string> path_option(const std::string& name) const;

  /// Options that were provided but never read — surfaced as errors so
  /// typos do not silently change behaviour.
  std::vector<std::string> unused() const;

 private:
  std::vector<std::string> positionals_;
  std::map<std::string, std::string> options_;
  std::map<std::string, bool> flags_;
  mutable std::map<std::string, bool> read_;
};

}  // namespace symcan::cli

#include "symcan/cli/args.hpp"

#include <algorithm>
#include <charconv>
#include <stdexcept>

namespace symcan::cli {

Args Args::parse(const std::vector<std::string>& raw,
                 const std::vector<std::string>& flag_names) {
  Args out;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const std::string& tok = raw[i];
    if (tok.rfind("--", 0) == 0) {
      const std::string name = tok.substr(2);
      if (name.empty()) throw std::invalid_argument("empty option name '--'");
      if (std::find(flag_names.begin(), flag_names.end(), name) != flag_names.end()) {
        out.flags_[name] = true;
      } else {
        if (i + 1 >= raw.size())
          throw std::invalid_argument("option --" + name + " expects a value");
        out.options_[name] = raw[++i];
      }
    } else {
      out.positionals_.push_back(tok);
    }
  }
  return out;
}

std::optional<std::string> Args::option(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  read_[name] = true;
  return it->second;
}

std::string Args::option_or(const std::string& name, const std::string& fallback) const {
  return option(name).value_or(fallback);
}

std::int64_t Args::int_option_or(const std::string& name, std::int64_t fallback) const {
  const auto v = option(name);
  if (!v) return fallback;
  std::int64_t parsed = 0;
  const auto res = std::from_chars(v->data(), v->data() + v->size(), parsed);
  if (res.ec != std::errc{} || res.ptr != v->data() + v->size())
    throw std::invalid_argument("option --" + name + ": '" + *v + "' is not an integer");
  return parsed;
}

std::int64_t Args::count_option_or(const std::string& name, std::int64_t fallback) const {
  const std::int64_t v = int_option_or(name, fallback);
  if (v < 0)
    throw std::invalid_argument("option --" + name + " must be >= 0");
  return v;
}

std::int64_t Args::positive_option_or(const std::string& name, std::int64_t fallback) const {
  const std::int64_t v = int_option_or(name, fallback);
  if (v <= 0)
    throw std::invalid_argument("option --" + name + " must be > 0");
  return v;
}

std::optional<std::string> Args::path_option(const std::string& name) const {
  const auto v = option(name);
  if (!v) return std::nullopt;
  if (v->empty())
    throw std::invalid_argument("option --" + name + " expects a non-empty path");
  if (v->rfind("--", 0) == 0)
    throw std::invalid_argument("option --" + name + " expects a path, got '" + *v + "'");
  return v;
}

double Args::double_option_or(const std::string& name, double fallback) const {
  const auto v = option(name);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + ": '" + *v + "' is not a number");
  }
}

std::vector<std::string> Args::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : options_)
    if (!read_.count(name)) out.push_back(name);
  return out;
}

}  // namespace symcan::cli

#include "symcan/cli/commands.hpp"

#include <iostream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "symcan/analysis/load.hpp"
#include "symcan/analysis/presets.hpp"
#include "symcan/analysis/provenance.hpp"
#include "symcan/can/dbc_import.hpp"
#include "symcan/can/kmatrix_io.hpp"
#include "symcan/cli/args.hpp"
#include "symcan/obs/export.hpp"
#include "symcan/obs/obs.hpp"
#include "symcan/obs/prometheus.hpp"
#include "symcan/opt/ga.hpp"
#include "symcan/pipeline/stages.hpp"
#include "symcan/sensitivity/extensibility.hpp"
#include "symcan/serve/core.hpp"
#include "symcan/serve/server.hpp"
#include "symcan/supplychain/budget.hpp"
#include "symcan/sensitivity/robustness.hpp"
#include "symcan/sim/simulator.hpp"
#include "symcan/sim/trace_export.hpp"
#include "symcan/sim/trace_stats.hpp"
#include "symcan/sim/validation.hpp"
#include "symcan/stream/analyzer.hpp"
#include "symcan/stream/health.hpp"
#include "symcan/stream/trace_reader.hpp"
#include "symcan/util/csv.hpp"
#include "symcan/util/diagnostics.hpp"
#include "symcan/util/table.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan::cli {

namespace {

/// Shared option handling: --worst-case / --best-case assumption presets
/// and the --jitter fraction applied to (unknown) jitters.
pipeline::AssumptionPreset preset_from(const Args& args) {
  if (args.has_flag("worst-case")) return pipeline::AssumptionPreset::kWorstCase;
  if (args.has_flag("best-case")) return pipeline::AssumptionPreset::kBestCase;
  return pipeline::AssumptionPreset::kDefault;
}

CanRtaConfig assumptions_from(const Args& args) {
  return pipeline::assumptions_for(preset_from(args));
}

/// --strict escalates ingest warnings (zero cycle times, stray signal
/// lines, non-0|1 boolean columns, ...) to hard errors.
DiagnosticPolicy policy_from(const Args& args) {
  return args.has_flag("strict") ? DiagnosticPolicy::kStrict : DiagnosticPolicy::kLenient;
}

/// Load through the diagnostics-collecting parsers so a malformed file
/// reports every problem at once; ParseError is rendered by run_cli as
/// one line per diagnostic, exit code 2.
KMatrix load_matrix_file(const std::string& path, bool is_dbc, DiagnosticPolicy policy,
                         const DbcImportOptions& opt = {}) {
  Diagnostics diags{policy};
  const std::string text = read_file(path);
  auto km = is_dbc ? kmatrix_from_dbc(text, opt, diags) : kmatrix_from_csv(text, diags);
  diags.throw_if_failed();
  if (!km) throw ParseError{diags};
  return std::move(*km);
}

KMatrix load_matrix(const Args& args, std::size_t positional_index = 0) {
  if (args.positionals().size() <= positional_index)
    throw std::invalid_argument("missing K-Matrix path");
  const std::string& path = args.positionals()[positional_index];
  const bool is_dbc =
      args.has_flag("dbc") || (path.size() > 4 && path.substr(path.size() - 4) == ".dbc");
  KMatrix km = load_matrix_file(path, is_dbc, policy_from(args));
  const double jitter = args.double_option_or("jitter", -1.0);
  if (jitter >= 0) assume_jitter_fraction(km, jitter, args.has_flag("override-known"));
  return km;
}

/// --jobs N: worker threads for the parallel fan-out commands (sweep,
/// sensitivity, optimize, extend, report). 0 = one per hardware thread,
/// the default — results are bit-identical at any width, so there is no
/// reason not to use the whole machine interactively. 1 = serial.
int jobs_from(const Args& args) {
  return static_cast<int>(args.count_option_or("jobs", 0));
}

/// --tile N: work items per tile in the parallel fan-outs (sweep points,
/// GA individuals). 0 = auto-size from batch and thread count, the
/// default. Tiling affects scheduling only — every result lands in its
/// own index slot, so output is byte-identical at any tile size.
/// Negative or non-numeric values are rejected (exit 2).
int tile_from(const Args& args) {
  return static_cast<int>(args.count_option_or("tile", 0));
}

/// --rta-cache on|off: RTA memoization for the commands that re-analyze
/// edited matrices. Default on — cached verdicts are bit-identical to
/// fresh ones, so off exists only to measure the cache's effect.
/// --rta-cache-capacity N bounds the number of cached per-message
/// verdicts (summed over shards; rejected unless a positive integer).
RtaCacheConfig rta_cache_from(const Args& args) {
  const std::string v = args.option_or("rta-cache", "on");
  if (v != "on" && v != "off") throw std::invalid_argument("--rta-cache must be on|off");
  RtaCacheConfig cache;
  cache.enabled = v == "on";
  cache.capacity =
      static_cast<std::size_t>(args.positive_option_or("rta-cache-capacity", 65536));
  return cache;
}

void fail_on_unused(const Args& args) {
  const auto unused = args.unused();
  if (!unused.empty())
    throw std::invalid_argument("unknown option --" + unused.front());
}

int cmd_generate(const Args& args, std::ostream& out) {
  PowertrainConfig cfg = PowertrainConfig::case_study();
  cfg.seed = static_cast<std::uint64_t>(args.int_option_or("seed", 42));
  cfg.message_count = static_cast<int>(args.positive_option_or("messages", cfg.message_count));
  cfg.ecu_count = static_cast<int>(args.positive_option_or("ecus", cfg.ecu_count));
  cfg.target_utilization = args.double_option_or("util", cfg.target_utilization);
  cfg.bitrate_bps = args.positive_option_or("bitrate", cfg.bitrate_bps);
  const std::string output = args.option_or("out", "");
  KMatrix km = generate_powertrain(cfg);
  if (args.has_flag("tt-offsets")) {
    snap_periods(km, Duration::ms(1));
    assign_tt_offsets(km);
  }
  fail_on_unused(args);
  if (output.empty()) {
    out << kmatrix_to_csv(km);
  } else {
    save_kmatrix(km, output);
    out << "wrote " << km.size() << " messages to " << output << "\n";
  }
  return 0;
}

int cmd_analyze(const Args& args, std::ostream& out) {
  const KMatrix km = load_matrix(args);
  const CanRtaConfig cfg = assumptions_from(args);
  if (args.has_flag("prob")) {
    // Probabilistic mode: deadline-miss distributions instead of a
    // binary verdict. Probabilities are exact ppm integers; the
    // defaults are degenerate, reproducing the deterministic table's
    // verdicts and exit code bit-for-bit.
    pipeline::ProbSpec spec;
    spec.fault_ppm = args.int_option_or("fault-ppm", 1'000'000);
    spec.stuff_ppm = args.int_option_or("stuff-ppm", 1'000'000);
    spec.jitter_ppm = args.int_option_or("jitter-ppm", 1'000'000);
    spec.max_rungs = args.positive_option_or("max-rungs", 96);
    spec.jobs = jobs_from(args);
    spec.tile = tile_from(args);
    fail_on_unused(args);
    return pipeline::render_prob(km, cfg, spec, out);
  }
  fail_on_unused(args);
  return pipeline::render_analyze(km, cfg, out);
}

int cmd_sweep(const Args& args, std::ostream& out) {
  const KMatrix km = load_matrix(args);
  if (args.has_flag("prob")) {
    // Miss-probability vs error rate: log-spaced fault probabilities,
    // one probabilistic analysis per point. The rung ladders are shared
    // across points, so the sweep costs one ladder build plus cheap
    // binomial re-mixes.
    FaultSweepConfig cfg;
    cfg.rta = assumptions_from(args);
    cfg.from_ppm = args.int_option_or("from-ppm", 1'000'000);
    cfg.to_ppm = args.int_option_or("to-ppm", 1);
    cfg.points = static_cast<int>(args.positive_option_or("points", 13));
    cfg.stuff_ppm = args.int_option_or("stuff-ppm", 1'000'000);
    cfg.jitter_ppm = args.int_option_or("jitter-ppm", 1'000'000);
    cfg.max_rungs = args.positive_option_or("max-rungs", 96);
    cfg.parallelism = jobs_from(args);
    cfg.tile = tile_from(args);
    cfg.cache = rta_cache_from(args);
    fail_on_unused(args);
    const FaultSweepResult res = sweep_fault_probability(km, cfg);
    out << "fault_ppm,at_risk_fraction,worst_miss_ppm\n";
    for (std::size_t i = 0; i < res.fault_ppm.size(); ++i)
      out << strprintf("%lld,%.6f,%lld\n", static_cast<long long>(res.fault_ppm[i]),
                       res.at_risk_fraction(i), static_cast<long long>(res.worst_miss_ppm(i)));
    return 0;
  }
  JitterSweepConfig cfg;
  cfg.rta = assumptions_from(args);
  cfg.from = args.double_option_or("from", 0.0);
  cfg.to = args.double_option_or("to", 0.60);
  cfg.step = args.double_option_or("step", 0.05);
  cfg.parallelism = jobs_from(args);
  cfg.tile = tile_from(args);
  cfg.cache = rta_cache_from(args);
  fail_on_unused(args);
  const JitterSweepResult res = sweep_jitter(km, cfg);
  out << "jitter_fraction,miss_fraction,miss_count\n";
  for (std::size_t i = 0; i < res.fractions.size(); ++i)
    out << strprintf("%.4f,%.6f,%zu\n", res.fractions[i], res.miss_fraction(i),
                     res.results[i].miss_count());
  return 0;
}

int cmd_sensitivity(const Args& args, std::ostream& out) {
  const KMatrix km = load_matrix(args);
  JitterSweepConfig cfg;
  cfg.rta = assumptions_from(args);
  cfg.parallelism = jobs_from(args);
  cfg.tile = tile_from(args);
  cfg.cache = rta_cache_from(args);
  fail_on_unused(args);
  const SensitivityReport rep = analyze_sensitivity(km, cfg);
  TextTable t;
  t.header({"message", "class", "growth", "max tolerable jitter"});
  for (const auto& m : rep.messages)
    t.row({m.name, to_string(m.cls), strprintf("%+.0f%%", 100 * m.relative_growth),
           strprintf("%.1f%%", 100 * m.max_tolerable_fraction)});
  t.print(out);
  return 0;
}

int cmd_optimize(const Args& args, std::ostream& out) {
  const KMatrix km = load_matrix(args);
  pipeline::OptimizeSpec spec;
  spec.best_case = args.has_flag("best-case");
  spec.seed = static_cast<std::uint64_t>(args.int_option_or("seed", 7));
  spec.generations = static_cast<int>(args.positive_option_or("generations", 25));
  spec.population = static_cast<int>(args.positive_option_or("population", 32));
  spec.target_jitter = args.double_option_or("target-jitter", 0.25);
  spec.jobs = jobs_from(args);
  spec.tile = tile_from(args);
  spec.cache = rta_cache_from(args);
  const std::string output = args.option_or("out", "");
  fail_on_unused(args);

  if (output.empty()) return pipeline::render_optimize(km, spec, out);
  const pipeline::OptimizeOutcome o = pipeline::run_optimize(km, spec);
  out << strprintf("GA: %d evaluations, best misses %.0f, robustness cost %.3f\n",
                   o.result.evaluations, o.result.best.misses, o.result.best.robustness_cost);
  save_kmatrix(o.optimized, output);
  out << "wrote optimized matrix to " << output << "\n";
  return o.result.best.misses == 0 ? 0 : 1;
}

/// Shared --errors none|sporadic|burst [--error-gap-ms N] parsing for the
/// simulation commands. The gap is only read (and validated) when an
/// error process asks for it, exactly as before the pipeline refactor.
pipeline::ErrorSpec error_spec_from(const Args& args) {
  pipeline::ErrorSpec spec;
  spec.kind = args.option_or("errors", "none");
  if (spec.kind == "sporadic") spec.gap_ms = args.positive_option_or("error-gap-ms", 40);
  if (spec.kind == "burst") spec.gap_ms = args.positive_option_or("error-gap-ms", 25);
  return spec;
}

SimErrorProcess sim_errors_from(const Args& args) {
  return pipeline::sim_errors_for(error_spec_from(args));
}

int cmd_simulate(const Args& args, std::ostream& out) {
  const KMatrix km = load_matrix(args);
  SimConfig cfg;
  cfg.duration = Duration::ms(args.positive_option_or("millis", 2000));
  cfg.seed = static_cast<std::uint64_t>(args.int_option_or("seed", 1));
  cfg.errors = sim_errors_from(args);
  const std::optional<std::string> jsonl_out = args.path_option("trace-jsonl");
  const std::optional<std::string> chrome_out = args.path_option("trace-chrome");
  const std::optional<std::string> stats_json_out = args.path_option("stats-json");
  const bool print_stats = args.has_flag("stats");
  const Duration stats_window = Duration::ms(args.positive_option_or("window-ms", 100));
  cfg.record_trace = jsonl_out || chrome_out || stats_json_out || print_stats;
  fail_on_unused(args);

  const SimResult res = simulate(km, cfg);
  if (jsonl_out) obs::write_file(*jsonl_out, trace_to_jsonl(res.trace));
  if (chrome_out) obs::write_file(*chrome_out, sim_trace_to_chrome_json(res.trace, km));
  if (stats_json_out || print_stats) {
    const TraceStats stats = compute_trace_stats(res.trace, res.simulated, stats_window);
    if (stats_json_out) obs::write_file(*stats_json_out, trace_stats_to_json(stats) + "\n");
    if (print_stats) out << trace_stats_to_text(stats);
  }
  TextTable t;
  t.header({"message", "activations", "completed", "lost", "retx", "wcrt obs", "avg"});
  for (const auto& m : res.messages)
    t.row({m.name, strprintf("%lld", static_cast<long long>(m.activations)),
           strprintf("%lld", static_cast<long long>(m.completions)),
           strprintf("%lld", static_cast<long long>(m.losses)),
           strprintf("%lld", static_cast<long long>(m.retransmissions)),
           to_string(m.wcrt_observed), strprintf("%.0f us", m.avg_response_us)});
  t.print(out);
  std::int64_t losses = 0;
  for (const auto& m : res.messages) losses += m.losses;
  out << strprintf("simulated %s, %lld errors injected, %lld losses\n",
                   to_string(res.simulated).c_str(),
                   static_cast<long long>(res.total_errors_injected),
                   static_cast<long long>(losses));
  return losses == 0 ? 0 : 1;
}

int cmd_explain(const Args& args, std::ostream& out) {
  const KMatrix km = load_matrix(args);
  if (args.positionals().size() < 2)
    throw std::invalid_argument("usage: explain FILE MESSAGE [--worst-case|--best-case] [--json]");
  const std::string& name = args.positionals()[1];
  const CanRtaConfig cfg = assumptions_from(args);
  const bool json = args.has_flag("json");
  fail_on_unused(args);
  return pipeline::render_explain(km, cfg, name, json, out);
}

int cmd_validate(const Args& args, std::ostream& out) {
  const KMatrix km = load_matrix(args);
  pipeline::ValidateSpec spec;
  spec.millis = args.positive_option_or("millis", 2000);
  spec.seed = static_cast<std::uint64_t>(args.int_option_or("seed", 1));
  spec.errors = error_spec_from(args);
  spec.json = args.has_flag("json");
  fail_on_unused(args);
  return pipeline::render_validate(km, spec, out);
}

int cmd_monitor(const Args& args, std::ostream& out) {
  const KMatrix km = load_matrix(args);
  SimConfig sim;
  sim.duration = Duration::ms(args.positive_option_or("millis", 2000));
  sim.seed = static_cast<std::uint64_t>(args.int_option_or("seed", 1));
  sim.errors = sim_errors_from(args);
  sim.record_trace = true;
  const std::optional<std::string> from_trace = args.path_option("from-trace");
  const std::optional<std::string> stats_json_out = args.path_option("stats-json");
  const std::optional<std::string> events_out = args.path_option("events-jsonl");
  const bool json = args.has_flag("json");
  const bool no_bounds = args.has_flag("no-bounds");
  const std::size_t chunk = static_cast<std::size_t>(args.positive_option_or("chunk", 4096));
  fail_on_unused(args);

  stream::StreamAnalyzer analyzer;
  if (!no_bounds) {
    // Same sound pairing as `validate`: the bounds must dominate what the
    // stream can contain, or an online "violation" means nothing.
    CanRtaConfig rta;
    rta.worst_case_stuffing = true;
    rta.deadline_override = DeadlinePolicy::kPeriod;
    rta.errors = pipeline::matching_error_model(sim.errors);
    analyzer.set_bounds(CanRta{km, rta}.analyze());
  }

  Trace trace;
  Duration span = Duration::zero();
  if (from_trace) {
    Diagnostics diags{policy_from(args)};
    auto parsed = stream::trace_from_jsonl(read_file(*from_trace), diags);
    diags.throw_if_failed();
    if (!parsed) throw ParseError{diags};
    trace = std::move(*parsed);
    if (!trace.events().empty()) span = trace.events().back().time;
  } else {
    SimResult res = simulate(km, sim);
    trace = std::move(res.trace);
    span = res.simulated;
  }

  // Chunked ingest stands in for the arrival batches a live capture
  // would deliver; results are chunk-invariant by contract.
  const auto& events = trace.events();
  for (std::size_t i = 0; i < events.size(); i += chunk)
    analyzer.ingest(events.data() + i, std::min(chunk, events.size() - i));
  analyzer.advance_to(span);

  const stream::StreamStats stats = analyzer.stats();
  if (stats_json_out)
    obs::write_file(*stats_json_out, stream::stream_stats_to_json(stats) + "\n");
  if (events_out) obs::write_file(*events_out, stream::health_events_to_jsonl(analyzer.events()));
  if (json) {
    out << stream::stream_stats_to_json(stats) << "\n";
  } else {
    out << stream::stream_stats_to_text(stats);
  }
  return stats.violations > 0 ? 1 : 0;
}

int cmd_budget(const Args& args, std::ostream& out) {
  const KMatrix km = load_matrix(args);
  const CanRtaConfig cfg = assumptions_from(args);
  fail_on_unused(args);
  const BudgetReport budgets = allocate_jitter_budgets(km, cfg, 0.02);
  out << strprintf("jointly safe uniform jitter: %.0f%% of each period\n",
                   100 * budgets.joint_fraction);
  TextTable t;
  t.header({"message", "joint budget", "individual max", "tradeable bonus"});
  for (const std::size_t i : km.priority_order())
    t.row({km.messages()[i].name, to_string(budgets.joint_budget[i]),
           to_string(budgets.individual_budget[i]), to_string(budgets.bonus(i))});
  t.print(out);
  return 0;
}

int cmd_report(const Args& args, std::ostream& out) {
  const KMatrix km = load_matrix(args);
  const CanRtaConfig cfg = assumptions_from(args);
  const int jobs = jobs_from(args);
  const RtaCacheConfig cache = rta_cache_from(args);
  fail_on_unused(args);

  out << "# Network integration report: " << km.bus_name() << "\n\n";
  const LoadReport load = analyze_load(km, cfg.worst_case_stuffing);
  out << strprintf("- %zu messages on %zu nodes, %.0f kbit/s\n", km.size(), km.nodes().size(),
                   load.bandwidth_bps / 1000);
  out << strprintf("- bus load: %.1f%% (40%% limit: %s, 60%% limit: %s)\n",
                   100 * load.utilization, within_load_limit(load, 0.4) ? "ok" : "EXCEEDED",
                   within_load_limit(load, 0.6) ? "ok" : "EXCEEDED");

  const BusResult res = CanRta{km, cfg}.analyze();
  out << strprintf("- schedulability: %zu/%zu messages meet their deadline\n",
                   res.messages.size() - res.miss_count(), res.messages.size());
  Duration worst = Duration::zero();
  std::string worst_name;
  for (const auto& m : res.messages) {
    if (m.wcrt.is_infinite()) continue;
    if (m.wcrt > worst) {
      worst = m.wcrt;
      worst_name = m.name;
    }
  }
  out << strprintf("- largest worst-case response: %s (%s)\n", to_string(worst).c_str(),
                   worst_name.c_str());

  out << "\n## Deadline misses\n\n";
  bool any_miss = false;
  for (const auto& m : res.messages) {
    if (m.schedulable) continue;
    any_miss = true;
    out << strprintf("- %s: wcrt %s vs deadline %s\n", m.name.c_str(),
                     to_string(m.wcrt).c_str(), to_string(m.deadline).c_str());
  }
  if (!any_miss) out << "none\n";

  if (res.all_schedulable()) {
    out << "\n## Jitter budgets (Section 5.2)\n\n";
    const BudgetReport budgets = allocate_jitter_budgets(km, cfg, 0.02);
    out << strprintf("- jointly safe uniform jitter: %.0f%% of each period\n",
                     100 * budgets.joint_fraction);
    // The three largest tradeable reserves.
    std::vector<std::size_t> idx(km.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return budgets.bonus(a) > budgets.bonus(b); });
    for (std::size_t k = 0; k < 3 && k < idx.size(); ++k)
      out << strprintf("- %s: joint %s, individually up to %s\n",
                       km.messages()[idx[k]].name.c_str(),
                       to_string(budgets.joint_budget[idx[k]]).c_str(),
                       to_string(budgets.individual_budget[idx[k]]).c_str());

    out << "\n## Extensibility (Section 2)\n\n";
    ExtensionProfile profile;
    profile.first_id = 0x600;
    const ExtensibilityReport ext = max_additional_messages(km, cfg, profile, 64, jobs, cache);
    out << strprintf("- %s%zu additional 20 ms / 8 B messages provable (load at max: %.0f%%)\n",
                     ext.capped ? ">= " : "", ext.max_additional_messages,
                     100 * ext.utilization_at_max);
  }
  return res.all_schedulable() ? 0 : 1;
}

int cmd_import(const Args& args, std::ostream& out) {
  if (args.positionals().empty()) throw std::invalid_argument("missing DBC path");
  DbcImportOptions opt;
  opt.default_bitrate_bps = args.int_option_or("bitrate", opt.default_bitrate_bps);
  opt.bus_name = args.option_or("bus-name", opt.bus_name);
  const KMatrix km = load_matrix_file(args.positionals()[0], true, policy_from(args), opt);
  const std::string output = args.option_or("out", "");
  fail_on_unused(args);
  if (output.empty()) {
    out << kmatrix_to_csv(km);
  } else {
    save_kmatrix(km, output);
    out << "imported " << km.size() << " messages from DBC to " << output << "\n";
  }
  return 0;
}

int cmd_extend(const Args& args, std::ostream& out) {
  const KMatrix km = load_matrix(args);
  ExtensionProfile profile;
  profile.period = Duration::ms(args.positive_option_or("period-ms", 20));
  profile.payload_bytes = static_cast<int>(args.count_option_or("bytes", 8));
  profile.jitter_fraction = args.double_option_or("profile-jitter", 0.25);
  profile.first_id = static_cast<CanId>(args.int_option_or("first-id", 0x600));
  const CanRtaConfig cfg = assumptions_from(args);
  const int jobs = jobs_from(args);
  const RtaCacheConfig cache = rta_cache_from(args);
  fail_on_unused(args);
  const ExtensibilityReport r = max_additional_messages(km, cfg, profile, 128, jobs, cache);
  out << strprintf("headroom: %s%zu additional %lldms/%dB messages (util at max: %.1f%%)\n",
                   r.capped ? ">= " : "", r.max_additional_messages,
                   static_cast<long long>(profile.period.count_ns() / 1'000'000),
                   profile.payload_bytes, 100 * r.utilization_at_max);
  if (!r.capped && !r.steps.empty() && !r.steps.back().first_miss.empty())
    out << "first failure: " << r.steps.back().first_miss << "\n";
  return 0;
}

/// `symcan serve --stdio`: the long-running analysis service. All knobs
/// are validated up front (garbage exits 2 before any request is read).
int cmd_serve(const Args& args, std::istream& in, std::ostream& out) {
  if (!args.has_flag("stdio"))
    throw std::invalid_argument("serve requires --stdio (the only transport today)");
  serve::ServeConfig cfg;
  cfg.cache = rta_cache_from(args);
  cfg.cache.shards = static_cast<std::size_t>(args.positive_option_or("serve-shards", 8));
  cfg.ring.capacity = static_cast<std::size_t>(args.positive_option_or("ring-capacity", 256));
  const std::string overflow = args.option_or("overflow", "reject");
  if (!serve::overflow_policy_from_string(overflow, cfg.ring.overflow))
    throw std::invalid_argument("--overflow must be reject|drop-oldest|block-with-deadline");
  cfg.ring.block_deadline = Duration::ms(args.positive_option_or("block-deadline-ms", 100));
  cfg.batch_max = static_cast<std::size_t>(args.positive_option_or("batch", 32));
  cfg.jobs = jobs_from(args);
  cfg.matrix_cache_capacity =
      static_cast<std::size_t>(args.positive_option_or("matrix-cache", 64));
  cfg.policy = policy_from(args);

  // Telemetry plane: always on (the windows and flight ring are cheap);
  // the flags pick where dumps land and how much history is retained.
  if (const auto flight = args.path_option("flight-recorder"))
    cfg.telemetry.flight_path = *flight;
  cfg.telemetry.flight_capacity =
      static_cast<std::size_t>(args.positive_option_or("flight-capacity", 256));
  cfg.telemetry.window_bucket_ms = args.positive_option_or("window-bucket-ms", 5000);
  cfg.telemetry.window_buckets =
      static_cast<std::size_t>(args.positive_option_or("window-buckets", 12));
  // SLO objective: the burn-rate denominator is (1 - objective), so 1.0
  // (or anything outside the open interval) would divide by zero and
  // poison the telemetry/health JSON — reject it here, before the
  // service starts (exit 2), rather than crash on the first snapshot.
  cfg.telemetry.slo_objective = args.double_option_or("slo-objective", 0.99);
  if (!(cfg.telemetry.slo_objective > 0.0) || !(cfg.telemetry.slo_objective < 1.0))
    throw std::invalid_argument("--slo-objective must lie strictly between 0 and 1");
  cfg.build_info = version_string();
  if (const auto prom = args.path_option("metrics-prom")) cfg.metrics_prom_path = *prom;
  fail_on_unused(args);
  serve::ServeCore core{cfg};
  return serve::run_stdio_serve(core, in, out);
}

}  // namespace

std::string version_string() {
#ifndef SYMCAN_VERSION
#define SYMCAN_VERSION "0.0.0"
#endif
#ifndef SYMCAN_BUILD_TYPE
#define SYMCAN_BUILD_TYPE "unspecified"
#endif
#ifndef SYMCAN_SANITIZE_NAME
#define SYMCAN_SANITIZE_NAME "none"
#endif
  return std::string("symcan ") + SYMCAN_VERSION + " (build: " + SYMCAN_BUILD_TYPE +
         ", sanitizer: " + SYMCAN_SANITIZE_NAME + ", C++" +
         std::to_string(__cplusplus / 100 % 100) + ")";
}

std::string usage() {
  return "usage: symcan <command> [options]\n"
         "  generate    [--seed N] [--messages N] [--ecus N] [--util X] [--bitrate BPS]\n"
         "              [--tt-offsets] [--out FILE]      synthesize a K-Matrix CSV\n"
         "  analyze     FILE [--worst-case|--best-case] [--jitter F] [--override-known]\n"
         "              [--prob [--fault-ppm N] [--stuff-ppm N] [--jitter-ppm N]\n"
         "              [--max-rungs N] [--jobs N] [--tile N]]\n"
         "              --prob reports per-message deadline-miss probabilities:\n"
         "              the response-time distribution from convolving per-fault-\n"
         "              count bounds (each admitted fault materializes with\n"
         "              probability --fault-ppm/1e6), worst-case stuffing and\n"
         "              activation jitter; the deterministic WCRT is the\n"
         "              distribution's upper support point, and all-1e6 ppm\n"
         "              (the default) reproduces the deterministic verdicts\n"
         "  sweep       FILE [--from F] [--to F] [--step F] [--jobs N] [--tile N]\n"
         "              [--worst-case|--best-case]\n"
         "              [--prob [--from-ppm N] [--to-ppm N] [--points N]\n"
         "              [--stuff-ppm N] [--jitter-ppm N] [--max-rungs N]]\n"
         "              --prob sweeps the fault probability instead of jitter:\n"
         "              miss-probability vs error rate, log-spaced ppm points\n"
         "              (rung ladders are shared across points via the cache)\n"
         "  import      FILE.dbc [--bitrate BPS] [--bus-name NAME] [--out FILE]\n"
         "  report      FILE [--worst-case|--best-case] [--jitter F]   markdown summary\n"
         "  budget      FILE [--worst-case|--best-case]   jitter budgets (Section 5.2)\n"
         "  sensitivity FILE [--worst-case|--best-case] [--jobs N] [--tile N]\n"
         "  optimize    FILE [--generations N] [--population N] [--seed N]\n"
         "              [--target-jitter F] [--jobs N] [--tile N] [--out FILE]\n"
         "  simulate    FILE [--millis N] [--seed N] [--errors none|sporadic|burst]\n"
         "              [--error-gap-ms N] [--stats] [--window-ms N] [--stats-json FILE]\n"
         "              [--trace-jsonl FILE] [--trace-chrome FILE]\n"
         "  explain     FILE MESSAGE [--worst-case|--best-case] [--json]\n"
         "              why the RTA bound is what it is: blocking frame, per-\n"
         "              interferer shares, error overhead, fixed-point trajectory\n"
         "  validate    FILE [--millis N] [--seed N] [--errors none|sporadic|burst]\n"
         "              [--error-gap-ms N] [--json]    bound-vs-observed report;\n"
         "              exit 1 if any simulated response exceeds its RTA bound\n"
         "  monitor     FILE [--millis N] [--seed N] [--errors none|sporadic|burst]\n"
         "              [--error-gap-ms N] [--from-trace FILE.jsonl] [--chunk N]\n"
         "              [--json] [--stats-json FILE] [--events-jsonl FILE] [--no-bounds]\n"
         "              stream the trace through the online health analyzer:\n"
         "              per-message EWMA baselines, jitter/drift/stall/arrhythmia\n"
         "              onset+clear events; exit 1 if a response crossed its bound\n"
         "  extend      FILE [--period-ms N] [--bytes N] [--profile-jitter F]\n"
         "              [--first-id N] [--jobs N] [--worst-case|--best-case]\n"
         "  serve       --stdio [--serve-shards N] [--rta-cache-capacity N]\n"
         "              [--ring-capacity N] [--overflow reject|drop-oldest|\n"
         "              block-with-deadline] [--block-deadline-ms N] [--batch N]\n"
         "              [--jobs N] [--matrix-cache N] [--strict]\n"
         "              [--flight-recorder FILE] [--flight-capacity N]\n"
         "              [--window-bucket-ms N] [--window-buckets N]\n"
         "              [--metrics-prom FILE] [--slo-objective X]\n"
         "              long-running analysis service: one JSON request per stdin\n"
         "              line (analyze/prob/explain/validate/optimize/health/\n"
         "              telemetry),\n"
         "              one JSON response per stdout line, bit-identical to the\n"
         "              one-shot CLI on the same inputs (see DESIGN.md). Every\n"
         "              request gets a telemetry record (queue wait, service time,\n"
         "              batch id, cache hit, outcome); the 'telemetry' kind returns\n"
         "              windowed rates, latency quantiles, and per-kind SLO burn.\n"
         "              --flight-recorder FILE keeps the last N records (default\n"
         "              256, --flight-capacity) and dumps them as JSONL on the\n"
         "              first shed, a bound violation, a telemetry request with\n"
         "              \"dump\":true, or shutdown. --metrics-prom FILE rewrites a\n"
         "              Prometheus text-format scrape file once per cycle.\n"
         "  version     print version and build configuration\n"
         "  help\n"
         "--jobs N selects N worker threads for sweep/sensitivity/optimize/\n"
         "extend/report (0 = all hardware threads, the default; results are\n"
         "bit-identical at any width).\n"
         "--tile N shards those fan-outs into fixed-size work tiles\n"
         "(0 = auto, the default); purely a scheduling knob — outputs are\n"
         "byte-identical at every tile size and worker count.\n"
         "--strict escalates ingest warnings (zero cycle times, stray\n"
         "signal lines, non-0|1 boolean columns) to errors. Malformed input\n"
         "prints one line-numbered diagnostic per problem and exits 2.\n"
         "--rta-cache on|off (default on) memoizes per-message RTA verdicts\n"
         "across the re-analyses those same commands perform; cached results\n"
         "are bit-identical to fresh ones, so 'off' exists only to measure.\n"
         "--rta-cache-capacity N (default 65536) bounds the cached verdicts;\n"
         "--serve-shards N (serve only, default 8) splits the cache into N\n"
         "independently locked LRU shards.\n"
         "--trace-out FILE / --metrics-out FILE / --metrics-prom FILE work\n"
         "with every command: they record spans (chrome://tracing JSON) and\n"
         "metrics (counters, histograms, per-iteration series; --metrics-prom\n"
         "uses Prometheus text exposition) for the run and write them on\n"
         "exit.\n";
}

int run_cli(const std::vector<std::string>& argv_tail, std::ostream& out, std::ostream& err) {
  return run_cli(argv_tail, std::cin, out, err);
}

int run_cli(const std::vector<std::string>& argv_tail, std::istream& in, std::ostream& out,
            std::ostream& err) {
  if (argv_tail.empty() || argv_tail[0] == "help" || argv_tail[0] == "--help") {
    out << usage();
    return argv_tail.empty() ? 2 : 0;
  }
  if (argv_tail[0] == "version" || argv_tail[0] == "--version") {
    out << version_string() << "\n";
    return 0;
  }
  const std::string command = argv_tail[0];
  const std::vector<std::string> rest(argv_tail.begin() + 1, argv_tail.end());
  try {
    const std::vector<std::string> flags = {"worst-case", "best-case", "override-known",
                                            "tt-offsets", "dbc",       "json",
                                            "stats",      "strict",    "no-bounds",
                                            "stdio",      "prob"};
    const Args args = Args::parse(rest, flags);

    // Observability exports apply to every command: validate the paths up
    // front (so a bad path fails before a long run) and enable recording
    // only when at least one export was requested.
    const std::optional<std::string> trace_out = args.path_option("trace-out");
    const std::optional<std::string> metrics_out = args.path_option("metrics-out");
    const std::optional<std::string> metrics_prom = args.path_option("metrics-prom");
    if (trace_out || metrics_out || metrics_prom) {
      obs::reset();
      obs::set_enabled(true);
    }

    const auto dispatch = [&]() -> int {
      if (command == "generate") return cmd_generate(args, out);
      if (command == "analyze") return cmd_analyze(args, out);
      if (command == "sweep") return cmd_sweep(args, out);
      if (command == "import") return cmd_import(args, out);
      if (command == "report") return cmd_report(args, out);
      if (command == "budget") return cmd_budget(args, out);
      if (command == "sensitivity") return cmd_sensitivity(args, out);
      if (command == "optimize") return cmd_optimize(args, out);
      if (command == "simulate") return cmd_simulate(args, out);
      if (command == "explain") return cmd_explain(args, out);
      if (command == "validate") return cmd_validate(args, out);
      if (command == "monitor") return cmd_monitor(args, out);
      if (command == "extend") return cmd_extend(args, out);
      if (command == "serve") return cmd_serve(args, in, out);
      err << "symcan: unknown command '" << command << "'\n" << usage();
      return 2;
    };
    const int rc = dispatch();

    if (trace_out || metrics_out || metrics_prom) {
      obs::set_enabled(false);
      if (metrics_out) obs::write_file(*metrics_out, obs::metrics_to_json(obs::metrics()));
      if (metrics_prom)
        obs::write_file(*metrics_prom, obs::metrics_to_prometheus(obs::metrics()));
      if (trace_out) obs::write_file(*trace_out, obs::trace_to_chrome_json(obs::tracer()));
    }
    return rc;
  } catch (const ParseError& e) {
    // Malformed input: one line per collected diagnostic, then exit 2.
    obs::set_enabled(false);
    const Diagnostics& d = e.diagnostics();
    err << "symcan " << command << ": " << d.source() << ": " << d.error_count() << " error(s)";
    if (d.warning_count() > 0) err << ", " << d.warning_count() << " warning(s)";
    err << "\n" << d.format();
    return 2;
  } catch (const std::exception& e) {
    obs::set_enabled(false);
    err << "symcan " << command << ": " << e.what() << "\n";
    return 2;
  }
}

}  // namespace symcan::cli

#pragma once

// The symcan command-line tool, as a library (see tools/symcan_cli).
//
// Commands:
//   generate    synthesize a power-train K-Matrix CSV
//   analyze     load + worst-case response-time verdicts for a matrix
//   sweep       Figure-5 style loss-vs-jitter series (CSV on stdout)
//   sensitivity Figure-4 style robustness classification
//   optimize    GA CAN-ID optimization, writes the optimized matrix
//   simulate    discrete-event simulation statistics
//   extend      extensibility headroom (how many more messages fit)
//
// All commands read/write the K-Matrix CSV format of kmatrix_io.hpp.

#include <iosfwd>
#include <string>
#include <vector>

namespace symcan::cli {

/// Entry point used by main() and by the tests. `argv_tail` excludes the
/// program name. Returns the process exit code; never throws (errors are
/// reported on `err` with exit code 2, analysis "failures" such as
/// unschedulable matrices use exit code 1). `in` feeds the commands that
/// read request streams (`serve --stdio`); the three-argument form uses
/// std::cin.
int run_cli(const std::vector<std::string>& argv_tail, std::istream& in, std::ostream& out,
            std::ostream& err);
int run_cli(const std::vector<std::string>& argv_tail, std::ostream& out, std::ostream& err);

/// One-line summary per command, used by `symcan help`.
std::string usage();

/// "symcan <version> (build: ..., sanitizer: ..., C++20)" — printed by
/// `symcan version` / `symcan --version`.
std::string version_string();

}  // namespace symcan::cli

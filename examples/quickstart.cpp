// Quickstart: build a small CAN K-Matrix in code, run load analysis and
// worst-case response-time analysis, interpret the verdicts, and
// round-trip the matrix through the CSV format.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "symcan/analysis/can_rta.hpp"
#include "symcan/analysis/load.hpp"
#include "symcan/can/kmatrix_io.hpp"
#include "symcan/util/table.hpp"

using namespace symcan;

int main() {
  // --- 1. Describe the bus ------------------------------------------------
  KMatrix km{"demo", BitTiming{500'000}};  // 500 kbit/s power-train CAN

  EcuNode engine;
  engine.name = "ENG";
  km.add_node(engine);

  EcuNode brake;
  brake.name = "ABS";
  brake.controller = ControllerType::kBasicCan;  // older controller, FIFO queue
  brake.tx_buffers = 2;
  km.add_node(brake);

  // --- 2. Describe the messages (one row per K-Matrix entry) --------------
  auto add = [&](const char* name, CanId id, int bytes, Duration period, Duration jitter,
                 const char* sender, const char* receiver) {
    CanMessage m;
    m.name = name;
    m.id = id;
    m.payload_bytes = bytes;
    m.period = period;
    m.jitter = jitter;
    m.sender = sender;
    m.receivers = {receiver};
    km.add_message(m);
  };
  add("engine_rpm", 0x100, 8, Duration::ms(10), Duration::ms(1), "ENG", "ABS");
  add("wheel_speed", 0x110, 6, Duration::ms(10), Duration::zero(), "ABS", "ENG");
  add("brake_status", 0x200, 4, Duration::ms(20), Duration::ms(2), "ABS", "ENG");
  add("engine_temp", 0x300, 2, Duration::ms(100), Duration::zero(), "ENG", "ABS");
  km.validate();

  // --- 3. Load analysis (the popular-but-insufficient first look) ---------
  const LoadReport load = analyze_load(km, /*worst_case_stuffing=*/true);
  std::cout << "Bus load: " << strprintf("%.1f%%", 100 * load.utilization)
            << (within_load_limit(load, 0.40) ? "  (within the 40% OEM limit)\n" : "\n");

  // --- 4. Schedulability analysis: the real verdict -----------------------
  CanRtaConfig cfg;
  cfg.worst_case_stuffing = true;
  cfg.errors = std::make_shared<SporadicErrors>(Duration::ms(50));  // field fault model

  const BusResult result = CanRta{km, cfg}.analyze();
  TextTable t;
  t.header({"message", "wcrt", "deadline", "slack", "verdict"});
  for (const auto& m : result.messages) {
    t.row({m.name, to_string(m.wcrt), to_string(m.deadline), to_string(m.slack()),
           m.schedulable ? "ok" : "LOST (overwritten in sender buffer)"});
  }
  t.print(std::cout);

  // --- 5. Persist the matrix ----------------------------------------------
  const std::string csv = kmatrix_to_csv(km);
  const KMatrix back = kmatrix_from_csv(csv);
  std::cout << "\nCSV round-trip: " << back.size() << " messages, "
            << back.nodes().size() << " nodes restored.\n";
  return result.all_schedulable() ? 0 : 1;
}

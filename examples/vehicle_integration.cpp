// Vehicle-level network integration: the full compositional analysis the
// paper's methodology culminates in — two buses, a gateway, OSEK task
// sets on every ECU, and cross-bus event chains, all analyzed to a global
// fixed point without any simulation or prototype (Sections 5 and 6).

#include <iostream>

#include "symcan/analysis/presets.hpp"
#include "symcan/core/engine.hpp"
#include "symcan/util/table.hpp"
#include "symcan/workload/vehicle.hpp"

using namespace symcan;

namespace {

SystemResult analyze(const System& sys) {
  EngineConfig ecfg;
  ecfg.bus.worst_case_stuffing = true;
  ecfg.bus.deadline_override = DeadlinePolicy::kPeriod;
  Engine engine{sys, ecfg};
  return engine.analyze();
}

}  // namespace

int main() {
  VehicleConfig cfg;
  cfg.powertrain.target_utilization = 0.45;  // a healthy mid-life vehicle
  System sys = generate_vehicle(cfg);

  std::cout << "Vehicle model: " << sys.buses().size() << " buses, " << sys.ecus().size()
            << " ECUs, " << sys.paths().size() << " cross-bus paths\n";
  for (const auto& [name, km] : sys.buses())
    std::cout << strprintf("  %-11s %3zu messages, %4.0f kbit/s, %5.1f%% worst-case load\n",
                           name.c_str(), km.size(),
                           static_cast<double>(km.timing().bits_per_second()) / 1000,
                           100 * km.utilization(true));

  SystemResult res = analyze(sys);
  std::cout << "\nGlobal fixed point: " << res.iterations << " iterations, "
            << (res.converged ? "converged" : "DIVERGED") << "\n";

  // Section 5.2 in action: when integration finds a bottleneck, the OEM
  // iterates the design — here by relieving the overloaded bus (moving
  // comfort functions off CAN) and re-running the analysis in seconds.
  if (!res.all_schedulable()) {
    for (const auto& [bus_name, bus_res] : res.buses) {
      for (const auto& m : bus_res.messages)
        if (!m.schedulable)
          std::cout << "  bottleneck: " << bus_name << "/" << m.name << " (slack "
                    << to_string(m.slack()) << ")\n";
    }
    std::cout << "Iterating: offloading body traffic and re-analyzing...\n";
    cfg.body_target_utilization = 0.25;
    sys = generate_vehicle(cfg);
    res = analyze(sys);
  }

  std::cout << "\nPer-resource verdicts:\n";
  for (const auto& [name, bus] : res.buses)
    std::cout << strprintf("  bus %-11s %zu/%zu messages schedulable\n", name.c_str(),
                           bus.messages.size() - bus.miss_count(), bus.messages.size());
  std::size_t ecu_total = 0, ecu_ok = 0;
  for (const auto& [name, ecu] : res.ecus) {
    ecu_total += ecu.tasks.size();
    ecu_ok += ecu.tasks.size() - ecu.miss_count();
  }
  std::cout << strprintf("  ECUs: %zu/%zu tasks schedulable across %zu nodes\n", ecu_ok,
                         ecu_total, res.ecus.size());

  std::cout << "\nCross-bus end-to-end latencies (source frame -> gateway -> far frame):\n";
  TextTable t;
  t.header({"path", "latency min", "latency max", "deadline", "verdict"});
  for (const auto& p : res.paths)
    t.row({p.name, to_string(p.latency_min), to_string(p.latency_max), to_string(p.deadline),
           p.met ? "met" : "MISSED"});
  t.print(std::cout);

  bool all_met = res.all_schedulable();
  std::cout << (all_met ? "\nIntegration verdict: the vehicle network holds its guarantees.\n"
                        : "\nIntegration verdict: bottlenecks found - iterate (Section 5.2).\n");
  return all_met ? 0 : 1;
}

// Diagnosis & ECU flashing (paper Section 2: "How about diagnosis and
// ECU flashing?"): can a workshop flash an ECU over the running bus
// without degrading the control traffic?
//
// Workflow: add an ISO-TP-style flashing session to the case-study bus,
// check how many *regular* messages newly miss their deadline compared
// to normal operation, cross-check with the simulator, then throttle the
// session until the bus is provably no worse than before — the kind of
// decision the paper argues should be made analytically, not by testing.

#include <iostream>
#include <set>

#include "symcan/analysis/load.hpp"
#include "symcan/analysis/presets.hpp"
#include "symcan/sim/simulator.hpp"
#include "symcan/util/table.hpp"
#include "symcan/workload/powertrain.hpp"
#include "symcan/workload/scenario.hpp"

using namespace symcan;

namespace {

struct Verdict {
  double load = 0;
  std::size_t regular_misses = 0;   ///< Misses among the original messages.
  std::int64_t regular_losses = 0;  ///< Simulated losses among them.
  bool flash_ok = true;             ///< The flash stream itself meets its deadline.
};

Verdict evaluate(KMatrix km, const std::set<std::string>& regular) {
  // Unknown jitters assumed at 15 %; known ones (incl. the tool-paced
  // diagnostic streams) keep their specified values.
  assume_jitter_fraction(km, 0.15, false);
  Verdict v;
  v.load = analyze_load(km, true).utilization;
  const BusResult res = CanRta{km, worst_case_assumptions()}.analyze();
  for (const auto& m : res.messages) {
    if (regular.contains(m.name)) {
      if (!m.schedulable) ++v.regular_misses;
    } else {
      v.flash_ok = v.flash_ok && m.schedulable;
    }
  }

  SimConfig sim;
  sim.duration = Duration::s(5);
  sim.seed = 7;
  sim.stuffing = StuffingMode::kRandom;
  sim.errors = SimErrorProcess::burst(Duration::ms(25), 4);
  const SimResult obs = simulate(km, sim);
  for (const auto& m : obs.messages)
    if (regular.contains(m.name)) v.regular_losses += m.losses;
  return v;
}

}  // namespace

int main() {
  const KMatrix base = generate_powertrain(PowertrainConfig::case_study());
  std::set<std::string> regular;
  for (const auto& m : base.messages()) regular.insert(m.name);

  const Verdict baseline = evaluate(base, regular);

  TextTable t;
  t.header({"scenario", "load", "regular misses", "regular losses (sim 5s)", "flash stream"});
  auto report = [&](const std::string& label, const Verdict& v) {
    t.row({label, strprintf("%.0f%%", 100 * v.load), strprintf("%zu", v.regular_misses),
           strprintf("%lld", static_cast<long long>(v.regular_losses)),
           v.flash_ok ? "meets deadline" : "starved"});
  };
  report("normal operation (reference)", baseline);

  // A workshop tool starts flashing at full speed, then the analysis
  // throttles the ISO-TP flow control until the regular traffic is
  // provably no worse than in normal operation.
  Duration safe_spacing = Duration::zero();
  for (const std::int64_t spacing_ms : {2, 3, 4, 5, 8}) {
    DiagnosisConfig diag;
    diag.frame_spacing = Duration::ms(spacing_ms);
    diag.burst = spacing_ms <= 2 ? 4 : 2;
    KMatrix attempt = base;
    add_diagnosis_traffic(attempt, diag);
    const Verdict v = evaluate(attempt, regular);
    report(strprintf("flashing @ %lld ms spacing", static_cast<long long>(spacing_ms)), v);
    if (safe_spacing == Duration::zero() && v.regular_misses <= baseline.regular_misses &&
        v.regular_losses <= baseline.regular_losses && v.flash_ok)
      safe_spacing = Duration::ms(spacing_ms);
  }
  t.print(std::cout);

  if (safe_spacing > Duration::zero()) {
    const double frames_per_s = 1.0 / safe_spacing.as_s();
    std::cout << "\nVerdict: flash with flow-control spacing >= " << to_string(safe_spacing)
              << " — the regular traffic keeps exactly its normal-operation\n"
                 "guarantees, proven analytically and confirmed by simulation\n"
                 "(Sections 2 and 4). "
              << strprintf("Sustained flash payload: %.1f kB/s.\n",
                           frames_per_s * 8.0 / 1000.0);
    return 0;
  }
  std::cout << "\nNo safe spacing found in the candidate set — flashing requires a\n"
               "bus-off window for this configuration.\n";
  return 1;
}

// The supplier side of the story (paper Section 5.1, Figure 6): a
// distributed function — sensor task on one ECU, CAN message, control
// task on another ECU — analyzed compositionally, with the OEM and the
// supplier exchanging only event-model-level data sheets.
//
// Shows: the compositional engine (ECU analysis -> output jitter -> bus
// analysis -> arrival jitter -> consumer ECU), the duality check, and an
// iterative-refinement round after a supplier commits better numbers.

#include <iostream>

#include "symcan/analysis/presets.hpp"
#include "symcan/core/engine.hpp"
#include "symcan/supplychain/datasheet.hpp"
#include "symcan/supplychain/refinement.hpp"
#include "symcan/util/table.hpp"
#include "symcan/workload/powertrain.hpp"

using namespace symcan;

namespace {

Task make_task(const char* name, int prio, SchedClass sched, Duration bcet, Duration wcet,
               Duration period) {
  Task t;
  t.name = name;
  t.priority = prio;
  t.sched = sched;
  t.bcet = bcet;
  t.wcet = wcet;
  t.os_overhead = Duration::us(20);  // OSEK activation overhead
  t.activation = EventModel::periodic(period);
  return t;
}

}  // namespace

int main() {
  // --- The shared bus, owned by the OEM -----------------------------------
  PowertrainConfig wl = PowertrainConfig::case_study();
  wl.message_count = 20;
  wl.ecu_count = 4;
  wl.target_utilization = 0.45;
  KMatrix km = generate_powertrain(wl);

  // The distributed function's message, added by the OEM at mid priority.
  CanMessage sensor_msg;
  sensor_msg.name = "pedal_position";
  sensor_msg.id = 0x150;
  sensor_msg.payload_bytes = 4;
  sensor_msg.period = Duration::ms(10);
  sensor_msg.sender = "ENG";
  sensor_msg.receivers = {"TRANS"};
  km.add_message(sensor_msg);

  // --- The supplier ECUs, modelled down to OSEK tasks ----------------------
  System sys;
  sys.add_bus(km);
  sys.add_ecu("ENG",
              {make_task("pedal_sample", 2, SchedClass::kPreemptiveTask, Duration::us(150),
                         Duration::us(400), Duration::ms(10)),
               make_task("injection_isr", 1, SchedClass::kInterrupt, Duration::us(30),
                         Duration::us(80), Duration::ms(1)),
               make_task("housekeeping", 8, SchedClass::kCooperativeTask, Duration::ms(1),
                         Duration::ms(3), Duration::ms(50))});
  sys.add_ecu("TRANS", {make_task("shift_control", 1, SchedClass::kPreemptiveTask,
                                  Duration::us(200), Duration::us(700), Duration::ms(10))});

  Path control;
  control.name = "pedal_to_shift";
  control.source = EventModel::periodic(Duration::ms(10));
  control.elements = {{PathElement::Kind::kTask, "ENG", "pedal_sample"},
                      {PathElement::Kind::kMessage, "powertrain", "pedal_position"},
                      {PathElement::Kind::kTask, "TRANS", "shift_control"}};
  control.deadline = Duration::ms(12);
  sys.add_path(control);

  // --- Compositional analysis ----------------------------------------------
  EngineConfig cfg;
  cfg.bus = best_case_assumptions();
  Engine engine{sys, cfg};
  const SystemResult res = engine.analyze();
  std::cout << "Compositional fixed point after " << res.iterations << " iterations ("
            << (res.converged ? "converged" : "DIVERGED") << ")\n";
  const PathResult& path = res.paths.at(0);
  std::cout << "End-to-end latency of 'pedal_to_shift': " << to_string(path.latency_min)
            << " .. " << to_string(path.latency_max) << " (deadline "
            << to_string(path.deadline) << ", " << (path.met ? "met" : "MISSED") << ")\n";

  // --- Figure 6: the four arrows -------------------------------------------
  const CanRtaConfig bus_rta = best_case_assumptions();

  // OEM -> supplier: required send jitter for the new message.
  const Duration max_send_jitter = max_own_jitter(km, bus_rta, "pedal_position");
  std::cout << "\n[OEM->supplier]    required send jitter of pedal_position: <= "
            << to_string(max_send_jitter * 8 / 10) << " (with 20% margin)\n";

  // supplier -> OEM: guaranteed send jitter, from the supplier's own ECU
  // analysis (its task WCETs and priorities stay private!).
  const EcuResult& eng = res.ecus.at("ENG");
  Duration guaranteed_jitter = Duration::zero();
  for (const auto& t : eng.tasks)
    if (t.name == "pedal_sample") guaranteed_jitter = t.response_jitter();
  std::cout << "[supplier->OEM]    guaranteed send jitter (from ECU analysis): "
            << to_string(guaranteed_jitter) << "\n";

  // supplier -> OEM: required arrival timing for the control input.
  std::vector<EcuDatasheet> sheets(1);
  sheets[0].ecu = "ENG";
  sheets[0].send_guarantees.push_back({"pedal_position", guaranteed_jitter});
  EcuDatasheet trans;
  trans.ecu = "TRANS";
  trans.arrival_requirements.push_back(
      {"pedal_position", "TRANS", Duration::ms(5), Duration::ms(4)});
  sheets.push_back(trans);
  std::cout << "[supplier->OEM]    TRANS needs pedal_position within 5 ms, jitter <= 4 ms\n";

  // OEM -> supplier: what the bus guarantees, checked in one shot.
  std::vector<SendJitterRequirement> reqs = {{"pedal_position", max_send_jitter * 8 / 10}};
  const DualityReport duality = check_duality(km, bus_rta, reqs, sheets);
  std::cout << "[OEM->supplier]    duality check: "
            << (duality.ok() ? "all requirements and guarantees consistent\n"
                             : strprintf("%zu violations\n", duality.violations.size()));
  for (const auto& v : duality.violations)
    std::cout << "                   - " << v.message << ": " << v.detail << "\n";

  // --- Iterative refinement (Section 5.2) ----------------------------------
  RefinementSession session{km, best_case_assumptions()};
  session.commit_send_jitter("pedal_position", guaranteed_jitter);
  session.freeze_priority("pedal_position");
  std::cout << "\nAfter commitment: " << strprintf("%.0f%%", 100 * session.unknown_fraction())
            << " of jitters remain assumptions; slack budget of pedal_position: "
            << to_string(session.slack_budget("pedal_position")) << "\n";
  return duality.ok() && path.met ? 0 : 1;
}

// The OEM integration workflow of paper Section 4, end to end:
//
//   1. import the power-train K-Matrix (here: generated, then loaded from
//      CSV exactly as the paper imports the OEM artifact),
//   2. experiment 1: zero jitter, verify all deadlines hold,
//   3. experiment 2: realistic jitter assumptions + error models,
//   4. sensitivity analysis: which messages are robust, which are not,
//   5. CAN-ID optimization to a zero-loss configuration at 25 % jitter,
//   6. derive supplier requirements for the most sensitive messages.

#include <algorithm>
#include <iostream>

#include "symcan/analysis/presets.hpp"
#include "symcan/can/kmatrix_io.hpp"
#include "symcan/opt/ga.hpp"
#include "symcan/sensitivity/robustness.hpp"
#include "symcan/supplychain/datasheet.hpp"
#include "symcan/util/table.hpp"
#include "symcan/workload/powertrain.hpp"

using namespace symcan;

int main() {
  // 1. The OEM's starting artifact. We generate the synthetic stand-in
  // for the proprietary matrix and round-trip it through the CSV importer
  // to mirror the paper's "automatically imported from the K-Matrix".
  const std::string csv = kmatrix_to_csv(generate_powertrain(PowertrainConfig::case_study()));
  const KMatrix km = kmatrix_from_csv(csv);
  std::cout << "Imported K-Matrix: " << km.size() << " messages, " << km.nodes().size()
            << " ECUs, " << strprintf("%.0f%%", 100 * km.utilization(true))
            << " worst-case load\n";

  // 2. Experiment 1: zero jitters, no errors — all deadlines met?
  {
    KMatrix zero = km;
    assume_jitter_fraction(zero, 0.0, true);
    CanRtaConfig cfg;
    cfg.worst_case_stuffing = true;
    cfg.deadline_override = DeadlinePolicy::kPeriod;
    const BusResult res = CanRta{zero, cfg}.analyze();
    std::cout << "\nExperiment 1 (zero jitter): "
              << (res.all_schedulable() ? "all deadlines met\n"
                                        : strprintf("%zu misses!\n", res.miss_count()));
  }

  // 3. Experiment 2: realistic assumptions — 25 % jitter, burst errors,
  // bit stuffing, min re-arrival deadlines.
  {
    KMatrix realistic = km;
    assume_jitter_fraction(realistic, 0.25, true);
    const BusResult res = CanRta{realistic, worst_case_assumptions()}.analyze();
    std::cout << "Experiment 2 (25% jitter + burst errors): " << res.miss_count() << " of "
              << res.messages.size() << " messages can be lost\n";
  }

  // 4. Sensitivity analysis (Section 4.1).
  JitterSweepConfig sweep;
  sweep.rta = best_case_assumptions();
  const SensitivityReport rep = analyze_sensitivity(km, sweep);
  std::cout << "\nSensitivity census: " << rep.count(Robustness::kRobust) << " robust, "
            << rep.count(Robustness::kMedium) << " medium, "
            << rep.count(Robustness::kSensitive) << " sensitive, "
            << rep.count(Robustness::kVerySensitive) << " very sensitive\n";

  // 5. Optimization (Section 4.3).
  GaConfig ga;
  ga.rta = worst_case_assumptions();
  ga.eval_fractions = {0.25, 0.40, 0.60};
  ga.population = 32;
  ga.archive = 16;
  ga.generations = 25;
  ga.seeds = {current_order(km), deadline_monotonic_order(km)};
  const GaResult opt = optimize_priorities(km, ga);
  const KMatrix optimized = apply_priority_order(km, opt.best.order);
  {
    KMatrix at25 = optimized;
    assume_jitter_fraction(at25, 0.25, true);
    const BusResult res = CanRta{at25, worst_case_assumptions()}.analyze();
    std::cout << "\nAfter GA optimization (" << opt.evaluations << " evaluations): "
              << res.miss_count() << " losses at 25% jitter under worst-case assumptions\n";
  }

  // 6. Supplier requirements for the most critical senders (Section 5).
  std::vector<const MessageSensitivity*> critical;
  for (const auto& m : rep.messages)
    if (m.cls == Robustness::kSensitive || m.cls == Robustness::kVerySensitive)
      critical.push_back(&m);
  std::sort(critical.begin(), critical.end(), [](const auto* a, const auto* b) {
    return a->max_tolerable_fraction < b->max_tolerable_fraction;
  });
  TextTable t;
  t.header({"critical message", "sender", "required max send jitter"});
  int shown = 0;
  for (const auto* m : critical) {
    if (shown++ >= 5) break;
    const Duration bound = max_own_jitter(optimized, worst_case_assumptions(), m->name);
    t.row({m->name, optimized.find_message(m->name)->sender,
           to_string(bound * 8 / 10)});  // 20 % engineering margin
  }
  std::cout << '\n';
  t.print(std::cout);
  std::cout << "\nThese requirements go into the supplier requirement specifications —\n"
               "determined before any ECU prototype exists (Section 5).\n";
  return 0;
}

// Ablation — diagnosis/flashing traffic and the "N out of M" fallacy
// (Section 2: "How about diagnosis and ECU flashing?" and "sending
// significantly more messages than actually 'required' further increases
// bus load and should be avoided, since this also increases the number
// of lost messages").

#include "common.hpp"
#include "symcan/analysis/load.hpp"
#include "symcan/workload/scenario.hpp"

namespace symcan::bench {
namespace {

void summarize(const char* label, const KMatrix& km, TextTable& t) {
  KMatrix variant = km;
  assume_jitter_fraction(variant, 0.15, true);
  const BusResult res = CanRta{variant, worst_case_assumptions()}.analyze();
  const double util = analyze_load(km, true).utilization;
  t.row({label, pct(util), strprintf("%zu/%zu", res.miss_count(), res.messages.size()),
         pct(res.miss_fraction())});
}

void reproduce() {
  banner("Flashing/diagnosis session impact (15% jitter, worst-case assumptions)");
  TextTable t;
  t.header({"scenario", "bus load", "misses", "loss"});

  const KMatrix base = case_study_matrix();
  summarize("base power-train bus", base, t);

  KMatrix with_diag = base;
  DiagnosisConfig diag;
  add_diagnosis_traffic(with_diag, diag);
  summarize("+ flashing session (ISO-TP style)", with_diag, t);

  DiagnosisConfig gentle = diag;
  gentle.frame_spacing = Duration::ms(5);
  gentle.burst = 2;
  KMatrix with_gentle = base;
  add_diagnosis_traffic(with_gentle, gentle);
  summarize("+ throttled flashing (5 ms spacing)", with_gentle, t);
  t.print(std::cout);
  std::cout << "Diagnostic IDs sit at the lowest priority, so regular traffic keeps\n"
               "its bounds — but the added load pushes marginal messages over.\n";

  banner("The 'N out of M' fallacy: redundant sending vs analysis-backed design");
  TextTable t2;
  t2.header({"strategy", "bus load", "misses", "loss"});
  summarize("analysis-backed: send once", base, t2);
  for (const std::int64_t m_factor : {2, 3}) {
    KMatrix redundant = base;
    // OEM conservatively sends the 25% slowest (lowest-priority) signals
    // M times as often so "N out of M" survive.
    const auto order = redundant.priority_order();
    std::vector<std::string> chosen;
    for (std::size_t i = order.size() - order.size() / 4; i < order.size(); ++i)
      chosen.push_back(redundant.messages()[order[i]].name);
    apply_n_out_of_m(redundant, m_factor, [&](const CanMessage& msg) {
      return std::find(chosen.begin(), chosen.end(), msg.name) != chosen.end();
    });
    summarize(strprintf("N-out-of-%lld oversending", static_cast<long long>(m_factor)).c_str(),
              redundant, t2);
  }
  t2.print(std::cout);
  std::cout << "Oversending raises the load and the number of lost messages — the\n"
               "paper's argument for bounding loss analytically instead.\n";
}

void BM_AnalyzeWithDiagnosis(benchmark::State& state) {
  KMatrix km = case_study_matrix();
  add_diagnosis_traffic(km, DiagnosisConfig{});
  assume_jitter_fraction(km, 0.15, true);
  const CanRtaConfig cfg = worst_case_assumptions();
  for (auto _ : state) {
    const CanRta rta{km, cfg};
    benchmark::DoNotOptimize(rta.analyze());
  }
}
BENCHMARK(BM_AnalyzeWithDiagnosis);

}  // namespace
}  // namespace symcan::bench

int main(int argc, char** argv) {
  symcan::bench::json_arg(argc, argv);
  symcan::bench::reproduce();
  return symcan::bench::run_benchmarks(argc, argv);
}

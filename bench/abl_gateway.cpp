// Ablation — gateway strategies (paper Section 5: "gatewaying strategies
// can be optimized ... many parameters that can be tuned such as queue
// configuration"). A bursty body-domain stream is forwarded onto the
// power-train bus through three gateway configurations; the table shows
// the trade-off the OEM tunes: gateway latency and queue depth vs. the
// interference the forwarded stream inflicts on the power-train traffic.

#include "common.hpp"
#include "symcan/core/gateway.hpp"

namespace symcan::bench {
namespace {

/// Destination bus plus the forwarded message, with the forwarded
/// stream's event model substituted per strategy.
BusResult destination_verdict(const KMatrix& base, const ForwardedStream& f) {
  KMatrix km = base;
  CanMessage fwd;
  fwd.name = "FWD_BODY";
  fwd.id = 0x10;  // body events preempt everything: the stress placement
  fwd.payload_bytes = 8;
  fwd.period = f.output.period();
  fwd.jitter = f.output.jitter();
  fwd.min_distance = f.output.min_distance();
  fwd.jitter_known = true;  // the strategy defines this jitter, keep it
  fwd.sender = "GW";
  fwd.receivers = {km.nodes().front().name};
  km.add_message(fwd);
  KMatrix variant = km;
  assume_jitter_fraction(variant, 0.15, false);
  return CanRta{variant, worst_case_assumptions()}.analyze();
}

void reproduce() {
  // Destination: a mid-life power-train bus (50 % load) whose busy
  // windows are short — where queue configuration visibly matters.
  PowertrainConfig cfg = PowertrainConfig::case_study();
  cfg.target_utilization = 0.45;
  const KMatrix base = generate_powertrain(cfg);
  // The incoming body-domain stream: 5 ms rate, heavily bursty (a door
  // module dumping state changes), paced at >= 300 us by its own bus.
  const EventModel body_in =
      EventModel::periodic_burst(Duration::ms(5), Duration::ms(20), Duration::us(300));

  struct Row {
    const char* label;
    GatewayConfig cfg;
  };
  std::vector<Row> rows;
  rows.push_back({"immediate (per-stream buffer)", [] {
                    GatewayConfig c;
                    c.strategy = GatewayStrategy::kImmediate;
                    return c;
                  }()});
  rows.push_back({"FIFO queue, 1 ms service", [] {
                    GatewayConfig c;
                    c.strategy = GatewayStrategy::kFifo;
                    c.fifo_service = EventModel::periodic(Duration::ms(1));
                    return c;
                  }()});
  rows.push_back({"shaped, d_min = 2 ms", [] {
                    GatewayConfig c;
                    c.strategy = GatewayStrategy::kShaped;
                    c.shaping_distance = Duration::ms(2);
                    return c;
                  }()});

  banner("Gateway strategy trade-off for a bursty forwarded stream");
  TextTable t;
  t.header({"strategy", "gw delay (max)", "queue depth", "dst misses", "max wcrt below FWD"});
  for (const auto& row : rows) {
    // The gateway also forwards two background streams through the same
    // path (they share the FIFO when there is one).
    const std::vector<EventModel> siblings = {EventModel::periodic(Duration::ms(10)),
                                              EventModel::periodic(Duration::ms(20))};
    const ForwardedStream f = forward_stream(body_in, row.cfg, siblings);
    const BusResult res = destination_verdict(base, f);
    Duration worst_low = Duration::zero();
    bool diverged = false;
    for (const auto& m : res.messages) {
      if (m.id <= 0x10) continue;  // only traffic that FWD preempts
      if (m.wcrt.is_infinite())
        diverged = true;
      else
        worst_low = max(worst_low, m.wcrt);
    }
    t.row({row.label, to_string(f.max_delay),
           f.queue_depth ? strprintf("%lld", static_cast<long long>(*f.queue_depth))
                         : "unbounded",
           strprintf("%zu/%zu", res.miss_count(), res.messages.size()),
           diverged ? "inf" : to_string(worst_low)});
  }
  t.print(std::cout);
  std::cout << "Shaping trades gateway-local smoothing delay for much lower\n"
               "interference downstream; the FIFO is cheapest in hardware but\n"
               "couples unrelated streams. All three are provable choices the\n"
               "OEM controls without touching any supplier ECU (Section 5).\n";
}

void BM_ForwardShaped(benchmark::State& state) {
  const EventModel body_in =
      EventModel::periodic_burst(Duration::ms(5), Duration::ms(20), Duration::us(300));
  GatewayConfig cfg;
  cfg.strategy = GatewayStrategy::kShaped;
  cfg.shaping_distance = Duration::ms(2);
  for (auto _ : state) benchmark::DoNotOptimize(forward_stream(body_in, cfg));
}
BENCHMARK(BM_ForwardShaped);

void BM_ForwardFifoWithSiblings(benchmark::State& state) {
  const EventModel body_in =
      EventModel::periodic_burst(Duration::ms(5), Duration::ms(20), Duration::us(300));
  GatewayConfig cfg;
  cfg.strategy = GatewayStrategy::kFifo;
  cfg.fifo_service = EventModel::periodic(Duration::ms(1));
  const std::vector<EventModel> siblings(4, EventModel::periodic(Duration::ms(10)));
  for (auto _ : state) benchmark::DoNotOptimize(forward_stream(body_in, cfg, siblings));
}
BENCHMARK(BM_ForwardFifoWithSiblings);

}  // namespace
}  // namespace symcan::bench

int main(int argc, char** argv) {
  symcan::bench::json_arg(argc, argv);
  symcan::bench::reproduce();
  return symcan::bench::run_benchmarks(argc, argv);
}

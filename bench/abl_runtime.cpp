// Ablation — analysis runtime scaling (Section 4: "we could do such
// what-if observations within minutes, without any simulation or test
// equipment"). Measures full-matrix worst-case analysis and a 13-point
// what-if sweep over matrices of 10..200 messages.

#include <chrono>

#include "common.hpp"
#include "symcan/sensitivity/sweep.hpp"

namespace symcan::bench {
namespace {

KMatrix matrix_of(int messages) {
  PowertrainConfig cfg = PowertrainConfig::case_study();
  cfg.message_count = messages;
  cfg.ecu_count = std::max(3, messages / 10);
  return generate_powertrain(cfg);
}

void reproduce() {
  banner("What-if analysis speed: one full-matrix analysis per row");
  TextTable t;
  t.header({"messages", "analysis", "13-point sweep"});
  for (int n : {10, 25, 56, 100, 200}) {
    const KMatrix km = matrix_of(n);
    const auto t0 = std::chrono::steady_clock::now();
    const CanRta rta{km, worst_case_assumptions()};
    benchmark::DoNotOptimize(rta.analyze());
    const auto t1 = std::chrono::steady_clock::now();
    JitterSweepConfig sweep;
    sweep.rta = worst_case_assumptions();
    benchmark::DoNotOptimize(sweep_jitter(km, sweep));
    const auto t2 = std::chrono::steady_clock::now();
    const auto us = [](auto d) {
      return strprintf(
          "%7.2f ms",
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::microseconds>(d).count()) /
              1000.0);
    };
    t.row({strprintf("%d", n), us(t1 - t0), us(t2 - t1)});
  }
  t.print(std::cout);
  std::cout << "Paper claim: minutes on 2005 hardware; milliseconds here — the\n"
               "methodology scales to interactive what-if loops.\n";
}

void BM_AnalyzeByMessageCount(benchmark::State& state) {
  const KMatrix km = matrix_of(static_cast<int>(state.range(0)));
  const CanRtaConfig cfg = worst_case_assumptions();
  for (auto _ : state) {
    const CanRta rta{km, cfg};
    benchmark::DoNotOptimize(rta.analyze());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AnalyzeByMessageCount)->Arg(10)->Arg(25)->Arg(56)->Arg(100)->Arg(200)->Complexity();

void BM_AnalyzeSingleMessage(benchmark::State& state) {
  const KMatrix km = matrix_of(56);
  const CanRta rta{km, worst_case_assumptions()};
  const std::size_t last = km.priority_order().back();
  for (auto _ : state) benchmark::DoNotOptimize(rta.analyze_message(last));
}
BENCHMARK(BM_AnalyzeSingleMessage);

}  // namespace
}  // namespace symcan::bench

int main(int argc, char** argv) {
  symcan::bench::json_arg(argc, argv);
  symcan::bench::reproduce();
  return symcan::bench::run_benchmarks(argc, argv);
}

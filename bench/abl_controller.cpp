// Ablation — controller types (Section 3.2: "the controller type
// (basicCAN, fullCAN, etc.) influences the order in which messages are
// sent"). Rebuilds the case-study bus with every node fullCAN vs every
// node basicCAN (1 and 3 tx buffers) and compares both the analysis
// bounds and the simulator's observed worst responses.

#include "common.hpp"
#include "symcan/sim/simulator.hpp"

namespace symcan::bench {
namespace {

KMatrix with_controllers(ControllerType type, int tx_buffers) {
  const KMatrix base = case_study_matrix();
  KMatrix out{base.bus_name(), base.timing()};
  for (EcuNode n : base.nodes()) {
    n.controller = type;
    n.tx_buffers = tx_buffers;
    out.add_node(std::move(n));
  }
  for (const auto& m : base.messages()) out.add_message(m);
  return out;
}

void reproduce() {
  banner("Controller-type ablation at 15% jitter (worst-case assumptions)");
  TextTable t;
  t.header({"configuration", "misses", "max wcrt (analysis)", "max observed (sim 5s)"});
  const struct {
    const char* label;
    ControllerType type;
    int bufs;
  } variants[] = {{"all fullCAN", ControllerType::kFullCan, 1},
                  {"all basicCAN, 1 tx buffer", ControllerType::kBasicCan, 1},
                  {"all basicCAN, 3 tx buffers", ControllerType::kBasicCan, 3}};
  for (const auto& v : variants) {
    KMatrix km = with_controllers(v.type, v.bufs);
    assume_jitter_fraction(km, 0.15, true);
    const BusResult res = CanRta{km, worst_case_assumptions()}.analyze();
    Duration worst = Duration::zero();
    bool diverged = false;
    for (const auto& m : res.messages) {
      if (m.wcrt.is_infinite())
        diverged = true;
      else
        worst = max(worst, m.wcrt);
    }
    SimConfig sim;
    sim.duration = Duration::s(5);
    sim.seed = 3;
    sim.stuffing = StuffingMode::kRandom;
    const SimResult obs = simulate(km, sim);
    Duration observed = Duration::zero();
    for (const auto& m : obs.messages) observed = max(observed, m.wcrt_observed);
    t.row({v.label, strprintf("%zu/%zu", res.miss_count(), res.messages.size()),
           diverged ? "inf" : to_string(worst), to_string(observed)});
  }
  t.print(std::cout);
  std::cout << "basicCAN's committed transmit buffers add intra-node priority\n"
               "inversion: blocking grows with the buffer count, and the analysis\n"
               "bound stays above the simulated observation in each variant.\n";
}

void BM_AnalyzeFullCan(benchmark::State& state) {
  KMatrix km = with_controllers(ControllerType::kFullCan, 1);
  assume_jitter_fraction(km, 0.15, true);
  const CanRtaConfig cfg = worst_case_assumptions();
  for (auto _ : state) {
    const CanRta rta{km, cfg};
    benchmark::DoNotOptimize(rta.analyze());
  }
}
BENCHMARK(BM_AnalyzeFullCan);

void BM_AnalyzeBasicCan(benchmark::State& state) {
  KMatrix km = with_controllers(ControllerType::kBasicCan, 3);
  assume_jitter_fraction(km, 0.15, true);
  const CanRtaConfig cfg = worst_case_assumptions();
  for (auto _ : state) {
    const CanRta rta{km, cfg};
    benchmark::DoNotOptimize(rta.analyze());
  }
}
BENCHMARK(BM_AnalyzeBasicCan);

}  // namespace
}  // namespace symcan::bench

int main(int argc, char** argv) {
  symcan::bench::json_arg(argc, argv);
  symcan::bench::reproduce();
  return symcan::bench::run_benchmarks(argc, argv);
}

// Ablation — ECU-side scheduling (paper Section 5.2: SymTA/S "considers
// operating system (OSEK) overhead, complex priority schemes with
// cooperative and preemptive tasks as well as hardware interrupts").
//
// One representative supplier ECU, analyzed and simulated under design
// alternatives the supplier controls: cooperative segment sizing, OS
// overhead, and ISR load. This is the analysis the supplier runs to
// produce the send-jitter guarantees of Figure 6 — without exposing any
// of it to the OEM.

#include "common.hpp"
#include "symcan/analysis/ecu_rta.hpp"
#include "symcan/sim/ecu_simulator.hpp"

namespace symcan::bench {
namespace {

std::vector<Task> ecu_tasks(Duration coop_segment, Duration os_overhead,
                            Duration isr_period) {
  auto mk = [&](const char* name, int prio, Duration bcet, Duration wcet, Duration period,
                SchedClass sched) {
    Task t;
    t.name = name;
    t.priority = prio;
    t.bcet = bcet;
    t.wcet = wcet;
    t.sched = sched;
    t.os_overhead = os_overhead;
    t.activation = EventModel::periodic(period);
    t.deadline = period;
    return t;
  };
  std::vector<Task> tasks;
  tasks.push_back(mk("can_isr", 1, Duration::us(15), Duration::us(45), isr_period,
                     SchedClass::kInterrupt));
  tasks.push_back(mk("pedal_sample", 1, Duration::us(120), Duration::us(350), Duration::ms(5),
                     SchedClass::kPreemptiveTask));
  tasks.push_back(mk("control_loop", 2, Duration::us(400), Duration::ms(1), Duration::ms(10),
                     SchedClass::kPreemptiveTask));
  Task diag = mk("diagnostics", 8, Duration::ms(1), Duration::ms(4), Duration::ms(50),
                 SchedClass::kCooperativeTask);
  diag.max_segment = coop_segment;
  tasks.push_back(diag);
  return tasks;
}

void reproduce() {
  banner("Cooperative segment sizing: blocking the supplier tunes (Section 5.2)");
  TextTable t;
  t.header({"diag segment", "pedal wcrt (analysis)", "pedal wcrt (sim 10s)", "pedal jitter out"});
  for (const std::int64_t seg_us : {4000, 2000, 1000, 500, 250}) {
    const auto tasks =
        ecu_tasks(Duration::us(seg_us), Duration::us(20), Duration::ms(1));
    const EcuResult res = EcuRta{tasks}.analyze();
    EcuSimConfig sim;
    sim.duration = Duration::s(10);
    sim.seed = 5;
    const EcuSimResult obs = simulate_ecu(tasks, sim);
    const TaskResult* pedal = nullptr;
    for (const auto& task : res.tasks)
      if (task.name == "pedal_sample") pedal = &task;
    t.row({strprintf("%lld us", static_cast<long long>(seg_us)), to_string(pedal->wcrt),
           to_string(obs.find("pedal_sample")->wcrt_observed),
           to_string(pedal->response_jitter())});
  }
  t.print(std::cout);
  std::cout << "Shorter cooperative segments shrink the blocking on the critical\n"
               "task — directly shrinking the send jitter the supplier can\n"
               "guarantee to the OEM. Simulation stays below every bound.\n";

  banner("OSEK overhead and ISR load (pedal_sample wcrt)");
  TextTable t2;
  t2.header({"os overhead", "isr period", "pedal wcrt", "utilization"});
  for (const std::int64_t ovh_us : {0, 20, 80}) {
    for (const std::int64_t isr_ms : {1, 2}) {
      const auto tasks =
          ecu_tasks(Duration::ms(1), Duration::us(ovh_us), Duration::ms(isr_ms));
      const EcuResult res = EcuRta{tasks}.analyze();
      const TaskResult* pedal = nullptr;
      for (const auto& task : res.tasks)
        if (task.name == "pedal_sample") pedal = &task;
      t2.row({strprintf("%lld us", static_cast<long long>(ovh_us)),
              strprintf("%lld ms", static_cast<long long>(isr_ms)), to_string(pedal->wcrt),
              pct(res.utilization)});
    }
  }
  t2.print(std::cout);
}

void BM_EcuAnalysis(benchmark::State& state) {
  const auto tasks = ecu_tasks(Duration::ms(1), Duration::us(20), Duration::ms(1));
  for (auto _ : state) {
    const EcuRta rta{tasks};
    benchmark::DoNotOptimize(rta.analyze());
  }
}
BENCHMARK(BM_EcuAnalysis);

void BM_EcuSimulationOneSecond(benchmark::State& state) {
  const auto tasks = ecu_tasks(Duration::ms(1), Duration::us(20), Duration::ms(1));
  EcuSimConfig cfg;
  cfg.duration = Duration::s(1);
  for (auto _ : state) benchmark::DoNotOptimize(simulate_ecu(tasks, cfg));
}
BENCHMARK(BM_EcuSimulationOneSecond);

}  // namespace
}  // namespace symcan::bench

int main(int argc, char** argv) {
  symcan::bench::json_arg(argc, argv);
  symcan::bench::reproduce();
  return symcan::bench::run_benchmarks(argc, argv);
}

// Figure 5 — "Message Loss due to Jitter before and after Optimization":
// the paper's headline figure. Four curves of "% of messages that miss
// their deadline" over assumed jitter (0..60 % of period):
//
//   best case       — no errors, no stuffing, deadline = period
//   worst case      — burst errors + bit stuffing + min re-arrival deadline
//   optimized best  — same assumptions, after GA CAN-ID optimization
//   optimized worst
//
// Expected shape (paper Section 4.2/4.3): best case loses nothing until
// jitter exceeds 25 %, then slightly increases; worst case loses messages
// from very small jitters and grows rapidly; the optimized system loses
// nothing at 25 % jitter even under the worst-case assumptions.

#include "common.hpp"
#include "symcan/opt/ga.hpp"
#include "symcan/sensitivity/sweep.hpp"

namespace symcan::bench {
namespace {

GaConfig ga_config(const KMatrix& km) {
  GaConfig cfg;
  cfg.rta = worst_case_assumptions();
  cfg.eval_fractions = {0.25, 0.40, 0.60};
  cfg.population = 32;
  cfg.archive = 16;
  cfg.generations = 25;
  cfg.seeds = {current_order(km), deadline_monotonic_order(km)};
  return cfg;
}

void reproduce() {
  const KMatrix km = case_study_matrix();

  banner("Optimizing CAN IDs (SPEA2-style GA, Section 4.3)");
  const GaResult ga = optimize_priorities(km, ga_config(km));
  std::cout << strprintf("evaluations: %d, pareto size: %zu, best misses (weighted): %.0f\n",
                         ga.evaluations, ga.pareto.size(), ga.best.misses);
  const KMatrix opt = apply_priority_order(km, ga.best.order);

  JitterSweepConfig best;
  best.rta = best_case_assumptions();
  JitterSweepConfig worst;
  worst.rta = worst_case_assumptions();

  const auto orig_best = sweep_jitter(km, best);
  const auto orig_worst = sweep_jitter(km, worst);
  const auto opt_best = sweep_jitter(opt, best);
  const auto opt_worst = sweep_jitter(opt, worst);

  banner("Figure 5: % messages missing their deadline vs jitter");
  TextTable t;
  t.header({"jitter", "best case", "worst case", "opt best", "opt worst", "worst-case bars"});
  for (std::size_t i = 0; i < orig_best.fractions.size(); ++i) {
    t.row({pct(orig_best.fractions[i]), pct(orig_best.miss_fraction(i)),
           pct(orig_worst.miss_fraction(i)), pct(opt_best.miss_fraction(i)),
           pct(opt_worst.miss_fraction(i)),
           ascii_bar(orig_worst.miss_fraction(i), 1.0, 20) + "|" +
               ascii_bar(opt_worst.miss_fraction(i), 1.0, 20)});
  }
  t.print(std::cout);

  // The paper's quantitative claims, asserted in output form.
  std::size_t idx25 = 0;
  for (std::size_t i = 0; i < orig_best.fractions.size(); ++i)
    if (std::abs(orig_best.fractions[i] - 0.25) < 1e-9) idx25 = i;
  std::cout << strprintf(
      "\nclaims: best-case loss at <=25%% jitter: %s (paper: none)\n"
      "        optimized worst-case loss at 25%%: %s (paper: none)\n"
      "        non-opt worst-case loss at 25%%  : %s (paper: >0, growing fast)\n",
      pct(orig_best.miss_fraction(idx25)).c_str(), pct(opt_worst.miss_fraction(idx25)).c_str(),
      pct(orig_worst.miss_fraction(idx25)).c_str());
}

void BM_SweepWorstCase(benchmark::State& state) {
  const KMatrix km = case_study_matrix();
  JitterSweepConfig cfg;
  cfg.rta = worst_case_assumptions();
  for (auto _ : state) benchmark::DoNotOptimize(sweep_jitter(km, cfg));
}
BENCHMARK(BM_SweepWorstCase);

void BM_GaGeneration(benchmark::State& state) {
  const KMatrix km = case_study_matrix();
  GaConfig cfg = ga_config(km);
  cfg.generations = 1;
  cfg.population = 16;
  cfg.archive = 8;
  for (auto _ : state) benchmark::DoNotOptimize(optimize_priorities(km, cfg));
}
BENCHMARK(BM_GaGeneration);

}  // namespace
}  // namespace symcan::bench

int main(int argc, char** argv) {
  symcan::bench::json_arg(argc, argv);
  symcan::bench::reproduce();
  return symcan::bench::run_benchmarks(argc, argv);
}

// Ablation — TimeTable (offset) activation, paper Section 5.2: "Our
// flexible SymTA/S technology is able to consider TimeTable activation of
// messages and tasks, typically found in the automotive industry".
//
// Takes the case-study matrix (periods grid-aligned, as real K-Matrices
// are), assigns spread offsets per sender, and compares loss-vs-jitter
// for (a) event-triggered release with offset-blind analysis, (b) the
// same TimeTable schedule analyzed offset-blind, and (c) offset-aware
// analysis — quantifying both what offsets buy and what the analysis
// must know to prove it.

#include "common.hpp"
#include "symcan/sensitivity/sweep.hpp"

namespace symcan::bench {
namespace {

void reproduce() {
  KMatrix km = case_study_matrix();
  snap_periods(km, Duration::ms(1));
  KMatrix tt = km;
  assign_tt_offsets(tt);

  JitterSweepConfig blind_cfg;
  blind_cfg.rta = worst_case_assumptions();
  blind_cfg.rta.use_offsets = false;
  JitterSweepConfig aware_cfg;
  aware_cfg.rta = worst_case_assumptions();

  const auto event_triggered = sweep_jitter(km, blind_cfg);
  const auto tt_blind = sweep_jitter(tt, blind_cfg);
  const auto tt_aware = sweep_jitter(tt, aware_cfg);

  banner("TimeTable offsets: loss vs jitter (worst-case assumptions)");
  TextTable t;
  t.header({"jitter", "event-triggered", "TT, offset-blind", "TT, offset-aware"});
  for (std::size_t i = 0; i < event_triggered.fractions.size(); ++i) {
    t.row({pct(event_triggered.fractions[i]), pct(event_triggered.miss_fraction(i)),
           pct(tt_blind.miss_fraction(i)), pct(tt_aware.miss_fraction(i))});
  }
  t.print(std::cout);
  std::cout << "Offsets only pay off when the analysis knows them: the offset-blind\n"
               "columns are identical by construction, the offset-aware bound is\n"
               "never worse and usually strictly better (Section 5.2).\n";

  banner("Per-message improvement at 25% jitter (top 8)");
  KMatrix at25 = tt;
  assume_jitter_fraction(at25, 0.25, true);
  CanRtaConfig aware = worst_case_assumptions();
  CanRtaConfig blind = worst_case_assumptions();
  blind.use_offsets = false;
  const BusResult ra = CanRta{at25, aware}.analyze();
  const BusResult rb = CanRta{at25, blind}.analyze();
  struct Delta {
    const MessageResult* a;
    const MessageResult* b;
  };
  std::vector<Delta> deltas;
  for (std::size_t i = 0; i < ra.messages.size(); ++i)
    deltas.push_back({&ra.messages[i], &rb.messages[i]});
  std::sort(deltas.begin(), deltas.end(), [](const Delta& x, const Delta& y) {
    return (x.b->wcrt - x.a->wcrt) > (y.b->wcrt - y.a->wcrt);
  });
  TextTable t2;
  t2.header({"message", "offset-blind wcrt", "offset-aware wcrt", "saved"});
  for (std::size_t i = 0; i < 8 && i < deltas.size(); ++i)
    t2.row({deltas[i].a->name, to_string(deltas[i].b->wcrt), to_string(deltas[i].a->wcrt),
            to_string(deltas[i].b->wcrt - deltas[i].a->wcrt)});
  t2.print(std::cout);
}

void BM_OffsetAwareAnalysis(benchmark::State& state) {
  KMatrix km = case_study_matrix();
  snap_periods(km, Duration::ms(1));
  assign_tt_offsets(km);
  assume_jitter_fraction(km, 0.25, true);
  const CanRtaConfig cfg = worst_case_assumptions();
  for (auto _ : state) {
    const CanRta rta{km, cfg};
    benchmark::DoNotOptimize(rta.analyze());
  }
}
BENCHMARK(BM_OffsetAwareAnalysis);

void BM_OffsetBlindAnalysis(benchmark::State& state) {
  KMatrix km = case_study_matrix();
  snap_periods(km, Duration::ms(1));
  assign_tt_offsets(km);
  assume_jitter_fraction(km, 0.25, true);
  CanRtaConfig cfg = worst_case_assumptions();
  cfg.use_offsets = false;
  for (auto _ : state) {
    const CanRta rta{km, cfg};
    benchmark::DoNotOptimize(rta.analyze());
  }
}
BENCHMARK(BM_OffsetBlindAnalysis);

void BM_AssignOffsets(benchmark::State& state) {
  KMatrix base = case_study_matrix();
  snap_periods(base, Duration::ms(1));
  for (auto _ : state) {
    KMatrix km = base;
    benchmark::DoNotOptimize(assign_tt_offsets(km));
  }
}
BENCHMARK(BM_AssignOffsets);

}  // namespace
}  // namespace symcan::bench

int main(int argc, char** argv) {
  symcan::bench::json_arg(argc, argv);
  symcan::bench::reproduce();
  return symcan::bench::run_benchmarks(argc, argv);
}

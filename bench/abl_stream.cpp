// Ablation — streaming monitor ingest cost (ROADMAP item 3: the online
// half of "observed behaviour vs analysed bound"). The monitor's value
// proposition is that it rides along a live bus tap, so its per-frame
// cost must be negligible next to the frames themselves: a 500 kbit/s
// CAN bus tops out near 4000 frames/s, and the gate here is one million
// trace events per second through StreamAnalyzer — two orders of
// magnitude of headroom even counting release/tx/error events per frame.

#include <chrono>

#include "common.hpp"
#include "symcan/analysis/can_rta.hpp"
#include "symcan/sim/simulator.hpp"
#include "symcan/stream/analyzer.hpp"

namespace symcan::bench {
namespace {

/// One second of the case-study powertrain bus with sporadic errors:
/// every event type the monitor handles (release, tx start/end, error,
/// retransmit, loss) appears in the stream.
const Trace& case_study_trace() {
  static const Trace trace = [] {
    SimConfig cfg;
    cfg.duration = Duration::s(1);
    cfg.seed = 7;
    cfg.errors = SimErrorProcess::sporadic(Duration::ms(10));
    cfg.record_trace = true;
    return simulate(case_study_matrix(), cfg).trace;
  }();
  return trace;
}

BusResult case_study_bounds() {
  return CanRta{case_study_matrix(), worst_case_assumptions()}.analyze();
}

void reproduce() {
  banner("Streaming monitor: one second of the case-study bus");
  const Trace& trace = case_study_trace();
  stream::StreamAnalyzer an;
  an.set_bounds(case_study_bounds());

  const auto t0 = std::chrono::steady_clock::now();
  an.ingest(trace);
  an.advance_to(trace.events().back().time);
  const auto t1 = std::chrono::steady_clock::now();

  const stream::StreamStats stats = an.stats();
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
  TextTable t;
  t.header({"metric", "value"});
  t.row({"trace events", strprintf("%lld", static_cast<long long>(stats.frames))});
  t.row({"messages tracked", strprintf("%zu", stats.messages.size())});
  t.row({"health events", strprintf("%lld", static_cast<long long>(stats.health_events))});
  t.row({"bound violations", strprintf("%lld", static_cast<long long>(stats.violations))});
  t.row({"ingest wall time", strprintf("%.2f ms", 1e3 * secs)});
  t.row({"throughput", strprintf("%.1f Mevents/s",
                                 secs > 0 ? 1e-6 * static_cast<double>(stats.frames) / secs
                                          : 0.0)});
  t.print(std::cout);
  std::cout << "Gate: >= 1 Mevents/s — a live 500 kbit/s bus tap produces ~4 k\n"
               "frames/s, so the monitor keeps two orders of magnitude of headroom.\n";
}

/// The headline gate: whole-trace ingest through a fresh analyzer,
/// items/sec = trace events/sec (CI asserts >= 1M via --json export).
void BM_StreamIngest(benchmark::State& state) {
  const Trace& trace = case_study_trace();
  for (auto _ : state) {
    stream::StreamAnalyzer an;
    an.ingest(trace);
    an.advance_to(trace.events().back().time);
    benchmark::DoNotOptimize(an.frames_ingested());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.events().size()));
}
BENCHMARK(BM_StreamIngest);

/// Live-tap shape: the same stream arriving in small chunks. Chunk size 1
/// is the worst case (every event pays the batch bookkeeping).
void BM_StreamIngestChunked(benchmark::State& state) {
  const Trace& trace = case_study_trace();
  const std::size_t chunk = static_cast<std::size_t>(state.range(0));
  const TraceEvent* data = trace.events().data();
  const std::size_t size = trace.events().size();
  for (auto _ : state) {
    stream::StreamAnalyzer an;
    for (std::size_t i = 0; i < size; i += chunk) an.ingest(data + i, std::min(chunk, size - i));
    benchmark::DoNotOptimize(an.frames_ingested());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(size));
}
BENCHMARK(BM_StreamIngestChunked)->Arg(1)->Arg(64)->Arg(4096);

/// Bound checking armed: the oracle adds one compare per completion.
void BM_StreamIngestWithBounds(benchmark::State& state) {
  const Trace& trace = case_study_trace();
  const BusResult bounds = case_study_bounds();
  for (auto _ : state) {
    stream::StreamAnalyzer an;
    an.set_bounds(bounds);
    an.ingest(trace);
    benchmark::DoNotOptimize(an.frames_ingested());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.events().size()));
}
BENCHMARK(BM_StreamIngestWithBounds);

/// Rendering cost of the periodic status snapshot a terminal would show.
void BM_StreamStatsSnapshot(benchmark::State& state) {
  const Trace& trace = case_study_trace();
  stream::StreamAnalyzer an;
  an.ingest(trace);
  for (auto _ : state) benchmark::DoNotOptimize(stream::stream_stats_to_text(an.stats()));
}
BENCHMARK(BM_StreamStatsSnapshot);

}  // namespace
}  // namespace symcan::bench

int main(int argc, char** argv) {
  symcan::bench::json_arg(argc, argv);
  symcan::bench::reproduce();
  return symcan::bench::run_benchmarks(argc, argv);
}

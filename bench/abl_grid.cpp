// Ablation — two-dimensional what-if grid (assumed jitter x bus fault
// rate) on the case-study matrix. The reproduction section runs a
// million-point grid (rows x columns x messages >= 1e6 per-message
// solves): each row packs its jitter variant into the columnar solve
// core once and every error column re-solves from the same columns, so
// a grid cell costs solves only — the regime the columnar refactor
// targets. The micro benchmarks time a small grid at several tile sizes
// (tiling is a scheduling knob; results are byte-identical).

#include "common.hpp"
#include "symcan/sensitivity/sweep.hpp"
#include "symcan/util/parallel.hpp"

namespace symcan::bench {
namespace {

/// Grid sized to cross one million per-message solves on the ~56-message
/// case study: 150 jitter rows x 120 error columns x 56 messages.
GridSweepConfig million_point_config(int jobs) {
  GridSweepConfig cfg;
  cfg.rta = worst_case_assumptions();
  cfg.from = 0.0;
  cfg.to = 0.745;
  cfg.step = 0.005;  // 150 rows
  cfg.error_points = 120;
  cfg.parallelism = jobs;
  return cfg;
}

void reproduce(int jobs) {
  const KMatrix km = case_study_matrix();
  std::cout << "parallelism: " << ParallelExecutor::resolve(jobs) << " worker thread(s)\n";

  const GridSweepConfig cfg = million_point_config(jobs);
  const auto t0 = std::chrono::steady_clock::now();
  const GridSweepResult grid = sweep_grid(km, cfg);
  const double ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();

  std::cout << strprintf("grid: %zu x %zu cells, %zu messages/cell = %zu point solves in %.0f ms\n",
                         grid.rows(), grid.cols(), grid.messages, grid.points(), ms);
  if (obs::enabled()) obs::metrics().gauge("grid.wall_ms").set(ms);

  // Corner summary: miss fraction at the four extremes of the grid (the
  // paper's qualitative claim — pessimism grows toward high jitter and
  // high fault rates — in one table).
  TextTable t;
  t.header({"corner", "jitter", "min inter-error", "miss fraction"});
  const auto corner = [&](const char* label, std::size_t r, std::size_t c) {
    t.row({label, pct(grid.fractions[r]),
           strprintf("%.3f ms", grid.min_inter_error[c].as_ms()),
           pct(grid.miss_at(r, c))});
  };
  corner("benign", 0, 0);
  corner("high jitter", grid.rows() - 1, 0);
  corner("high faults", 0, grid.cols() - 1);
  corner("both", grid.rows() - 1, grid.cols() - 1);
  t.print(std::cout);
}

void BM_GridSweep(benchmark::State& state) {
  const KMatrix km = case_study_matrix();
  GridSweepConfig cfg;
  cfg.rta = worst_case_assumptions();
  cfg.step = 0.05;       // 13 rows
  cfg.error_points = 13;  // x 13 columns
  cfg.parallelism = static_cast<int>(state.range(0));
  cfg.tile = static_cast<int>(state.range(1));
  for (auto _ : state) benchmark::DoNotOptimize(sweep_grid(km, cfg));
}
BENCHMARK(BM_GridSweep)
    ->Args({1, 0})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({4, 7})
    ->ArgNames({"jobs", "tile"})
    ->Unit(benchmark::kMillisecond);

/// The full million-point grid as a single timed iteration: what the CI
/// smoke gate runs to prove the demo completes (and how long it takes).
void BM_MillionPointGrid(benchmark::State& state) {
  const KMatrix km = case_study_matrix();
  const GridSweepConfig cfg = million_point_config(static_cast<int>(state.range(0)));
  std::size_t points = 0;
  for (auto _ : state) {
    const GridSweepResult grid = sweep_grid(km, cfg);
    points = grid.points();
    benchmark::DoNotOptimize(points);
  }
  state.counters["points"] = static_cast<double>(points);
}
BENCHMARK(BM_MillionPointGrid)->Arg(0)->ArgName("jobs")->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace symcan::bench

int main(int argc, char** argv) {
  symcan::bench::json_arg(argc, argv);
  symcan::bench::reproduce(symcan::bench::jobs_arg(argc, argv));
  return symcan::bench::run_benchmarks(argc, argv);
}

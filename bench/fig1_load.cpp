// Figure 1 — "Simple Load Analysis Example": four ECUs producing
// 100/50/20/10 kbit/s on a 500 kbit/s CAN bus, accumulating to
// 180 kbit/s = 36 % utilization. Also prints the load view of the
// case-study power-train matrix and the two OEM load-limit verdicts
// (40 % vs 60 %) discussed in Section 3.1.

#include "common.hpp"
#include "symcan/analysis/load.hpp"

namespace symcan::bench {
namespace {

KMatrix figure1_matrix() {
  KMatrix km{"fig1", BitTiming{500'000}};
  const struct {
    const char* name;
    double kbps;
  } nodes[] = {{"ECU1", 100}, {"ECU2", 50}, {"ECU3", 20}, {"ECU4", 10}};
  for (const auto& n : nodes) {
    EcuNode node;
    node.name = n.name;
    km.add_node(node);
  }
  CanId id = 0x100;
  for (const auto& n : nodes) {
    CanMessage m;
    m.name = std::string(n.name) + "_tx";
    m.id = id++;
    m.payload_bytes = 8;
    m.period = Duration::ns(static_cast<std::int64_t>(111.0 / (n.kbps * 1000.0) * 1e9));
    m.sender = n.name;
    m.receivers = {"ECU1"};
    km.add_message(m);
  }
  return km;
}

void print_report(const KMatrix& km, bool stuffed) {
  const LoadReport r = analyze_load(km, stuffed);
  TextTable t;
  t.header({"node", "traffic", "share", ""});
  for (const auto& n : r.by_node)
    t.row({n.node, strprintf("%7.1f kbit/s", n.traffic_bps / 1000.0), pct(n.share),
           ascii_bar(n.traffic_bps, r.total_traffic_bps, 24)});
  t.print(std::cout);
  std::cout << strprintf("total traffic : %7.1f kbit/s on %.0f kbit/s bus\n",
                         r.total_traffic_bps / 1000.0, r.bandwidth_bps / 1000.0);
  std::cout << strprintf("utilization   : %s  (paper Figure 1: 36%%)\n", pct(r.utilization).c_str());
  std::cout << strprintf("40%% OEM limit : %s   60%% OEM limit : %s\n",
                         within_load_limit(r, 0.40) ? "PASS" : "FAIL",
                         within_load_limit(r, 0.60) ? "PASS" : "FAIL");
}

void reproduce() {
  banner("Figure 1: simple load analysis (paper example)");
  print_report(figure1_matrix(), false);

  banner("Load view of the synthetic power-train case study (worst-case stuffing)");
  const KMatrix km = case_study_matrix();
  print_report(km, true);
  std::cout << "NOTE (Section 3.1): the load model says nothing about deadlines or\n"
               "buffer overflow — see fig4/fig5 benches for what it misses.\n";
}

void BM_LoadAnalysisFigure1(benchmark::State& state) {
  const KMatrix km = figure1_matrix();
  for (auto _ : state) benchmark::DoNotOptimize(analyze_load(km, false));
}
BENCHMARK(BM_LoadAnalysisFigure1);

void BM_LoadAnalysisPowertrain(benchmark::State& state) {
  const KMatrix km = case_study_matrix();
  for (auto _ : state) benchmark::DoNotOptimize(analyze_load(km, true));
}
BENCHMARK(BM_LoadAnalysisPowertrain);

}  // namespace
}  // namespace symcan::bench

int main(int argc, char** argv) {
  symcan::bench::json_arg(argc, argv);
  symcan::bench::reproduce();
  return symcan::bench::run_benchmarks(argc, argv);
}

#pragma once

// Shared helpers for the figure-reproduction benches. Every bench prints
// the paper-style data series first (the reproduction), then runs its
// google-benchmark micro timings.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "symcan/analysis/presets.hpp"
#include "symcan/util/table.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan::bench {

/// The canonical case-study matrix every figure uses (Section 4: a
/// power-train bus with > 50 messages and a gateway).
inline KMatrix case_study_matrix() { return generate_powertrain(PowertrainConfig::case_study()); }

inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

inline std::string pct(double v) { return strprintf("%5.1f%%", 100.0 * v); }

/// Strip a "--jobs N" pair from argv before google-benchmark parses it;
/// returns N (0 = hardware concurrency) or `fallback` when absent. Lets
/// the reproduction section of a bench run at a chosen parallel width:
///   ./abl_optimizers --jobs 4   vs   ./abl_optimizers --jobs 1
inline int jobs_arg(int& argc, char** argv, int fallback = 0) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") != 0) continue;
    const int jobs = std::atoi(argv[i + 1]);
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
    return jobs;
  }
  return fallback;
}

/// Print data, then hand over to google-benchmark with the provided argv.
inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace symcan::bench

#pragma once

// Shared helpers for the figure-reproduction benches. Every bench prints
// the paper-style data series first (the reproduction), then runs its
// google-benchmark micro timings.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <string>

#include "symcan/analysis/presets.hpp"
#include "symcan/util/table.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan::bench {

/// The canonical case-study matrix every figure uses (Section 4: a
/// power-train bus with > 50 messages and a gateway).
inline KMatrix case_study_matrix() { return generate_powertrain(PowertrainConfig::case_study()); }

inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

inline std::string pct(double v) { return strprintf("%5.1f%%", 100.0 * v); }

/// Print data, then hand over to google-benchmark with the provided argv.
inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace symcan::bench

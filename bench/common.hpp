#pragma once

// Shared helpers for the figure-reproduction benches. Every bench prints
// the paper-style data series first (the reproduction), then runs its
// google-benchmark micro timings.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "symcan/analysis/presets.hpp"
#include "symcan/obs/export.hpp"
#include "symcan/obs/obs.hpp"
#include "symcan/util/table.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan::bench {

/// The canonical case-study matrix every figure uses (Section 4: a
/// power-train bus with > 50 messages and a gateway).
inline KMatrix case_study_matrix() { return generate_powertrain(PowertrainConfig::case_study()); }

inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

inline std::string pct(double v) { return strprintf("%5.1f%%", 100.0 * v); }

/// Strip a "--jobs N" pair from argv before google-benchmark parses it;
/// returns N (0 = hardware concurrency) or `fallback` when absent. Lets
/// the reproduction section of a bench run at a chosen parallel width:
///   ./abl_optimizers --jobs 4   vs   ./abl_optimizers --jobs 1
/// Rejects non-numeric or negative widths with exit code 2.
inline int jobs_arg(int& argc, char** argv, int fallback = 0) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") != 0) continue;
    char* end = nullptr;
    const long jobs = std::strtol(argv[i + 1], &end, 10);
    if (end == argv[i + 1] || *end != '\0' || jobs < 0) {
      std::fprintf(stderr, "%s: --jobs expects a non-negative integer, got '%s'\n", argv[0],
                   argv[i + 1]);
      std::exit(2);
    }
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
    return static_cast<int>(jobs);
  }
  return fallback;
}

/// Machine-readable output requested with "--json PATH": the destination
/// plus the bench name (argv[0] basename), e.g. BENCH_abl_runtime.json.
struct JsonRequest {
  std::string path;
  std::string bench_name;
  bool active() const { return !path.empty(); }
};

inline JsonRequest& json_request() {
  static JsonRequest req;
  return req;
}

/// Strip a "--json PATH" pair from argv before google-benchmark parses
/// it. When present, the obs registry records the whole run (reproduction
/// section included — call this first in main) and run_benchmarks()
/// writes {bench, results, metrics} JSON to PATH on completion.
inline void json_arg(int& argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") != 0) continue;
    JsonRequest& req = json_request();
    req.path = argv[i + 1];
    if (req.path.empty() || req.path.rfind("--", 0) == 0) {
      std::fprintf(stderr, "%s: --json expects a file path, got '%s'\n", argv[0],
                   argv[i + 1]);
      std::exit(2);
    }
    const std::string prog = argv[0];
    const std::size_t slash = prog.find_last_of('/');
    req.bench_name = slash == std::string::npos ? prog : prog.substr(slash + 1);
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
    obs::reset();
    obs::set_enabled(true);
    return;
  }
}

/// Console output as usual, plus per-benchmark wall times collected for
/// the JSON export (mean/min over repetitions of the per-iteration time).
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  struct Stats {
    std::int64_t runs = 0;
    double sum_wall_ms = 0;
    double min_wall_ms = 0;
    std::map<std::string, double> counters;  ///< Last-run user counters.
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& r : reports) {
      if (r.error_occurred || r.run_type != Run::RT_Iteration) continue;
      const double wall_ms = r.iterations > 0
                                 ? 1e3 * r.real_accumulated_time / static_cast<double>(r.iterations)
                                 : 0.0;
      Stats& s = stats_[r.benchmark_name()];
      s.min_wall_ms = s.runs == 0 ? wall_ms : std::min(s.min_wall_ms, wall_ms);
      s.sum_wall_ms += wall_ms;
      ++s.runs;
      for (const auto& [name, counter] : r.counters) s.counters[name] = counter.value;
      order_.push_back(r.benchmark_name());
    }
    ConsoleReporter::ReportRuns(reports);
  }

  std::string results_json() const {
    std::string out = "[";
    bool first = true;
    std::vector<std::string> seen;
    for (const std::string& name : order_) {
      if (std::find(seen.begin(), seen.end(), name) != seen.end()) continue;
      seen.push_back(name);
      const Stats& s = stats_.at(name);
      out += first ? "\n    " : ",\n    ";
      first = false;
      out += "{\"name\": \"" + obs::json_escape(name) + "\"";
      out += ", \"runs\": " + std::to_string(s.runs);
      out += ", \"mean_wall_ms\": " +
             obs::json_number(s.runs > 0 ? s.sum_wall_ms / static_cast<double>(s.runs) : 0.0);
      out += ", \"min_wall_ms\": " + obs::json_number(s.min_wall_ms);
      if (!s.counters.empty()) {
        out += ", \"counters\": {";
        bool first_counter = true;
        for (const auto& [counter, value] : s.counters) {
          out += first_counter ? "" : ", ";
          first_counter = false;
          out += "\"" + obs::json_escape(counter) + "\": " + obs::json_number(value);
        }
        out += "}";
      }
      out += "}";
    }
    out += first ? "]" : "\n  ]";
    return out;
  }

 private:
  std::map<std::string, Stats> stats_;
  std::vector<std::string> order_;
};

/// Print data, then hand over to google-benchmark with the provided argv.
/// With a pending --json request (see json_arg), the per-benchmark wall
/// times and the whole obs metrics registry are written to the requested
/// path afterwards.
inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const JsonRequest& req = json_request();
  if (!req.active()) {
    benchmark::RunSpecifiedBenchmarks();
  } else {
    JsonCaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    obs::set_enabled(false);
    std::string out = "{\n  \"bench\": \"" + obs::json_escape(req.bench_name) + "\",\n";
    out += "  \"results\": " + reporter.results_json() + ",\n";
    out += "  \"metrics\": " + obs::metrics_to_json(obs::metrics());
    // metrics_to_json ends with "}\n"; splice it into the enclosing object.
    while (!out.empty() && out.back() == '\n') out.pop_back();
    out += "\n}\n";
    obs::write_file(req.path, out);
    std::cout << "wrote " << req.path << "\n";
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace symcan::bench

// Ablation — bus extensibility (paper Section 2: "Can more ECUs (and how
// many) be connected without overloading the bus?"; Section 6: OEMs can
// "dimension optimized and robust buses with known extensibility").
//
// Reports guaranteed headroom — additional messages / ECUs of a given
// profile with the whole matrix still provably schedulable — across
// assumption sets, insertion strategies, and before/after CAN-ID
// optimization. This is the analytical answer the load model cannot give.

#include "common.hpp"
#include "symcan/opt/assignment.hpp"
#include "symcan/sensitivity/extensibility.hpp"

namespace symcan::bench {
namespace {

ExtensionProfile profile(CanId first_id) {
  ExtensionProfile p;
  p.first_id = first_id;
  p.period = Duration::ms(20);
  p.payload_bytes = 8;
  p.jitter_fraction = 0.25;
  return p;
}

void reproduce() {
  // Zero assumed jitter: the state of Experiment 1, where the matrix is
  // schedulable even under worst-case assumptions — the natural baseline
  // for "how much can we still add".
  KMatrix km = case_study_matrix();
  assume_jitter_fraction(km, 0.0, true);

  // A mid-life bus at 50% load for contrast: the case-study bus at 70%
  // is deliberately near its worst-case limit.
  PowertrainConfig mid_cfg = PowertrainConfig::case_study();
  mid_cfg.target_utilization = 0.50;
  KMatrix mid = generate_powertrain(mid_cfg);
  assume_jitter_fraction(mid, 0.0, true);

  banner("How many more 20ms/8B messages fit? (headroom by assumption set)");
  TextTable t;
  t.header({"bus", "assumptions", "insertion", "extra messages", "util at max"});
  const struct {
    const char* label;
    CanRtaConfig cfg;
  } scopes[] = {{"best case", best_case_assumptions()},
                {"worst case", worst_case_assumptions()}};
  const struct {
    const char* label;
    const KMatrix* matrix;
  } buses[] = {{"case study (70%)", &km}, {"mid-life (50%)", &mid}};
  for (const auto& b : buses) {
    for (const auto& s : scopes) {
      for (const CanId base : {static_cast<CanId>(0x600), static_cast<CanId>(0x01)}) {
        const auto r = max_additional_messages(*b.matrix, s.cfg, profile(base), 96);
        t.row({b.label, s.label, base == 0x600 ? "append (low prio)" : "steal (high prio)",
               r.capped ? strprintf(">= %zu", r.max_additional_messages)
                        : strprintf("%zu", r.max_additional_messages),
               pct(r.utilization_at_max)});
      }
    }
  }
  t.print(std::cout);
  std::cout << "Load analysis would allow extensions until 100% utilization; the\n"
               "schedulability verdict stops far earlier under worst-case\n"
               "assumptions — and shows *which* message breaks first.\n";

  banner("ECUs instead of messages (3 messages per new ECU, worst case, high-prio IDs)");
  const auto ecus = max_additional_ecus(mid, worst_case_assumptions(), profile(0x01), 3, 24);
  std::cout << strprintf("additional ECUs provable: %s%zu (util %.0f%%)\n",
                         ecus.capped ? ">= " : "", ecus.max_additional_messages,
                         100 * ecus.utilization_at_max);

  banner("Optimization buys extensibility (Section 6, at 10% assumed jitter)");
  KMatrix at10 = case_study_matrix();
  assume_jitter_fraction(at10, 0.10, true);
  const KMatrix dm = apply_priority_order(at10, deadline_monotonic_order(at10));
  const auto r_orig = max_additional_messages(at10, best_case_assumptions(), profile(0x600), 96);
  const auto r_dm = max_additional_messages(dm, best_case_assumptions(), profile(0x600), 96);
  TextTable t2;
  t2.header({"ID assignment", "extra messages", "util at max"});
  t2.row({"original (historically grown)", strprintf("%zu", r_orig.max_additional_messages),
          pct(r_orig.utilization_at_max)});
  t2.row({"deadline monotonic", strprintf("%zu", r_dm.max_additional_messages),
          pct(r_dm.utilization_at_max)});
  t2.print(std::cout);
}

void BM_ExtensibilitySearch(benchmark::State& state) {
  KMatrix km = case_study_matrix();
  assume_jitter_fraction(km, 0.10, true);
  const CanRtaConfig cfg = worst_case_assumptions();
  for (auto _ : state)
    benchmark::DoNotOptimize(max_additional_messages(km, cfg, profile(0x600), 32));
}
BENCHMARK(BM_ExtensibilitySearch);

}  // namespace
}  // namespace symcan::bench

int main(int argc, char** argv) {
  symcan::bench::json_arg(argc, argv);
  symcan::bench::reproduce();
  return symcan::bench::run_benchmarks(argc, argv);
}

// Ablation — the cost of explaining a bound. `symcan explain` re-runs
// the exact solver through a tracing recorder and re-evaluates each
// recurrence term at the fixed point; this bench quantifies that
// overhead against the plain analysis (the NullSolveRecorder must inline
// away, so analyze_message itself may not regress) and against a
// whole-matrix explain sweep.

#include "common.hpp"
#include "symcan/analysis/provenance.hpp"

namespace symcan::bench {
namespace {

KMatrix matrix_of(int messages) {
  PowertrainConfig cfg = PowertrainConfig::case_study();
  cfg.message_count = messages;
  cfg.ecu_count = std::max(3, messages / 10);
  return generate_powertrain(cfg);
}

void reproduce() {
  banner("Provenance: every case-study bound decomposed and re-summed");
  const KMatrix km = case_study_matrix();
  const CanRtaConfig cfg = worst_case_assumptions();
  TextTable t;
  t.header({"message", "bound", "blocking", "interference", "errors", "share of bound"});
  std::size_t shown = 0;
  for (const std::size_t i : km.priority_order()) {
    const analysis::Provenance p = analysis::explain_message(km, cfg, i);
    if (p.result.diverged || !p.sum_check()) continue;
    if (++shown > 8) continue;  // Table stays readable; all are checked.
    const double bound = static_cast<double>(p.result.wcrt.count_ns());
    const double interference = static_cast<double>(p.interference_total.count_ns());
    t.row({p.name, to_string(p.result.wcrt), to_string(p.result.blocking),
           to_string(p.interference_total), to_string(p.error_overhead),
           pct(bound > 0 ? interference / bound : 0.0)});
  }
  t.print(std::cout);
  std::cout << "Every breakdown above re-sums to its bound exactly (integer ns);\n"
               "a failed sum_check would be a solver/provenance divergence bug.\n";
}

void BM_AnalyzeMessagePlain(benchmark::State& state) {
  const KMatrix km = matrix_of(static_cast<int>(state.range(0)));
  const CanRta rta{km, worst_case_assumptions()};
  const std::size_t last = km.priority_order().back();
  for (auto _ : state) benchmark::DoNotOptimize(rta.analyze_message(last));
}
BENCHMARK(BM_AnalyzeMessagePlain)->Arg(56)->Arg(200);

void BM_ExplainMessage(benchmark::State& state) {
  const KMatrix km = matrix_of(static_cast<int>(state.range(0)));
  const CanRtaConfig cfg = worst_case_assumptions();
  const std::size_t last = km.priority_order().back();
  for (auto _ : state) benchmark::DoNotOptimize(analysis::explain_message(km, cfg, last));
}
BENCHMARK(BM_ExplainMessage)->Arg(56)->Arg(200);

void BM_ExplainWholeMatrix(benchmark::State& state) {
  const KMatrix km = matrix_of(static_cast<int>(state.range(0)));
  const CanRtaConfig cfg = worst_case_assumptions();
  for (auto _ : state) {
    for (std::size_t i = 0; i < km.size(); ++i)
      benchmark::DoNotOptimize(analysis::explain_message(km, cfg, i));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExplainWholeMatrix)->Arg(25)->Arg(56)->Arg(100)->Complexity();

void BM_ProvenanceToJson(benchmark::State& state) {
  const KMatrix km = matrix_of(56);
  const analysis::Provenance p =
      analysis::explain_message(km, worst_case_assumptions(), km.priority_order().back());
  for (auto _ : state) benchmark::DoNotOptimize(analysis::provenance_to_json(p));
}
BENCHMARK(BM_ProvenanceToJson);

}  // namespace
}  // namespace symcan::bench

int main(int argc, char** argv) {
  symcan::bench::json_arg(argc, argv);
  symcan::bench::reproduce();
  return symcan::bench::run_benchmarks(argc, argv);
}

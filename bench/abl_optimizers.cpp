// Ablation — priority-assignment strategies (Section 4.3): the original
// (historically grown) ID assignment vs Deadline-Monotonic, Audsley's
// optimal assignment, and the SPEA2-style genetic optimizer, across the
// jitter sweep under worst-case assumptions.

#include <chrono>

#include "common.hpp"
#include "symcan/opt/ga.hpp"
#include "symcan/opt/nsga2.hpp"
#include "symcan/sensitivity/sweep.hpp"
#include "symcan/util/parallel.hpp"

namespace symcan::bench {
namespace {

void reproduce(int jobs) {
  const KMatrix km = case_study_matrix();
  const CanRtaConfig rta = worst_case_assumptions();
  std::cout << "parallelism: " << ParallelExecutor::resolve(jobs) << " worker thread(s)\n";

  struct Candidate {
    std::string label;
    KMatrix matrix;
    double wall_ms;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"original K-Matrix IDs", km, 0.0});

  auto timed = [&](auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    auto result = fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count()) /
        1000.0;
    return std::make_pair(std::move(result), ms);
  };

  {
    auto [order, ms] = timed([&] { return deadline_monotonic_order(km); });
    candidates.push_back({"deadline monotonic", apply_priority_order(km, order), ms});
  }
  {
    auto [order, ms] = timed([&] { return audsley_order(km, rta, 0.25); });
    if (order) candidates.push_back({"Audsley OPA @25% jitter", apply_priority_order(km, *order), ms});
  }
  {
    auto [order, ms] = timed([&] { return robust_priority_order(km, rta, 0.0); });
    if (order)
      candidates.push_back({"Robust PA (max tolerance)", apply_priority_order(km, *order), ms});
  }
  {
    GaConfig cfg;
    cfg.rta = rta;
    cfg.eval_fractions = {0.25, 0.40, 0.60};
    cfg.population = 32;
    cfg.archive = 16;
    cfg.generations = 25;
    cfg.seeds = {current_order(km), deadline_monotonic_order(km)};
    cfg.parallelism = jobs;
    GaConfig uncached = cfg;
    uncached.cache.enabled = false;
    auto [res, ms] = timed([&] { return optimize_priorities(km, cfg); });
    auto [res_uncached, ms_uncached] = timed([&] { return optimize_priorities(km, uncached); });
    const bool identical = res.best.order == res_uncached.best.order &&
                           res.best.misses == res_uncached.best.misses &&
                           res.best.robustness_cost == res_uncached.best.robustness_cost;
    std::cout << strprintf("GA rta-cache ablation: on %.1f ms, off %.1f ms (%.2fx), %s\n", ms,
                           ms_uncached, ms > 0 ? ms_uncached / ms : 0.0,
                           identical ? "identical result" : "RESULT MISMATCH");
    candidates.push_back({"SPEA2-style GA", apply_priority_order(km, res.best.order), ms});
  }
  {
    GaConfig cfg;
    cfg.rta = rta;
    cfg.eval_fractions = {0.25, 0.40, 0.60};
    cfg.population = 32;
    cfg.generations = 25;
    cfg.seeds = {current_order(km), deadline_monotonic_order(km)};
    cfg.parallelism = jobs;
    auto [res, ms] = timed([&] { return optimize_priorities_nsga2(km, cfg); });
    candidates.push_back({"NSGA-II", apply_priority_order(km, res.best.order), ms});
  }

  banner("Loss vs jitter per assignment strategy (worst-case assumptions)");
  TextTable t;
  std::vector<std::string> head{"jitter"};
  for (const auto& c : candidates) head.push_back(c.label);
  t.header(head);

  JitterSweepConfig sweep;
  sweep.rta = rta;
  sweep.parallelism = jobs;
  std::vector<JitterSweepResult> sweeps;
  for (const auto& c : candidates) sweeps.push_back(sweep_jitter(c.matrix, sweep));
  for (std::size_t i = 0; i < sweeps[0].fractions.size(); ++i) {
    std::vector<std::string> row{pct(sweeps[0].fractions[i])};
    for (const auto& s : sweeps) row.push_back(pct(s.miss_fraction(i)));
    t.row(row);
  }
  t.print(std::cout);

  TextTable t2;
  t2.header({"strategy", "wall time"});
  for (const auto& c : candidates) t2.row({c.label, strprintf("%.1f ms", c.wall_ms)});
  t2.print(std::cout);
  std::cout << "Audsley is feasibility-optimal at its target point; the GA trades a\n"
               "little runtime for multi-objective robustness across the sweep.\n";
}

void BM_DeadlineMonotonic(benchmark::State& state) {
  const KMatrix km = case_study_matrix();
  for (auto _ : state) benchmark::DoNotOptimize(deadline_monotonic_order(km));
}
BENCHMARK(BM_DeadlineMonotonic);

void BM_AudsleyAssignment(benchmark::State& state) {
  const KMatrix km = case_study_matrix();
  const CanRtaConfig rta = worst_case_assumptions();
  for (auto _ : state) benchmark::DoNotOptimize(audsley_order(km, rta, 0.25));
}
BENCHMARK(BM_AudsleyAssignment);

void BM_GaOptimize(benchmark::State& state) {
  const KMatrix km = case_study_matrix();
  GaConfig cfg;
  cfg.rta = worst_case_assumptions();
  cfg.eval_fractions = {0.25};
  cfg.population = 16;
  cfg.archive = 8;
  // A scaled-down `symcan optimize` (25 generations by default): long
  // enough for the archive to converge, which is the regime the RTA cache
  // ablation (cache=0 vs cache=1) is meant to measure.
  cfg.generations = 10;
  // Seeded like `symcan optimize`: the GA then refines around the known
  // orders instead of wandering a random population.
  cfg.seeds = {current_order(km), deadline_monotonic_order(km)};
  cfg.parallelism = static_cast<int>(state.range(0));
  cfg.cache.enabled = state.range(1) != 0;
  for (auto _ : state) benchmark::DoNotOptimize(optimize_priorities(km, cfg));
}
BENCHMARK(BM_GaOptimize)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->ArgNames({"jobs", "cache"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace symcan::bench

int main(int argc, char** argv) {
  symcan::bench::json_arg(argc, argv);
  symcan::bench::reproduce(symcan::bench::jobs_arg(argc, argv));
  return symcan::bench::run_benchmarks(argc, argv);
}

// Figure 6 — "Duality of Requirements and Guarantees between OEMs and
// Suppliers": the OEM derives send-jitter requirements from bus
// sensitivity and publishes arrival guarantees from bus analysis; the
// supplier publishes send guarantees and arrival requirements. The
// duality check closes the loop (Section 5).

#include "common.hpp"
#include "symcan/supplychain/datasheet.hpp"
#include "symcan/supplychain/refinement.hpp"

namespace symcan::bench {
namespace {

KMatrix small_case() {
  PowertrainConfig cfg = PowertrainConfig::case_study();
  cfg.message_count = 18;
  cfg.ecu_count = 4;
  cfg.target_utilization = 0.5;
  return generate_powertrain(cfg);
}

void reproduce() {
  const KMatrix km = small_case();
  const CanRtaConfig rta = best_case_assumptions();
  const std::string supplier_ecu = km.messages()[0].sender;

  banner("OEM -> supplier: send-jitter requirements (from bus sensitivity)");
  const auto reqs = derive_send_jitter_requirements(km, rta, supplier_ecu, 0.8);
  TextTable t1;
  t1.header({"message", "max send jitter (required by OEM)"});
  for (const auto& r : reqs) t1.row({r.message, to_string(r.max_jitter)});
  t1.print(std::cout);

  banner("OEM -> suppliers: arrival guarantees (from bus analysis)");
  const auto arrivals = derive_arrival_guarantees(km, rta);
  TextTable t2;
  t2.header({"message", "receiver", "max latency", "arrival jitter"});
  int shown = 0;
  for (const auto& g : arrivals) {
    if (shown++ >= 8) break;
    t2.row({g.message, g.receiver, to_string(g.max_latency), to_string(g.max_response_jitter)});
  }
  t2.print(std::cout);

  banner("Duality check: compliant supplier");
  std::vector<EcuDatasheet> sheets(1);
  sheets[0].ecu = supplier_ecu;
  for (const auto& r : reqs)
    sheets[0].send_guarantees.push_back({r.message, r.max_jitter / 2});  // better than required
  DualityReport ok = check_duality(km, rta, reqs, sheets);
  std::cout << (ok.ok() ? "PASS: all guarantees meet requirements\n"
                        : strprintf("FAIL: %zu violations\n", ok.violations.size()));

  banner("Duality check: late ECU change triples a jitter (the 'late surprise')");
  std::size_t victim = 0;
  for (std::size_t i = 0; i < reqs.size(); ++i)
    if (reqs[i].max_jitter > Duration::zero()) victim = i;
  sheets[0].send_guarantees[victim].jitter =
      max(reqs[victim].max_jitter * 3, Duration::us(100));
  DualityReport bad = check_duality(km, rta, reqs, sheets);
  for (const auto& v : bad.violations)
    std::cout << strprintf("violation: %-12s %s\n", v.message.c_str(), v.detail.c_str());

  banner("Iterative refinement (Section 5.2)");
  KMatrix pessimistic = km;
  assume_jitter_fraction(pessimistic, 0.5, true);
  RefinementSession session{pessimistic, worst_case_assumptions()};
  std::size_t committed = 0;
  for (const auto& m : km.messages()) {
    if (committed >= 6) break;
    session.commit_send_jitter(m.name, m.jitter);  // supplier data arrives
    ++committed;
  }
  TextTable t3;
  t3.header({"step", "misses", "jitter still assumed"});
  for (const auto& s : session.history())
    t3.row({s.what, strprintf("%zu", s.miss_count), pct(s.unknown_fraction)});
  t3.print(std::cout);
}

void BM_DeriveArrivalGuarantees(benchmark::State& state) {
  const KMatrix km = small_case();
  const CanRtaConfig rta = best_case_assumptions();
  for (auto _ : state) benchmark::DoNotOptimize(derive_arrival_guarantees(km, rta));
}
BENCHMARK(BM_DeriveArrivalGuarantees);

void BM_MaxOwnJitterSearch(benchmark::State& state) {
  const KMatrix km = small_case();
  const CanRtaConfig rta = best_case_assumptions();
  for (auto _ : state)
    benchmark::DoNotOptimize(max_own_jitter(km, rta, km.messages()[0].name));
}
BENCHMARK(BM_MaxOwnJitterSearch);

}  // namespace
}  // namespace symcan::bench

int main(int argc, char** argv) {
  symcan::bench::json_arg(argc, argv);
  symcan::bench::reproduce();
  return symcan::bench::run_benchmarks(argc, argv);
}

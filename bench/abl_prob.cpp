// Ablation — probabilistic response-time analysis (convolution-based
// deadline-miss distributions). The reproduction section shows the
// question the deterministic engine cannot answer: how the deadline-miss
// probability decays as the per-fault probability drops, per message,
// with the deterministic WCRT pinned as every distribution's upper
// support point. The timings measure the raw convolution kernel, a
// whole-bus probabilistic analysis, and the warm-ladder sweep rung that
// makes `symcan sweep --prob` interactive.

#include "common.hpp"
#include "symcan/analysis/incremental_rta.hpp"
#include "symcan/analysis/prob_rta.hpp"
#include "symcan/sensitivity/sweep.hpp"

namespace symcan::bench {
namespace {

void reproduce() {
  KMatrix km = case_study_matrix();
  assume_jitter_fraction(km, 0.25, true);

  banner("Deadline-miss probability vs per-fault probability (worst case)");
  FaultSweepConfig cfg;
  cfg.rta = worst_case_assumptions();
  cfg.from_ppm = 1'000'000;
  cfg.to_ppm = 10;
  cfg.points = 7;
  const FaultSweepResult res = sweep_fault_probability(km, cfg);
  TextTable t;
  t.header({"fault ppm", "at-risk", "worst miss ppm", ""});
  for (std::size_t i = 0; i < res.results.size(); ++i) {
    t.row({strprintf("%lld", static_cast<long long>(res.fault_ppm[i])),
           pct(res.at_risk_fraction(i)),
           strprintf("%lld", static_cast<long long>(res.worst_miss_ppm(i))),
           ascii_bar(res.at_risk_fraction(i), 1.0, 24)});
  }
  t.print(std::cout);
  std::cout << "At ppm = 10^6 the mixture is the deterministic verdict; dropping the\n"
               "per-fault probability separates \"misses under certain faults\" from\n"
               "\"misses at automotive fault rates\" — the integration question.\n";
}

/// The raw kernel: one convolution of two mid-sized PMFs per iteration.
void BM_Convolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<Pmf::Atom> atoms;
  std::uint64_t left = Pmf::kOne;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t w = i + 1 == n ? left : left / 2;
    atoms.push_back({Duration::us(static_cast<std::int64_t>(10 * (i + 1))), w});
    left -= w;
  }
  const Pmf a = Pmf::from_atoms(atoms);
  std::int64_t convolutions = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(convolve(a, a));
    ++convolutions;
  }
  state.counters["convolutions_per_s"] =
      benchmark::Counter(static_cast<double>(convolutions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Convolve)->Arg(16)->Arg(64)->ArgName("atoms");

/// Whole-bus probabilistic analysis on the case study, cold ladders.
void BM_ProbAnalyze(benchmark::State& state) {
  KMatrix km = case_study_matrix();
  assume_jitter_fraction(km, 0.25, true);
  ProbRtaConfig cfg;
  cfg.rta = worst_case_assumptions();
  cfg.fault_ppm = 50'000;
  cfg.parallelism = static_cast<int>(state.range(0));
  std::int64_t convolutions = 0;
  for (auto _ : state) {
    const ProbBusResult res = analyze_prob(km, cfg);
    for (const auto& m : res.messages) convolutions += m.convolutions;
    benchmark::DoNotOptimize(res);
  }
  state.counters["convolutions_per_s"] =
      benchmark::Counter(static_cast<double>(convolutions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ProbAnalyze)->Arg(1)->Arg(0)->ArgName("jobs")->Unit(benchmark::kMillisecond);

/// The sweep rung: 13 fault-probability points over warm rung ladders —
/// each ladder solves once, every further point is pure mixture.
void BM_ProbSweepWarm(benchmark::State& state) {
  KMatrix km = case_study_matrix();
  assume_jitter_fraction(km, 0.25, true);
  FaultSweepConfig cfg;
  cfg.rta = worst_case_assumptions();
  cfg.points = 13;
  cfg.to_ppm = 10;
  for (auto _ : state) benchmark::DoNotOptimize(sweep_fault_probability(km, cfg));
  state.counters["points"] = static_cast<double>(cfg.points);
}
BENCHMARK(BM_ProbSweepWarm)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace symcan::bench

int main(int argc, char** argv) {
  symcan::bench::json_arg(argc, argv);
  symcan::bench::reproduce();
  return symcan::bench::run_benchmarks(argc, argv);
}

// Figure 2 — "Message Jitters, Burst, and Errors Result in Complex
// Communication Patterns": renders a concrete bus schedule from the
// discrete-event simulator with release jitter, a bursty stream, and an
// injected bus error with retransmission, as an ASCII Gantt chart.

#include "common.hpp"
#include "symcan/sim/simulator.hpp"

namespace symcan::bench {
namespace {

KMatrix figure2_matrix() {
  KMatrix km{"fig2", BitTiming{500'000}};
  for (const char* n : {"ECU1", "ECU2", "ECU3"}) {
    EcuNode node;
    node.name = n;
    km.add_node(node);
  }
  auto add = [&](const char* name, CanId id, Duration period, Duration jitter, Duration dmin,
                 const char* sender) {
    CanMessage m;
    m.name = name;
    m.id = id;
    m.payload_bytes = 8;
    m.period = period;
    m.jitter = jitter;
    m.min_distance = dmin;
    m.sender = sender;
    m.receivers = {"ECU1"};
    km.add_message(m);
  };
  // A fast control message with jitter, a bursty gateway-style stream
  // (J > P limited by d_min), and two background messages.
  add("ctrl", 0x10, Duration::ms(2), Duration::us(600), Duration::zero(), "ECU1");
  add("burst", 0x20, Duration::ms(3), Duration::ms(7), Duration::us(400), "ECU2");
  add("status", 0x30, Duration::ms(5), Duration::ms(1), Duration::zero(), "ECU3");
  add("slow", 0x40, Duration::ms(10), Duration::zero(), Duration::zero(), "ECU3");
  return km;
}

void reproduce() {
  banner("Figure 2: complex communication pattern (simulated trace)");
  SimConfig cfg;
  cfg.duration = Duration::ms(20);
  cfg.stuffing = StuffingMode::kRandom;
  cfg.errors = SimErrorProcess::sporadic(Duration::ms(4));
  cfg.record_trace = true;
  // Deterministically pick the first seed whose 20 ms window exhibits the
  // figure's three phenomena: queueing delay, an error + retransmission.
  SimResult res = simulate(figure2_matrix(), cfg);
  for (std::uint64_t seed = 1; seed <= 64 && res.total_errors_injected == 0; ++seed) {
    cfg.seed = seed;
    res = simulate(figure2_matrix(), cfg);
  }
  std::cout << res.trace.to_gantt(Duration::zero(), Duration::ms(20), Duration::us(100));
  std::cout << strprintf("errors injected: %lld (each costs 31 bit times + retransmission)\n",
                         static_cast<long long>(res.total_errors_injected));

  banner("Event log (first 25 events)");
  int count = 0;
  for (const auto& e : res.trace.events()) {
    if (count++ >= 25) break;
    std::cout << strprintf("%-10s %-10s %s#%lld\n", to_string(e.time).c_str(), to_string(e.type),
                           e.message.c_str(), static_cast<long long>(e.instance));
  }
}

void BM_Simulate20ms(benchmark::State& state) {
  const KMatrix km = figure2_matrix();
  SimConfig cfg;
  cfg.duration = Duration::ms(20);
  cfg.errors = SimErrorProcess::sporadic(Duration::ms(6));
  for (auto _ : state) benchmark::DoNotOptimize(simulate(km, cfg));
}
BENCHMARK(BM_Simulate20ms);

void BM_SimulatePowertrainOneSecond(benchmark::State& state) {
  const KMatrix km = case_study_matrix();
  SimConfig cfg;
  cfg.duration = Duration::s(1);
  for (auto _ : state) benchmark::DoNotOptimize(simulate(km, cfg));
}
BENCHMARK(BM_SimulatePowertrainOneSecond);

}  // namespace
}  // namespace symcan::bench

int main(int argc, char** argv) {
  symcan::bench::json_arg(argc, argv);
  symcan::bench::reproduce();
  return symcan::bench::run_benchmarks(argc, argv);
}

// Ablation — multi-supplier risk management and the penalty-reward model
// (paper Section 6, ref [14]). Suppliers have committed send jitters but
// can overrun; enumerating the overrun scenarios against the
// schedulability analysis prices each supplier's criticality — before any
// prototype exists.

#include "common.hpp"
#include "symcan/supplychain/risk.hpp"

namespace symcan::bench {
namespace {

void reproduce() {
  KMatrix km = case_study_matrix();
  assume_jitter_fraction(km, 0.10, true);  // the committed baseline

  std::vector<SupplierRisk> risks;
  for (const auto& n : km.nodes()) {
    SupplierRisk r;
    r.ecu = n.name;
    // Gateways aggregate foreign traffic: higher overrun exposure.
    r.overrun_probability = n.is_gateway ? 0.30 : 0.15;
    r.overrun_jitter_factor = 3.0;
    risks.push_back(r);
  }

  RiskConfig cfg;
  cfg.rta = worst_case_assumptions();
  cfg.penalty_per_miss = 10.0;  // contractual units per losable message

  const RiskReport report = assess_supplier_risk(km, risks, cfg);

  banner("Multi-supplier risk assessment (worst-case assumptions)");
  std::cout << strprintf("scenarios evaluated : %zu (%s)\n", report.scenarios_evaluated,
                         report.exhaustive ? "exhaustive" : "sampled");
  std::cout << strprintf("expected penalty    : %.2f units\n", report.expected_penalty);
  std::cout << strprintf("worst scenario      : %.2f units at probability %.4f (",
                         report.worst.penalty, report.worst.probability);
  for (std::size_t i = 0; i < report.suppliers.size(); ++i)
    if (report.worst.overruns[i]) std::cout << report.suppliers[i] << ' ';
  std::cout << "overrun)\n";

  banner("Per-supplier criticality -> penalty-reward ranking");
  std::vector<std::size_t> order(report.suppliers.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return report.criticality[a] > report.criticality[b];
  });
  TextTable t;
  t.header({"supplier (ECU)", "criticality", "reading"});
  for (const std::size_t i : order) {
    const double c = report.criticality[i];
    t.row({report.suppliers[i], strprintf("%+.2f", c),
           c > 1.0  ? "tighten contract / dual-source"
           : c > 0.1 ? "monitor"
                     : "uncritical"});
  }
  t.print(std::cout);
  std::cout << "The OEM prices supplier slack with analysis results instead of\n"
               "prototypes — reacting to bottlenecks 'earlier than ever and in\n"
               "line with the projected road map' (Section 6).\n";
}

void BM_RiskEnumeration(benchmark::State& state) {
  KMatrix km = case_study_matrix();
  assume_jitter_fraction(km, 0.10, true);
  std::vector<SupplierRisk> risks;
  for (const auto& n : km.nodes()) risks.push_back({n.name, 0.2, 3.0});
  RiskConfig cfg;
  cfg.rta = worst_case_assumptions();
  for (auto _ : state) benchmark::DoNotOptimize(assess_supplier_risk(km, risks, cfg));
}
BENCHMARK(BM_RiskEnumeration);

}  // namespace
}  // namespace symcan::bench

int main(int argc, char** argv) {
  symcan::bench::json_arg(argc, argv);
  symcan::bench::reproduce();
  return symcan::bench::run_benchmarks(argc, argv);
}

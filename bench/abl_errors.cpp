// Ablation — error-model families (Section 4: "We also considered
// different types of bus error models that lead to retransmissions").
// Compares the fault-free bus, Tindell-Burns sporadic errors and
// Punnekkat burst errors across fault rates, at 25 % assumed jitter.

#include "common.hpp"
#include "symcan/sensitivity/sweep.hpp"

namespace symcan::bench {
namespace {

void reproduce() {
  KMatrix km = case_study_matrix();
  assume_jitter_fraction(km, 0.25, true);

  banner("Error-model comparison at 25% jitter (misses / max wcrt)");
  TextTable t;
  t.header({"min inter-error/burst", "no errors", "sporadic", "burst k=2", "burst k=4"});
  for (const std::int64_t gap_ms : {200, 100, 50, 25, 10, 5}) {
    std::vector<std::string> row{strprintf("%lld ms", static_cast<long long>(gap_ms))};
    auto eval = [&](std::shared_ptr<const ErrorModel> model) {
      CanRtaConfig cfg = worst_case_assumptions();
      cfg.errors = std::move(model);
      const BusResult res = CanRta{km, cfg}.analyze();
      Duration worst = Duration::zero();
      bool diverged = false;
      for (const auto& m : res.messages) {
        if (m.wcrt.is_infinite())
          diverged = true;
        else
          worst = max(worst, m.wcrt);
      }
      return strprintf("%zu miss/%s", res.miss_count(),
                       diverged ? "inf" : to_string(worst).c_str());
    };
    row.push_back(eval(std::make_shared<NoErrors>()));
    row.push_back(eval(std::make_shared<SporadicErrors>(Duration::ms(gap_ms))));
    row.push_back(eval(std::make_shared<BurstErrors>(Duration::ms(gap_ms), 2)));
    row.push_back(eval(std::make_shared<BurstErrors>(Duration::ms(gap_ms), 4)));
    t.row(row);
  }
  t.print(std::cout);
  std::cout << "Burst errors at the same inter-arrival are strictly harsher than\n"
               "sporadic ones; the paper's worst case uses bursts (Figure 5).\n";

  banner("Error sensitivity sweep (Section 4.1, sporadic model)");
  ErrorSweepConfig sweep;
  sweep.rta = worst_case_assumptions();
  sweep.rta.errors = std::make_shared<NoErrors>();
  sweep.from = Duration::s(1);
  sweep.to = Duration::ms(2);
  sweep.points = 9;
  const ErrorSweepResult res = sweep_errors(km, sweep);
  TextTable t2;
  t2.header({"min inter-error", "misses", ""});
  for (std::size_t i = 0; i < res.results.size(); ++i)
    t2.row({to_string(res.min_inter_error[i]), pct(res.results[i].miss_fraction()),
            ascii_bar(res.results[i].miss_fraction(), 1.0, 24)});
  t2.print(std::cout);
}

void BM_AnalysisWithBurstErrors(benchmark::State& state) {
  KMatrix km = case_study_matrix();
  assume_jitter_fraction(km, 0.25, true);
  const CanRtaConfig cfg = worst_case_assumptions();
  for (auto _ : state) {
    const CanRta rta{km, cfg};
    benchmark::DoNotOptimize(rta.analyze());
  }
}
BENCHMARK(BM_AnalysisWithBurstErrors);

void BM_ErrorSweep(benchmark::State& state) {
  KMatrix km = case_study_matrix();
  assume_jitter_fraction(km, 0.25, true);
  ErrorSweepConfig cfg;
  cfg.rta = worst_case_assumptions();
  cfg.points = 9;
  cfg.to = Duration::ms(2);
  for (auto _ : state) benchmark::DoNotOptimize(sweep_errors(km, cfg));
}
BENCHMARK(BM_ErrorSweep);

}  // namespace
}  // namespace symcan::bench

int main(int argc, char** argv) {
  symcan::bench::json_arg(argc, argv);
  symcan::bench::reproduce();
  return symcan::bench::run_benchmarks(argc, argv);
}

// Ablation — analysis-as-a-service throughput (`symcan serve`). The
// service's pitch over the one-shot CLI is amortization: the parsed
// matrix and the per-message RTA verdicts stay warm across requests, so
// a request stream pays the solver once and the renderer every time.
// Three rungs are measured on case-study analyze requests:
//
//   single   one request at a time, RTA cache off — the one-shot
//            CLI cost floor (parse amortized, solve paid every time),
//   batched  handle_batch over a warm single-shard cache,
//   sharded  the same batch against the serve default of 8 shards.
//
// CI gates the batched/sharded rungs at >= 10k requests/s on the case
// study and the acceptance bar of >= 2x over the single-request
// baseline (kBatch below is mirrored by the gate's arithmetic).

#include <chrono>

#include "common.hpp"
#include "symcan/can/kmatrix_io.hpp"
#include "symcan/serve/core.hpp"
#include "symcan/serve/request.hpp"

namespace symcan::bench {
namespace {

/// Requests per handle_batch call; the CI gate divides by this.
constexpr std::size_t kBatch = 64;

const std::string& case_study_csv() {
  static const std::string csv = kmatrix_to_csv(case_study_matrix());
  return csv;
}

serve::ServeRequest analyze_request(const std::string& id) {
  serve::ServeRequest req;
  req.id = id;
  req.kind = serve::RequestKind::kAnalyze;
  req.matrix_csv = case_study_csv();
  return req;
}

std::vector<serve::ServeRequest> request_batch() {
  std::vector<serve::ServeRequest> batch;
  batch.reserve(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i)
    batch.push_back(analyze_request("b" + std::to_string(i)));
  return batch;
}

serve::ServeConfig serve_config(bool cache_enabled, std::size_t shards) {
  serve::ServeConfig cfg;
  cfg.cache.enabled = cache_enabled;
  cfg.cache.shards = shards;
  return cfg;
}

/// Requests/s for `rounds` passes of the batch through one core (warm:
/// the first pass is excluded so it absorbs the cache misses).
double measure_reqs_per_sec(serve::ServeCore& core, int rounds) {
  const std::vector<serve::ServeRequest> batch = request_batch();
  core.handle_batch(batch);  // warm-up / miss-absorbing pass
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) core.handle_batch(batch);
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
  return secs > 0 ? static_cast<double>(rounds) * static_cast<double>(kBatch) / secs : 0.0;
}

void reproduce() {
  banner("symcan serve: case-study analyze requests, three rungs");
  constexpr int kRounds = 20;

  serve::ServeCore single{serve_config(false, 1)};
  const double single_rps = measure_reqs_per_sec(single, kRounds);
  serve::ServeCore batched{serve_config(true, 1)};
  const double batched_rps = measure_reqs_per_sec(batched, kRounds);
  serve::ServeCore sharded{serve_config(true, 8)};
  const double sharded_rps = measure_reqs_per_sec(sharded, kRounds);

  TextTable t;
  t.header({"rung", "rta cache", "shards", "requests/s", "vs single"});
  t.row({"single", "off", "1", strprintf("%.0f", single_rps), "1.00x"});
  t.row({"batched", "warm", "1", strprintf("%.0f", batched_rps),
         strprintf("%.2fx", single_rps > 0 ? batched_rps / single_rps : 0.0)});
  t.row({"sharded", "warm", "8", strprintf("%.0f", sharded_rps),
         strprintf("%.2fx", single_rps > 0 ? sharded_rps / single_rps : 0.0)});
  t.print(std::cout);
  std::cout << "Gates: batched and sharded >= 10k requests/s and >= 2x the\n"
               "cache-off single-request floor (CI reads BENCH_abl_serve.json).\n";
}

/// The cost floor: every request re-solves the whole matrix (cache off),
/// as the one-shot CLI does after parsing.
void BM_ServeThroughputSingle(benchmark::State& state) {
  serve::ServeCore core{serve_config(false, 1)};
  const serve::ServeRequest req = analyze_request("single");
  for (auto _ : state) {
    const serve::ServeResponse resp = core.handle(req);
    benchmark::DoNotOptimize(resp.exit_code);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeThroughputSingle);

/// Warm-cache batch against one shard: per-iteration wall time covers
/// kBatch requests (the CI gate divides accordingly).
void BM_ServeThroughputBatched(benchmark::State& state) {
  serve::ServeCore core{serve_config(true, 1)};
  const std::vector<serve::ServeRequest> batch = request_batch();
  core.handle_batch(batch);  // absorb the cold misses outside the timing
  for (auto _ : state) {
    const std::vector<serve::ServeResponse> resps = core.handle_batch(batch);
    benchmark::DoNotOptimize(resps.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_ServeThroughputBatched);

/// The serve default: 8 shards, so parallel batch workers do not
/// serialize on one cache lock.
void BM_ServeThroughputSharded(benchmark::State& state) {
  serve::ServeCore core{serve_config(true, 8)};
  const std::vector<serve::ServeRequest> batch = request_batch();
  core.handle_batch(batch);
  for (auto _ : state) {
    const std::vector<serve::ServeResponse> resps = core.handle_batch(batch);
    benchmark::DoNotOptimize(resps.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_ServeThroughputSharded);

// The throughput rungs above run with the telemetry plane always on
// (per-request records, windowed aggregates, SLO counters, flight
// recorder), so the >= 10k requests/s gate already bounds its overhead.
// The two benchmarks below price the read-side surfaces themselves.

/// Rendering the `telemetry` payload: windowed snapshot + SLO merge.
void BM_ServeTelemetrySnapshot(benchmark::State& state) {
  serve::ServeCore core{serve_config(true, 8)};
  core.handle_batch(request_batch());  // populate windows and SLO counters
  for (auto _ : state) {
    const std::string json = core.telemetry_json();
    benchmark::DoNotOptimize(json.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeTelemetrySnapshot);

/// The full health dashboard, windowed sections included.
void BM_ServeHealthJson(benchmark::State& state) {
  serve::ServeCore core{serve_config(true, 8)};
  core.handle_batch(request_batch());
  for (auto _ : state) {
    const std::string json = core.health_json();
    benchmark::DoNotOptimize(json.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeHealthJson);

}  // namespace
}  // namespace symcan::bench

int main(int argc, char** argv) {
  symcan::bench::json_arg(argc, argv);
  symcan::bench::reproduce();
  return symcan::bench::run_benchmarks(argc, argv);
}

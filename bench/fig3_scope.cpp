// Figure 3 — "Information Required for Reliable Schedulability Analysis":
// the OEM statically knows only the K-Matrix (IDs, lengths, periods); the
// dynamic data (send jitters, controller queueing, error behaviour) comes
// from suppliers or the field. This bench quantifies what each missing
// piece of information costs: it compares the analysis under the
// OEM-visible subset against progressively completed models, showing the
// response-time band between the optimistic and conservative readings —
// exactly the gap the paper's what-if methodology (Section 3.3/4) closes.

#include "common.hpp"
#include "symcan/analysis/can_rta.hpp"

namespace symcan::bench {
namespace {

struct Scope {
  const char* label;
  CanRtaConfig cfg;
  double jitter_fraction;
};

void reproduce() {
  const KMatrix km = case_study_matrix();

  std::vector<Scope> scopes;
  {
    Scope s;
    s.label = "K-Matrix only (zero jitter, no errors, no stuffing)";
    s.cfg.worst_case_stuffing = false;
    s.cfg.deadline_override = DeadlinePolicy::kPeriod;
    s.jitter_fraction = 0.0;
    scopes.push_back(s);
  }
  {
    Scope s;
    s.label = "+ worst-case bit stuffing";
    s.cfg.worst_case_stuffing = true;
    s.cfg.deadline_override = DeadlinePolicy::kPeriod;
    s.jitter_fraction = 0.0;
    scopes.push_back(s);
  }
  {
    Scope s;
    s.label = "+ assumed send jitters (25% of period)";
    s.cfg.worst_case_stuffing = true;
    s.cfg.deadline_override = DeadlinePolicy::kPeriod;
    s.jitter_fraction = 0.25;
    scopes.push_back(s);
  }
  {
    Scope s;
    s.label = "+ sporadic errors (T_E = 40 ms)";
    s.cfg.worst_case_stuffing = true;
    s.cfg.deadline_override = DeadlinePolicy::kPeriod;
    s.cfg.errors = std::make_shared<SporadicErrors>(Duration::ms(40));
    s.jitter_fraction = 0.25;
    scopes.push_back(s);
  }
  {
    Scope s;
    s.label = "+ burst errors + min re-arrival deadline (full worst case)";
    s.cfg = worst_case_assumptions();
    s.jitter_fraction = 0.25;
    scopes.push_back(s);
  }

  banner("Figure 3: what each layer of missing information costs");
  TextTable t;
  t.header({"model scope", "max wcrt", "mean wcrt", "misses"});
  for (const auto& s : scopes) {
    KMatrix variant = km;
    assume_jitter_fraction(variant, s.jitter_fraction, true);
    const BusResult res = CanRta{variant, s.cfg}.analyze();
    Duration worst = Duration::zero();
    double mean_us = 0;
    for (const auto& m : res.messages) {
      if (!m.wcrt.is_infinite()) worst = max(worst, m.wcrt);
      mean_us += m.wcrt.is_infinite() ? 0 : m.wcrt.as_us();
    }
    mean_us /= static_cast<double>(res.messages.size());
    t.row({s.label, to_string(worst), strprintf("%.0f us", mean_us),
           strprintf("%zu/%zu", res.miss_count(), res.messages.size())});
  }
  t.print(std::cout);
  std::cout << "The grey area of Figure 3 is row 1; each following row adds one\n"
               "piece of dynamic information the OEM does not have statically.\n"
               "Section 5: what-if analysis turns this gap into supplier\n"
               "requirements instead of guesswork.\n";
}

void BM_FullScopeAnalysis(benchmark::State& state) {
  KMatrix km = case_study_matrix();
  assume_jitter_fraction(km, 0.25, true);
  const CanRtaConfig cfg = worst_case_assumptions();
  for (auto _ : state) {
    const CanRta rta{km, cfg};
    benchmark::DoNotOptimize(rta.analyze());
  }
}
BENCHMARK(BM_FullScopeAnalysis);

}  // namespace
}  // namespace symcan::bench

int main(int argc, char** argv) {
  symcan::bench::json_arg(argc, argv);
  symcan::bench::reproduce();
  return symcan::bench::run_benchmarks(argc, argv);
}

// Ablation — whole-vehicle compositional analysis (Sections 5/6): the
// two-bus + gateway System under increasing gateway traffic, reporting
// cross-bus end-to-end latencies, global fixed-point iteration counts,
// and the analysis wall time that makes "what-if in rapid cycles"
// possible at vehicle scale.

#include <chrono>

#include "common.hpp"
#include "symcan/core/engine.hpp"
#include "symcan/workload/vehicle.hpp"

namespace symcan::bench {
namespace {

EngineConfig engine_config() {
  EngineConfig cfg;
  cfg.bus.worst_case_stuffing = true;
  cfg.bus.deadline_override = DeadlinePolicy::kPeriod;
  return cfg;
}

void reproduce() {
  banner("Vehicle-level integration: scaling the gateway traffic");
  TextTable t;
  t.header({"x-bus streams", "pt load", "body load", "iterations", "worst path latency",
            "paths met", "wall"});
  for (const int streams : {1, 3, 6, 10}) {
    VehicleConfig cfg;
    cfg.powertrain.target_utilization = 0.45;
    cfg.gateway_streams_per_direction = streams;
    const System sys = generate_vehicle(cfg);

    const auto t0 = std::chrono::steady_clock::now();
    const SystemResult res = Engine{sys, engine_config()}.analyze();
    const auto t1 = std::chrono::steady_clock::now();

    Duration worst = Duration::zero();
    std::size_t met = 0;
    for (const auto& p : res.paths) {
      if (!p.latency_max.is_infinite()) worst = max(worst, p.latency_max);
      if (p.met) ++met;
    }
    t.row({strprintf("%d per direction", streams),
           pct(sys.buses().at("powertrain").utilization(true)),
           pct(sys.buses().at("body").utilization(true)), strprintf("%d", res.iterations),
           to_string(worst), strprintf("%zu/%zu", met, res.paths.size()),
           strprintf("%.1f ms",
                     static_cast<double>(std::chrono::duration_cast<std::chrono::microseconds>(
                                             t1 - t0)
                                             .count()) /
                         1000.0)});
  }
  t.print(std::cout);
  std::cout << "The whole-vehicle fixed point settles in a handful of iterations\n"
               "and milliseconds — every row is one complete what-if experiment\n"
               "covering both buses, the gateway CPU, and all task sets.\n";
}

void BM_VehicleAnalysis(benchmark::State& state) {
  VehicleConfig cfg;
  cfg.powertrain.target_utilization = 0.45;
  cfg.gateway_streams_per_direction = static_cast<int>(state.range(0));
  const System sys = generate_vehicle(cfg);
  const EngineConfig ecfg = engine_config();
  for (auto _ : state) {
    Engine engine{sys, ecfg};
    benchmark::DoNotOptimize(engine.analyze());
  }
}
BENCHMARK(BM_VehicleAnalysis)->Arg(1)->Arg(3)->Arg(6);

void BM_VehicleGeneration(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(generate_vehicle(VehicleConfig{}));
}
BENCHMARK(BM_VehicleGeneration);

}  // namespace
}  // namespace symcan::bench

int main(int argc, char** argv) {
  symcan::bench::json_arg(argc, argv);
  symcan::bench::reproduce();
  return symcan::bench::run_benchmarks(argc, argv);
}

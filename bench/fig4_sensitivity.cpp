// Figure 4 — "Jitter-Sensitive and Robust Messages": worst-case response
// time vs. assumed jitter (0..60 % of each message's period) for selected
// messages of each robustness class, plus the class census and the
// per-message maximum tolerable jitter (Section 4.1, Racu et al. [9]).

#include <map>

#include "common.hpp"
#include "symcan/sensitivity/robustness.hpp"

namespace symcan::bench {
namespace {

void reproduce(int jobs) {
  const KMatrix km = case_study_matrix();
  JitterSweepConfig cfg;
  cfg.rta = best_case_assumptions();
  cfg.parallelism = jobs;
  const JitterSweepResult sweep = sweep_jitter(km, cfg);
  const SensitivityReport rep = analyze_sensitivity(km, cfg);

  // Pick one representative per class: the one with the largest response
  // at 60 % (most visible line of its class).
  std::map<Robustness, const MessageSensitivity*> pick;
  for (const auto& m : rep.messages) {
    auto& slot = pick[m.cls];
    if (slot == nullptr || m.wcrt_at_max > slot->wcrt_at_max) slot = &m;
  }

  banner("Figure 4: response time vs jitter (one line per robustness class)");
  TextTable t;
  std::vector<std::string> head{"jitter"};
  std::vector<const MessageSensitivity*> lines;
  for (const Robustness r : {Robustness::kRobust, Robustness::kMedium, Robustness::kSensitive,
                             Robustness::kVerySensitive}) {
    if (pick.count(r) == 0) continue;
    lines.push_back(pick[r]);
    head.push_back(strprintf("%s(%s)", pick[r]->name.c_str(), to_string(r)));
  }
  t.header(head);
  for (std::size_t i = 0; i < sweep.fractions.size(); ++i) {
    std::vector<std::string> row{pct(sweep.fractions[i])};
    for (const auto* line : lines) {
      const auto curve = sweep.response_curve(line->name);
      row.push_back(curve[i].is_infinite() ? "inf" : strprintf("%.2f ms", curve[i].as_ms()));
    }
    t.row(row);
  }
  t.print(std::cout);

  banner("Robustness census (Section 4.1)");
  TextTable census;
  census.header({"class", "messages", "share"});
  for (const Robustness r : {Robustness::kRobust, Robustness::kMedium, Robustness::kSensitive,
                             Robustness::kVerySensitive}) {
    census.row({to_string(r), strprintf("%zu", rep.count(r)),
                pct(static_cast<double>(rep.count(r)) / static_cast<double>(rep.messages.size()))});
  }
  census.print(std::cout);

  banner("Most critical messages (smallest tolerable jitter) -> supplier requirements");
  std::vector<const MessageSensitivity*> sorted;
  for (const auto& m : rep.messages) sorted.push_back(&m);
  std::sort(sorted.begin(), sorted.end(), [](const auto* a, const auto* b) {
    return a->max_tolerable_fraction < b->max_tolerable_fraction;
  });
  TextTable crit;
  crit.header({"message", "class", "growth", "max tolerable jitter"});
  for (std::size_t i = 0; i < 8 && i < sorted.size(); ++i)
    crit.row({sorted[i]->name, to_string(sorted[i]->cls),
              strprintf("%+.0f%%", 100 * sorted[i]->relative_growth),
              pct(sorted[i]->max_tolerable_fraction)});
  crit.print(std::cout);
}

void BM_JitterSweep13Points(benchmark::State& state) {
  const KMatrix km = case_study_matrix();
  JitterSweepConfig cfg;
  cfg.rta = best_case_assumptions();
  cfg.parallelism = static_cast<int>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(sweep_jitter(km, cfg));
}
BENCHMARK(BM_JitterSweep13Points)->Arg(1)->Arg(2)->Arg(4)->ArgName("jobs");

void BM_SensitivityReport(benchmark::State& state) {
  const KMatrix km = case_study_matrix();
  JitterSweepConfig cfg;
  cfg.rta = best_case_assumptions();
  cfg.parallelism = static_cast<int>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(analyze_sensitivity(km, cfg));
}
BENCHMARK(BM_SensitivityReport)->Arg(1)->Arg(4)->ArgName("jobs")->Unit(benchmark::kMillisecond);

void BM_MaxTolerableJitterSearch(benchmark::State& state) {
  const KMatrix km = case_study_matrix();
  const std::string victim = km.messages()[km.priority_order().back()].name;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        max_tolerable_jitter_fraction(km, worst_case_assumptions(), victim));
}
BENCHMARK(BM_MaxTolerableJitterSearch);

}  // namespace
}  // namespace symcan::bench

int main(int argc, char** argv) {
  symcan::bench::json_arg(argc, argv);
  symcan::bench::reproduce(symcan::bench::jobs_arg(argc, argv));
  return symcan::bench::run_benchmarks(argc, argv);
}

// The symcan command-line tool. All logic lives in symcan/cli (library)
// so the commands are unit-tested; this translation unit only adapts
// argv and the standard streams.

#include <iostream>
#include <string>
#include <vector>

#include "symcan/cli/commands.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return symcan::cli::run_cli(args, std::cout, std::cerr);
}

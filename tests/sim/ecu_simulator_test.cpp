#include "symcan/sim/ecu_simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "symcan/analysis/ecu_rta.hpp"

namespace symcan {
namespace {

Task mk(const char* name, int prio, Duration bcet, Duration wcet, Duration period,
        SchedClass sched = SchedClass::kPreemptiveTask) {
  Task t;
  t.name = name;
  t.priority = prio;
  t.bcet = bcet;
  t.wcet = wcet;
  t.sched = sched;
  t.activation = EventModel::periodic(period);
  t.deadline = period;
  return t;
}

EcuSimConfig quiet(Duration duration = Duration::s(2)) {
  EcuSimConfig cfg;
  cfg.duration = duration;
  cfg.seed = 3;
  cfg.randomize = false;
  return cfg;
}

TEST(EcuSim, SoloTaskRunsUncontended) {
  const auto res = simulate_ecu({mk("t", 1, Duration::ms(1), Duration::ms(1), Duration::ms(10))},
                                quiet());
  const TaskStats* t = res.find("t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->wcrt_observed, Duration::ms(1));
  EXPECT_EQ(t->bcrt_observed, Duration::ms(1));
  EXPECT_NEAR(static_cast<double>(t->activations), 200, 2);
  EXPECT_GE(t->completions, t->activations - 1);
  EXPECT_NEAR(res.utilization_observed(), 0.1, 0.01);
}

TEST(EcuSim, PreemptionDelaysLowerPriority) {
  // Deterministic critical instant: both released at t=0.
  const auto res = simulate_ecu({mk("hi", 1, Duration::ms(1), Duration::ms(1), Duration::ms(4)),
                                 mk("lo", 2, Duration::ms(2), Duration::ms(2), Duration::ms(8))},
                                quiet());
  EXPECT_EQ(res.find("hi")->wcrt_observed, Duration::ms(1));
  // lo waits for hi then runs to completion before hi's next arrival:
  // response 1 + 2 = 3 ms (matches the RTA fixed point).
  EXPECT_EQ(res.find("lo")->wcrt_observed, Duration::ms(3));
}

TEST(EcuSim, IsrPreemptsRegardlessOfPriorityValue) {
  const auto res = simulate_ecu(
      {mk("task", 1, Duration::ms(5), Duration::ms(5), Duration::ms(20)),
       mk("isr", 99, Duration::ms(1), Duration::ms(1), Duration::ms(10), SchedClass::kInterrupt)},
      quiet());
  EXPECT_EQ(res.find("isr")->wcrt_observed, Duration::ms(1));
  EXPECT_EQ(res.find("task")->wcrt_observed, Duration::ms(6));  // one ISR hit
}

TEST(EcuSim, CooperativeDefersTaskPreemptionToBoundaries) {
  Task coop = mk("coop", 5, Duration::ms(4), Duration::ms(4), Duration::ms(20),
                 SchedClass::kCooperativeTask);
  coop.max_segment = Duration::ms(2);
  Task hi = mk("hi", 1, Duration::ms(1), Duration::ms(1), Duration::ms(20));
  // hi released 1 ms after coop started: must wait until the 2 ms
  // boundary -> response 2 ms instead of 1 ms.
  hi.activation = EventModel::periodic(Duration::ms(20));
  EcuSimConfig cfg = quiet(Duration::ms(100));
  // Shift hi's first release via jitter: deterministic mode uses J as
  // constant shift of each release.
  hi.activation = EventModel::periodic_jitter(Duration::ms(20), Duration::ms(1));
  const auto res = simulate_ecu({hi, coop}, cfg);
  EXPECT_EQ(res.find("hi")->wcrt_observed, Duration::ms(2));
}

TEST(EcuSim, FullyPreemptiveVictimYieldsImmediately) {
  Task lo = mk("lo", 5, Duration::ms(4), Duration::ms(4), Duration::ms(20));
  Task hi = mk("hi", 1, Duration::ms(1), Duration::ms(1), Duration::ms(20));
  hi.activation = EventModel::periodic_jitter(Duration::ms(20), Duration::ms(1));
  const auto res = simulate_ecu({hi, lo}, quiet(Duration::ms(100)));
  EXPECT_EQ(res.find("hi")->wcrt_observed, Duration::ms(1));
}

TEST(EcuSim, OsOverheadExecutes) {
  Task t = mk("t", 1, Duration::ms(1), Duration::ms(1), Duration::ms(10));
  t.os_overhead = Duration::us(200);
  const auto res = simulate_ecu({t}, quiet());
  EXPECT_EQ(res.find("t")->wcrt_observed, Duration::us(1200));
}

TEST(EcuSim, DeterministicBySeed) {
  std::vector<Task> tasks = {mk("a", 1, Duration::us(500), Duration::ms(1), Duration::ms(5)),
                             mk("b", 2, Duration::ms(1), Duration::ms(2), Duration::ms(10))};
  EcuSimConfig cfg;
  cfg.seed = 42;
  cfg.randomize = true;
  const auto r1 = simulate_ecu(tasks, cfg);
  const auto r2 = simulate_ecu(tasks, cfg);
  for (std::size_t i = 0; i < r1.tasks.size(); ++i) {
    EXPECT_EQ(r1.tasks[i].wcrt_observed, r2.tasks[i].wcrt_observed);
    EXPECT_EQ(r1.tasks[i].completions, r2.tasks[i].completions);
  }
}

TEST(EcuSim, BurstyActivationBacklogsAndDrains) {
  Task t = mk("t", 1, Duration::ms(1), Duration::ms(1), Duration::ms(10));
  t.activation = EventModel::periodic_jitter(Duration::ms(10), Duration::ms(25));
  EcuSimConfig cfg;
  cfg.seed = 5;
  cfg.randomize = true;
  cfg.duration = Duration::s(5);
  const auto res = simulate_ecu({t}, cfg);
  EXPECT_GT(res.find("t")->max_backlog, 1);
  EXPECT_GE(res.find("t")->completions, res.find("t")->activations - res.find("t")->max_backlog);
}

TEST(EcuSim, RejectsBadInputs) {
  EXPECT_THROW(simulate_ecu({}, quiet()), std::invalid_argument);
  Task bad = mk("x", 1, Duration::ms(2), Duration::ms(1), Duration::ms(10));  // bcet > wcet
  EXPECT_THROW(simulate_ecu({bad}, quiet()), std::invalid_argument);
  EcuSimConfig cfg = quiet();
  cfg.duration = Duration::zero();
  EXPECT_THROW(simulate_ecu({mk("t", 1, Duration::ms(1), Duration::ms(1), Duration::ms(10))}, cfg),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The oracle: simulated responses never exceed EcuRta bounds.

struct OracleParam {
  std::uint64_t seed;
  const char* label;
};
void PrintTo(const OracleParam& p, std::ostream* os) { *os << p.label; }

class EcuSimVsRta : public ::testing::TestWithParam<OracleParam> {};

TEST_P(EcuSimVsRta, ObservedNeverExceedsBound) {
  // A mixed OSEK task set: ISR + preemptive control tasks + a cooperative
  // background task, with activation jitter.
  std::vector<Task> tasks;
  Task isr = mk("isr", 1, Duration::us(20), Duration::us(60), Duration::ms(1),
                SchedClass::kInterrupt);
  tasks.push_back(isr);
  Task fast = mk("fast", 1, Duration::us(100), Duration::us(400), Duration::ms(5));
  fast.activation = EventModel::periodic_jitter(Duration::ms(5), Duration::ms(1));
  tasks.push_back(fast);
  Task mid = mk("mid", 2, Duration::us(300), Duration::ms(1), Duration::ms(10));
  mid.os_overhead = Duration::us(50);
  tasks.push_back(mid);
  Task coop = mk("coop", 8, Duration::ms(1), Duration::ms(3), Duration::ms(50),
                 SchedClass::kCooperativeTask);
  coop.max_segment = Duration::ms(1);
  tasks.push_back(coop);

  const EcuResult bound = EcuRta{tasks}.analyze();
  ASSERT_TRUE(bound.all_schedulable());

  EcuSimConfig cfg;
  cfg.seed = GetParam().seed;
  cfg.randomize = true;
  cfg.duration = Duration::s(10);
  const EcuSimResult obs = simulate_ecu(tasks, cfg);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_LE(obs.tasks[i].wcrt_observed, bound.tasks[i].wcrt)
        << tasks[i].name << ": observed " << to_string(obs.tasks[i].wcrt_observed) << " vs bound "
        << to_string(bound.tasks[i].wcrt);
    if (obs.tasks[i].completions > 0)
      EXPECT_GE(obs.tasks[i].bcrt_observed, bound.tasks[i].bcrt) << tasks[i].name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcuSimVsRta,
                         ::testing::Values(OracleParam{1, "s1"}, OracleParam{2, "s2"},
                                           OracleParam{3, "s3"}, OracleParam{4, "s4"},
                                           OracleParam{5, "s5"}),
                         [](const ::testing::TestParamInfo<OracleParam>& info) {
                           return info.param.label;
                         });

}  // namespace
}  // namespace symcan

// Cross-validation of the probabilistic analysis against the simulator:
// wherever the simulated processes are dominated by the analysis
// assumptions, the empirical response-time distribution must be
// stochastically dominated by the analytic one — empirical miss
// frequency never exceeds the analytic miss probability at matched
// thresholds, and empirical quantiles never exceed analytic quantiles at
// matched ranks. A failure means the convolution construction is
// optimistic (unsound), not merely imprecise.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <memory>
#include <vector>

#include "symcan/analysis/prob_rta.hpp"
#include "symcan/sim/simulator.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

KMatrix workload(std::uint64_t seed) {
  PowertrainConfig wl;
  wl.seed = seed;
  wl.message_count = 24;
  wl.ecu_count = 4;
  wl.target_utilization = 0.55;
  return generate_powertrain(wl);
}

/// Analysis assumptions that dominate every simulated process below:
/// worst-case stuffing vs sampled stuffing, full jitter vs sampled
/// jitter, sporadic errors at the same minimum gap the injector honours.
CanRtaConfig dominating_rta() {
  CanRtaConfig rta;
  rta.worst_case_stuffing = true;
  rta.deadline_override = DeadlinePolicy::kPeriod;
  rta.errors = std::make_shared<SporadicErrors>(Duration::ms(40));
  return rta;
}

/// Fraction of recorded responses strictly above `t`, as a probability.
double empirical_ccdf(const MessageStats& m, Duration t) {
  if (m.responses.empty()) return 0.0;
  std::size_t above = 0;
  for (const Duration r : m.responses)
    if (r > t) ++above;
  return static_cast<double>(above) / static_cast<double>(m.responses.size());
}

TEST(ProbCrossValidation, FaultFreeSimStaysUnderTheZeroFaultRung) {
  // A fault-free run can never exceed the k = 0 conditional bound, which
  // is the analytic distribution's minimum support point when the luck
  // deltas are off (stuff/jitter ppm at the certain defaults).
  for (const std::uint64_t seed : {3u, 29u}) {
    const KMatrix km = workload(seed);
    ProbRtaConfig cfg;
    cfg.rta = dominating_rta();
    cfg.fault_ppm = 200'000;  // Non-degenerate mixture over the ladder.
    const ProbBusResult prob = analyze_prob(km, cfg);

    SimConfig sim;
    sim.duration = Duration::s(10);
    sim.seed = seed * 1000 + 17;
    sim.stuffing = StuffingMode::kRandom;
    sim.randomize_jitter = true;
    sim.errors = SimErrorProcess::none();
    sim.record_percentiles = true;
    const SimResult observed = simulate(km, sim);

    for (std::size_t i = 0; i < km.size(); ++i) {
      const auto& p = prob.messages[i];
      const auto& o = observed.messages[i];
      if (p.det.diverged || o.completions == 0) continue;
      ASSERT_FALSE(p.rungs.empty());
      EXPECT_LE(o.wcrt_observed, p.rungs.front())
          << km.messages()[i].name << ": fault-free observation above the k=0 rung";
      // Matched thresholds: at every analytic atom, the empirical tail
      // must sit under the analytic (conservative) tail.
      for (const auto& atom : p.response.atoms()) {
        EXPECT_LE(empirical_ccdf(o, atom.value),
                  Pmf::probability(p.response.mass_above(atom.value)) + 1e-12)
            << km.messages()[i].name << " at " << to_string(atom.value);
      }
      // Matched ranks: empirical quantiles under analytic quantiles.
      for (const double q : {0.5, 0.9, 0.99, 1.0}) {
        const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(Pmf::kOne));
        EXPECT_LE(o.percentile(q), p.response.quantile(std::min(rank, Pmf::kOne)))
            << km.messages()[i].name << " at q=" << q;
      }
    }
  }
}

TEST(ProbCrossValidation, FaultySimStaysUnderTheDegenerateDistribution) {
  // With faults actually injected, the certain mixture (every ppm at
  // 1'000'000) is the deterministic analysis: all simulated responses
  // sit under the point mass at the WCRT, and the empirical miss
  // frequency under the analytic miss probability.
  const KMatrix km = workload(11);
  ProbRtaConfig cfg;
  cfg.rta = dominating_rta();
  const ProbBusResult prob = analyze_prob(km, cfg);

  SimConfig sim;
  sim.duration = Duration::s(10);
  sim.seed = 4242;
  sim.stuffing = StuffingMode::kRandom;
  sim.randomize_jitter = true;
  sim.errors = SimErrorProcess::sporadic(Duration::ms(40));
  sim.record_percentiles = true;
  const SimResult observed = simulate(km, sim);

  for (std::size_t i = 0; i < km.size(); ++i) {
    const auto& p = prob.messages[i];
    const auto& o = observed.messages[i];
    if (p.det.diverged || o.completions == 0) continue;
    EXPECT_TRUE(p.response.degenerate()) << km.messages()[i].name;
    EXPECT_LE(o.wcrt_observed, p.response.max_value()) << km.messages()[i].name;
    const double empirical_miss = empirical_ccdf(o, p.det.deadline);
    EXPECT_LE(empirical_miss, p.miss_probability() + 1e-12) << km.messages()[i].name;
  }
}

TEST(ProbCrossValidation, MissProbabilityBracketsTheFaultFreeLossRate) {
  // End-to-end sanity on the verdict the CLI prints: for a bus the
  // deterministic analysis declares schedulable, a dominated fault-free
  // sim observes zero misses — consistent with the zero miss ppm the
  // degenerate analysis reports.
  const KMatrix km = workload(47);
  ProbRtaConfig cfg;
  cfg.rta = dominating_rta();
  cfg.rta.errors = std::make_shared<NoErrors>();
  const ProbBusResult prob = analyze_prob(km, cfg);

  SimConfig sim;
  sim.duration = Duration::s(5);
  sim.seed = 9;
  sim.stuffing = StuffingMode::kRandom;
  sim.randomize_jitter = true;
  sim.record_percentiles = true;
  const SimResult observed = simulate(km, sim);

  for (std::size_t i = 0; i < km.size(); ++i) {
    const auto& p = prob.messages[i];
    const auto& o = observed.messages[i];
    if (p.det.diverged || !p.det.schedulable || o.completions == 0) continue;
    EXPECT_EQ(p.miss_ppm(), 0) << km.messages()[i].name;
    EXPECT_DOUBLE_EQ(empirical_ccdf(o, p.det.deadline), 0.0) << km.messages()[i].name;
  }
}

}  // namespace
}  // namespace symcan

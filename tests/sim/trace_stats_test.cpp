// Trace analytics over handcrafted event logs: every count, latency and
// utilization number is asserted against hand-computed values, and the
// degenerate inputs (empty trace, zero span, zero window) must degrade to
// empty stats — never a division by zero.

#include "symcan/sim/trace_stats.hpp"

#include <gtest/gtest.h>

#include <string>

namespace symcan {
namespace {

// A: instance 0 clean (release 0, start 100us, end 200us); instance 1
// corrupted once (release 500us, start 500us, error 550us, retransmit
// 560us, restart 600us, end 700us). B: one release lost at 400us.
Trace handcrafted() {
  Trace t;
  t.record(Duration::zero(), TraceEventType::kRelease, "A", 0);
  t.record(Duration::us(100), TraceEventType::kTxStart, "A", 0);
  t.record(Duration::us(200), TraceEventType::kTxEnd, "A", 0);
  t.record(Duration::us(300), TraceEventType::kRelease, "B", 0);
  t.record(Duration::us(400), TraceEventType::kLoss, "B", 0);
  t.record(Duration::us(500), TraceEventType::kRelease, "A", 1);
  t.record(Duration::us(500), TraceEventType::kTxStart, "A", 1);
  t.record(Duration::us(550), TraceEventType::kError, "A", 1);
  t.record(Duration::us(560), TraceEventType::kRetransmit, "A", 1);
  t.record(Duration::us(600), TraceEventType::kTxStart, "A", 1);
  t.record(Duration::us(700), TraceEventType::kTxEnd, "A", 1);
  return t;
}

TEST(TraceStats, HandComputedCountsAndLatencies) {
  const TraceStats stats = compute_trace_stats(handcrafted(), Duration::ms(1), Duration::us(500));

  ASSERT_EQ(stats.messages.size(), 2u);  // Name-sorted: A, B.
  const MessageTraceStats& a = stats.messages[0];
  EXPECT_EQ(a.name, "A");
  EXPECT_EQ(a.releases, 2);
  EXPECT_EQ(a.completions, 2);
  EXPECT_EQ(a.errors, 1);
  EXPECT_EQ(a.retransmits, 1);
  EXPECT_EQ(a.losses, 0);
  EXPECT_EQ(a.observed_max, Duration::us(200));
  // Arbitration wait counts only release -> *first* start per instance:
  // 100us for instance 0, 0 for instance 1 (its restart doesn't count).
  EXPECT_EQ(a.arbitration_wait_total, Duration::us(100));
  EXPECT_EQ(a.arbitration_wait_max, Duration::us(100));
  // Retransmission cost: first error (550us) to final completion (700us).
  EXPECT_EQ(a.retransmit_delay_total, Duration::us(150));
  EXPECT_EQ(a.latency_us.count, 2);
  EXPECT_DOUBLE_EQ(a.latency_us.max, 200.0);
  EXPECT_GT(a.observed_p99, Duration::zero());

  const MessageTraceStats& b = stats.messages[1];
  EXPECT_EQ(b.name, "B");
  EXPECT_EQ(b.releases, 1);
  EXPECT_EQ(b.completions, 0);
  EXPECT_EQ(b.losses, 1);
  EXPECT_EQ(b.latency_us.count, 0);

  EXPECT_EQ(stats.find("A"), &stats.messages[0]);
  EXPECT_EQ(stats.find("nope"), nullptr);
}

TEST(TraceStats, SlidingWindowUtilizationHandComputed) {
  // Busy intervals: [100,200), [500,550), [600,700) us = 250us of 1ms.
  const TraceStats stats = compute_trace_stats(handcrafted(), Duration::ms(1), Duration::us(500));
  EXPECT_DOUBLE_EQ(stats.average_utilization, 0.25);

  // 500us windows step by 250us (50% overlap), clamped to the span.
  ASSERT_EQ(stats.utilization.size(), 4u);
  EXPECT_EQ(stats.utilization[0].start, Duration::zero());
  EXPECT_EQ(stats.utilization[0].end, Duration::us(500));
  EXPECT_DOUBLE_EQ(stats.utilization[0].utilization, 0.2);   // [100,200)
  EXPECT_DOUBLE_EQ(stats.utilization[1].utilization, 0.3);   // [500,550)+[600,700)
  EXPECT_DOUBLE_EQ(stats.utilization[2].utilization, 0.3);
  EXPECT_EQ(stats.utilization[3].end, Duration::ms(1));      // Clamped final window.
  EXPECT_DOUBLE_EQ(stats.utilization[3].utilization, 0.0);
  EXPECT_DOUBLE_EQ(stats.peak_utilization, 0.3);
}

TEST(TraceStats, TransmissionOpenAtTraceEndIsClampedToSpan) {
  Trace t;
  t.record(Duration::us(900), TraceEventType::kRelease, "A", 0);
  t.record(Duration::us(900), TraceEventType::kTxStart, "A", 0);
  const TraceStats stats = compute_trace_stats(t, Duration::ms(1), Duration::ms(1));
  EXPECT_DOUBLE_EQ(stats.average_utilization, 0.1);  // [900us, 1ms) busy.
  EXPECT_EQ(stats.messages[0].completions, 0);
}

TEST(TraceStats, DegenerateInputsNeverDivideByZero) {
  const Trace empty;
  const TraceStats none = compute_trace_stats(empty, Duration::zero(), Duration::zero());
  EXPECT_TRUE(none.messages.empty());
  EXPECT_TRUE(none.utilization.empty());
  EXPECT_DOUBLE_EQ(none.average_utilization, 0.0);
  EXPECT_DOUBLE_EQ(none.peak_utilization, 0.0);

  // Empty trace with a real span: zero utilization, but windows exist.
  const TraceStats idle = compute_trace_stats(empty, Duration::ms(1), Duration::us(500));
  EXPECT_FALSE(idle.utilization.empty());
  EXPECT_DOUBLE_EQ(idle.peak_utilization, 0.0);

  // Real trace, degenerate window or span: no windows, no crash.
  EXPECT_TRUE(compute_trace_stats(handcrafted(), Duration::ms(1), Duration::zero())
                  .utilization.empty());
  EXPECT_TRUE(compute_trace_stats(handcrafted(), Duration::ms(1), -Duration::us(1))
                  .utilization.empty());
  EXPECT_TRUE(compute_trace_stats(handcrafted(), Duration::zero(), Duration::us(500))
                  .utilization.empty());
  // 1 ns window cannot halve; it must still terminate and divide safely.
  const TraceStats tiny = compute_trace_stats(handcrafted(), Duration::us(1), Duration::ns(1));
  EXPECT_EQ(tiny.utilization.size(), 1000u);
}

TEST(TraceStats, RenderersCarryTheNumbers) {
  const TraceStats stats = compute_trace_stats(handcrafted(), Duration::ms(1), Duration::us(500));
  const std::string text = trace_stats_to_text(stats);
  EXPECT_NE(text.find("bus utilization avg 25.0% peak 30.0%"), std::string::npos) << text;
  EXPECT_NE(text.find("A"), std::string::npos);
  const std::string json = trace_stats_to_json(stats);
  EXPECT_NE(json.find("\"average_utilization\":0.25"), std::string::npos) << json;
  EXPECT_NE(json.find("\"retransmit_delay_total_ns\":150000"), std::string::npos);
  EXPECT_NE(json.find("\"losses\":1"), std::string::npos);
}

TEST(TraceClear, RetainsCapacityForReuse) {
  Trace t;
  for (int i = 0; i < 1000; ++i)
    t.record(Duration::us(i), TraceEventType::kRelease, "m", i);
  const std::size_t cap = t.events().capacity();
  ASSERT_GE(cap, 1000u);
  t.clear();
  EXPECT_TRUE(t.events().empty());
  // The documented contract: clear() drops events but keeps the
  // allocation, so a reused Trace stops allocating at steady state.
  EXPECT_EQ(t.events().capacity(), cap);
}

}  // namespace
}  // namespace symcan

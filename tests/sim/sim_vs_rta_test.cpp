// Soundness oracle: simulated response times must never exceed the
// analysis bound when the simulated jitter, stuffing and error processes
// respect the analysis assumptions. This is the central cross-validation
// between the two halves of the toolkit — a failure here means either the
// analysis is optimistic (unsound) or the simulator violates its declared
// event/error models.

#include <gtest/gtest.h>

#include "symcan/analysis/can_rta.hpp"
#include "symcan/analysis/incremental_rta.hpp"
#include "symcan/sim/simulator.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

struct OracleParam {
  std::uint64_t seed;
  double jitter_fraction;
  bool errors;
  const char* label;
};

void PrintTo(const OracleParam& p, std::ostream* os) { *os << p.label; }

class SimVsRta : public ::testing::TestWithParam<OracleParam> {};

TEST_P(SimVsRta, ObservedResponseNeverExceedsBound) {
  const OracleParam p = GetParam();
  PowertrainConfig wl;
  wl.seed = p.seed;
  wl.message_count = 24;
  wl.ecu_count = 4;
  wl.target_utilization = 0.55;
  KMatrix km = generate_powertrain(wl);
  assume_jitter_fraction(km, p.jitter_fraction, /*override_known=*/true);

  CanRtaConfig rta;
  rta.worst_case_stuffing = true;  // dominates the sampled stuffing
  rta.deadline_override = DeadlinePolicy::kPeriod;
  if (p.errors) rta.errors = std::make_shared<SporadicErrors>(Duration::ms(40));
  const BusResult bound = CanRta{km, rta}.analyze();

  SimConfig sim;
  sim.duration = Duration::s(10);
  sim.seed = p.seed * 1000 + 17;
  sim.stuffing = StuffingMode::kRandom;  // <= worst case assumed above
  sim.randomize_jitter = true;
  if (p.errors) sim.errors = SimErrorProcess::sporadic(Duration::ms(40));
  const SimResult observed = simulate(km, sim);

  for (std::size_t i = 0; i < km.size(); ++i) {
    const auto& b = bound.messages[i];
    const auto& o = observed.messages[i];
    if (b.diverged) continue;  // no bound claimed
    EXPECT_LE(o.wcrt_observed, b.wcrt)
        << km.messages()[i].name << ": observed " << to_string(o.wcrt_observed)
        << " vs bound " << to_string(b.wcrt);
    // Best-case bound is also a bound from below.
    if (o.completions > 0)
      EXPECT_GE(o.bcrt_observed, b.bcrt) << km.messages()[i].name;
  }
}

TEST_P(SimVsRta, ScheduleVerdictImpliesNoSimLoss) {
  // If the analysis declares every message schedulable under D = period,
  // the simulator must not observe buffer-overwrite losses (no instance
  // can still be pending when the next arrives).
  const OracleParam p = GetParam();
  PowertrainConfig wl;
  wl.seed = p.seed;
  wl.message_count = 24;
  wl.ecu_count = 4;
  wl.target_utilization = 0.55;
  KMatrix km = generate_powertrain(wl);
  assume_jitter_fraction(km, p.jitter_fraction, true);

  CanRtaConfig rta;
  rta.worst_case_stuffing = true;
  rta.deadline_override = DeadlinePolicy::kPeriod;
  if (p.errors) rta.errors = std::make_shared<SporadicErrors>(Duration::ms(40));
  const BusResult bound = CanRta{km, rta}.analyze();
  if (!bound.all_schedulable()) GTEST_SKIP() << "analysis does not claim schedulability";

  SimConfig sim;
  sim.duration = Duration::s(10);
  sim.seed = p.seed + 4242;
  sim.stuffing = StuffingMode::kRandom;
  sim.randomize_jitter = true;
  if (p.errors) sim.errors = SimErrorProcess::sporadic(Duration::ms(40));
  const SimResult observed = simulate(km, sim);
  for (const auto& m : observed.messages) EXPECT_EQ(m.losses, 0) << m.name;
}

TEST_P(SimVsRta, CachedAnalysisBoundsSimulationUnderSporadicErrors) {
  // The incremental cache sits between the simulator and its oracle in
  // every optimizer loop, so the soundness chain must close through it:
  // cached bounds (cold, warm, and with the cache disabled) are
  // bit-identical to the fresh analysis under a nonzero error model, and
  // the simulated worst case respects all of them.
  const OracleParam p = GetParam();
  PowertrainConfig wl;
  wl.seed = p.seed;
  wl.message_count = 24;
  wl.ecu_count = 4;
  wl.target_utilization = 0.55;
  KMatrix km = generate_powertrain(wl);
  assume_jitter_fraction(km, p.jitter_fraction, true);

  // Sporadic MTBF-style faults regardless of the param's error flag: this
  // test exists to exercise the cache under error interference.
  const Duration gap = Duration::ms(30 + static_cast<std::int64_t>(p.seed) * 5);
  CanRtaConfig rta;
  rta.worst_case_stuffing = true;
  rta.deadline_override = DeadlinePolicy::kPeriod;
  rta.errors = std::make_shared<SporadicErrors>(gap);
  const BusResult fresh = CanRta{km, rta}.analyze();

  IncrementalRta cached;
  const BusResult cold = cached.analyze(km, rta);
  const BusResult warm = cached.analyze(km, rta);
  EXPECT_GT(cached.stats().hits, 0);
  RtaCacheConfig off_cfg;
  off_cfg.enabled = false;
  IncrementalRta off{off_cfg};
  const BusResult disabled = off.analyze(km, rta);
  for (const BusResult* r : {&cold, &warm, &disabled}) {
    ASSERT_EQ(r->messages.size(), fresh.messages.size());
    for (std::size_t i = 0; i < fresh.messages.size(); ++i) {
      ASSERT_EQ(r->messages[i].wcrt, fresh.messages[i].wcrt) << fresh.messages[i].name;
      ASSERT_EQ(r->messages[i].bcrt, fresh.messages[i].bcrt) << fresh.messages[i].name;
      ASSERT_EQ(r->messages[i].schedulable, fresh.messages[i].schedulable)
          << fresh.messages[i].name;
    }
  }

  SimConfig sim;
  sim.duration = Duration::s(10);
  sim.seed = p.seed * 77 + 5;
  sim.stuffing = StuffingMode::kRandom;
  sim.randomize_jitter = true;
  sim.errors = SimErrorProcess::sporadic(gap);
  const SimResult observed = simulate(km, sim);
  for (std::size_t i = 0; i < km.size(); ++i) {
    if (warm.messages[i].diverged) continue;
    EXPECT_LE(observed.messages[i].wcrt_observed, warm.messages[i].wcrt)
        << km.messages()[i].name << ": observed " << to_string(observed.messages[i].wcrt_observed)
        << " vs cached bound " << to_string(warm.messages[i].wcrt);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimVsRta,
    ::testing::Values(OracleParam{1, 0.0, false, "s1_j0_clean"},
                      OracleParam{2, 0.0, true, "s2_j0_errors"},
                      OracleParam{3, 0.2, false, "s3_j20_clean"},
                      OracleParam{4, 0.2, true, "s4_j20_errors"},
                      OracleParam{5, 0.4, false, "s5_j40_clean"},
                      OracleParam{6, 0.4, true, "s6_j40_errors"},
                      OracleParam{7, 0.1, true, "s7_j10_errors"},
                      OracleParam{8, 0.3, false, "s8_j30_clean"}),
    [](const ::testing::TestParamInfo<OracleParam>& info) { return info.param.label; });

}  // namespace
}  // namespace symcan

// Fault confinement (TEC / bus-off) and response percentiles in the bus
// simulator.

#include <gtest/gtest.h>

#include "symcan/sim/simulator.hpp"

namespace symcan {
namespace {

KMatrix two_node_bus() {
  KMatrix km{"fc", BitTiming{500'000}};
  EcuNode a;
  a.name = "A";
  km.add_node(a);
  EcuNode b;
  b.name = "B";
  km.add_node(b);
  const struct {
    const char* name;
    CanId id;
    std::int64_t period_ms;
    const char* sender;
  } rows[] = {{"hp", 0x10, 5, "A"}, {"lp", 0x30, 10, "B"}};
  for (const auto& r : rows) {
    CanMessage m;
    m.name = r.name;
    m.id = r.id;
    m.payload_bytes = 8;
    m.period = Duration::ms(r.period_ms);
    m.sender = r.sender;
    m.receivers = {"A"};
    km.add_message(m);
  }
  return km;
}

TEST(FaultConfinement, CleanBusNeverGoesBusOff) {
  SimConfig cfg;
  cfg.duration = Duration::s(2);
  cfg.seed = 1;
  const SimResult res = simulate(two_node_bus(), cfg);
  ASSERT_EQ(res.nodes.size(), 2u);
  for (const auto& n : res.nodes) {
    EXPECT_EQ(n.bus_off_events, 0) << n.name;
    EXPECT_EQ(n.peak_tec, 0) << n.name;
    EXPECT_EQ(n.silent_time, Duration::zero()) << n.name;
  }
}

TEST(FaultConfinement, SustainedErrorsDriveANodeBusOff) {
  // Long error bursts corrupt 32 consecutive transmission attempts: the
  // sender's TEC jumps 8 per hit with no successes in between -> bus-off
  // within the first burst (8 * 32 = 256).
  SimConfig cfg;
  cfg.duration = Duration::s(5);
  cfg.seed = 2;
  cfg.errors = SimErrorProcess::burst(Duration::ms(50), 32);
  // A fast message whose period (2 ms) is shorter than the 2.8 ms
  // bus-off recovery: instances pending during the silence get
  // overwritten.
  KMatrix km = two_node_bus();
  km.messages()[0].period = Duration::ms(2);
  const SimResult res = simulate(km, cfg);
  std::int64_t total_bus_off = 0;
  for (const auto& n : res.nodes) total_bus_off += n.bus_off_events;
  EXPECT_GT(total_bus_off, 0);
  // The silent node lost instances while off the bus.
  std::int64_t losses = 0;
  for (const auto& m : res.messages) losses += m.losses;
  EXPECT_GT(losses, 0);
}

TEST(FaultConfinement, DisablingTheModelKeepsNodesOn) {
  SimConfig cfg;
  cfg.duration = Duration::s(5);
  cfg.seed = 2;
  cfg.errors = SimErrorProcess::burst(Duration::ms(50), 32);
  cfg.model_fault_confinement = false;
  const SimResult res = simulate(two_node_bus(), cfg);
  for (const auto& n : res.nodes) {
    EXPECT_EQ(n.bus_off_events, 0) << n.name;
    EXPECT_EQ(n.peak_tec, 0) << n.name;
  }
}

TEST(FaultConfinement, SilentTimeMatchesEventsTimesRecovery) {
  SimConfig cfg;
  cfg.duration = Duration::s(5);
  cfg.seed = 3;
  cfg.errors = SimErrorProcess::burst(Duration::ms(50), 32);
  const SimResult res = simulate(two_node_bus(), cfg);
  const Duration recovery = BitTiming{500'000}.duration_of(128 * 11);
  for (const auto& n : res.nodes)
    EXPECT_EQ(n.silent_time, n.bus_off_events * recovery) << n.name;
}

TEST(Percentiles, SortedAndConsistent) {
  SimConfig cfg;
  cfg.duration = Duration::s(2);
  cfg.seed = 4;
  cfg.record_percentiles = true;
  const SimResult res = simulate(two_node_bus(), cfg);
  for (const auto& m : res.messages) {
    ASSERT_EQ(static_cast<std::int64_t>(m.responses.size()), m.completions) << m.name;
    EXPECT_TRUE(std::is_sorted(m.responses.begin(), m.responses.end())) << m.name;
    EXPECT_EQ(m.percentile(1.0), m.wcrt_observed) << m.name;
    EXPECT_EQ(m.percentile(0.0), m.bcrt_observed) << m.name;
    EXPECT_LE(m.percentile(0.5), m.percentile(0.99)) << m.name;
    EXPECT_GE(m.percentile(0.5), m.percentile(0.01)) << m.name;
  }
}

TEST(Percentiles, EmptyWithoutRecording) {
  SimConfig cfg;
  cfg.duration = Duration::ms(100);
  const SimResult res = simulate(two_node_bus(), cfg);
  for (const auto& m : res.messages) {
    EXPECT_TRUE(m.responses.empty());
    EXPECT_EQ(m.percentile(0.5), Duration::zero());
  }
}

TEST(Percentiles, MedianBelowMaxUnderContention) {
  // With random stuffing and jitter, the tail should be strictly above
  // the median for the lower-priority message.
  KMatrix km = two_node_bus();
  km.messages()[1].jitter = Duration::ms(2);
  SimConfig cfg;
  cfg.duration = Duration::s(5);
  cfg.seed = 6;
  cfg.record_percentiles = true;
  const SimResult res = simulate(km, cfg);
  const MessageStats* lp = res.find("lp");
  ASSERT_NE(lp, nullptr);
  EXPECT_LT(lp->percentile(0.5), lp->percentile(1.0));
}

}  // namespace
}  // namespace symcan

#include "symcan/sim/trace.hpp"

#include <gtest/gtest.h>

namespace symcan {
namespace {

TEST(Trace, RecordsEventsInOrder) {
  Trace t;
  t.record(Duration::us(10), TraceEventType::kRelease, "m", 0);
  t.record(Duration::us(20), TraceEventType::kTxStart, "m", 0);
  t.record(Duration::us(290), TraceEventType::kTxEnd, "m", 0);
  ASSERT_EQ(t.events().size(), 3u);
  EXPECT_EQ(t.events()[0].type, TraceEventType::kRelease);
  EXPECT_EQ(t.events()[2].time, Duration::us(290));
}

TEST(Trace, ToTextContainsAllEvents) {
  Trace t;
  t.record(Duration::us(10), TraceEventType::kRelease, "rpm", 3);
  t.record(Duration::us(50), TraceEventType::kError, "rpm", 3);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("release"), std::string::npos);
  EXPECT_NE(text.find("error"), std::string::npos);
  EXPECT_NE(text.find("rpm#3"), std::string::npos);
}

TEST(Trace, GanttPaintsTransmissionSpan) {
  Trace t;
  t.record(Duration::us(0), TraceEventType::kRelease, "m", 0);
  t.record(Duration::us(100), TraceEventType::kTxStart, "m", 0);
  t.record(Duration::us(300), TraceEventType::kTxEnd, "m", 0);
  const std::string g = t.to_gantt(Duration::zero(), Duration::us(400), Duration::us(50));
  // Queued dots before tx, then '=' for the transmission.
  EXPECT_NE(g.find('='), std::string::npos);
  EXPECT_NE(g.find('.'), std::string::npos);
  EXPECT_NE(g.find("m |"), std::string::npos);
}

TEST(Trace, GanttMarksErrorAndLoss) {
  Trace t;
  t.record(Duration::us(0), TraceEventType::kRelease, "m", 0);
  t.record(Duration::us(10), TraceEventType::kTxStart, "m", 0);
  t.record(Duration::us(50), TraceEventType::kError, "m", 0);
  t.record(Duration::us(60), TraceEventType::kRelease, "m", 1);
  t.record(Duration::us(70), TraceEventType::kLoss, "m", 0);
  const std::string g = t.to_gantt(Duration::zero(), Duration::us(200), Duration::us(10));
  EXPECT_NE(g.find('!'), std::string::npos);
  EXPECT_NE(g.find('X'), std::string::npos);
}

TEST(Trace, GanttOneRowPerMessage) {
  Trace t;
  t.record(Duration::us(0), TraceEventType::kRelease, "a", 0);
  t.record(Duration::us(0), TraceEventType::kRelease, "b", 0);
  t.record(Duration::us(0), TraceEventType::kRelease, "c", 0);
  const std::string g = t.to_gantt(Duration::zero(), Duration::us(100), Duration::us(10));
  int rows = 0;
  for (char c : g)
    if (c == '\n') ++rows;
  EXPECT_EQ(rows, 4);  // header + 3 message rows
}

TEST(Trace, GanttHandlesDegenerateArguments) {
  Trace t;
  EXPECT_TRUE(t.to_gantt(Duration::zero(), Duration::zero(), Duration::us(1)).empty());
  EXPECT_TRUE(t.to_gantt(Duration::zero(), Duration::us(10), Duration::zero()).empty());
}

TEST(Trace, ClearEmpties) {
  Trace t;
  t.record(Duration::us(1), TraceEventType::kRelease, "m", 0);
  t.clear();
  EXPECT_TRUE(t.events().empty());
}

TEST(TraceEventTypeNames, AllDistinct) {
  EXPECT_STREQ(to_string(TraceEventType::kRelease), "release");
  EXPECT_STREQ(to_string(TraceEventType::kTxStart), "tx-start");
  EXPECT_STREQ(to_string(TraceEventType::kTxEnd), "tx-end");
  EXPECT_STREQ(to_string(TraceEventType::kError), "error");
  EXPECT_STREQ(to_string(TraceEventType::kRetransmit), "retransmit");
  EXPECT_STREQ(to_string(TraceEventType::kLoss), "loss");
}

}  // namespace
}  // namespace symcan

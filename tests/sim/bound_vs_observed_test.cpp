// Bound-vs-observed report: over seeded workloads whose simulation
// respects the analysis assumptions, compare_bound_vs_observed must find
// zero violations (observed <= bound for every message — the soundness
// oracle in report form), and the report's derived quantities (pessimism
// gap, tightness) must be consistent.

#include "symcan/sim/validation.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "symcan/analysis/error_model.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

struct Param {
  std::uint64_t seed;
  double jitter_fraction;
  bool errors;
};

class BoundVsObserved : public ::testing::TestWithParam<Param> {};

TEST_P(BoundVsObserved, NoMessageObservedAboveItsBound) {
  const Param p = GetParam();
  PowertrainConfig wl;
  wl.seed = p.seed;
  wl.message_count = 24;
  wl.ecu_count = 4;
  wl.target_utilization = 0.55;
  KMatrix km = generate_powertrain(wl);
  assume_jitter_fraction(km, p.jitter_fraction, /*override_known=*/true);

  CanRtaConfig rta;
  rta.worst_case_stuffing = true;  // dominates the sampled stuffing
  rta.deadline_override = DeadlinePolicy::kPeriod;
  if (p.errors) rta.errors = std::make_shared<SporadicErrors>(Duration::ms(40));

  SimConfig sim;
  sim.duration = Duration::s(5);
  sim.seed = p.seed * 977 + 13;
  sim.stuffing = StuffingMode::kRandom;
  sim.randomize_jitter = true;
  sim.record_percentiles = true;
  if (p.errors) sim.errors = SimErrorProcess::sporadic(Duration::ms(40));

  const BusResult bounds = CanRta{km, rta}.analyze();
  const SimResult observed = simulate(km, sim);
  const BoundValidation v = compare_bound_vs_observed(bounds, observed);

  EXPECT_EQ(v.violations, 0u);
  EXPECT_TRUE(v.ok());
  ASSERT_EQ(v.messages.size(), km.size());
  for (const BoundObservation& o : v.messages) {
    if (o.diverged || o.completions == 0) continue;
    EXPECT_LE(o.observed_max, o.bound) << o.name;
    EXPECT_LE(o.observed_p99, o.observed_max) << o.name;
    EXPECT_GE(o.gap(), Duration::zero()) << o.name;
    EXPECT_GE(o.tightness(), 0.0) << o.name;
    EXPECT_LE(o.tightness(), 1.0) << o.name;
  }
  EXPECT_GT(v.worst_tightness, 0.0);
  EXPECT_LE(v.worst_tightness, 1.0);

  const std::string text = validation_to_text(v);
  EXPECT_NE(text.find("0 violations"), std::string::npos);
  EXPECT_EQ(text.find("VIOLATION"), std::string::npos);
  const std::string json = validation_to_json(v);
  EXPECT_NE(json.find("\"violations\":0"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Grid, BoundVsObserved,
                         ::testing::Values(Param{1, 0.0, false}, Param{2, 0.25, false},
                                           Param{3, 0.25, true}, Param{4, 0.40, true},
                                           Param{5, 0.10, false}, Param{6, 0.40, false}),
                         [](const ::testing::TestParamInfo<Param>& pi) {
                           return "s" + std::to_string(pi.param.seed) + "_j" +
                                  std::to_string(static_cast<int>(pi.param.jitter_fraction * 100)) +
                                  (pi.param.errors ? "_errors" : "_clean");
                         });

TEST(BoundVsObservedEdge, ViolationIsFlaggedWhenObservedExceedsBound) {
  // Synthesize a deliberately broken pairing by shrinking the analytic
  // bound below what a real simulation observed — the report must flag it.
  BusResult analysis;
  MessageResult m;
  m.name = "m";
  m.wcrt = Duration::us(10);
  m.diverged = false;
  analysis.messages.push_back(m);

  SimResult sim;
  MessageStats s;
  s.name = "m";
  s.completions = 1;
  s.wcrt_observed = Duration::us(20);
  sim.messages.push_back(s);

  const BoundValidation v = compare_bound_vs_observed(analysis, sim);
  ASSERT_EQ(v.messages.size(), 1u);
  EXPECT_TRUE(v.messages[0].violation);
  EXPECT_EQ(v.violations, 1u);
  EXPECT_FALSE(v.ok());
  EXPECT_NE(validation_to_text(v).find("VIOLATION"), std::string::npos);
  EXPECT_NE(validation_to_json(v).find("\"violation\":true"), std::string::npos);
}

TEST(BoundVsObservedEdge, MissingAndDivergedMessagesCannotViolate) {
  BusResult analysis;
  MessageResult diverged;
  diverged.name = "d";
  diverged.wcrt = Duration::infinite();
  diverged.diverged = true;
  analysis.messages.push_back(diverged);
  MessageResult unseen;
  unseen.name = "u";
  unseen.wcrt = Duration::us(100);
  analysis.messages.push_back(unseen);

  const BoundValidation v = compare_bound_vs_observed(analysis, SimResult{});
  EXPECT_EQ(v.violations, 0u);
  EXPECT_TRUE(v.messages[0].gap().is_infinite());
  EXPECT_EQ(v.messages[1].completions, 0);
}

}  // namespace
}  // namespace symcan

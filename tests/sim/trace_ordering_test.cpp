// Property test: trace-event ordering invariants that any correct
// simulator run must satisfy, checked over seeded generator workloads.
// For every (message, instance): a transmission cannot start before its
// release, cannot end before it starts, and a retransmission can only
// follow a corruption. The log itself must be chronological.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>

#include "symcan/sim/simulator.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

class TraceOrdering : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceOrdering, EveryInstanceRespectsTheEventStateMachine) {
  const std::uint64_t seed = GetParam();
  PowertrainConfig wl;
  wl.seed = seed;
  wl.message_count = 20;
  wl.ecu_count = 4;
  wl.target_utilization = 0.60;
  KMatrix km = generate_powertrain(wl);
  assume_jitter_fraction(km, 0.30, /*override_known=*/true);

  SimConfig cfg;
  cfg.duration = Duration::s(2);
  cfg.seed = seed + 100;
  cfg.record_trace = true;
  cfg.errors = SimErrorProcess::sporadic(Duration::ms(30));
  const SimResult res = simulate(km, cfg);
  ASSERT_FALSE(res.trace.events().empty());

  struct Seen {
    Duration release = -Duration::infinite();
    Duration last_start = -Duration::infinite();
    Duration last_error = -Duration::infinite();
    bool released = false, started = false, errored = false, ended = false;
  };
  std::map<std::pair<std::string, std::int64_t>, Seen> instances;

  Duration prev = -Duration::infinite();
  for (const TraceEvent& e : res.trace.events()) {
    ASSERT_GE(e.time, prev) << "trace is not chronological at " << e.message;
    prev = e.time;
    Seen& s = instances[{e.message, e.instance}];
    switch (e.type) {
      case TraceEventType::kRelease:
        EXPECT_FALSE(s.released) << e.message << "#" << e.instance << " released twice";
        s.release = e.time;
        s.released = true;
        break;
      case TraceEventType::kTxStart:
        ASSERT_TRUE(s.released) << e.message << "#" << e.instance << " started before release";
        EXPECT_GE(e.time, s.release) << e.message << "#" << e.instance;
        // A restart is only legal after a corruption of this instance.
        if (s.started) {
          EXPECT_TRUE(s.errored) << e.message << "#" << e.instance << " restarted without error";
        }
        s.last_start = e.time;
        s.started = true;
        break;
      case TraceEventType::kTxEnd:
        ASSERT_TRUE(s.started) << e.message << "#" << e.instance << " ended before start";
        EXPECT_GE(e.time, s.last_start) << e.message << "#" << e.instance;
        EXPECT_FALSE(s.ended) << e.message << "#" << e.instance << " completed twice";
        s.ended = true;
        break;
      case TraceEventType::kError:
        ASSERT_TRUE(s.started) << e.message << "#" << e.instance << " errored before start";
        EXPECT_GE(e.time, s.last_start) << e.message << "#" << e.instance;
        s.last_error = e.time;
        s.errored = true;
        break;
      case TraceEventType::kRetransmit:
        // kRetransmit only ever follows a kError of the same instance.
        ASSERT_TRUE(s.errored) << e.message << "#" << e.instance << " retransmit without error";
        EXPECT_GE(e.time, s.last_error) << e.message << "#" << e.instance;
        break;
      case TraceEventType::kLoss:
        ASSERT_TRUE(s.released) << e.message << "#" << e.instance << " lost before release";
        break;
    }
  }

  // The workload actually exercised the interesting transitions.
  std::int64_t completions = 0, errors = 0;
  for (const auto& [key, s] : instances) {
    completions += s.ended ? 1 : 0;
    errors += s.errored ? 1 : 0;
  }
  EXPECT_GT(completions, 0);
  EXPECT_GT(errors, 0) << "error process produced no corruption; property vacuous";
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceOrdering, ::testing::Values(1u, 7u, 21u, 42u, 99u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& p) {
                           return "seed" + std::to_string(p.param);
                         });

}  // namespace
}  // namespace symcan

#include "symcan/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace symcan {
namespace {

KMatrix two_node_bus(ControllerType sender_ctrl = ControllerType::kFullCan, int tx_buffers = 1) {
  KMatrix km{"simbus", BitTiming{500'000}};
  EcuNode a;
  a.name = "A";
  a.controller = sender_ctrl;
  a.tx_buffers = tx_buffers;
  km.add_node(a);
  EcuNode b;
  b.name = "B";
  km.add_node(b);
  const struct {
    const char* name;
    CanId id;
    std::int64_t period_ms;
    const char* sender;
  } rows[] = {{"hp", 0x10, 5, "A"}, {"mid", 0x20, 10, "B"}, {"lp", 0x30, 20, "A"}};
  for (const auto& r : rows) {
    CanMessage m;
    m.name = r.name;
    m.id = r.id;
    m.payload_bytes = 8;
    m.period = Duration::ms(r.period_ms);
    m.sender = r.sender;
    m.receivers = {r.sender[0] == 'A' ? "B" : "A"};
    km.add_message(m);
  }
  return km;
}

SimConfig quiet_config() {
  SimConfig cfg;
  cfg.duration = Duration::s(2);
  cfg.seed = 5;
  cfg.stuffing = StuffingMode::kNone;
  cfg.randomize_jitter = false;
  return cfg;
}

TEST(Simulator, PeriodicNoJitterNothingLost) {
  const SimResult res = simulate(two_node_bus(), quiet_config());
  for (const auto& m : res.messages) {
    EXPECT_EQ(m.losses, 0) << m.name;
    EXPECT_EQ(m.retransmissions, 0) << m.name;
    // All but possibly the last pending instance complete.
    EXPECT_GE(m.completions, m.activations - 1) << m.name;
  }
}

TEST(Simulator, ActivationCountMatchesRate) {
  const SimResult res = simulate(two_node_bus(), quiet_config());
  // 2 s at 5 ms -> ~400 activations (deterministic phase 0: 401 fencepost).
  const MessageStats* hp = res.find("hp");
  ASSERT_NE(hp, nullptr);
  EXPECT_NEAR(static_cast<double>(hp->activations), 400.0, 2.0);
  const MessageStats* lp = res.find("lp");
  EXPECT_NEAR(static_cast<double>(lp->activations), 100.0, 2.0);
}

TEST(Simulator, UncontendedResponseEqualsFrameTime) {
  // Single message: response = unstuffed frame time = 222 us.
  KMatrix km{"solo", BitTiming{500'000}};
  EcuNode a;
  a.name = "A";
  km.add_node(a);
  CanMessage m;
  m.name = "only";
  m.id = 1;
  m.payload_bytes = 8;
  m.period = Duration::ms(10);
  m.sender = "A";
  m.receivers = {"A"};
  km.add_message(m);
  const SimResult res = simulate(km, quiet_config());
  EXPECT_EQ(res.messages[0].wcrt_observed, Duration::us(222));
  EXPECT_EQ(res.messages[0].bcrt_observed, Duration::us(222));
  EXPECT_NEAR(res.messages[0].avg_response_us, 222.0, 0.5);
}

TEST(Simulator, DeterministicForSameSeed) {
  SimConfig cfg = quiet_config();
  cfg.stuffing = StuffingMode::kRandom;
  cfg.randomize_jitter = true;
  const SimResult a = simulate(two_node_bus(), cfg);
  const SimResult b = simulate(two_node_bus(), cfg);
  for (std::size_t i = 0; i < a.messages.size(); ++i) {
    EXPECT_EQ(a.messages[i].activations, b.messages[i].activations);
    EXPECT_EQ(a.messages[i].completions, b.messages[i].completions);
    EXPECT_EQ(a.messages[i].wcrt_observed, b.messages[i].wcrt_observed);
  }
}

TEST(Simulator, SeedsChangeOutcomes) {
  SimConfig a = quiet_config();
  a.stuffing = StuffingMode::kRandom;
  a.randomize_jitter = true;
  SimConfig b = a;
  b.seed = 99;
  const SimResult ra = simulate(two_node_bus(), a);
  const SimResult rb = simulate(two_node_bus(), b);
  bool any_diff = false;
  for (std::size_t i = 0; i < ra.messages.size(); ++i)
    any_diff = any_diff || ra.messages[i].wcrt_observed != rb.messages[i].wcrt_observed ||
               ra.messages[i].avg_response_us != rb.messages[i].avg_response_us;
  EXPECT_TRUE(any_diff);
}

TEST(Simulator, SporadicErrorsCauseRetransmissions) {
  SimConfig cfg = quiet_config();
  cfg.randomize_jitter = true;  // avoid resonance of faults with releases
  cfg.errors = SimErrorProcess::sporadic(Duration::ms(10));
  const SimResult res = simulate(two_node_bus(), cfg);
  EXPECT_GT(res.total_errors_injected, 0);
  std::int64_t retx = 0;
  for (const auto& m : res.messages) retx += m.retransmissions;
  EXPECT_EQ(retx, res.total_errors_injected);
}

TEST(Simulator, BurstErrorsInjectMoreThanSporadicAtSameGap) {
  SimConfig sporadic = quiet_config();
  sporadic.randomize_jitter = true;
  sporadic.errors = SimErrorProcess::sporadic(Duration::ms(20));
  SimConfig burst = quiet_config();
  burst.randomize_jitter = true;
  burst.errors = SimErrorProcess::burst(Duration::ms(20), 4);
  const SimResult rs = simulate(two_node_bus(), sporadic);
  const SimResult rb = simulate(two_node_bus(), burst);
  EXPECT_GT(rb.total_errors_injected, rs.total_errors_injected);
}

TEST(Simulator, OverloadedMessageLosesInstances) {
  // hp floods the bus: three 8-byte 270us frames each 600 us + lp at the
  // same rate -> lp starves and gets overwritten.
  KMatrix km{"overload", BitTiming{500'000}};
  EcuNode a;
  a.name = "A";
  km.add_node(a);
  for (int i = 0; i < 3; ++i) {
    CanMessage m;
    m.name = "hp" + std::to_string(i);
    m.id = static_cast<CanId>(0x10 + i);
    m.payload_bytes = 8;
    m.period = Duration::us(600);
    m.sender = "A";
    m.receivers = {"A"};
    km.add_message(m);
  }
  CanMessage lp;
  lp.name = "lp";
  lp.id = 0x100;
  lp.payload_bytes = 8;
  lp.period = Duration::ms(2);
  lp.sender = "A";
  lp.receivers = {"A"};
  km.add_message(lp);

  SimConfig cfg = quiet_config();
  cfg.stuffing = StuffingMode::kWorstCase;
  const SimResult res = simulate(km, cfg);
  EXPECT_GT(res.find("lp")->losses, 0);
}

TEST(Simulator, TraceRecordsWhenEnabled) {
  SimConfig cfg = quiet_config();
  cfg.duration = Duration::ms(50);
  cfg.record_trace = true;
  const SimResult res = simulate(two_node_bus(), cfg);
  EXPECT_FALSE(res.trace.events().empty());
  bool has_release = false, has_txend = false;
  for (const auto& e : res.trace.events()) {
    has_release = has_release || e.type == TraceEventType::kRelease;
    has_txend = has_txend || e.type == TraceEventType::kTxEnd;
  }
  EXPECT_TRUE(has_release);
  EXPECT_TRUE(has_txend);
}

TEST(Simulator, TraceEmptyWhenDisabled) {
  const SimResult res = simulate(two_node_bus(), quiet_config());
  EXPECT_TRUE(res.trace.events().empty());
}

TEST(Simulator, ConservationActivationsAccountedFor) {
  SimConfig cfg = quiet_config();
  cfg.stuffing = StuffingMode::kRandom;
  cfg.randomize_jitter = true;
  cfg.errors = SimErrorProcess::sporadic(Duration::ms(15));
  const SimResult res = simulate(two_node_bus(), cfg);
  for (const auto& m : res.messages) {
    // Completions + losses never exceed activations; at most one pending
    // instance per message is censored at end of simulation.
    EXPECT_LE(m.completions + m.losses, m.activations) << m.name;
    EXPECT_GE(m.completions + m.losses, m.activations - 1) << m.name;
  }
}

TEST(Simulator, RejectsNonPositiveDuration) {
  SimConfig cfg = quiet_config();
  cfg.duration = Duration::zero();
  EXPECT_THROW(simulate(two_node_bus(), cfg), std::invalid_argument);
}

TEST(Simulator, BasicCanFifoCausesPriorityInversionLoss) {
  // On a basicCAN sender with a single buffer and a competing stream, the
  // high-priority message can be stuck behind the committed low-priority
  // frame; with fullCAN it never waits for same-node lp frames beyond
  // the bus itself. Compare worst observed response of "hp".
  SimConfig cfg = quiet_config();
  cfg.stuffing = StuffingMode::kWorstCase;
  cfg.randomize_jitter = true;
  cfg.seed = 11;
  const SimResult full = simulate(two_node_bus(ControllerType::kFullCan), cfg);
  const SimResult basic = simulate(two_node_bus(ControllerType::kBasicCan, 1), cfg);
  EXPECT_GE(basic.find("hp")->wcrt_observed, full.find("hp")->wcrt_observed);
}

}  // namespace
}  // namespace symcan

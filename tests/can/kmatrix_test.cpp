#include "symcan/can/kmatrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace symcan {
namespace {

KMatrix small_matrix() {
  KMatrix km{"test", BitTiming{500'000}};
  EcuNode a;
  a.name = "A";
  km.add_node(a);
  EcuNode b;
  b.name = "B";
  b.controller = ControllerType::kBasicCan;
  b.tx_buffers = 2;
  km.add_node(b);

  CanMessage m1;
  m1.name = "fast";
  m1.id = 0x10;
  m1.payload_bytes = 8;
  m1.period = Duration::ms(10);
  m1.sender = "A";
  m1.receivers = {"B"};
  km.add_message(m1);

  CanMessage m2;
  m2.name = "slow";
  m2.id = 0x20;
  m2.payload_bytes = 4;
  m2.period = Duration::ms(100);
  m2.sender = "B";
  m2.receivers = {"A"};
  km.add_message(m2);
  return km;
}

TEST(KMatrix, FindNodeAndMessage) {
  const KMatrix km = small_matrix();
  ASSERT_NE(km.find_node("A"), nullptr);
  EXPECT_EQ(km.find_node("A")->name, "A");
  EXPECT_EQ(km.find_node("Z"), nullptr);
  ASSERT_NE(km.find_message("fast"), nullptr);
  EXPECT_EQ(km.find_message("fast")->id, 0x10u);
  EXPECT_EQ(km.find_message("nope"), nullptr);
}

TEST(KMatrix, DuplicateNodeRejected) {
  KMatrix km = small_matrix();
  EcuNode dup;
  dup.name = "A";
  EXPECT_THROW(km.add_node(dup), std::invalid_argument);
}

TEST(KMatrix, PriorityOrderSortsById) {
  KMatrix km{"t", BitTiming{500'000}};
  EcuNode n;
  n.name = "N";
  km.add_node(n);
  for (int i = 0; i < 4; ++i) {
    CanMessage m;
    m.name = "m" + std::to_string(i);
    m.id = static_cast<CanId>(0x40 - i * 0x10);  // descending IDs
    m.period = Duration::ms(10);
    m.sender = "N";
    m.receivers = {"N"};
    km.add_message(m);
  }
  const auto order = km.priority_order();
  ASSERT_EQ(order.size(), 4u);
  // Highest priority (lowest id) first: message added last has lowest id.
  EXPECT_EQ(km.messages()[order[0]].name, "m3");
  EXPECT_EQ(km.messages()[order[3]].name, "m0");
}

TEST(KMatrixValidate, AcceptsConsistentMatrix) { EXPECT_NO_THROW(small_matrix().validate()); }

TEST(KMatrixValidate, RejectsDuplicateIds) {
  KMatrix km = small_matrix();
  CanMessage m;
  m.name = "dup";
  m.id = 0x10;
  m.period = Duration::ms(10);
  m.sender = "A";
  km.add_message(m);
  EXPECT_THROW(km.validate(), std::invalid_argument);
}

TEST(KMatrixValidate, RejectsDuplicateNames) {
  KMatrix km = small_matrix();
  CanMessage m;
  m.name = "fast";
  m.id = 0x99;
  m.period = Duration::ms(10);
  m.sender = "A";
  km.add_message(m);
  EXPECT_THROW(km.validate(), std::invalid_argument);
}

TEST(KMatrixValidate, RejectsUnknownSender) {
  KMatrix km = small_matrix();
  CanMessage m;
  m.name = "ghost";
  m.id = 0x30;
  m.period = Duration::ms(10);
  m.sender = "NOPE";
  km.add_message(m);
  EXPECT_THROW(km.validate(), std::invalid_argument);
}

TEST(KMatrixValidate, RejectsUnknownReceiver) {
  KMatrix km = small_matrix();
  CanMessage m;
  m.name = "ghostrx";
  m.id = 0x30;
  m.period = Duration::ms(10);
  m.sender = "A";
  m.receivers = {"NOPE"};
  km.add_message(m);
  EXPECT_THROW(km.validate(), std::invalid_argument);
}

TEST(KMatrix, UtilizationMatchesHandComputation) {
  const KMatrix km = small_matrix();
  // fast: 135 bits * 2us = 270us per 10ms = 0.027
  // slow: (55+40)=95 bits * 2us = 190us per 100ms = 0.0019
  EXPECT_NEAR(km.utilization(true), 0.027 + 0.0019, 1e-9);
  // Unstuffed: 111 bits -> 222us/10ms; 34+32+13=79 bits -> 158us/100ms.
  EXPECT_NEAR(km.utilization(false), 0.0222 + 0.00158, 1e-9);
}

TEST(KMatrix, NodeTrafficSplitsBySender) {
  const KMatrix km = small_matrix();
  EXPECT_NEAR(km.node_traffic_bps("A", true), 135.0 / 10e-3, 1e-6);
  EXPECT_NEAR(km.node_traffic_bps("B", true), 95.0 / 100e-3, 1e-6);
  EXPECT_EQ(km.node_traffic_bps("Z", true), 0.0);
}

TEST(EcuNodeValidate, RejectsBadTxBuffers) {
  EcuNode n;
  n.name = "X";
  n.tx_buffers = 0;
  EXPECT_THROW(n.validate(), std::invalid_argument);
}

TEST(ControllerTypeNames, ToString) {
  EXPECT_STREQ(to_string(ControllerType::kFullCan), "fullCAN");
  EXPECT_STREQ(to_string(ControllerType::kBasicCan), "basicCAN");
}

}  // namespace
}  // namespace symcan

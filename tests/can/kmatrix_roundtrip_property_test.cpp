// Property test: kmatrix_to_csv -> kmatrix_from_csv is the identity on
// every valid matrix, including hostile names (commas, quotes, leading
// and trailing spaces) and boundary ids/periods — or the matrix fails
// validation with a clean error before it can be serialized at all.

#include <gtest/gtest.h>

#include "symcan/can/kmatrix_io.hpp"
#include "symcan/util/rng.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

CanMessage base_message(const std::string& name, CanId id) {
  CanMessage m;
  m.name = name;
  m.id = id;
  m.payload_bytes = 8;
  m.period = Duration::ms(10);
  m.sender = "A";
  m.receivers = {"B"};
  return m;
}

KMatrix base_matrix() {
  KMatrix km{"bus", BitTiming{500'000}};
  EcuNode a;
  a.name = "A";
  EcuNode b;
  b.name = "B";
  km.add_node(a);
  km.add_node(b);
  return km;
}

void expect_bit_identical_roundtrip(const KMatrix& km) {
  const std::string csv = kmatrix_to_csv(km);
  Diagnostics diags;
  const auto back = kmatrix_from_csv(csv, diags);
  ASSERT_TRUE(back.has_value()) << diags.format() << "--- csv ---\n" << csv;
  EXPECT_EQ(kmatrix_to_csv(*back), csv);
}

TEST(KMatrixRoundtripProperty, HostileNamesEitherRoundTripOrFailValidation) {
  const std::vector<std::string> names = {
      "plain",        "with,comma",     "with\"quote",  "with,both\",\"", " leading-space",
      "trail-space ", "tab\tinside",    "semi;colon",   "new\nline",      "carriage\rreturn",
      "",             "with  spaces",   "#hash-start",  "quoted\"\"pair", "-",
  };
  for (const auto& name : names) {
    KMatrix km = base_matrix();
    CanMessage m = base_message(name, 100);
    bool valid = true;
    try {
      m.validate();
    } catch (const std::invalid_argument&) {
      valid = false;
    }
    if (!valid) continue;  // rejected cleanly before serialization: fine
    km.add_message(m);
    expect_bit_identical_roundtrip(km);
  }
}

TEST(KMatrixRoundtripProperty, SeparatorAndLineBreakNamesAreRejected) {
  for (const std::string& bad : {"semi;colon", "new\nline", "carriage\rreturn"}) {
    CanMessage m = base_message(bad, 100);
    EXPECT_THROW(m.validate(), std::invalid_argument) << bad;
    CanMessage s = base_message("ok", 101);
    s.sender = bad;
    EXPECT_THROW(s.validate(), std::invalid_argument) << "sender " << bad;
    CanMessage r = base_message("ok", 102);
    r.receivers = {bad};
    EXPECT_THROW(r.validate(), std::invalid_argument) << "receiver " << bad;
    EcuNode n;
    n.name = bad;
    EXPECT_THROW(n.validate(), std::invalid_argument) << "node " << bad;
  }
}

TEST(KMatrixRoundtripProperty, BoundaryIdsAndPeriodsRoundTrip) {
  struct Case {
    CanId id;
    FrameFormat format;
    Duration period;
  };
  const std::vector<Case> cases = {
      {0, FrameFormat::kStandard, Duration::ns(1)},
      {max_standard_id, FrameFormat::kStandard, Duration::ms(1)},
      {0, FrameFormat::kExtended, Duration::s(3600)},
      {max_extended_id, FrameFormat::kExtended, Duration::ns(1)},
      {max_standard_id, FrameFormat::kExtended, Duration::infinite() - Duration::ns(1)},
  };
  for (const auto& c : cases) {
    KMatrix km = base_matrix();
    CanMessage m = base_message("M", c.id);
    m.format = c.format;
    m.period = c.period;
    m.jitter = c.period - Duration::ns(1);
    km.add_message(m);
    expect_bit_identical_roundtrip(km);
  }
}

TEST(KMatrixRoundtripProperty, ExplicitDeadlinesAndOffsetsRoundTrip) {
  KMatrix km = base_matrix();
  CanMessage m1 = base_message("Explicit", 10);
  m1.deadline_policy = DeadlinePolicy::kExplicit;
  m1.explicit_deadline = Duration::us(1234);
  km.add_message(m1);
  CanMessage m2 = base_message("Offset", 11);
  m2.tt_offset = Duration::ms(3);
  km.add_message(m2);
  CanMessage m3 = base_message("MinReArrival", 12);
  m3.deadline_policy = DeadlinePolicy::kMinReArrival;
  m3.jitter = Duration::ms(2);
  m3.jitter_known = true;
  m3.min_distance = Duration::us(500);
  km.add_message(m3);
  expect_bit_identical_roundtrip(km);
}

TEST(KMatrixRoundtripProperty, GeneratedMatricesRoundTripAcrossSeeds) {
  for (const std::uint64_t seed : {1u, 7u, 23u, 91u, 255u}) {
    PowertrainConfig cfg;
    cfg.seed = seed;
    cfg.message_count = 20 + static_cast<int>(seed % 17);
    cfg.ecu_count = 3 + static_cast<int>(seed % 5);
    expect_bit_identical_roundtrip(generate_powertrain(cfg));
  }
}

TEST(KMatrixRoundtripProperty, RandomHostileNamesAcrossSeeds) {
  // Names drawn from a hostile alphabet: either validation rejects the
  // message cleanly or the matrix round-trips bit-identically.
  const std::string alphabet = "ab,\";\n\r \t#0-";
  Rng rng{0xfeed};
  for (int trial = 0; trial < 200; ++trial) {
    std::string name;
    const std::size_t len = rng.index(8);
    for (std::size_t i = 0; i < len; ++i) name.push_back(alphabet[rng.index(alphabet.size())]);
    CanMessage m = base_message(name, static_cast<CanId>(100 + trial));
    bool valid = true;
    try {
      m.validate();
    } catch (const std::invalid_argument&) {
      valid = false;
    }
    if (!valid) continue;
    KMatrix km = base_matrix();
    km.add_message(m);
    expect_bit_identical_roundtrip(km);
  }
}

}  // namespace
}  // namespace symcan

#include "symcan/can/message.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace symcan {
namespace {

CanMessage valid_message() {
  CanMessage m;
  m.name = "M";
  m.id = 0x100;
  m.payload_bytes = 8;
  m.period = Duration::ms(10);
  m.sender = "ENG";
  return m;
}

TEST(CanMessage, DeadlinePolicyPeriod) {
  CanMessage m = valid_message();
  m.jitter = Duration::ms(3);
  m.deadline_policy = DeadlinePolicy::kPeriod;
  EXPECT_EQ(m.deadline(), Duration::ms(10));
}

TEST(CanMessage, DeadlinePolicyMinReArrivalSubtractsJitter) {
  CanMessage m = valid_message();
  m.jitter = Duration::ms(3);
  m.deadline_policy = DeadlinePolicy::kMinReArrival;
  EXPECT_EQ(m.deadline(), Duration::ms(7));
}

TEST(CanMessage, MinReArrivalFloorsAtMinDistance) {
  CanMessage m = valid_message();
  m.jitter = Duration::ms(9);
  m.min_distance = Duration::ms(2);
  m.deadline_policy = DeadlinePolicy::kMinReArrival;
  EXPECT_EQ(m.deadline(), Duration::ms(2));
}

TEST(CanMessage, ExplicitDeadline) {
  CanMessage m = valid_message();
  m.deadline_policy = DeadlinePolicy::kExplicit;
  m.explicit_deadline = Duration::ms(42);
  EXPECT_EQ(m.deadline(), Duration::ms(42));
}

TEST(CanMessage, ActivationReflectsFields) {
  CanMessage m = valid_message();
  m.jitter = Duration::ms(2);
  m.min_distance = Duration::ms(1);
  const EventModel em = m.activation();
  EXPECT_EQ(em.period(), Duration::ms(10));
  EXPECT_EQ(em.jitter(), Duration::ms(2));
  EXPECT_EQ(em.min_distance(), Duration::ms(1));
}

TEST(CanMessage, WcetSelectsStuffingModel) {
  const BitTiming t{500'000};
  CanMessage m = valid_message();
  EXPECT_EQ(m.wcet(t, true), Duration::us(270));
  EXPECT_EQ(m.wcet(t, false), Duration::us(222));
  EXPECT_EQ(m.bcet(t), Duration::us(222));
}

TEST(CanMessageValidate, AcceptsValid) { EXPECT_NO_THROW(valid_message().validate()); }

TEST(CanMessageValidate, RejectsEmptyName) {
  CanMessage m = valid_message();
  m.name.clear();
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(CanMessageValidate, RejectsIdBeyondFormat) {
  CanMessage m = valid_message();
  m.id = 0x800;  // > 11-bit
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m.format = FrameFormat::kExtended;
  EXPECT_NO_THROW(m.validate());
  m.id = 0x2000'0000;  // > 29-bit
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(CanMessageValidate, RejectsBadPayload) {
  CanMessage m = valid_message();
  m.payload_bytes = 9;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m.payload_bytes = -1;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(CanMessageValidate, RejectsNonPositivePeriod) {
  CanMessage m = valid_message();
  m.period = Duration::zero();
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(CanMessageValidate, RejectsNegativeJitter) {
  CanMessage m = valid_message();
  m.jitter = -Duration::ms(1);
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(CanMessageValidate, RejectsMissingSender) {
  CanMessage m = valid_message();
  m.sender.clear();
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(CanMessageValidate, RejectsNonPositiveExplicitDeadline) {
  CanMessage m = valid_message();
  m.deadline_policy = DeadlinePolicy::kExplicit;
  m.explicit_deadline = Duration::zero();
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(DeadlinePolicyNames, ToString) {
  EXPECT_STREQ(to_string(DeadlinePolicy::kPeriod), "period");
  EXPECT_STREQ(to_string(DeadlinePolicy::kMinReArrival), "min-re-arrival");
  EXPECT_STREQ(to_string(DeadlinePolicy::kExplicit), "explicit");
}

}  // namespace
}  // namespace symcan

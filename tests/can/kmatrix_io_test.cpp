#include "symcan/can/kmatrix_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

KMatrix sample() {
  KMatrix km{"bus0", BitTiming{500'000}};
  EcuNode a;
  a.name = "ENG";
  km.add_node(a);
  EcuNode b;
  b.name = "GW";
  b.controller = ControllerType::kBasicCan;
  b.tx_buffers = 3;
  b.is_gateway = true;
  km.add_node(b);

  CanMessage m;
  m.name = "rpm";
  m.id = 0x101;
  m.payload_bytes = 6;
  m.period = Duration::ms(10);
  m.jitter = Duration::ms(2);
  m.min_distance = Duration::us(500);
  m.deadline_policy = DeadlinePolicy::kMinReArrival;
  m.sender = "ENG";
  m.receivers = {"GW"};
  m.jitter_known = true;
  km.add_message(m);

  CanMessage e;
  e.name = "diag";
  e.id = 0x1FFF'0000;
  e.format = FrameFormat::kExtended;
  e.payload_bytes = 8;
  e.period = Duration::ms(500);
  e.deadline_policy = DeadlinePolicy::kExplicit;
  e.explicit_deadline = Duration::ms(250);
  e.sender = "GW";
  e.receivers = {"ENG"};
  km.add_message(e);
  return km;
}

void expect_same(const KMatrix& a, const KMatrix& b) {
  EXPECT_EQ(a.bus_name(), b.bus_name());
  EXPECT_EQ(a.timing().bits_per_second(), b.timing().bits_per_second());
  ASSERT_EQ(a.nodes().size(), b.nodes().size());
  for (std::size_t i = 0; i < a.nodes().size(); ++i) {
    EXPECT_EQ(a.nodes()[i].name, b.nodes()[i].name);
    EXPECT_EQ(a.nodes()[i].controller, b.nodes()[i].controller);
    EXPECT_EQ(a.nodes()[i].tx_buffers, b.nodes()[i].tx_buffers);
    EXPECT_EQ(a.nodes()[i].is_gateway, b.nodes()[i].is_gateway);
  }
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a.messages()[i];
    const auto& y = b.messages()[i];
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.id, y.id);
    EXPECT_EQ(x.format, y.format);
    EXPECT_EQ(x.payload_bytes, y.payload_bytes);
    EXPECT_EQ(x.period, y.period);
    EXPECT_EQ(x.jitter, y.jitter);
    EXPECT_EQ(x.min_distance, y.min_distance);
    EXPECT_EQ(x.deadline_policy, y.deadline_policy);
    EXPECT_EQ(x.deadline(), y.deadline());
    EXPECT_EQ(x.sender, y.sender);
    EXPECT_EQ(x.receivers, y.receivers);
    EXPECT_EQ(x.jitter_known, y.jitter_known);
  }
}

TEST(KMatrixIo, RoundTrip) {
  const KMatrix km = sample();
  const std::string csv = kmatrix_to_csv(km);
  const KMatrix back = kmatrix_from_csv(csv);
  expect_same(km, back);
}

TEST(KMatrixIo, RoundTripPowertrain) {
  const KMatrix km = generate_powertrain(PowertrainConfig::case_study());
  const KMatrix back = kmatrix_from_csv(kmatrix_to_csv(km));
  expect_same(km, back);
}

TEST(KMatrixIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/symcan_kmatrix_test.csv";
  const KMatrix km = sample();
  save_kmatrix(km, path);
  expect_same(km, load_kmatrix(path));
  std::remove(path.c_str());
}

TEST(KMatrixIo, MissingBusRecordThrows) {
  EXPECT_THROW(kmatrix_from_csv("node,A,fullCAN,1,0\n"), std::runtime_error);
  EXPECT_THROW(kmatrix_from_csv(""), std::runtime_error);
}

TEST(KMatrixIo, DuplicateBusRecordThrows) {
  EXPECT_THROW(kmatrix_from_csv("bus,a,500000\nbus,b,500000\n"), std::runtime_error);
}

TEST(KMatrixIo, BadIntegerNamesLine) {
  try {
    kmatrix_from_csv("bus,a,fast\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad integer"), std::string::npos);
  }
}

TEST(KMatrixIo, UnknownControllerThrows) {
  EXPECT_THROW(kmatrix_from_csv("bus,a,500000\nnode,A,weirdCAN,1,0\n"), std::runtime_error);
}

TEST(KMatrixIo, UnknownRecordKindThrows) {
  EXPECT_THROW(kmatrix_from_csv("bus,a,500000\nfrob,x\n"), std::runtime_error);
}

TEST(KMatrixIo, WrongFieldCountThrows) {
  EXPECT_THROW(kmatrix_from_csv("bus,a\n"), std::runtime_error);
  EXPECT_THROW(kmatrix_from_csv("bus,a,500000\nnode,A,fullCAN,1\n"), std::runtime_error);
}

TEST(KMatrixIo, CommentsAreIgnored) {
  const std::string csv = "# hello\nbus,a,500000\n# another\nnode,A,fullCAN,1,0\n";
  const KMatrix km = kmatrix_from_csv(csv);
  EXPECT_EQ(km.nodes().size(), 1u);
}

TEST(KMatrixIo, ValidationRunsOnImport) {
  // msg sent by a node that is never declared. Model-validation failures
  // surface as line-numbered parse diagnostics, not leaked
  // invalid_argument.
  const std::string csv =
      "bus,a,500000\nnode,A,fullCAN,1,0\n"
      "msg,m,256,standard,8,10000,0,0,period,-,GHOST,A,0\n";
  EXPECT_THROW(kmatrix_from_csv(csv), ParseError);
}

TEST(KMatrixIo, EmptyFieldsAreDiagnosedNotDropped) {
  // A doubled comma used to be swallowed by split(), silently shifting
  // every following field by one. It must now surface as a field-count
  // or bad-value diagnostic on the right line.
  const std::string csv =
      "bus,a,500000\nnode,A,fullCAN,1,0\nnode,B,fullCAN,1,0\n"
      "msg,m,,standard,8,10000000,0,0,period,-,A,B,0,-\n";
  Diagnostics diags;
  EXPECT_FALSE(kmatrix_from_csv(csv, diags).has_value());
  ASSERT_FALSE(diags.entries().empty());
  EXPECT_EQ(diags.entries()[0].line, 4u);
}

TEST(KMatrixIo, StrayReceiverSeparatorIsDiagnosed) {
  const std::string csv =
      "bus,a,500000\nnode,A,fullCAN,1,0\nnode,B,fullCAN,1,0\n"
      "msg,m,256,standard,8,10000000,0,0,period,-,A,B;;A,0,-\n";
  Diagnostics diags;
  EXPECT_FALSE(kmatrix_from_csv(csv, diags).has_value());
  ASSERT_FALSE(diags.entries().empty());
  EXPECT_NE(diags.entries()[0].message.find("empty receiver"), std::string::npos);
  EXPECT_EQ(diags.entries()[0].line, 4u);
}

TEST(KMatrixIo, RangeViolationsAreDiagnosedPerField) {
  const std::string csv =
      "bus,a,500000\n"
      "node,A,fullCAN,0,0\n"                                          // tx_buffers < 1
      "msg,m1,4096,standard,8,10000000,0,0,period,-,A,A,0,-\n"        // id > 11 bits
      "msg,m2,536870912,extended,8,10000000,0,0,period,-,A,A,0,-\n"   // id > 29 bits
      "msg,m3,1,standard,9,10000000,0,0,period,-,A,A,0,-\n"           // payload > 8
      "msg,m4,2,standard,8,0,0,0,period,-,A,A,0,-\n"                  // period <= 0
      "msg,m5,3,standard,8,10000000,-1,0,period,-,A,A,0,-\n"          // jitter < 0
      "msg,m6,4,standard,8,10000000,0,0,explicit,0,A,A,0,-\n"         // deadline <= 0
      "msg,m7,5,standard,8,10000000,0,0,period,-,A,A,0,10000000\n";   // offset >= period
  Diagnostics diags;
  EXPECT_FALSE(kmatrix_from_csv(csv, diags).has_value());
  // One pass reports them all — no fail-on-first-error.
  EXPECT_EQ(diags.error_count(), 8u) << diags.format();
  for (std::size_t i = 0; i < diags.entries().size(); ++i)
    EXPECT_EQ(diags.entries()[i].line, i + 2) << diags.format();
}

TEST(KMatrixIo, OverflowLengthPeriodIsDiagnosedNotWrapped) {
  const std::string csv =
      "bus,a,500000\nnode,A,fullCAN,1,0\n"
      "msg,m,1,standard,8,99999999999999999999,0,0,period,-,A,A,0,-\n";
  Diagnostics diags;
  EXPECT_FALSE(kmatrix_from_csv(csv, diags).has_value());
  ASSERT_FALSE(diags.entries().empty());
  EXPECT_NE(diags.entries()[0].message.find("period_ns"), std::string::npos);
}

TEST(KMatrixIo, LineNumbersCountPhysicalLines) {
  // Blank and comment lines must still advance the reported line number.
  const std::string csv =
      "# header\n\nbus,a,500000\n# sep\nnode,A,fullCAN,1,0\n\nwat,x\n";
  Diagnostics diags;
  EXPECT_FALSE(kmatrix_from_csv(csv, diags).has_value());
  ASSERT_EQ(diags.entries().size(), 1u);
  EXPECT_EQ(diags.entries()[0].line, 7u);
}

TEST(KMatrixIo, NonBooleanFlagWarnsLenientFailsStrict) {
  const std::string csv =
      "bus,a,500000\nnode,A,fullCAN,1,2\n";  // gateway flag '2'
  Diagnostics lenient{DiagnosticPolicy::kLenient};
  EXPECT_TRUE(kmatrix_from_csv(csv, lenient).has_value());
  EXPECT_EQ(lenient.warning_count(), 1u);
  Diagnostics strict{DiagnosticPolicy::kStrict};
  EXPECT_FALSE(kmatrix_from_csv(csv, strict).has_value());
}

TEST(KMatrixIo, LegacyThirteenFieldMsgStillParses) {
  const std::string csv =
      "bus,a,500000\nnode,A,fullCAN,1,0\n"
      "msg,m,256,standard,8,10000000,0,0,period,-,A,A,0\n";
  const KMatrix km = kmatrix_from_csv(csv);
  ASSERT_EQ(km.size(), 1u);
  EXPECT_FALSE(km.messages()[0].tt_offset.has_value());
}

}  // namespace
}  // namespace symcan

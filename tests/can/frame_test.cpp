#include "symcan/can/frame.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace symcan {
namespace {

// The classic closed forms: worst-case standard frame = 55 + 10*s bits,
// extended = 80 + 10*s bits (Davis et al. 2007, eq. for C_m).
TEST(FrameBits, WorstCaseMatchesClosedForm) {
  for (int s = 0; s <= 8; ++s) {
    EXPECT_EQ(frame_bits_worst_case(FrameFormat::kStandard, s), 55 + 10 * s) << "s=" << s;
    EXPECT_EQ(frame_bits_worst_case(FrameFormat::kExtended, s), 80 + 10 * s) << "s=" << s;
  }
}

TEST(FrameBits, UnstuffedLengths) {
  // Standard: 34 + 8s + 13; e.g. 8 bytes -> 111 bits.
  EXPECT_EQ(frame_bits_unstuffed(FrameFormat::kStandard, 8), 111);
  EXPECT_EQ(frame_bits_unstuffed(FrameFormat::kStandard, 0), 47);
  // Extended: 54 + 8s + 13; 8 bytes -> 131 bits.
  EXPECT_EQ(frame_bits_unstuffed(FrameFormat::kExtended, 8), 131);
}

TEST(FrameBits, StuffedAlwaysExceedsUnstuffed) {
  for (int s = 0; s <= 8; ++s)
    for (FrameFormat f : {FrameFormat::kStandard, FrameFormat::kExtended})
      EXPECT_GT(frame_bits_worst_case(f, s), frame_bits_unstuffed(f, s));
}

TEST(BitTiming, StandardRatesExact) {
  EXPECT_EQ(BitTiming{1'000'000}.bit_time(), Duration::us(1));
  EXPECT_EQ(BitTiming{500'000}.bit_time(), Duration::us(2));
  EXPECT_EQ(BitTiming{250'000}.bit_time(), Duration::us(4));
  EXPECT_EQ(BitTiming{125'000}.bit_time(), Duration::us(8));
}

TEST(BitTiming, RejectsNonPositiveAndAbsurdRates) {
  EXPECT_THROW(BitTiming{0}, std::invalid_argument);
  EXPECT_THROW(BitTiming{-5}, std::invalid_argument);
  EXPECT_THROW(BitTiming{2'000'000'000}, std::invalid_argument);
}

TEST(BitTiming, DurationOfScalesLinearly) {
  const BitTiming t{500'000};
  EXPECT_EQ(t.duration_of(135), Duration::us(270));
}

TEST(FrameTime, EightBytePayloadAt500k) {
  const BitTiming t{500'000};
  // 135 bits * 2 us = 270 us worst case; 111 * 2 = 222 us best case.
  EXPECT_EQ(frame_time_worst_case(t, FrameFormat::kStandard, 8), Duration::us(270));
  EXPECT_EQ(frame_time_unstuffed(t, FrameFormat::kStandard, 8), Duration::us(222));
}

TEST(FrameTime, RejectsBadPayload) {
  const BitTiming t{500'000};
  EXPECT_THROW(frame_time_worst_case(t, FrameFormat::kStandard, 9), std::invalid_argument);
  EXPECT_THROW(frame_time_unstuffed(t, FrameFormat::kStandard, -1), std::invalid_argument);
}

TEST(FrameFormatNames, ToString) {
  EXPECT_STREQ(to_string(FrameFormat::kStandard), "standard");
  EXPECT_STREQ(to_string(FrameFormat::kExtended), "extended");
}

TEST(ErrorFrame, ThirtyOneBits) { EXPECT_EQ(error_frame_bits, 31); }

/// Property: frame time is monotone in payload size.
class FramePayloadSweep : public ::testing::TestWithParam<int> {};

TEST_P(FramePayloadSweep, MonotoneInPayload) {
  const int s = GetParam();
  if (s == 0) return;
  const BitTiming t{500'000};
  EXPECT_GT(frame_time_worst_case(t, FrameFormat::kStandard, s),
            frame_time_worst_case(t, FrameFormat::kStandard, s - 1));
  EXPECT_GT(frame_time_unstuffed(t, FrameFormat::kExtended, s),
            frame_time_unstuffed(t, FrameFormat::kExtended, s - 1));
}

INSTANTIATE_TEST_SUITE_P(AllSizes, FramePayloadSweep, ::testing::Range(0, 9));

}  // namespace
}  // namespace symcan

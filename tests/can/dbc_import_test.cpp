#include "symcan/can/dbc_import.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace symcan {
namespace {

const char* kSampleDbc = R"(VERSION "1.0"

NS_ :
    BA_
    BA_DEF_

BS_:

BU_: ENG TRANS ABS GW

BO_ 256 EngineRpm: 8 ENG
 SG_ Rpm : 0|16@1+ (0.25,0) [0|16383] "rpm" TRANS,ABS
 SG_ Torque : 16|12@1+ (1,0) [0|4095] "Nm" TRANS

BO_ 512 GearStatus: 4 TRANS
 SG_ Gear : 0|4@1+ (1,0) [0|15] "" ENG

BO_ 2147484416 DiagResponse: 8 GW
 SG_ Data : 0|64@1+ (1,0) [0|0] "" Vector__XXX

BO_ 768 WheelSpeed: 6 ABS
 SG_ Fl : 0|16@1+ (0.01,0) [0|655] "km/h" ENG,GW

BA_DEF_DEF_ "GenMsgCycleTime" 100;
BA_ "Baudrate" 500000;
BA_ "GenMsgCycleTime" BO_ 256 10;
BA_ "GenMsgCycleTime" BO_ 512 20;
BA_ "GenMsgDelayTime" BO_ 256 2;
)";

TEST(DbcImport, ParsesMessagesAndNodes) {
  const KMatrix km = kmatrix_from_dbc(kSampleDbc);
  EXPECT_EQ(km.size(), 4u);
  EXPECT_NE(km.find_node("ENG"), nullptr);
  EXPECT_NE(km.find_node("GW"), nullptr);
  // The Vector__XXX placeholder receiver becomes a node so validation holds.
  EXPECT_NE(km.find_node("Vector__XXX"), nullptr);
  EXPECT_EQ(km.timing().bits_per_second(), 500'000);
}

TEST(DbcImport, MessageFieldsMapped) {
  const KMatrix km = kmatrix_from_dbc(kSampleDbc);
  const CanMessage* rpm = km.find_message("EngineRpm");
  ASSERT_NE(rpm, nullptr);
  EXPECT_EQ(rpm->id, 256u);
  EXPECT_EQ(rpm->payload_bytes, 8);
  EXPECT_EQ(rpm->period, Duration::ms(10));
  EXPECT_EQ(rpm->min_distance, Duration::ms(2));
  EXPECT_EQ(rpm->sender, "ENG");
  EXPECT_EQ(rpm->format, FrameFormat::kStandard);
  // Receivers are the union of the signals' receivers.
  EXPECT_EQ(rpm->receivers.size(), 2u);
}

TEST(DbcImport, ExtendedIdBitDecoded) {
  const KMatrix km = kmatrix_from_dbc(kSampleDbc);
  const CanMessage* diag = km.find_message("DiagResponse");
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->format, FrameFormat::kExtended);
  EXPECT_EQ(diag->id, 0x300u);  // 2147484416 = 0x80000300
}

TEST(DbcImport, DefaultCycleTimeApplies) {
  const KMatrix km = kmatrix_from_dbc(kSampleDbc);
  // WheelSpeed has no GenMsgCycleTime: gets the BA_DEF_DEF_ default.
  EXPECT_EQ(km.find_message("WheelSpeed")->period, Duration::ms(100));
  EXPECT_EQ(km.find_message("GearStatus")->period, Duration::ms(20));
}

TEST(DbcImport, FallbackPeriodWithoutDefault) {
  const std::string dbc =
      "BU_: A\nBO_ 1 M: 8 A\n SG_ S : 0|8@1+ (1,0) [0|0] \"\" A\n";
  DbcImportOptions opt;
  opt.fallback_period = Duration::ms(250);
  const KMatrix km = kmatrix_from_dbc(dbc, opt);
  EXPECT_EQ(km.find_message("M")->period, Duration::ms(250));
}

TEST(DbcImport, AnalysisRunsOnImportedMatrix) {
  // The imported matrix is a first-class citizen of the toolchain.
  const KMatrix km = kmatrix_from_dbc(kSampleDbc);
  EXPECT_NO_THROW(km.validate());
  EXPECT_GT(km.utilization(true), 0.0);
  EXPECT_LT(km.utilization(true), 1.0);
}

TEST(DbcImport, RejectsMalformedConstructs) {
  EXPECT_THROW(kmatrix_from_dbc("BO_ x Name: 8 A\n"), std::runtime_error);
  EXPECT_THROW(kmatrix_from_dbc("BO_ 1 Name:\n"), std::runtime_error);
  EXPECT_THROW(kmatrix_from_dbc("BU_: A\nBO_ 1 M: 8 A\nBA_ \"GenMsgCycleTime\" BO_ 9 10;\n"),
               std::runtime_error);
  EXPECT_THROW(kmatrix_from_dbc("BU_: A\nBO_ 1 M: 8 A\nBO_ 1 N: 8 A\n"), std::runtime_error);
}

TEST(DbcImport, ErrorsNameTheLine) {
  try {
    kmatrix_from_dbc("VERSION \"x\"\nBO_ zz M: 8 A\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST(DbcImport, UnknownLinesIgnored) {
  const std::string dbc =
      "VERSION \"zz\"\nCM_ \"a comment\";\nVAL_ 1 Sig 0 \"off\" 1 \"on\";\n"
      "BU_: A\nBO_ 5 M: 2 A\n";
  const KMatrix km = kmatrix_from_dbc(dbc);
  EXPECT_EQ(km.size(), 1u);
}

TEST(DbcImport, MessageWithoutSignalsReceivesItself) {
  const std::string dbc = "BU_: A\nBO_ 7 Lonely: 1 A\n";
  const KMatrix km = kmatrix_from_dbc(dbc);
  ASSERT_EQ(km.find_message("Lonely")->receivers.size(), 1u);
  EXPECT_EQ(km.find_message("Lonely")->receivers[0], "A");
}

TEST(DbcImport, RejectsStandardIdAboveElevenBits) {
  // 2048 without bit 31 is not a valid standard id — it must NOT be
  // silently reinterpreted as extended.
  Diagnostics diags;
  EXPECT_FALSE(kmatrix_from_dbc("BU_: A\nBO_ 2048 M: 8 A\n", {}, diags).has_value());
  ASSERT_FALSE(diags.entries().empty());
  EXPECT_NE(diags.entries()[0].message.find("11 bits"), std::string::npos);
  EXPECT_EQ(diags.entries()[0].line, 2u);
}

TEST(DbcImport, RejectsExtendedIdAboveTwentyNineBits) {
  // Bit 31 set, id bits 0x20000000 = 2^29: one past the extended range.
  Diagnostics diags;
  EXPECT_FALSE(kmatrix_from_dbc("BU_: A\nBO_ 2684354560 M: 8 A\n", {}, diags).has_value());
  ASSERT_FALSE(diags.entries().empty());
  EXPECT_NE(diags.entries()[0].message.find("29 bits"), std::string::npos);
}

TEST(DbcImport, MasksExtendedBitAtTheBoundary) {
  // 0x80000000 = bit 31 + id 0: the smallest extended id.
  const KMatrix km = kmatrix_from_dbc("BU_: A\nBO_ 2147483648 M: 8 A\n");
  ASSERT_EQ(km.size(), 1u);
  EXPECT_EQ(km.messages()[0].id, 0u);
  EXPECT_EQ(km.messages()[0].format, FrameFormat::kExtended);
}

TEST(DbcImport, RejectsNegativeIdAndDlc) {
  EXPECT_THROW(kmatrix_from_dbc("BU_: A\nBO_ -1 M: 8 A\n"), ParseError);
  EXPECT_THROW(kmatrix_from_dbc("BU_: A\nBO_ 1 M: -2 A\n"), ParseError);
  EXPECT_THROW(kmatrix_from_dbc("BU_: A\nBO_ 1 M: 9 A\n"), ParseError);
  EXPECT_THROW(kmatrix_from_dbc("BU_: A\nBO_ 99999999999999999999 M: 8 A\n"), ParseError);
}

TEST(DbcImport, RejectsNonPositiveBitrate) {
  EXPECT_THROW(kmatrix_from_dbc("BU_: A\nBO_ 1 M: 8 A\nBA_ \"Baudrate\" 0;\n"), ParseError);
  EXPECT_THROW(kmatrix_from_dbc("BU_: A\nBO_ 1 M: 8 A\nBA_ \"Baudrate\" -500000;\n"), ParseError);
  EXPECT_THROW(kmatrix_from_dbc("BU_: A\nBO_ 1 M: 8 A\nBA_ \"Baudrate\" 2000000000;\n"),
               ParseError);
}

TEST(DbcImport, RejectsNegativeCycleAndDelayTime) {
  EXPECT_THROW(
      kmatrix_from_dbc("BU_: A\nBO_ 1 M: 8 A\nBA_ \"GenMsgCycleTime\" BO_ 1 -10;\n"), ParseError);
  EXPECT_THROW(
      kmatrix_from_dbc("BU_: A\nBO_ 1 M: 8 A\nBA_ \"GenMsgDelayTime\" BO_ 1 -1;\n"), ParseError);
}

TEST(DbcImport, ZeroCycleTimeWarnsLenientFailsStrict) {
  // GenMsgCycleTime 0 conventionally means "not cyclic": lenient keeps
  // the fallback period with a warning; strict refuses.
  const std::string dbc = "BU_: A\nBO_ 1 M: 8 A\nBA_ \"GenMsgCycleTime\" BO_ 1 0;\n";
  Diagnostics lenient{DiagnosticPolicy::kLenient};
  const auto km = kmatrix_from_dbc(dbc, {}, lenient);
  ASSERT_TRUE(km.has_value());
  EXPECT_EQ(lenient.warning_count(), 1u);
  EXPECT_EQ(km->messages()[0].period, DbcImportOptions{}.fallback_period);
  Diagnostics strict{DiagnosticPolicy::kStrict};
  EXPECT_FALSE(kmatrix_from_dbc(dbc, {}, strict).has_value());
}

TEST(DbcImport, CollectsEveryErrorInOnePass) {
  const std::string dbc =
      "BU_: A\n"
      "BO_ zz M1: 8 A\n"
      "BO_ 2048 M2: 8 A\n"
      "BO_ 1 M3: 9 A\n"
      "BA_ \"Baudrate\" -1;\n";
  Diagnostics diags;
  EXPECT_FALSE(kmatrix_from_dbc(dbc, {}, diags).has_value());
  EXPECT_EQ(diags.error_count(), 4u) << diags.format();
  EXPECT_EQ(diags.entries()[0].line, 2u);
  EXPECT_EQ(diags.entries()[1].line, 3u);
  EXPECT_EQ(diags.entries()[2].line, 4u);
  EXPECT_EQ(diags.entries()[3].line, 5u);
}

TEST(DbcImport, MalformedMessageDoesNotAdoptFollowingSignals) {
  // The SG_ under the broken BO_ must not attach to the previous good
  // message; lenient records a warning for it.
  const std::string dbc =
      "BU_: A B\n"
      "BO_ 1 Good: 8 A\n"
      "BO_ zz Broken: 8 A\n"
      " SG_ S : 0|8@1+ (1,0) [0|0] \"\" B\n";
  Diagnostics diags;
  EXPECT_FALSE(kmatrix_from_dbc(dbc, {}, diags).has_value());
  bool warned_stray = false;
  for (const auto& d : diags.entries())
    warned_stray = warned_stray || d.message.find("outside any message") != std::string::npos;
  EXPECT_TRUE(warned_stray) << diags.format();
}

TEST(DbcImport, HostileInputCannotBalloonDiagnostics) {
  std::string dbc = "BU_: A\n";
  for (int i = 0; i < 5000; ++i) dbc += "BO_ zz M: 8 A\n";
  Diagnostics diags;
  EXPECT_FALSE(kmatrix_from_dbc(dbc, {}, diags).has_value());
  EXPECT_LE(diags.entries().size(), Diagnostics::kMaxRecorded);
  EXPECT_TRUE(diags.exhausted());
}

}  // namespace
}  // namespace symcan

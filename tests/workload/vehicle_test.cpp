#include "symcan/workload/vehicle.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "symcan/analysis/presets.hpp"
#include "symcan/core/engine.hpp"

namespace symcan {
namespace {

TEST(Vehicle, StructureMatchesConfig) {
  VehicleConfig cfg;
  const System sys = generate_vehicle(cfg);
  EXPECT_EQ(sys.buses().size(), 2u);
  ASSERT_TRUE(sys.buses().contains("powertrain"));
  ASSERT_TRUE(sys.buses().contains("body"));
  // Gateway ECU exists and hosts one forwarding task per stream.
  ASSERT_TRUE(sys.ecus().contains("GW"));
  EXPECT_EQ(sys.ecus().at("GW").size(),
            static_cast<std::size_t>(2 * cfg.gateway_streams_per_direction));
  EXPECT_EQ(sys.paths().size(), static_cast<std::size_t>(2 * cfg.gateway_streams_per_direction));
  EXPECT_NO_THROW(sys.validate());
}

TEST(Vehicle, DeterministicBySeed) {
  const System a = generate_vehicle(VehicleConfig{});
  const System b = generate_vehicle(VehicleConfig{});
  ASSERT_EQ(a.buses().size(), b.buses().size());
  for (const auto& [name, km] : a.buses()) {
    const KMatrix& other = b.buses().at(name);
    ASSERT_EQ(km.size(), other.size());
    for (std::size_t i = 0; i < km.size(); ++i) {
      EXPECT_EQ(km.messages()[i].id, other.messages()[i].id);
      EXPECT_EQ(km.messages()[i].period, other.messages()[i].period);
    }
  }
}

TEST(Vehicle, BusesHitTheirUtilizationTargets) {
  VehicleConfig cfg;
  const System sys = generate_vehicle(cfg);
  // The generators hit their targets; the cross-bus streams then add
  // their own load on top (up to ~1.1 ms frame time per 20 ms period on
  // the slow body bus), so the observed load sits in [target, target+slack].
  const double pt = sys.buses().at("powertrain").utilization(true);
  const double body = sys.buses().at("body").utilization(true);
  EXPECT_GE(pt, cfg.powertrain.target_utilization - 0.01);
  EXPECT_LE(pt, cfg.powertrain.target_utilization + 0.10);
  EXPECT_GE(body, cfg.body_target_utilization - 0.01);
  EXPECT_LE(body, cfg.body_target_utilization + 0.25);
}

TEST(Vehicle, EngineConvergesAndBoundsCrossBusPaths) {
  VehicleConfig cfg;
  // Lighter power-train bus so the cross-bus streams are schedulable.
  cfg.powertrain.target_utilization = 0.45;
  const System sys = generate_vehicle(cfg);
  EngineConfig ecfg;
  ecfg.bus.worst_case_stuffing = true;
  ecfg.bus.deadline_override = DeadlinePolicy::kPeriod;
  Engine engine{sys, ecfg};
  const SystemResult res = engine.analyze();
  EXPECT_TRUE(res.converged);
  ASSERT_EQ(res.paths.size(), sys.paths().size());
  for (const auto& p : res.paths) {
    EXPECT_FALSE(p.latency_max.is_infinite()) << p.name;
    EXPECT_GT(p.latency_max, p.latency_min) << p.name;
    // Three hops: the latency covers at least source frame + forwarding
    // task + forwarded frame best cases.
    EXPECT_GT(p.latency_min, Duration::us(200)) << p.name;
  }
}

TEST(Vehicle, GatewayTasksInheritStreamActivation) {
  const System sys = generate_vehicle(VehicleConfig{});
  EngineConfig ecfg;
  ecfg.bus.deadline_override = DeadlinePolicy::kPeriod;
  const SystemResult res = Engine{sys, ecfg}.analyze();
  // Every forwarding task executed the analysis (finite wcrt on a lightly
  // loaded gateway CPU).
  const EcuResult& gw = res.ecus.at("GW");
  for (const auto& t : gw.tasks) EXPECT_FALSE(t.wcrt.is_infinite()) << t.name;
}

TEST(Vehicle, RejectsBadConfig) {
  VehicleConfig cfg;
  cfg.gateway_streams_per_direction = -1;
  EXPECT_THROW(generate_vehicle(cfg), std::invalid_argument);
  cfg = VehicleConfig{};
  cfg.tasks_per_ecu = 0;
  EXPECT_THROW(generate_vehicle(cfg), std::invalid_argument);
}

TEST(Vehicle, MoreStreamsMoreLoad) {
  VehicleConfig few;
  few.gateway_streams_per_direction = 1;
  VehicleConfig many;
  many.gateway_streams_per_direction = 6;
  const System a = generate_vehicle(few);
  const System b = generate_vehicle(many);
  EXPECT_LT(a.buses().at("powertrain").size(), b.buses().at("powertrain").size());
  EXPECT_LT(a.buses().at("powertrain").utilization(true),
            b.buses().at("powertrain").utilization(true));
}

}  // namespace
}  // namespace symcan

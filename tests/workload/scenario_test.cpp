#include "symcan/workload/scenario.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "symcan/analysis/load.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

KMatrix base() { return generate_powertrain(PowertrainConfig::case_study()); }

TEST(Diagnosis, AddsTwoLowPriorityStreams) {
  KMatrix km = base();
  const std::size_t before = km.size();
  const auto added = add_diagnosis_traffic(km, DiagnosisConfig{});
  EXPECT_EQ(added.size(), 2u);
  EXPECT_EQ(km.size(), before + 2);
  const CanMessage* req = km.find_message("DIAG_REQ");
  const CanMessage* data = km.find_message("FLASH_DATA");
  ASSERT_NE(req, nullptr);
  ASSERT_NE(data, nullptr);
  // Diagnostic IDs are the lowest priority on the bus.
  for (const auto& m : km.messages()) {
    if (m.name == "DIAG_REQ" || m.name == "FLASH_DATA") continue;
    EXPECT_LT(m.id, req->id);
  }
  // Bursty activation.
  EXPECT_GT(req->jitter, req->period);
}

TEST(Diagnosis, IncreasesBusLoadSubstantially) {
  KMatrix km = base();
  const double before = analyze_load(km, true).utilization;
  add_diagnosis_traffic(km, DiagnosisConfig{});
  const double after = analyze_load(km, true).utilization;
  EXPECT_GT(after, before + 0.10);  // a flash session is heavy traffic
}

TEST(Diagnosis, RejectsUnknownNodes) {
  KMatrix km = base();
  DiagnosisConfig cfg;
  cfg.tester_node = "NOPE";
  EXPECT_THROW(add_diagnosis_traffic(km, cfg), std::invalid_argument);
  cfg = DiagnosisConfig{};
  cfg.target_node = "NOPE";
  EXPECT_THROW(add_diagnosis_traffic(km, cfg), std::invalid_argument);
}

TEST(NOutOfM, DividesPeriodsOfSelectedMessages) {
  KMatrix km = base();
  const Duration p0 = km.messages()[0].period;
  const std::string name = km.messages()[0].name;
  apply_n_out_of_m(km, 3, [&](const CanMessage& m) { return m.name == name; });
  EXPECT_EQ(km.messages()[0].period, p0 / 3);
}

TEST(NOutOfM, IncreasesUtilizationProportionally) {
  KMatrix km = base();
  const double before = km.utilization(true);
  apply_n_out_of_m(km, 2, [](const CanMessage&) { return true; });
  EXPECT_NEAR(km.utilization(true), 2 * before, 0.01);
}

TEST(NOutOfM, FactorOneIsIdentity) {
  KMatrix km = base();
  const double before = km.utilization(true);
  apply_n_out_of_m(km, 1, [](const CanMessage&) { return true; });
  EXPECT_DOUBLE_EQ(km.utilization(true), before);
}

TEST(NOutOfM, RejectsBadFactor) {
  KMatrix km = base();
  EXPECT_THROW(apply_n_out_of_m(km, 0, [](const CanMessage&) { return true; }),
               std::invalid_argument);
}

}  // namespace
}  // namespace symcan

#include "symcan/workload/powertrain.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace symcan {
namespace {

TEST(Powertrain, DeterministicForSameSeed) {
  const KMatrix a = generate_powertrain(PowertrainConfig::case_study());
  const KMatrix b = generate_powertrain(PowertrainConfig::case_study());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.messages()[i].name, b.messages()[i].name);
    EXPECT_EQ(a.messages()[i].id, b.messages()[i].id);
    EXPECT_EQ(a.messages()[i].period, b.messages()[i].period);
    EXPECT_EQ(a.messages()[i].jitter, b.messages()[i].jitter);
  }
}

TEST(Powertrain, DifferentSeedsDiffer) {
  PowertrainConfig c1 = PowertrainConfig::case_study();
  PowertrainConfig c2 = c1;
  c2.seed = 123;
  const KMatrix a = generate_powertrain(c1);
  const KMatrix b = generate_powertrain(c2);
  bool any_diff = false;
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i)
    any_diff = any_diff || a.messages()[i].period != b.messages()[i].period ||
               a.messages()[i].id != b.messages()[i].id;
  EXPECT_TRUE(any_diff);
}

TEST(Powertrain, MatchesPaperScale) {
  // "more than 50 messages", several ECUs including a gateway.
  const KMatrix km = generate_powertrain(PowertrainConfig::case_study());
  EXPECT_GT(km.size(), 50u);
  EXPECT_GE(km.nodes().size(), 5u);
  bool has_gateway = false;
  for (const auto& n : km.nodes()) has_gateway = has_gateway || n.is_gateway;
  EXPECT_TRUE(has_gateway);
}

TEST(Powertrain, HitsTargetUtilization) {
  for (double target : {0.4, 0.5, 0.7}) {
    PowertrainConfig cfg = PowertrainConfig::case_study();
    cfg.target_utilization = target;
    const KMatrix km = generate_powertrain(cfg);
    EXPECT_NEAR(km.utilization(true), target, 0.02) << "target " << target;
  }
}

TEST(Powertrain, ValidatesAndHasRealisticFields) {
  const KMatrix km = generate_powertrain(PowertrainConfig::case_study());
  EXPECT_NO_THROW(km.validate());
  for (const auto& m : km.messages()) {
    EXPECT_GE(m.period, Duration::ms(1));
    EXPECT_LE(m.period, Duration::s(3));
    EXPECT_GE(m.payload_bytes, 1);
    EXPECT_LE(m.payload_bytes, 8);
    EXPECT_FALSE(m.receivers.empty());
    if (m.jitter_known) {
      // Known jitters are in the paper's 10..30 % band.
      const double frac = static_cast<double>(m.jitter.count_ns()) /
                          static_cast<double>(m.period.count_ns());
      EXPECT_GE(frac, 0.09);
      EXPECT_LE(frac, 0.31);
    } else {
      EXPECT_EQ(m.jitter, Duration::zero());
    }
  }
}

TEST(Powertrain, SomeJittersKnownSomeNot) {
  const KMatrix km = generate_powertrain(PowertrainConfig::case_study());
  std::size_t known = 0;
  for (const auto& m : km.messages())
    if (m.jitter_known) ++known;
  EXPECT_GT(known, 0u);
  EXPECT_LT(known, km.size());
}

TEST(Powertrain, RejectsBadConfig) {
  PowertrainConfig cfg;
  cfg.message_count = 0;
  EXPECT_THROW(generate_powertrain(cfg), std::invalid_argument);
  cfg = PowertrainConfig{};
  cfg.target_utilization = 1.5;
  EXPECT_THROW(generate_powertrain(cfg), std::invalid_argument);
  cfg = PowertrainConfig{};
  cfg.gateway_count = cfg.ecu_count;
  EXPECT_THROW(generate_powertrain(cfg), std::invalid_argument);
}

TEST(AssumeJitterFraction, SetsUnknownOnly) {
  KMatrix km = generate_powertrain(PowertrainConfig::case_study());
  KMatrix modified = km;
  assume_jitter_fraction(modified, 0.25, false);
  for (std::size_t i = 0; i < km.size(); ++i) {
    const auto& orig = km.messages()[i];
    const auto& mod = modified.messages()[i];
    if (orig.jitter_known) {
      EXPECT_EQ(mod.jitter, orig.jitter);
    } else {
      EXPECT_NEAR(static_cast<double>(mod.jitter.count_ns()),
                  0.25 * static_cast<double>(orig.period.count_ns()), 2.0);
    }
  }
}

TEST(AssumeJitterFraction, OverrideKnownAppliesEverywhere) {
  KMatrix km = generate_powertrain(PowertrainConfig::case_study());
  assume_jitter_fraction(km, 0.10, true);
  for (const auto& m : km.messages())
    EXPECT_NEAR(static_cast<double>(m.jitter.count_ns()),
                0.10 * static_cast<double>(m.period.count_ns()), 2.0);
}

TEST(AssumeJitterFraction, RejectsNegative) {
  KMatrix km = generate_powertrain(PowertrainConfig::case_study());
  EXPECT_THROW(assume_jitter_fraction(km, -0.1), std::invalid_argument);
}

TEST(ScalePeriods, ScalesPeriodAndJitterTogether) {
  KMatrix km = generate_powertrain(PowertrainConfig::case_study());
  const Duration p0 = km.messages()[0].period;
  scale_periods(km, 2.0);
  EXPECT_EQ(km.messages()[0].period, p0 * 2);
  EXPECT_NEAR(km.utilization(true), 0.35, 0.02);
  EXPECT_THROW(scale_periods(km, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace symcan

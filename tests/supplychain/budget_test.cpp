#include "symcan/supplychain/budget.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "symcan/analysis/presets.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

KMatrix small_matrix() {
  PowertrainConfig cfg = PowertrainConfig::case_study();
  cfg.message_count = 18;
  cfg.ecu_count = 4;
  cfg.target_utilization = 0.45;
  KMatrix km = generate_powertrain(cfg);
  assume_jitter_fraction(km, 0.0, true);  // clean baseline, jitter unknown
  return km;
}

CanRtaConfig rta() {
  CanRtaConfig cfg;
  cfg.worst_case_stuffing = true;
  cfg.deadline_override = DeadlinePolicy::kPeriod;
  return cfg;
}

class BudgetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    km_ = new KMatrix(small_matrix());
    report_ = new BudgetReport(allocate_jitter_budgets(*km_, rta()));
  }
  static void TearDownTestSuite() {
    delete km_;
    delete report_;
    km_ = nullptr;
    report_ = nullptr;
  }
  static KMatrix* km_;
  static BudgetReport* report_;
};
KMatrix* BudgetTest::km_ = nullptr;
BudgetReport* BudgetTest::report_ = nullptr;

TEST_F(BudgetTest, JointBudgetIsJointlySafe) {
  ASSERT_GT(report_->joint_fraction, 0.0);
  KMatrix v = *km_;
  for (std::size_t i = 0; i < v.size(); ++i) v.messages()[i].jitter = report_->joint_budget[i];
  EXPECT_TRUE((CanRta{v, rta()}.analyze().all_schedulable()));
}

TEST_F(BudgetTest, JointBudgetIsMaximalWithinTolerance) {
  // 5 percentage points above the joint fraction must break something
  // (otherwise the binary search under-delivered).
  if (report_->joint_fraction >= 0.99) GTEST_SKIP() << "budget saturated at the period";
  KMatrix v = *km_;
  assume_jitter_fraction(v, report_->joint_fraction + 0.05, true);
  EXPECT_FALSE((CanRta{v, rta()}.analyze().all_schedulable()));
}

TEST_F(BudgetTest, IndividualBudgetsAreIndividuallySafe) {
  for (std::size_t i = 0; i < km_->size(); ++i) {
    KMatrix v = *km_;
    for (std::size_t j = 0; j < v.size(); ++j) v.messages()[j].jitter = report_->joint_budget[j];
    v.messages()[i].jitter = report_->individual_budget[i];
    EXPECT_TRUE((CanRta{v, rta()}.analyze().all_schedulable()))
        << km_->messages()[i].name << " at " << to_string(report_->individual_budget[i]);
  }
}

TEST_F(BudgetTest, IndividualAtLeastJoint) {
  for (std::size_t i = 0; i < km_->size(); ++i) {
    EXPECT_GE(report_->individual_budget[i], report_->joint_budget[i]);
    EXPECT_LE(report_->individual_budget[i], km_->messages()[i].period);
    EXPECT_GE(report_->bonus(i), Duration::zero());
  }
}

TEST_F(BudgetTest, TradeReleasesFlexibility) {
  // Find a message with meaningful joint budget to commit below.
  std::size_t from = km_->size();
  for (std::size_t i = 0; i < km_->size(); ++i)
    if (report_->joint_budget[i] > Duration::ms(1)) from = i;
  ASSERT_LT(from, km_->size());
  const std::size_t to = from == 0 ? 1 : 0;

  const std::string from_name = km_->messages()[from].name;
  const std::string to_name = km_->messages()[to].name;
  // Committing to zero releases at least as much as committing to the
  // full joint budget.
  const Duration tight =
      trade_budget(*km_, rta(), *report_, from_name, Duration::zero(), to_name);
  const Duration loose = trade_budget(*km_, rta(), *report_, from_name,
                                      report_->joint_budget[from], to_name);
  EXPECT_GE(tight, loose);
  EXPECT_GE(tight, report_->joint_budget[to]);
  // And the released budget stays jointly safe with the commitment.
  KMatrix v = *km_;
  for (std::size_t j = 0; j < v.size(); ++j) v.messages()[j].jitter = report_->joint_budget[j];
  v.messages()[from].jitter = Duration::zero();
  v.messages()[to].jitter = tight;
  EXPECT_TRUE((CanRta{v, rta()}.analyze().all_schedulable()));
}

TEST_F(BudgetTest, TradeRejectsBadArguments) {
  const std::string a = km_->messages()[0].name;
  const std::string b = km_->messages()[1].name;
  EXPECT_THROW(trade_budget(*km_, rta(), *report_, "nope", Duration::zero(), b),
               std::invalid_argument);
  EXPECT_THROW(trade_budget(*km_, rta(), *report_, a, Duration::zero(), "nope"),
               std::invalid_argument);
  EXPECT_THROW(trade_budget(*km_, rta(), *report_, a, Duration::zero(), a),
               std::invalid_argument);
  EXPECT_THROW(trade_budget(*km_, rta(), *report_, a,
                            report_->joint_budget[0] + Duration::ms(10), b),
               std::invalid_argument);
}

TEST(BudgetErrors, UnschedulableBaselineRejected) {
  KMatrix km = small_matrix();
  scale_periods(km, 0.2);
  CanRtaConfig cfg = rta();
  cfg.horizon = Duration::ms(500);
  EXPECT_THROW(allocate_jitter_budgets(km, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace symcan

#include "symcan/supplychain/refinement.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "symcan/analysis/presets.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

KMatrix small_matrix() {
  PowertrainConfig cfg = PowertrainConfig::case_study();
  cfg.message_count = 16;
  cfg.ecu_count = 4;
  cfg.target_utilization = 0.5;
  return generate_powertrain(cfg);
}

TEST(Refinement, BaselineRecordedInHistory) {
  RefinementSession s{small_matrix(), best_case_assumptions()};
  ASSERT_EQ(s.history().size(), 1u);
  EXPECT_EQ(s.history()[0].what, "baseline");
}

TEST(Refinement, CommitMarksJitterKnownAndShrinksUnknownFraction) {
  RefinementSession s{small_matrix(), best_case_assumptions()};
  const double before = s.unknown_fraction();
  std::string victim;
  for (const auto& m : s.matrix().messages())
    if (!m.jitter_known) victim = m.name;
  ASSERT_FALSE(victim.empty());
  s.commit_send_jitter(victim, Duration::us(300));
  EXPECT_LT(s.unknown_fraction(), before);
  EXPECT_TRUE(s.matrix().find_message(victim)->jitter_known);
  EXPECT_EQ(s.matrix().find_message(victim)->jitter, Duration::us(300));
  EXPECT_EQ(s.history().size(), 2u);
}

TEST(Refinement, CommitUnknownMessageThrows) {
  RefinementSession s{small_matrix(), best_case_assumptions()};
  EXPECT_THROW(s.commit_send_jitter("nope", Duration::us(1)), std::invalid_argument);
  EXPECT_THROW(s.commit_send_jitter(s.matrix().messages()[0].name, -Duration::us(1)),
               std::invalid_argument);
}

TEST(Refinement, FreezeTracksUniqueNames) {
  RefinementSession s{small_matrix(), best_case_assumptions()};
  const std::string m = s.matrix().messages()[0].name;
  s.freeze_priority(m);
  s.freeze_priority(m);
  EXPECT_EQ(s.frozen().size(), 1u);
  EXPECT_THROW(s.freeze_priority("nope"), std::invalid_argument);
}

TEST(Refinement, SlackBudgetMatchesAnalysis) {
  RefinementSession s{small_matrix(), best_case_assumptions()};
  const BusResult res = s.analyze();
  for (std::size_t i = 0; i < res.messages.size(); ++i)
    EXPECT_EQ(s.slack_budget(res.messages[i].name), res.messages[i].slack());
  EXPECT_THROW(s.slack_budget("nope"), std::invalid_argument);
}

TEST(Refinement, CommittingLowerJitterCannotIncreaseMisses) {
  KMatrix km = small_matrix();
  assume_jitter_fraction(km, 0.5, true);  // pessimistic starting point
  RefinementSession s{km, worst_case_assumptions()};
  const std::size_t before = s.analyze().miss_count();
  // Suppliers commit much tighter jitters for every message.
  for (const auto& m : km.messages()) s.commit_send_jitter(m.name, Duration::zero());
  EXPECT_LE(s.analyze().miss_count(), before);
  // The history shows a step per commitment plus the baseline.
  EXPECT_EQ(s.history().size(), 1u + km.size());
}

}  // namespace
}  // namespace symcan
